#!/bin/sh
# relayd end-to-end smoke: boot the service on the virtual clock, wait
# for its first cycle to make it ready, scrape the health and metrics
# planes, SIGTERM it, and require a clean drain (exit 0 plus the
# "drained cleanly" line). Run from the repository root; CI runs it as
# the relayd-smoke job and `make relayd-smoke` mirrors it locally.
set -eu

ADDR=${RELAYD_ADDR:-127.0.0.1:9791}
WORKDIR=$(mktemp -d)
LOG="$WORKDIR/relayd.log"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

go build -o "$WORKDIR/relayd" ./cmd/relayd

"$WORKDIR/relayd" \
    -addr "$ADDR" \
    -state "$WORKDIR/state" \
    -virtual-clock \
    -interval 1h \
    >"$LOG" 2>&1 &
PID=$!

fetch() {
    # stdlib-only HTTP GET: curl/wget are not guaranteed on the runner.
    go run ./scripts/httpget.go "http://$ADDR$1"
}

# Liveness must come up quickly; readiness only after the first cycle
# completes on the (paced) virtual clock.
i=0
until fetch /healthz >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -le 50 ] || { echo "relayd-smoke: /healthz never came up" >&2; cat "$LOG" >&2; exit 1; }
    sleep 0.2
done
echo "relayd-smoke: /healthz up"

i=0
until fetch /readyz >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -le 300 ] || { echo "relayd-smoke: /readyz never became ready" >&2; cat "$LOG" >&2; exit 1; }
    sleep 1
done
echo "relayd-smoke: /readyz ready after first cycle"

METRICS="$WORKDIR/metrics.txt"
fetch /metrics >"$METRICS"
for series in \
    relayd_cycles_total \
    relayd_scan_exchange_rate \
    relayd_scan_faults_total \
    relayd_breaker_open_total \
    relayd_supervisor_state \
    pool_hit_rate \
    masque_frames_relayed_total \
    masque_rejected_total; do
    grep -q "$series" "$METRICS" || {
        echo "relayd-smoke: /metrics missing $series" >&2
        cat "$METRICS" >&2
        exit 1
    }
done
echo "relayd-smoke: /metrics exposes the acceptance series"

kill -TERM "$PID"
STATUS=0
wait "$PID" || STATUS=$?
if [ "$STATUS" -ne 0 ]; then
    echo "relayd-smoke: relayd exited $STATUS after SIGTERM" >&2
    cat "$LOG" >&2
    exit 1
fi
grep -q "drained cleanly" "$LOG" || {
    echo "relayd-smoke: missing clean-drain confirmation" >&2
    cat "$LOG" >&2
    exit 1
}
echo "relayd-smoke: clean drain confirmed"
