// Command httpget is the smoke scripts' curl stand-in: GET one URL,
// copy the body to stdout, exit nonzero unless the status is 200. The
// CI runners only guarantee the go toolchain, so the scripts shell out
// to this instead of assuming curl or wget.
package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"time"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: httpget <url>")
		os.Exit(2)
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(os.Args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "httpget: %v\n", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		fmt.Fprintf(os.Stderr, "httpget: %v\n", err)
		os.Exit(1)
	}
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "httpget: %s: %s\n", os.Args[1], resp.Status)
		os.Exit(1)
	}
}
