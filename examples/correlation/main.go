// correlation: the §6 analysis of whether one operator can see both sides
// of a relay connection. Finds the AS hosting ingress AND egress relays,
// traceroutes to both relay kinds to demonstrate shared last-hop routers,
// audits the AS's prefix utilization, and dates its first BGP appearance.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/relay-networks/privaterelay/internal/experiments"
	"github.com/relay-networks/privaterelay/internal/netsim"
)

func main() {
	env := experiments.NewEnv(55, 0.0008)
	result, err := env.Correlation(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("operators hosting BOTH ingress and egress relays:")
	for _, as := range result.SharedOperators {
		fmt.Printf("  %s (%v)\n", netsim.ASName(as), as)
	}

	fmt.Printf("\ntraceroute validation — ingress/egress pairs behind one last-hop router: %d\n",
		len(result.LastHopPairs))
	for i, p := range result.LastHopPairs {
		if i >= 4 {
			fmt.Printf("  ... and %d more\n", len(result.LastHopPairs)-4)
			break
		}
		fmt.Printf("  %v (ingress) and %v (egress) share %s\n", p.Ingress, p.Egress, p.Router)
	}

	fmt.Printf("\nprefix audit: %s\n", result.Utilization)
	fmt.Printf("first BGP appearance of AkamaiPR: %s (the service launched 2021-06)\n", result.FirstSeen)

	fmt.Println("\nimplication (§6): an entity observing this AS sees the client connect")
	fmt.Println("to the ingress AND the egress connect to the target — timing correlation")
	fmt.Println("can re-link what the two-hop design was meant to separate.")
}
