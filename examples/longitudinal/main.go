// longitudinal: track the service's evolution across the paper's four
// scan months — run an ECS scan per month, persist each dataset, and
// diff consecutive months, reproducing the §4.1 growth story (default
// plane +34 %, fallback +293 %).
package main

import (
	"context"
	"fmt"
	"log"
	"net/netip"
	"os"
	"path/filepath"

	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/core"
	"github.com/relay-networks/privaterelay/internal/dnsserver"
	"github.com/relay-networks/privaterelay/internal/netsim"
)

func main() {
	world := netsim.NewWorld(netsim.Params{Seed: 77, Scale: 0.0008})
	dir, err := os.MkdirTemp("", "relay-datasets-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fmt.Printf("persisting datasets under %s\n\n", dir)

	runScan := func(month bgp.Month, domain string) *core.Dataset {
		srv := dnsserver.NewAuthServer(world, month, nil)
		ds, err := core.Scan(context.Background(), core.ScanConfig{
			Exchanger:    &dnsserver.MemTransport{Handler: srv, Source: netip.MustParseAddr("198.51.100.53")},
			Domain:       domain,
			Universe:     world.RoutedV4Prefixes(),
			Attribution:  world.Table,
			RespectScope: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		plane := "default"
		if domain == dnsserver.MaskH2Domain {
			plane = "fallback"
		}
		path := filepath.Join(dir, fmt.Sprintf("%s-%s.csv", month, plane))
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := ds.Save(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		return ds
	}

	fmt.Println("default plane (mask.icloud.com):")
	var prev *core.Dataset
	for _, m := range netsim.ScanMonths {
		ds := runScan(m, dnsserver.MaskDomain)
		line := fmt.Sprintf("  %s: %4d addresses", m, len(ds.Addresses))
		if prev != nil {
			added, removed := core.Diff(prev, ds)
			line += fmt.Sprintf("  (+%d / -%d, %+.1f%%)", len(added), len(removed), core.GrowthPercent(prev, ds))
		}
		fmt.Println(line)
		prev = ds
	}

	fmt.Println("\nfallback plane (mask-h2.icloud.com):")
	feb := runScan(netsim.MonthFeb, dnsserver.MaskH2Domain)
	apr := runScan(netsim.MonthApr, dnsserver.MaskH2Domain)
	fmt.Printf("  2022-02: %d addresses\n", len(feb.Addresses))
	fmt.Printf("  2022-04: %d addresses (%+.0f%% — the paper reports +293%%)\n",
		len(apr.Addresses), core.GrowthPercent(feb, apr))

	// Reload one persisted dataset to show the round trip.
	path := filepath.Join(dir, "2022-04-default.csv")
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	loaded, err := core.ReadDataset(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreloaded %s: %d addresses (%s)\n", filepath.Base(path), len(loaded.Addresses), loaded.Domain)
}
