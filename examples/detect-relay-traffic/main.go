// detect-relay-traffic: the §6 use case for network operators. A passive
// observer (ISP, IDS) builds a classifier from the scanned ingress
// dataset and the published egress list, then labels a stream of
// synthetic flows: client→ingress connections reveal *that* Private Relay
// is in use (but not the visited service), and flows arriving from
// egress subnets explain rotating source addresses that would otherwise
// look anomalous to a DDoS heuristic.
package main

import (
	"context"
	"fmt"
	"log"
	"net/netip"

	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/core"
	"github.com/relay-networks/privaterelay/internal/dnsserver"
	"github.com/relay-networks/privaterelay/internal/egress"
	"github.com/relay-networks/privaterelay/internal/iputil"
	"github.com/relay-networks/privaterelay/internal/netsim"
)

func main() {
	ctx := context.Background()
	world := netsim.NewWorld(netsim.Params{Seed: 21, Scale: 0.0008})

	// The operator's two public inputs: an ingress scan (both planes)
	// and Apple's egress list.
	auth := dnsserver.NewAuthServer(world, netsim.MonthApr, nil)
	mem := &dnsserver.MemTransport{Handler: auth, Source: netip.MustParseAddr("198.51.100.53")}
	scanCfg := core.ScanConfig{
		Exchanger: mem, Universe: world.RoutedV4Prefixes(),
		Attribution: world.Table, RespectScope: true,
	}
	scanCfg.Domain = dnsserver.MaskDomain
	defaultDS, err := core.Scan(ctx, scanCfg)
	if err != nil {
		log.Fatal(err)
	}
	scanCfg.Domain = dnsserver.MaskH2Domain
	fallbackDS, err := core.Scan(ctx, scanCfg)
	if err != nil {
		log.Fatal(err)
	}

	list := egress.Generate(world, 21)
	egressSubnets := map[netip.Prefix]bgp.ASN{}
	for _, a := range egress.Attribute(list, world.Table) {
		if a.AS != 0 {
			egressSubnets[a.Prefix] = a.AS
		}
	}

	classifier := core.NewClassifier(defaultDS, egressSubnets)
	classifier.AddIngress(fallbackDS)
	fmt.Printf("classifier: %d ingress addresses, %d egress subnets\n\n",
		len(defaultDS.Addresses)+len(fallbackDS.Addresses), len(egressSubnets))

	// Synthetic flow log: a mix of relay and ordinary traffic.
	client := world.ClientASes[2].Prefixes[0].Addr().Next()
	ingress := defaultDS.AddressesOf(netsim.ASAkamaiPR)[0]
	var egressAddr netip.Addr
	for _, a := range egress.Attribute(list, world.Table) {
		if a.AS == netsim.ASCloudflare && a.Prefix.Addr().Is4() {
			egressAddr = iputil.AddrAtIndex(a.Prefix, 0)
			break
		}
	}
	webServer := netip.MustParseAddr("203.0.113.80")

	flows := []struct {
		src, dst netip.Addr
		note     string
	}{
		{client, ingress, "subscriber opening a relay tunnel"},
		{client, webServer, "ordinary direct browsing"},
		{egressAddr, webServer, "relay egress fetching a page"},
		{webServer, client, "response traffic"},
	}
	fmt.Println("flow log as seen by a passive observer:")
	for _, f := range flows {
		class, as := classifier.Classify(f.src, f.dst)
		label := class.String()
		if as != 0 {
			label += " via " + netsim.ASName(as)
		}
		fmt.Printf("  %-18v → %-18v %-28s (%s)\n", f.src, f.dst, label, f.note)
	}

	// Aggregate view: with many subscribers, the ingress becomes the
	// network's most active destination while visited services vanish.
	var flowLog []core.Flow
	for i := 0; i < 40; i++ {
		flowLog = append(flowLog, core.Flow{Src: client, Dst: ingress, Bytes: 1500})
	}
	for i := 0; i < 25; i++ {
		flowLog = append(flowLog, core.Flow{
			Src: client, Dst: netip.AddrFrom4([4]byte{203, 0, 113, byte(i + 1)}), Bytes: 3000,
		})
	}
	report := classifier.AnalyzeFlows(flowLog)
	fmt.Printf("\naggregated flow log: %d flows, ingress rank #%d among destinations, %.0f%% of bytes service-hidden\n",
		report.Flows, report.IngressRank, report.HiddenByteShare()*100)

	fmt.Println("\noperator takeaways (§6):")
	fmt.Println(" - ingress flows identify relay *usage*; the visited service stays hidden")
	fmt.Println(" - ingress relays appear as highly active destinations in flow logs")
	fmt.Println(" - egress-subnet sources rotate per connection; IDS allowlists should use the published list")
}
