// blocking-monitor: track where iCloud Private Relay is blocked via DNS,
// reproducing the §4.1 methodology — a distributed probe population
// resolves the service domains, failures are cross-checked against a
// control domain, and response codes separate intentional blocking from
// broken resolvers.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"github.com/relay-networks/privaterelay/internal/atlas"
	"github.com/relay-networks/privaterelay/internal/dnswire"
	"github.com/relay-networks/privaterelay/internal/netsim"
)

func main() {
	world := netsim.NewWorld(netsim.Params{Seed: 33, Scale: 0.0008})
	population := atlas.NewPopulation(world, netsim.MonthApr, atlas.Config{
		Seed: 33, N: 6000, SubnetClusters: 1500,
	})
	fmt.Printf("monitoring with %d probes (%d‰ behind public resolvers)\n\n",
		len(population.Probes), atlas.IdentifyResolvers(population))

	report, err := atlas.BlockingStudy(context.Background(), population)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("resolution of mask.icloud.com across probes:")
	fmt.Printf("  timeouts:              %5d (%.1f%%) — also fail for the control domain, not blocking\n",
		report.TimedOut, report.TimeoutShare())
	fmt.Printf("  failed with response:  %5d\n", report.FailedWithResponse)

	type rcRow struct {
		rc dnswire.RCode
		n  int
	}
	var rows []rcRow
	for rc, n := range report.ByRCode {
		rows = append(rows, rcRow{rc, n})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
	for _, r := range rows {
		fmt.Printf("    %-9s %5d (%.0f%% of failures)\n", r.rc, r.n,
			float64(r.n)/float64(report.FailedWithResponse)*100)
	}
	fmt.Printf("  hijacked answers:      %5d\n\n", report.Hijacked)
	fmt.Printf("probes without access to the service: %d (%.1f%%)\n",
		report.Blocked, report.BlockedShare())
	fmt.Println("\n(the paper found 645 of ~11.7k probes blocked — 5.5%)")
}
