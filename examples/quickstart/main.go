// Quickstart: generate a small world, enumerate the April ingress fleet
// with an ECS scan, and send one request through the relay — the minimal
// end-to-end tour of the library.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/netip"

	"github.com/relay-networks/privaterelay/internal/core"
	"github.com/relay-networks/privaterelay/internal/dnsserver"
	"github.com/relay-networks/privaterelay/internal/egress"
	"github.com/relay-networks/privaterelay/internal/netsim"
	"github.com/relay-networks/privaterelay/internal/relay"
	"github.com/relay-networks/privaterelay/internal/resolver"
	"github.com/relay-networks/privaterelay/internal/scan"
)

func main() {
	ctx := context.Background()

	// 1. A deterministic slice of the Internet: five service ASes plus a
	//    scaled-down client universe.
	world := netsim.NewWorld(netsim.Params{Seed: 7, Scale: 0.0008})
	fmt.Printf("world: %d client ASes, %d routed /24s\n",
		len(world.ClientASes), world.ClientSlash24Count())

	// 2. Enumerate ingress relays via ECS, exactly like the paper's scan.
	auth := dnsserver.NewAuthServer(world, netsim.MonthApr, nil)
	dataset, err := core.Scan(ctx, core.ScanConfig{
		Exchanger:    &dnsserver.MemTransport{Handler: auth, Source: netip.MustParseAddr("198.51.100.53")},
		Domain:       dnsserver.MaskDomain,
		Universe:     world.RoutedV4Prefixes(),
		Attribution:  world.Table,
		RespectScope: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ECS scan: %d ingress addresses (%d queries, %d skipped via scope)\n",
		len(dataset.Addresses), dataset.Stats.QueriesSent, dataset.Stats.SubnetsSkipped)
	for as, n := range dataset.OperatorCounts() {
		fmt.Printf("  %-9s %d\n", netsim.ASName(as), n)
	}

	// 3. Bring up the relay itself and tunnel one request through it.
	list := egress.Generate(world, 7)
	dep := relay.NewDeployment(world, list)
	client := world.ClientASes[0].Prefixes[0].Addr().Next()
	svc, err := relay.StartService(dep, relay.ServiceConfig{Client: client, Month: netsim.MonthApr, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	res := resolver.New(netip.MustParseAddr("9.9.9.9"),
		&dnsserver.MemTransport{Handler: auth, Source: netip.MustParseAddr("9.9.9.9")})
	device := &relay.Device{Client: client, Resolver: res, Service: svc, Account: "quickstart", Day: "2022-05-11"}

	echo, err := scan.StartEchoServer()
	if err != nil {
		log.Fatal(err)
	}
	defer echo.Close()

	tunnel, err := device.Connect(ctx)
	if err != nil {
		log.Fatal(err)
	}
	defer tunnel.Close()
	fmt.Printf("tunnel: ingress %v (%s), egress operator %s\n",
		tunnel.IngressAddr, netsim.ASName(tunnel.IngressAS), netsim.ASName(tunnel.Operator))

	stream, egressAddr, err := tunnel.Open(echo.Addr())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(stream, "GET /plain\n")
	body, _ := io.ReadAll(stream)
	stream.Close()
	fmt.Printf("echo service saw egress address %s (tunnel reported %v)\n",
		string(body[:len(body)-1]), egressAddr)
	fmt.Printf("client address %v never reached the target\n", client)
}
