GO ?= go

.PHONY: check vet build test race bench bench-json chaos

check: vet build race bench

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Chaos suite under the race detector: scans through the fault plane
# converge to the fault-free dataset, killed scans resume bit-identically,
# and the breaker/backoff/retry/campaign resilience paths hold up.
chaos:
	$(GO) test -race \
		-run 'Chaos|Checkpoint|Backoff|Breaker|Fault|Injector|Profile|Resilien|Retr|Resume|Dominant|Rotation|Campaign|BlockingStudy|RunDirect|RunRetries|RunDisting|ConnectWithRetry|VirtualClock' \
		./internal/faults/ ./internal/core/ ./internal/dnsserver/ ./internal/scan/ ./internal/atlas/

# One iteration keeps CI fast; run with a larger -benchtime locally for
# stable numbers.
bench:
	$(GO) test -run '^$$' -bench BenchmarkScanThroughput -benchtime 1x .

# Machine-readable numbers for the sharded pipelines (attribution,
# campaigns, Table 3, CSV parse): ns/op and items/sec per benchmark.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkAttribute$$|BenchmarkAtlasCampaign$$|BenchmarkTable3$$|BenchmarkParseCSV$$' -benchtime 10x . | $(GO) run ./cmd/benchjson > BENCH_pipeline.json
	@cat BENCH_pipeline.json
