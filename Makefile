GO ?= go

.PHONY: check vet lint build test race alloc bench bench-json chaos

check: vet lint build race alloc bench

vet:
	$(GO) vet ./...

# Project-specific analyzers (pool lifecycle, determinism, atomic-field
# discipline, enum exhaustiveness). Dependency-free: relaylint is built
# from this module with the same toolchain as the rest of the tree.
lint:
	$(GO) run ./cmd/relaylint ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Allocation-regression tests must run WITHOUT the race detector: the
# race runtime's allocation instrumentation makes testing.AllocsPerRun
# report noise, so these files carry a `//go:build !race` tag and get
# their own non-race invocation (CI runs this in the chaos job).
alloc:
	$(GO) test -run 'ZeroAlloc|AllocBudget' ./internal/dnsserver/ ./internal/core/

# Chaos suite under the race detector: scans through the fault plane
# converge to the fault-free dataset, killed scans resume bit-identically,
# and the breaker/backoff/retry/campaign resilience paths hold up.
chaos:
	$(GO) test -race \
		-run 'Chaos|Checkpoint|Backoff|Breaker|Fault|Injector|Profile|Resilien|Retr|Resume|Dominant|Rotation|Campaign|BlockingStudy|RunDirect|RunRetries|RunDisting|ConnectWithRetry|VirtualClock' \
		./internal/faults/ ./internal/core/ ./internal/dnsserver/ ./internal/scan/ ./internal/atlas/

# One iteration keeps CI fast; run with a larger -benchtime locally for
# stable numbers.
bench:
	$(GO) test -run '^$$' -bench BenchmarkScanThroughput -benchtime 1x .

# Machine-readable numbers for the sharded pipelines (attribution,
# campaigns, Table 3, CSV parse) and the zero-allocation exchange path.
# BENCH_exchange.json carries B/op and allocs/op (-benchmem): the wire
# codec, the authoritative handler, both transports, and the scan
# throughput bench that multiplies them.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkAttribute$$|BenchmarkAtlasCampaign$$|BenchmarkTable3$$|BenchmarkParseCSV$$' -benchtime 10x . | $(GO) run ./cmd/benchjson > BENCH_pipeline.json
	@cat BENCH_pipeline.json
	{ $(GO) test -run '^$$' -bench 'BenchmarkEncodeECSQuery$$|BenchmarkEncoderReuse$$|BenchmarkDecodeResponse$$|BenchmarkDecodeInto$$' -benchtime 2000x -benchmem ./internal/dnswire/ ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkAuthServerHandle$$|BenchmarkExchangeMemTransport$$|BenchmarkExchangeUDP$$' -benchtime 2000x -benchmem ./internal/dnsserver/ ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkScanThroughput$$' -benchtime 1x -benchmem . ; } | $(GO) run ./cmd/benchjson > BENCH_exchange.json
	@cat BENCH_exchange.json
