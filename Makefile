GO ?= go

.PHONY: check vet build test race bench

check: vet build race bench

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration keeps CI fast; run with a larger -benchtime locally for
# stable numbers.
bench:
	$(GO) test -run '^$$' -bench BenchmarkScanThroughput -benchtime 1x .
