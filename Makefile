GO ?= go

# Where bench-json writes its output; bench-gate points this at a temp
# directory to get a fresh run without clobbering the committed files.
BENCH_DIR ?= .

.PHONY: check vet lint build test race alloc bench bench-json bench-gate chaos relay-bench relayd-smoke

# BENCH_GATE=1 appends the benchmark regression gate (a full fresh
# bench-json run — minutes, not seconds), so plain `make check` stays
# fast. CI always runs the gate as its own job.
check: vet lint build race alloc bench $(if $(filter 1,$(BENCH_GATE)),bench-gate)

vet:
	$(GO) vet ./...

# Project-specific analyzers (pool lifecycle, determinism, atomic-field
# discipline, enum exhaustiveness, lock ordering, goroutine termination,
# atomic durable writes) plus the hotalloc escape gate against
# lint/hotalloc.manifest. Dependency-free: relaylint is built from this
# module with the same toolchain as the rest of the tree.
lint:
	$(GO) run ./cmd/relaylint -hotalloc ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Allocation-regression tests must run WITHOUT the race detector: the
# race runtime's allocation instrumentation makes testing.AllocsPerRun
# report noise, so these files carry a `//go:build !race` tag and get
# their own non-race invocation (CI runs this in the chaos job).
alloc:
	$(GO) test -run 'ZeroAlloc|AllocBudget' ./internal/dnsserver/ ./internal/dnswire/ ./internal/core/ ./internal/masque/

# Chaos suite under the race detector: scans through the fault plane
# converge to the fault-free dataset, killed scans resume bit-identically,
# and the breaker/backoff/retry/campaign resilience paths hold up.
chaos:
	$(GO) test -race \
		-run 'Chaos|Checkpoint|Backoff|Breaker|Fault|Injector|Profile|Resilien|Retr|Resume|Dominant|Rotation|Campaign|BlockingStudy|RunDirect|RunRetries|RunDisting|ConnectWithRetry|VirtualClock' \
		./internal/faults/ ./internal/core/ ./internal/colstore/ ./internal/dnsserver/ ./internal/scan/ ./internal/atlas/ ./internal/masque/ ./internal/relayd/

# End-to-end service smoke: boot cmd/relayd on the virtual clock, wait
# for a full cycle, scrape /healthz and /metrics, SIGTERM, and require
# a clean drain. Mirrors the relayd-smoke CI job.
relayd-smoke:
	./scripts/relayd-smoke.sh

# One iteration keeps CI fast; run with a larger -benchtime locally for
# stable numbers.
bench:
	$(GO) test -run '^$$' -bench BenchmarkScanThroughput -benchtime 1x .

# Machine-readable numbers for the sharded pipelines (attribution,
# campaigns, Table 3, CSV parse) and the zero-allocation exchange path.
# BENCH_exchange.json carries B/op and allocs/op (-benchmem): the wire
# codec, the authoritative handler, both transports, and the scan
# throughput bench that multiplies them.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkAttribute$$|BenchmarkAtlasCampaign$$|BenchmarkTable3$$|BenchmarkParseCSV$$' -benchtime 10x . | $(GO) run ./cmd/benchjson > $(BENCH_DIR)/BENCH_pipeline.json
	@cat $(BENCH_DIR)/BENCH_pipeline.json
	{ $(GO) test -run '^$$' -bench 'BenchmarkEncodeECSQuery$$|BenchmarkEncoderReuse$$|BenchmarkDecodeResponse$$|BenchmarkDecodeInto$$' -benchtime 2000x -benchmem ./internal/dnswire/ ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkAuthServerHandle$$|BenchmarkExchangeMemTransport$$|BenchmarkExchangeUDP$$' -benchtime 2000x -benchmem ./internal/dnsserver/ ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkScanThroughput$$' -benchtime 1x -benchmem . ; } | $(GO) run ./cmd/benchjson > $(BENCH_DIR)/BENCH_exchange.json
	@cat $(BENCH_DIR)/BENCH_exchange.json
	{ $(GO) test -run '^$$' -bench 'BenchmarkPersistCanonicalRead$$|BenchmarkPersistSidecarLoad$$|BenchmarkDiffMap$$|BenchmarkDiffStreaming$$' -benchtime 10x . ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkPersistSidecarEncode$$' -benchtime 500x . ; } | $(GO) run ./cmd/benchjson > $(BENCH_DIR)/BENCH_persist.json
	@cat $(BENCH_DIR)/BENCH_persist.json
	$(MAKE) BENCH_DIR=$(BENCH_DIR) relay-bench

# Serving-plane load run: cmd/relayload establishes 1M concurrent
# in-process tunnel sessions (exiting nonzero below that), relays the
# steady-state frame workload and times typed rejections; benchjson
# turns its output into BENCH_relay.json.
relay-bench:
	$(GO) run ./cmd/relayload | $(GO) run ./cmd/benchjson > $(BENCH_DIR)/BENCH_relay.json
	@cat $(BENCH_DIR)/BENCH_relay.json

# Benchmark regression gate: a fresh bench-json run into a temp
# directory, diffed against the committed baselines. cmd/benchdiff
# exits 1 on any regression beyond the threshold, which fails the
# chained recipe (and so the CI bench-gate job). Noisy benchmarks get
# per-benchmark thresholds instead of threatening CI: the
# single-iteration scan bench swings ±15% run to run, relayload's
# wall-clock phases breathe with runner scheduling (the tiny-ns
# rejection p99 most of all), and the persist benches (10 iterations
# of multi-ms disk-and-parse work) gate at 50% — wide enough for a
# loaded runner, tight enough to catch the ~12×/~30× wins regressing.
bench-gate:
	@dir=$$(mktemp -d) && \
	$(MAKE) BENCH_DIR=$$dir bench-json && \
	$(GO) run ./cmd/benchdiff BENCH_pipeline.json $$dir/BENCH_pipeline.json && \
	$(GO) run ./cmd/benchdiff \
		-threshold-for 'BenchmarkScanThroughput.*=35' \
		BENCH_exchange.json $$dir/BENCH_exchange.json && \
	$(GO) run ./cmd/benchdiff -threshold 50 \
		BENCH_persist.json $$dir/BENCH_persist.json && \
	$(GO) run ./cmd/benchdiff -threshold 35 \
		-threshold-for 'BenchmarkRelayRejectP99=200' \
		-threshold-for 'BenchmarkRelaySessionSetup=50' \
		BENCH_relay.json $$dir/BENCH_relay.json
