// Longitudinal data-plane benchmarks: the persistence and diff paths
// relayd runs every virtual month. A seeded 12-month history (churned
// the way the paper's ingress lists churn: a twelfth vanishes, a
// twelfth moves operator, a tenth appears) is written once per process
// as canonical text plus columnar sidecars, and the benchmarks measure
// the three costs that bound a catch-up replay: parsing the text,
// loading the sidecar, and diffing adjacent months. benchjson turns the
// output into BENCH_persist.json for the regression gate.
package privaterelay_test

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"net/netip"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/colstore"
	"github.com/relay-networks/privaterelay/internal/core"
	"github.com/relay-networks/privaterelay/internal/relayd"
)

// persistMonths is the seeded history length and persistAddrs the size
// of the first month; later months churn around that size.
const (
	persistMonths = 12
	persistAddrs  = 50000
)

type persistEnv struct {
	dir    string
	months []bgp.Month
	maps   []*core.Dataset     // map-backed datasets, one per month
	cols   []*colstore.Dataset // columnar views of the same months
	paths  []string
}

var (
	persistOnce sync.Once
	persistVal  *persistEnv
	persistErr  error
)

// persist builds the shared 12-month on-disk history once per process.
func persist(b *testing.B) *persistEnv {
	b.Helper()
	persistOnce.Do(func() { persistVal, persistErr = buildPersistEnv() })
	if persistErr != nil {
		b.Fatal(persistErr)
	}
	return persistVal
}

func buildPersistEnv() (*persistEnv, error) {
	dir, err := os.MkdirTemp("", "persist-bench-*")
	if err != nil {
		return nil, err
	}
	e := &persistEnv{dir: dir}
	rng := rand.New(rand.NewPCG(7, 11))
	ds := synthPersistDataset(rng, persistAddrs)
	for m := 1; m <= persistMonths; m++ {
		month := bgp.Month{Year: 2022, M: m}
		if m > 1 {
			ds = churnPersistDataset(rng, ds)
		}
		path := filepath.Join(dir, fmt.Sprintf("mask-2022-%02d.ds", m))
		if err := core.SaveCanonicalFile(path, ds); err != nil {
			return nil, err
		}
		cs, err := ds.Columns()
		if err != nil {
			return nil, err
		}
		e.months = append(e.months, month)
		e.maps = append(e.maps, ds)
		e.cols = append(e.cols, cs)
		e.paths = append(e.paths, path)
	}
	return e, nil
}

// synthPersistDataset builds a month with ¾ v4 and ¼ v6 addresses
// spread across eight operator ASes.
func synthPersistDataset(rng *rand.Rand, n int) *core.Dataset {
	ds := &core.Dataset{
		Domain:    "mask.icloud.com",
		Addresses: make(map[netip.Addr]bgp.ASN, n),
		Serving:   make(map[bgp.ASN]*core.ServingStats),
	}
	for len(ds.Addresses) < n {
		var addr netip.Addr
		if rng.IntN(4) == 0 {
			var b [16]byte
			b[0], b[1] = 0x2a, 0x02
			for i := 2; i < 16; i++ {
				b[i] = byte(rng.UintN(256))
			}
			addr = netip.AddrFrom16(b)
		} else {
			addr = netip.AddrFrom4([4]byte{
				byte(17 + rng.UintN(64)), byte(rng.UintN(256)),
				byte(rng.UintN(256)), byte(rng.UintN(256)),
			})
		}
		ds.Addresses[addr] = bgp.ASN(714 + rng.UintN(8))
	}
	for i := 0; i < 8; i++ {
		client := bgp.ASN(3200 + i)
		ds.Serving[client] = &core.ServingStats{
			SubnetsByOperator: map[bgp.ASN]int64{
				714:   int64(100 + i),
				20940: int64(50 + i),
			},
		}
	}
	return ds
}

// churnPersistDataset applies one month of churn: 1/12 of addresses
// vanish, 1/12 move operator, and 1/10 of the size appears fresh.
func churnPersistDataset(rng *rand.Rand, prev *core.Dataset) *core.Dataset {
	next := &core.Dataset{
		Domain:    prev.Domain,
		Addresses: make(map[netip.Addr]bgp.ASN, len(prev.Addresses)),
		Serving:   prev.Serving,
	}
	for addr, asn := range prev.Addresses {
		switch rng.IntN(12) {
		case 0: // vanished
		case 1:
			next.Addresses[addr] = bgp.ASN(714 + (uint32(asn)-714+1+rng.Uint32N(7))%8)
		default:
			next.Addresses[addr] = asn
		}
	}
	fresh := synthPersistDataset(rng, len(prev.Addresses)/10)
	for addr, asn := range fresh.Addresses {
		next.Addresses[addr] = asn
	}
	return next
}

// BenchmarkPersistCanonicalRead parses one month of canonical text —
// the cold path a sidecar-less catch-up pays per dataset.
func BenchmarkPersistCanonicalRead(b *testing.B) {
	e := persist(b)
	text, err := os.ReadFile(e.paths[persistMonths-1])
	if err != nil {
		b.Fatal(err)
	}
	rows := float64(e.cols[persistMonths-1].Rows())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ReadCanonical(bytes.NewReader(text)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows*float64(b.N)/b.Elapsed().Seconds(), "rows/sec")
}

// BenchmarkPersistSidecarLoad loads the same month through the columnar
// sidecar (always a cache hit here): fingerprint the text, decode the
// binary, validate the footer.
func BenchmarkPersistSidecarLoad(b *testing.B) {
	e := persist(b)
	path := e.paths[persistMonths-1]
	rows := float64(e.cols[persistMonths-1].Rows())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs, status, err := core.LoadColumns(path)
		if err != nil {
			b.Fatal(err)
		}
		if status != core.SidecarHit {
			b.Fatalf("sidecar status = %v, want hit", status)
		}
		if cs.Rows() != int(rows) {
			b.Fatalf("rows = %d, want %d", cs.Rows(), int(rows))
		}
	}
	b.ReportMetric(rows*float64(b.N)/b.Elapsed().Seconds(), "rows/sec")
}

// BenchmarkPersistSidecarEncode serializes one month's columns to the
// sidecar binary form (the write half of SaveCanonicalFile, minus I/O).
func BenchmarkPersistSidecarEncode(b *testing.B) {
	e := persist(b)
	cs := e.cols[persistMonths-1]
	src := colstore.SourceInfo{Size: 1, CRC: 1}
	buf := cs.AppendBinary(nil, src)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = cs.AppendBinary(buf[:0], src)
	}
}

// BenchmarkDiffMap generates all eleven month-over-month diffs with the
// map-based ComputeDiff (hash every address of the newer month against
// the older, then sort the change list).
func BenchmarkDiffMap(b *testing.B) {
	e := persist(b)
	var changes int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		changes = 0
		for g := 1; g < persistMonths; g++ {
			d := relayd.ComputeDiff(g, e.months[g-1], e.months[g], e.maps[g-1], e.maps[g])
			changes += len(d.Appeared) + len(d.Vanished) + len(d.MovedAS)
		}
	}
	b.ReportMetric(float64(changes), "changes")
	b.ReportMetric(float64(changes*b.N)/b.Elapsed().Seconds(), "changes/sec")
}

// BenchmarkDiffStreaming generates the same eleven diffs with the
// streaming two-pointer merge over sorted columns — no maps, already in
// canonical order. The relayd chaos suite pins its output byte-identical
// to ComputeDiff's; this benchmark measures the gap.
func BenchmarkDiffStreaming(b *testing.B) {
	e := persist(b)
	var changes int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		changes = 0
		for g := 1; g < persistMonths; g++ {
			d := relayd.ComputeDiffColumns(g, e.months[g-1], e.months[g], e.cols[g-1], e.cols[g])
			changes += len(d.Appeared) + len(d.Vanished) + len(d.MovedAS)
		}
	}
	b.ReportMetric(float64(changes), "changes")
	b.ReportMetric(float64(changes*b.N)/b.Elapsed().Seconds(), "changes/sec")
}
