// Command report regenerates every table and figure of the paper in one
// run and prints the full text report — the data behind EXPERIMENTS.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"
)

import (
	"github.com/relay-networks/privaterelay/internal/atomicio"
	"github.com/relay-networks/privaterelay/internal/experiments"
)

func main() {
	var (
		seed    = flag.Uint64("seed", 42, "world seed")
		scale   = flag.Float64("scale", 0.002, "client-universe scale (1.0 = paper scale; large scales take hours, like the real 40h scan)")
		out     = flag.String("out", "", "also write the report to this file")
		figures = flag.String("figures", "", "also export every figure's raw series as CSV files into this directory")
	)
	flag.Parse()

	start := time.Now()
	env := experiments.NewEnv(*seed, *scale)
	report, err := env.FullReport(context.Background())
	if err != nil {
		log.Fatalf("report: %v", err)
	}
	if *figures != "" {
		if err := os.MkdirAll(*figures, 0o755); err != nil {
			log.Fatal(err)
		}
		files, err := env.ExportFigures(context.Background(), *figures, 96)
		if err != nil {
			log.Fatalf("figures: %v", err)
		}
		report += fmt.Sprintf("\nexported %d figure series to %s\n", len(files), *figures)
	}
	report += fmt.Sprintf("\ngenerated in %v\n", time.Since(start).Truncate(time.Millisecond))
	fmt.Print(report)
	if *out != "" {
		if err := atomicio.WriteFile(*out, func(w io.Writer) error {
			_, werr := io.WriteString(w, report)
			return werr
		}); err != nil {
			log.Fatal(err)
		}
	}
}
