// Command benchdiff gates the benchmark trajectory: it compares a fresh
// benchjson run against a committed baseline (BENCH_exchange.json,
// BENCH_pipeline.json, BENCH_relay.json) and exits non-zero when any
// shared benchmark regressed beyond its threshold — throughput
// (items/sec) down, or ns/op up, by more than the allowed percent. CI
// runs it in the bench-gate job; locally it hides behind
// `make check BENCH_GATE=1`.
//
// Usage:
//
//	benchdiff [-threshold 10] [-threshold-for regex=pct]... baseline.json fresh.json [fresh2.json ...]
//
// Noisy benchmarks get two relief valves:
//
//   - -threshold-for widens (or tightens) the gate per benchmark:
//     repeatable, first matching regex wins, e.g.
//     -threshold-for 'BenchmarkScanThroughput.*=35' for the
//     single-iteration scan bench whose run-to-run spread is ±15%.
//   - Passing several fresh files gates on the per-metric median of
//     the runs (median-of-3 kills one-off scheduler hiccups without
//     hiding a real trend).
//
// Benchmarks present in only one file are listed but never fail the
// gate: adding or renaming a benchmark should not require a baseline
// update in the same commit to keep CI green.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result mirrors cmd/benchjson's output entry. Only the fields the
// gate compares are decoded; unknown keys are ignored so the formats
// can grow independently.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	ItemsPerSec float64 `json:"items_per_sec"`
	ItemsUnit   string  `json:"items_unit"`
}

// thresholdRule is one -threshold-for override.
type thresholdRule struct {
	re  *regexp.Regexp
	pct float64
}

// thresholds resolves a benchmark name to its gate percentage: the
// first matching -threshold-for rule, else the global default.
type thresholds struct {
	rules      []thresholdRule
	defaultPct float64
}

func (t *thresholds) forName(name string) float64 {
	for _, r := range t.rules {
		if r.re.MatchString(name) {
			return r.pct
		}
	}
	return t.defaultPct
}

// ruleFlag parses repeated `-threshold-for regex=pct` flags.
type ruleFlag struct{ rules *[]thresholdRule }

func (f ruleFlag) String() string { return "" }

func (f ruleFlag) Set(v string) error {
	eq := strings.LastIndexByte(v, '=')
	if eq < 0 {
		return fmt.Errorf("want regex=pct, got %q", v)
	}
	re, err := regexp.Compile(v[:eq])
	if err != nil {
		return err
	}
	pct, err := strconv.ParseFloat(v[eq+1:], 64)
	if err != nil {
		return fmt.Errorf("bad percentage in %q: %w", v, err)
	}
	*f.rules = append(*f.rules, thresholdRule{re: re, pct: pct})
	return nil
}

// verdict classifies one benchmark's old→new movement.
type verdict int

const (
	verdictOK verdict = iota
	verdictImproved
	verdictRegressed
	verdictOnlyBaseline
	verdictOnlyFresh
)

func (v verdict) String() string {
	switch v {
	case verdictImproved:
		return "improved"
	case verdictRegressed:
		return "REGRESSED"
	case verdictOnlyBaseline:
		return "only in baseline"
	case verdictOnlyFresh:
		return "only in fresh run"
	default:
		return "ok"
	}
}

// row is one line of the comparison table.
type row struct {
	Name    string
	Metric  string  // "subnets/sec", "ns/op", ...
	Old     float64
	New     float64
	Delta   float64 // percent, sign follows the raw metric direction
	Verdict verdict
}

// diff compares fresh against baseline benchmark by benchmark.
// Throughput metrics gate on relative loss, ns/op on relative growth;
// a benchmark reporting items/sec is judged on that alone (its ns/op
// moves inversely and would double-count the same change). The bool
// reports whether any row regressed beyond its threshold.
func diff(baseline, fresh map[string]Result, thr *thresholds) ([]row, bool) {
	names := map[string]bool{}
	for n := range baseline {
		names[n] = true
	}
	for n := range fresh {
		names[n] = true
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)

	var rows []row
	regressed := false
	for _, name := range ordered {
		old, inOld := baseline[name]
		cur, inNew := fresh[name]
		switch {
		case !inNew:
			rows = append(rows, row{Name: name, Verdict: verdictOnlyBaseline})
			continue
		case !inOld:
			rows = append(rows, row{Name: name, Verdict: verdictOnlyFresh})
			continue
		}
		thresholdPct := thr.forName(name)
		r := row{Name: name}
		if old.ItemsPerSec > 0 && cur.ItemsPerSec > 0 {
			unit := old.ItemsUnit
			if unit == "" {
				unit = "items"
			}
			r.Metric = unit + "/sec"
			r.Old, r.New = old.ItemsPerSec, cur.ItemsPerSec
			r.Delta = (cur.ItemsPerSec - old.ItemsPerSec) / old.ItemsPerSec * 100
			if r.Delta < -thresholdPct {
				r.Verdict = verdictRegressed
			} else if r.Delta > thresholdPct {
				r.Verdict = verdictImproved
			}
		} else if old.NsPerOp > 0 && cur.NsPerOp > 0 {
			r.Metric = "ns/op"
			r.Old, r.New = old.NsPerOp, cur.NsPerOp
			r.Delta = (cur.NsPerOp - old.NsPerOp) / old.NsPerOp * 100
			if r.Delta > thresholdPct {
				r.Verdict = verdictRegressed
			} else if r.Delta < -thresholdPct {
				r.Verdict = verdictImproved
			}
		}
		if r.Verdict == verdictRegressed {
			regressed = true
		}
		rows = append(rows, r)
	}
	return rows, regressed
}

// medianResults folds several fresh runs into one result set: each
// metric is the per-benchmark median over the runs reporting it. A
// benchmark missing from some runs is judged on the runs that have it.
func medianResults(runs []map[string]Result) map[string]Result {
	if len(runs) == 1 {
		return runs[0]
	}
	names := map[string]bool{}
	for _, run := range runs {
		for n := range run {
			names[n] = true
		}
	}
	out := make(map[string]Result, len(names))
	for n := range names {
		var ns, items []float64
		unit := ""
		for _, run := range runs {
			r, ok := run[n]
			if !ok {
				continue
			}
			if r.NsPerOp > 0 {
				ns = append(ns, r.NsPerOp)
			}
			if r.ItemsPerSec > 0 {
				items = append(items, r.ItemsPerSec)
			}
			if unit == "" {
				unit = r.ItemsUnit
			}
		}
		out[n] = Result{NsPerOp: median(ns), ItemsPerSec: median(items), ItemsUnit: unit}
	}
	return out
}

// median returns the middle value (lower-middle for even counts; the
// conservative pick for a gate) or 0 for an empty set.
func median(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	return vals[(len(vals)-1)/2]
}

// formatTable renders rows with aligned columns for terminal reading.
func formatTable(rows []row) string {
	var sb strings.Builder
	nameW := len("benchmark")
	for _, r := range rows {
		if len(r.Name) > nameW {
			nameW = len(r.Name)
		}
	}
	fmt.Fprintf(&sb, "%-*s  %14s  %14s  %8s  %-12s  %s\n",
		nameW, "benchmark", "baseline", "fresh", "delta", "metric", "verdict")
	for _, r := range rows {
		if r.Metric == "" {
			fmt.Fprintf(&sb, "%-*s  %14s  %14s  %8s  %-12s  %s\n",
				nameW, r.Name, "-", "-", "-", "-", r.Verdict)
			continue
		}
		fmt.Fprintf(&sb, "%-*s  %14s  %14s  %+7.1f%%  %-12s  %s\n",
			nameW, r.Name, formatNum(r.Old), formatNum(r.New), r.Delta, r.Metric, r.Verdict)
	}
	return sb.String()
}

// formatNum prints a measurement compactly without scientific notation.
func formatNum(v float64) string {
	if v >= 100 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

// readResults decodes one benchjson file.
func readResults(path string) (map[string]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := map[string]Result{}
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

func main() {
	thr := &thresholds{}
	flag.Float64Var(&thr.defaultPct, "threshold", 10, "default regression threshold in percent")
	flag.Var(ruleFlag{&thr.rules}, "threshold-for",
		"per-benchmark threshold override as regex=pct (repeatable, first match wins)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold pct] [-threshold-for regex=pct]... baseline.json fresh.json [fresh2.json ...]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 2 {
		flag.Usage()
		os.Exit(2)
	}
	baseline, err := readResults(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	var runs []map[string]Result
	for _, path := range flag.Args()[1:] {
		run, err := readResults(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		runs = append(runs, run)
	}
	rows, regressed := diff(baseline, medianResults(runs), thr)
	os.Stdout.WriteString(formatTable(rows))
	if regressed {
		fmt.Fprintf(os.Stderr, "benchdiff: regression beyond threshold against %s\n", flag.Arg(0))
		os.Exit(1)
	}
}
