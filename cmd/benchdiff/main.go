// Command benchdiff gates the benchmark trajectory: it compares a fresh
// benchjson run against a committed baseline (BENCH_exchange.json,
// BENCH_pipeline.json) and exits non-zero when any shared benchmark
// regressed beyond the threshold — throughput (items/sec) down, or
// ns/op up, by more than -threshold percent. CI runs it in the
// bench-gate job; locally it hides behind `make check BENCH_GATE=1`.
//
// Usage:
//
//	benchdiff [-threshold 10] baseline.json fresh.json
//
// Benchmarks present in only one file are listed but never fail the
// gate: adding or renaming a benchmark should not require a baseline
// update in the same commit to keep CI green.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Result mirrors cmd/benchjson's output entry. Only the fields the
// gate compares are decoded; unknown keys are ignored so the formats
// can grow independently.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	ItemsPerSec float64 `json:"items_per_sec"`
	ItemsUnit   string  `json:"items_unit"`
}

// verdict classifies one benchmark's old→new movement.
type verdict int

const (
	verdictOK verdict = iota
	verdictImproved
	verdictRegressed
	verdictOnlyBaseline
	verdictOnlyFresh
)

func (v verdict) String() string {
	switch v {
	case verdictImproved:
		return "improved"
	case verdictRegressed:
		return "REGRESSED"
	case verdictOnlyBaseline:
		return "only in baseline"
	case verdictOnlyFresh:
		return "only in fresh run"
	default:
		return "ok"
	}
}

// row is one line of the comparison table.
type row struct {
	Name    string
	Metric  string  // "subnets/sec", "ns/op", ...
	Old     float64
	New     float64
	Delta   float64 // percent, sign follows the raw metric direction
	Verdict verdict
}

// diff compares fresh against baseline benchmark by benchmark.
// Throughput metrics gate on relative loss, ns/op on relative growth;
// a benchmark reporting items/sec is judged on that alone (its ns/op
// moves inversely and would double-count the same change). The bool
// reports whether any row regressed beyond thresholdPct.
func diff(baseline, fresh map[string]Result, thresholdPct float64) ([]row, bool) {
	names := map[string]bool{}
	for n := range baseline {
		names[n] = true
	}
	for n := range fresh {
		names[n] = true
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)

	var rows []row
	regressed := false
	for _, name := range ordered {
		old, inOld := baseline[name]
		cur, inNew := fresh[name]
		switch {
		case !inNew:
			rows = append(rows, row{Name: name, Verdict: verdictOnlyBaseline})
			continue
		case !inOld:
			rows = append(rows, row{Name: name, Verdict: verdictOnlyFresh})
			continue
		}
		r := row{Name: name}
		if old.ItemsPerSec > 0 && cur.ItemsPerSec > 0 {
			unit := old.ItemsUnit
			if unit == "" {
				unit = "items"
			}
			r.Metric = unit + "/sec"
			r.Old, r.New = old.ItemsPerSec, cur.ItemsPerSec
			r.Delta = (cur.ItemsPerSec - old.ItemsPerSec) / old.ItemsPerSec * 100
			if r.Delta < -thresholdPct {
				r.Verdict = verdictRegressed
			} else if r.Delta > thresholdPct {
				r.Verdict = verdictImproved
			}
		} else if old.NsPerOp > 0 && cur.NsPerOp > 0 {
			r.Metric = "ns/op"
			r.Old, r.New = old.NsPerOp, cur.NsPerOp
			r.Delta = (cur.NsPerOp - old.NsPerOp) / old.NsPerOp * 100
			if r.Delta > thresholdPct {
				r.Verdict = verdictRegressed
			} else if r.Delta < -thresholdPct {
				r.Verdict = verdictImproved
			}
		}
		if r.Verdict == verdictRegressed {
			regressed = true
		}
		rows = append(rows, r)
	}
	return rows, regressed
}

// formatTable renders rows with aligned columns for terminal reading.
func formatTable(rows []row) string {
	var sb strings.Builder
	nameW := len("benchmark")
	for _, r := range rows {
		if len(r.Name) > nameW {
			nameW = len(r.Name)
		}
	}
	fmt.Fprintf(&sb, "%-*s  %14s  %14s  %8s  %-12s  %s\n",
		nameW, "benchmark", "baseline", "fresh", "delta", "metric", "verdict")
	for _, r := range rows {
		if r.Metric == "" {
			fmt.Fprintf(&sb, "%-*s  %14s  %14s  %8s  %-12s  %s\n",
				nameW, r.Name, "-", "-", "-", "-", r.Verdict)
			continue
		}
		fmt.Fprintf(&sb, "%-*s  %14s  %14s  %+7.1f%%  %-12s  %s\n",
			nameW, r.Name, formatNum(r.Old), formatNum(r.New), r.Delta, r.Metric, r.Verdict)
	}
	return sb.String()
}

// formatNum prints a measurement compactly without scientific notation.
func formatNum(v float64) string {
	if v >= 100 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

// readResults decodes one benchjson file.
func readResults(path string) (map[string]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := map[string]Result{}
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

func main() {
	threshold := flag.Float64("threshold", 10, "regression threshold in percent")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold pct] baseline.json fresh.json")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	baseline, err := readResults(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	fresh, err := readResults(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	rows, regressed := diff(baseline, fresh, *threshold)
	os.Stdout.WriteString(formatTable(rows))
	if regressed {
		fmt.Fprintf(os.Stderr, "benchdiff: regression beyond %.0f%% against %s\n",
			*threshold, flag.Arg(0))
		os.Exit(1)
	}
}
