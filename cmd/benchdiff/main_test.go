package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureBaseline mimics a committed BENCH_exchange.json: a throughput
// benchmark, a ns/op-only benchmark, and one that the fresh run drops.
const fixtureBaseline = `{
  "BenchmarkScanThroughput/conc-1": {"ns_per_op": 40000000, "items_per_sec": 644249, "items_unit": "subnets"},
  "BenchmarkScanThroughput/conc-64": {"ns_per_op": 9000000, "items_per_sec": 3000000, "items_unit": "subnets"},
  "BenchmarkAuthServerHandle": {"ns_per_op": 500, "bytes_per_op": 0, "allocs_per_op": 0},
  "BenchmarkRetired": {"ns_per_op": 100}
}`

func writeFixture(t *testing.T, name, data string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func load(t *testing.T, data string) map[string]Result {
	t.Helper()
	res, err := readResults(writeFixture(t, "bench.json", data))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestGateFailsOnSyntheticRegression is the acceptance check for the
// gate itself: a >10% throughput drop and a >10% ns/op growth must both
// trip it.
func TestGateFailsOnSyntheticRegression(t *testing.T) {
	baseline := load(t, fixtureBaseline)
	fresh := load(t, `{
	  "BenchmarkScanThroughput/conc-1": {"ns_per_op": 46000000, "items_per_sec": 560000, "items_unit": "subnets"},
	  "BenchmarkScanThroughput/conc-64": {"ns_per_op": 9000000, "items_per_sec": 3000000, "items_unit": "subnets"},
	  "BenchmarkAuthServerHandle": {"ns_per_op": 580}
	}`)
	rows, regressed := diff(baseline, fresh, &thresholds{defaultPct: 10})
	if !regressed {
		t.Fatal("13% throughput drop and 16% ns/op growth did not trip the gate")
	}
	byName := map[string]row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if v := byName["BenchmarkScanThroughput/conc-1"].Verdict; v != verdictRegressed {
		t.Errorf("conc-1 verdict = %v, want REGRESSED", v)
	}
	if v := byName["BenchmarkAuthServerHandle"].Verdict; v != verdictRegressed {
		t.Errorf("AuthServerHandle verdict = %v, want REGRESSED", v)
	}
	if v := byName["BenchmarkScanThroughput/conc-64"].Verdict; v != verdictOK {
		t.Errorf("unchanged conc-64 verdict = %v, want ok", v)
	}
	if v := byName["BenchmarkRetired"].Verdict; v != verdictOnlyBaseline {
		t.Errorf("dropped benchmark verdict = %v, want only-in-baseline", v)
	}
}

// TestGatePassesWithinThreshold: movement inside ±10% — including a
// 9.9% throughput dip — must not fail the gate.
func TestGatePassesWithinThreshold(t *testing.T) {
	baseline := load(t, fixtureBaseline)
	fresh := load(t, `{
	  "BenchmarkScanThroughput/conc-1": {"ns_per_op": 44000000, "items_per_sec": 580469, "items_unit": "subnets"},
	  "BenchmarkScanThroughput/conc-64": {"ns_per_op": 8000000, "items_per_sec": 3400000, "items_unit": "subnets"},
	  "BenchmarkAuthServerHandle": {"ns_per_op": 540},
	  "BenchmarkNewlyAdded": {"ns_per_op": 77}
	}`)
	rows, regressed := diff(baseline, fresh, &thresholds{defaultPct: 10})
	if regressed {
		t.Fatalf("gate tripped inside threshold:\n%s", formatTable(rows))
	}
	for _, r := range rows {
		if r.Name == "BenchmarkScanThroughput/conc-64" && r.Verdict != verdictImproved {
			t.Errorf("13%% throughput gain verdict = %v, want improved", r.Verdict)
		}
		if r.Name == "BenchmarkNewlyAdded" && r.Verdict != verdictOnlyFresh {
			t.Errorf("new benchmark verdict = %v, want only-in-fresh", r.Verdict)
		}
	}
}

// TestThroughputJudgedOverNsPerOp: when a benchmark reports items/sec,
// its ns/op column is ignored — the two move inversely and would
// double-report one change.
func TestThroughputJudgedOverNsPerOp(t *testing.T) {
	baseline := load(t, `{"B": {"ns_per_op": 100, "items_per_sec": 1000, "items_unit": "probes"}}`)
	fresh := load(t, `{"B": {"ns_per_op": 400, "items_per_sec": 1000, "items_unit": "probes"}}`)
	rows, regressed := diff(baseline, fresh, &thresholds{defaultPct: 10})
	if regressed {
		t.Fatal("flat throughput failed the gate on its ns/op shadow metric")
	}
	if rows[0].Metric != "probes/sec" {
		t.Errorf("judged on %q, want probes/sec", rows[0].Metric)
	}
}

// TestPerBenchmarkThreshold: a -threshold-for override widens the gate
// for the matching benchmark only; the first matching rule wins.
func TestPerBenchmarkThreshold(t *testing.T) {
	baseline := load(t, `{
	  "BenchmarkNoisy": {"ns_per_op": 100},
	  "BenchmarkQuiet": {"ns_per_op": 100}
	}`)
	fresh := load(t, `{
	  "BenchmarkNoisy": {"ns_per_op": 125},
	  "BenchmarkQuiet": {"ns_per_op": 125}
	}`)
	thr := &thresholds{defaultPct: 10}
	if err := (ruleFlag{&thr.rules}).Set("BenchmarkNoisy=35"); err != nil {
		t.Fatal(err)
	}
	if err := (ruleFlag{&thr.rules}).Set("BenchmarkNoisy=1"); err != nil { // shadowed: first match wins
		t.Fatal(err)
	}
	rows, regressed := diff(baseline, fresh, thr)
	if !regressed {
		t.Fatal("25% growth on the default-threshold benchmark did not trip the gate")
	}
	for _, r := range rows {
		switch r.Name {
		case "BenchmarkNoisy":
			if r.Verdict != verdictOK {
				t.Errorf("widened benchmark verdict = %v, want ok", r.Verdict)
			}
		case "BenchmarkQuiet":
			if r.Verdict != verdictRegressed {
				t.Errorf("default-threshold benchmark verdict = %v, want REGRESSED", r.Verdict)
			}
		}
	}
	if err := (ruleFlag{&thr.rules}).Set("no-equals-sign"); err == nil {
		t.Error("malformed -threshold-for accepted")
	}
}

// TestMedianOfRuns: with several fresh runs the gate judges the
// per-metric median, so one scheduler hiccup cannot fail CI.
func TestMedianOfRuns(t *testing.T) {
	baseline := load(t, `{"B": {"ns_per_op": 100}}`)
	runs := []map[string]Result{
		load(t, `{"B": {"ns_per_op": 102}}`),
		load(t, `{"B": {"ns_per_op": 300}}`), // the hiccup
		load(t, `{"B": {"ns_per_op": 98}}`),
	}
	folded := medianResults(runs)
	if got := folded["B"].NsPerOp; got != 102 {
		t.Fatalf("median ns/op = %v, want 102", got)
	}
	if _, regressed := diff(baseline, folded, &thresholds{defaultPct: 10}); regressed {
		t.Fatal("one outlier run out of three tripped the gate")
	}
}

// TestFormatTable pins the human-readable shape: header, aligned
// columns, explicit verdict words.
func TestFormatTable(t *testing.T) {
	rows := []row{
		{Name: "BenchmarkA", Metric: "subnets/sec", Old: 644249, New: 560000, Delta: -13.1, Verdict: verdictRegressed},
		{Name: "BenchmarkB", Verdict: verdictOnlyBaseline},
	}
	out := formatTable(rows)
	for _, want := range []string{"benchmark", "baseline", "fresh", "REGRESSED", "only in baseline", "-13.1%"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

// TestReadResultsRejectsGarbage: a truncated file is a hard error, not
// an empty (and therefore silently passing) baseline.
func TestReadResultsRejectsGarbage(t *testing.T) {
	if _, err := readResults(writeFixture(t, "bad.json", `{"B": {`)); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	if _, err := readResults(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
