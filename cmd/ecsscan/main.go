// Command ecsscan runs the ECS-based ingress enumeration (§3, §4.1)
// against the simulated authoritative infrastructure and prints the
// discovered ingress addresses with AS attribution.
//
// By default the scan runs over the in-memory transport; -udp moves the
// DNS exchange onto a real loopback UDP socket, exercising the full wire
// format end to end.
//
// The resilience plane rides on three flag groups: -fault-profile
// injects deterministic DNS faults (timeouts, SERVFAIL, bursts) into the
// exchange path, -retries/-max-passes let the orchestrator absorb them,
// and -checkpoint/-resume persist progress so a killed scan continues
// where it stopped and converges to the same dataset.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/netip"
	"os"

	"github.com/relay-networks/privaterelay/internal/atomicio"
	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/core"
	"github.com/relay-networks/privaterelay/internal/dnsserver"
	"github.com/relay-networks/privaterelay/internal/faults"
	"github.com/relay-networks/privaterelay/internal/netsim"
)

func main() {
	var (
		seed    = flag.Uint64("seed", 1, "world seed")
		scale   = flag.Float64("scale", 0.002, "client-universe scale (1.0 = paper scale, ~12M /24s)")
		month   = flag.Int("month", 4, "scan month (1=Jan .. 4=Apr 2022)")
		domain  = flag.String("domain", dnsserver.MaskDomain, "service domain (mask.icloud.com. or mask-h2.icloud.com.)")
		useUDP  = flag.Bool("udp", false, "exchange DNS over a real loopback UDP socket")
		noSkip  = flag.Bool("no-scope-skip", false, "disable the ECS scope skip optimization (ablation)")
		listAll = flag.Bool("list", false, "print every discovered address")
		conc    = flag.Int("concurrency", 16, "parallel query workers (results are concurrency-independent)")
		qps     = flag.Float64("qps", 0, "client-side query rate limit (0 = unlimited)")
		outPath = flag.String("out", "", "save the dataset to this file")
		diffOld = flag.String("diff", "", "diff the new dataset against a previously saved one")

		retries      = flag.Int("retries", 1, "per-subnet in-pass query attempts")
		maxPasses    = flag.Int("max-passes", 1, "scan passes over failed subnets (raise with -fault-profile)")
		faultProfile = flag.String("fault-profile", "", "inject DNS faults: preset[,k=v...] (e.g. 'mild', 'harsh,seed=7', 'timeout=0.1,servfail=0.05')")
		ckptPath     = flag.String("checkpoint", "", "periodically checkpoint scan progress to this file")
		ckptEvery    = flag.Int64("checkpoint-every", 0, "checkpoint flush interval in completed /24s (0 = default)")
		resume       = flag.Bool("resume", false, "resume from an existing -checkpoint file instead of starting over")
	)
	flag.Parse()
	if *resume && *ckptPath == "" {
		log.Fatal("-resume requires -checkpoint")
	}

	if *month < 1 || *month > 4 {
		log.Fatal("month must be 1..4")
	}
	m := netsim.ScanMonths[*month-1]

	fmt.Fprintf(os.Stderr, "generating world (seed=%d scale=%g)...\n", *seed, *scale)
	w := netsim.NewWorld(netsim.Params{Seed: *seed, Scale: *scale})
	srv := dnsserver.NewAuthServer(w, m, nil)

	var exchanger dnsserver.Exchanger = &dnsserver.MemTransport{
		Handler: srv, Source: netip.MustParseAddr("198.51.100.53"),
	}
	if *useUDP {
		us, err := dnsserver.ListenUDP("127.0.0.1:0", srv)
		if err != nil {
			log.Fatalf("udp listen: %v", err)
		}
		defer us.Close()
		exchanger = &dnsserver.UDPClient{ServerAddr: us.Addr().String(), Retries: 2}
		fmt.Fprintf(os.Stderr, "authoritative server on %s\n", us.Addr())
	}

	var inj *faults.Injector
	if *faultProfile != "" {
		profile, err := faults.Parse(*faultProfile)
		if err != nil {
			log.Fatalf("fault-profile: %v", err)
		}
		inj = faults.NewInjector(exchanger, profile, nil, w.Table.Origin)
		exchanger = inj
		fmt.Fprintf(os.Stderr, "fault injection: %s\n", profile)
	}

	cfg := core.ScanConfig{
		Exchanger:    exchanger,
		Domain:       *domain,
		Universe:     w.RoutedV4Prefixes(),
		Attribution:  w.Table,
		RespectScope: !*noSkip,
		Concurrency:  *conc,
		Retries:      *retries,
		MaxPasses:    *maxPasses,
		QPS:          *qps,
	}
	if *ckptPath != "" {
		cfg.Checkpoint = &core.CheckpointConfig{Path: *ckptPath, Every: *ckptEvery, Resume: *resume}
	}
	ds, err := core.Scan(context.Background(), cfg)
	if err != nil {
		log.Fatalf("scan: %v", err)
	}

	fmt.Printf("scan %s %s: %d ingress addresses in %v\n", m, *domain, len(ds.Addresses), ds.Stats.Elapsed)
	fmt.Printf("queries=%d skipped=%d timeouts=%d (universe %d /24s)\n",
		ds.Stats.QueriesSent, ds.Stats.SubnetsSkipped, ds.Stats.Timeouts, ds.Stats.SubnetsTotal)
	if ds.Stats.ResumedSubnets > 0 {
		fmt.Printf("resumed: %d /24s carried over from %s\n", ds.Stats.ResumedSubnets, *ckptPath)
	}
	if ds.Stats.FaultAttempts() > 0 || ds.Stats.Retries > 0 {
		fmt.Printf("faults: %d faulted attempts (timeout=%d servfail=%d refused=%d truncated=%d stale=%d), %d retries, %d deferrals, %d breaker trips, %d passes, %d subnets lost\n",
			ds.Stats.FaultAttempts(), ds.Stats.TimeoutAttempts, ds.Stats.ServFailAttempts,
			ds.Stats.RefusedAttempts, ds.Stats.TruncatedAttempts, ds.Stats.StaleAttempts,
			ds.Stats.Retries, ds.Stats.Deferrals, ds.Stats.BreakerTrips, ds.Stats.Passes, ds.Stats.FailedSubnets)
	}
	if inj != nil {
		fmt.Printf("injected: %d faults (timeout=%d servfail=%d refused=%d truncated=%d stale=%d)\n",
			inj.Stats.Total(), inj.Stats.Timeouts.Load(), inj.Stats.ServFails.Load(),
			inj.Stats.Refused.Load(), inj.Stats.Truncated.Load(), inj.Stats.Stale.Load())
	}
	for as, n := range ds.OperatorCounts() {
		fmt.Printf("  %-10s %5d addresses\n", netsim.ASName(as), n)
	}
	if *listAll {
		for _, as := range []bgp.ASN{netsim.ASApple, netsim.ASAkamaiPR} {
			for _, a := range ds.AddressesOf(as) {
				fmt.Printf("%s,%s\n", a, netsim.ASName(as))
			}
		}
	}
	if *outPath != "" {
		if err := atomicio.WriteFile(*outPath, func(w io.Writer) error {
			return ds.Save(w)
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dataset saved to %s\n", *outPath)
	}
	if *diffOld != "" {
		f, err := os.Open(*diffOld)
		if err != nil {
			log.Fatal(err)
		}
		old, err := core.ReadDataset(f)
		f.Close()
		if err != nil {
			log.Fatalf("read %s: %v", *diffOld, err)
		}
		added, removed := core.Diff(old, ds)
		fmt.Printf("vs %s (%s, %d addrs): +%d added, -%d removed, growth %.1f%%\n",
			*diffOld, old.Domain, len(old.Addresses), len(added), len(removed),
			core.GrowthPercent(old, ds))
	}
}
