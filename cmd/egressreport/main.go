// Command egressreport analyzes an egress relay list (§4.2): Table 3,
// Table 4, the country-bias summary and the Figure 2/4/5 series. It reads
// a CSV in Apple's egress-ip-ranges format via -csv, or generates the
// calibrated synthetic list when no file is given.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"github.com/relay-networks/privaterelay/internal/analysis"
	"github.com/relay-networks/privaterelay/internal/atomicio"
	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/egress"
	"github.com/relay-networks/privaterelay/internal/netsim"
)

func main() {
	var (
		seed    = flag.Uint64("seed", 1, "world seed")
		csvPath = flag.String("csv", "", "egress-ip-ranges.csv to analyze (default: generate synthetic list)")
		dumpCSV = flag.String("write-csv", "", "write the (generated or parsed) list to this path")
		workers = flag.Int("workers", 8, "attribution/table worker count (results are identical at any count)")
	)
	flag.Parse()

	w := netsim.NewWorld(netsim.Params{Seed: *seed, Scale: 0.001})
	var list *egress.List
	if *csvPath != "" {
		f, err := os.Open(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if list, err = egress.ParseCSV(f); err != nil {
			log.Fatalf("parse: %v", err)
		}
		fmt.Printf("parsed %d entries from %s\n\n", len(list.Entries), *csvPath)
	} else {
		list = egress.Generate(w, *seed)
		fmt.Printf("generated %d entries (calibrated synthetic list)\n\n", len(list.Entries))
	}

	if *dumpCSV != "" {
		if err := atomicio.WriteFile(*dumpCSV, func(w io.Writer) error {
			return list.WriteCSV(w)
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote list to %s\n\n", *dumpCSV)
	}

	attributed := egress.AttributeN(list, w.Table, *workers)

	fmt.Println("== Table 3: egress subnets per operating AS ==")
	fmt.Print(analysis.RenderTable3(analysis.Table3N(attributed, *workers)))

	fmt.Println("\n== Table 4: covered cities ==")
	fmt.Print(analysis.RenderTable4(analysis.Table4N(attributed, *workers)))

	shares, small := analysis.CountrySharesN(attributed, 50, *workers)
	fmt.Println("\n== Country bias (§4.2) ==")
	for _, s := range shares[:5] {
		fmt.Printf("  %s  %6d subnets  %5.1f%%\n", s.CC, s.Subnets, s.Share)
	}
	fmt.Printf("  ... %d countries hold fewer than 50 subnets\n", small)

	fmt.Println("\n== Figure 2 panels (IPv4 geolocation) ==")
	akamai := analysis.GeoScatter(attributed, netsim.ASAkamaiPR, netsim.FamilyV4)
	akamai = append(akamai, analysis.GeoScatter(attributed, netsim.ASAkamaiEdge, netsim.FamilyV4)...)
	fmt.Print(analysis.RenderGeoBounds("Akamai", analysis.Bounds(akamai)))
	fmt.Print(analysis.RenderGeoBounds("Cloudflare", analysis.Bounds(analysis.GeoScatter(attributed, netsim.ASCloudflare, netsim.FamilyV4))))
	fmt.Print(analysis.RenderGeoBounds("Fastly", analysis.Bounds(analysis.GeoScatter(attributed, netsim.ASFastly, netsim.FamilyV4))))

	fmt.Println("\n== Figure 4 city CDFs (IPv6) ==")
	for _, as := range []struct {
		name string
		asn  netsimASN
	}{
		{"AkamaiPR", netsim.ASAkamaiPR},
		{"AkamaiEdge", netsim.ASAkamaiEdge},
		{"Cloudflare", netsim.ASCloudflare},
		{"Fastly", netsim.ASFastly},
	} {
		cdf := analysis.LocationCDF(attributed, as.asn, netsim.FamilyV6, analysis.ByCity)
		fmt.Print(analysis.RenderCDF(as.name, cdf))
	}
}

// netsimASN keeps the table literal readable.
type netsimASN = bgp.ASN
