// Command relaylint runs the project's static-analysis suite — see
// internal/lint — over the packages matched by the argument patterns
// (default ./...).
//
//	go run ./cmd/relaylint ./...
//	go run ./cmd/relaylint -hotalloc ./...
//
// -hotalloc additionally gates the compiler's escape analysis against
// lint/hotalloc.manifest (see internal/lint/hotalloc.go). -json emits
// the stable report schema (version, per-analyzer wall time, finding
// and suppression counts, findings) consumed as a CI artifact.
//
// Exit status: 0 clean, 1 findings, 2 load/usage errors. Findings are
// suppressed per line with `//lint:allow <analyzer> <justification>`;
// hotalloc is configured by its manifest instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/relay-networks/privaterelay/internal/lint"
)

func main() {
	var (
		jsonOut  = flag.Bool("json", false, "emit the stable report schema as JSON")
		only     = flag.String("only", "", "comma-separated analyzer names to run (default all)")
		list     = flag.Bool("list", false, "list analyzers and exit")
		hotalloc = flag.Bool("hotalloc", false, "also gate escape analysis against the hotalloc manifest")
		manifest = flag.String("hotalloc-manifest", "lint/hotalloc.manifest", "manifest path for -hotalloc")
	)
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		fmt.Printf("%-12s %s\n", lint.HotallocName,
			"gate compiler escape analysis against the committed zero-alloc manifest (needs -hotalloc; configured by "+*manifest+", not //lint:allow)")
		return
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(n)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
				delete(keep, a.Name)
			}
		}
		delete(keep, lint.HotallocName) // selected via -hotalloc, not -only
		for n := range keep {
			fmt.Fprintf(os.Stderr, "relaylint: unknown analyzer %q\n", n)
			os.Exit(2)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "relaylint: %v\n", err)
		os.Exit(2)
	}
	report, err := lint.RunSuite(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "relaylint: %v\n", err)
		os.Exit(2)
	}

	if *hotalloc {
		start := time.Now()
		hfs, err := lint.RunHotalloc(".", *manifest)
		if err != nil {
			fmt.Fprintf(os.Stderr, "relaylint: %v\n", err)
			os.Exit(2)
		}
		report.Analyzers = append(report.Analyzers, lint.AnalyzerStat{
			Name:     lint.HotallocName,
			WallMS:   float64(time.Since(start)) / float64(time.Millisecond),
			Findings: len(hfs),
		})
		report.Findings = append(report.Findings, hfs...)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "relaylint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range report.Findings {
			fmt.Println(f)
		}
	}
	if len(report.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "relaylint: %d finding(s)\n", len(report.Findings))
		os.Exit(1)
	}
}
