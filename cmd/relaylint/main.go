// Command relaylint runs the project's static-analysis suite — see
// internal/lint — over the packages matched by the argument patterns
// (default ./...).
//
//	go run ./cmd/relaylint ./...
//
// Exit status: 0 clean, 1 findings, 2 load/usage errors. Findings are
// suppressed per line with `//lint:allow <analyzer> <justification>`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/relay-networks/privaterelay/internal/lint"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as JSON")
		only    = flag.String("only", "", "comma-separated analyzer names to run (default all)")
		list    = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(n)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
				delete(keep, a.Name)
			}
		}
		for n := range keep {
			fmt.Fprintf(os.Stderr, "relaylint: unknown analyzer %q\n", n)
			os.Exit(2)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "relaylint: %v\n", err)
		os.Exit(2)
	}
	findings, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "relaylint: %v\n", err)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "relaylint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "relaylint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
