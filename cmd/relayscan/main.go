// Command relayscan runs the measurements through the relay (§4.3): the
// Figure 3 operator-change scan (5-minute cadence over a virtual day,
// open and fixed DNS resolution) and the 30-second egress rotation scan.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"github.com/relay-networks/privaterelay/internal/analysis"
	"github.com/relay-networks/privaterelay/internal/experiments"
	"github.com/relay-networks/privaterelay/internal/faults"
	"github.com/relay-networks/privaterelay/internal/netsim"
)

func main() {
	var (
		seed      = flag.Uint64("seed", 1, "world seed")
		scale     = flag.Float64("scale", 0.002, "client-universe scale")
		dayRounds = flag.Int("rounds", 288, "5-minute rounds of the operator scan (288 = one day)")
		rotRounds = flag.Int("rotation-rounds", 600, "30-second rounds of the rotation scan")

		connectRetries = flag.Int("connect-retries", 0, "tunnel-establishment attempts per round (0 = default 3)")
		faultProfile   = flag.String("fault-profile", "", "inject DNS faults into the device's resolver path (preset[,k=v...])")
	)
	flag.Parse()

	env := experiments.NewEnv(*seed, *scale)
	env.ConnectRetries.Attempts = *connectRetries
	if *faultProfile != "" {
		profile, err := faults.Parse(*faultProfile)
		if err != nil {
			log.Fatalf("fault-profile: %v", err)
		}
		env.FaultProfile = profile
	}
	res, err := env.RelayScan(context.Background(), *dayRounds, *rotRounds)
	if err != nil {
		log.Fatalf("relayscan: %v", err)
	}
	if res.Rotation.FailedRounds+res.Rotation.SafariFailures+res.Rotation.CurlFailures > 0 {
		fmt.Printf("degraded rounds: %d failed, %d safari-request failures, %d curl-request failures\n",
			res.Rotation.FailedRounds, res.Rotation.SafariFailures, res.Rotation.CurlFailures)
	}

	fmt.Print(analysis.RenderFigure3([]analysis.Figure3Series{
		{Label: "Open Scan", Rounds: len(res.Open), Changes: res.OpenChanges},
		{Label: "Fixed DNS Scan", Rounds: len(res.Fixed), Changes: res.FixedChanges},
	}))
	fmt.Printf("\nrotation at 30s cadence, dominant operator %s (%d of %d rounds):\n",
		netsim.ASName(res.RotationOperator), res.Rotation.Rounds, *rotRounds)
	fmt.Printf("  distinct egress addresses: %d\n", res.Rotation.DistinctAddrs)
	fmt.Printf("  distinct egress subnets:   %d\n", res.Rotation.DistinctSubnets)
	fmt.Printf("  address change rate:       %.0f%%\n", res.Rotation.ChangeRate*100)
	fmt.Printf("  parallel requests differing in egress: %d rounds\n", res.Rotation.ParallelDiffer)
	fmt.Printf("  across all operators: %d addrs / %d subnets\n",
		res.RotationAll.DistinctAddrs, res.RotationAll.DistinctSubnets)
}
