// Command relayd runs the continuous measurement service: scheduled
// ECS scans and Atlas campaigns with supervised retries, crash-safe
// checkpointed persistence, incremental month-over-month diff
// generations, and an HTTP plane serving /healthz, /readyz, /metrics
// and /reports/.
//
// Signals: SIGTERM and SIGINT begin a graceful drain — /readyz flips
// to 503, in-flight campaigns are cancelled (their checkpoints land),
// the HTTP server shuts down, and the process exits 0. A subsequent
// start over the same -state resumes exactly where the drain stopped.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/relay-networks/privaterelay/internal/relayd"
	"github.com/relay-networks/privaterelay/internal/vclock"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:9790", "HTTP listen address")
		state        = flag.String("state", "relayd-state", "durable state directory")
		seed         = flag.Uint64("seed", 6, "world seed")
		scale        = flag.Float64("scale", 0.0008, "world scale")
		concurrency  = flag.Int("concurrency", 8, "scan worker count")
		interval     = flag.Duration("interval", time.Hour, "pause between cycles (on the service clock)")
		cycles       = flag.Int("cycles", 0, "exit after N cycles (0 = run until signalled)")
		faultProfile = flag.String("fault-profile", "", "faults.Parse spec injected into every exchange (e.g. mild,seed=3)")
		atlasProbes  = flag.Int("atlas-probes", 0, "Atlas campaign probe count (0 disables)")
		atlasClus    = flag.Int("atlas-clusters", 0, "Atlas campaign subnet clusters")
		virtual      = flag.Bool("virtual-clock", false, "run campaigns on a virtual clock (sleeps cost no wall time)")
	)
	flag.Parse()

	var clock vclock.Clock = vclock.WallClock{}
	if *virtual {
		clock = pacedClock{vclock.NewVirtualClock()}
	}
	svc, err := relayd.New(relayd.ServiceConfig{
		Pipeline: relayd.PipelineConfig{
			Seed:          *seed,
			Scale:         *scale,
			StateDir:      *state,
			Clock:         clock,
			Concurrency:   *concurrency,
			FaultProfile:  *faultProfile,
			AtlasProbes:   *atlasProbes,
			AtlasClusters: *atlasClus,
		},
		Interval: *interval,
	})
	if err != nil {
		fail("%v", err)
	}
	defer svc.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail("%v", err)
	}
	server := &http.Server{Handler: svc.Handler()}
	httpDone := make(chan error, 1)
	go func() { httpDone <- server.Serve(ln) }()
	fmt.Printf("relayd: listening on %s\n", ln.Addr())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		sig := <-sigs
		fmt.Fprintf(os.Stderr, "relayd: %s, draining\n", sig)
		// Drain order: stop advertising readiness, then cancel the
		// campaign loop — in-flight scans write their final checkpoint
		// on cancellation, so nothing is lost.
		svc.BeginDrain()
		cancel()
	}()

	runErr := svc.Run(ctx, *cycles)

	shutdownCtx, shutdownCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer shutdownCancel()
	if err := server.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "relayd: http shutdown: %v\n", err)
	}
	<-httpDone

	if runErr != nil && !errors.Is(runErr, context.Canceled) {
		fail("%v", runErr)
	}
	fmt.Println("relayd: drained cleanly")
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "relayd: "+format+"\n", args...)
	os.Exit(1)
}

// pacedClock wraps a virtual clock with a short wall pause per sleep,
// so a caught-up -virtual-clock service idles scrapeably instead of
// spinning through instant virtual sleeps.
type pacedClock struct{ vclock.Clock }

func (c pacedClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := c.Clock.Sleep(ctx, d); err != nil {
		return err
	}
	t := time.NewTimer(50 * time.Millisecond)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
