// Command relayload is the serving-plane load generator: it drives a
// configurable number of concurrent simulated tunnel sessions (default
// one million) ingress→egress over the in-process masque.Plane — the
// relay analogue of MemTransport on the DNS side — and reports
// Go-benchmark-style lines on stdout so `relayload | benchjson` yields
// BENCH_relay.json for the benchdiff CI gate:
//
//	BenchmarkRelaySessionSetup   — sessions/sec admission+table insert
//	BenchmarkRelaySteadyState    — frames/sec through the synchronous
//	                               relay path, with allocs/op
//	BenchmarkRelaySubmit         — frames/sec through the async pooled
//	                               worker-pool pipeline
//	BenchmarkRelayRejectP99      — p99 latency of a typed reservation
//	                               rejection (ns/op)
//
// The process exits nonzero if fewer than the requested sessions are
// concurrently live, making `make relay-bench` a load assertion too.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/relay-networks/privaterelay/internal/masque"
	"github.com/relay-networks/privaterelay/internal/vclock"
)

func main() {
	var (
		sessions = flag.Int("sessions", 1_000_000, "concurrent sessions to establish")
		accounts = flag.Int("accounts", 10_000, "distinct reservation accounts")
		frames   = flag.Int("frames", 2_000_000, "steady-state frames per relay phase")
		payload  = flag.Int("payload", 256, "frame payload bytes")
		workers  = flag.Int("workers", 0, "load-generator goroutines (0 = 2×GOMAXPROCS, min 4)")
		rejects  = flag.Int("rejects", 200_000, "rejection admissions for the p99 probe")
		shards   = flag.Int("shards", 1024, "session-table shards")
		queue    = flag.Int("queue", 4096, "async pipeline queue depth")
	)
	flag.Parse()

	w := *workers
	if w <= 0 {
		w = 2 * runtime.GOMAXPROCS(0)
		if w < 4 {
			w = 4
		}
	}

	perAccount := int32(2 * (*sessions / *accounts))
	if perAccount < 2 {
		perAccount = 2
	}
	rs := masque.NewReservations(masque.Limits{
		Duration:    24 * time.Hour,
		DataCap:     1 << 62,
		MaxSessions: perAccount,
	}, vclock.NewVirtualClock())
	plane := masque.NewPlane(masque.PlaneConfig{
		Shards:       *shards,
		QueueDepth:   *queue,
		Reservations: rs,
	})
	defer plane.Shutdown()

	// Phase 1: session setup. Every session is an admission (reservation
	// registry) plus a sharded-table insert, fanned across workers.
	ids := make([]uint32, *sessions)
	setupNs := runPhase(w, *sessions, func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			s, code := plane.Open(accountName(i % *accounts))
			if code != masque.RejectNone {
				fail("session %d rejected: %s", i, code)
			}
			ids[i] = s.ID()
		}
	})
	live := plane.Stats().Sessions
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(os.Stderr, "relayload: %d concurrent sessions live (target %d), heap %d MiB\n",
		live, *sessions, ms.HeapAlloc>>20)
	if live < *sessions {
		fail("only %d of %d sessions live", live, *sessions)
	}
	benchLine("BenchmarkRelaySessionSetup", *sessions, setupNs, "sessions/sec", -1)

	// Phase 2: synchronous steady state. Each worker reuses one pooled
	// frame, walking its session range so every frame exercises the
	// sharded lookup, the reservation debit and the delivery counters.
	body := make([]byte, *payload)
	for i := range body {
		body[i] = byte(i)
	}
	relayRange := func(worker, lo, hi int) {
		f := masque.AcquireFrame()
		defer masque.ReleaseFrame(f)
		f.Type = masque.FrameData
		f.SetPayload(body)
		for i := lo; i < hi; i++ {
			f.StreamID = ids[i%*sessions]
			if code := plane.Relay(f); code != masque.RejectNone {
				fail("steady-state frame rejected: %s", code)
			}
		}
	}
	runPhase(w, *frames/10+1, relayRange) // warm pools and per-frame state
	runtime.GC()
	runtime.ReadMemStats(&ms)
	mallocs0 := ms.Mallocs
	steadyNs := runPhase(w, *frames, relayRange)
	runtime.ReadMemStats(&ms)
	allocsPerFrame := float64(ms.Mallocs-mallocs0) / float64(*frames)
	benchLine("BenchmarkRelaySteadyState", *frames, steadyNs, "frames/sec", allocsPerFrame)

	// Phase 3: async pipeline. Producers acquire pooled frames and hand
	// ownership to the plane's ingress worker pool; the egress pool
	// delivers and releases.
	submitRange := func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			f := masque.AcquireFrame()
			f.Type = masque.FrameData
			f.StreamID = ids[i%*sessions]
			f.SetPayload(body)
			plane.Submit(f)
		}
	}
	delivered0 := plane.Stats().FramesRelayed
	submitNs := runPhase(w, *frames, submitRange)
	// Settle the queues so frames/sec counts delivered, not enqueued.
	for plane.Stats().FramesRelayed-delivered0 < int64(*frames) {
		time.Sleep(time.Millisecond)
		submitNs += int64(time.Millisecond)
	}
	benchLine("BenchmarkRelaySubmit", *frames, submitNs, "frames/sec", -1)

	// Phase 4: p99 latency of a typed rejection. A saturated account
	// (MaxSessions=1) answers every admission with
	// RESOURCE_LIMIT_EXCEEDED; the probe times each rejected Open.
	rejRS := masque.NewReservations(masque.Limits{MaxSessions: 1}, vclock.NewVirtualClock())
	rejPlane := masque.NewPlane(masque.PlaneConfig{Reservations: rejRS})
	defer rejPlane.Shutdown()
	if _, code := rejPlane.Open("saturated"); code != masque.RejectNone {
		fail("saturating session rejected: %s", code)
	}
	lat := make([]int64, *rejects)
	var next atomic.Int64
	runPhase(w, *rejects, func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			t0 := time.Now()
			_, code := rejPlane.Open("saturated")
			d := time.Since(t0)
			if code != masque.RejectSessionLimit {
				fail("expected RESOURCE_LIMIT_EXCEEDED, got %s", code)
			}
			lat[next.Add(1)-1] = int64(d)
		}
	})
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p99 := lat[(*rejects)*99/100]
	fmt.Printf("%s %d %d ns/op\n", "BenchmarkRelayRejectP99", *rejects, p99)

	// Tear down: close all sessions and confirm the table drains.
	runPhase(w, *sessions, func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			s, ok := plane.Session(ids[i])
			if ok {
				plane.Close(s)
			}
		}
	})
	if n := plane.Stats().Sessions; n != 0 {
		fail("%d sessions leaked after close", n)
	}
}

// runPhase splits n items across w workers and returns the phase's
// wall-clock nanoseconds.
func runPhase(w, n int, f func(worker, lo, hi int)) int64 {
	var wg sync.WaitGroup
	start := time.Now()
	per := (n + w - 1) / w
	for i := 0; i < w; i++ {
		lo, hi := i*per, (i+1)*per
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(worker, lo, hi int) {
			defer wg.Done()
			f(worker, lo, hi)
		}(i, lo, hi)
	}
	wg.Wait()
	return int64(time.Since(start))
}

// benchLine prints one go-test-style benchmark line benchjson can parse.
func benchLine(name string, n int, totalNs int64, itemUnit string, allocsPerOp float64) {
	nsPerOp := float64(totalNs) / float64(n)
	perSec := float64(n) / (float64(totalNs) / float64(time.Second))
	if allocsPerOp >= 0 {
		fmt.Printf("%s %d %.1f ns/op %.0f %s %.3f allocs/op\n", name, n, nsPerOp, perSec, itemUnit, allocsPerOp)
		return
	}
	fmt.Printf("%s %d %.1f ns/op %.0f %s\n", name, n, nsPerOp, perSec, itemUnit)
}

func accountName(i int) string { return fmt.Sprintf("acct%05d", i) }

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "relayload: "+format+"\n", args...)
	os.Exit(1)
}
