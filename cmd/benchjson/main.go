// Command benchjson converts `go test -bench` output on stdin into a
// JSON object keyed by benchmark name, for machine-readable tracking of
// the pipeline benchmarks (see `make bench-json`). Each entry carries
// ns/op plus the benchmark's items/sec custom metric when it reports one
// (entries/sec, probes/sec, lines/sec, subnets/sec), and — under
// -benchmem — B/op and allocs/op, the numbers the allocation-regression
// tests pin (see BENCH_exchange.json).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurements. BytesPerOp and
// AllocsPerOp are pointers so a legitimate 0 (the exchange path's whole
// point) still serializes instead of vanishing under omitempty.
type Result struct {
	NsPerOp     float64  `json:"ns_per_op"`
	ItemsPerSec float64  `json:"items_per_sec,omitempty"`
	ItemsUnit   string   `json:"items_unit,omitempty"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// ContendedNsPerItem is the scan benchmarks' mutex-wait metric
	// (`contended-ns/subnet`): why scaling changed, not just whether.
	ContendedNsPerItem *float64 `json:"contended_ns_per_item,omitempty"`
}

func main() {
	out := map[string]Result{}
	var order []string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Benchmark lines read: name, iterations, value, unit, value, unit, ...
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		res := Result{}
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			unit := fields[i+1]
			switch {
			case unit == "ns/op":
				res.NsPerOp = val
				seen = true
			case strings.HasSuffix(unit, "/sec") && !strings.HasPrefix(unit, "MB"):
				res.ItemsPerSec = val
				res.ItemsUnit = strings.TrimSuffix(unit, "/sec")
			case strings.HasPrefix(unit, "contended-ns/"):
				v := val
				res.ContendedNsPerItem = &v
			case unit == "B/op":
				v := val
				res.BytesPerOp = &v
			case unit == "allocs/op":
				v := val
				res.AllocsPerOp = &v
			}
		}
		if !seen {
			continue
		}
		if _, dup := out[name]; !dup {
			order = append(order, name)
		}
		out[name] = res
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	// Emit in input order with stable formatting.
	var sb strings.Builder
	sb.WriteString("{\n")
	for i, name := range order {
		blob, err := json.Marshal(out[name])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Fprintf(&sb, "  %q: %s", name, blob)
		if i < len(order)-1 {
			sb.WriteString(",")
		}
		sb.WriteString("\n")
	}
	sb.WriteString("}\n")
	os.Stdout.WriteString(sb.String())
}
