// Command quicprobe reproduces the §3 ingress probing over a real UDP
// socket: the ZMap-style version-negotiation probe (answered), the
// QScanner/curl-style standard handshake (silence) and the proprietary
// relay handshake (accepted).
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/relay-networks/privaterelay/internal/quicsim"
)

func main() {
	timeout := flag.Duration("timeout", time.Second, "probe timeout (the silence window)")
	flag.Parse()

	ep, err := quicsim.ListenUDP("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ep.Close()
	addr := ep.Addr().String()
	fmt.Printf("ingress endpoint on %s\n\n", addr)

	dcid := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	scid := []byte{9, 10, 11, 12}

	// 1. ZMap module: force version negotiation.
	vnProbe, err := quicsim.BuildInitial(quicsim.VersionForceNegotiation, dcid, scid, []byte("zmap-probe"))
	if err != nil {
		log.Fatal(err)
	}
	resp, err := quicsim.ProbeUDP(addr, vnProbe, *timeout)
	if err != nil {
		log.Fatal(err)
	}
	if resp == nil {
		fmt.Println("version probe: silence (unexpected)")
	} else {
		versions, err := quicsim.ParseVersionNegotiation(resp, dcid, scid)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("version probe: VN received, supported versions:")
		for _, v := range versions {
			fmt.Printf(" %#x", v)
		}
		fmt.Println("\n  → QUICv1 alongside drafts 29–27, as the paper observed")
	}

	// 2. QScanner / curl: standards-conforming handshake.
	std, err := quicsim.BuildInitial(quicsim.VersionV1, dcid, scid, []byte("tls13-client-hello"))
	if err != nil {
		log.Fatal(err)
	}
	resp, err = quicsim.ProbeUDP(addr, std, *timeout)
	if err != nil {
		log.Fatal(err)
	}
	if resp == nil {
		fmt.Println("standard handshake: timed out — no QUIC initial, no error (paper: same)")
	} else {
		fmt.Printf("standard handshake: unexpectedly answered (%d bytes)\n", len(resp))
	}
}
