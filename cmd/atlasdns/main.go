// Command atlasdns runs the RIPE Atlas-style DNS campaigns (§3, §4.1):
// A-record validation against the ECS scan, AAAA enumeration of the IPv6
// ingress fleet, resolver identification, and the service-blocking study.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"github.com/relay-networks/privaterelay/internal/dnswire"
	"github.com/relay-networks/privaterelay/internal/experiments"
	"github.com/relay-networks/privaterelay/internal/faults"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 1, "world seed")
		scale    = flag.Float64("scale", 0.002, "client-universe scale")
		probes   = flag.Int("probes", 11700, "number of Atlas probes")
		clusters = flag.Int("clusters", 1500, "distinct probe /24s")
		workers  = flag.Int("workers", 8, "campaign/pipeline worker count (results are identical at any count)")

		faultProfile = flag.String("fault-profile", "", "inject DNS faults into the probe transports (preset[,k=v...])")
	)
	flag.Parse()

	env := experiments.NewEnv(*seed, *scale)
	env.PipelineWorkers = *workers
	if *faultProfile != "" {
		profile, err := faults.Parse(*faultProfile)
		if err != nil {
			log.Fatalf("fault-profile: %v", err)
		}
		env.FaultProfile = profile
	}
	res, err := env.Atlas(context.Background(), *probes, *clusters)
	if err != nil {
		log.Fatalf("atlas: %v", err)
	}

	fmt.Printf("probes: %d, behind public resolvers: %d‰\n", res.Probes, res.PublicResolvers)
	c := res.Completeness
	fmt.Printf("A-campaign completeness: %d/%d answered (%.1f%%), %d timed out, %d errored\n",
		c.Answered, c.Probes, c.AnsweredShare(), c.TimedOut, c.Errored)
	fmt.Printf("A validation: %d distinct IPv4 ingress addresses\n", res.V4Found)
	fmt.Printf("  vs ECS scan: %d extra (fleet churn), %d missing (probe clustering)\n",
		res.V4ExtraVsECS, res.V4MissingVsECS)
	fmt.Printf("AAAA enumeration: %d distinct IPv6 ingress addresses (direct queries added %d)\n",
		res.V6Found, res.V6DirectAdded)
	fmt.Printf("blocking study: %s\n", res.Blocking)
	fmt.Printf("  timeout %.1f%% (not counted as blocking)\n", res.Blocking.TimeoutShare())
	for _, rc := range []dnswire.RCode{dnswire.RCodeNXDomain, dnswire.RCodeNoError, dnswire.RCodeRefused, dnswire.RCodeServFail, dnswire.RCodeFormErr} {
		if n := res.Blocking.ByRCode[rc]; n > 0 {
			fmt.Printf("  %-8s %4d (%.0f%% of failures)\n", rc, n,
				float64(n)/float64(res.Blocking.FailedWithResponse)*100)
		}
	}
	fmt.Printf("  hijacked: %d probe(s)\n", res.Blocking.Hijacked)
}
