module github.com/relay-networks/privaterelay

go 1.22
