module github.com/relay-networks/privaterelay

// No requirements on purpose: the relaylint analyzer suite
// (internal/lint, cmd/relaylint) mirrors the x/tools go/analysis API on
// the standard library alone, so there are no analyzer dependencies to
// pin and the tree builds offline with just the toolchain.
go 1.22
