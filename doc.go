// Package privaterelay is a measurement toolkit reproducing "Towards a
// Tectonic Traffic Shift? Investigating Apple's New Relay Network"
// (Sattler, Aulbach, Zirngibl, Carle — ACM IMC 2022).
//
// The library lives under internal/: a deterministic Internet model
// (netsim, bgp, geo, aspop), a DNS stack with EDNS0 Client Subnet
// (dnswire, dnsserver, resolver), the relay system itself (quicsim,
// masque, relay, egress), the measurement tooling that is the paper's
// contribution (core, atlas, scan, trace), and the evaluation layer
// (analysis, experiments). Executables under cmd/ drive the experiments;
// runnable walkthroughs live under examples/.
//
// See DESIGN.md for the system inventory and per-experiment index, and
// EXPERIMENTS.md for paper-vs-measured results.
package privaterelay
