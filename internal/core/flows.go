package core

import (
	"net/netip"
	"sort"

	"github.com/relay-networks/privaterelay/internal/bgp"
)

// Passive flow-log analysis (§6, "Passive Measurements and iCloud
// Private Relay"): an ISP or IXP sees flows, not visits. Once clients
// adopt the relay, ingress relays surface as highly active destinations
// while the visited services disappear from view. FlowReport quantifies
// both effects for a given flow log.

// Flow is one aggregated flow record as a passive observer keeps it.
type Flow struct {
	Src, Dst netip.Addr
	Bytes    int64
}

// FlowReport summarizes a flow log against the relay datasets.
type FlowReport struct {
	Flows int
	Bytes int64

	// Per traffic class.
	ToIngress  int
	FromEgress int
	Unrelated  int

	// BytesToIngress is the volume whose true destination is invisible —
	// the service-level attribution loss the paper warns about.
	BytesToIngress int64

	// TopDestinations lists destination addresses by flow count,
	// descending. IngressRank is the best rank an ingress relay achieves
	// (1 = the busiest destination in the log), 0 if none appears.
	TopDestinations []DstCount
	IngressRank     int

	// OperatorFlows counts relay flows per operator AS.
	OperatorFlows map[bgp.ASN]int
}

// DstCount pairs a destination with its flow count.
type DstCount struct {
	Dst     netip.Addr
	Flows   int
	Ingress bool
}

// HiddenByteShare returns the share of bytes whose service-level
// destination is hidden behind the relay.
func (r *FlowReport) HiddenByteShare() float64 {
	if r.Bytes == 0 {
		return 0
	}
	return float64(r.BytesToIngress) / float64(r.Bytes)
}

// AnalyzeFlows classifies a flow log.
func (c *Classifier) AnalyzeFlows(flows []Flow) *FlowReport {
	report := &FlowReport{OperatorFlows: make(map[bgp.ASN]int)}
	perDst := map[netip.Addr]int{}
	for _, f := range flows {
		report.Flows++
		report.Bytes += f.Bytes
		perDst[f.Dst]++
		class, as := c.Classify(f.Src, f.Dst)
		switch class {
		case ClassToIngress:
			report.ToIngress++
			report.BytesToIngress += f.Bytes
			report.OperatorFlows[as]++
		case ClassFromEgress:
			report.FromEgress++
			report.OperatorFlows[as]++
		default:
			report.Unrelated++
		}
	}
	report.TopDestinations = make([]DstCount, 0, len(perDst))
	for dst, n := range perDst {
		report.TopDestinations = append(report.TopDestinations, DstCount{
			Dst: dst, Flows: n, Ingress: c.IsIngress(dst),
		})
	}
	sort.Slice(report.TopDestinations, func(i, j int) bool {
		if report.TopDestinations[i].Flows != report.TopDestinations[j].Flows {
			return report.TopDestinations[i].Flows > report.TopDestinations[j].Flows
		}
		return report.TopDestinations[i].Dst.Less(report.TopDestinations[j].Dst)
	})
	for rank, d := range report.TopDestinations {
		if d.Ingress {
			report.IngressRank = rank + 1
			break
		}
	}
	return report
}
