package core

import (
	"bytes"
	"errors"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/relay-networks/privaterelay/internal/bgp"
)

func sampleCheckpoint() *Checkpoint {
	return &Checkpoint{
		Domain:        "mask.icloud.com.",
		UniverseTotal: 512,
		Addresses: map[netip.Addr]bgp.ASN{
			netip.MustParseAddr("192.0.2.7"): 65001,
		},
		Serving: map[bgp.ASN]map[bgp.ASN]int64{
			65010: {65001: 4},
		},
		Counters:   map[string]int64{"queries": 12},
		DoneRanges: [][2]int64{{0, 63}},
	}
}

// TestCheckpointTruncationRejected: any prefix of a valid checkpoint
// that lost its footer must be rejected as corrupt — never resumed as
// a silently partial state.
func TestCheckpointTruncationRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleCheckpoint().Write(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.String()
	if !strings.Contains(full, "# end ") {
		t.Fatalf("checkpoint lacks footer:\n%s", full)
	}

	// Chop the footer line (clean truncation at a line boundary).
	idx := strings.LastIndex(full, "# end ")
	if _, err := ReadCheckpoint(strings.NewReader(full[:idx])); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("footer-less checkpoint: err = %v, want ErrCheckpointCorrupt", err)
	}

	// Chop mid-row (torn write).
	if _, err := ReadCheckpoint(strings.NewReader(full[:len(full)/2])); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("mid-row truncation: err = %v, want ErrCheckpointCorrupt", err)
	}

	// A row deleted from the middle changes the count the footer pins.
	lines := strings.Split(strings.TrimSuffix(full, "\n"), "\n")
	for i, l := range lines {
		if strings.HasPrefix(l, "A ") {
			mangled := strings.Join(append(append([]string(nil), lines[:i]...), lines[i+1:]...), "\n")
			if _, err := ReadCheckpoint(strings.NewReader(mangled)); !errors.Is(err, ErrCheckpointCorrupt) {
				t.Fatalf("row-count mismatch: err = %v, want ErrCheckpointCorrupt", err)
			}
			break
		}
	}

	// Garbage rows are corrupt, not ignored.
	bad := strings.Replace(full, "A 192.0.2.7,65001", "A not-an-addr,xyz", 1)
	if _, err := ReadCheckpoint(strings.NewReader(bad)); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("garbage row: err = %v, want ErrCheckpointCorrupt", err)
	}

	// The intact file still round-trips.
	if _, err := ReadCheckpoint(strings.NewReader(full)); err != nil {
		t.Fatalf("intact checkpoint rejected: %v", err)
	}
}

// TestLoadCheckpointCorruptCarriesPath: LoadCheckpoint decorates the
// typed error with the offending path so operators can find the file.
func TestLoadCheckpointCorruptCarriesPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scan.ckpt")
	if err := os.WriteFile(path, []byte("# checkpoint v1\nA 192.0.2.1,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadCheckpoint(path)
	if !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("err = %v, want ErrCheckpointCorrupt", err)
	}
	var corrupt *CorruptError
	if !errors.As(err, &corrupt) || corrupt.Path != path {
		t.Fatalf("corrupt error lacks path: %v", err)
	}
	if _, err := LoadCheckpoint(filepath.Join(t.TempDir(), "missing.ckpt")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: err = %v, want os.ErrNotExist", err)
	}
}

// TestCheckpointWriteFileDurable: WriteFile goes through the atomic
// temp+fsync+rename path and the result loads back identically.
func TestCheckpointWriteFileDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scan.ckpt")
	ck := sampleCheckpoint()
	if err := ck.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Domain != ck.Domain || got.UniverseTotal != ck.UniverseTotal ||
		got.Addresses[netip.MustParseAddr("192.0.2.7")] != 65001 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

// TestReadCanonicalRoundTrip: WriteCanonical → ReadCanonical →
// WriteCanonical is byte-stable, so persisted dataset generations can
// be reloaded for diffing.
func TestReadCanonicalRoundTrip(t *testing.T) {
	ds := &Dataset{
		Domain: "mask.icloud.com.",
		Addresses: map[netip.Addr]bgp.ASN{
			netip.MustParseAddr("203.0.113.9"): 65001,
			netip.MustParseAddr("203.0.113.2"): 65002,
		},
		Serving: map[bgp.ASN]*ServingStats{
			65100: {SubnetsByOperator: map[bgp.ASN]int64{65001: 7, 65002: 2}},
			65101: {SubnetsByOperator: map[bgp.ASN]int64{65001: 1}},
		},
	}
	var first bytes.Buffer
	if err := ds.WriteCanonical(&first); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCanonical(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Domain != ds.Domain {
		t.Fatalf("domain = %q, want %q", back.Domain, ds.Domain)
	}
	var second bytes.Buffer
	if err := back.WriteCanonical(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("canonical round trip not byte-stable:\n%s\nvs\n%s", first.String(), second.String())
	}

	if _, err := ReadCanonical(strings.NewReader("Z nonsense\n")); err == nil {
		t.Fatal("unknown tag accepted")
	}
}
