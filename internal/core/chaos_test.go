package core

import (
	"bytes"
	"context"
	"fmt"
	"net/netip"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/dnsserver"
	"github.com/relay-networks/privaterelay/internal/dnswire"
	"github.com/relay-networks/privaterelay/internal/faults"
	"github.com/relay-networks/privaterelay/internal/netsim"
)

// The chaos suite: the full ECS scan pushed through the fault-injection
// plane must converge to the byte-identical canonical dataset a
// fault-free scan produces — faults change the path, never the result —
// and a scan killed mid-flight must resume from its checkpoint to the
// same bytes.

// chaosProfiles is the sweep matrix: at least two distinct profiles,
// distinct seeds, exercised at worker counts 1 and 8.
func chaosProfiles(t *testing.T) map[string]*faults.Profile {
	t.Helper()
	specs := map[string]string{
		"mild-seed3":  "mild,seed=3",
		"harsh-seed1": "harsh",
		"harsh-seed7": "harsh,seed=7",
	}
	out := make(map[string]*faults.Profile, len(specs))
	for name, spec := range specs {
		p, err := faults.Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		out[name] = p
	}
	return out
}

// resilientConfig wires a scan config through a fresh injector on a
// virtual clock, with the full resilience stack enabled.
func resilientConfig(w *netsim.World, profile *faults.Profile, workers int) (ScanConfig, *faults.Injector, *faults.VirtualClock) {
	clock := faults.NewVirtualClock()
	cfg := scanConfig(w, netsim.MonthApr, dnsserver.MaskDomain)
	cfg.Concurrency = workers
	cfg.Retries = 4
	cfg.MaxPasses = 10
	cfg.Backoff = BackoffConfig{Base: 50 * time.Millisecond}
	cfg.Breaker = BreakerConfig{Threshold: 16, Cooldown: 2 * time.Second}
	cfg.Clock = clock
	attr := w.Table.Snapshot()
	origin := func(a netip.Addr) (bgp.ASN, bool) { return attr.Origin(a) }
	inj := faults.NewInjector(cfg.Exchanger, profile, clock, origin)
	cfg.Exchanger = inj
	return cfg, inj, clock
}

func canonicalBytes(t *testing.T, ds *Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ds.WriteCanonical(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func faultFreeBaseline(t *testing.T, w *netsim.World) []byte {
	t.Helper()
	ds, err := Scan(context.Background(), scanConfig(w, netsim.MonthApr, dnsserver.MaskDomain))
	if err != nil {
		t.Fatal(err)
	}
	return canonicalBytes(t, ds)
}

func TestScanChaosConvergesToFaultFreeDataset(t *testing.T) {
	w := testWorld(t)
	want := faultFreeBaseline(t, w)

	for name, profile := range chaosProfiles(t) {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(t *testing.T) {
				cfg, inj, _ := resilientConfig(w, profile, workers)
				ds, err := Scan(context.Background(), cfg)
				if err != nil {
					t.Fatal(err)
				}

				// 100 % coverage: every /24 in the universe recovered.
				if ds.Stats.FailedSubnets != 0 {
					t.Fatalf("%d subnets unrecovered after %d passes (deferrals=%d trips=%d)",
						ds.Stats.FailedSubnets, ds.Stats.Passes,
						ds.Stats.Deferrals, ds.Stats.BreakerTrips)
				}
				// Convergence: the dataset is byte-identical to fault-free.
				if got := canonicalBytes(t, ds); !bytes.Equal(got, want) {
					t.Fatalf("canonical dataset differs from fault-free baseline (%d vs %d bytes)",
						len(got), len(want))
				}
				// The profile must have actually hurt.
				if inj.Stats.Total() == 0 {
					t.Fatal("profile injected nothing; the run proves nothing")
				}

				// Accounting identity: every injected fault was observed,
				// classified and survived exactly once.
				checks := []struct {
					kind     string
					injected int64
					observed int64
				}{
					{"timeout", inj.Stats.Timeouts.Load(), ds.Stats.TimeoutAttempts},
					{"servfail", inj.Stats.ServFails.Load(), ds.Stats.ServFailAttempts},
					{"refused", inj.Stats.Refused.Load(), ds.Stats.RefusedAttempts},
					{"truncate", inj.Stats.Truncated.Load(), ds.Stats.TruncatedAttempts},
					{"stale", inj.Stats.Stale.Load(), ds.Stats.StaleAttempts},
				}
				for _, c := range checks {
					if c.injected != c.observed {
						t.Errorf("%s: injected %d, scanner observed %d", c.kind, c.injected, c.observed)
					}
				}
				if inj.Stats.Total() != ds.Stats.FaultAttempts() {
					t.Errorf("injected %d faults total, scanner observed %d",
						inj.Stats.Total(), ds.Stats.FaultAttempts())
				}

				// The ledger is the same story per subnet: its per-kind sums
				// must re-add to the attempt counters, and every entry
				// recovered.
				var lt, lsf, lr, ltr, lst int64
				for _, e := range ds.Stats.Ledger {
					lt += int64(e.Timeouts)
					lsf += int64(e.ServFails)
					lr += int64(e.Refused)
					ltr += int64(e.Truncated)
					lst += int64(e.Stale)
					if !e.Recovered {
						t.Errorf("ledger entry %v unrecovered in a fully converged scan", e.Subnet)
					}
				}
				if lt != ds.Stats.TimeoutAttempts || lsf != ds.Stats.ServFailAttempts ||
					lr != ds.Stats.RefusedAttempts || ltr != ds.Stats.TruncatedAttempts ||
					lst != ds.Stats.StaleAttempts {
					t.Errorf("ledger sums (%d,%d,%d,%d,%d) disagree with attempt counters (%d,%d,%d,%d,%d)",
						lt, lsf, lr, ltr, lst,
						ds.Stats.TimeoutAttempts, ds.Stats.ServFailAttempts, ds.Stats.RefusedAttempts,
						ds.Stats.TruncatedAttempts, ds.Stats.StaleAttempts)
				}
			})
		}
	}
}

// killSwitch cancels the scan's context after a fixed number of
// exchanges — a deterministic stand-in for kill -9 at an arbitrary
// point mid-scan.
type killSwitch struct {
	inner  dnsserver.Exchanger
	after  int64
	n      atomic.Int64
	cancel context.CancelFunc
}

func (k *killSwitch) Exchange(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	if k.n.Add(1) == k.after {
		k.cancel()
	}
	return k.inner.Exchange(ctx, q)
}

func TestScanCheckpointResumeBitIdentical(t *testing.T) {
	w := testWorld(t)
	want := faultFreeBaseline(t, w)

	for name, profile := range chaosProfiles(t) {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "scan.ckpt")

				// Phase 1: run under faults, kill mid-scan.
				cfg, _, _ := resilientConfig(w, profile, workers)
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				cfg.Exchanger = &killSwitch{inner: cfg.Exchanger, after: 2000, cancel: cancel}
				cfg.Checkpoint = &CheckpointConfig{Path: path, Every: 256}
				if _, err := Scan(ctx, cfg); err == nil {
					t.Fatal("killed scan returned no error")
				}

				ck, err := LoadCheckpoint(path)
				if err != nil {
					t.Fatal(err)
				}
				var done int64
				for _, r := range ck.DoneRanges {
					done += r[1] - r[0] + 1
				}
				if done == 0 || done >= ck.UniverseTotal {
					t.Fatalf("kill left %d/%d subnets done; want a genuine partial", done, ck.UniverseTotal)
				}

				// Phase 2: resume with a fresh injector under the same
				// profile; the result must be byte-identical to an
				// uninterrupted fault-free scan.
				cfg2, _, _ := resilientConfig(w, profile, workers)
				cfg2.Checkpoint = &CheckpointConfig{Path: path, Every: 256, Resume: true}
				ds, err := Scan(context.Background(), cfg2)
				if err != nil {
					t.Fatal(err)
				}
				if ds.Stats.ResumedSubnets == 0 {
					t.Fatal("resume skipped nothing despite a partial checkpoint")
				}
				if ds.Stats.FailedSubnets != 0 {
					t.Fatalf("%d subnets unrecovered after resume", ds.Stats.FailedSubnets)
				}
				if got := canonicalBytes(t, ds); !bytes.Equal(got, want) {
					t.Fatalf("resumed dataset differs from uninterrupted baseline (%d vs %d bytes)",
						len(got), len(want))
				}

				// Phase 3: resuming a *finished* checkpoint is a no-op read.
				cfg3, inj3, _ := resilientConfig(w, profile, workers)
				cfg3.Checkpoint = &CheckpointConfig{Path: path, Resume: true}
				ds3, err := Scan(context.Background(), cfg3)
				if err != nil {
					t.Fatal(err)
				}
				if ds3.Stats.ResumedSubnets != ds3.Stats.SubnetsTotal {
					t.Fatalf("finished checkpoint resumed %d of %d subnets",
						ds3.Stats.ResumedSubnets, ds3.Stats.SubnetsTotal)
				}
				if inj3.Stats.Passed.Load()+inj3.Stats.Total() != 0 {
					t.Fatal("resuming a finished scan still sent queries")
				}
				if got := canonicalBytes(t, ds3); !bytes.Equal(got, want) {
					t.Fatal("no-op resume changed the dataset")
				}
			})
		}
	}
}

// TestScanCheckpointCollectorMatchesFastPath pins the two accumulation
// paths to each other: a fault-free checkpointed scan (per-batch minis
// through the collector) must produce the same canonical bytes as the
// contention-free fast path.
func TestScanCheckpointCollectorMatchesFastPath(t *testing.T) {
	w := testWorld(t)
	want := faultFreeBaseline(t, w)

	cfg := scanConfig(w, netsim.MonthApr, dnsserver.MaskDomain)
	cfg.Checkpoint = &CheckpointConfig{Path: filepath.Join(t.TempDir(), "scan.ckpt"), Every: 512}
	ds, err := Scan(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := canonicalBytes(t, ds); !bytes.Equal(got, want) {
		t.Fatal("collector path dataset differs from fast path")
	}
}

// TestScanCheckpointRejectsMismatch: resuming against the wrong domain
// must fail loudly instead of silently merging two scans.
func TestScanCheckpointRejectsMismatch(t *testing.T) {
	w := testWorld(t)
	path := filepath.Join(t.TempDir(), "scan.ckpt")

	cfg := scanConfig(w, netsim.MonthApr, dnsserver.MaskDomain)
	cfg.Checkpoint = &CheckpointConfig{Path: path}
	if _, err := Scan(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}

	cfg2 := scanConfig(w, netsim.MonthApr, dnsserver.MaskH2Domain)
	cfg2.Checkpoint = &CheckpointConfig{Path: path, Resume: true}
	if _, err := Scan(context.Background(), cfg2); err == nil {
		t.Fatal("resume across domains was accepted")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	ck := &Checkpoint{
		Domain:        "mask.icloud.com.",
		UniverseTotal: 4096,
		Addresses: map[netip.Addr]bgp.ASN{
			netip.MustParseAddr("192.0.2.1"):  65001,
			netip.MustParseAddr("192.0.2.40"): 65002,
		},
		Serving: map[bgp.ASN]map[bgp.ASN]int64{
			65010: {65001: 12, 65002: 3},
		},
		Ledger: map[netip.Prefix]*SubnetFault{
			netip.MustParsePrefix("10.1.2.0/24"): {
				Subnet: netip.MustParsePrefix("10.1.2.0/24"),
				Timeouts: 2, ServFails: 1, Attempts: 3,
				LastKind: faults.KindServFail, Recovered: true,
			},
		},
		Counters:   map[string]int64{"queries": 777, "retries": 5},
		DoneRanges: [][2]int64{{0, 99}, {200, 4095}},
	}
	var buf bytes.Buffer
	if err := ck.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Domain != ck.Domain || got.UniverseTotal != ck.UniverseTotal {
		t.Fatalf("metadata: %+v", got)
	}
	if len(got.Addresses) != 2 || got.Addresses[netip.MustParseAddr("192.0.2.40")] != 65002 {
		t.Fatalf("addresses: %v", got.Addresses)
	}
	if got.Serving[65010][65001] != 12 || got.Serving[65010][65002] != 3 {
		t.Fatalf("serving: %v", got.Serving)
	}
	e := got.Ledger[netip.MustParsePrefix("10.1.2.0/24")]
	if e == nil || e.Timeouts != 2 || e.ServFails != 1 || e.Attempts != 3 ||
		e.LastKind != faults.KindServFail || !e.Recovered {
		t.Fatalf("ledger: %+v", e)
	}
	if got.Counters["queries"] != 777 || got.Counters["retries"] != 5 {
		t.Fatalf("counters: %v", got.Counters)
	}
	if len(got.DoneRanges) != 2 || got.DoneRanges[1] != [2]int64{200, 4095} {
		t.Fatalf("done ranges: %v", got.DoneRanges)
	}

	if _, err := ReadCheckpoint(bytes.NewReader([]byte("A 192.0.2.1,1\n"))); err == nil {
		t.Fatal("headerless checkpoint accepted")
	}
}

// TestBackoffDelayShape pins the backoff math: deterministic, within
// [base/2, cap), monotone-capped growth.
func TestBackoffDelayShape(t *testing.T) {
	b := BackoffConfig{Base: 100 * time.Millisecond, Cap: time.Second}
	for attempt := 0; attempt < 12; attempt++ {
		d1 := b.delay(12345, attempt)
		d2 := b.delay(12345, attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: nondeterministic delay %v vs %v", attempt, d1, d2)
		}
		if d1 < 50*time.Millisecond || d1 >= time.Second {
			t.Fatalf("attempt %d: delay %v outside [base/2, cap)", attempt, d1)
		}
	}
	if (BackoffConfig{}).delay(1, 3) != 0 {
		t.Fatal("zero config must not sleep")
	}
	// Decorrelated: different subnets draw different jitter.
	seen := map[time.Duration]bool{}
	for key := uint64(0); key < 16; key++ {
		seen[b.delay(key, 2)] = true
	}
	if len(seen) < 8 {
		t.Fatalf("jitter barely varies across keys: %d distinct of 16", len(seen))
	}
}

// TestCircuitBreakerLifecycle drives closed → open → half-open → closed
// on a virtual clock.
func TestCircuitBreakerLifecycle(t *testing.T) {
	clock := faults.NewVirtualClock()
	cb := newCircuitBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Second}, clock)
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		if ok, probe := cb.acquire(ctx); !ok || probe {
			t.Fatalf("closed breaker denied attempt %d", i)
		}
		cb.serverFailure(false)
	}
	if cb.state.Load() != breakerOpen {
		t.Fatalf("state after %d failures = %d, want open", 3, cb.state.Load())
	}
	if cb.tripCount() != 1 {
		t.Fatalf("trips = %d, want 1", cb.tripCount())
	}

	// The next acquire waits out the cooldown (virtually) and becomes the
	// half-open probe.
	ok, probe := cb.acquire(ctx)
	if !ok || !probe {
		t.Fatalf("post-cooldown acquire = (%v, %v), want probe", ok, probe)
	}
	// Failed probe re-opens.
	cb.serverFailure(true)
	if cb.state.Load() != breakerOpen || cb.tripCount() != 2 {
		t.Fatalf("failed probe left state=%d trips=%d", cb.state.Load(), cb.tripCount())
	}
	// Successful probe closes.
	ok, probe = cb.acquire(ctx)
	if !ok || !probe {
		t.Fatal("second probe not admitted")
	}
	cb.success(true)
	if cb.state.Load() != breakerClosed {
		t.Fatalf("state after successful probe = %d, want closed", cb.state.Load())
	}
	if ok, probe := cb.acquire(ctx); !ok || probe {
		t.Fatal("closed breaker after recovery should admit normally")
	}
}
