package core

import (
	"context"
	"net/netip"
	"sync/atomic"
	"time"

	"github.com/relay-networks/privaterelay/internal/faults"
	"github.com/relay-networks/privaterelay/internal/iputil"
)

// The resilience layer under core.Scan: exponential backoff with
// decorrelated jitter, a shared circuit breaker for sustained
// SERVFAIL/REFUSED episodes, and the per-subnet failure ledger. All
// waiting goes through a faults.Clock, so chaos tests drive the whole
// stack on a virtual clock with zero wall sleeps.

// BackoffConfig shapes the retry backoff. The delay before retry k is
// min(Cap, Base·2^k) scaled by a deterministic jitter factor in
// [0.5, 1.0) drawn from the subnet and attempt number — decorrelated
// across subnets so synchronized retry herds cannot form.
type BackoffConfig struct {
	// Base is the first retry's delay; zero disables backoff sleeping
	// entirely (the pre-resilience behaviour).
	Base time.Duration
	// Cap bounds the exponential growth (default 64×Base).
	Cap time.Duration
}

// delay computes the jittered backoff before retry attempt (0-based).
func (b BackoffConfig) delay(key uint64, attempt int) time.Duration {
	if b.Base <= 0 {
		return 0
	}
	cap := b.Cap
	if cap <= 0 {
		cap = 64 * b.Base
	}
	d := b.Base
	for i := 0; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	// Jitter in [0.5, 1.0): deterministic per (subnet, attempt).
	h := iputil.Mix(key, uint64(attempt)^0xBACC0FF)
	frac := float64(h>>11) / float64(1<<53)
	return d/2 + time.Duration(frac*float64(d/2))
}

// BreakerConfig tunes the shared circuit breaker.
type BreakerConfig struct {
	// Threshold is the consecutive SERVFAIL/REFUSED count that trips the
	// breaker; zero disables it.
	Threshold int
	// Cooldown is how long the breaker stays open before half-opening
	// (default 2s).
	Cooldown time.Duration
}

// Breaker states.
const (
	breakerClosed int32 = iota
	breakerOpen
	breakerHalfOpen
)

// circuitBreaker is shared by all scan workers: sustained server
// failures are a property of the authoritative side, so one worker's
// observations must slow every worker down. While open, acquire makes
// callers wait out the cooldown on the clock; in half-open exactly one
// probe query is admitted, and its outcome closes or re-opens the
// breaker.
type circuitBreaker struct {
	cfg   BreakerConfig
	clock faults.Clock

	state    atomic.Int32
	deadline atomic.Int64 // UnixNano when the open state may half-open
	consec   atomic.Int64 // consecutive server failures while closed
	probing  atomic.Bool  // half-open: one probe in flight
	trips    atomic.Int64
}

func newCircuitBreaker(cfg BreakerConfig, clock faults.Clock) *circuitBreaker {
	if cfg.Threshold <= 0 {
		return nil
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 2 * time.Second
	}
	return &circuitBreaker{cfg: cfg, clock: clock}
}

// acquireWaitCap bounds how many cooldown waits one acquire spends
// before giving up; the caller then defers the subnet to a later pass,
// keeping workers from camping on a long outage.
const acquireWaitCap = 8

// acquire gates one query attempt. It returns (admitted, probe): not
// admitted means the caller should defer the work; probe means the
// attempt is the half-open trial and its outcome must be reported.
func (cb *circuitBreaker) acquire(ctx context.Context) (admitted, probe bool) {
	if cb == nil {
		return true, false
	}
	for waits := 0; ; {
		switch cb.state.Load() {
		case breakerClosed:
			return true, false
		case breakerOpen:
			remaining := time.Duration(cb.deadline.Load() - cb.clock.Now().UnixNano())
			if remaining <= 0 {
				cb.state.CompareAndSwap(breakerOpen, breakerHalfOpen)
				continue
			}
			if waits >= acquireWaitCap {
				return false, false
			}
			waits++
			if cb.clock.Sleep(ctx, remaining) != nil {
				return false, false
			}
		case breakerHalfOpen:
			if cb.probing.CompareAndSwap(false, true) {
				return true, true
			}
			if waits >= acquireWaitCap {
				return false, false
			}
			waits++
			if cb.clock.Sleep(ctx, cb.cfg.Cooldown/4+1) != nil {
				return false, false
			}
		}
	}
}

// success reports a successful (or at least non-server-failed) exchange.
func (cb *circuitBreaker) success(probe bool) {
	if cb == nil {
		return
	}
	cb.consec.Store(0)
	if probe {
		cb.state.Store(breakerClosed)
		cb.probing.Store(false)
	}
}

// serverFailure reports a SERVFAIL/REFUSED. A failed half-open probe
// re-opens immediately; while closed, crossing the threshold trips.
func (cb *circuitBreaker) serverFailure(probe bool) {
	if cb == nil {
		return
	}
	if probe {
		cb.open()
		cb.probing.Store(false)
		return
	}
	if cb.consec.Add(1) >= int64(cb.cfg.Threshold) &&
		cb.state.Load() == breakerClosed {
		cb.open()
	}
}

func (cb *circuitBreaker) open() {
	cb.deadline.Store(cb.clock.Now().Add(cb.cfg.Cooldown).UnixNano())
	cb.state.Store(breakerOpen)
	cb.consec.Store(0)
	cb.trips.Add(1)
}

func (cb *circuitBreaker) tripCount() int64 {
	if cb == nil {
		return 0
	}
	return cb.trips.Load()
}

// SubnetFault is one failure-ledger entry: every fault a /24 met on its
// way to an answer (or to giving up). Recovered reports whether a later
// attempt eventually succeeded.
type SubnetFault struct {
	Subnet    netip.Prefix
	Timeouts  int32
	ServFails int32
	Refused   int32
	Truncated int32
	Stale     int32
	// Attempts counts the failed attempts (successful ones are not
	// faults and therefore not ledgered).
	Attempts  int32
	Recovered bool
	// LastKind is the most recent fault the subnet met, used to classify
	// unrecovered subnets into the legacy Timeouts/Errors loss counters.
	LastKind faults.Kind
}

// merge folds another ledger entry for the same subnet into f.
func (f *SubnetFault) merge(o *SubnetFault) {
	f.Timeouts += o.Timeouts
	f.ServFails += o.ServFails
	f.Refused += o.Refused
	f.Truncated += o.Truncated
	f.Stale += o.Stale
	if o.Attempts > 0 {
		f.LastKind = o.LastKind
	}
	f.Attempts += o.Attempts
	f.Recovered = f.Recovered || o.Recovered
}

// mergeLedgers folds src into dst.
func mergeLedgers(dst, src map[netip.Prefix]*SubnetFault) {
	for p, e := range src {
		if have, ok := dst[p]; ok {
			have.merge(e)
		} else {
			cp := *e
			dst[p] = &cp
		}
	}
}

// bitset tracks completed /24 universe indices for checkpointing.
type bitset struct {
	words []uint64
	n     int64 // set bits
}

func newBitset(size int64) *bitset {
	return &bitset{words: make([]uint64, (size+63)/64)}
}

func (b *bitset) set(i int64) {
	w, bit := i/64, uint(i%64)
	if b.words[w]&(1<<bit) == 0 {
		b.words[w] |= 1 << bit
		b.n++
	}
}

func (b *bitset) get(i int64) bool {
	if b == nil {
		return false
	}
	w := i / 64
	if w >= int64(len(b.words)) {
		return false
	}
	return b.words[w]&(1<<uint(i%64)) != 0
}

func (b *bitset) count() int64 { return b.n }

// ranges calls fn for every maximal run [start, end] of set bits.
func (b *bitset) ranges(fn func(start, end int64)) {
	inRun := false
	var start int64
	limit := int64(len(b.words)) * 64
	for i := int64(0); i < limit; i++ {
		if b.words[i/64]&(1<<uint(i%64)) != 0 {
			if !inRun {
				start, inRun = i, true
			}
		} else if inRun {
			fn(start, i-1)
			inRun = false
		}
	}
	if inRun {
		fn(start, limit-1)
	}
}
