// Package core implements the paper's primary contribution: ECS-based
// enumeration of iCloud Private Relay ingress relays (§3, §4.1), the
// resulting ingress address dataset with client-AS attribution (Tables 1
// and 2), and a passive relay-traffic classifier built from the datasets
// (§6's suggestion to network operators).
//
// The scanner iterates /24 client subnets over the routed IPv4 space,
// attaches each as an EDNS0 Client Subnet option to A queries for the
// relay domains, and collects the returned ingress addresses. Two ethics
// measures from §7 are implemented faithfully: unrouted space is never
// queried, and answers whose ECS scope covers more than a /24 suppress
// all further queries inside that scope.
package core

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/dnsserver"
	"github.com/relay-networks/privaterelay/internal/dnswire"
	"github.com/relay-networks/privaterelay/internal/iputil"
)

// ScanConfig configures one ECS enumeration scan.
type ScanConfig struct {
	// Exchanger carries queries to the authoritative server.
	Exchanger dnsserver.Exchanger
	// Domain is the service domain to enumerate (mask.icloud.com for the
	// QUIC plane, mask-h2.icloud.com for the TCP fallback).
	Domain string
	// QType is the record type to query (default TypeA). AAAA scans are
	// supported but futile by design: the authoritative answers IPv6
	// with scope 0, so one vantage sees one record set (§3).
	QType dnswire.Type
	// Universe lists the routed IPv4 prefixes to cover. Unrouted space
	// is implicitly skipped by not being listed.
	Universe []netip.Prefix
	// Attribution resolves discovered addresses and client subnets to
	// origin ASes.
	Attribution *bgp.Table
	// RespectScope enables the §7 optimization: answers with a scope
	// shorter than /24 suppress further queries inside the scope.
	// The paper's scan always enables this; disabling it is the ablation.
	RespectScope bool
	// Concurrency is the number of parallel query workers (default 8).
	Concurrency int
	// Retries is the number of re-attempts after a timeout (default 1).
	Retries int
	// QPS rate-limits the client side; zero disables limiting.
	QPS float64
}

// ScanStats counts scanner activity.
type ScanStats struct {
	QueriesSent    int64
	SubnetsTotal   int64 // /24s in the universe
	SubnetsSkipped int64 // suppressed by a covering scope
	Timeouts       int64 // queries lost after retries
	Errors         int64 // non-timeout failures
	Elapsed        time.Duration
}

// Dataset is the result of one scan: the ingress addresses with AS
// attribution, and per-client-AS serving statistics.
type Dataset struct {
	Domain string
	// Addresses maps each discovered ingress address to its origin AS.
	Addresses map[netip.Addr]bgp.ASN
	// Serving maps each client AS to its per-operator served /24 counts.
	Serving map[bgp.ASN]*ServingStats
	// Stats holds scanner counters.
	Stats ScanStats
}

// ServingStats accumulates how a client AS's subnets are served.
type ServingStats struct {
	// SubnetsByOperator counts served /24s per ingress operator AS.
	SubnetsByOperator map[bgp.ASN]int64
}

// TotalSubnets sums served /24s over operators.
func (s *ServingStats) TotalSubnets() int64 {
	var n int64
	for _, c := range s.SubnetsByOperator {
		n += c
	}
	return n
}

// Operators returns the set of operators serving this AS.
func (s *ServingStats) Operators() []bgp.ASN {
	out := make([]bgp.ASN, 0, len(s.SubnetsByOperator))
	for as := range s.SubnetsByOperator {
		out = append(out, as)
	}
	return out
}

// ErrNoExchanger is returned for scans without a transport.
var ErrNoExchanger = errors.New("core: scan config has no exchanger")

// workBatchSize is how many /24s travel per channel send. One send per
// subnet made the channel the second hottest lock in the scan; batching
// cuts channel operations by the batch factor.
const workBatchSize = 64

// skipIndex is the scope-suppression trie behind an epoch-published
// read path. Lookups load the current immutable snapshot from an
// atomic.Pointer and walk it without any lock; inserts — rare, one per
// answer scope shorter than /24 — serialize on a small mutex, clone the
// snapshot, add the new scope and publish the successor. The value
// stored with each scope is the operator AS of the covering answer, so
// skipped subnets can be accounted without re-querying.
type skipIndex struct {
	mu   sync.Mutex
	snap atomic.Pointer[iputil.Trie[bgp.ASN]]
}

// lookup reports the covering scope's operator, lock-free.
func (s *skipIndex) lookup(addr netip.Addr) (bgp.ASN, bool) {
	t := s.snap.Load()
	if t == nil {
		return 0, false
	}
	_, op, ok := t.Lookup(addr)
	return op, ok
}

// insert publishes a new snapshot containing p. It reports whether p was
// newly inserted, giving exactly-once semantics per scope prefix.
func (s *skipIndex) insert(p netip.Prefix, op bgp.ASN) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.snap.Load()
	if cur != nil {
		if _, ok := cur.Get(p); ok {
			return false
		}
	}
	next := cur.Clone()
	next.Insert(p, op)
	s.snap.Store(next)
	return true
}

// scanShard is one worker's private accumulator. Workers never share
// mutable state on the steady-state path; shards are merged into the
// Dataset once after the WaitGroup drains.
type scanShard struct {
	addrs    map[netip.Addr]bgp.ASN
	serving  map[bgp.ASN]map[bgp.ASN]int64 // client AS → operator → /24s
	queries  int64
	skipped  int64
	timeouts int64
	errors   int64
}

func newScanShard() *scanShard {
	return &scanShard{
		addrs:   make(map[netip.Addr]bgp.ASN),
		serving: make(map[bgp.ASN]map[bgp.ASN]int64),
	}
}

// account attributes one served /24 to the subnet's own client AS under
// the given operator.
func (sh *scanShard) account(attr *bgp.Reader, subnet netip.Prefix, operator bgp.ASN) {
	clientAS, ok := attr.Origin(subnet.Addr())
	if !ok {
		return
	}
	ops := sh.serving[clientAS]
	if ops == nil {
		ops = make(map[bgp.ASN]int64)
		sh.serving[clientAS] = ops
	}
	ops[operator]++
}

// skipCovered handles a subnet suppressed by a covering scope: the
// covering answer serves it too, so it is accounted to its own client AS
// under the operator recorded with the scope entry — the accounting a
// direct query would have produced, without sending one.
func (sh *scanShard) skipCovered(attr *bgp.Reader, subnet netip.Prefix, operator bgp.ASN) {
	sh.skipped++
	sh.account(attr, subnet, operator)
}

// record folds one response into the shard.
func (sh *scanShard) record(cfg ScanConfig, attr *bgp.Reader, subnet netip.Prefix, resp *dnswire.Message, skip *skipIndex, global *atomic.Pointer[bgp.ASN]) {
	if resp.Header.RCode != dnswire.RCodeNoError || len(resp.Answers) == 0 {
		return
	}
	var operator bgp.ASN
	for _, rec := range resp.Answers {
		var addr netip.Addr
		switch rec.Type {
		case dnswire.TypeA:
			addr = rec.A
		case dnswire.TypeAAAA:
			addr = rec.AAAA
		default:
			continue
		}
		as, _ := attr.Origin(addr)
		sh.addrs[addr] = as
		operator = as // all records of one answer share an AS (§4.1)
	}

	// Publish scope suppression. Exactly one worker wins the publication
	// per scope; a loser's subnet would have been skipped had the scan run
	// sequentially, so it counts as skipped — that keeps SubnetsSkipped
	// independent of worker interleaving (the server answers every subnet
	// inside a scope identically, per ECS semantics).
	fresh := true
	if cfg.RespectScope && resp.Edns != nil && resp.Edns.ClientSubnet != nil {
		cs := resp.Edns.ClientSubnet
		switch {
		case cs.ScopePrefixLen == 0:
			// A scope of zero declares the answer valid for the entire
			// address space — nothing more can be learned from further
			// ECS queries.
			op := operator
			fresh = global.CompareAndSwap(nil, &op)
		case cs.ScopePrefixLen < 24:
			fresh = skip.insert(cs.ScopePrefix(), operator)
		}
	}
	if !fresh {
		sh.skipped++
	}
	sh.account(attr, subnet, operator)
}

// Scan runs the enumeration and returns the dataset.
//
// The steady-state path is contention-free: each worker accumulates into
// a private shard (merged once at the end), consults an epoch-published
// snapshot of the scope trie without locking, and paces itself on an
// atomic token bucket. Dataset.Addresses, Dataset.Serving, SubnetsTotal
// and SubnetsSkipped are deterministic — identical for any Concurrency —
// on a lossless deterministic transport; only QueriesSent may vary, when
// racing workers query subnets a covering scope was about to suppress.
func Scan(ctx context.Context, cfg ScanConfig) (*Dataset, error) {
	if cfg.Exchanger == nil {
		return nil, ErrNoExchanger
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.QType == 0 {
		cfg.QType = dnswire.TypeA
	}
	start := time.Now()
	ds := &Dataset{
		Domain:    dnswire.CanonicalName(cfg.Domain),
		Addresses: make(map[netip.Addr]bgp.ASN),
		Serving:   make(map[bgp.ASN]*ServingStats),
	}
	var attr *bgp.Reader
	if cfg.Attribution != nil {
		attr = cfg.Attribution.Snapshot()
	}

	var (
		skip    skipIndex
		global  atomic.Pointer[bgp.ASN] // set once by the first scope-0 answer
		limiter = newTokenBucket(cfg.QPS)
		work    = make(chan []netip.Prefix, 2*cfg.Concurrency)
		wg      sync.WaitGroup
		scanErr error
		errOnce sync.Once
	)

	shards := make([]*scanShard, cfg.Concurrency)
	worker := func(sh *scanShard) {
		defer wg.Done()
		for batch := range work {
			for _, subnet := range batch {
				if err := ctx.Err(); err != nil {
					errOnce.Do(func() { scanErr = err })
					continue
				}
				if cfg.RespectScope {
					if op := global.Load(); op != nil {
						sh.skipCovered(attr, subnet, *op)
						continue
					}
					if op, ok := skip.lookup(subnet.Addr()); ok {
						sh.skipCovered(attr, subnet, op)
						continue
					}
				}
				limiter.wait()
				resp, err := exchangeWithRetry(ctx, cfg, subnet)
				sh.queries++ // retries counted inside exchangeWithRetry
				if err != nil {
					if errors.Is(err, dnsserver.ErrTimeout) {
						sh.timeouts++
					} else {
						sh.errors++
					}
					continue
				}
				sh.record(cfg, attr, subnet, resp, &skip, &global)
			}
		}
	}

	wg.Add(cfg.Concurrency)
	for i := 0; i < cfg.Concurrency; i++ {
		shards[i] = newScanShard()
		go worker(shards[i])
	}

	total := int64(0)
	batch := make([]netip.Prefix, 0, workBatchSize)
	flush := func() bool {
		if len(batch) == 0 {
			return true
		}
		select {
		case work <- batch:
			batch = make([]netip.Prefix, 0, workBatchSize)
			return true
		case <-ctx.Done():
			return false
		}
	}
	for _, p := range cfg.Universe {
		if !p.Addr().Is4() {
			continue
		}
		iputil.Subnets(p, 24, func(s netip.Prefix) bool {
			total++
			batch = append(batch, s)
			if len(batch) == workBatchSize {
				return flush()
			}
			return true
		})
		if ctx.Err() != nil {
			break
		}
	}
	flush()
	close(work)
	wg.Wait()

	for _, sh := range shards {
		for addr, as := range sh.addrs {
			ds.Addresses[addr] = as
		}
		for clientAS, ops := range sh.serving {
			st := ds.Serving[clientAS]
			if st == nil {
				st = &ServingStats{SubnetsByOperator: make(map[bgp.ASN]int64)}
				ds.Serving[clientAS] = st
			}
			for op, n := range ops {
				st.SubnetsByOperator[op] += n
			}
		}
		ds.Stats.QueriesSent += sh.queries
		ds.Stats.SubnetsSkipped += sh.skipped
		ds.Stats.Timeouts += sh.timeouts
		ds.Stats.Errors += sh.errors
	}
	ds.Stats.SubnetsTotal = total
	ds.Stats.Elapsed = time.Since(start)
	if scanErr != nil {
		return ds, scanErr
	}
	return ds, ctx.Err()
}

// exchangeWithRetry sends one ECS query with retries on timeout.
func exchangeWithRetry(ctx context.Context, cfg ScanConfig, subnet netip.Prefix) (*dnswire.Message, error) {
	id := uint16(iputil.HashPrefix(subnet))
	q := dnswire.NewQuery(id, cfg.Domain, cfg.QType).WithECS(subnet)
	var lastErr error
	for attempt := 0; attempt <= cfg.Retries; attempt++ {
		resp, err := cfg.Exchanger.Exchange(ctx, q)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !errors.Is(err, dnsserver.ErrTimeout) {
			break
		}
	}
	return nil, lastErr
}

// AddressesOf returns the discovered addresses originated by as, sorted.
func (ds *Dataset) AddressesOf(as bgp.ASN) []netip.Addr {
	var out []netip.Addr
	for addr, origin := range ds.Addresses {
		if origin == as {
			out = append(out, addr)
		}
	}
	sortAddrs(out)
	return out
}

// OperatorCounts returns the number of discovered addresses per AS.
func (ds *Dataset) OperatorCounts() map[bgp.ASN]int {
	out := make(map[bgp.ASN]int)
	for _, as := range ds.Addresses {
		out[as]++
	}
	return out
}

// Diff compares two datasets: addresses added and removed from a to b.
func Diff(a, b *Dataset) (added, removed []netip.Addr) {
	for addr := range b.Addresses {
		if _, ok := a.Addresses[addr]; !ok {
			added = append(added, addr)
		}
	}
	for addr := range a.Addresses {
		if _, ok := b.Addresses[addr]; !ok {
			removed = append(removed, addr)
		}
	}
	sortAddrs(added)
	sortAddrs(removed)
	return added, removed
}

// GrowthPercent returns the relative address-count growth from a to b.
func GrowthPercent(a, b *Dataset) float64 {
	if len(a.Addresses) == 0 {
		return 0
	}
	return (float64(len(b.Addresses)) - float64(len(a.Addresses))) / float64(len(a.Addresses)) * 100
}

func sortAddrs(addrs []netip.Addr) {
	slices.SortFunc(addrs, func(a, b netip.Addr) int { return a.Compare(b) })
}

// tokenBucket is a lock-free client-side pacer: the bucket state is one
// atomic timestamp (the next free send slot in nanoseconds) advanced by
// compare-and-swap, so pacing never serializes workers on a mutex and
// the sleep happens outside any shared critical section.
type tokenBucket struct {
	interval int64 // nanoseconds per query; 0 disables pacing
	next     atomic.Int64
}

func newTokenBucket(qps float64) *tokenBucket {
	if qps <= 0 {
		return &tokenBucket{}
	}
	return &tokenBucket{interval: int64(float64(time.Second) / qps)}
}

func (b *tokenBucket) wait() {
	if b.interval == 0 {
		return
	}
	for {
		now := time.Now().UnixNano()
		next := b.next.Load()
		target := next
		if now > target {
			target = now
		}
		if b.next.CompareAndSwap(next, target+b.interval) {
			if wait := target - now; wait > 0 {
				time.Sleep(time.Duration(wait))
			}
			return
		}
	}
}

// String summarizes the dataset.
func (ds *Dataset) String() string {
	return fmt.Sprintf("dataset{%s: %d addrs, %d client ASes, %d queries}",
		ds.Domain, len(ds.Addresses), len(ds.Serving), ds.Stats.QueriesSent)
}
