// Package core implements the paper's primary contribution: ECS-based
// enumeration of iCloud Private Relay ingress relays (§3, §4.1), the
// resulting ingress address dataset with client-AS attribution (Tables 1
// and 2), and a passive relay-traffic classifier built from the datasets
// (§6's suggestion to network operators).
//
// The scanner iterates /24 client subnets over the routed IPv4 space,
// attaches each as an EDNS0 Client Subnet option to A queries for the
// relay domains, and collects the returned ingress addresses. Two ethics
// measures from §7 are implemented faithfully: unrouted space is never
// queried, and answers whose ECS scope covers more than a /24 suppress
// all further queries inside that scope.
//
// The paper's headline scan ran ~40 hours against a rate-limited
// authoritative; the orchestration here is built to survive that:
// per-attempt classification of timeouts, SERVFAIL, REFUSED, truncation
// and stale responses, exponential backoff with decorrelated jitter, a
// shared circuit breaker, a per-subnet failure ledger, deferred-subnet
// retry passes, and periodic checkpoints a killed scan resumes from with
// bit-identical results.
package core

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"os"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/dnsserver"
	"github.com/relay-networks/privaterelay/internal/dnswire"
	"github.com/relay-networks/privaterelay/internal/faults"
	"github.com/relay-networks/privaterelay/internal/iputil"
)

// CheckpointConfig enables periodic progress snapshots so a killed scan
// restarts where it left off.
type CheckpointConfig struct {
	// Path is the checkpoint file; writes are atomic (temp + rename).
	Path string
	// Every is how many newly completed /24s trigger a snapshot
	// (default 1<<15).
	Every int64
	// Resume loads Path if it exists and skips its completed subnets.
	Resume bool
}

// ScanConfig configures one ECS enumeration scan.
type ScanConfig struct {
	// Exchanger carries queries to the authoritative server.
	Exchanger dnsserver.Exchanger
	// Domain is the service domain to enumerate (mask.icloud.com for the
	// QUIC plane, mask-h2.icloud.com for the TCP fallback).
	Domain string
	// QType is the record type to query (default TypeA). AAAA scans are
	// supported but futile by design: the authoritative answers IPv6
	// with scope 0, so one vantage sees one record set (§3).
	QType dnswire.Type
	// Universe lists the routed IPv4 prefixes to cover. Unrouted space
	// is implicitly skipped by not being listed.
	Universe []netip.Prefix
	// Attribution resolves discovered addresses and client subnets to
	// origin ASes.
	Attribution *bgp.Table
	// RespectScope enables the §7 optimization: answers with a scope
	// shorter than /24 suppress further queries inside the scope.
	// The paper's scan always enables this; disabling it is the ablation.
	RespectScope bool
	// Concurrency is the number of parallel query workers (default 8).
	Concurrency int
	// Retries is the number of in-pass re-attempts after a retryable
	// failure (timeout, SERVFAIL, REFUSED, truncation, stale ID) before
	// the subnet is deferred to a later pass (default 1).
	Retries int
	// QPS rate-limits the client side; zero disables limiting.
	QPS float64
	// PacerBatch is how many send-slots a worker claims from the pacer
	// per CAS (default 16). Larger tranches cut cross-worker contention
	// on the pacer's atomic timestamp; each slot is still slept to
	// individually, so the long-run rate stays exactly QPS. Unused slots
	// are returned when a pass drains.
	PacerBatch int

	// Backoff paces re-attempts; the zero value disables backoff sleeps.
	Backoff BackoffConfig
	// Breaker trips on sustained SERVFAIL/REFUSED; zero Threshold
	// disables it.
	Breaker BreakerConfig
	// RetryBudget caps the retries each worker may spend per pass
	// (0 = unlimited). Once exhausted, failing subnets defer immediately.
	RetryBudget int64
	// MaxPasses bounds the deferred-subnet retry passes (default 1: the
	// pre-resilience single sweep).
	MaxPasses int
	// Clock drives backoff, breaker cooldowns and inter-pass waits
	// (default wall clock; tests use a faults.VirtualClock).
	Clock faults.Clock
	// Checkpoint enables periodic progress snapshots (nil disables; the
	// snapshot-free hot path is unchanged).
	Checkpoint *CheckpointConfig
}

// ScanStats counts scanner activity.
type ScanStats struct {
	QueriesSent    int64 // individual query attempts sent
	SubnetsTotal   int64 // /24s in the universe
	SubnetsSkipped int64 // suppressed by a covering scope
	Timeouts       int64 // subnets lost after every pass, last fault a timeout
	Errors         int64 // subnets lost to non-retryable errors or other faults

	// Per-attempt fault observations; these reconcile 1:1 against an
	// injecting fault plane's counters.
	TimeoutAttempts   int64
	ServFailAttempts  int64
	RefusedAttempts   int64
	TruncatedAttempts int64
	StaleAttempts     int64

	Retries        int64 // re-attempts beyond each subnet's first query
	Deferrals      int64 // subnet deferrals to a later pass
	BreakerTrips   int64
	Passes         int64
	ResumedSubnets int64 // skipped because the checkpoint marked them done
	FailedSubnets  int64 // subnets unrecovered after all passes

	// Ledger is the per-subnet failure ledger: every /24 that met at
	// least one fault, with per-kind counts and recovery status.
	Ledger map[netip.Prefix]*SubnetFault

	Elapsed time.Duration
}

// FaultAttempts sums the per-attempt fault observations.
func (s *ScanStats) FaultAttempts() int64 {
	return s.TimeoutAttempts + s.ServFailAttempts + s.RefusedAttempts +
		s.TruncatedAttempts + s.StaleAttempts
}

// Dataset is the result of one scan: the ingress addresses with AS
// attribution, and per-client-AS serving statistics.
type Dataset struct {
	Domain string
	// Addresses maps each discovered ingress address to its origin AS.
	Addresses map[netip.Addr]bgp.ASN
	// Serving maps each client AS to its per-operator served /24 counts.
	Serving map[bgp.ASN]*ServingStats
	// Stats holds scanner counters.
	Stats ScanStats
}

// ServingStats accumulates how a client AS's subnets are served.
type ServingStats struct {
	// SubnetsByOperator counts served /24s per ingress operator AS.
	SubnetsByOperator map[bgp.ASN]int64
}

// TotalSubnets sums served /24s over operators.
func (s *ServingStats) TotalSubnets() int64 {
	var n int64
	for _, c := range s.SubnetsByOperator {
		n += c
	}
	return n
}

// Operators returns the set of operators serving this AS.
func (s *ServingStats) Operators() []bgp.ASN {
	out := make([]bgp.ASN, 0, len(s.SubnetsByOperator))
	for as := range s.SubnetsByOperator {
		out = append(out, as)
	}
	slices.Sort(out)
	return out
}

// ErrNoExchanger is returned for scans without a transport.
var ErrNoExchanger = errors.New("core: scan config has no exchanger")

// workBatchSize is how many /24s travel per channel send. One send per
// subnet made the channel the second hottest lock in the scan; batching
// cuts channel operations by the batch factor.
const workBatchSize = 64

// scopeSpan is one published suppression scope as an inclusive IPv4
// address range, with the operator AS of the covering answer so skipped
// subnets can be accounted without re-querying.
type scopeSpan struct {
	lo, hi uint32
	op     bgp.ASN
	pfx    netip.Prefix
}

// skipIndex is the scope-suppression index behind an epoch-published
// read path. The published snapshot is a sorted, immutable []scopeSpan:
// scopes come from covering-route answers over disjoint allocations, so
// spans never nest and a lookup is a binary search — seeded by a
// per-worker hint, since each worker sweeps the universe in ascending
// order. Lookups load the snapshot from an atomic.Pointer without any
// lock; inserts — rare, one per answer scope shorter than /24 —
// serialize on a small mutex, build the successor slice and publish it.
type skipIndex struct {
	mu   sync.Mutex
	snap atomic.Pointer[[]scopeSpan]
}

// addrKey32 packs a (canonical) IPv4 address for span comparison.
func addrKey32(addr netip.Addr) (uint32, bool) {
	if addr.Is4In6() {
		addr = addr.Unmap()
	}
	if !addr.Is4() {
		return 0, false
	}
	a4 := addr.As4()
	return uint32(a4[0])<<24 | uint32(a4[1])<<16 | uint32(a4[2])<<8 | uint32(a4[3]), true
}

// spanRange returns p's inclusive IPv4 address range.
func spanRange(p netip.Prefix) (lo, hi uint32, ok bool) {
	lo, ok = addrKey32(p.Addr())
	if !ok {
		return 0, 0, false
	}
	bits := p.Bits()
	if bits < 0 || bits > 32 {
		return 0, 0, false
	}
	mask := ^uint32(0) >> uint(bits) // host bits (bits==32 → 0)
	if bits == 0 {
		mask = ^uint32(0)
	}
	lo &^= mask
	return lo, lo | mask, true
}

// lookup reports the covering scope's operator, lock-free. hint is the
// caller's last matching span position; span facts are stable across
// snapshots (spans are only ever added, never moved relative to the
// addresses they cover... a hinted span either still covers addr or the
// bounds check fails and the search runs), so a stale hint can only
// cost the binary search, never a wrong answer.
func (s *skipIndex) lookup(addr netip.Addr, hint *int) (bgp.ASN, bool) {
	sp := s.snap.Load()
	if sp == nil {
		return 0, false
	}
	spans := *sp
	a, ok := addrKey32(addr)
	if !ok {
		return 0, false
	}
	if h := *hint; h >= 0 && h < len(spans) && spans[h].lo <= a && a <= spans[h].hi {
		return spans[h].op, true
	}
	// Rightmost span with lo <= a.
	lo, hi := 0, len(spans)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if spans[mid].lo <= a {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 || a > spans[lo-1].hi {
		return 0, false
	}
	*hint = lo - 1
	return spans[lo-1].op, true
}

// insert publishes a new snapshot containing p. It reports whether p was
// newly inserted, giving exactly-once semantics per scope prefix; a
// prefix overlapping an existing span is not fresh (scopes are disjoint
// covering routes, so an overlap is the same scope re-answered).
func (s *skipIndex) insert(p netip.Prefix, op bgp.ASN) bool {
	lo, hi, ok := spanRange(p)
	if !ok {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var spans []scopeSpan
	if cur := s.snap.Load(); cur != nil {
		spans = *cur
	}
	// Insertion point: first span starting after lo.
	j, n := 0, len(spans)
	for j < n {
		mid := int(uint(j+n) >> 1)
		if spans[mid].lo <= lo {
			j = mid + 1
		} else {
			n = mid
		}
	}
	i := j
	if i > 0 && spans[i-1].hi >= lo {
		return false
	}
	if i < len(spans) && spans[i].lo <= hi {
		return false
	}
	next := make([]scopeSpan, 0, len(spans)+1)
	next = append(next, spans[:i]...)
	next = append(next, scopeSpan{lo: lo, hi: hi, op: op, pfx: p})
	next = append(next, spans[i:]...)
	s.snap.Store(&next)
	return true
}

// subnetRef is one /24 work unit: its prefix, its stable index in the
// universe enumeration (for the checkpoint bitmap) and its cumulative
// attempt count, carried across passes so retry randomness and backoff
// keep progressing instead of replaying.
type subnetRef struct {
	p        netip.Prefix
	idx      int64
	attempts int32
}

// scanShard is one accumulator: a worker's private shard on the
// hot path, a per-batch mini on the checkpoint path, and the master
// accumulation a checkpoint persists. Workers never share mutable state
// on the steady-state path.
type scanShard struct {
	addrs   map[netip.Addr]bgp.ASN
	serving map[bgp.ASN]map[bgp.ASN]int64 // client AS → operator → /24s
	ledger  map[netip.Prefix]*SubnetFault

	queries, skipped, retries, deferrals int64
	termErrors                           int64 // subnets lost to non-retryable errors
	tAttempts, sfAttempts, refAttempts   int64
	trAttempts, stAttempts               int64
}

func newScanShard() *scanShard {
	return &scanShard{
		addrs:   make(map[netip.Addr]bgp.ASN),
		serving: make(map[bgp.ASN]map[bgp.ASN]int64),
		ledger:  make(map[netip.Prefix]*SubnetFault),
	}
}

// absorb folds another shard into sh.
func (sh *scanShard) absorb(o *scanShard) {
	for addr, as := range o.addrs {
		sh.addrs[addr] = as
	}
	for clientAS, ops := range o.serving {
		dst := sh.serving[clientAS]
		if dst == nil {
			dst = make(map[bgp.ASN]int64, len(ops))
			sh.serving[clientAS] = dst
		}
		for op, n := range ops {
			dst[op] += n
		}
	}
	mergeLedgers(sh.ledger, o.ledger)
	sh.queries += o.queries
	sh.skipped += o.skipped
	sh.retries += o.retries
	sh.deferrals += o.deferrals
	sh.termErrors += o.termErrors
	sh.tAttempts += o.tAttempts
	sh.sfAttempts += o.sfAttempts
	sh.refAttempts += o.refAttempts
	sh.trAttempts += o.trAttempts
	sh.stAttempts += o.stAttempts
}

// workerAux is a worker's private lookup state, persisted across passes
// (unlike the per-pass scanWorker): the answer-address origin memo, the
// galloping attribution cursor, the scope-index search hint and the
// pacer grant. Nothing in it is shared, so the steady-state loop never
// touches cross-worker memory for lookups.
type workerAux struct {
	// origins4/origins memoize attribution of answer addresses (IPv4
	// keyed by packed uint32 — far cheaper to probe than a netip.Addr
	// map). Answers repeat heavily (one fleet of ~1700 addresses serves
	// the whole universe), so after warm-up every record resolves with
	// one small inlined map probe instead of a routing-index search.
	origins4 map[uint32]bgp.ASN
	origins  map[netip.Addr]bgp.ASN
	// cursor resolves each subnet's own client AS. Worker subnet
	// sequences ascend, so the cursor's gallop replaces a full binary
	// search with a few neighbor probes.
	cursor bgp.Cursor
	// skipHint seeds the scope-span binary search with the last hit.
	skipHint int
	// Route-range accounting memo (see scanShard.account): the address
	// range of the last covering client route and the per-operator
	// counter map it resolved to, valid only for shard accSh.
	accSh        *scanShard
	accLo, accHi uint32
	accOps       map[bgp.ASN]int64
	// grant is the worker's outstanding pacer tranche.
	grant pacerGrant
}

// foldAddr attributes one answer address and enters it into the shard's
// address ledger, memoizing both: after this worker's first sight of an
// address, later folds are a single inlined uint32 probe with no
// writes (the memo is only ever filled alongside a ledger write, so a
// hit proves the address is already in this worker's shard).
func (w *scanWorker) foldAddr(sh *scanShard, addr netip.Addr) bgp.ASN {
	if addr.Is4() {
		a4 := addr.As4()
		key := uint32(a4[0])<<24 | uint32(a4[1])<<16 | uint32(a4[2])<<8 | uint32(a4[3])
		if as, ok := w.aux.origins4[key]; ok {
			return as
		}
		as, _ := w.st.idx.Origin(addr)
		w.aux.origins4[key] = as
		sh.addrs[addr] = as
		return as
	}
	if as, ok := w.aux.origins[addr]; ok {
		return as
	}
	as, _ := w.st.idx.Origin(addr)
	w.aux.origins[addr] = as
	sh.addrs[addr] = as
	return as
}

// account attributes one served /24 to the subnet's own client AS under
// the given operator. Consecutive subnets overwhelmingly share one
// covering client route (routes span 4–1024 /24s), so the last route's
// address range and its per-operator counter map are memoized in the
// worker aux: the steady state is one range check and one counter
// bump. The memo is bound to the shard whose map it points into and
// invalidated when the shard changes (checkpoint mode hands a worker a
// fresh mini-shard per batch).
func (sh *scanShard) account(w *scanWorker, subnet netip.Prefix, operator bgp.ASN) {
	aux := w.aux
	a, ok := addrKey32(subnet.Addr())
	if ok && sh == aux.accSh && a >= aux.accLo && a <= aux.accHi {
		aux.accOps[operator]++
		return
	}
	route, clientAS, routed := aux.cursor.CoveringPrefix(subnet)
	if !routed {
		return
	}
	ops := sh.serving[clientAS]
	if ops == nil {
		ops = make(map[bgp.ASN]int64)
		sh.serving[clientAS] = ops
	}
	ops[operator]++
	if lo, hi, spanned := spanRange(route); ok && spanned {
		aux.accSh, aux.accLo, aux.accHi, aux.accOps = sh, lo, hi, ops
	}
}

// skipCovered handles a subnet suppressed by a covering scope: the
// covering answer serves it too, so it is accounted to its own client AS
// under the operator recorded with the scope entry — the accounting a
// direct query would have produced, without sending one.
func (sh *scanShard) skipCovered(w *scanWorker, subnet netip.Prefix, operator bgp.ASN) {
	sh.skipped++
	sh.account(w, subnet, operator)
}

// record folds one successful response into the shard.
func (sh *scanShard) record(w *scanWorker, subnet netip.Prefix, resp *dnswire.Message) {
	if resp.Header.RCode != dnswire.RCodeNoError || len(resp.Answers) == 0 {
		return
	}
	st, cfg := w.st, w.st.cfg
	var operator bgp.ASN
	for _, rec := range resp.Answers {
		var addr netip.Addr
		switch rec.Type {
		case dnswire.TypeA:
			addr = rec.A
		case dnswire.TypeAAAA:
			addr = rec.AAAA
		default:
			continue
		}
		operator = w.foldAddr(sh, addr) // all records of one answer share an AS (§4.1)
	}

	// Publish scope suppression. Exactly one worker wins the publication
	// per scope; a loser's subnet would have been skipped had the scan run
	// sequentially, so it counts as skipped — that keeps SubnetsSkipped
	// independent of worker interleaving (the server answers every subnet
	// inside a scope identically, per ECS semantics).
	fresh := true
	if cfg.RespectScope && resp.Edns != nil && resp.Edns.ClientSubnet != nil {
		cs := resp.Edns.ClientSubnet
		switch {
		case cs.ScopePrefixLen == 0:
			// A scope of zero declares the answer valid for the entire
			// address space — nothing more can be learned from further
			// ECS queries.
			op := operator
			fresh = st.global.CompareAndSwap(nil, &op)
		case cs.ScopePrefixLen < 24:
			fresh = st.skip.insert(cs.ScopePrefix(), operator)
		}
	}
	if !fresh {
		sh.skipped++
	}
	sh.account(w, subnet, operator)
}

// attemptOutcome classifies one exchange.
type attemptOutcome int8

const (
	outcomeOK attemptOutcome = iota
	outcomeTimeout
	outcomeServFail
	outcomeRefused
	outcomeTruncated
	outcomeStale
	outcomeError // non-retryable transport error
)

func classify(resp *dnswire.Message, err error, wantID uint16) attemptOutcome {
	switch {
	case errors.Is(err, dnsserver.ErrTimeout):
		return outcomeTimeout
	case err != nil:
		return outcomeError
	case resp.Header.ID != wantID:
		return outcomeStale
	case resp.Header.RCode == dnswire.RCodeServFail:
		return outcomeServFail
	case resp.Header.RCode == dnswire.RCodeRefused:
		return outcomeRefused
	case resp.Header.Truncated && len(resp.Answers) == 0:
		return outcomeTruncated
	default:
		return outcomeOK
	}
}

// scanState carries the shared scan machinery across passes.
type scanState struct {
	cfg     *ScanConfig
	idx     *bgp.Index // flattened attribution snapshot (nil-safe)
	clock   faults.Clock
	skip    skipIndex
	global  atomic.Pointer[bgp.ASN] // set once by the first scope-0 answer
	limiter *tokenBucket
	breaker *circuitBreaker
	auxes   []*workerAux // per-worker lookup state, persistent across passes

	// Checkpoint mode state (nil/unused on the hot path). done is owned
	// by the collector goroutine while a pass runs; resumed is the frozen
	// snapshot loaded from the checkpoint, safe for the producer to read
	// concurrently.
	master        *scanShard
	done          *bitset
	resumed       *bitset
	universeTotal int64
	ckptErr       error

	scanErr error
	errOnce sync.Once
}

func (st *scanState) fail(err error) {
	st.errOnce.Do(func() { st.scanErr = err })
}

// scanWorker is one worker's per-pass view.
type scanWorker struct {
	st       *scanState
	sh       *scanShard // persistent on the hot path; per-batch mini otherwise
	aux      *workerAux // persistent lookup state (memos, cursor, grant)
	budget   int64      // remaining retry budget this pass (<0 = unlimited)
	deferred []subnetRef

	// query is the worker's reusable query message: built once, then only
	// the transaction ID and ECS prefix are re-stamped per subnet. Safe
	// because Exchangers never retain the query past the call and the
	// question section is immutable across subnets.
	query *dnswire.Message
}

// ledgerFail records one failed attempt for the subnet.
func ledgerFail(sh *scanShard, subnet netip.Prefix, out attemptOutcome) {
	e := sh.ledger[subnet]
	if e == nil {
		e = &SubnetFault{Subnet: subnet}
		sh.ledger[subnet] = e
	}
	e.Attempts++
	e.LastKind = faults.KindTimeout
	switch out {
	case outcomeTimeout:
		e.Timeouts++
		sh.tAttempts++
	case outcomeServFail:
		e.ServFails++
		e.LastKind = faults.KindServFail
		sh.sfAttempts++
	case outcomeRefused:
		e.Refused++
		e.LastKind = faults.KindRefused
		sh.refAttempts++
	case outcomeTruncated:
		e.Truncated++
		e.LastKind = faults.KindTruncate
		sh.trAttempts++
	case outcomeStale:
		e.Stale++
		e.LastKind = faults.KindStale
		sh.stAttempts++
	default:
		// outcomeOK and outcomeError never reach the fault ledger:
		// successes carry no fault and terminal transport errors are
		// accounted in Stats.TermErrors.
	}
}

// processSubnet runs one subnet to completion, deferral or terminal
// failure. It reports whether the subnet is done (success, scope-skip or
// terminal error); deferred subnets are appended to w.deferred with
// their attempt count advanced.
func (w *scanWorker) processSubnet(ctx context.Context, sh *scanShard, ref subnetRef) bool {
	st, cfg := w.st, w.st.cfg
	if cfg.RespectScope {
		if op := st.global.Load(); op != nil {
			sh.skipCovered(w, ref.p, *op)
			return true
		}
		if op, ok := st.skip.lookup(ref.p.Addr(), &w.aux.skipHint); ok {
			sh.skipCovered(w, ref.p, op)
			return true
		}
	}

	key := iputil.HashPrefix(ref.p)
	for inPass := 0; ; inPass++ {
		admitted, probe := st.breaker.acquire(ctx)
		if !admitted {
			w.defer_(sh, ref)
			return false
		}
		st.limiter.wait(ctx, &w.aux.grant)

		// A fresh transaction ID per attempt: a late response to attempt
		// N cannot satisfy attempt N+1. The query message itself is the
		// worker's reusable one — only the ID and ECS prefix change.
		id := uint16(iputil.Mix(key, uint64(ref.attempts)))
		if w.query == nil {
			w.query = dnswire.NewQuery(id, cfg.Domain, cfg.QType)
		}
		q := w.query
		q.Header.ID = id
		q.SetECS(ref.p)
		resp, err := cfg.Exchanger.Exchange(ctx, q)
		sh.queries++
		if ref.attempts > 0 {
			sh.retries++
		}
		ref.attempts++

		out := classify(resp, err, id)
		switch out {
		case outcomeOK:
			st.breaker.success(probe)
			sh.record(w, ref.p, resp)
			// record copies everything it keeps; the pooled response can
			// go back for the next exchange.
			dnswire.ReleaseMessage(resp)
			return true
		case outcomeError:
			if ctx.Err() != nil {
				// Cancellation is not a subnet failure: leave the subnet
				// incomplete so a checkpoint resume redoes it.
				st.fail(ctx.Err())
				w.defer_(sh, ref)
				return false
			}
			// Non-retryable transport error: the subnet is lost, the scan
			// carries on.
			sh.termErrors++
			return true
		case outcomeServFail, outcomeRefused:
			st.breaker.serverFailure(probe)
		default:
			// Timeouts, truncation and stale responses do not feed the
			// breaker, but a failed half-open probe must re-open it.
			if probe {
				st.breaker.serverFailure(true)
			}
		}
		// Failure responses (ServFail, Refused, truncated, stale) carry
		// nothing worth keeping; timeouts have no response at all.
		dnswire.ReleaseMessage(resp)
		ledgerFail(sh, ref.p, out)

		if inPass >= cfg.Retries || !w.spendBudget() || ctx.Err() != nil {
			w.defer_(sh, ref)
			return false
		}
		if d := cfg.Backoff.delay(key, int(ref.attempts)-1); d > 0 {
			if st.clock.Sleep(ctx, d) != nil {
				w.defer_(sh, ref)
				return false
			}
		}
	}
}

// spendBudget consumes one unit of the worker's per-pass retry budget.
func (w *scanWorker) spendBudget() bool {
	if w.budget < 0 {
		return true
	}
	if w.budget == 0 {
		return false
	}
	w.budget--
	return true
}

// defer_ pushes the subnet to the next pass. Recovery status is not
// tracked here: whether a ledgered subnet ultimately recovered is
// decided at finalize time from the still-pending set, which also
// covers subnets the breaker deferred before any attempt and subnets a
// later pass completed via a covering scope.
func (w *scanWorker) defer_(sh *scanShard, ref subnetRef) {
	sh.deferrals++
	w.deferred = append(w.deferred, ref)
}

// batchResult is one completed batch on the checkpoint path.
type batchResult struct {
	mini *scanShard
	done []int64
}

// universeSize counts the /24s the scan will cover.
func universeSize(universe []netip.Prefix) int64 {
	var total int64
	for _, p := range universe {
		if p.Addr().Is4() {
			total += int64(iputil.SubnetCount(p, 24))
		}
	}
	return total
}

// Scan runs the enumeration and returns the dataset.
//
// The steady-state path is contention-free: each worker accumulates into
// a private shard (merged once at the end), consults an epoch-published
// snapshot of the scope trie without locking, and paces itself on an
// atomic token bucket. Dataset.Addresses, Dataset.Serving, SubnetsTotal
// and SubnetsSkipped are deterministic — identical for any Concurrency —
// on a lossless deterministic transport; only QueriesSent may vary, when
// racing workers query subnets a covering scope was about to suppress.
// Under a fault plane the same holds for Addresses and Serving once
// every subnet recovers (MaxPasses permitting): faults change the path,
// not the dataset.
func Scan(ctx context.Context, cfg ScanConfig) (*Dataset, error) {
	if cfg.Exchanger == nil {
		return nil, ErrNoExchanger
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.QType == 0 {
		cfg.QType = dnswire.TypeA
	}
	if cfg.MaxPasses <= 0 {
		cfg.MaxPasses = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = faults.WallClock{}
	}
	start := cfg.Clock.Now()
	ds := &Dataset{
		Domain:    dnswire.CanonicalName(cfg.Domain),
		Addresses: make(map[netip.Addr]bgp.ASN),
		Serving:   make(map[bgp.ASN]*ServingStats),
	}
	var idx *bgp.Index
	if cfg.Attribution != nil {
		// Table.Index is memoized: the flattened snapshot is built once
		// per table, not once per scan.
		idx = cfg.Attribution.Index()
	}

	st := &scanState{
		cfg:     &cfg,
		idx:     idx,
		clock:   cfg.Clock,
		limiter: newTokenBucket(cfg.QPS, cfg.PacerBatch, cfg.Clock),
		breaker: newCircuitBreaker(cfg.Breaker, cfg.Clock),
	}

	total := universeSize(cfg.Universe)
	ds.Stats.SubnetsTotal = total
	st.universeTotal = total

	// Checkpoint mode: resume prior progress and accumulate through a
	// single collector whose consistent view is what gets persisted.
	if cfg.Checkpoint != nil {
		if cfg.Checkpoint.Every <= 0 {
			cfg.Checkpoint.Every = 1 << 15
		}
		st.master = newScanShard()
		st.done = newBitset(total)
		if cfg.Checkpoint.Resume {
			if err := st.loadCheckpoint(ds.Domain, total); err != nil {
				return nil, err
			}
			snap := newBitset(total)
			copy(snap.words, st.done.words)
			snap.n = st.done.n
			st.resumed = snap
		}
		ds.Stats.ResumedSubnets = st.done.count()
	}

	shards := make([]*scanShard, cfg.Concurrency)
	st.auxes = make([]*workerAux, cfg.Concurrency)
	for i := range shards {
		shards[i] = newScanShard()
		st.auxes[i] = &workerAux{
			origins4: make(map[uint32]bgp.ASN),
			origins:  make(map[netip.Addr]bgp.ASN),
			cursor:   idx.Cursor(),
		}
	}

	var pending []subnetRef
	for pass := 1; ; pass++ {
		ds.Stats.Passes++
		var deferred []subnetRef
		if pass == 1 {
			deferred = st.runPass(ctx, shards, nil, true)
		} else {
			deferred = st.runPass(ctx, shards, pending, false)
		}
		pending = deferred
		if len(pending) == 0 || pass >= cfg.MaxPasses || ctx.Err() != nil || st.ckptErr != nil {
			break
		}
		// Inter-pass backoff: give outages room to clear before the
		// next sweep over the deferred set.
		if d := cfg.Backoff.delay(uint64(pass)^0x9A55, pass+2); d > 0 {
			if st.clock.Sleep(ctx, d) != nil {
				break
			}
		} else if cfg.Backoff.Base <= 0 && st.breaker != nil {
			// Breaker without backoff: still let the cooldown elapse.
			_ = st.clock.Sleep(ctx, st.breaker.cfg.Cooldown)
		}
	}

	// Merge: worker shards on the hot path, the collector's master in
	// checkpoint mode (worker shards are empty there).
	merged := newScanShard()
	if st.master != nil {
		merged = st.master
	}
	for _, sh := range shards {
		merged.absorb(sh)
	}
	ds.Addresses = merged.addrs
	for clientAS, ops := range merged.serving {
		st2 := &ServingStats{SubnetsByOperator: ops}
		ds.Serving[clientAS] = st2
	}
	ds.Stats.QueriesSent = merged.queries
	ds.Stats.SubnetsSkipped = merged.skipped
	ds.Stats.Retries = merged.retries
	ds.Stats.Deferrals = merged.deferrals
	ds.Stats.TimeoutAttempts = merged.tAttempts
	ds.Stats.ServFailAttempts = merged.sfAttempts
	ds.Stats.RefusedAttempts = merged.refAttempts
	ds.Stats.TruncatedAttempts = merged.trAttempts
	ds.Stats.StaleAttempts = merged.stAttempts
	ds.Stats.BreakerTrips = st.breaker.tripCount()
	ds.Stats.Ledger = merged.ledger
	ds.Stats.Errors = merged.termErrors

	// Recovery is decided here, not during the scan: a subnet is
	// unrecovered iff it is still pending when the passes end. Everything
	// else in the ledger — including subnets a later pass completed via a
	// covering scope — recovered.
	unrecovered := make(map[netip.Prefix]bool, len(pending))
	for _, ref := range pending {
		unrecovered[ref.p] = true
		if _, ok := merged.ledger[ref.p]; !ok {
			// Deferred before any attempt (breaker denial, cancellation).
			merged.ledger[ref.p] = &SubnetFault{Subnet: ref.p}
		}
	}
	for p, e := range merged.ledger {
		if !unrecovered[p] {
			e.Recovered = true
			continue
		}
		e.Recovered = false
		ds.Stats.FailedSubnets++
		if e.LastKind == faults.KindTimeout && e.Timeouts > 0 {
			ds.Stats.Timeouts++
		} else {
			ds.Stats.Errors++
		}
	}

	// Final checkpoint: persist the completed state so a resume of a
	// finished scan is a no-op read.
	if cfg.Checkpoint != nil && st.ckptErr == nil {
		st.ckptErr = st.writeCheckpoint(ds.Domain)
	}

	ds.Stats.Elapsed = cfg.Clock.Now().Sub(start)
	// Unrecovered subnets are not an error — like the pre-resilience
	// scanner, losses live in Stats (Timeouts, Errors, FailedSubnets,
	// Ledger) and the dataset carries everything collected.
	switch {
	case st.scanErr != nil:
		return ds, st.scanErr
	case ctx.Err() != nil:
		return ds, ctx.Err()
	case st.ckptErr != nil:
		return ds, st.ckptErr
	}
	return ds, nil
}

// runPass sweeps one source of work — the streamed universe on pass 1,
// the deferred set afterwards — and returns the subnets still pending.
func (st *scanState) runPass(ctx context.Context, shards []*scanShard, pending []subnetRef, first bool) []subnetRef {
	cfg := st.cfg
	ckpt := st.master != nil
	work := make(chan []subnetRef, 2*cfg.Concurrency)
	var results chan batchResult
	var collectorDone chan struct{}
	if ckpt {
		results = make(chan batchResult, 2*cfg.Concurrency)
		collectorDone = make(chan struct{})
		go st.collect(results, collectorDone)
	}

	// free recycles drained batch slices back to the producer, so the
	// steady state reuses a fixed set of batch buffers instead of
	// allocating one per channel send.
	free := make(chan []subnetRef, 4*cfg.Concurrency)

	workers := make([]*scanWorker, cfg.Concurrency)
	var wg sync.WaitGroup
	wg.Add(cfg.Concurrency)
	for i := 0; i < cfg.Concurrency; i++ {
		w := &scanWorker{st: st, sh: shards[i], aux: st.auxes[i], budget: -1}
		if cfg.RetryBudget > 0 {
			w.budget = cfg.RetryBudget
		}
		workers[i] = w
		go func() {
			defer wg.Done()
			for batch := range work {
				sh := w.sh
				var done []int64
				if ckpt {
					sh = newScanShard()
					done = make([]int64, 0, len(batch))
				}
				for _, ref := range batch {
					if ctx.Err() != nil {
						st.fail(ctx.Err())
						break
					}
					if w.processSubnet(ctx, sh, ref) && ckpt {
						done = append(done, ref.idx)
					}
				}
				if ckpt {
					results <- batchResult{mini: sh, done: done}
				}
				select {
				case free <- batch[:0]:
				default: // recycler full: let the GC take this one
				}
			}
			// Hand unused pacer slots back so the pacer's timeline
			// reflects exactly the queries sent.
			st.limiter.release(&w.aux.grant)
		}()
	}

	// Feed the pass. When the recycler runs dry (at high concurrency the
	// producer outruns the workers), batches are carved from a slab so
	// the fallback costs one allocation per slabBatches batches, not one
	// each.
	const slabBatches = 64
	var slab []subnetRef
	newBatch := func() []subnetRef {
		select {
		case b := <-free:
			return b
		default:
		}
		if len(slab) < workBatchSize {
			slab = make([]subnetRef, slabBatches*workBatchSize)
		}
		b := slab[:0:workBatchSize]
		slab = slab[workBatchSize:]
		return b
	}
	batch := newBatch()
	flush := func() bool {
		if len(batch) == 0 {
			return true
		}
		select {
		case work <- batch:
		case <-ctx.Done():
			return false
		}
		batch = newBatch()
		return true
	}
	if first {
		idx := int64(0)
		for _, p := range cfg.Universe {
			if !p.Addr().Is4() {
				continue
			}
			iputil.Subnets(p, 24, func(s netip.Prefix) bool {
				i := idx
				idx++
				if st.resumed.get(i) {
					return true // resumed: completed in a previous run
				}
				batch = append(batch, subnetRef{p: s, idx: i})
				if len(batch) == workBatchSize {
					return flush()
				}
				return true
			})
			if ctx.Err() != nil {
				break
			}
		}
	} else {
		for _, ref := range pending {
			batch = append(batch, ref)
			if len(batch) == workBatchSize && !flush() {
				break
			}
		}
	}
	flush()
	close(work)
	wg.Wait()
	if ckpt {
		close(results)
		<-collectorDone
	}

	var deferred []subnetRef
	for _, w := range workers {
		deferred = append(deferred, w.deferred...)
		w.deferred = nil
	}
	// Deterministic next-pass order regardless of worker interleaving.
	slices.SortFunc(deferred, func(a, b subnetRef) int { return int(a.idx - b.idx) })
	return deferred
}

// collect is the checkpoint collector: the only writer of the master
// shard and done bitmap, so every flush is a consistent snapshot.
func (st *scanState) collect(results <-chan batchResult, done chan<- struct{}) {
	defer close(done)
	var sinceFlush int64
	for br := range results {
		st.master.absorb(br.mini)
		for _, idx := range br.done {
			st.done.set(idx)
		}
		sinceFlush += int64(len(br.done))
		if sinceFlush >= st.cfg.Checkpoint.Every && st.ckptErr == nil {
			st.ckptErr = st.writeCheckpoint(dnswire.CanonicalName(st.cfg.Domain))
			sinceFlush = 0
		}
	}
}

// AddressesOf returns the discovered addresses originated by as, sorted.
func (ds *Dataset) AddressesOf(as bgp.ASN) []netip.Addr {
	var out []netip.Addr
	for addr, origin := range ds.Addresses {
		if origin == as {
			out = append(out, addr)
		}
	}
	sortAddrs(out)
	return out
}

// OperatorCounts returns the number of discovered addresses per AS.
func (ds *Dataset) OperatorCounts() map[bgp.ASN]int {
	out := make(map[bgp.ASN]int)
	for _, as := range ds.Addresses {
		out[as]++
	}
	return out
}

// Diff compares two datasets: addresses added and removed from a to b.
func Diff(a, b *Dataset) (added, removed []netip.Addr) {
	for addr := range b.Addresses {
		if _, ok := a.Addresses[addr]; !ok {
			added = append(added, addr)
		}
	}
	for addr := range a.Addresses {
		if _, ok := b.Addresses[addr]; !ok {
			removed = append(removed, addr)
		}
	}
	sortAddrs(added)
	sortAddrs(removed)
	return added, removed
}

// GrowthPercent returns the relative address-count growth from a to b.
func GrowthPercent(a, b *Dataset) float64 {
	if len(a.Addresses) == 0 {
		return 0
	}
	return (float64(len(b.Addresses)) - float64(len(a.Addresses))) / float64(len(a.Addresses)) * 100
}

func sortAddrs(addrs []netip.Addr) {
	slices.SortFunc(addrs, func(a, b netip.Addr) int { return a.Compare(b) })
}

// tokenBucket is a lock-free client-side pacer: the bucket state is one
// atomic timestamp (the next free send slot in nanoseconds) advanced by
// compare-and-swap, so pacing never serializes workers on a mutex and
// the sleep happens outside any shared critical section. It reads and
// sleeps on the scan's injected clock, so paced chaos runs on a
// VirtualClock cost no wall time.
//
// Grants are batched: one CAS claims a tranche of batch consecutive
// send slots into the caller's pacerGrant, and the following batch-1
// waits are served from the grant without touching shared state. Each
// slot is still slept to individually — the tranche pre-books the
// timeline, it does not burst — so the long-run rate is exactly QPS.
// Unused slots must be handed back with release so the booked timeline
// matches the queries actually sent.
type tokenBucket struct {
	interval int64 // nanoseconds per query; 0 disables pacing
	batch    int64 // send slots claimed per CAS
	clock    faults.Clock
	next     atomic.Int64
}

// defaultPacerBatch is the tranche size when ScanConfig.PacerBatch is 0.
const defaultPacerBatch = 16

func newTokenBucket(qps float64, batch int, clock faults.Clock) *tokenBucket {
	if qps <= 0 {
		return &tokenBucket{clock: clock}
	}
	if batch <= 0 {
		batch = defaultPacerBatch
	}
	return &tokenBucket{
		interval: int64(float64(time.Second) / qps),
		batch:    int64(batch),
		clock:    clock,
	}
}

// pacerGrant is a worker's outstanding tranche of send slots: base is
// the timestamp of the next unused slot, left counts slots remaining.
type pacerGrant struct {
	base int64
	left int64
}

// wait blocks until the caller's next send slot. Slots come from g when
// it still holds any, otherwise one CAS claims the next tranche.
func (b *tokenBucket) wait(ctx context.Context, g *pacerGrant) {
	if b.interval == 0 {
		return
	}
	if g.left > 0 {
		slot := g.base
		g.base += b.interval
		g.left--
		if wait := slot - b.clock.Now().UnixNano(); wait > 0 {
			_ = b.clock.Sleep(ctx, time.Duration(wait))
		}
		return
	}
	for {
		now := b.clock.Now().UnixNano()
		next := b.next.Load()
		target := next
		if now > target {
			target = now
		}
		if b.next.CompareAndSwap(next, target+b.interval*b.batch) {
			g.base = target + b.interval
			g.left = b.batch - 1
			if wait := target - now; wait > 0 {
				_ = b.clock.Sleep(ctx, time.Duration(wait))
			}
			return
		}
	}
}

// release returns g's unused slots to the bucket, so pauses between
// passes (or a drained work queue) don't leave booked-but-unsent slots
// inflating the pacer's timeline.
func (b *tokenBucket) release(g *pacerGrant) {
	if g.left > 0 && b.interval != 0 {
		b.next.Add(-g.left * b.interval)
	}
	g.base, g.left = 0, 0
}

// String summarizes the dataset.
func (ds *Dataset) String() string {
	return fmt.Sprintf("dataset{%s: %d addrs, %d client ASes, %d queries}",
		ds.Domain, len(ds.Addresses), len(ds.Serving), ds.Stats.QueriesSent)
}

// loadCheckpoint seeds the master state from cfg.Checkpoint.Path if the
// file exists, validating it belongs to this scan.
func (st *scanState) loadCheckpoint(domain string, total int64) error {
	ck, err := LoadCheckpoint(st.cfg.Checkpoint.Path)
	if errors.Is(err, os.ErrNotExist) {
		return nil // nothing to resume: fresh scan
	}
	if err != nil {
		return err
	}
	if ck.Domain != domain {
		return fmt.Errorf("core: checkpoint %s is for domain %s, scan wants %s",
			st.cfg.Checkpoint.Path, ck.Domain, domain)
	}
	if ck.UniverseTotal != total {
		return fmt.Errorf("core: checkpoint %s covers a %d-subnet universe, scan has %d",
			st.cfg.Checkpoint.Path, ck.UniverseTotal, total)
	}
	st.master.addrs = ck.Addresses
	st.master.serving = ck.Serving
	st.master.ledger = ck.Ledger
	st.master.queries = ck.Counters["queries"]
	st.master.skipped = ck.Counters["skipped"]
	st.master.retries = ck.Counters["retries"]
	st.master.deferrals = ck.Counters["deferrals"]
	st.master.termErrors = ck.Counters["termerrors"]
	st.master.tAttempts = ck.Counters["timeoutattempts"]
	st.master.sfAttempts = ck.Counters["servfailattempts"]
	st.master.refAttempts = ck.Counters["refusedattempts"]
	st.master.trAttempts = ck.Counters["truncatedattempts"]
	st.master.stAttempts = ck.Counters["staleattempts"]
	for _, r := range ck.DoneRanges {
		for i := r[0]; i <= r[1]; i++ {
			st.done.set(i)
		}
	}
	return nil
}

// writeCheckpoint atomically persists the collector's current state.
func (st *scanState) writeCheckpoint(domain string) error {
	m := st.master
	ck := &Checkpoint{
		Domain:        domain,
		UniverseTotal: st.universeTotal,
		Addresses:     m.addrs,
		Serving:       m.serving,
		Ledger:        m.ledger,
		Counters: map[string]int64{
			"queries":           m.queries,
			"skipped":           m.skipped,
			"retries":           m.retries,
			"deferrals":         m.deferrals,
			"termerrors":        m.termErrors,
			"timeoutattempts":   m.tAttempts,
			"servfailattempts":  m.sfAttempts,
			"refusedattempts":   m.refAttempts,
			"truncatedattempts": m.trAttempts,
			"staleattempts":     m.stAttempts,
		},
	}
	st.done.ranges(func(lo, hi int64) {
		ck.DoneRanges = append(ck.DoneRanges, [2]int64{lo, hi})
	})
	return ck.WriteFile(st.cfg.Checkpoint.Path)
}
