// Package core implements the paper's primary contribution: ECS-based
// enumeration of iCloud Private Relay ingress relays (§3, §4.1), the
// resulting ingress address dataset with client-AS attribution (Tables 1
// and 2), and a passive relay-traffic classifier built from the datasets
// (§6's suggestion to network operators).
//
// The scanner iterates /24 client subnets over the routed IPv4 space,
// attaches each as an EDNS0 Client Subnet option to A queries for the
// relay domains, and collects the returned ingress addresses. Two ethics
// measures from §7 are implemented faithfully: unrouted space is never
// queried, and answers whose ECS scope covers more than a /24 suppress
// all further queries inside that scope.
package core

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/dnsserver"
	"github.com/relay-networks/privaterelay/internal/dnswire"
	"github.com/relay-networks/privaterelay/internal/iputil"
)

// ScanConfig configures one ECS enumeration scan.
type ScanConfig struct {
	// Exchanger carries queries to the authoritative server.
	Exchanger dnsserver.Exchanger
	// Domain is the service domain to enumerate (mask.icloud.com for the
	// QUIC plane, mask-h2.icloud.com for the TCP fallback).
	Domain string
	// QType is the record type to query (default TypeA). AAAA scans are
	// supported but futile by design: the authoritative answers IPv6
	// with scope 0, so one vantage sees one record set (§3).
	QType dnswire.Type
	// Universe lists the routed IPv4 prefixes to cover. Unrouted space
	// is implicitly skipped by not being listed.
	Universe []netip.Prefix
	// Attribution resolves discovered addresses and client subnets to
	// origin ASes.
	Attribution *bgp.Table
	// RespectScope enables the §7 optimization: answers with a scope
	// shorter than /24 suppress further queries inside the scope.
	// The paper's scan always enables this; disabling it is the ablation.
	RespectScope bool
	// Concurrency is the number of parallel query workers (default 8).
	Concurrency int
	// Retries is the number of re-attempts after a timeout (default 1).
	Retries int
	// QPS rate-limits the client side; zero disables limiting.
	QPS float64
}

// ScanStats counts scanner activity.
type ScanStats struct {
	QueriesSent    int64
	SubnetsTotal   int64 // /24s in the universe
	SubnetsSkipped int64 // suppressed by a covering scope
	Timeouts       int64 // queries lost after retries
	Errors         int64 // non-timeout failures
	Elapsed        time.Duration
}

// Dataset is the result of one scan: the ingress addresses with AS
// attribution, and per-client-AS serving statistics.
type Dataset struct {
	Domain string
	// Addresses maps each discovered ingress address to its origin AS.
	Addresses map[netip.Addr]bgp.ASN
	// Serving maps each client AS to its per-operator served /24 counts.
	Serving map[bgp.ASN]*ServingStats
	// Stats holds scanner counters.
	Stats ScanStats
}

// ServingStats accumulates how a client AS's subnets are served.
type ServingStats struct {
	// SubnetsByOperator counts served /24s per ingress operator AS.
	SubnetsByOperator map[bgp.ASN]int64
}

// TotalSubnets sums served /24s over operators.
func (s *ServingStats) TotalSubnets() int64 {
	var n int64
	for _, c := range s.SubnetsByOperator {
		n += c
	}
	return n
}

// Operators returns the set of operators serving this AS.
func (s *ServingStats) Operators() []bgp.ASN {
	out := make([]bgp.ASN, 0, len(s.SubnetsByOperator))
	for as := range s.SubnetsByOperator {
		out = append(out, as)
	}
	return out
}

// ErrNoExchanger is returned for scans without a transport.
var ErrNoExchanger = errors.New("core: scan config has no exchanger")

// Scan runs the enumeration and returns the dataset. The scan is
// deterministic for in-memory transports: subnets are visited in address
// order per universe prefix (workers race only on unordered set inserts).
func Scan(ctx context.Context, cfg ScanConfig) (*Dataset, error) {
	if cfg.Exchanger == nil {
		return nil, ErrNoExchanger
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.QType == 0 {
		cfg.QType = dnswire.TypeA
	}
	start := time.Now()
	ds := &Dataset{
		Domain:    dnswire.CanonicalName(cfg.Domain),
		Addresses: make(map[netip.Addr]bgp.ASN),
		Serving:   make(map[bgp.ASN]*ServingStats),
	}

	var (
		mu          sync.Mutex // guards ds, skip and globalScope
		globalScope bool       // a scope-0 answer covers the whole space
		skip        iputil.Trie[struct{}]
		limiter     = newQPSLimiter(cfg.QPS)
		work        = make(chan netip.Prefix, 4*cfg.Concurrency)
		wg          sync.WaitGroup
		scanErr     error
		errOnce     sync.Once
	)

	worker := func() {
		defer wg.Done()
		for subnet := range work {
			if err := ctx.Err(); err != nil {
				errOnce.Do(func() { scanErr = err })
				continue
			}
			mu.Lock()
			_, _, skipped := skip.Lookup(subnet.Addr())
			skipped = skipped || globalScope
			mu.Unlock()
			if skipped {
				mu.Lock()
				ds.Stats.SubnetsSkipped++
				// The covering answer applies here too: account the
				// subnet to its client AS under the operator recorded
				// with the scope entry.
				mu.Unlock()
				continue
			}
			limiter.wait()
			resp, err := exchangeWithRetry(ctx, cfg, subnet)
			mu.Lock()
			ds.Stats.QueriesSent++ // retries counted inside exchangeWithRetry
			if err != nil {
				if errors.Is(err, dnsserver.ErrTimeout) {
					ds.Stats.Timeouts++
				} else {
					ds.Stats.Errors++
				}
				mu.Unlock()
				continue
			}
			ds.recordLocked(cfg, subnet, resp, &skip, &globalScope)
			mu.Unlock()
		}
	}

	wg.Add(cfg.Concurrency)
	for i := 0; i < cfg.Concurrency; i++ {
		go worker()
	}
	total := int64(0)
	for _, p := range cfg.Universe {
		if !p.Addr().Is4() {
			continue
		}
		iputil.Subnets(p, 24, func(s netip.Prefix) bool {
			total++
			select {
			case work <- s:
				return true
			case <-ctx.Done():
				return false
			}
		})
		if ctx.Err() != nil {
			break
		}
	}
	close(work)
	wg.Wait()
	ds.Stats.SubnetsTotal = total
	ds.Stats.Elapsed = time.Since(start)
	if scanErr != nil {
		return ds, scanErr
	}
	return ds, ctx.Err()
}

// exchangeWithRetry sends one ECS query with retries on timeout.
func exchangeWithRetry(ctx context.Context, cfg ScanConfig, subnet netip.Prefix) (*dnswire.Message, error) {
	id := uint16(iputil.HashPrefix(subnet))
	q := dnswire.NewQuery(id, cfg.Domain, cfg.QType).WithECS(subnet)
	var lastErr error
	for attempt := 0; attempt <= cfg.Retries; attempt++ {
		resp, err := cfg.Exchanger.Exchange(ctx, q)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !errors.Is(err, dnsserver.ErrTimeout) {
			break
		}
	}
	return nil, lastErr
}

// recordLocked folds one response into the dataset. Caller holds mu.
func (ds *Dataset) recordLocked(cfg ScanConfig, subnet netip.Prefix, resp *dnswire.Message, skip *iputil.Trie[struct{}], globalScope *bool) {
	if resp.Header.RCode != dnswire.RCodeNoError || len(resp.Answers) == 0 {
		return
	}
	var operator bgp.ASN
	for _, rec := range resp.Answers {
		var addr netip.Addr
		switch rec.Type {
		case dnswire.TypeA:
			addr = rec.A
		case dnswire.TypeAAAA:
			addr = rec.AAAA
		default:
			continue
		}
		as := bgp.ASN(0)
		if cfg.Attribution != nil {
			as, _ = cfg.Attribution.Origin(addr)
		}
		ds.Addresses[addr] = as
		operator = as // all records of one answer share an AS (§4.1)
	}
	// A scope of zero declares the answer valid for the entire address
	// space — nothing more can be learned from further ECS queries.
	if cfg.RespectScope && resp.Edns != nil && resp.Edns.ClientSubnet != nil &&
		resp.Edns.ClientSubnet.ScopePrefixLen == 0 {
		*globalScope = true
	}

	// Serving accounting: the answer covers scopeCount /24s of the
	// client AS (scope < 24 means one answer stands for many subnets).
	coveredSubnets := int64(1)
	if cfg.RespectScope && resp.Edns != nil && resp.Edns.ClientSubnet != nil {
		cs := resp.Edns.ClientSubnet
		if cs.ScopePrefixLen > 0 && cs.ScopePrefixLen < 24 {
			scopePfx := cs.ScopePrefix()
			if skip.Insert(scopePfx, struct{}{}) {
				// First answer for this scope accounts for every /24 it
				// covers (including this one).
				coveredSubnets = int64(iputil.SubnetCount(scopePfx, 24))
			} else {
				// A concurrent worker already accounted the whole scope.
				coveredSubnets = 0
			}
		}
	}
	if cfg.Attribution != nil {
		if clientAS, ok := cfg.Attribution.Origin(subnet.Addr()); ok {
			st := ds.Serving[clientAS]
			if st == nil {
				st = &ServingStats{SubnetsByOperator: make(map[bgp.ASN]int64)}
				ds.Serving[clientAS] = st
			}
			st.SubnetsByOperator[operator] += coveredSubnets
		}
	}
}

// AddressesOf returns the discovered addresses originated by as, sorted.
func (ds *Dataset) AddressesOf(as bgp.ASN) []netip.Addr {
	var out []netip.Addr
	for addr, origin := range ds.Addresses {
		if origin == as {
			out = append(out, addr)
		}
	}
	sortAddrs(out)
	return out
}

// OperatorCounts returns the number of discovered addresses per AS.
func (ds *Dataset) OperatorCounts() map[bgp.ASN]int {
	out := make(map[bgp.ASN]int)
	for _, as := range ds.Addresses {
		out[as]++
	}
	return out
}

// Diff compares two datasets: addresses added and removed from a to b.
func Diff(a, b *Dataset) (added, removed []netip.Addr) {
	for addr := range b.Addresses {
		if _, ok := a.Addresses[addr]; !ok {
			added = append(added, addr)
		}
	}
	for addr := range a.Addresses {
		if _, ok := b.Addresses[addr]; !ok {
			removed = append(removed, addr)
		}
	}
	sortAddrs(added)
	sortAddrs(removed)
	return added, removed
}

// GrowthPercent returns the relative address-count growth from a to b.
func GrowthPercent(a, b *Dataset) float64 {
	if len(a.Addresses) == 0 {
		return 0
	}
	return (float64(len(b.Addresses)) - float64(len(a.Addresses))) / float64(len(a.Addresses)) * 100
}

func sortAddrs(addrs []netip.Addr) {
	for i := 1; i < len(addrs); i++ {
		for j := i; j > 0 && addrs[j].Less(addrs[j-1]); j-- {
			addrs[j], addrs[j-1] = addrs[j-1], addrs[j]
		}
	}
}

// qpsLimiter is a minimal client-side pacer.
type qpsLimiter struct {
	interval time.Duration
	mu       sync.Mutex
	next     time.Time
}

func newQPSLimiter(qps float64) *qpsLimiter {
	if qps <= 0 {
		return &qpsLimiter{}
	}
	return &qpsLimiter{interval: time.Duration(float64(time.Second) / qps)}
}

func (l *qpsLimiter) wait() {
	if l.interval == 0 {
		return
	}
	l.mu.Lock()
	now := time.Now()
	if l.next.Before(now) {
		l.next = now
	}
	sleep := l.next.Sub(now)
	l.next = l.next.Add(l.interval)
	l.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
}

// String summarizes the dataset.
func (ds *Dataset) String() string {
	return fmt.Sprintf("dataset{%s: %d addrs, %d client ASes, %d queries}",
		ds.Domain, len(ds.Addresses), len(ds.Serving), ds.Stats.QueriesSent)
}
