package core

import (
	"bytes"
	"encoding/binary"
	"math/rand/v2"
	"net/netip"
	"os"
	"path/filepath"
	"testing"

	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/colstore"
)

// seededMapDataset builds a map-backed dataset with both address
// families and serving stats, deterministic per seed.
func seededMapDataset(seed uint64, addrs int) *Dataset {
	rng := rand.New(rand.NewPCG(seed, 0xc0de))
	ds := &Dataset{
		Domain:    "mask.icloud.com.",
		Addresses: make(map[netip.Addr]bgp.ASN),
		Serving:   make(map[bgp.ASN]*ServingStats),
	}
	for len(ds.Addresses) < addrs {
		as := bgp.ASN(rng.Uint32N(70000) + 1)
		if rng.Uint32N(3) == 0 {
			var b [16]byte
			binary.BigEndian.PutUint64(b[:8], rng.Uint64())
			binary.BigEndian.PutUint64(b[8:], rng.Uint64())
			ds.Addresses[netip.AddrFrom16(b)] = as
		} else {
			var b [4]byte
			binary.BigEndian.PutUint32(b[:], rng.Uint32())
			ds.Addresses[netip.AddrFrom4(b)] = as
		}
	}
	for c := 0; c < 4; c++ {
		st := &ServingStats{SubnetsByOperator: make(map[bgp.ASN]int64)}
		for o := 0; o < 3; o++ {
			st.SubnetsByOperator[bgp.ASN(6185+o)] = int64(rng.Uint32N(500))
		}
		ds.Serving[bgp.ASN(100+c)] = st
	}
	return ds
}

// TestColumnsRoundTripBytes is the golden-format property: canonical
// text → colstore → binary → colstore → text reproduces the exact
// bytes, for several seeds.
func TestColumnsRoundTripBytes(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		orig := seededMapDataset(seed, 500)
		text := canonicalBytes(t, orig)

		parsed, err := ReadCanonical(bytes.NewReader(text))
		if err != nil {
			t.Fatalf("ReadCanonical: %v", err)
		}
		cs, err := parsed.Columns()
		if err != nil {
			t.Fatalf("Columns: %v", err)
		}
		enc := cs.AppendBinary(nil, colstore.Fingerprint(text))
		cs2, src, err := colstore.DecodeBinary(enc)
		if err != nil {
			t.Fatalf("DecodeBinary: %v", err)
		}
		if src != colstore.Fingerprint(text) {
			t.Fatal("fingerprint did not round-trip")
		}
		back := canonicalBytes(t, FromColumns(cs2))
		if !bytes.Equal(back, text) {
			t.Fatalf("seed %d: canonical text did not survive the columnar round trip", seed)
		}
	}
}

func TestColumnsOperatorCountsAgree(t *testing.T) {
	ds := seededMapDataset(7, 300)
	cs, err := ds.Columns()
	if err != nil {
		t.Fatalf("Columns: %v", err)
	}
	want := ds.OperatorCounts()
	got := cs.OperatorCounts()
	if len(got) != len(want) {
		t.Fatalf("columnar OperatorCounts has %d operators, map %d", len(got), len(want))
	}
	for as, n := range want {
		if got[as] != n {
			t.Fatalf("operator %d: columnar %d, map %d", as, got[as], n)
		}
	}
}

// TestSidecarChaosLifecycle drives LoadColumns through every sidecar
// state — present, missing, stale, corrupt — and checks each repairs to
// a byte-identical sidecar and identical columns.
func TestSidecarChaosLifecycle(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "2022-01.ds")
	ds := seededMapDataset(3, 400)
	if err := SaveCanonicalFile(path, ds); err != nil {
		t.Fatalf("SaveCanonicalFile: %v", err)
	}
	scPath := SidecarPath(path)
	golden, err := os.ReadFile(scPath)
	if err != nil {
		t.Fatalf("sidecar missing after save: %v", err)
	}
	text, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	load := func(wantStatus SidecarStatus) *colstore.Dataset {
		t.Helper()
		cs, status, err := LoadColumns(path)
		if err != nil {
			t.Fatalf("LoadColumns: %v", err)
		}
		if status != wantStatus {
			t.Fatalf("status %v, want %v", status, wantStatus)
		}
		now, err := os.ReadFile(scPath)
		if err != nil || !bytes.Equal(now, golden) {
			t.Fatalf("sidecar bytes diverged after %v load (err=%v)", wantStatus, err)
		}
		if got := canonicalBytes(t, FromColumns(cs)); !bytes.Equal(got, text) {
			t.Fatalf("columns after %v load do not reproduce the canonical text", wantStatus)
		}
		return cs
	}

	load(SidecarHit)

	// Missing: a crash between text and sidecar writes.
	if err := os.Remove(scPath); err != nil {
		t.Fatal(err)
	}
	load(SidecarMiss)
	load(SidecarHit)

	// Stale: valid sidecar fingerprinting different text bytes.
	other := seededMapDataset(99, 50)
	cs99, err := other.Columns()
	if err != nil {
		t.Fatal(err)
	}
	staleEnc := cs99.AppendBinary(nil, colstore.Fingerprint([]byte("other text")))
	if err := os.WriteFile(scPath, staleEnc, 0o644); err != nil {
		t.Fatal(err)
	}
	load(SidecarStale)

	// Corrupt: torn write / bit rot mid-file.
	torn := append([]byte(nil), golden...)
	torn[len(torn)/2] ^= 0xff
	if err := os.WriteFile(scPath, torn[:len(torn)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	load(SidecarQuarantined)
	if q, err := os.ReadFile(scPath + ".corrupt"); err != nil || !bytes.Equal(q, torn[:len(torn)-3]) {
		t.Fatalf("quarantine file missing or altered (err=%v)", err)
	}
	load(SidecarHit)

	// The text failing to parse is the only fatal path.
	if err := os.WriteFile(path, []byte("not canonical at all\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadColumns(path); err == nil {
		t.Fatal("garbage canonical text loaded without error")
	}
}

func TestClassifierColumnsAgreesWithMap(t *testing.T) {
	ds := seededMapDataset(5, 300)
	cs, err := ds.Columns()
	if err != nil {
		t.Fatal(err)
	}
	egress := map[netip.Prefix]bgp.ASN{netip.MustParsePrefix("203.0.113.0/24"): 714}
	byMap := NewClassifier(ds, egress)
	byCols := NewClassifierColumns(cs, egress)
	probe := netip.MustParseAddr("198.51.100.7")
	for addr := range ds.Addresses {
		wc, was := byMap.Classify(probe, addr)
		gc, gas := byCols.Classify(probe, addr)
		if wc != gc || was != gas {
			t.Fatalf("Classify(dst=%v): columns (%v,%v), map (%v,%v)", addr, gc, gas, wc, was)
		}
		if !byCols.IsIngress(addr) {
			t.Fatalf("IsIngress(%v) false via columns", addr)
		}
	}
	if byCols.IsIngress(netip.MustParseAddr("192.0.2.1")) {
		t.Fatal("false ingress hit via columns")
	}
	if cls, as := byCols.Classify(netip.MustParseAddr("203.0.113.9"), probe); cls != ClassFromEgress || as != 714 {
		t.Fatalf("egress classification broken: %v,%v", cls, as)
	}
}
