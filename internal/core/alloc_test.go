//go:build !race

// Allocation-regression pin for the scanner's per-subnet loop. Excluded
// from race builds: the race runtime's allocation instrumentation makes
// testing.AllocsPerRun meaningless, so CI runs this in a separate
// non-race step (see the chaos job).

package core

import (
	"context"
	"net/netip"
	"testing"

	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/dnsserver"
	"github.com/relay-networks/privaterelay/internal/faults"
	"github.com/relay-networks/privaterelay/internal/netsim"
)

// TestProcessSubnetAllocBudget pins the steady-state cost of one
// scanned /24 end to end: breaker admission, pacing, query re-stamping,
// the in-memory exchange against a warm server, classification and
// shard accounting. The budget is zero — the whole loop runs on reused
// messages, cached answers and preallocated shard maps, and this test
// is what keeps it that way.
func TestProcessSubnetAllocBudget(t *testing.T) {
	const budget = 0
	w := testWorld(t)
	cfg := scanConfig(w, netsim.MonthApr, dnsserver.MaskDomain)
	// Scope-respecting runs would publish the answer scope and then
	// short-circuit repeats of the same subnet before any query; the
	// ablation path exercises the full query loop every iteration.
	cfg.RespectScope = false
	cfg.Clock = faults.WallClock{}

	idx := cfg.Attribution.Index()
	st := &scanState{
		cfg:     &cfg,
		idx:     idx,
		clock:   cfg.Clock,
		limiter: newTokenBucket(cfg.QPS, cfg.PacerBatch, cfg.Clock),
		breaker: newCircuitBreaker(cfg.Breaker, cfg.Clock),
	}
	aux := &workerAux{
		origins4: make(map[uint32]bgp.ASN),
		origins:  make(map[netip.Addr]bgp.ASN),
		cursor:   idx.Cursor(),
	}
	worker := &scanWorker{st: st, sh: newScanShard(), aux: aux, budget: -1}
	ref := subnetRef{p: clientSubnetPrefix(w, 0)}
	ctx := context.Background()

	// Warm the server's record cache, the message pool and the shard maps.
	for i := 0; i < 16; i++ {
		if !worker.processSubnet(ctx, worker.sh, ref) {
			t.Fatal("warm-up subnet did not complete")
		}
	}
	avg := testing.AllocsPerRun(500, func() {
		if !worker.processSubnet(ctx, worker.sh, ref) {
			panic("subnet did not complete")
		}
	})
	if avg > budget {
		t.Fatalf("processSubnet: %.2f allocs/op, budget %d", avg, budget)
	}
}

// clientSubnetPrefix returns the first /24 of client AS i, the same
// shape the universe iterator hands to workers.
func clientSubnetPrefix(w *netsim.World, i int) netip.Prefix {
	p := w.ClientASes[i].Prefixes[0]
	return netip.PrefixFrom(p.Addr(), 24)
}
