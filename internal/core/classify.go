package core

import (
	"net/netip"

	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/iputil"
)

// TrafficClass labels one observed flow endpoint pair for a passive
// network observer (§6: the ingress dataset lets operators detect relay
// traffic; the published egress list identifies relay-originated flows).
type TrafficClass int

// Flow classifications.
const (
	// ClassUnrelated is ordinary traffic.
	ClassUnrelated TrafficClass = iota
	// ClassToIngress is a client talking into the relay network: its
	// destination is a known ingress relay. The observer learns that the
	// client uses Private Relay but nothing about the visited service.
	ClassToIngress
	// ClassFromEgress is relay traffic arriving at a server: the source
	// is inside a published egress subnet. IDSs should expect rotating
	// source addresses within these ranges.
	ClassFromEgress
)

// String names the class.
func (c TrafficClass) String() string {
	switch c {
	case ClassToIngress:
		return "to-ingress"
	case ClassFromEgress:
		return "from-egress"
	default:
		return "unrelated"
	}
}

// Classifier detects relay traffic from the two public datasets.
type Classifier struct {
	ingress map[netip.Addr]bgp.ASN
	egress  iputil.Trie[bgp.ASN]
}

// NewClassifier builds a classifier from an ingress dataset and the
// egress subnet list (prefix → operator AS).
func NewClassifier(ingress *Dataset, egressSubnets map[netip.Prefix]bgp.ASN) *Classifier {
	c := &Classifier{ingress: make(map[netip.Addr]bgp.ASN)}
	if ingress != nil {
		for addr, as := range ingress.Addresses {
			c.ingress[addr] = as
		}
	}
	for pfx, as := range egressSubnets {
		c.egress.Insert(pfx, as)
	}
	return c
}

// AddIngress merges additional ingress addresses (e.g. the fallback
// plane's dataset or a newer scan).
func (c *Classifier) AddIngress(ds *Dataset) {
	for addr, as := range ds.Addresses {
		c.ingress[addr] = as
	}
}

// Classify labels a flow given by source and destination address, as seen
// by a passive observer. Operator attribution (when matched) is returned
// alongside.
func (c *Classifier) Classify(src, dst netip.Addr) (TrafficClass, bgp.ASN) {
	if as, ok := c.ingress[iputil.Canonical(dst)]; ok {
		return ClassToIngress, as
	}
	if _, as, ok := c.egress.Lookup(src); ok {
		return ClassFromEgress, as
	}
	return ClassUnrelated, 0
}

// IsIngress reports whether addr is a known ingress relay.
func (c *Classifier) IsIngress(addr netip.Addr) bool {
	_, ok := c.ingress[iputil.Canonical(addr)]
	return ok
}

// IsEgress reports whether addr falls in a published egress subnet.
func (c *Classifier) IsEgress(addr netip.Addr) bool {
	_, _, ok := c.egress.Lookup(addr)
	return ok
}
