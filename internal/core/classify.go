package core

import (
	"net/netip"

	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/colstore"
	"github.com/relay-networks/privaterelay/internal/iputil"
)

// TrafficClass labels one observed flow endpoint pair for a passive
// network observer (§6: the ingress dataset lets operators detect relay
// traffic; the published egress list identifies relay-originated flows).
type TrafficClass int

// Flow classifications.
const (
	// ClassUnrelated is ordinary traffic.
	ClassUnrelated TrafficClass = iota
	// ClassToIngress is a client talking into the relay network: its
	// destination is a known ingress relay. The observer learns that the
	// client uses Private Relay but nothing about the visited service.
	ClassToIngress
	// ClassFromEgress is relay traffic arriving at a server: the source
	// is inside a published egress subnet. IDSs should expect rotating
	// source addresses within these ranges.
	ClassFromEgress
)

// String names the class.
func (c TrafficClass) String() string {
	switch c {
	case ClassToIngress:
		return "to-ingress"
	case ClassFromEgress:
		return "from-egress"
	default:
		return "unrelated"
	}
}

// Classifier detects relay traffic from the two public datasets.
// Ingress membership is answered from two planes: a map for datasets
// merged address-by-address, and zero or more borrowed sorted column
// sets (colstore.Dataset) probed by binary search — the latter cost no
// copy at all, so a classifier over a loaded sidecar is free to build.
type Classifier struct {
	ingress map[netip.Addr]bgp.ASN
	cols    []*colstore.Dataset
	egress  iputil.Trie[bgp.ASN]
}

// NewClassifier builds a classifier from an ingress dataset and the
// egress subnet list (prefix → operator AS).
func NewClassifier(ingress *Dataset, egressSubnets map[netip.Prefix]bgp.ASN) *Classifier {
	c := &Classifier{ingress: make(map[netip.Addr]bgp.ASN)}
	if ingress != nil {
		for addr, as := range ingress.Addresses {
			c.ingress[addr] = as
		}
	}
	for pfx, as := range egressSubnets {
		c.egress.Insert(pfx, as)
	}
	return c
}

// NewClassifierColumns builds a classifier that borrows an ingress
// column set — no per-address copying; the columns must stay immutable
// for the classifier's lifetime.
func NewClassifierColumns(ingress *colstore.Dataset, egressSubnets map[netip.Prefix]bgp.ASN) *Classifier {
	c := NewClassifier(nil, egressSubnets)
	if ingress != nil {
		c.cols = append(c.cols, ingress)
	}
	return c
}

// AddIngress merges additional ingress addresses (e.g. the fallback
// plane's dataset or a newer scan).
func (c *Classifier) AddIngress(ds *Dataset) {
	for addr, as := range ds.Addresses {
		c.ingress[addr] = as
	}
}

// AddIngressColumns borrows an additional ingress column set. Later
// additions win over earlier ones on overlapping addresses, matching
// AddIngress's overwrite semantics; the map plane always wins last.
func (c *Classifier) AddIngressColumns(cs *colstore.Dataset) {
	c.cols = append(c.cols, cs)
}

// lookupIngress resolves an already-canonicalized address across both
// ingress planes: the merged map first (it holds the newest explicit
// merges), then borrowed columns newest-first.
func (c *Classifier) lookupIngress(addr netip.Addr) (bgp.ASN, bool) {
	if as, ok := c.ingress[addr]; ok {
		return as, true
	}
	for i := len(c.cols) - 1; i >= 0; i-- {
		if as, ok := c.cols[i].Lookup(addr); ok {
			return as, true
		}
	}
	return 0, false
}

// Classify labels a flow given by source and destination address, as seen
// by a passive observer. Operator attribution (when matched) is returned
// alongside.
func (c *Classifier) Classify(src, dst netip.Addr) (TrafficClass, bgp.ASN) {
	if as, ok := c.lookupIngress(iputil.Canonical(dst)); ok {
		return ClassToIngress, as
	}
	if _, as, ok := c.egress.Lookup(src); ok {
		return ClassFromEgress, as
	}
	return ClassUnrelated, 0
}

// IsIngress reports whether addr is a known ingress relay.
func (c *Classifier) IsIngress(addr netip.Addr) bool {
	_, ok := c.lookupIngress(iputil.Canonical(addr))
	return ok
}

// IsEgress reports whether addr falls in a published egress subnet.
func (c *Classifier) IsEgress(addr netip.Addr) bool {
	_, _, ok := c.egress.Lookup(addr)
	return ok
}
