package core

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"os"
	"slices"
	"strconv"
	"strings"

	"github.com/relay-networks/privaterelay/internal/atomicio"
	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/faults"
)

// Dataset persistence: the paper publishes its collected ingress address
// datasets for other researchers. The format is a line-oriented CSV —
// `address,asn` rows preceded by `# key value` metadata comments — that
// diffing tools and spreadsheets both handle.

// Save serializes the dataset.
func (ds *Dataset) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# domain %s\n", ds.Domain)
	fmt.Fprintf(bw, "# queries %d\n", ds.Stats.QueriesSent)
	fmt.Fprintf(bw, "# skipped %d\n", ds.Stats.SubnetsSkipped)
	fmt.Fprintf(bw, "# timeouts %d\n", ds.Stats.Timeouts)
	// Stable order: sorted addresses.
	addrs := make([]netip.Addr, 0, len(ds.Addresses))
	for a := range ds.Addresses {
		addrs = append(addrs, a)
	}
	sortAddrs(addrs)
	for _, a := range addrs {
		fmt.Fprintf(bw, "%s,%d\n", a, uint32(ds.Addresses[a]))
	}
	return bw.Flush()
}

// ReadDataset parses a dataset written by Save. Serving statistics are
// not persisted (they are derivable only during the scan); the address
// set and metadata round-trip.
func ReadDataset(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	ds := &Dataset{
		Addresses: make(map[netip.Addr]bgp.ASN),
		Serving:   make(map[bgp.ASN]*ServingStats),
	}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.Fields(strings.TrimPrefix(text, "#"))
			if len(fields) != 2 {
				continue
			}
			switch fields[0] {
			case "domain":
				ds.Domain = fields[1]
			case "queries":
				ds.Stats.QueriesSent, _ = strconv.ParseInt(fields[1], 10, 64)
			case "skipped":
				ds.Stats.SubnetsSkipped, _ = strconv.ParseInt(fields[1], 10, 64)
			case "timeouts":
				ds.Stats.Timeouts, _ = strconv.ParseInt(fields[1], 10, 64)
			}
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("core: dataset line %d: want addr,asn", line)
		}
		addr, err := netip.ParseAddr(parts[0])
		if err != nil {
			return nil, fmt.Errorf("core: dataset line %d: %w", line, err)
		}
		asn, err := strconv.ParseUint(parts[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("core: dataset line %d: %w", line, err)
		}
		ds.Addresses[addr] = bgp.ASN(asn)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ds, nil
}

// ReadCanonical parses the output of WriteCanonical back into a
// Dataset: the address set and the per-client-AS serving statistics.
// Scanner counters are not part of the canonical surface (they are
// path-dependent) and come back zero. The `# canonical <domain>` header
// restores Domain; other comment lines are ignored, so canonical bodies
// embedded in framed files (relayd's dataset generations) parse with
// the same reader.
func ReadCanonical(r io.Reader) (*Dataset, error) {
	ds := &Dataset{
		Addresses: make(map[netip.Addr]bgp.ASN),
		Serving:   make(map[bgp.ASN]*ServingStats),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.Fields(strings.TrimPrefix(text, "#"))
			if len(fields) == 2 && fields[0] == "canonical" {
				ds.Domain = fields[1]
			}
			continue
		}
		tag, rest, ok := strings.Cut(text, " ")
		if !ok {
			return nil, fmt.Errorf("core: canonical line %d: want `TAG payload`", line)
		}
		switch tag {
		case "A":
			addrStr, asnStr, ok := strings.Cut(rest, ",")
			if !ok {
				return nil, fmt.Errorf("core: canonical line %d: want A addr,asn", line)
			}
			addr, err := netip.ParseAddr(addrStr)
			if err != nil {
				return nil, fmt.Errorf("core: canonical line %d: %w", line, err)
			}
			asn, err := strconv.ParseUint(asnStr, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("core: canonical line %d: %w", line, err)
			}
			ds.Addresses[addr] = bgp.ASN(asn)
		case "S":
			parts := strings.Split(rest, ",")
			if len(parts) != 3 {
				return nil, fmt.Errorf("core: canonical line %d: want S client,operator,count", line)
			}
			nums := make([]int64, 3)
			for i, p := range parts {
				n, err := strconv.ParseInt(p, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("core: canonical line %d: %w", line, err)
				}
				nums[i] = n
			}
			client := bgp.ASN(nums[0])
			st, ok := ds.Serving[client]
			if !ok {
				st = &ServingStats{SubnetsByOperator: make(map[bgp.ASN]int64)}
				ds.Serving[client] = st
			}
			st.SubnetsByOperator[bgp.ASN(nums[1])] = nums[2]
		default:
			return nil, fmt.Errorf("core: canonical line %d: unknown tag %q", line, tag)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ds, nil
}

// WriteCanonical serializes the scan's *result* — the address set and the
// per-client-AS serving statistics, both sorted — and nothing volatile.
// Two runs that discovered the same network state produce byte-identical
// canonical output even when their paths differed (retries, faults,
// checkpoint resumes, worker interleavings), so it is the comparison
// artifact for equivalence and resume tests and for published datasets.
func (ds *Dataset) WriteCanonical(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# canonical %s\n", ds.Domain)
	addrs := make([]netip.Addr, 0, len(ds.Addresses))
	for a := range ds.Addresses {
		addrs = append(addrs, a)
	}
	sortAddrs(addrs)
	for _, a := range addrs {
		fmt.Fprintf(bw, "A %s,%d\n", a, uint32(ds.Addresses[a]))
	}
	clients := make([]bgp.ASN, 0, len(ds.Serving))
	for as := range ds.Serving {
		clients = append(clients, as)
	}
	slices.Sort(clients)
	for _, client := range clients {
		ops := ds.Serving[client].SubnetsByOperator
		opList := make([]bgp.ASN, 0, len(ops))
		for op := range ops {
			opList = append(opList, op)
		}
		slices.Sort(opList)
		for _, op := range opList {
			fmt.Fprintf(bw, "S %d,%d,%d\n", uint32(client), uint32(op), ops[op])
		}
	}
	return bw.Flush()
}

// Checkpoint is a consistent snapshot of scan progress: everything
// collected so far plus the done-bitmap over the /24 universe, written
// periodically so a killed scan resumes where it left off and converges
// to the same canonical dataset an uninterrupted run produces.
type Checkpoint struct {
	Domain        string
	UniverseTotal int64
	Addresses     map[netip.Addr]bgp.ASN
	Serving       map[bgp.ASN]map[bgp.ASN]int64
	Ledger        map[netip.Prefix]*SubnetFault
	Counters      map[string]int64
	// DoneRanges are inclusive [start, end] runs of completed universe
	// indices (run-length encoding keeps full-coverage checkpoints tiny).
	DoneRanges [][2]int64
}

// Write serializes the checkpoint in a line-oriented format matching the
// dataset CSV family: `# key value` metadata, then tagged rows, then a
// `# end <rows>` footer. The footer is load-bearing: a file truncated by
// a crash (or a partially copied one) is missing it, and ReadCheckpoint
// rejects such files with ErrCheckpointCorrupt instead of silently
// resuming from a partial state.
func (ck *Checkpoint) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# checkpoint v1\n")
	fmt.Fprintf(bw, "# domain %s\n", ck.Domain)
	fmt.Fprintf(bw, "# universe %d\n", ck.UniverseTotal)
	keys := make([]string, 0, len(ck.Counters))
	for k := range ck.Counters {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	for _, k := range keys {
		fmt.Fprintf(bw, "# counter %s %d\n", k, ck.Counters[k])
	}
	addrs := make([]netip.Addr, 0, len(ck.Addresses))
	for a := range ck.Addresses {
		addrs = append(addrs, a)
	}
	sortAddrs(addrs)
	for _, a := range addrs {
		fmt.Fprintf(bw, "A %s,%d\n", a, uint32(ck.Addresses[a]))
	}
	clients := make([]bgp.ASN, 0, len(ck.Serving))
	for as := range ck.Serving {
		clients = append(clients, as)
	}
	slices.Sort(clients)
	for _, client := range clients {
		ops := ck.Serving[client]
		opList := make([]bgp.ASN, 0, len(ops))
		for op := range ops {
			opList = append(opList, op)
		}
		slices.Sort(opList)
		for _, op := range opList {
			fmt.Fprintf(bw, "S %d,%d,%d\n", uint32(client), uint32(op), ops[op])
		}
	}
	subnets := make([]netip.Prefix, 0, len(ck.Ledger))
	for p := range ck.Ledger {
		subnets = append(subnets, p)
	}
	slices.SortFunc(subnets, func(a, b netip.Prefix) int { return a.Addr().Compare(b.Addr()) })
	for _, p := range subnets {
		e := ck.Ledger[p]
		rec := 0
		if e.Recovered {
			rec = 1
		}
		fmt.Fprintf(bw, "L %s,%d,%d,%d,%d,%d,%d,%s,%d\n", p,
			e.Timeouts, e.ServFails, e.Refused, e.Truncated, e.Stale,
			e.Attempts, e.LastKind, rec)
	}
	for _, r := range ck.DoneRanges {
		fmt.Fprintf(bw, "D %d-%d\n", r[0], r[1])
	}
	rows := len(ck.Addresses) + len(ck.Ledger) + len(ck.DoneRanges)
	for _, ops := range ck.Serving {
		rows += len(ops)
	}
	fmt.Fprintf(bw, "# end %d\n", rows)
	return bw.Flush()
}

// WriteFile writes the checkpoint atomically and durably: temp file in
// the target's directory, fsync, rename, directory fsync. A crash at
// any instant — including kill -9 between syscalls — leaves either the
// previous checkpoint or the complete new one.
func (ck *Checkpoint) WriteFile(path string) error {
	return atomicio.WriteFile(path, ck.Write)
}

// ErrCheckpointCorrupt tags every checkpoint-integrity failure: a
// missing or mismatched `# end` footer (truncation), an unparseable
// row, or a bad header. Callers branch on it with errors.Is to
// quarantine the file and restart from scratch instead of resuming a
// partial state.
var ErrCheckpointCorrupt = errors.New("checkpoint corrupt")

// CorruptError is the typed error for a checkpoint that failed
// integrity checks. It matches ErrCheckpointCorrupt under errors.Is.
type CorruptError struct {
	// Path is the offending file ("" when parsed from a reader).
	Path string
	// Line is the 1-based line of the failure (0 for whole-file
	// problems such as a missing footer).
	Line int
	// Reason describes the failure.
	Reason string
}

// Error implements error.
func (e *CorruptError) Error() string {
	msg := "core: checkpoint corrupt"
	if e.Path != "" {
		msg += " " + e.Path
	}
	if e.Line > 0 {
		msg += fmt.Sprintf(" line %d", e.Line)
	}
	return msg + ": " + e.Reason
}

// Is reports target equivalence so errors.Is(err, ErrCheckpointCorrupt)
// matches any CorruptError.
func (e *CorruptError) Is(target error) bool { return target == ErrCheckpointCorrupt }

// ReadCheckpoint parses a checkpoint written by Write. Every integrity
// failure — bad header, unparseable row, missing or mismatched footer —
// comes back as a *CorruptError (matching ErrCheckpointCorrupt), never
// as a silently partial checkpoint.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	ck := &Checkpoint{
		Addresses: make(map[netip.Addr]bgp.ASN),
		Serving:   make(map[bgp.ASN]map[bgp.ASN]int64),
		Ledger:    make(map[netip.Prefix]*SubnetFault),
		Counters:  make(map[string]int64),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line, sawHeader, sawEnd := 0, false, false
	var rows, wantRows int64
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		bad := func(format string, args ...any) (*Checkpoint, error) {
			return nil, &CorruptError{Line: line, Reason: fmt.Sprintf(format, args...)}
		}
		if sawEnd {
			return bad("content after `# end` footer: %q", text)
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.Fields(strings.TrimPrefix(text, "#"))
			if len(fields) == 0 {
				continue
			}
			switch fields[0] {
			case "checkpoint":
				if len(fields) != 2 || fields[1] != "v1" {
					return bad("unsupported version %q", text)
				}
				sawHeader = true
			case "domain":
				if len(fields) == 2 {
					ck.Domain = fields[1]
				}
			case "universe":
				if len(fields) != 2 {
					return bad("want `# universe N`")
				}
				n, err := strconv.ParseInt(fields[1], 10, 64)
				if err != nil {
					return bad("universe: %v", err)
				}
				ck.UniverseTotal = n
			case "counter":
				if len(fields) != 3 {
					return bad("want `# counter name N`")
				}
				n, err := strconv.ParseInt(fields[2], 10, 64)
				if err != nil {
					return bad("counter %s: %v", fields[1], err)
				}
				ck.Counters[fields[1]] = n
			case "end":
				if len(fields) != 2 {
					return bad("want `# end N`")
				}
				n, err := strconv.ParseInt(fields[1], 10, 64)
				if err != nil {
					return bad("end: %v", err)
				}
				wantRows, sawEnd = n, true
			}
			continue
		}
		if !sawHeader {
			return bad("missing `# checkpoint v1` header")
		}
		rows++
		tag, rest, ok := strings.Cut(text, " ")
		if !ok {
			return bad("want `TAG payload`, got %q", text)
		}
		switch tag {
		case "A":
			parts := strings.Split(rest, ",")
			if len(parts) != 2 {
				return bad("want A addr,asn")
			}
			addr, err := netip.ParseAddr(parts[0])
			if err != nil {
				return bad("%v", err)
			}
			asn, err := strconv.ParseUint(parts[1], 10, 32)
			if err != nil {
				return bad("%v", err)
			}
			ck.Addresses[addr] = bgp.ASN(asn)
		case "S":
			parts := strings.Split(rest, ",")
			if len(parts) != 3 {
				return bad("want S client,operator,count")
			}
			nums := make([]int64, 3)
			for i, p := range parts {
				n, err := strconv.ParseInt(p, 10, 64)
				if err != nil {
					return bad("%v", err)
				}
				nums[i] = n
			}
			client, op := bgp.ASN(nums[0]), bgp.ASN(nums[1])
			if ck.Serving[client] == nil {
				ck.Serving[client] = make(map[bgp.ASN]int64)
			}
			ck.Serving[client][op] = nums[2]
		case "L":
			parts := strings.Split(rest, ",")
			if len(parts) != 9 {
				return bad("want 9 ledger fields, got %d", len(parts))
			}
			p, err := netip.ParsePrefix(parts[0])
			if err != nil {
				return bad("%v", err)
			}
			e := &SubnetFault{Subnet: p}
			for i, dst := range []*int32{&e.Timeouts, &e.ServFails, &e.Refused, &e.Truncated, &e.Stale, &e.Attempts} {
				n, err := strconv.ParseInt(parts[1+i], 10, 32)
				if err != nil {
					return bad("%v", err)
				}
				*dst = int32(n)
			}
			if e.LastKind, err = faults.ParseKind(parts[7]); err != nil {
				return bad("%v", err)
			}
			e.Recovered = parts[8] == "1"
			ck.Ledger[p] = e
		case "D":
			lo, hi, ok := strings.Cut(rest, "-")
			if !ok {
				return bad("want D start-end")
			}
			start, err := strconv.ParseInt(lo, 10, 64)
			if err != nil {
				return bad("%v", err)
			}
			end, err := strconv.ParseInt(hi, 10, 64)
			if err != nil {
				return bad("%v", err)
			}
			if start < 0 || end < start {
				return bad("range %d-%d invalid", start, end)
			}
			ck.DoneRanges = append(ck.DoneRanges, [2]int64{start, end})
		default:
			return bad("unknown tag %q", tag)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawHeader {
		return nil, &CorruptError{Reason: "not a checkpoint file (no `# checkpoint v1` header)"}
	}
	if !sawEnd {
		return nil, &CorruptError{Reason: fmt.Sprintf("missing `# end` footer after %d rows (truncated write?)", rows)}
	}
	if rows != wantRows {
		return nil, &CorruptError{Reason: fmt.Sprintf("footer declares %d rows, file has %d", wantRows, rows)}
	}
	return ck, nil
}

// LoadCheckpoint reads a checkpoint file. A missing file surfaces as
// os.ErrNotExist so resume-from-nothing can start fresh; an
// integrity failure surfaces as a *CorruptError carrying the path
// (errors.Is ErrCheckpointCorrupt) so callers can quarantine the file.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ck, err := ReadCheckpoint(f)
	var corrupt *CorruptError
	if errors.As(err, &corrupt) {
		c := *corrupt
		c.Path = path
		return nil, &c
	}
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint %s: %w", path, err)
	}
	return ck, nil
}
