package core

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"

	"github.com/relay-networks/privaterelay/internal/bgp"
)

// Dataset persistence: the paper publishes its collected ingress address
// datasets for other researchers. The format is a line-oriented CSV —
// `address,asn` rows preceded by `# key value` metadata comments — that
// diffing tools and spreadsheets both handle.

// Save serializes the dataset.
func (ds *Dataset) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# domain %s\n", ds.Domain)
	fmt.Fprintf(bw, "# queries %d\n", ds.Stats.QueriesSent)
	fmt.Fprintf(bw, "# skipped %d\n", ds.Stats.SubnetsSkipped)
	fmt.Fprintf(bw, "# timeouts %d\n", ds.Stats.Timeouts)
	// Stable order: sorted addresses.
	addrs := make([]netip.Addr, 0, len(ds.Addresses))
	for a := range ds.Addresses {
		addrs = append(addrs, a)
	}
	sortAddrs(addrs)
	for _, a := range addrs {
		fmt.Fprintf(bw, "%s,%d\n", a, uint32(ds.Addresses[a]))
	}
	return bw.Flush()
}

// ReadDataset parses a dataset written by Save. Serving statistics are
// not persisted (they are derivable only during the scan); the address
// set and metadata round-trip.
func ReadDataset(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	ds := &Dataset{
		Addresses: make(map[netip.Addr]bgp.ASN),
		Serving:   make(map[bgp.ASN]*ServingStats),
	}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.Fields(strings.TrimPrefix(text, "#"))
			if len(fields) != 2 {
				continue
			}
			switch fields[0] {
			case "domain":
				ds.Domain = fields[1]
			case "queries":
				ds.Stats.QueriesSent, _ = strconv.ParseInt(fields[1], 10, 64)
			case "skipped":
				ds.Stats.SubnetsSkipped, _ = strconv.ParseInt(fields[1], 10, 64)
			case "timeouts":
				ds.Stats.Timeouts, _ = strconv.ParseInt(fields[1], 10, 64)
			}
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("core: dataset line %d: want addr,asn", line)
		}
		addr, err := netip.ParseAddr(parts[0])
		if err != nil {
			return nil, fmt.Errorf("core: dataset line %d: %w", line, err)
		}
		asn, err := strconv.ParseUint(parts[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("core: dataset line %d: %w", line, err)
		}
		ds.Addresses[addr] = bgp.ASN(asn)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ds, nil
}
