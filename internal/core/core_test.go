package core

import (
	"bytes"
	"context"
	"net/netip"
	"strings"
	"sync"
	"testing"

	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/dnsserver"
	"github.com/relay-networks/privaterelay/internal/dnswire"
	"github.com/relay-networks/privaterelay/internal/netsim"
)

var (
	coreWorld *netsim.World
	coreOnce  sync.Once
)

func testWorld(t testing.TB) *netsim.World {
	t.Helper()
	coreOnce.Do(func() {
		coreWorld = netsim.NewWorld(netsim.Params{Seed: 6, Scale: 0.0008})
	})
	return coreWorld
}

func scanConfig(w *netsim.World, month bgp.Month, domain string) ScanConfig {
	srv := dnsserver.NewAuthServer(w, month, nil)
	return ScanConfig{
		Exchanger:    &dnsserver.MemTransport{Handler: srv, Source: netip.MustParseAddr("198.51.100.53")},
		Domain:       domain,
		Universe:     w.RoutedV4Prefixes(),
		Attribution:  w.Table,
		RespectScope: true,
		Concurrency:  8,
		Retries:      1,
	}
}

func TestScanDiscoversFullAprilFleet(t *testing.T) {
	w := testWorld(t)
	ds, err := Scan(context.Background(), scanConfig(w, netsim.MonthApr, dnsserver.MaskDomain))
	if err != nil {
		t.Fatal(err)
	}
	truth := w.FleetUnion(netsim.MonthApr, netsim.ProtoDefault, netsim.FamilyV4, 0)
	if len(ds.Addresses) != len(truth) {
		t.Fatalf("discovered %d addresses, fleet has %d", len(ds.Addresses), len(truth))
	}
	for addr, as := range ds.Addresses {
		wantAS, ok := truth[addr]
		if !ok {
			t.Fatalf("scanner invented address %v", addr)
		}
		if as != wantAS {
			t.Fatalf("address %v attributed to %v, want %v", addr, as, wantAS)
		}
	}
	// §4.1: 1586 = 349 Apple + 1237 AkamaiPR in April.
	counts := ds.OperatorCounts()
	if counts[netsim.ASApple] != 349 || counts[netsim.ASAkamaiPR] != 1237 {
		t.Fatalf("operator counts = %v, want 349/1237", counts)
	}
}

func TestScanScopeSkipReducesQueries(t *testing.T) {
	w := testWorld(t)
	ctx := context.Background()

	withSkip, err := Scan(ctx, scanConfig(w, netsim.MonthApr, dnsserver.MaskDomain))
	if err != nil {
		t.Fatal(err)
	}
	cfg := scanConfig(w, netsim.MonthApr, dnsserver.MaskDomain)
	cfg.RespectScope = false
	withoutSkip, err := Scan(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if withSkip.Stats.QueriesSent >= withoutSkip.Stats.QueriesSent {
		t.Fatalf("scope skip sent %d queries, naive sent %d — no saving",
			withSkip.Stats.QueriesSent, withoutSkip.Stats.QueriesSent)
	}
	if withSkip.Stats.SubnetsSkipped == 0 {
		t.Fatal("no subnets skipped despite short scopes")
	}
	// Both scans must discover the identical address set.
	if len(withSkip.Addresses) != len(withoutSkip.Addresses) {
		t.Fatalf("skip changed discovery: %d vs %d addresses",
			len(withSkip.Addresses), len(withoutSkip.Addresses))
	}
	// And identical serving /24 totals (the skip accounts covered scopes).
	tot := func(ds *Dataset) int64 {
		var n int64
		for _, st := range ds.Serving {
			n += st.TotalSubnets()
		}
		return n
	}
	if tot(withSkip) != tot(withoutSkip) {
		t.Fatalf("serving totals differ: %d vs %d", tot(withSkip), tot(withoutSkip))
	}
}

func TestScanServingMatchesTable2Structure(t *testing.T) {
	w := testWorld(t)
	ds, err := Scan(context.Background(), scanConfig(w, netsim.MonthApr, dnsserver.MaskDomain))
	if err != nil {
		t.Fatal(err)
	}
	var akOnly, apOnly, both int
	var akSub, apSub, bothSub, bothAppleSub int64
	for _, st := range ds.Serving {
		ak := st.SubnetsByOperator[netsim.ASAkamaiPR]
		ap := st.SubnetsByOperator[netsim.ASApple]
		switch {
		case ak > 0 && ap > 0:
			both++
			bothSub += ak + ap
			bothAppleSub += ap
		case ak > 0:
			akOnly++
			akSub += ak
		case ap > 0:
			apOnly++
			apSub += ap
		}
	}
	if akOnly == 0 || apOnly == 0 || both == 0 {
		t.Fatalf("missing serving groups: %d/%d/%d", akOnly, apOnly, both)
	}
	// Table 2 orderings.
	if !(akOnly > apOnly && apOnly > both) {
		t.Errorf("AS counts out of order: akamai-only=%d apple-only=%d both=%d", akOnly, apOnly, both)
	}
	if !(bothSub > akSub && akSub > apSub) {
		t.Errorf("subnet counts out of order: both=%d akamai=%d apple=%d", bothSub, akSub, apSub)
	}
	// Apple's subnet share inside "both" ASes ≈ 76 %.
	share := float64(bothAppleSub) / float64(bothSub) * 100
	if share < 70 || share > 82 {
		t.Errorf("Apple share in both-ASes = %.1f%%, want ≈76%%", share)
	}
}

func TestScanFallbackPlaneEvolution(t *testing.T) {
	w := testWorld(t)
	ctx := context.Background()
	feb, err := Scan(ctx, scanConfig(w, netsim.MonthFeb, dnsserver.MaskH2Domain))
	if err != nil {
		t.Fatal(err)
	}
	apr, err := Scan(ctx, scanConfig(w, netsim.MonthApr, dnsserver.MaskH2Domain))
	if err != nil {
		t.Fatal(err)
	}
	febCounts := feb.OperatorCounts()
	if febCounts[netsim.ASAkamaiPR] != 0 {
		t.Fatalf("February fallback found %d Akamai relays, want 0", febCounts[netsim.ASAkamaiPR])
	}
	if febCounts[netsim.ASApple] != 356 {
		t.Fatalf("February fallback Apple = %d, want 356", febCounts[netsim.ASApple])
	}
	aprCounts := apr.OperatorCounts()
	if aprCounts[netsim.ASApple] != 336 || aprCounts[netsim.ASAkamaiPR] != 1062 {
		t.Fatalf("April fallback = %v, want 336/1062", aprCounts)
	}
	// +293 % fallback growth (356 → 1398).
	growth := GrowthPercent(feb, apr)
	if growth < 280 || growth > 300 {
		t.Fatalf("fallback growth = %.0f%%, want ≈293%%", growth)
	}
}

func TestScanMonthlyGrowthDefaultPlane(t *testing.T) {
	w := testWorld(t)
	ctx := context.Background()
	jan, err := Scan(ctx, scanConfig(w, netsim.MonthJan, dnsserver.MaskDomain))
	if err != nil {
		t.Fatal(err)
	}
	apr, err := Scan(ctx, scanConfig(w, netsim.MonthApr, dnsserver.MaskDomain))
	if err != nil {
		t.Fatal(err)
	}
	// §4.1: QUIC relays grew 34 % (1188 → 1586).
	growth := GrowthPercent(jan, apr)
	if growth < 30 || growth > 38 {
		t.Fatalf("default-plane growth = %.1f%%, want ≈34%%", growth)
	}
	added, removed := Diff(jan, apr)
	if len(added) == 0 {
		t.Fatal("no added addresses between Jan and Apr")
	}
	if len(removed) == 0 {
		t.Fatal("no churn at all between Jan and Apr")
	}
	if len(removed) > len(jan.Addresses)/5 {
		t.Fatalf("churn too high: %d removed of %d", len(removed), len(jan.Addresses))
	}
}

func TestScanHandlesTimeouts(t *testing.T) {
	w := testWorld(t)
	cfg := scanConfig(w, netsim.MonthApr, dnsserver.MaskDomain)
	mt := cfg.Exchanger.(*dnsserver.MemTransport)
	mt.LossEvery = 7
	cfg.Retries = 0
	ds, err := Scan(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Stats.Timeouts == 0 {
		t.Fatal("no timeouts recorded despite injected loss")
	}
	// Retries recover most losses.
	cfg2 := scanConfig(w, netsim.MonthApr, dnsserver.MaskDomain)
	cfg2.Exchanger.(*dnsserver.MemTransport).LossEvery = 7
	cfg2.Retries = 3
	ds2, err := Scan(context.Background(), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if ds2.Stats.Timeouts >= ds.Stats.Timeouts {
		t.Fatalf("retries did not help: %d vs %d timeouts", ds2.Stats.Timeouts, ds.Stats.Timeouts)
	}
}

func TestScanContextCancellation(t *testing.T) {
	w := testWorld(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ds, err := Scan(ctx, scanConfig(w, netsim.MonthApr, dnsserver.MaskDomain))
	if err == nil {
		t.Fatal("cancelled scan returned no error")
	}
	if ds == nil {
		t.Fatal("cancelled scan should still return partial dataset")
	}
}

func TestScanRequiresExchanger(t *testing.T) {
	if _, err := Scan(context.Background(), ScanConfig{}); err != ErrNoExchanger {
		t.Fatalf("err = %v", err)
	}
}

func TestAddressesOfSorted(t *testing.T) {
	ds := &Dataset{Addresses: map[netip.Addr]bgp.ASN{
		netip.MustParseAddr("17.2.0.1"):  714,
		netip.MustParseAddr("17.0.0.1"):  714,
		netip.MustParseAddr("23.32.0.1"): 36183,
	}}
	got := ds.AddressesOf(714)
	if len(got) != 2 || !got[0].Less(got[1]) {
		t.Fatalf("AddressesOf = %v", got)
	}
}

func TestClassifier(t *testing.T) {
	w := testWorld(t)
	ds, err := Scan(context.Background(), scanConfig(w, netsim.MonthApr, dnsserver.MaskDomain))
	if err != nil {
		t.Fatal(err)
	}
	egressSubnets := map[netip.Prefix]bgp.ASN{
		netip.MustParsePrefix("172.224.224.0/27"): netsim.ASAkamaiPR,
		netip.MustParsePrefix("104.16.7.32/32"):   netsim.ASCloudflare,
	}
	cl := NewClassifier(ds, egressSubnets)

	client := w.ClientASes[0].Prefixes[0].Addr().Next()
	ingress := ds.AddressesOf(netsim.ASAkamaiPR)[0]

	class, as := cl.Classify(client, ingress)
	if class != ClassToIngress || as != netsim.ASAkamaiPR {
		t.Fatalf("Classify(client→ingress) = %v,%v", class, as)
	}
	class, as = cl.Classify(netip.MustParseAddr("172.224.224.5"), netip.MustParseAddr("93.184.216.34"))
	if class != ClassFromEgress || as != netsim.ASAkamaiPR {
		t.Fatalf("Classify(egress→server) = %v,%v", class, as)
	}
	class, _ = cl.Classify(client, netip.MustParseAddr("93.184.216.34"))
	if class != ClassUnrelated {
		t.Fatalf("ordinary flow classified as %v", class)
	}
	if !cl.IsIngress(ingress) || cl.IsIngress(client) {
		t.Fatal("IsIngress wrong")
	}
	if !cl.IsEgress(netip.MustParseAddr("104.16.7.32")) || cl.IsEgress(client) {
		t.Fatal("IsEgress wrong")
	}
	if ClassToIngress.String() != "to-ingress" || ClassUnrelated.String() != "unrelated" {
		t.Fatal("class strings")
	}
}

func TestClassifierAddIngressMerges(t *testing.T) {
	a := &Dataset{Addresses: map[netip.Addr]bgp.ASN{netip.MustParseAddr("17.0.0.1"): 714}}
	b := &Dataset{Addresses: map[netip.Addr]bgp.ASN{netip.MustParseAddr("23.32.0.1"): 36183}}
	cl := NewClassifier(a, nil)
	cl.AddIngress(b)
	if !cl.IsIngress(netip.MustParseAddr("23.32.0.1")) {
		t.Fatal("merged ingress not recognized")
	}
}

func BenchmarkScanSmallWorld(b *testing.B) {
	w := testWorld(b)
	cfg := scanConfig(w, netsim.MonthApr, dnsserver.MaskDomain)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Scan(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClassify(b *testing.B) {
	w := testWorld(b)
	ds, err := Scan(context.Background(), scanConfig(w, netsim.MonthApr, dnsserver.MaskDomain))
	if err != nil {
		b.Fatal(err)
	}
	cl := NewClassifier(ds, map[netip.Prefix]bgp.ASN{
		netip.MustParsePrefix("172.224.224.0/27"): netsim.ASAkamaiPR,
	})
	src := netip.MustParseAddr("198.51.100.1")
	dst := ds.AddressesOf(netsim.ASApple)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl.Classify(src, dst)
	}
}

func TestDatasetPersistenceRoundTrip(t *testing.T) {
	w := testWorld(t)
	ds, err := Scan(context.Background(), scanConfig(w, netsim.MonthApr, dnsserver.MaskDomain))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Domain != ds.Domain {
		t.Fatalf("domain = %q", got.Domain)
	}
	if got.Stats.QueriesSent != ds.Stats.QueriesSent {
		t.Fatalf("queries = %d, want %d", got.Stats.QueriesSent, ds.Stats.QueriesSent)
	}
	if len(got.Addresses) != len(ds.Addresses) {
		t.Fatalf("addresses = %d, want %d", len(got.Addresses), len(ds.Addresses))
	}
	for a, as := range ds.Addresses {
		if got.Addresses[a] != as {
			t.Fatalf("address %v attributed %v, want %v", a, got.Addresses[a], as)
		}
	}
	// Diffing across persisted datasets works like in-memory diffing.
	added, removed := Diff(got, ds)
	if len(added) != 0 || len(removed) != 0 {
		t.Fatalf("round-trip diff nonzero: +%d -%d", len(added), len(removed))
	}
}

func TestReadDatasetErrors(t *testing.T) {
	cases := []string{
		"not-an-addr,714\n",
		"17.0.0.1\n",
		"17.0.0.1,notanumber\n",
	}
	for i, in := range cases {
		if _, err := ReadDataset(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Blank lines and unknown comments are tolerated.
	ds, err := ReadDataset(strings.NewReader("# future-field x\n\n17.0.0.1,714\n"))
	if err != nil || len(ds.Addresses) != 1 {
		t.Fatalf("lenient parse: %v %d", err, len(ds.Addresses))
	}
}

func TestScanAAAAViaECSDoesNotEnumerate(t *testing.T) {
	// §3: "This ECS-based approach does not work for IPv6" — the server
	// answers AAAA with scope 0, keyed on the resolver, so a full-space
	// ECS sweep from one vantage sees only that vantage's record set.
	w := testWorld(t)
	cfg := scanConfig(w, netsim.MonthApr, dnsserver.MaskDomain)
	cfg.QType = dnswire.TypeAAAA
	ds, err := Scan(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Addresses) > 8 {
		t.Fatalf("AAAA ECS scan enumerated %d addresses; the paper shows ECS cannot enumerate IPv6", len(ds.Addresses))
	}
	if len(ds.Addresses) == 0 {
		t.Fatal("AAAA scan should still see the vantage's own answer set")
	}
}

func TestFlowReportIngressIsHighlyActiveDestination(t *testing.T) {
	w := testWorld(t)
	ds, err := Scan(context.Background(), scanConfig(w, netsim.MonthApr, dnsserver.MaskDomain))
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClassifier(ds, map[netip.Prefix]bgp.ASN{
		netip.MustParsePrefix("172.224.224.0/27"): netsim.ASAkamaiPR,
	})

	ingress := ds.AddressesOf(netsim.ASAkamaiPR)[0]
	client1 := w.ClientASes[0].Prefixes[0].Addr().Next()
	client2 := w.ClientASes[1].Prefixes[0].Addr().Next()
	web := netip.MustParseAddr("203.0.113.80")

	var flows []Flow
	// Many relay users hammer the same ingress; ordinary browsing spreads
	// over distinct destinations.
	for i := 0; i < 50; i++ {
		flows = append(flows, Flow{Src: client1, Dst: ingress, Bytes: 1000})
		flows = append(flows, Flow{Src: client2, Dst: ingress, Bytes: 500})
	}
	for i := 0; i < 30; i++ {
		dst := netip.AddrFrom4([4]byte{203, 0, 113, byte(i + 1)})
		flows = append(flows, Flow{Src: client1, Dst: dst, Bytes: 2000})
	}
	flows = append(flows, Flow{Src: netip.MustParseAddr("172.224.224.5"), Dst: web, Bytes: 300})

	report := cl.AnalyzeFlows(flows)
	if report.Flows != len(flows) {
		t.Fatalf("flows = %d", report.Flows)
	}
	if report.ToIngress != 100 || report.FromEgress != 1 || report.Unrelated != 30 {
		t.Fatalf("classes: %d/%d/%d", report.ToIngress, report.FromEgress, report.Unrelated)
	}
	if report.IngressRank != 1 {
		t.Fatalf("ingress rank = %d; the paper expects ingress to be a highly active destination", report.IngressRank)
	}
	if !report.TopDestinations[0].Ingress || report.TopDestinations[0].Flows != 100 {
		t.Fatalf("top destination: %+v", report.TopDestinations[0])
	}
	// 100 × (1000+500)/2 flows hide their service-level destination.
	wantHidden := float64(50*1000+50*500) / float64(report.Bytes)
	if got := report.HiddenByteShare(); got < wantHidden-0.01 || got > wantHidden+0.01 {
		t.Fatalf("hidden byte share = %.3f, want %.3f", got, wantHidden)
	}
	if report.OperatorFlows[netsim.ASAkamaiPR] != 101 {
		t.Fatalf("operator flows = %v", report.OperatorFlows)
	}
}

func TestFlowReportEmpty(t *testing.T) {
	cl := NewClassifier(nil, nil)
	report := cl.AnalyzeFlows(nil)
	if report.Flows != 0 || report.HiddenByteShare() != 0 || report.IngressRank != 0 {
		t.Fatalf("empty report: %+v", report)
	}
}
