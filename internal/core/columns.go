package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"os"

	"github.com/relay-networks/privaterelay/internal/atomicio"
	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/colstore"
)

// Columnar persistence. The canonical text (WriteCanonical) remains the
// interchange and golden format — published, diffed, human-auditable.
// The colstore binary sidecar riding next to it (<path>.col) is a
// checksummed cache: a pure function of the text bytes, fingerprinted
// against them, rebuilt whenever it is missing, stale or corrupt. Every
// read path that only needs the address/serving columns loads the
// sidecar instead of re-parsing text, which is where relayd's recompute
// cycles went.

// Columns converts the dataset into its sorted-columnar form.
func (ds *Dataset) Columns() (*colstore.Dataset, error) {
	cs := &colstore.Dataset{Domain: ds.Domain}
	for addr, as := range ds.Addresses {
		if addr.Is4() {
			cs.V4Addr = append(cs.V4Addr, colstore.V4Key(addr))
			cs.V4ASN = append(cs.V4ASN, as)
		} else {
			hi, lo := colstore.V6Key(addr)
			cs.V6Hi = append(cs.V6Hi, hi)
			cs.V6Lo = append(cs.V6Lo, lo)
			cs.V6ASN = append(cs.V6ASN, as)
		}
	}
	for client, st := range ds.Serving {
		for op, count := range st.SubnetsByOperator {
			cs.SrvClient = append(cs.SrvClient, client)
			cs.SrvOp = append(cs.SrvOp, op)
			cs.SrvCount = append(cs.SrvCount, count)
		}
	}
	if err := cs.Normalize(); err != nil {
		return nil, fmt.Errorf("core: columns of %s: %w", ds.Domain, err)
	}
	return cs, nil
}

// FromColumns rebuilds a map-backed Dataset from its columnar form.
// Scanner counters are not part of the columnar surface (matching
// ReadCanonical) and come back zero.
func FromColumns(cs *colstore.Dataset) *Dataset {
	ds := &Dataset{
		Domain:    cs.Domain,
		Addresses: make(map[netip.Addr]bgp.ASN, cs.Addrs()),
		Serving:   make(map[bgp.ASN]*ServingStats),
	}
	cs.ForEachAddr(func(addr netip.Addr, as bgp.ASN) bool {
		ds.Addresses[addr] = as
		return true
	})
	for i := range cs.SrvClient {
		client := cs.SrvClient[i]
		st, ok := ds.Serving[client]
		if !ok {
			st = &ServingStats{SubnetsByOperator: make(map[bgp.ASN]int64)}
			ds.Serving[client] = st
		}
		st.SubnetsByOperator[cs.SrvOp[i]] = cs.SrvCount[i]
	}
	return ds
}

// SidecarPath locates the binary sidecar of the canonical text at path.
func SidecarPath(path string) string { return path + ".col" }

// SaveCanonicalFile persists the dataset's canonical text at path and
// its binary sidecar at SidecarPath(path), both atomically, text first.
// A crash between the two writes leaves valid text with a missing or
// stale sidecar — exactly the states LoadColumns repairs — so the pair
// is as crash-safe as the text alone.
func SaveCanonicalFile(path string, ds *Dataset) error {
	var buf bytes.Buffer
	if err := ds.WriteCanonical(&buf); err != nil {
		return err
	}
	text := buf.Bytes()
	if err := atomicio.WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(text)
		return err
	}); err != nil {
		return err
	}
	cs, err := ds.Columns()
	if err != nil {
		return err
	}
	return writeSidecar(SidecarPath(path), cs, colstore.Fingerprint(text))
}

func writeSidecar(path string, cs *colstore.Dataset, src colstore.SourceInfo) error {
	enc := cs.AppendBinary(nil, src)
	return atomicio.WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(enc)
		return err
	})
}

// SidecarStatus reports how LoadColumns obtained its columns.
type SidecarStatus int

// LoadColumns outcomes.
const (
	// SidecarHit: the sidecar was valid and matched the text fingerprint.
	SidecarHit SidecarStatus = iota
	// SidecarMiss: no sidecar existed; built from text and written.
	SidecarMiss
	// SidecarStale: the sidecar was valid but fingerprinted different
	// text bytes; rebuilt from the current text and overwritten.
	SidecarStale
	// SidecarQuarantined: the sidecar failed integrity checks; renamed
	// *.corrupt for post-mortem, rebuilt from text and rewritten.
	SidecarQuarantined
)

// String names the status.
func (s SidecarStatus) String() string {
	switch s {
	case SidecarHit:
		return "hit"
	case SidecarMiss:
		return "miss"
	case SidecarStale:
		return "stale"
	case SidecarQuarantined:
		return "quarantined"
	default:
		return "unknown"
	}
}

// LoadColumns loads the columnar form of the canonical text at path,
// through the sidecar when it is valid for exactly these text bytes.
// Invalid sidecars never poison a load: corrupt ones are quarantined
// with a *.corrupt rename, stale ones overwritten, missing ones
// created — in every case the columns come from the golden text and the
// repaired sidecar is written back atomically. The text file itself
// failing to parse is the only fatal path.
func LoadColumns(path string) (*colstore.Dataset, SidecarStatus, error) {
	text, err := os.ReadFile(path)
	if err != nil {
		return nil, SidecarMiss, err
	}
	src := colstore.Fingerprint(text)
	scPath := SidecarPath(path)

	status := SidecarMiss
	raw, err := os.ReadFile(scPath)
	switch {
	case errors.Is(err, os.ErrNotExist):
		// fall through to rebuild
	case err != nil:
		return nil, SidecarMiss, err
	default:
		cs, got, decErr := colstore.DecodeBinary(raw)
		if decErr == nil && got == src {
			return cs, SidecarHit, nil
		}
		if decErr == nil {
			status = SidecarStale
		} else if errors.Is(decErr, colstore.ErrCorrupt) {
			status = SidecarQuarantined
			if renameErr := os.Rename(scPath, scPath+".corrupt"); renameErr != nil {
				return nil, status, fmt.Errorf("core: quarantining corrupt sidecar: %w", renameErr)
			}
		} else {
			return nil, SidecarMiss, decErr
		}
	}

	ds, err := ReadCanonical(bytes.NewReader(text))
	if err != nil {
		return nil, status, fmt.Errorf("core: canonical %s: %w", path, err)
	}
	cs, err := ds.Columns()
	if err != nil {
		return nil, status, err
	}
	if err := writeSidecar(scPath, cs, src); err != nil {
		return nil, status, err
	}
	return cs, status, nil
}
