package core

import (
	"bytes"
	"context"
	"maps"
	"sync"
	"testing"
	"time"

	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/dnsserver"
	"github.com/relay-networks/privaterelay/internal/faults"
	"github.com/relay-networks/privaterelay/internal/netsim"
)

// TestScanEquivalentAcrossConcurrency pins the determinism contract of
// the sharded pipeline: on a fixed lossless world, Addresses, Serving,
// SubnetsTotal and SubnetsSkipped must be identical whether the scan runs
// sequentially or on 64 workers. Only QueriesSent may differ (a racing
// worker can query a subnet its covering scope was about to suppress).
func TestScanEquivalentAcrossConcurrency(t *testing.T) {
	w := testWorld(t)
	ctx := context.Background()

	run := func(conc int) *Dataset {
		cfg := scanConfig(w, netsim.MonthApr, dnsserver.MaskDomain)
		cfg.Concurrency = conc
		ds, err := Scan(ctx, cfg)
		if err != nil {
			t.Fatalf("conc=%d: %v", conc, err)
		}
		return ds
	}

	base := run(1)
	if base.Stats.SubnetsSkipped == 0 {
		t.Fatal("baseline skipped nothing; the equivalence test would be vacuous")
	}
	for _, conc := range []int{8, 64} {
		ds := run(conc)
		if !maps.Equal(base.Addresses, ds.Addresses) {
			t.Errorf("conc=%d: address set differs from sequential baseline (%d vs %d)",
				conc, len(ds.Addresses), len(base.Addresses))
		}
		if ds.Stats.SubnetsTotal != base.Stats.SubnetsTotal {
			t.Errorf("conc=%d: SubnetsTotal = %d, want %d", conc, ds.Stats.SubnetsTotal, base.Stats.SubnetsTotal)
		}
		if ds.Stats.SubnetsSkipped != base.Stats.SubnetsSkipped {
			t.Errorf("conc=%d: SubnetsSkipped = %d, want %d", conc, ds.Stats.SubnetsSkipped, base.Stats.SubnetsSkipped)
		}
		if len(ds.Serving) != len(base.Serving) {
			t.Errorf("conc=%d: %d serving ASes, want %d", conc, len(ds.Serving), len(base.Serving))
			continue
		}
		for as, want := range base.Serving {
			got := ds.Serving[as]
			if got == nil || !maps.Equal(want.SubnetsByOperator, got.SubnetsByOperator) {
				t.Errorf("conc=%d: serving stats for AS%d differ: %v vs %v",
					conc, as, got, want)
			}
		}
	}
}

// TestScanServingCoversUniverse is the regression test for the skipped-
// subnet accounting: when every client /24 is answered, each one must be
// accounted to its client AS exactly once — whether it was queried
// directly or suppressed by a covering scope. The scope-respecting scan
// must also produce the very same per-AS breakdown as the naive
// full-iteration ablation.
func TestScanServingCoversUniverse(t *testing.T) {
	w := testWorld(t)
	ctx := context.Background()
	want := int64(w.ClientSlash24Count())

	perAS := make(map[bool]map[bgp.ASN]int64)
	for _, respect := range []bool{true, false} {
		cfg := scanConfig(w, netsim.MonthApr, dnsserver.MaskDomain)
		cfg.RespectScope = respect
		ds, err := Scan(ctx, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		byAS := make(map[bgp.ASN]int64)
		for as, st := range ds.Serving {
			total += st.TotalSubnets()
			byAS[as] = st.TotalSubnets()
		}
		if total != want {
			t.Errorf("respectScope=%v: serving accounts %d /24s, universe has %d client /24s",
				respect, total, want)
		}
		perAS[respect] = byAS
	}
	if !maps.Equal(perAS[true], perAS[false]) {
		t.Error("scope skip changed the per-AS serving breakdown vs the naive scan")
	}
}

// TestScanEquivalentAcrossConcurrencyFaulted extends the determinism
// contract through the fault plane: with the full resilience stack and
// a fault-injecting transport on a virtual clock, the canonical dataset
// (Addresses + Serving) at every worker count must still be
// byte-identical to the sequential fault-free baseline once all subnets
// recover — faults and concurrency change the path, never the dataset.
func TestScanEquivalentAcrossConcurrencyFaulted(t *testing.T) {
	w := testWorld(t)
	ctx := context.Background()
	want := faultFreeBaseline(t, w)

	profile, err := faults.Parse("mild,seed=11")
	if err != nil {
		t.Fatal(err)
	}
	for _, conc := range []int{1, 8, 64} {
		cfg, _, _ := resilientConfig(w, profile, conc)
		ds, err := Scan(ctx, cfg)
		if err != nil {
			t.Fatalf("conc=%d: %v", conc, err)
		}
		if ds.Stats.FailedSubnets != 0 {
			t.Fatalf("conc=%d: %d unrecovered subnets; equivalence needs full recovery", conc, ds.Stats.FailedSubnets)
		}
		if got := canonicalBytes(t, ds); !bytes.Equal(got, want) {
			t.Errorf("conc=%d: faulted canonical dataset differs from fault-free sequential baseline", conc)
		}
	}
}

// TestTokenBucketPacing checks the lock-free pacer: n permits at rate qps
// cannot complete faster than (n-1)/qps even when drawn concurrently, and
// a zero-rate bucket never blocks. Covered at tranche sizes 1 and 16:
// batching pre-books slots but still sleeps each one to its time, so the
// rate floor is identical.
func TestTokenBucketPacing(t *testing.T) {
	const qps, permits = 2000.0, 40
	ctx := context.Background()
	for _, batch := range []int{1, 16} {
		tb := newTokenBucket(qps, batch, faults.WallClock{})
		start := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var g pacerGrant
				for j := 0; j < permits/4; j++ {
					tb.wait(ctx, &g)
				}
				tb.release(&g)
			}()
		}
		wg.Wait()
		minElapsed := time.Duration(float64(permits-1) / qps * float64(time.Second))
		if elapsed := time.Since(start); elapsed < minElapsed {
			t.Fatalf("batch=%d: %d permits at %.0f qps finished in %v, want >= %v", batch, permits, qps, elapsed, minElapsed)
		}
	}

	unlimited := newTokenBucket(0, 1, faults.WallClock{})
	var g pacerGrant
	done := time.Now()
	for i := 0; i < 1000; i++ {
		unlimited.wait(ctx, &g)
	}
	if time.Since(done) > 100*time.Millisecond {
		t.Fatal("unlimited bucket blocked")
	}
}

// frozenClock never advances and never sleeps. With time pinned at the
// epoch the pacer can never take the now-past-next catch-up branch, so
// its next timestamp advances by exactly one interval per consumed slot
// — which is what makes exact grant conservation checkable.
type frozenClock struct{}

func (frozenClock) Now() time.Time                                   { return time.Unix(0, 0) }
func (frozenClock) Sleep(ctx context.Context, d time.Duration) error { return ctx.Err() }

// TestTokenBucketGrantConservation proves batched grants neither leak
// nor lose send slots: for every tranche size, after n waits spread over
// racing workers plus a release of each worker's leftover, the bucket's
// booked timeline equals exactly n intervals — total grants == total
// sends, under -race.
func TestTokenBucketGrantConservation(t *testing.T) {
	const qps = 1000.0
	const workers = 4
	// Deliberately not a multiple of the larger tranche sizes, so every
	// worker ends the run with leftover slots to hand back.
	const sendsPerWorker = 101
	ctx := context.Background()
	for _, batch := range []int{1, 16, 256} {
		tb := newTokenBucket(qps, batch, frozenClock{})
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var g pacerGrant
				for j := 0; j < sendsPerWorker; j++ {
					tb.wait(ctx, &g)
				}
				tb.release(&g)
			}()
		}
		wg.Wait()
		wantNext := int64(workers*sendsPerWorker) * tb.interval
		if got := tb.next.Load(); got != wantNext {
			t.Errorf("batch=%d: booked timeline = %d ns (%d slots), want %d ns (%d slots)",
				batch, got, got/tb.interval, wantNext, workers*sendsPerWorker)
		}
	}
}
