package core

import (
	"context"
	"maps"
	"sync"
	"testing"
	"time"

	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/dnsserver"
	"github.com/relay-networks/privaterelay/internal/faults"
	"github.com/relay-networks/privaterelay/internal/netsim"
)

// TestScanEquivalentAcrossConcurrency pins the determinism contract of
// the sharded pipeline: on a fixed lossless world, Addresses, Serving,
// SubnetsTotal and SubnetsSkipped must be identical whether the scan runs
// sequentially or on 64 workers. Only QueriesSent may differ (a racing
// worker can query a subnet its covering scope was about to suppress).
func TestScanEquivalentAcrossConcurrency(t *testing.T) {
	w := testWorld(t)
	ctx := context.Background()

	run := func(conc int) *Dataset {
		cfg := scanConfig(w, netsim.MonthApr, dnsserver.MaskDomain)
		cfg.Concurrency = conc
		ds, err := Scan(ctx, cfg)
		if err != nil {
			t.Fatalf("conc=%d: %v", conc, err)
		}
		return ds
	}

	base := run(1)
	if base.Stats.SubnetsSkipped == 0 {
		t.Fatal("baseline skipped nothing; the equivalence test would be vacuous")
	}
	for _, conc := range []int{8, 64} {
		ds := run(conc)
		if !maps.Equal(base.Addresses, ds.Addresses) {
			t.Errorf("conc=%d: address set differs from sequential baseline (%d vs %d)",
				conc, len(ds.Addresses), len(base.Addresses))
		}
		if ds.Stats.SubnetsTotal != base.Stats.SubnetsTotal {
			t.Errorf("conc=%d: SubnetsTotal = %d, want %d", conc, ds.Stats.SubnetsTotal, base.Stats.SubnetsTotal)
		}
		if ds.Stats.SubnetsSkipped != base.Stats.SubnetsSkipped {
			t.Errorf("conc=%d: SubnetsSkipped = %d, want %d", conc, ds.Stats.SubnetsSkipped, base.Stats.SubnetsSkipped)
		}
		if len(ds.Serving) != len(base.Serving) {
			t.Errorf("conc=%d: %d serving ASes, want %d", conc, len(ds.Serving), len(base.Serving))
			continue
		}
		for as, want := range base.Serving {
			got := ds.Serving[as]
			if got == nil || !maps.Equal(want.SubnetsByOperator, got.SubnetsByOperator) {
				t.Errorf("conc=%d: serving stats for AS%d differ: %v vs %v",
					conc, as, got, want)
			}
		}
	}
}

// TestScanServingCoversUniverse is the regression test for the skipped-
// subnet accounting: when every client /24 is answered, each one must be
// accounted to its client AS exactly once — whether it was queried
// directly or suppressed by a covering scope. The scope-respecting scan
// must also produce the very same per-AS breakdown as the naive
// full-iteration ablation.
func TestScanServingCoversUniverse(t *testing.T) {
	w := testWorld(t)
	ctx := context.Background()
	want := int64(w.ClientSlash24Count())

	perAS := make(map[bool]map[bgp.ASN]int64)
	for _, respect := range []bool{true, false} {
		cfg := scanConfig(w, netsim.MonthApr, dnsserver.MaskDomain)
		cfg.RespectScope = respect
		ds, err := Scan(ctx, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		byAS := make(map[bgp.ASN]int64)
		for as, st := range ds.Serving {
			total += st.TotalSubnets()
			byAS[as] = st.TotalSubnets()
		}
		if total != want {
			t.Errorf("respectScope=%v: serving accounts %d /24s, universe has %d client /24s",
				respect, total, want)
		}
		perAS[respect] = byAS
	}
	if !maps.Equal(perAS[true], perAS[false]) {
		t.Error("scope skip changed the per-AS serving breakdown vs the naive scan")
	}
}

// TestTokenBucketPacing checks the lock-free pacer: n permits at rate qps
// cannot complete faster than (n-1)/qps even when drawn concurrently, and
// a zero-rate bucket never blocks.
func TestTokenBucketPacing(t *testing.T) {
	const qps, permits = 2000.0, 40
	ctx := context.Background()
	tb := newTokenBucket(qps, faults.WallClock{})
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < permits/4; j++ {
				tb.wait(ctx)
			}
		}()
	}
	wg.Wait()
	minElapsed := time.Duration(float64(permits-1) / qps * float64(time.Second))
	if elapsed := time.Since(start); elapsed < minElapsed {
		t.Fatalf("%d permits at %.0f qps finished in %v, want >= %v", permits, qps, elapsed, minElapsed)
	}

	unlimited := newTokenBucket(0, faults.WallClock{})
	done := time.Now()
	for i := 0; i < 1000; i++ {
		unlimited.wait(ctx)
	}
	if time.Since(done) > 100*time.Millisecond {
		t.Fatal("unlimited bucket blocked")
	}
}
