package relayd

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
)

// The HTTP plane. Three operational endpoints plus read-only report
// serving:
//
//	/healthz  — liveness: 200 as long as the process serves HTTP.
//	/readyz   — readiness: 200 once the first cycle completed, 503
//	            before that and from BeginDrain onward (load balancers
//	            stop routing, the process finishes its work).
//	/metrics  — Prometheus text; every scrape refreshes the plane,
//	            pool and readiness series before rendering.
//	/reports/ — the pipeline's rendered reports (e.g. table1.txt).

// Handler builds the service's HTTP mux.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		switch {
		case s.Draining():
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
		case !s.Ready():
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "warming up: no completed cycle yet")
		default:
			fmt.Fprintln(w, "ready")
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		s.Collect()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.reg.WriteText(w); err != nil {
			// The response is already streaming; nothing to repair.
			return
		}
	})
	mux.HandleFunc("/reports/", func(w http.ResponseWriter, r *http.Request) {
		s.serveReport(w, r)
	})
	return mux
}

// serveReport serves files from <state>/reports read-only, refusing
// any path that escapes the directory.
func (s *Service) serveReport(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/reports/")
	if name == "" {
		s.listReports(w)
		return
	}
	clean := filepath.Clean(name)
	if clean != name || strings.Contains(clean, "..") || filepath.IsAbs(clean) {
		http.Error(w, "bad report path", http.StatusBadRequest)
		return
	}
	path := filepath.Join(s.cfg.Pipeline.StateDir, "reports", clean)
	b, err := os.ReadFile(path)
	if err != nil {
		http.Error(w, "no such report", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(b)
}

// listReports renders the available report names, sorted (ReadDir
// returns sorted entries).
func (s *Service) listReports(w http.ResponseWriter) {
	entries, err := os.ReadDir(filepath.Join(s.cfg.Pipeline.StateDir, "reports"))
	if err != nil {
		fmt.Fprintln(w, "no reports yet")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, e := range entries {
		if !e.IsDir() {
			fmt.Fprintln(w, e.Name())
		}
	}
}
