package relayd

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"os"
	"path/filepath"
	"time"

	"github.com/relay-networks/privaterelay/internal/analysis"
	"github.com/relay-networks/privaterelay/internal/atlas"
	"github.com/relay-networks/privaterelay/internal/atomicio"
	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/colstore"
	"github.com/relay-networks/privaterelay/internal/core"
	"github.com/relay-networks/privaterelay/internal/dnsserver"
	"github.com/relay-networks/privaterelay/internal/dnswire"
	"github.com/relay-networks/privaterelay/internal/faults"
	"github.com/relay-networks/privaterelay/internal/netsim"
	"github.com/relay-networks/privaterelay/internal/vclock"
)

// The measurement pipeline: what relayd actually runs each cycle. The
// campaign plan is the paper's longitudinal scan — every month, both
// service domains — plus the Atlas validation campaign, with the month
// cursor derived from which canonical datasets already exist on disk.
// That derivation is the crash-safety trick: there is no persisted
// "current month" counter to tear, so a process killed at any instant
// resumes by looking at its own durable outputs. Combined with atomic
// dataset writes and checkpointed scans, re-running after any kill
// converges on the same bytes.

// PipelineConfig parameterizes one relayd measurement pipeline.
type PipelineConfig struct {
	// Seed / Scale shape the simulated world (netsim.Params semantics).
	Seed  uint64
	Scale float64
	// StateDir is the durable root: datasets/, diffs/, reports/ hold the
	// canonical outputs; checkpoints/ holds resumable scratch.
	StateDir string
	// Clock drives scan pacing, backoff and cooldowns (default wall).
	Clock vclock.Clock
	// Registry receives campaign metrics (nil: metrics are dropped).
	Registry *Registry
	// Concurrency is the scan worker count (0: core.Scan's default).
	Concurrency int
	// FaultProfile, when non-empty, is a faults.Parse spec injected into
	// every DNS exchange; scans then run the full resilience stack.
	FaultProfile string
	// WrapExchanger, when set, wraps the scan exchanger outermost — after
	// any fault injector. The chaos test uses it to kill scans mid-flight.
	WrapExchanger func(ex dnsserver.Exchanger) dnsserver.Exchanger
	// Months and Domains define the campaign plan. Defaults: the paper's
	// four 2022 scan months over both service domains.
	Months  []bgp.Month
	Domains []string
	// CheckpointEvery is how many completed /24s trigger a scan snapshot
	// (default 64 — small worlds still checkpoint mid-scan).
	CheckpointEvery int64
	// AtlasProbes / AtlasClusters size the per-month Atlas validation
	// campaign; zero probes disables it.
	AtlasProbes   int
	AtlasClusters int
	// KeepDiffGenerations bounds the diff directory: when > 0, only the
	// newest K generation files are kept individually and everything
	// older is compacted into one squash diff (months[0] → the retired
	// frontier). 0 keeps every generation forever.
	KeepDiffGenerations int
}

// Pipeline owns the world and runs campaigns against the state dir.
type Pipeline struct {
	cfg     PipelineConfig
	world   *netsim.World
	profile *faults.Profile
}

// NewPipeline builds the world and validates the config.
func NewPipeline(cfg PipelineConfig) (*Pipeline, error) {
	if cfg.StateDir == "" {
		return nil, errors.New("relayd: StateDir is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = vclock.WallClock{}
	}
	if len(cfg.Months) == 0 {
		cfg.Months = netsim.ScanMonths
	}
	if len(cfg.Domains) == 0 {
		cfg.Domains = []string{dnsserver.MaskDomain, dnsserver.MaskH2Domain}
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 64
	}
	profile, err := faults.Parse(cfg.FaultProfile)
	if err != nil {
		return nil, fmt.Errorf("relayd: fault profile: %w", err)
	}
	return &Pipeline{
		cfg:     cfg,
		world:   netsim.NewWorld(netsim.Params{Seed: cfg.Seed, Scale: cfg.Scale}),
		profile: profile,
	}, nil
}

// Months returns the campaign plan's month sequence.
func (p *Pipeline) Months() []bgp.Month { return p.cfg.Months }

// DatasetPath locates domain's canonical dataset for month.
func (p *Pipeline) DatasetPath(domain string, month bgp.Month) string {
	return filepath.Join(p.cfg.StateDir, "datasets", domainSlug(domain), month.String()+".ds")
}

func (p *Pipeline) checkpointPath(domain string, month bgp.Month) string {
	return filepath.Join(p.cfg.StateDir, "checkpoints", domainSlug(domain), month.String()+".ckpt")
}

// HasDataset reports whether domain's month dataset is already durable.
func (p *Pipeline) HasDataset(domain string, month bgp.Month) bool {
	_, err := os.Stat(p.DatasetPath(domain, month))
	return err == nil
}

// LoadDataset reads a persisted canonical dataset back.
func (p *Pipeline) LoadDataset(domain string, month bgp.Month) (*core.Dataset, error) {
	f, err := os.Open(p.DatasetPath(domain, month))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.ReadCanonical(f)
}

// LoadColumns loads the columnar form of domain's month dataset through
// its binary sidecar (core.LoadColumns semantics: invalid sidecars are
// quarantined or rebuilt from the golden text, never trusted), and
// lands the cache outcome in the registry.
func (p *Pipeline) LoadColumns(domain string, month bgp.Month) (*colstore.Dataset, error) {
	cs, status, err := core.LoadColumns(p.DatasetPath(domain, month))
	if err != nil {
		return nil, err
	}
	if p.cfg.Registry != nil {
		p.cfg.Registry.Counter("relayd_sidecar_loads_total",
			"domain", domain, "status", status.String()).Add(1)
	}
	return cs, nil
}

// NextMonth returns the index of the first month whose campaign is
// incomplete (some domain lacks a dataset), or (len, true) when the
// whole plan is caught up. Deriving the cursor from durable outputs —
// instead of persisting a counter — is what makes month progression
// impossible to tear: a crash can lose at most in-flight scratch, never
// the position itself.
func (p *Pipeline) NextMonth() (idx int, caughtUp bool) {
	for i, m := range p.cfg.Months {
		for _, d := range p.cfg.Domains {
			if !p.HasDataset(d, m) {
				return i, false
			}
		}
	}
	return len(p.cfg.Months), true
}

// RunScanCampaign completes month: every domain without a durable
// dataset is scanned (resuming its checkpoint if one exists) and
// persisted atomically. Domains that already finished are skipped, so a
// kill between domains costs only the unfinished one.
func (p *Pipeline) RunScanCampaign(ctx context.Context, month bgp.Month) error {
	for _, domain := range p.cfg.Domains {
		if p.HasDataset(domain, month) {
			continue
		}
		if err := p.runScan(ctx, month, domain); err != nil {
			return err
		}
	}
	return nil
}

// runScan performs one checkpointed scan and persists the canonical
// dataset. A corrupt checkpoint is quarantined (renamed *.corrupt),
// counted, and the scan restarts from scratch — the corrupted file is
// kept for post-mortem, never trusted.
func (p *Pipeline) runScan(ctx context.Context, month bgp.Month, domain string) error {
	ckpt := p.checkpointPath(domain, month)
	if err := os.MkdirAll(filepath.Dir(ckpt), 0o755); err != nil {
		return err
	}
	ds, err := core.Scan(ctx, p.scanConfig(month, domain, ckpt))
	if errors.Is(err, core.ErrCheckpointCorrupt) {
		if p.cfg.Registry != nil {
			p.cfg.Registry.Counter("relayd_checkpoint_corrupt_total", "domain", domain).Add(1)
		}
		if renameErr := os.Rename(ckpt, ckpt+".corrupt"); renameErr != nil {
			return fmt.Errorf("relayd: quarantining corrupt checkpoint: %w", renameErr)
		}
		ds, err = core.Scan(ctx, p.scanConfig(month, domain, ckpt))
	}
	if err != nil {
		return err
	}
	p.recordScanStats(domain, ds.Stats)
	target := p.DatasetPath(domain, month)
	if err := os.MkdirAll(filepath.Dir(target), 0o755); err != nil {
		return err
	}
	// Text first, then the binary sidecar: a kill between the two leaves
	// valid text with a missing sidecar, which the next LoadColumns
	// rebuilds to the same bytes (the sidecar is a pure function of the
	// text), so the durable tree still converges bit-identically.
	if err := core.SaveCanonicalFile(target, ds); err != nil {
		return err
	}
	// The dataset is durable; the checkpoint is now dead scratch. Any
	// *.corrupt quarantine file stays behind for post-mortem.
	os.Remove(ckpt)
	return nil
}

// scanConfig assembles the per-scan config: MemTransport to the month's
// authoritative server, optional fault injection with the resilience
// stack, optional outermost wrapper, checkpointing on p's clock.
func (p *Pipeline) scanConfig(month bgp.Month, domain, ckpt string) core.ScanConfig {
	srv := dnsserver.NewAuthServer(p.world, month, nil)
	cfg := core.ScanConfig{
		Exchanger:    &dnsserver.MemTransport{Handler: srv, Source: netip.MustParseAddr("198.51.100.53")},
		Domain:       domain,
		Universe:     p.world.RoutedV4Prefixes(),
		Attribution:  p.world.Table,
		RespectScope: true,
		Concurrency:  p.cfg.Concurrency,
		Retries:      1,
		Clock:        p.cfg.Clock,
		Checkpoint:   &core.CheckpointConfig{Path: ckpt, Every: p.cfg.CheckpointEvery, Resume: true},
	}
	if p.profile != nil {
		attr := p.world.Table.Snapshot()
		origin := func(a netip.Addr) (bgp.ASN, bool) { return attr.Origin(a) }
		cfg.Exchanger = faults.NewInjector(cfg.Exchanger, p.profile, p.cfg.Clock, origin)
		cfg.Retries = 4
		cfg.MaxPasses = 10
		cfg.Backoff = core.BackoffConfig{Base: 50 * time.Millisecond}
		cfg.Breaker = core.BreakerConfig{Threshold: 16, Cooldown: 2 * time.Second}
	}
	if p.cfg.WrapExchanger != nil {
		cfg.Exchanger = p.cfg.WrapExchanger(cfg.Exchanger)
	}
	return cfg
}

// recordScanStats lands one finished scan's counters in the registry:
// the exchange rate, the fault mix by kind, breaker trips and the
// retry/resume economy.
func (p *Pipeline) recordScanStats(domain string, st core.ScanStats) {
	reg := p.cfg.Registry
	if reg == nil {
		return
	}
	reg.Counter("relayd_scan_queries_total", "domain", domain).Add(st.QueriesSent)
	reg.Counter("relayd_scan_retries_total", "domain", domain).Add(st.Retries)
	reg.Counter("relayd_scan_deferrals_total", "domain", domain).Add(st.Deferrals)
	reg.Counter("relayd_scan_breaker_trips_total", "domain", domain).Add(st.BreakerTrips)
	reg.Counter("relayd_scan_resumed_subnets_total", "domain", domain).Add(st.ResumedSubnets)
	for _, mix := range []struct {
		kind string
		n    int64
	}{
		{faults.KindTimeout.String(), st.TimeoutAttempts},
		{faults.KindServFail.String(), st.ServFailAttempts},
		{faults.KindRefused.String(), st.RefusedAttempts},
		{faults.KindTruncate.String(), st.TruncatedAttempts},
		{faults.KindStale.String(), st.StaleAttempts},
	} {
		reg.Counter("relayd_scan_faults_total", "domain", domain, "kind", mix.kind).Add(mix.n)
	}
	rate := 0.0
	if secs := st.Elapsed.Seconds(); secs > 0 {
		rate = float64(st.QueriesSent) / secs
	}
	reg.Gauge("relayd_scan_exchange_rate", "domain", domain).Set(rate)
}

// EnsureDiffs materializes every generation up to and including gen
// (gen N is months[N-1] → months[N] of the primary domain). Existing
// valid generations are left untouched; corrupt ones are quarantined
// with a *.corrupt rename and recomputed from the canonical datasets —
// through the columnar sidecars and the streaming merge, which
// reproduces the map-era bytes exactly. Generations already retired
// into the squash diff are skipped, and retention compaction (if
// configured) runs at the end of each pass.
func (p *Pipeline) EnsureDiffs(gen int) error {
	for _, domain := range p.cfg.Domains {
		floor, err := p.squashCovers(domain)
		if err != nil {
			return err
		}
		for g := floor + 1; g <= gen; g++ {
			_, err := LoadDiffFile(p.cfg.StateDir, domain, g)
			if err == nil {
				continue
			}
			if errors.Is(err, core.ErrCheckpointCorrupt) {
				path := diffPath(p.cfg.StateDir, domain, g)
				if p.cfg.Registry != nil {
					p.cfg.Registry.Counter("relayd_diff_corrupt_total", "domain", domain).Add(1)
				}
				if renameErr := os.Rename(path, path+".corrupt"); renameErr != nil {
					return fmt.Errorf("relayd: quarantining corrupt diff: %w", renameErr)
				}
			} else if !errors.Is(err, os.ErrNotExist) {
				return err
			}
			d, err := p.computeDiffColumns(domain, g)
			if err != nil {
				return err
			}
			if err := WriteDiffFile(p.cfg.StateDir, d); err != nil {
				return err
			}
			if p.cfg.Registry != nil {
				p.cfg.Registry.Counter("relayd_diff_generations_total", "domain", domain).Add(1)
			}
		}
		if err := p.CompactDiffs(domain, gen); err != nil {
			return err
		}
	}
	return nil
}

// computeDiffColumns materializes generation g of domain's diff
// sequence from the columnar datasets (sidecar-cached, streaming
// two-pointer merge).
func (p *Pipeline) computeDiffColumns(domain string, g int) (*DatasetDiff, error) {
	from, to := p.cfg.Months[g-1], p.cfg.Months[g]
	a, err := p.LoadColumns(domain, from)
	if err != nil {
		return nil, err
	}
	b, err := p.LoadColumns(domain, to)
	if err != nil {
		return nil, err
	}
	return ComputeDiffColumns(g, from, to, a, b), nil
}

// squashCovers reports how many leading generations domain's squash
// diff has retired (0 when retention never compacted). A corrupt squash
// is quarantined *.corrupt and treated as absent: every covered
// generation is recomputable from the retained canonical datasets, so
// the next compaction pass rebuilds the squash byte-identically.
func (p *Pipeline) squashCovers(domain string) (int, error) {
	sq, err := LoadSquashFile(p.cfg.StateDir, domain)
	switch {
	case err == nil:
		return sq.Covers, nil
	case errors.Is(err, os.ErrNotExist):
		return 0, nil
	case errors.Is(err, core.ErrCheckpointCorrupt):
		path := squashPath(p.cfg.StateDir, domain)
		if p.cfg.Registry != nil {
			p.cfg.Registry.Counter("relayd_diff_corrupt_total", "domain", domain).Add(1)
		}
		if renameErr := os.Rename(path, path+".corrupt"); renameErr != nil {
			return 0, fmt.Errorf("relayd: quarantining corrupt squash: %w", renameErr)
		}
		return 0, nil
	default:
		return 0, err
	}
}

// CompactDiffs enforces the retention policy for domain at diff
// frontier gen: with KeepDiffGenerations = K > 0, generations older
// than gen-K are retired into the squash diff (one accumulated
// months[0] → months[gen-K] transition, computed directly from the
// canonical datasets) and their files deleted. The order is what makes
// a kill at any instant safe: the squash is written atomically first,
// and only then are covered files removed — a crash in between leaves
// redundant generation files that the next pass deletes, never a gap.
// Idempotent and convergent: re-running after any kill ends in the same
// durable tree.
func (p *Pipeline) CompactDiffs(domain string, gen int) error {
	keep := p.cfg.KeepDiffGenerations
	if keep <= 0 {
		return nil
	}
	covers, err := p.squashCovers(domain)
	if err != nil {
		return err
	}
	if target := gen - keep; target > covers {
		from, to := p.cfg.Months[0], p.cfg.Months[target]
		a, err := p.LoadColumns(domain, from)
		if err != nil {
			return err
		}
		b, err := p.LoadColumns(domain, to)
		if err != nil {
			return err
		}
		d := ComputeDiffColumns(target, from, to, a, b)
		d.Covers = target
		if err := WriteSquashFile(p.cfg.StateDir, d); err != nil {
			return err
		}
		covers = target
		if p.cfg.Registry != nil {
			p.cfg.Registry.Counter("relayd_diff_compactions_total", "domain", domain).Add(1)
		}
	}
	for g := 1; g <= covers; g++ {
		path := diffPath(p.cfg.StateDir, domain, g)
		err := os.Remove(path)
		if errors.Is(err, os.ErrNotExist) {
			continue
		}
		if err != nil {
			return err
		}
		if p.cfg.Registry != nil {
			p.cfg.Registry.Counter("relayd_diff_retired_total", "domain", domain).Add(1)
		}
	}
	return nil
}

// WriteReport renders Table 1 over every completed month into
// reports/table1.txt. The report is a pure function of the durable
// datasets, so rewriting it each cycle is idempotent.
func (p *Pipeline) WriteReport() error {
	var months []bgp.Month
	def := map[bgp.Month]*colstore.Dataset{}
	fb := map[bgp.Month]*colstore.Dataset{}
	for _, m := range p.cfg.Months {
		complete := true
		for _, d := range p.cfg.Domains {
			if !p.HasDataset(d, m) {
				complete = false
				break
			}
		}
		if !complete {
			break
		}
		cs, err := p.LoadColumns(p.cfg.Domains[0], m)
		if err != nil {
			return err
		}
		def[m] = cs
		if len(p.cfg.Domains) > 1 {
			if fb[m], err = p.LoadColumns(p.cfg.Domains[1], m); err != nil {
				return err
			}
		}
		months = append(months, m)
	}
	if len(months) == 0 {
		return nil
	}
	rows := analysis.Table1Columns(months, def, fb)
	path := filepath.Join(p.cfg.StateDir, "reports", "table1.txt")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return atomicio.WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, analysis.RenderTable1(rows))
		return err
	})
}

// RunAtlas runs the month's Atlas A-record validation campaign and
// lands its completeness buckets in the registry. The campaign is a
// survey: its value is the metrics, and only a hard campaign error
// (or cancellation) fails it.
func (p *Pipeline) RunAtlas(ctx context.Context, month bgp.Month) error {
	if p.cfg.AtlasProbes <= 0 {
		return nil
	}
	popCfg := atlas.Config{
		Seed: p.cfg.Seed, N: p.cfg.AtlasProbes, SubnetClusters: p.cfg.AtlasClusters, Phase: 1,
	}
	if p.profile != nil {
		attr := p.world.Table.Snapshot()
		origin := func(a netip.Addr) (bgp.ASN, bool) { return attr.Origin(a) }
		popCfg.WrapTransport = func(ex dnsserver.Exchanger) dnsserver.Exchanger {
			return faults.NewInjector(ex, p.profile, p.cfg.Clock, origin)
		}
	}
	pop := atlas.NewPopulation(p.world, month, popCfg)
	res, err := atlas.Campaign{Domain: p.cfg.Domains[0], Type: dnswire.TypeA}.Run(ctx, pop)
	if err != nil {
		return err
	}
	if reg := p.cfg.Registry; reg != nil {
		c := atlas.Summarize(res)
		reg.Counter("relayd_atlas_probes_total", "outcome", "answered").Add(int64(c.Answered))
		reg.Counter("relayd_atlas_probes_total", "outcome", "timeout").Add(int64(c.TimedOut))
		reg.Counter("relayd_atlas_probes_total", "outcome", "error").Add(int64(c.Errored))
	}
	return nil
}
