package relayd

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/relay-networks/privaterelay/internal/iputil"
	"github.com/relay-networks/privaterelay/internal/vclock"
)

// The campaign supervisor. Each recurring unit of work relayd runs — a
// monthly scan, an Atlas campaign, the diff pass — sits behind one
// Supervisor that owns its failure policy: bounded retries with
// decorrelated-jitter backoff, a circuit breaker that trips after a
// run of consecutive failures and cools down before probing again, a
// per-attempt deadline budget, and a quarantine terminal state for
// campaigns that keep failing after the breaker has given them every
// chance. The state machine is deliberately small and fully
// observable: every transition lands in the metrics registry.

// State is the supervisor's position in its lifecycle.
type State uint8

const (
	// StateIdle: healthy, ready to run on the next tick.
	StateIdle State = iota
	// StateRunning: a campaign attempt is in flight.
	StateRunning
	// StateBackoff: the last attempt failed; waiting out jittered backoff.
	StateBackoff
	// StateBreakerOpen: too many consecutive failures; refusing to run
	// until the cooldown elapses, then admitting a single probe.
	StateBreakerOpen
	// StateQuarantined: the campaign exhausted its breaker escalations
	// and is parked until an operator (or test) unquarantines it.
	StateQuarantined
)

// stateCount pins the enum size for exhaustiveness checks.
const stateCount = int(StateQuarantined) + 1

// String names the state for logs and metric labels.
func (s State) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateRunning:
		return "running"
	case StateBackoff:
		return "backoff"
	case StateBreakerOpen:
		return "breaker_open"
	case StateQuarantined:
		return "quarantined"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// ErrQuarantined is returned by Tick while the campaign is parked.
var ErrQuarantined = errors.New("campaign quarantined")

// ErrBreakerOpen is returned by Tick while the breaker cooldown has not
// yet elapsed.
var ErrBreakerOpen = errors.New("campaign breaker open")

// SupervisorConfig bounds one campaign's failure policy. Zero values
// pick the documented defaults.
type SupervisorConfig struct {
	// Name labels this campaign's metric series.
	Name string
	// Attempts is the number of tries one Tick makes before reporting
	// failure (default 3).
	Attempts int
	// BackoffBase seeds the decorrelated-jitter backoff (default 50ms).
	BackoffBase time.Duration
	// BackoffCap clamps any single backoff sleep (default 30× base).
	BackoffCap time.Duration
	// Budget caps one attempt's runtime via context deadline
	// (default: no per-attempt deadline).
	Budget time.Duration
	// BreakerThreshold is the count of consecutive failed Ticks that
	// opens the breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker refuses work before
	// admitting a probe (default 1m).
	BreakerCooldown time.Duration
	// QuarantineAfter is the count of breaker openings that parks the
	// campaign for good (default 3).
	QuarantineAfter int
	// Seed decorrelates this campaign's jitter from its siblings.
	Seed uint64
}

func (c SupervisorConfig) withDefaults() SupervisorConfig {
	if c.Attempts <= 0 {
		c.Attempts = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 30 * c.BackoffBase
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Minute
	}
	if c.QuarantineAfter <= 0 {
		c.QuarantineAfter = 3
	}
	return c
}

// Supervisor runs one campaign under the configured failure policy.
// It is driven synchronously by the service loop: not safe for
// concurrent Ticks.
type Supervisor struct {
	cfg   SupervisorConfig
	clock vclock.Clock
	reg   *Registry

	state        State
	consecFails  int       // failed Ticks since last success
	breakerTrips int       // times the breaker has opened
	breakerUntil time.Time // cooldown expiry while open
	jitterState  uint64    // decorrelated jitter accumulator
	attempt      uint64    // lifetime attempt counter (jitter stream position)
}

// NewSupervisor builds a supervisor on the given clock, reporting into
// reg (which may be nil for tests that only care about behavior).
func NewSupervisor(cfg SupervisorConfig, clock vclock.Clock, reg *Registry) *Supervisor {
	if clock == nil {
		clock = vclock.WallClock{}
	}
	s := &Supervisor{cfg: cfg.withDefaults(), clock: clock, reg: reg}
	if reg != nil {
		// Materialize the campaign's series up front so /metrics shows
		// the full surface (zeros included) from the first scrape.
		reg.Gauge("relayd_supervisor_state", "campaign", s.cfg.Name).Set(float64(StateIdle))
		reg.Counter("relayd_campaign_attempts_total", "campaign", s.cfg.Name)
		reg.Counter("relayd_campaign_success_total", "campaign", s.cfg.Name)
		reg.Counter("relayd_campaign_failures_total", "campaign", s.cfg.Name)
		reg.Counter("relayd_breaker_open_total", "campaign", s.cfg.Name)
		reg.Counter("relayd_quarantine_total", "campaign", s.cfg.Name)
	}
	return s
}

// State reports the current lifecycle state.
func (s *Supervisor) State() State { return s.state }

// setState transitions and counts the edge.
func (s *Supervisor) setState(next State) {
	if next == s.state {
		return
	}
	if s.reg != nil {
		s.reg.Counter("relayd_supervisor_transitions_total",
			"campaign", s.cfg.Name, "to", next.String()).Add(1)
	}
	s.state = next
	if s.reg != nil {
		s.reg.Gauge("relayd_supervisor_state",
			"campaign", s.cfg.Name).Set(float64(next))
	}
}

// backoffDelay yields the next decorrelated-jitter delay: each delay is
// drawn uniformly from [base, 3×previous], clamped to the cap. The
// jitter stream is a pure function of (seed, lifetime attempt number),
// so a supervisor rebuilt after a crash at the same attempt count
// sleeps the same schedule — determinism the chaos test leans on.
func (s *Supervisor) backoffDelay() time.Duration {
	base := s.cfg.BackoffBase
	prev := s.jitterState
	if prev == 0 {
		prev = uint64(base)
	}
	span := 3*prev - uint64(base)
	r := iputil.Mix(s.cfg.Seed, s.attempt)
	d := time.Duration(uint64(base) + r%span)
	if d > s.cfg.BackoffCap {
		d = s.cfg.BackoffCap
	}
	s.jitterState = uint64(d)
	return d
}

// Tick runs one supervised campaign pass: up to Attempts tries of run,
// sleeping jittered backoff between failures, each attempt bounded by
// Budget. Returns nil on success. Context cancellation is not a
// campaign failure — a drained or killed service must not push its
// campaigns toward quarantine — so cancellation returns ctx.Err()
// without touching failure counters.
func (s *Supervisor) Tick(ctx context.Context, run func(context.Context) error) error {
	switch s.state {
	case StateQuarantined:
		return fmt.Errorf("%s: %w", s.cfg.Name, ErrQuarantined)
	case StateBreakerOpen:
		if s.clock.Now().Before(s.breakerUntil) {
			return fmt.Errorf("%s: %w", s.cfg.Name, ErrBreakerOpen)
		}
		// Cooldown elapsed: fall through and admit this Tick as the
		// half-open probe. Success closes the breaker, failure below
		// re-opens or quarantines.
	case StateIdle, StateRunning, StateBackoff:
	}

	var lastErr error
	for attempt := 0; attempt < s.cfg.Attempts; attempt++ {
		if attempt > 0 {
			s.setState(StateBackoff)
			if err := s.clock.Sleep(ctx, s.backoffDelay()); err != nil {
				s.setState(StateIdle)
				return err
			}
		}
		s.attempt++
		s.setState(StateRunning)
		if s.reg != nil {
			s.reg.Counter("relayd_campaign_attempts_total", "campaign", s.cfg.Name).Add(1)
		}
		err := s.runOnce(ctx, run)
		if err == nil {
			s.consecFails = 0
			s.setState(StateIdle)
			if s.reg != nil {
				s.reg.Counter("relayd_campaign_success_total", "campaign", s.cfg.Name).Add(1)
			}
			return nil
		}
		if ctx.Err() != nil {
			// The service is shutting down, not the campaign failing.
			s.setState(StateIdle)
			return ctx.Err()
		}
		lastErr = err
		if s.reg != nil {
			s.reg.Counter("relayd_campaign_failures_total", "campaign", s.cfg.Name).Add(1)
		}
	}

	s.consecFails++
	if s.consecFails >= s.cfg.BreakerThreshold {
		s.consecFails = 0
		s.breakerTrips++
		if s.reg != nil {
			s.reg.Counter("relayd_breaker_open_total", "campaign", s.cfg.Name).Add(1)
		}
		if s.breakerTrips >= s.cfg.QuarantineAfter {
			s.setState(StateQuarantined)
			if s.reg != nil {
				s.reg.Counter("relayd_quarantine_total", "campaign", s.cfg.Name).Add(1)
			}
			return fmt.Errorf("%s: %w after %d breaker trips: %v",
				s.cfg.Name, ErrQuarantined, s.breakerTrips, lastErr)
		}
		s.breakerUntil = s.clock.Now().Add(s.cfg.BreakerCooldown)
		s.setState(StateBreakerOpen)
		return fmt.Errorf("%s: %w: %v", s.cfg.Name, ErrBreakerOpen, lastErr)
	}
	s.setState(StateIdle)
	return fmt.Errorf("%s: attempts exhausted: %w", s.cfg.Name, lastErr)
}

// runOnce executes one attempt under the Budget deadline.
func (s *Supervisor) runOnce(ctx context.Context, run func(context.Context) error) error {
	if s.cfg.Budget > 0 {
		var cancel context.CancelFunc
		// The budget is virtual-clock-aware only insofar as campaigns
		// check their own deadlines; context.WithTimeout counts wall
		// time, which bounds runaway attempts on a live service while
		// costing nothing under a virtual clock in tests.
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Budget)
		defer cancel()
	}
	return run(ctx)
}

// Unquarantine resets a parked campaign to a clean slate: an operator
// decision (or a test) explicitly forgiving the history.
func (s *Supervisor) Unquarantine() {
	if s.state != StateQuarantined {
		return
	}
	s.consecFails = 0
	s.breakerTrips = 0
	s.setState(StateIdle)
}
