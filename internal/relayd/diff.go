package relayd

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"strings"

	"github.com/relay-networks/privaterelay/internal/atomicio"
	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/colstore"
	"github.com/relay-networks/privaterelay/internal/core"
)

// Incremental diff datasets. Each month-over-month transition of the
// ingress population becomes one generation file recording which
// ingresses appeared, which vanished, and which stayed but moved AS.
// Generation numbers are derived, not counted: gen N is the transition
// months[N-1] → months[N], so a crash can never fork the sequence —
// rebuilding from the same canonical datasets always reproduces the
// same bytes, which is exactly what the chaos test asserts.

// DiffEntry is one address-level change between two dataset
// generations.
type DiffEntry struct {
	Addr netip.Addr
	// OldASN is set for vanished and moved entries.
	OldASN bgp.ASN
	// NewASN is set for appeared and moved entries.
	NewASN bgp.ASN
}

// DatasetDiff is the month-over-month change set between two canonical
// datasets of the same domain.
type DatasetDiff struct {
	Domain   string
	Gen      int
	From, To bgp.Month
	// Covers, when non-zero, marks this as a squash diff: it represents
	// the accumulated transition months[0] → months[Covers] and replaces
	// the retired generation files 1..Covers (retention compaction).
	Covers   int
	Appeared []DiffEntry // in To, not in From
	Vanished []DiffEntry // in From, not in To
	MovedAS  []DiffEntry // in both, origin AS changed
}

// ComputeDiff builds the change set from two datasets. Output slices
// are sorted by address, so the result is a pure function of the
// inputs regardless of map iteration order.
func ComputeDiff(gen int, from, to bgp.Month, a, b *core.Dataset) *DatasetDiff {
	d := &DatasetDiff{Domain: b.Domain, Gen: gen, From: from, To: to}
	for addr, asn := range b.Addresses {
		old, ok := a.Addresses[addr]
		switch {
		case !ok:
			d.Appeared = append(d.Appeared, DiffEntry{Addr: addr, NewASN: asn})
		case old != asn:
			d.MovedAS = append(d.MovedAS, DiffEntry{Addr: addr, OldASN: old, NewASN: asn})
		}
	}
	for addr, asn := range a.Addresses {
		if _, ok := b.Addresses[addr]; !ok {
			d.Vanished = append(d.Vanished, DiffEntry{Addr: addr, OldASN: asn})
		}
	}
	for _, s := range []*[]DiffEntry{&d.Appeared, &d.Vanished, &d.MovedAS} {
		slices.SortFunc(*s, func(x, y DiffEntry) int { return x.Addr.Compare(y.Addr) })
	}
	return d
}

// ComputeDiffColumns builds the same DatasetDiff as ComputeDiff, from
// sorted columns instead of maps: a single streaming two-pointer merge
// per family, no hashing, no post-sort — the merge emits changes
// already in canonical address order, so the per-kind slices come out
// sorted. Its output is byte-identical to ComputeDiff over the
// equivalent map datasets (the equivalence tests pin this).
func ComputeDiffColumns(gen int, from, to bgp.Month, a, b *colstore.Dataset) *DatasetDiff {
	d := &DatasetDiff{Domain: b.Domain, Gen: gen, From: from, To: to}
	colstore.Diff(a, b, func(c colstore.Change) bool {
		switch c.Kind {
		case colstore.Appeared:
			d.Appeared = append(d.Appeared, DiffEntry{Addr: c.Addr, NewASN: c.NewAS})
		case colstore.Vanished:
			d.Vanished = append(d.Vanished, DiffEntry{Addr: c.Addr, OldASN: c.OldAS})
		case colstore.MovedAS:
			d.MovedAS = append(d.MovedAS, DiffEntry{Addr: c.Addr, OldASN: c.OldAS, NewASN: c.NewAS})
		}
		return true
	})
	return d
}

// Write renders the diff in its canonical on-disk form:
//
//	# diff v1
//	# gen 000002
//	# domain mask.icloud.com.
//	# from 2022-01
//	# to 2022-02
//	+ addr,asn
//	- addr,asn
//	~ addr,oldasn,newasn
//	# end 3
//
// Squash diffs (retention compaction) additionally carry `# covers N`
// after `# to`, declaring they replace generation files 1..N.
//
// Rows sort within each section by address; the footer pins the row
// count so truncated writes are detectable, same as checkpoints.
func (d *DatasetDiff) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# diff v1\n# gen %06d\n# domain %s\n# from %s\n# to %s\n",
		d.Gen, d.Domain, d.From, d.To)
	if d.Covers > 0 {
		fmt.Fprintf(bw, "# covers %d\n", d.Covers)
	}
	for _, e := range d.Appeared {
		fmt.Fprintf(bw, "+ %s,%d\n", e.Addr, e.NewASN)
	}
	for _, e := range d.Vanished {
		fmt.Fprintf(bw, "- %s,%d\n", e.Addr, e.OldASN)
	}
	for _, e := range d.MovedAS {
		fmt.Fprintf(bw, "~ %s,%d,%d\n", e.Addr, e.OldASN, e.NewASN)
	}
	fmt.Fprintf(bw, "# end %d\n", len(d.Appeared)+len(d.Vanished)+len(d.MovedAS))
	return bw.Flush()
}

// ReadDiff parses a canonical diff file, rejecting truncated or
// malformed content.
func ReadDiff(r io.Reader) (*DatasetDiff, error) {
	d := &DatasetDiff{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line, rows, sawEnd := 0, 0, false
	bad := func(format string, args ...any) error {
		return &core.CorruptError{Line: line, Reason: fmt.Sprintf(format, args...)}
	}
	parseMonth := func(s string) (bgp.Month, error) {
		y, m, ok := strings.Cut(s, "-")
		if !ok {
			return bgp.Month{}, fmt.Errorf("bad month %q", s)
		}
		year, err1 := strconv.Atoi(y)
		mo, err2 := strconv.Atoi(m)
		if err1 != nil || err2 != nil || mo < 1 || mo > 12 {
			return bgp.Month{}, fmt.Errorf("bad month %q", s)
		}
		return bgp.Month{Year: year, M: mo}, nil
	}
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		if sawEnd {
			return nil, bad("content after footer")
		}
		switch {
		case line == 1:
			if text != "# diff v1" {
				return nil, bad("missing diff header")
			}
		case strings.HasPrefix(text, "# gen "):
			g, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(text, "# gen ")))
			if err != nil {
				return nil, bad("bad gen: %v", err)
			}
			d.Gen = g
		case strings.HasPrefix(text, "# domain "):
			d.Domain = strings.TrimPrefix(text, "# domain ")
		case strings.HasPrefix(text, "# from "):
			m, err := parseMonth(strings.TrimPrefix(text, "# from "))
			if err != nil {
				return nil, bad("%v", err)
			}
			d.From = m
		case strings.HasPrefix(text, "# to "):
			m, err := parseMonth(strings.TrimPrefix(text, "# to "))
			if err != nil {
				return nil, bad("%v", err)
			}
			d.To = m
		case strings.HasPrefix(text, "# covers "):
			n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(text, "# covers ")))
			if err != nil || n < 1 {
				return nil, bad("bad covers: %q", text)
			}
			d.Covers = n
		case strings.HasPrefix(text, "# end "):
			want, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(text, "# end ")))
			if err != nil {
				return nil, bad("bad footer: %v", err)
			}
			if want != rows {
				return nil, bad("row count %d, footer says %d", rows, want)
			}
			sawEnd = true
		case strings.HasPrefix(text, "+ "), strings.HasPrefix(text, "- "), strings.HasPrefix(text, "~ "):
			e, err := parseDiffRow(text)
			if err != nil {
				return nil, bad("%v", err)
			}
			rows++
			switch text[0] {
			case '+':
				d.Appeared = append(d.Appeared, e)
			case '-':
				d.Vanished = append(d.Vanished, e)
			case '~':
				d.MovedAS = append(d.MovedAS, e)
			}
		default:
			return nil, bad("unrecognized line %q", text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if line == 0 {
		return nil, bad("empty diff file")
	}
	if !sawEnd {
		return nil, bad("missing footer (truncated write?)")
	}
	return d, nil
}

func parseDiffRow(text string) (DiffEntry, error) {
	var e DiffEntry
	fields := strings.Split(text[2:], ",")
	addr, err := netip.ParseAddr(fields[0])
	if err != nil {
		return e, fmt.Errorf("bad addr %q", fields[0])
	}
	e.Addr = addr
	asns := make([]bgp.ASN, 0, 2)
	for _, f := range fields[1:] {
		n, err := strconv.ParseUint(f, 10, 32)
		if err != nil {
			return e, fmt.Errorf("bad asn %q", f)
		}
		asns = append(asns, bgp.ASN(n))
	}
	switch {
	case text[0] == '+' && len(asns) == 1:
		e.NewASN = asns[0]
	case text[0] == '-' && len(asns) == 1:
		e.OldASN = asns[0]
	case text[0] == '~' && len(asns) == 2:
		e.OldASN, e.NewASN = asns[0], asns[1]
	default:
		return e, fmt.Errorf("wrong field count for %q", text)
	}
	return e, nil
}

// domainSlug flattens a DNS name into a filesystem-safe directory name:
// "mask.icloud.com." → "mask_icloud_com".
func domainSlug(domain string) string {
	return strings.ReplaceAll(strings.TrimSuffix(domain, "."), ".", "_")
}

// diffPath locates generation gen of domain's diff sequence under dir.
func diffPath(dir, domain string, gen int) string {
	return filepath.Join(dir, "diffs", domainSlug(domain), fmt.Sprintf("gen-%06d.diff", gen))
}

// squashPath locates domain's squash diff — the single accumulated
// transition that replaces retired leading generations. There is at
// most one per domain; compaction atomically overwrites it in place.
func squashPath(dir, domain string) string {
	return filepath.Join(dir, "diffs", domainSlug(domain), "squash.diff")
}

// WriteSquashFile persists a squash diff (Covers > 0) atomically.
func WriteSquashFile(dir string, d *DatasetDiff) error {
	if d.Covers < 1 {
		return fmt.Errorf("relayd: squash diff must cover at least one generation")
	}
	path := squashPath(dir, d.Domain)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return atomicio.WriteFile(path, d.Write)
}

// LoadSquashFile reads domain's squash diff back. Missing squash
// surfaces as os.ErrNotExist (retention never ran or nothing retired
// yet); a corrupt one reports core.ErrCheckpointCorrupt with the path
// attached, like LoadDiffFile.
func LoadSquashFile(dir, domain string) (*DatasetDiff, error) {
	path := squashPath(dir, domain)
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d, err := ReadDiff(f)
	if err != nil {
		if corrupt, ok := errAsCorrupt(err); ok {
			corrupt.Path = path
			return nil, corrupt
		}
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if d.Covers < 1 {
		return nil, &core.CorruptError{Path: path, Reason: "squash diff missing `# covers` header"}
	}
	return d, nil
}

// WriteDiffFile persists the diff atomically and durably under dir.
func WriteDiffFile(dir string, d *DatasetDiff) error {
	path := diffPath(dir, d.Domain, d.Gen)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return atomicio.WriteFile(path, d.Write)
}

// LoadDiffFile reads generation gen back; a corrupt file reports
// core.ErrCheckpointCorrupt with the path attached, mirroring
// LoadCheckpoint.
func LoadDiffFile(dir, domain string, gen int) (*DatasetDiff, error) {
	path := diffPath(dir, domain, gen)
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d, err := ReadDiff(f)
	if err != nil {
		if corrupt, ok := errAsCorrupt(err); ok {
			corrupt.Path = path
			return nil, corrupt
		}
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

func errAsCorrupt(err error) (*core.CorruptError, bool) {
	if corrupt, ok := err.(*core.CorruptError); ok {
		c := *corrupt
		return &c, true
	}
	return nil, false
}
