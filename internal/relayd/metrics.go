package relayd

import (
	"fmt"
	"io"
	"math"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/relay-networks/privaterelay/internal/dnswire"
	"github.com/relay-networks/privaterelay/internal/masque"
)

// The metrics plane: a dependency-free counter/gauge registry with
// Prometheus-text exposition. The ROADMAP names the counters an
// operator of this platform needs — exchange rates, fault mix by kind,
// breaker state transitions, pool hit rates — and PR 7 left
// masque.Plane.Stats() waiting for exactly this surface. Exposition is
// deterministic: series render sorted by name then label set, so two
// scrapes of identical state are byte-identical (the same discipline
// every dataset writer in this repo follows).

// Counter is a monotonically increasing int64 series handle.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the counter.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 series handle that can move both ways.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value reads the gauge.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// series is one named, labeled time series in the registry.
type series struct {
	name    string
	labels  string // rendered `{k="v",...}` or ""
	counter *Counter
	gauge   *Gauge
}

// Registry holds every series relayd exports. Handles are created once
// and cached by callers; creation is locked, updates are lock-free.
type Registry struct {
	mu     sync.Mutex
	byKey  map[string]*series
	sorted []*series // maintained in exposition order
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*series)}
}

// renderLabels canonicalizes k,v pairs into `{k="v",...}` sorted by
// key, so the same logical series always maps to the same storage.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("relayd: labels must be key,value pairs")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(p.v))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

func (r *Registry) lookup(name string, labels []string) *series {
	key := name + renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.byKey[key]; ok {
		return s
	}
	s := &series{name: name, labels: renderLabels(labels)}
	r.byKey[key] = s
	i, _ := slices.BinarySearchFunc(r.sorted, s, compareSeries)
	r.sorted = slices.Insert(r.sorted, i, s)
	return s
}

func compareSeries(a, b *series) int {
	if a.name != b.name {
		return strings.Compare(a.name, b.name)
	}
	return strings.Compare(a.labels, b.labels)
}

// Counter returns (creating if needed) the counter for name and the
// given key,value label pairs. Calling it again with the same identity
// returns the same handle; a series cannot change type.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	s := r.lookup(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.gauge != nil {
		panic(fmt.Sprintf("relayd: series %s%s is a gauge", s.name, s.labels))
	}
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns (creating if needed) the gauge for name and labels.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	s := r.lookup(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.counter != nil {
		panic(fmt.Sprintf("relayd: series %s%s is a counter", s.name, s.labels))
	}
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// WriteText renders every series in Prometheus text format, sorted by
// name then labels. Counters print as integers, gauges in shortest
// round-trip float form.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	snapshot := make([]*series, len(r.sorted))
	copy(snapshot, r.sorted)
	r.mu.Unlock()
	for _, s := range snapshot {
		var val string
		switch {
		case s.counter != nil:
			val = strconv.FormatInt(s.counter.Value(), 10)
		case s.gauge != nil:
			val = strconv.FormatFloat(s.gauge.Value(), 'g', -1, 64)
		default:
			continue // registered but never materialized
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", s.name, s.labels, val); err != nil {
			return err
		}
	}
	return nil
}

// CollectPlane refreshes the masque serving-plane series from a live
// Plane: session/frame/byte totals plus one rejection counter per
// RejectCode — every code is exported, including the zero ones, so
// dashboards see the full enum surface (the PR 7 follow-up).
func (r *Registry) CollectPlane(p *masque.Plane) {
	if p == nil {
		return
	}
	st := p.Stats()
	r.Gauge("masque_sessions").Set(float64(st.Sessions))
	r.Gauge("masque_frames_relayed_total").Set(float64(st.FramesRelayed))
	r.Gauge("masque_bytes_relayed_total").Set(float64(st.BytesRelayed))
	for c := masque.RejectNone; c <= masque.RejectDraining; c++ {
		r.Gauge("masque_rejected_total", "code", c.String()).Set(float64(st.Rejected[c]))
	}
}

// CollectPools refreshes the pool-hit-rate series for the two hot-path
// object pools (dnswire messages, masque frames).
func (r *Registry) CollectPools() {
	msgAcq, msgMiss := dnswire.MessagePoolStats()
	frameAcq, frameMiss := masque.FramePoolStats()
	for _, p := range []struct {
		name             string
		acquires, misses int64
	}{
		{"dnswire_message", msgAcq, msgMiss},
		{"masque_frame", frameAcq, frameMiss},
	} {
		r.Gauge("pool_acquires_total", "pool", p.name).Set(float64(p.acquires))
		r.Gauge("pool_misses_total", "pool", p.name).Set(float64(p.misses))
		rate := 0.0
		if p.acquires > 0 {
			rate = float64(p.acquires-p.misses) / float64(p.acquires)
		}
		r.Gauge("pool_hit_rate", "pool", p.name).Set(rate)
	}
}
