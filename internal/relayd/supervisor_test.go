package relayd

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/relay-networks/privaterelay/internal/vclock"
)

func testSupervisor(clock vclock.Clock, reg *Registry) *Supervisor {
	return NewSupervisor(SupervisorConfig{
		Name:             "t",
		Attempts:         2,
		BackoffBase:      50 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
		QuarantineAfter:  2,
		Seed:             7,
	}, clock, reg)
}

var errBoom = errors.New("boom")

// TestSupervisorEscalation walks the full state machine on a virtual
// clock: failures → backoff → breaker → quarantine, with every
// transition landing in the registry. No wall time is spent.
func TestSupervisorEscalation(t *testing.T) {
	clock := vclock.NewVirtualClock()
	reg := NewRegistry()
	sup := testSupervisor(clock, reg)
	ctx := context.Background()
	fail := func(context.Context) error { return errBoom }

	// Tick 1: both attempts fail, backoff slept between them.
	before := clock.Elapsed()
	if err := sup.Tick(ctx, fail); err == nil || errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("tick 1: err = %v", err)
	}
	if clock.Elapsed() <= before {
		t.Fatal("no backoff was slept between attempts")
	}
	if sup.State() != StateIdle {
		t.Fatalf("state after tick 1 = %s, want idle", sup.State())
	}

	// Tick 2: second consecutive failed Tick trips the breaker.
	if err := sup.Tick(ctx, fail); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("tick 2: err = %v, want ErrBreakerOpen", err)
	}
	if sup.State() != StateBreakerOpen {
		t.Fatalf("state = %s, want breaker_open", sup.State())
	}
	if got := reg.Counter("relayd_breaker_open_total", "campaign", "t").Value(); got != 1 {
		t.Fatalf("breaker_open_total = %d, want 1", got)
	}

	// While cooling down, Tick refuses without running the campaign.
	ran := false
	if err := sup.Tick(ctx, func(context.Context) error { ran = true; return nil }); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("cooldown tick: err = %v, want ErrBreakerOpen", err)
	}
	if ran {
		t.Fatal("campaign ran while the breaker was open")
	}

	// Cooldown elapses; the probe is admitted, fails twice, and the
	// second breaker trip quarantines the campaign.
	clock.Sleep(ctx, time.Minute)
	if err := sup.Tick(ctx, fail); err == nil {
		t.Fatal("probe tick: want error")
	}
	if err := sup.Tick(ctx, fail); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("tick: err = %v, want ErrQuarantined", err)
	}
	if sup.State() != StateQuarantined {
		t.Fatalf("state = %s, want quarantined", sup.State())
	}
	if got := reg.Counter("relayd_quarantine_total", "campaign", "t").Value(); got != 1 {
		t.Fatalf("quarantine_total = %d, want 1", got)
	}

	// Quarantine is terminal until explicitly lifted.
	if err := sup.Tick(ctx, func(context.Context) error { return nil }); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("quarantined tick: err = %v", err)
	}
	sup.Unquarantine()
	if err := sup.Tick(ctx, func(context.Context) error { return nil }); err != nil {
		t.Fatalf("post-unquarantine tick: %v", err)
	}
	if sup.State() != StateIdle {
		t.Fatalf("state = %s, want idle", sup.State())
	}
}

// TestSupervisorRecovery: a success between failures resets the
// consecutive-failure count, so flapping never reaches the breaker.
func TestSupervisorRecovery(t *testing.T) {
	clock := vclock.NewVirtualClock()
	sup := testSupervisor(clock, nil)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if err := sup.Tick(ctx, func(context.Context) error { return errBoom }); errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("round %d: breaker tripped despite interleaved successes", i)
		}
		if err := sup.Tick(ctx, func(context.Context) error { return nil }); err != nil {
			t.Fatalf("round %d: success tick: %v", i, err)
		}
	}
}

// TestSupervisorCancellationIsNotFailure: a drained service cancels its
// context; that must not push campaigns toward quarantine.
func TestSupervisorCancellationIsNotFailure(t *testing.T) {
	clock := vclock.NewVirtualClock()
	reg := NewRegistry()
	sup := testSupervisor(clock, reg)
	ctx, cancel := context.WithCancel(context.Background())
	err := sup.Tick(ctx, func(ctx context.Context) error {
		cancel()
		return ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := reg.Counter("relayd_campaign_failures_total", "campaign", "t").Value(); got != 0 {
		t.Fatalf("cancellation counted as %d failures", got)
	}
	if sup.State() != StateIdle {
		t.Fatalf("state = %s, want idle", sup.State())
	}
}

// TestSupervisorJitterDeterministic: the backoff schedule is a pure
// function of (seed, attempt) — a rebuilt supervisor replays it.
func TestSupervisorJitterDeterministic(t *testing.T) {
	run := func() []time.Duration {
		s := testSupervisor(vclock.NewVirtualClock(), nil)
		var ds []time.Duration
		for i := 0; i < 8; i++ {
			s.attempt++
			ds = append(ds, s.backoffDelay())
		}
		return ds
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] < 50*time.Millisecond || a[i] > 30*50*time.Millisecond {
			t.Fatalf("delay %d out of bounds: %v", i, a[i])
		}
	}
}

func TestStateStringExhaustive(t *testing.T) {
	want := []string{"idle", "running", "backoff", "breaker_open", "quarantined"}
	if len(want) != stateCount {
		t.Fatalf("stateCount = %d, want %d", stateCount, len(want))
	}
	for i, w := range want {
		if got := State(i).String(); got != w {
			t.Fatalf("State(%d) = %q, want %q", i, got, w)
		}
	}
}
