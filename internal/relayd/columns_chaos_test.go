package relayd

import (
	"bytes"
	"encoding/binary"
	"math/rand/v2"
	"net/netip"
	"os"
	"path/filepath"
	"testing"

	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/colstore"
	"github.com/relay-networks/privaterelay/internal/core"
	"github.com/relay-networks/privaterelay/internal/dnsserver"
)

// The columnar data plane's relayd-level guarantees: the streaming
// merge reproduces the map-based diff bytes exactly, sidecar damage in
// any state (present / stale / corrupted mid-write) repairs to the
// baseline tree, and retention compaction survives kills at every
// stage without forking the durable bytes.

// synthDataset builds a map-backed dataset with both families,
// deterministic per (seed, month-index) so successive months churn.
func synthDataset(seed uint64, addrs int) *core.Dataset {
	rng := rand.New(rand.NewPCG(seed, 0x5e55))
	ds := &core.Dataset{
		Domain:    dnsserver.MaskDomain,
		Addresses: make(map[netip.Addr]bgp.ASN),
		Serving:   make(map[bgp.ASN]*core.ServingStats),
	}
	for len(ds.Addresses) < addrs {
		as := bgp.ASN(rng.Uint32N(70000) + 1)
		if rng.Uint32N(4) == 0 {
			var b [16]byte
			binary.BigEndian.PutUint64(b[:8], rng.Uint64())
			binary.BigEndian.PutUint64(b[8:], rng.Uint64())
			ds.Addresses[netip.AddrFrom16(b)] = as
		} else {
			var b [4]byte
			binary.BigEndian.PutUint32(b[:], rng.Uint32())
			ds.Addresses[netip.AddrFrom4(b)] = as
		}
	}
	return ds
}

// synthMonths derives a churned month sequence: month i shares most of
// month i-1's addresses, drops some, adds some, moves some origins.
func synthMonths(t *testing.T, n, addrs int) []*core.Dataset {
	t.Helper()
	out := make([]*core.Dataset, n)
	out[0] = synthDataset(1, addrs)
	for i := 1; i < n; i++ {
		rng := rand.New(rand.NewPCG(uint64(i), 0xc4a5))
		ds := &core.Dataset{
			Domain:    dnsserver.MaskDomain,
			Addresses: make(map[netip.Addr]bgp.ASN),
			Serving:   make(map[bgp.ASN]*core.ServingStats),
		}
		for a, as := range out[i-1].Addresses {
			switch rng.Uint32N(12) {
			case 0: // vanish
			case 1:
				ds.Addresses[a] = as + 1 // move AS
			default:
				ds.Addresses[a] = as
			}
		}
		for a, as := range synthDataset(uint64(100+i), addrs/10).Addresses {
			ds.Addresses[a] = as
		}
		out[i] = ds
	}
	return out
}

// TestStreamingDiffMatchesComputeDiff: ComputeDiffColumns over columnar
// datasets renders byte-identically to the map-based ComputeDiff —
// on the simulated baseline months and on synthetic v6-heavy worlds.
func TestStreamingDiffMatchesComputeDiff(t *testing.T) {
	t.Run("baseline", func(t *testing.T) {
		dir := sharedBaseline(t)
		pipe, err := NewPipeline(chaosServiceConfig(dir).Pipeline)
		if err != nil {
			t.Fatal(err)
		}
		months := pipe.Months()
		for _, domain := range []string{dnsserver.MaskDomain, dnsserver.MaskH2Domain} {
			for g := 1; g < len(months); g++ {
				a, err := pipe.LoadDataset(domain, months[g-1])
				if err != nil {
					t.Fatal(err)
				}
				b, err := pipe.LoadDataset(domain, months[g])
				if err != nil {
					t.Fatal(err)
				}
				ca, err := pipe.LoadColumns(domain, months[g-1])
				if err != nil {
					t.Fatal(err)
				}
				cb, err := pipe.LoadColumns(domain, months[g])
				if err != nil {
					t.Fatal(err)
				}
				var mapped, streamed bytes.Buffer
				if err := ComputeDiff(g, months[g-1], months[g], a, b).Write(&mapped); err != nil {
					t.Fatal(err)
				}
				if err := ComputeDiffColumns(g, months[g-1], months[g], ca, cb).Write(&streamed); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(mapped.Bytes(), streamed.Bytes()) {
					t.Fatalf("%s gen %d: streaming diff bytes differ from map-based", domain, g)
				}
			}
		}
	})
	t.Run("synthetic-v6", func(t *testing.T) {
		months := synthMonths(t, 6, 2000)
		from, to := bgp.Month{Year: 2022, M: 1}, bgp.Month{Year: 2022, M: 2}
		for i := 1; i < len(months); i++ {
			a, b := months[i-1], months[i]
			ca, err := a.Columns()
			if err != nil {
				t.Fatal(err)
			}
			cb, err := b.Columns()
			if err != nil {
				t.Fatal(err)
			}
			var mapped, streamed bytes.Buffer
			if err := ComputeDiff(i, from, to, a, b).Write(&mapped); err != nil {
				t.Fatal(err)
			}
			if err := ComputeDiffColumns(i, from, to, ca, cb).Write(&streamed); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(mapped.Bytes(), streamed.Bytes()) {
				t.Fatalf("synthetic gen %d: streaming diff bytes differ from map-based", i)
			}
			if streamed.Len() < 100 {
				t.Fatalf("synthetic gen %d produced a near-empty diff — churn generator broken", i)
			}
		}
	})
}

// copyDurableTree clones the durable roots of src into a fresh temp dir.
func copyDurableTree(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	for rel, b := range durableTree(t, src) {
		path := filepath.Join(dst, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// rerunDerived re-materializes every derived artifact (diffs, report)
// over an existing dataset tree, exercising every sidecar load path.
func rerunDerived(t *testing.T, dir string) {
	t.Helper()
	pipe, err := NewPipeline(chaosServiceConfig(dir).Pipeline)
	if err != nil {
		t.Fatal(err)
	}
	if err := pipe.EnsureDiffs(len(pipe.Months()) - 1); err != nil {
		t.Fatal(err)
	}
	if err := pipe.WriteReport(); err != nil {
		t.Fatal(err)
	}
}

// TestRelaydChaosSidecarResume: the byte-identity contract holds with
// sidecars in all three damaged states — present (untouched), stale
// (valid bytes fingerprinting older text), and corrupted mid-write
// (truncated) — each repaired from the golden text on the next load.
func TestRelaydChaosSidecarResume(t *testing.T) {
	want := durableTree(t, sharedBaseline(t))
	dir := copyDurableTree(t, sharedBaseline(t))

	// Pick one dataset's sidecar to damage per scenario.
	ds1 := filepath.Join(dir, "datasets", domainSlug(dnsserver.MaskDomain), "2022-01.ds")
	ds2 := filepath.Join(dir, "datasets", domainSlug(dnsserver.MaskH2Domain), "2022-02.ds")
	sc1, sc2 := core.SidecarPath(ds1), core.SidecarPath(ds2)
	for _, p := range []string{ds1, ds2, sc1, sc2} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("fixture missing: %v", err)
		}
	}

	compare := func(stage string) {
		t.Helper()
		got := durableTree(t, dir)
		if len(got) != len(want) {
			t.Fatalf("%s: durable file sets differ: %d vs %d", stage, len(got), len(want))
		}
		for rel, b := range want {
			if !bytes.Equal(got[rel], b) {
				t.Fatalf("%s: %s differs from baseline", stage, rel)
			}
		}
	}

	// Present: a no-op pass over intact sidecars changes nothing.
	rerunDerived(t, dir)
	compare("present")

	// Stale: a valid sidecar built from different text bytes. Also drop
	// a diff generation so the load path is actually exercised.
	other := synthDataset(77, 50)
	cols, err := other.Columns()
	if err != nil {
		t.Fatal(err)
	}
	stale := cols.AppendBinary(nil, colstore.Fingerprint([]byte("older text")))
	if err := os.WriteFile(sc1, stale, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "diffs", domainSlug(dnsserver.MaskDomain), "gen-000001.diff")); err != nil {
		t.Fatal(err)
	}
	rerunDerived(t, dir)
	compare("stale")

	// Corrupted mid-write: a torn sidecar (truncated tail, flipped byte).
	enc, err := os.ReadFile(sc2)
	if err != nil {
		t.Fatal(err)
	}
	torn := append([]byte(nil), enc[:len(enc)*2/3]...)
	if len(torn) > 40 {
		torn[40] ^= 0xff
	}
	if err := os.WriteFile(sc2, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "diffs", domainSlug(dnsserver.MaskH2Domain), "gen-000002.diff")); err != nil {
		t.Fatal(err)
	}
	rerunDerived(t, dir)
	quarantine := sc2 + ".corrupt"
	if q, err := os.ReadFile(quarantine); err != nil || !bytes.Equal(q, torn) {
		t.Fatalf("corrupt sidecar not quarantined verbatim (err=%v)", err)
	}
	// The quarantine file is post-mortem residue, not durable output;
	// remove it before the byte-identity comparison.
	if err := os.Remove(quarantine); err != nil {
		t.Fatal(err)
	}
	compare("corrupt")
}

// retentionConfig is a synthetic 12-month single-domain pipeline with
// retention enabled; datasets are written directly (no scans).
func retentionConfig(t *testing.T, dir string, keep int) (PipelineConfig, []*core.Dataset) {
	t.Helper()
	months := make([]bgp.Month, 12)
	for i := range months {
		months[i] = bgp.Month{Year: 2022, M: i + 1}
	}
	cfg := PipelineConfig{
		Seed:                6,
		Scale:               0.0008,
		StateDir:            dir,
		Months:              months,
		Domains:             []string{dnsserver.MaskDomain},
		KeepDiffGenerations: keep,
	}
	return cfg, synthMonths(t, 12, 1200)
}

func writeSynthDatasets(t *testing.T, pipe *Pipeline, data []*core.Dataset) {
	t.Helper()
	for i, m := range pipe.Months() {
		path := pipe.DatasetPath(dnsserver.MaskDomain, m)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := core.SaveCanonicalFile(path, data[i]); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRetentionCompactionKillResume: retention keeps the diff directory
// bounded, the squash diff equals the direct months[0]→months[frontier]
// transition, and a kill at any stage of compaction (after squash
// write, before deletions; with a corrupt squash; with the whole diffs
// tree lost) converges back to the same durable bytes.
func TestRetentionCompactionKillResume(t *testing.T) {
	const keep = 3
	gen := 11 // 12 months → generations 1..11

	// Reference: straight-through run.
	refDir := t.TempDir()
	refCfg, data := retentionConfig(t, refDir, keep)
	ref, err := NewPipeline(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	writeSynthDatasets(t, ref, data)
	if err := ref.EnsureDiffs(gen); err != nil {
		t.Fatal(err)
	}
	want := durableTree(t, refDir)

	// Shape: squash covering gen-keep, only the newest keep generations
	// as individual files.
	target := gen - keep
	sq, err := LoadSquashFile(refDir, dnsserver.MaskDomain)
	if err != nil {
		t.Fatalf("squash missing after retention run: %v", err)
	}
	if sq.Covers != target || sq.Gen != target {
		t.Fatalf("squash covers %d (gen %d), want %d", sq.Covers, sq.Gen, target)
	}
	for g := 1; g <= gen; g++ {
		_, err := os.Stat(diffPath(refDir, dnsserver.MaskDomain, g))
		if g <= target && err == nil {
			t.Fatalf("retired gen %d still on disk", g)
		}
		if g > target && err != nil {
			t.Fatalf("kept gen %d missing: %v", g, err)
		}
	}
	// The squash is the direct first→frontier transition.
	ca, err := ref.LoadColumns(dnsserver.MaskDomain, ref.Months()[0])
	if err != nil {
		t.Fatal(err)
	}
	cb, err := ref.LoadColumns(dnsserver.MaskDomain, ref.Months()[target])
	if err != nil {
		t.Fatal(err)
	}
	direct := ComputeDiffColumns(target, ref.Months()[0], ref.Months()[target], ca, cb)
	direct.Covers = target
	var directBuf, sqBuf bytes.Buffer
	if err := direct.Write(&directBuf); err != nil {
		t.Fatal(err)
	}
	if err := sq.Write(&sqBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(directBuf.Bytes(), sqBuf.Bytes()) {
		t.Fatal("squash diff differs from the direct first→frontier transition")
	}

	compareAfter := func(stage, dir string, pipe *Pipeline) {
		t.Helper()
		if err := pipe.EnsureDiffs(gen); err != nil {
			t.Fatalf("%s: EnsureDiffs: %v", stage, err)
		}
		got := durableTree(t, dir)
		if len(got) != len(want) {
			t.Fatalf("%s: %d durable files, want %d", stage, len(got), len(want))
		}
		for rel, b := range want {
			if !bytes.Equal(got[rel], b) {
				t.Fatalf("%s: %s differs from reference", stage, rel)
			}
		}
	}

	// Kill scenario 1: crash after the squash write, before deletions —
	// redundant covered files remain and must be swept on resume.
	dir1 := t.TempDir()
	cfg1, _ := retentionConfig(t, dir1, keep)
	p1, err := NewPipeline(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	writeSynthDatasets(t, p1, data)
	// First materialize every generation without retention...
	cfg1NoKeep := cfg1
	cfg1NoKeep.KeepDiffGenerations = 0
	p1nk, err := NewPipeline(cfg1NoKeep)
	if err != nil {
		t.Fatal(err)
	}
	if err := p1nk.EnsureDiffs(gen); err != nil {
		t.Fatal(err)
	}
	// ...then plant the squash as if the crash hit mid-compaction.
	planted := *direct
	if err := WriteSquashFile(dir1, &planted); err != nil {
		t.Fatal(err)
	}
	compareAfter("post-squash kill", dir1, p1)

	// Kill scenario 2: the squash itself was torn mid-write.
	dir2 := t.TempDir()
	cfg2, _ := retentionConfig(t, dir2, keep)
	p2, err := NewPipeline(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	writeSynthDatasets(t, p2, data)
	if err := p2.EnsureDiffs(gen); err != nil {
		t.Fatal(err)
	}
	sqPath := squashPath(dir2, dnsserver.MaskDomain)
	raw, err := os.ReadFile(sqPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(sqPath, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := p2.EnsureDiffs(gen); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(sqPath + ".corrupt"); err != nil {
		t.Fatalf("torn squash not quarantined: %v", err)
	}
	if err := os.Remove(sqPath + ".corrupt"); err != nil {
		t.Fatal(err)
	}
	compareAfter("torn squash", dir2, p2)

	// Kill scenario 3: the whole diffs tree is lost; everything is
	// rebuilt from the retained datasets.
	dir3 := t.TempDir()
	cfg3, _ := retentionConfig(t, dir3, keep)
	p3, err := NewPipeline(cfg3)
	if err != nil {
		t.Fatal(err)
	}
	writeSynthDatasets(t, p3, data)
	if err := p3.EnsureDiffs(gen); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(filepath.Join(dir3, "diffs")); err != nil {
		t.Fatal(err)
	}
	compareAfter("diffs tree lost", dir3, p3)
}

// TestDiffCoversRoundTrip pins the squash header extension: write →
// read preserves Covers, plain diffs stay covers-free, and a malformed
// covers line is rejected as corrupt.
func TestDiffCoversRoundTrip(t *testing.T) {
	d := &DatasetDiff{
		Domain: dnsserver.MaskDomain, Gen: 4,
		From: bgp.Month{Year: 2022, M: 1}, To: bgp.Month{Year: 2022, M: 5},
		Covers:   4,
		Appeared: []DiffEntry{{Addr: netip.MustParseAddr("192.0.2.1"), NewASN: 714}},
	}
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDiff(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Covers != 4 || got.Gen != 4 {
		t.Fatalf("covers %d gen %d after round trip, want 4/4", got.Covers, got.Gen)
	}
	var again bytes.Buffer
	if err := got.Write(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), buf.Bytes()) {
		t.Fatal("squash diff not byte-stable across write→read→write")
	}

	bad := bytes.Replace(buf.Bytes(), []byte("# covers 4"), []byte("# covers zero"), 1)
	if _, err := ReadDiff(bytes.NewReader(bad)); err == nil {
		t.Fatal("malformed covers line accepted")
	}
}
