// Package relayd is the continuous measurement service: it runs the
// paper's scan and Atlas campaigns on a schedule, supervised by
// per-campaign retry/breaker/quarantine state machines, persists every
// output through the atomic checkpoint machinery so a kill -9 at any
// instant resumes to bit-identical datasets, maintains incremental
// month-over-month diff generations, and serves reports plus
// health/readiness/metrics over HTTP with graceful drain.
package relayd

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/relay-networks/privaterelay/internal/masque"
	"github.com/relay-networks/privaterelay/internal/vclock"
)

// ServiceConfig configures one relayd instance.
type ServiceConfig struct {
	// Pipeline is the measurement plan (see PipelineConfig).
	Pipeline PipelineConfig
	// Interval is the pause between cycles, slept on the pipeline clock
	// (default 1h; instantaneous on a virtual clock).
	Interval time.Duration
	// CanaryFrames is how many frames the serving-plane canary relays
	// each cycle to keep the masque metrics live (default 32; negative
	// disables the canary).
	CanaryFrames int
	// Supervisor is the failure-policy template every campaign
	// supervisor starts from (Name and Seed are filled per campaign).
	Supervisor SupervisorConfig
}

// Service is a running relayd: the pipeline, its supervisors, the
// serving-plane canary and the cycle state the HTTP plane reports.
type Service struct {
	cfg   ServiceConfig
	pipe  *Pipeline
	reg   *Registry
	clock vclock.Clock
	plane *masque.Plane

	supScan  *Supervisor
	supDiff  *Supervisor
	supAtlas *Supervisor

	cycles   atomic.Int64
	ready    atomic.Bool
	draining atomic.Bool
}

// New builds a service. A nil Pipeline.Registry gets a fresh one —
// read it back via Registry().
func New(cfg ServiceConfig) (*Service, error) {
	if cfg.Pipeline.Registry == nil {
		cfg.Pipeline.Registry = NewRegistry()
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Hour
	}
	if cfg.CanaryFrames == 0 {
		cfg.CanaryFrames = 32
	}
	pipe, err := NewPipeline(cfg.Pipeline)
	if err != nil {
		return nil, err
	}
	s := &Service{
		cfg:   cfg,
		pipe:  pipe,
		reg:   cfg.Pipeline.Registry,
		clock: pipe.cfg.Clock,
	}
	s.plane = masque.NewPlane(masque.PlaneConfig{
		Reservations: masque.NewReservations(masque.Limits{
			Duration:    24 * time.Hour,
			DataCap:     1 << 40,
			MaxSessions: 64,
		}, s.clock),
	})
	sup := func(name string, seedOffset uint64) *Supervisor {
		c := cfg.Supervisor
		c.Name = name
		c.Seed = cfg.Pipeline.Seed + seedOffset
		return NewSupervisor(c, s.clock, s.reg)
	}
	s.supScan = sup("scan", 1)
	s.supDiff = sup("diff", 2)
	s.supAtlas = sup("atlas", 3)
	return s, nil
}

// Registry returns the service's metrics registry.
func (s *Service) Registry() *Registry { return s.reg }

// Plane returns the serving plane (the canary's target and the metrics
// source).
func (s *Service) Plane() *masque.Plane { return s.plane }

// Cycles reports how many Step calls have completed.
func (s *Service) Cycles() int64 { return s.cycles.Load() }

// Ready reports whether the service has finished at least one cycle
// and is not draining — the /readyz contract.
func (s *Service) Ready() bool { return s.ready.Load() && !s.draining.Load() }

// Draining reports whether BeginDrain was called.
func (s *Service) Draining() bool { return s.draining.Load() }

// CaughtUp reports whether every planned month has durable datasets.
func (s *Service) CaughtUp() bool {
	_, caughtUp := s.pipe.NextMonth()
	return caughtUp
}

// Step runs one service cycle: advance the scan plan by at most one
// month, bring the diff generations and the report up to date, run the
// Atlas campaign for the newest month, and exercise the serving-plane
// canary. Campaign failures surface as the returned error after the
// supervisor has spent its attempts; the cycle still counts, so the
// HTTP plane stays live while a campaign is in backoff or quarantine.
func (s *Service) Step(ctx context.Context) error {
	var firstErr error
	idx, caughtUp := s.pipe.NextMonth()
	if !caughtUp {
		month := s.pipe.Months()[idx]
		err := s.supScan.Tick(ctx, func(ctx context.Context) error {
			return s.pipe.RunScanCampaign(ctx, month)
		})
		if err != nil {
			if ctx.Err() != nil {
				return err
			}
			firstErr = err
		}
	}

	// Diffs and the report follow whatever is durable now, whether this
	// cycle's scan finished, failed, or was never needed.
	done, _ := s.pipe.NextMonth()
	if done > 1 {
		if err := s.supDiff.Tick(ctx, func(context.Context) error {
			return s.pipe.EnsureDiffs(done - 1)
		}); err != nil {
			if ctx.Err() != nil {
				return err
			}
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	if err := s.pipe.WriteReport(); err != nil {
		if firstErr == nil {
			firstErr = fmt.Errorf("relayd: report: %w", err)
		}
	}
	if done > 0 && s.cfg.Pipeline.AtlasProbes > 0 {
		month := s.pipe.Months()[done-1]
		if err := s.supAtlas.Tick(ctx, func(ctx context.Context) error {
			return s.pipe.RunAtlas(ctx, month)
		}); err != nil {
			if ctx.Err() != nil {
				return err
			}
			if firstErr == nil {
				firstErr = err
			}
		}
	}

	s.runCanary()
	s.cycles.Add(1)
	if s.reg != nil {
		s.reg.Counter("relayd_cycles_total").Add(1)
	}
	s.ready.Store(true)
	return firstErr
}

// runCanary relays a burst of frames through the serving plane — one
// live session, CanaryFrames data frames, plus one deliberate
// no-reservation rejection — so the masque counters on /metrics move
// on a service that has no external tunnel traffic yet.
func (s *Service) runCanary() {
	n := s.cfg.CanaryFrames
	if n < 0 || s.draining.Load() {
		return
	}
	sess, code := s.plane.Open("relayd-canary")
	if code != masque.RejectNone {
		if s.reg != nil {
			s.reg.Counter("relayd_canary_rejected_total", "code", code.String()).Add(1)
		}
		return
	}
	defer s.plane.Close(sess)
	f := masque.AcquireFrame()
	defer masque.ReleaseFrame(f)
	f.Type = masque.FrameData
	f.SetPayload([]byte("relayd canary frame"))
	f.StreamID = sess.ID()
	for i := 0; i < n; i++ {
		if code := s.plane.Relay(f); code != masque.RejectNone {
			if s.reg != nil {
				s.reg.Counter("relayd_canary_rejected_total", "code", code.String()).Add(1)
			}
			break
		}
	}
	// A frame for a stream nobody opened: the typed rejection keeps the
	// NO_RESERVATION counter meaningful on an otherwise healthy plane.
	f.StreamID = 0
	s.plane.Relay(f)
}

// Run drives Step in a loop on the pipeline clock until ctx is
// cancelled or, when maxCycles > 0, that many cycles have run. The
// inter-cycle sleep is skipped while the scan plan is behind, so a
// fresh service catches up as fast as its campaigns allow.
func (s *Service) Run(ctx context.Context, maxCycles int) error {
	for n := 0; maxCycles <= 0 || n < maxCycles; n++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		stepErr := s.Step(ctx)
		if err := ctx.Err(); err != nil {
			return err
		}
		// Sleep between cycles once caught up — and also after a failed
		// cycle, so breaker-open campaigns do not busy-spin the loop.
		if s.CaughtUp() || stepErr != nil {
			if err := s.clock.Sleep(ctx, s.cfg.Interval); err != nil {
				return err
			}
		}
	}
	return nil
}

// BeginDrain flips readiness off and stops admitting plane sessions;
// in-flight work keeps running so checkpoints land before exit.
func (s *Service) BeginDrain() {
	if s.draining.Swap(true) {
		return
	}
	s.plane.Drain()
	if s.reg != nil {
		s.reg.Counter("relayd_drain_total").Add(1)
	}
}

// Close shuts the serving plane down. Call after campaigns stop.
func (s *Service) Close() {
	s.plane.Shutdown()
}

// Collect refreshes every scrape-time series: the serving plane, the
// object pools and the cycle/readiness gauges.
func (s *Service) Collect() {
	s.reg.CollectPlane(s.plane)
	s.reg.CollectPools()
	s.reg.Gauge("relayd_ready").Set(boolGauge(s.Ready()))
	s.reg.Gauge("relayd_caught_up").Set(boolGauge(s.CaughtUp()))
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
