package relayd

import (
	"bytes"
	"context"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/relay-networks/privaterelay/internal/dnsserver"
	"github.com/relay-networks/privaterelay/internal/dnswire"
	"github.com/relay-networks/privaterelay/internal/netsim"
	"github.com/relay-networks/privaterelay/internal/vclock"
)

// The relayd chaos test: kill the service at seeded-random points mid
// campaign — a deterministic stand-in for kill -9 — restart it over the
// same state directory, and require the final durable state (datasets,
// diffs, reports) to be byte-identical to an uninterrupted run's. It
// runs under -race in the chaos CI job.

// chaosKiller cancels the service's context after a fixed number of
// DNS exchanges. Installed through PipelineConfig.WrapExchanger it
// sits outermost — above the fault injector — so the kill lands at an
// arbitrary point of the real exchange stream.
type chaosKiller struct {
	inner  dnsserver.Exchanger
	after  int64
	n      atomic.Int64
	cancel context.CancelFunc
	fired  *atomic.Bool
}

func (k *chaosKiller) Exchange(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	if k.n.Add(1) == k.after {
		k.fired.Store(true)
		k.cancel()
	}
	return k.inner.Exchange(ctx, q)
}

// splitmix64 is the test's private PRNG: seeded, portable, and not
// math/rand, so kill points are reproducible everywhere.
type splitmix64 struct{ x uint64 }

func (s *splitmix64) next() uint64 {
	s.x += 0x9e3779b97f4a7c15
	z := s.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

const chaosFaultProfile = "mild,seed=3"

func chaosServiceConfig(dir string) ServiceConfig {
	cfg := testServiceConfig(dir)
	cfg.Pipeline.FaultProfile = chaosFaultProfile
	return cfg
}

// The uninterrupted baseline run is the single most expensive fixture
// in this package, and three tests compare against it — so it runs
// once. Faulted and fault-free runs persist identical canonical bytes
// (the core chaos suite pins that equivalence), which is what makes
// one baseline valid for all of them.
var (
	baselineOnce sync.Once
	baselineDir  string
	baselineErr  error
)

func sharedBaseline(t *testing.T) string {
	t.Helper()
	baselineOnce.Do(func() {
		dir, err := os.MkdirTemp("", "relayd-baseline-*")
		if err != nil {
			baselineErr = err
			return
		}
		baselineDir = dir
		svc, err := New(chaosServiceConfig(dir))
		if err != nil {
			baselineErr = err
			return
		}
		defer svc.Close()
		for i := 0; i < 32 && !svc.CaughtUp(); i++ {
			if err := svc.Step(context.Background()); err != nil {
				baselineErr = err
				return
			}
		}
		if !svc.CaughtUp() {
			baselineErr = errBaselineStuck
		}
	})
	if baselineErr != nil {
		t.Fatal(baselineErr)
	}
	return baselineDir
}

var errBaselineStuck = errors.New("baseline service never caught up")

func TestMain(m *testing.M) {
	code := m.Run()
	if baselineDir != "" {
		os.RemoveAll(baselineDir)
	}
	os.Exit(code)
}

// durableTree reads every file under the durable output roots into a
// map keyed by slash-separated relative path. Checkpoints are scratch
// by contract and excluded.
func durableTree(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	tree := map[string][]byte{}
	for _, root := range []string{"datasets", "diffs", "reports"} {
		base := filepath.Join(dir, root)
		err := filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return err
			}
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			rel, err := filepath.Rel(dir, path)
			if err != nil {
				return err
			}
			tree[filepath.ToSlash(rel)] = b
			return nil
		})
		if err != nil && !os.IsNotExist(err) {
			t.Fatal(err)
		}
	}
	return tree
}

// TestRelaydChaosKillResumeBitIdentical: an uninterrupted baseline run
// versus a run killed at seeded-random exchange counts and restarted
// until it converges. Every durable byte must match.
func TestRelaydChaosKillResumeBitIdentical(t *testing.T) {
	want := durableTree(t, sharedBaseline(t))
	if len(want) == 0 {
		t.Fatal("baseline produced no durable files")
	}

	// Chaos: restart loop over one state dir, each incarnation armed
	// with a fresh seeded kill point.
	chaosDir := t.TempDir()
	prng := &splitmix64{x: 0xc0ffee}
	kills, killedMidScan := 0, 0
	var resumedSubnets, corruptKillPoints int64
	const maxRounds = 60
	round := 0
	for ; round < maxRounds; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		var fired atomic.Bool
		// A full catch-up is ~200k exchanges; kill points average ~15k
		// so the run dies and resumes many times, with the occasional
		// very early kill landing inside the first scan.
		after := int64(1500 + prng.next()%28000)
		cfg := chaosServiceConfig(chaosDir)
		cfg.Pipeline.WrapExchanger = func(ex dnsserver.Exchanger) dnsserver.Exchanger {
			return &chaosKiller{inner: ex, after: after, cancel: cancel, fired: &fired}
		}
		svc, err := New(cfg)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		for !svc.CaughtUp() && ctx.Err() == nil {
			if err := svc.Step(ctx); err != nil && ctx.Err() == nil {
				cancel()
				t.Fatalf("round %d: unexpected campaign failure: %v", round, err)
			}
		}
		for _, d := range []string{dnsserver.MaskDomain, dnsserver.MaskH2Domain} {
			resumedSubnets += svc.Registry().Counter("relayd_scan_resumed_subnets_total", "domain", d).Value()
			corruptKillPoints += svc.Registry().Counter("relayd_checkpoint_corrupt_total", "domain", d).Value()
		}
		caughtUp := svc.CaughtUp()
		svc.Close()
		cancel()
		if fired.Load() {
			kills++
			if !caughtUp {
				killedMidScan++
			}
		}
		if caughtUp {
			break
		}
	}
	if round == maxRounds {
		t.Fatalf("service did not converge within %d restarts", maxRounds)
	}
	if kills == 0 || killedMidScan == 0 {
		t.Fatalf("chaos run was never genuinely killed mid-campaign (kills=%d midScan=%d) — raise kill budget", kills, killedMidScan)
	}
	if resumedSubnets == 0 {
		t.Fatal("no scan ever resumed from a checkpoint — the kills landed nowhere interesting")
	}
	if corruptKillPoints != 0 {
		t.Fatalf("atomic checkpoint writes produced %d corrupt files under kills", corruptKillPoints)
	}

	got := durableTree(t, chaosDir)
	if len(got) != len(want) {
		t.Fatalf("durable file sets differ: %d vs %d files", len(got), len(want))
	}
	for rel, b := range want {
		g, ok := got[rel]
		if !ok {
			t.Fatalf("chaos run missing %s", rel)
		}
		if !bytes.Equal(g, b) {
			t.Fatalf("%s differs between baseline and kill/resume run", rel)
		}
	}
	t.Logf("chaos: %d restarts, %d kills (%d mid-scan), %d subnets resumed, %d durable files identical",
		round+1, kills, killedMidScan, resumedSubnets, len(want))
}

// TestRelaydChaosDrainMidCampaign: BeginDrain plus cancellation during
// an in-flight campaign behaves exactly like a kill — the next
// incarnation resumes and converges on the baseline bytes.
func TestRelaydChaosDrainMidCampaign(t *testing.T) {
	baseDir := sharedBaseline(t)

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	var fired atomic.Bool
	cfg := chaosServiceConfig(dir)
	cfg.Pipeline.WrapExchanger = func(ex dnsserver.Exchanger) dnsserver.Exchanger {
		return &chaosKiller{inner: ex, after: 300, cancel: cancel, fired: &fired}
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc.BeginDrain() // drain first: readiness off, campaigns still run
	if svc.Ready() {
		t.Fatal("draining service reports ready")
	}
	err = svc.Step(ctx)
	if !fired.Load() {
		t.Fatal("kill point never fired — raise the exchange budget")
	}
	if err == nil {
		t.Fatal("cancelled campaign returned no error")
	}
	svc.Close()
	cancel()

	svc2, err := New(chaosServiceConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	stepUntilCaughtUp(t, svc2, context.Background())
	if resumed := svc2.Registry().Counter("relayd_scan_resumed_subnets_total", "domain", dnsserver.MaskDomain).Value(); resumed == 0 {
		t.Fatal("restart after drain resumed nothing")
	}

	want, got := durableTree(t, baseDir), durableTree(t, dir)
	if len(want) != len(got) {
		t.Fatalf("file sets differ: %d vs %d", len(want), len(got))
	}
	for rel, b := range want {
		if !bytes.Equal(got[rel], b) {
			t.Fatalf("%s differs after drain/resume", rel)
		}
	}
}

// TestDiffFormatRoundTrip pins the diff wire format: write → read →
// write is byte-stable and truncation is rejected.
func TestDiffFormatRoundTrip(t *testing.T) {
	dir := sharedBaseline(t)
	pipe, err := NewPipeline(chaosServiceConfig(dir).Pipeline)
	if err != nil {
		t.Fatal(err)
	}

	for g := 1; g < len(pipe.Months()); g++ {
		d, err := LoadDiffFile(dir, dnsserver.MaskDomain, g)
		if err != nil {
			t.Fatalf("gen %d: %v", g, err)
		}
		if d.Gen != g {
			t.Fatalf("gen header = %d, want %d", d.Gen, g)
		}
		var buf bytes.Buffer
		if err := d.Write(&buf); err != nil {
			t.Fatal(err)
		}
		onDisk, err := os.ReadFile(diffPath(dir, dnsserver.MaskDomain, g))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), onDisk) {
			t.Fatalf("gen %d: re-rendered diff differs from on-disk bytes", g)
		}
		if _, err := ReadDiff(bytes.NewReader(onDisk[:len(onDisk)-2])); err == nil {
			t.Fatalf("gen %d: truncated diff accepted", g)
		}
		// A diff must describe change: identical datasets would not
		// exercise the format. The sim worlds grow month over month.
		if g >= 1 && len(d.Appeared)+len(d.Vanished)+len(d.MovedAS) == 0 {
			t.Logf("gen %d: empty diff (world did not change)", g)
		}
	}

	// ComputeDiff is order-independent: recompute from loaded datasets
	// and compare with the persisted generation.
	months := pipe.Months()
	a, err := pipe.LoadDataset(dnsserver.MaskDomain, months[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := pipe.LoadDataset(dnsserver.MaskDomain, months[1])
	if err != nil {
		t.Fatal(err)
	}
	var rendered bytes.Buffer
	if err := ComputeDiff(1, months[0], months[1], a, b).Write(&rendered); err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(diffPath(dir, dnsserver.MaskDomain, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rendered.Bytes(), onDisk) {
		t.Fatal("recomputed gen 1 differs from persisted bytes")
	}
}

// TestVirtualClockNoWallTime guards the chaos suite's economics: a
// full catch-up on the virtual clock must not sleep wall time away
// (the test itself timing out would be the symptom; this assertion
// documents the contract).
func TestVirtualClockNoWallTime(t *testing.T) {
	clock := vclock.NewVirtualClock()
	dir := t.TempDir()
	cfg := testServiceConfig(dir)
	cfg.Pipeline.Clock = clock
	cfg.Pipeline.FaultProfile = chaosFaultProfile
	// One month suffices: any faulted scan sleeps backoff on the clock.
	cfg.Pipeline.Months = netsim.ScanMonths[:1]
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	stepUntilCaughtUp(t, svc, context.Background())
	if clock.Elapsed() == 0 {
		t.Fatal("faulted scans slept no virtual time — the clock is not wired through")
	}
}
