package relayd

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/relay-networks/privaterelay/internal/dnsserver"
	"github.com/relay-networks/privaterelay/internal/netsim"
	"github.com/relay-networks/privaterelay/internal/vclock"
)

// testServiceConfig builds a small-world, virtual-clock service over
// dir. The scale matches the core test world, so scans finish in
// milliseconds of wall time.
func testServiceConfig(dir string) ServiceConfig {
	return ServiceConfig{
		Pipeline: PipelineConfig{
			Seed:        6,
			Scale:       0.0008,
			StateDir:    dir,
			Clock:       vclock.NewVirtualClock(),
			Concurrency: 4,
		},
	}
}

// stepUntilCaughtUp drives the service to a fully-durable plan.
func stepUntilCaughtUp(t *testing.T, svc *Service, ctx context.Context) {
	t.Helper()
	for i := 0; i < 32 && !svc.CaughtUp(); i++ {
		if err := svc.Step(ctx); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if !svc.CaughtUp() {
		t.Fatal("service never caught up")
	}
}

func TestServiceLifecycle(t *testing.T) {
	dir := t.TempDir()
	cfg := testServiceConfig(dir)
	cfg.Pipeline.AtlasProbes = 120
	cfg.Pipeline.AtlasClusters = 40
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Before the first cycle: alive but not ready.
	if code := getCode(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d", code)
	}
	if code := getCode(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before first cycle = %d, want 503", code)
	}

	stepUntilCaughtUp(t, svc, context.Background())

	// Durable outputs: every month×domain dataset, every diff
	// generation, and the rendered report.
	months := svc.pipe.Months()
	for _, m := range months {
		for _, d := range []string{dnsserver.MaskDomain, dnsserver.MaskH2Domain} {
			if !svc.pipe.HasDataset(d, m) {
				t.Fatalf("missing dataset %s %s", d, m)
			}
		}
	}
	for g := 1; g < len(months); g++ {
		for _, d := range []string{dnsserver.MaskDomain, dnsserver.MaskH2Domain} {
			if _, err := LoadDiffFile(dir, d, g); err != nil {
				t.Fatalf("diff gen %d (%s): %v", g, d, err)
			}
		}
	}
	report, err := os.ReadFile(filepath.Join(dir, "reports", "table1.txt"))
	if err != nil {
		t.Fatal(err)
	}

	if code := getCode(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz after catch-up = %d", code)
	}
	if got := getBody(t, ts.URL+"/reports/table1.txt"); !bytes.Equal([]byte(got), report) {
		t.Fatal("/reports/table1.txt differs from the on-disk report")
	}
	if body := getBody(t, ts.URL+"/reports/"); !strings.Contains(body, "table1.txt") {
		t.Fatalf("report listing missing table1.txt:\n%s", body)
	}
	// Traversal is stopped either by the mux's path cleaning (404 after
	// redirect) or by the handler's own check (400) — never served.
	if code := getCode(t, ts.URL+"/reports/../datasets/x"); code == http.StatusOK {
		t.Fatalf("path escape served = %d", code)
	}

	// The acceptance surface: exchange rate, fault mix, breaker state,
	// pool hit rates and the serving-plane counters, all on one scrape.
	metrics := getBody(t, ts.URL+"/metrics")
	for _, series := range []string{
		`relayd_scan_exchange_rate{domain="` + dnsserver.MaskDomain + `"}`,
		`relayd_scan_faults_total{domain="` + dnsserver.MaskDomain + `",kind="timeout"}`,
		`relayd_breaker_open_total{campaign="scan"}`,
		`relayd_quarantine_total{campaign="scan"}`,
		`relayd_supervisor_state{campaign="scan"}`,
		`pool_hit_rate{pool="dnswire_message"}`,
		`pool_hit_rate{pool="masque_frame"}`,
		`masque_rejected_total{code="NO_RESERVATION"}`,
		`masque_frames_relayed_total`,
		`relayd_atlas_probes_total{outcome="answered"}`,
		`relayd_cycles_total`,
		`relayd_ready 1`,
		`relayd_caught_up 1`,
	} {
		if !strings.Contains(metrics, series) {
			t.Fatalf("metrics missing %s in:\n%s", series, metrics)
		}
	}

	// Graceful drain: readiness flips, the plane refuses sessions.
	svc.BeginDrain()
	if code := getCode(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain = %d, want 503", code)
	}
	if code := getCode(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz during drain = %d, want 200", code)
	}
}

// TestCorruptCheckpointRecovery is the durability satellite: a
// truncated checkpoint on disk is detected, quarantined with a
// .corrupt rename, counted in the metrics, and the campaign restarts
// from scratch — converging on a dataset byte-identical to a clean
// run's.
func TestCorruptCheckpointRecovery(t *testing.T) {
	clean := t.TempDir()
	cfgA := testServiceConfig(clean)
	cfgA.Pipeline.Months = netsim.ScanMonths[:1]
	svcA, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	defer svcA.Close()
	stepUntilCaughtUp(t, svcA, context.Background())
	janPath := svcA.pipe.DatasetPath(dnsserver.MaskDomain, svcA.pipe.Months()[0])
	want, err := os.ReadFile(janPath)
	if err != nil {
		t.Fatal(err)
	}

	// Plant a footer-less (truncated-write) checkpoint where the first
	// scan will try to resume.
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "checkpoints", "mask_icloud_com", "2022-01.ckpt")
	if err := os.MkdirAll(filepath.Dir(ckpt), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckpt, []byte("# checkpoint v1\nA 192.0.2.1,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	cfgB := testServiceConfig(dir)
	cfgB.Pipeline.Months = netsim.ScanMonths[:1]
	svcB, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	defer svcB.Close()
	stepUntilCaughtUp(t, svcB, context.Background())

	if _, err := os.Stat(ckpt + ".corrupt"); err != nil {
		t.Fatalf("corrupt checkpoint not quarantined: %v", err)
	}
	got := svcB.Registry().Counter("relayd_checkpoint_corrupt_total", "domain", dnsserver.MaskDomain).Value()
	if got != 1 {
		t.Fatalf("relayd_checkpoint_corrupt_total = %d, want 1", got)
	}
	rebuilt, err := os.ReadFile(svcB.pipe.DatasetPath(dnsserver.MaskDomain, svcB.pipe.Months()[0]))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rebuilt, want) {
		t.Fatal("dataset rebuilt after corruption differs from a clean run")
	}
}

// TestCorruptDiffRecovery: the same quarantine-and-recompute contract
// for diff generations.
func TestCorruptDiffRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := testServiceConfig(dir)
	cfg.Pipeline.Months = netsim.ScanMonths[:2]
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	stepUntilCaughtUp(t, svc, context.Background())

	path := diffPath(dir, dnsserver.MaskDomain, 1)
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate the generation file mid-row.
	if err := os.WriteFile(path, want[:len(want)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := svc.pipe.EnsureDiffs(len(svc.pipe.Months()) - 1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("corrupt diff not quarantined: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("recomputed diff differs from the original bytes")
	}
}

func getCode(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
