package relayd

import (
	"bytes"
	"strings"
	"testing"

	"github.com/relay-networks/privaterelay/internal/masque"
)

func TestRegistryDeterministicText(t *testing.T) {
	reg := NewRegistry()
	// Register out of order; exposition must sort by name then labels.
	reg.Counter("zeta_total").Add(3)
	reg.Gauge("alpha_rate", "domain", "b").Set(0.5)
	reg.Gauge("alpha_rate", "domain", "a").Set(1.5)
	reg.Counter("mid_total", "kind", "timeout", "domain", "x").Add(7)

	var first bytes.Buffer
	if err := reg.WriteText(&first); err != nil {
		t.Fatal(err)
	}
	want := `alpha_rate{domain="a"} 1.5
alpha_rate{domain="b"} 0.5
mid_total{domain="x",kind="timeout"} 7
zeta_total 3
`
	if first.String() != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", first.String(), want)
	}
	var second bytes.Buffer
	if err := reg.WriteText(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("two scrapes of identical state differ")
	}
}

func TestRegistryHandleIdentity(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "k", "v")
	b := reg.Counter("x_total", "k", "v")
	if a != b {
		t.Fatal("same series returned distinct handles")
	}
	a.Add(2)
	if b.Value() != 2 {
		t.Fatalf("value through second handle = %d, want 2", b.Value())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("type flip (counter → gauge) did not panic")
		}
	}()
	reg.Gauge("x_total", "k", "v")
}

// TestCollectPlaneCoversAllRejectCodes: every RejectCode — including
// codes with zero rejections — appears on the exported surface.
func TestCollectPlaneCoversAllRejectCodes(t *testing.T) {
	plane := masque.NewPlane(masque.PlaneConfig{})
	defer plane.Shutdown()
	sess, code := plane.Open("t")
	if code != masque.RejectNone {
		t.Fatalf("open rejected: %s", code)
	}
	defer plane.Close(sess)
	f := masque.AcquireFrame()
	defer masque.ReleaseFrame(f)
	f.Type = masque.FrameData
	f.SetPayload([]byte("x"))
	f.StreamID = sess.ID()
	if code := plane.Relay(f); code != masque.RejectNone {
		t.Fatalf("relay rejected: %s", code)
	}
	f.StreamID = 0
	if code := plane.Relay(f); code != masque.RejectNoReservation {
		t.Fatalf("ghost stream: %s, want NO_RESERVATION", code)
	}

	reg := NewRegistry()
	reg.CollectPlane(plane)
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for c := masque.RejectNone; c <= masque.RejectDraining; c++ {
		if !strings.Contains(out, `masque_rejected_total{code="`+c.String()+`"}`) {
			t.Fatalf("missing reject code %s in:\n%s", c, out)
		}
	}
	if !strings.Contains(out, `masque_rejected_total{code="NO_RESERVATION"} 1`) {
		t.Fatalf("NO_RESERVATION count not exported:\n%s", out)
	}
	if !strings.Contains(out, "masque_frames_relayed_total 1") {
		t.Fatalf("frame count not exported:\n%s", out)
	}
}

func TestCollectPoolsExportsHitRate(t *testing.T) {
	// Warm both pools so acquires is nonzero whatever ran before.
	m := masque.AcquireFrame()
	masque.ReleaseFrame(m)
	reg := NewRegistry()
	reg.CollectPools()
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		`pool_hit_rate{pool="dnswire_message"}`,
		`pool_hit_rate{pool="masque_frame"}`,
		`pool_acquires_total{pool="masque_frame"}`,
		`pool_misses_total{pool="masque_frame"}`,
	} {
		if !strings.Contains(buf.String(), series) {
			t.Fatalf("missing %s in:\n%s", series, buf.String())
		}
	}
}
