package dnsserver

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"
	"time"

	"github.com/relay-networks/privaterelay/internal/dnswire"
)

// DNS-over-TCP (RFC 1035 §4.2.2): messages are length-prefixed with a
// 16-bit big-endian size. UDP responses larger than the client's
// advertised buffer are truncated (TC bit), prompting a TCP retry —
// TruncatingUDPClient implements that classic fallback dance.

// WriteTCPMessage writes one length-prefixed DNS message.
func WriteTCPMessage(w io.Writer, msg *dnswire.Message) error {
	wire, err := msg.Encode(nil)
	if err != nil {
		return err
	}
	if len(wire) > 0xFFFF {
		return errors.New("dnsserver: message exceeds TCP length prefix")
	}
	var hdr [2]byte
	binary.BigEndian.PutUint16(hdr[:], uint16(len(wire)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(wire)
	return err
}

// ReadTCPMessage reads one length-prefixed DNS message.
func ReadTCPMessage(r io.Reader) (*dnswire.Message, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint16(hdr[:])
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return dnswire.Decode(buf)
}

// TCPServer serves a Handler over TCP, pipelining queries per connection.
type TCPServer struct {
	handler Handler
	ln      net.Listener
	wg      sync.WaitGroup
}

// ListenTCP starts a DNS-over-TCP server on addr.
func ListenTCP(addr string, handler Handler) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: tcp listen: %w", err)
	}
	s := &TCPServer{handler: handler, ln: ln}
	s.wg.Add(1)
	go s.serve()
	return s, nil
}

// Addr returns the bound address.
func (s *TCPServer) Addr() net.Addr { return s.ln.Addr() }

// Close stops the server.
func (s *TCPServer) Close() error {
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *TCPServer) serve() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func(conn net.Conn) {
			defer s.wg.Done()
			defer conn.Close()
			from := netip.Addr{}
			if ta, ok := conn.RemoteAddr().(*net.TCPAddr); ok {
				from = ta.AddrPort().Addr()
			}
			br := bufio.NewReader(conn)
			for {
				_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
				query, err := ReadTCPMessage(br)
				if err != nil {
					return
				}
				resp := s.handler.Handle(query, from)
				if resp == nil {
					return // dropped: close, client times out
				}
				err = WriteTCPMessage(conn, resp)
				// The wire bytes are a copy: the response is consumed.
				dnswire.ReleaseMessage(resp)
				if err != nil {
					return
				}
			}
		}(conn)
	}
}

// TCPClient queries a DNS-over-TCP server, one connection per exchange.
type TCPClient struct {
	ServerAddr string
	Timeout    time.Duration
}

// Exchange implements Exchanger over TCP.
func (c *TCPClient) Exchange(ctx context.Context, query *dnswire.Message) (*dnswire.Message, error) {
	timeout := c.Timeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	d := net.Dialer{Timeout: timeout}
	conn, err := d.DialContext(ctx, "tcp", c.ServerAddr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	deadline := time.Now().Add(timeout)
	if ctxDeadline, ok := ctx.Deadline(); ok && ctxDeadline.Before(deadline) {
		deadline = ctxDeadline
	}
	_ = conn.SetDeadline(deadline)
	if err := WriteTCPMessage(conn, query); err != nil {
		return nil, err
	}
	resp, err := ReadTCPMessage(conn)
	if err != nil {
		return nil, ErrTimeout
	}
	if resp.Header.ID != query.Header.ID {
		return nil, errors.New("dnsserver: TCP response ID mismatch")
	}
	return resp, nil
}

// TruncatingUDPClient exchanges over UDP first and retries over TCP when
// the response arrives truncated — the standard resolver behaviour that
// large ECS answer sets can trigger.
type TruncatingUDPClient struct {
	UDP *UDPClient
	TCP *TCPClient
	// Retried counts TCP fallbacks (for instrumentation).
	mu      sync.Mutex
	retried int64
}

// Exchange implements Exchanger with TC-bit fallback.
func (c *TruncatingUDPClient) Exchange(ctx context.Context, query *dnswire.Message) (*dnswire.Message, error) {
	resp, err := c.UDP.Exchange(ctx, query)
	if err != nil {
		return nil, err
	}
	if !resp.Header.Truncated {
		return resp, nil
	}
	// The truncated UDP response is superseded by the TCP answer.
	dnswire.ReleaseMessage(resp)
	c.mu.Lock()
	c.retried++
	c.mu.Unlock()
	return c.TCP.Exchange(ctx, query)
}

// Retried returns how many exchanges fell back to TCP.
func (c *TruncatingUDPClient) Retried() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retried
}

// TruncateForUDP returns the message to send over UDP given the
// requester's advertised buffer size: when the full encoding does not
// fit, the answer sections are dropped and the TC bit is set (RFC 2181
// §9 semantics — truncated responses should not be partially used).
func TruncateForUDP(msg *dnswire.Message, bufSize int) (*dnswire.Message, []byte, error) {
	if bufSize < 512 {
		bufSize = 512
	}
	wire, err := msg.Encode(nil)
	if err != nil {
		return nil, nil, err
	}
	if len(wire) <= bufSize {
		return msg, wire, nil
	}
	trunc := &dnswire.Message{
		Header:    msg.Header,
		Questions: msg.Questions,
		Edns:      msg.Edns,
	}
	trunc.Header.Truncated = true
	wire, err = trunc.Encode(nil)
	if err != nil {
		return nil, nil, err
	}
	return trunc, wire, nil
}
