package dnsserver

import (
	"bytes"
	"context"
	"net"
	"net/netip"
	"strings"
	"testing"
	"time"

	"github.com/relay-networks/privaterelay/internal/dnswire"
	"github.com/relay-networks/privaterelay/internal/iputil"
	"github.com/relay-networks/privaterelay/internal/netsim"
)

func TestTCPMessageFraming(t *testing.T) {
	q := dnswire.NewQuery(5, MaskDomain, dnswire.TypeA)
	var buf bytes.Buffer
	if err := WriteTCPMessage(&buf, q); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTCPMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.ID != 5 || got.Questions[0].Name != MaskDomain {
		t.Fatalf("framing round trip: %+v", got)
	}
	// Truncated stream.
	WriteTCPMessage(&buf, q)
	raw := buf.Bytes()
	if _, err := ReadTCPMessage(bytes.NewReader(raw[:3])); err == nil {
		t.Fatal("truncated TCP stream accepted")
	}
}

func TestTCPServerEndToEnd(t *testing.T) {
	w, srv := testSetup(t)
	ts, err := ListenTCP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	cl := &TCPClient{ServerAddr: ts.Addr().String(), Timeout: 2 * time.Second}
	subnet := clientSubnetOf(w, 0)
	resp, err := cl.Exchange(context.Background(), ecsQuery(9, MaskDomain, subnet))
	if err != nil {
		t.Fatal(err)
	}
	want := w.IngressAnswer(subnet, netsim.MonthApr, netsim.ProtoDefault)
	if len(resp.Answers) != len(want) || resp.Answers[0].A != want[0] {
		t.Fatalf("TCP answers = %v", resp.Answers)
	}
}

func TestTCPServerPipelining(t *testing.T) {
	w, srv := testSetup(t)
	ts, err := ListenTCP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	// Two queries on one connection.
	conn, err := newTCPConn(ts.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := uint16(1); i <= 2; i++ {
		if err := WriteTCPMessage(conn, ecsQuery(i, MaskDomain, clientSubnetOf(w, int(i)))); err != nil {
			t.Fatal(err)
		}
		resp, err := ReadTCPMessage(conn)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Header.ID != i {
			t.Fatalf("pipelined response %d has id %d", i, resp.Header.ID)
		}
	}
}

func TestTruncateForUDP(t *testing.T) {
	msg := &dnswire.Message{
		Header:    dnswire.Header{ID: 1, Response: true},
		Questions: []dnswire.Question{{Name: MaskDomain, Type: dnswire.TypeA, Class: dnswire.ClassIN}},
	}
	for i := 0; i < 8; i++ {
		msg.Answers = append(msg.Answers, dnswire.Record{
			Name: MaskDomain, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 60,
			A: netip.AddrFrom4([4]byte{17, 0, 0, byte(i)}),
		})
	}
	full, wire, err := TruncateForUDP(msg, 4096)
	if err != nil || full.Header.Truncated || len(full.Answers) != 8 {
		t.Fatalf("large buffer should not truncate: %v %d", err, len(wire))
	}
	// Force truncation with a tiny buffer (clamped to 512, so craft a
	// message beyond 512 bytes: add TXT padding).
	for i := 0; i < 40; i++ {
		msg.Answers = append(msg.Answers, dnswire.Record{
			Name: MaskDomain, Type: dnswire.TypeTXT, Class: dnswire.ClassIN, TTL: 60,
			TXT: []string{strings.Repeat("x", 60)},
		})
	}
	trunc, wire, err := TruncateForUDP(msg, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !trunc.Header.Truncated || len(trunc.Answers) != 0 {
		t.Fatalf("truncation failed: %+v", trunc.Header)
	}
	if len(wire) > 512 {
		t.Fatalf("truncated wire = %d bytes", len(wire))
	}
}

func TestTruncatingUDPClientFallsBackToTCP(t *testing.T) {
	w := netsim.NewWorld(netsim.Params{Seed: 3, Scale: 0.0005})
	srv := NewAuthServer(w, netsim.MonthApr, nil)
	us, err := ListenUDP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer us.Close()
	ts, err := ListenTCP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	cl := &TruncatingUDPClient{
		UDP: &UDPClient{ServerAddr: us.Addr().String(), Timeout: 2 * time.Second, Retries: 1},
		TCP: &TCPClient{ServerAddr: ts.Addr().String(), Timeout: 2 * time.Second},
	}
	// Announce a tiny UDP buffer so the 8-record ECS answer (161B wire,
	// under 512) still fits... craft a query whose response exceeds 512:
	// the mask answer fits, so instead verify the no-truncation path
	// first, then force TC by querying with many answers via a wrapper.
	subnet := iputil.NthSubnet(w.ClientASes[0].Prefixes[0], 24, 0)
	q := dnswire.NewQuery(21, MaskDomain, dnswire.TypeA).WithECS(subnet)
	resp, err := cl.Exchange(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Truncated || cl.Retried() != 0 {
		t.Fatal("small answer should not fall back")
	}

	// A padding handler forces responses over 512 bytes.
	padded := &paddingHandler{inner: srv}
	us2, err := ListenUDP("127.0.0.1:0", padded)
	if err != nil {
		t.Fatal(err)
	}
	defer us2.Close()
	ts2, err := ListenTCP("127.0.0.1:0", padded)
	if err != nil {
		t.Fatal(err)
	}
	defer ts2.Close()
	cl2 := &TruncatingUDPClient{
		UDP: &UDPClient{ServerAddr: us2.Addr().String(), Timeout: 2 * time.Second, Retries: 1},
		TCP: &TCPClient{ServerAddr: ts2.Addr().String(), Timeout: 2 * time.Second},
	}
	q2 := dnswire.NewQuery(22, MaskDomain, dnswire.TypeA).WithECS(subnet)
	q2.Edns.UDPSize = 512
	resp, err = cl2.Exchange(context.Background(), q2)
	if err != nil {
		t.Fatal(err)
	}
	if cl2.Retried() != 1 {
		t.Fatalf("TCP fallback count = %d, want 1", cl2.Retried())
	}
	if resp.Header.Truncated || len(resp.Answers) == 0 {
		t.Fatalf("TCP retry should deliver the full answer: %+v", resp.Header)
	}
}

// paddingHandler inflates every response past the 512-byte UDP floor.
type paddingHandler struct {
	inner Handler
}

func (p *paddingHandler) Handle(q *dnswire.Message, from netip.Addr) *dnswire.Message {
	resp := p.inner.Handle(q, from)
	if resp == nil || len(resp.Questions) == 0 {
		return resp
	}
	for i := 0; i < 5; i++ {
		resp.Answers = append(resp.Answers, dnswire.Record{
			Name: resp.Questions[0].Name, Type: dnswire.TypeTXT, Class: dnswire.ClassIN, TTL: 1,
			TXT: []string{strings.Repeat("p", 150)},
		})
	}
	return resp
}

// newTCPConn dials a plain TCP connection for pipelining tests.
func newTCPConn(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, 2*time.Second)
}
