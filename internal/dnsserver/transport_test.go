package dnsserver

import (
	"context"
	"net/netip"
	"sync"
	"testing"
	"time"

	"github.com/relay-networks/privaterelay/internal/dnswire"
)

// dropFirstHandler drops the first N queries (no response: the client
// times out) and answers afterwards, recording every transaction ID it
// saw.
type dropFirstHandler struct {
	mu   sync.Mutex
	drop int
	ids  []uint16
}

func (h *dropFirstHandler) Handle(q *dnswire.Message, _ netip.Addr) *dnswire.Message {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ids = append(h.ids, q.Header.ID)
	if len(h.ids) <= h.drop {
		return nil
	}
	return &dnswire.Message{
		Header:    dnswire.Header{ID: q.Header.ID, Response: true},
		Questions: q.Questions,
		Answers: []dnswire.Record{{
			Name: q.Questions[0].Name, Type: dnswire.TypeA, Class: dnswire.ClassIN,
			TTL: 60, A: netip.MustParseAddr("192.0.2.7"),
		}},
	}
}

func (h *dropFirstHandler) seen() []uint16 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]uint16(nil), h.ids...)
}

// TestUDPClientRetriesRegenerateID: each retry must be its own DNS
// transaction — fresh ID on the wire — while the answer returned to the
// caller still carries the caller's original ID.
func TestUDPClientRetriesRegenerateID(t *testing.T) {
	h := &dropFirstHandler{drop: 2}
	us, err := ListenUDP("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer us.Close()

	cl := &UDPClient{
		ServerAddr: us.Addr().String(),
		Timeout:    200 * time.Millisecond,
		Retries:    3,
		Backoff:    5 * time.Millisecond,
	}
	const origID = 0x1234
	q := dnswire.NewQuery(origID, "mask.icloud.com.", dnswire.TypeA)
	resp, err := cl.Exchange(context.Background(), q)
	if err != nil {
		t.Fatalf("exchange failed after retries: %v", err)
	}
	if resp.Header.ID != origID {
		t.Fatalf("caller sees ID %#x, want the original %#x", resp.Header.ID, origID)
	}
	ids := h.seen()
	if len(ids) < 3 {
		t.Fatalf("server saw %d attempts, want >= 3", len(ids))
	}
	if ids[0] != origID {
		t.Fatalf("first attempt ID %#x, want the original %#x", ids[0], origID)
	}
	distinct := map[uint16]bool{}
	for _, id := range ids {
		distinct[id] = true
	}
	if len(distinct) != len(ids) {
		t.Fatalf("attempt IDs not distinct: %v", ids)
	}
}

// TestRetryDelayShape pins the backoff curve: deterministic per
// (ID, attempt), inside [base/2, 8·base), jitter varying across IDs.
func TestRetryDelayShape(t *testing.T) {
	const base = 100 * time.Millisecond
	for attempt := 0; attempt < 8; attempt++ {
		d := retryDelay(base, attempt, 42)
		if d != retryDelay(base, attempt, 42) {
			t.Fatalf("attempt %d: nondeterministic delay", attempt)
		}
		if d < base/2 || d >= 8*base {
			t.Fatalf("attempt %d: delay %v outside [base/2, 8*base)", attempt, d)
		}
	}
	seen := map[time.Duration]bool{}
	for id := uint16(0); id < 16; id++ {
		seen[retryDelay(base, 1, id)] = true
	}
	if len(seen) < 8 {
		t.Fatalf("jitter barely varies across IDs: %d distinct of 16", len(seen))
	}
}
