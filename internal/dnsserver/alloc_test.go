//go:build !race

// Allocation-regression tests for the exchange hot path. They are
// excluded from race builds: the race runtime instruments allocations
// and makes testing.AllocsPerRun report instrumentation noise, so CI
// runs these in a separate non-race step (see the chaos job).

package dnsserver

import (
	"context"
	"net/netip"
	"testing"

	"github.com/relay-networks/privaterelay/internal/dnswire"
)

// TestHandleSteadyStateZeroAlloc pins the tentpole claim: once the
// record cache is warm and the message pool is primed, AuthServer.Handle
// performs zero heap allocations per ECS query. Any regression here
// (sync.Map boxing, a stray fmt call, slice growth) fails loudly rather
// than silently costing GC time at the 12M-subnet scale.
func TestHandleSteadyStateZeroAlloc(t *testing.T) {
	w, srv := testSetup(t)
	subnet := clientSubnetOf(w, 0)
	from := netip.MustParseAddr("198.51.100.1")
	q := ecsQuery(1, MaskDomain, subnet)
	// Warm the record cache and prime the pool with released messages.
	for i := 0; i < 16; i++ {
		dnswire.ReleaseMessage(srv.Handle(q, from))
	}
	avg := testing.AllocsPerRun(500, func() {
		resp := srv.Handle(q, from)
		if resp == nil {
			panic("query dropped")
		}
		dnswire.ReleaseMessage(resp)
	})
	if avg != 0 {
		t.Fatalf("AuthServer.Handle steady state: %.2f allocs/op, want 0", avg)
	}
}

// TestHandleSteadyStateZeroAllocAcrossSubnets repeats the pin while
// cycling through distinct cached subnets, so the zero-alloc property is
// not an artifact of hammering a single cache entry.
func TestHandleSteadyStateZeroAllocAcrossSubnets(t *testing.T) {
	w, srv := testSetup(t)
	from := netip.MustParseAddr("198.51.100.1")
	n := len(w.ClientASes)
	if n > 8 {
		n = 8
	}
	queries := make([]*dnswire.Message, n)
	for i := range queries {
		queries[i] = ecsQuery(uint16(i+1), MaskDomain, clientSubnetOf(w, i))
		for j := 0; j < 4; j++ {
			dnswire.ReleaseMessage(srv.Handle(queries[i], from))
		}
	}
	i := 0
	avg := testing.AllocsPerRun(500, func() {
		resp := srv.Handle(queries[i%n], from)
		if resp == nil {
			panic("query dropped")
		}
		dnswire.ReleaseMessage(resp)
		i++
	})
	if avg != 0 {
		t.Fatalf("Handle across %d subnets: %.2f allocs/op, want 0", n, avg)
	}
}

// TestMemTransportExchangeAllocBudget pins the full in-memory exchange
// (transport bookkeeping + Handle) to a small constant. It is the
// scanner's view of one query; the budget leaves no room for a per-op
// message, answer slice or map allocation to sneak back in.
func TestMemTransportExchangeAllocBudget(t *testing.T) {
	const budget = 0 // transport adds nothing on top of a warm Handle
	w, srv := testSetup(t)
	tr := &MemTransport{Handler: srv, Source: netip.MustParseAddr("198.51.100.53")}
	ctx := context.Background()
	q := ecsQuery(1, MaskDomain, clientSubnetOf(w, 0))
	for i := 0; i < 16; i++ {
		resp, err := tr.Exchange(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		dnswire.ReleaseMessage(resp)
	}
	avg := testing.AllocsPerRun(500, func() {
		resp, err := tr.Exchange(ctx, q)
		if err != nil {
			panic(err)
		}
		dnswire.ReleaseMessage(resp)
	})
	if avg > budget {
		t.Fatalf("MemTransport.Exchange: %.2f allocs/op, budget %d", avg, budget)
	}
}
