package dnsserver

import (
	"net/netip"
	"sync"
	"time"

	"github.com/relay-networks/privaterelay/internal/vclock"
)

// RateLimiter is a per-source token bucket. The paper's authoritative
// servers rate-limit aggressively enough that a full ECS scan stretches to
// 40 hours; the simulator reproduces the behaviour (queries over the limit
// are silently dropped, surfacing as client timeouts). Buckets are keyed
// on the source netip.Addr directly — stringifying the address would cost
// an allocation on every query the server handles.
type RateLimiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	buckets map[netip.Addr]*bucket
	clock   vclock.Clock
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewRateLimiter returns a limiter granting rate queries/second with the
// given burst per source key. The clock (faults.Clock and vclock.Clock
// are the same type) lets chaos tests drive refills on a VirtualClock;
// nil uses the wall clock.
func NewRateLimiter(rate, burst float64, clock vclock.Clock) *RateLimiter {
	if clock == nil {
		clock = vclock.WallClock{}
	}
	return &RateLimiter{
		rate:    rate,
		burst:   burst,
		buckets: make(map[netip.Addr]*bucket),
		clock:   clock,
	}
}

// Allow reports whether a query from key may be served now.
func (rl *RateLimiter) Allow(key netip.Addr) bool {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	now := rl.clock.Now()
	b, ok := rl.buckets[key]
	if !ok {
		b = &bucket{tokens: rl.burst, last: now}
		rl.buckets[key] = b
	}
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * rl.rate
		if b.tokens > rl.burst {
			b.tokens = rl.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}
