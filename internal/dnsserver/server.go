// Package dnsserver implements the authoritative DNS infrastructure the
// measurement study queries: the Route 53-style ECS-aware name server for
// the iCloud Private Relay domains, and a whoami service in the style of
// whoami.akamai.net that reveals the requesting resolver's address.
//
// Two transports are provided: a real UDP server speaking dnswire's wire
// format on a socket, and an in-memory transport for large-scale
// simulation where socket round-trips would dominate runtime. Both paths
// share the same Handler, so behaviour is identical.
package dnsserver

import (
	"encoding/binary"
	"net/netip"
	"sync"
	"sync/atomic"

	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/dnswire"
	"github.com/relay-networks/privaterelay/internal/epochmap"
	"github.com/relay-networks/privaterelay/internal/iputil"
	"github.com/relay-networks/privaterelay/internal/netsim"
)

// The service's domain names (§2 of the paper).
const (
	MaskDomain   = "mask.icloud.com."    // QUIC ingress
	MaskH2Domain = "mask-h2.icloud.com." // TCP-fallback ingress
	WhoamiDomain = "whoami.akamai.example."
)

// Handler answers a single DNS query arriving from the given source.
// A nil response means "drop" (the client sees a timeout).
type Handler interface {
	Handle(query *dnswire.Message, from netip.Addr) *dnswire.Message
}

// Stats counts server activity; all fields are updated atomically.
type Stats struct {
	Queries     atomic.Int64
	Answered    atomic.Int64
	RateLimited atomic.Int64
	NXDomain    atomic.Int64
}

// AuthServer is the authoritative name server for the Private Relay zone.
//
// Responses are assembled in pooled dnswire.Message values: the caller
// that receives a response owns it and may hand it back with
// dnswire.ReleaseMessage once consumed (see that function's ownership
// rules). Answer record sets are memoized per answer key, so the steady
// state serves entirely from shared read-only slices without allocating.
type AuthServer struct {
	world *netsim.World
	// month pins which scan month's fleet the server answers from.
	month bgp.Month
	// limiter is optional; nil disables rate limiting.
	limiter *RateLimiter
	// Stats exposes counters for scan instrumentation.
	Stats Stats
	// cache memoizes responses. It is shared by every AuthServer over the
	// same world (see cacheFor): records are pure functions of (world,
	// month, proto, qtype, subnet), so one materialization serves all
	// server instances and a fresh server starts warm.
	cache *serverCache
}

// recordKey identifies one memoized response record set. It mirrors
// netsim's answerCacheKey: serving is included because the March
// fallback ramp can split a covering-route key across operators, and
// known separates non-client subnets from a real key hashing to 0.
type recordKey struct {
	key     uint64
	known   bool
	serving bgp.ASN
	month   bgp.Month
	proto   netsim.Proto
	qtype   dnswire.Type
}

// fastKeyOf addresses the per-prefix front map: the packed exact client
// subnet and the month/plane folded injectively into one uint64 (40
// bits of prefix, 7+4 of month, 1 of plane) — a single-word map key
// probes several times faster than the equivalent struct. Reports false
// for inputs outside the packable ranges; those fall back to the class
// path.
func fastKeyOf(pack uint64, month bgp.Month, proto netsim.Proto) (uint64, bool) {
	y := month.Year - 1990
	if y < 0 || y > 127 || month.M < 0 || month.M > 15 || proto < 0 || proto > 1 {
		return 0, false
	}
	return pack<<12 | uint64(y)<<5 | uint64(month.M)<<1 | uint64(proto), true
}

// answerEntry is one memoized response: the shared read-only record
// slice and the ECS scope the server attaches for the answer's class.
type answerEntry struct {
	records []dnswire.Record
	scope   uint8
}

// serverCache holds the epoch-published response maps. class memoizes
// one entry per answer class (covering route or "both"-AS /24); fast
// fronts it with a per-client-prefix map so the steady-state A path is
// a single lock-free lookup.
type serverCache struct {
	fast  epochmap.Map[uint64, *answerEntry]
	class epochmap.Map[recordKey, *answerEntry]
}

// worldCaches shares one serverCache per world across AuthServer
// instances. Responses depend only on (world, month, proto, qtype,
// subnet) — never on per-server state — so sharing is sound and spares
// each new server instance the full warm-up sweep.
var worldCaches sync.Map // *netsim.World → *serverCache

func cacheFor(w *netsim.World) *serverCache {
	if c, ok := worldCaches.Load(w); ok {
		return c.(*serverCache)
	}
	c, _ := worldCaches.LoadOrStore(w, &serverCache{})
	return c.(*serverCache)
}

// packSubnet packs an IPv4 prefix into a fastKey pack value (address
// bits over prefix length). Reports false for non-IPv4 prefixes.
func packSubnet(subnet netip.Prefix) (uint64, bool) {
	addr := subnet.Addr()
	if !addr.Is4() {
		return 0, false
	}
	a4 := addr.As4()
	return uint64(binary.BigEndian.Uint32(a4[:]))<<8 | uint64(uint8(subnet.Bits())), true
}

// NewAuthServer builds the authoritative server backed by a world,
// answering with the fleet of the given month. limiter may be nil.
func NewAuthServer(w *netsim.World, month bgp.Month, limiter *RateLimiter) *AuthServer {
	return &AuthServer{world: w, month: month, limiter: limiter, cache: cacheFor(w)}
}

// SetMonth repoints the server at another scan month's fleet (the
// longitudinal scans reuse one server).
func (s *AuthServer) SetMonth(m bgp.Month) { s.month = m }

// Handle implements Handler.
func (s *AuthServer) Handle(query *dnswire.Message, from netip.Addr) *dnswire.Message {
	s.Stats.Queries.Add(1)
	if s.limiter != nil && !s.limiter.Allow(from) {
		s.Stats.RateLimited.Add(1)
		return nil // dropped: client times out
	}
	if len(query.Questions) != 1 {
		return s.failure(query, dnswire.RCodeFormErr)
	}
	q := query.Questions[0]
	name := dnswire.CanonicalName(q.Name)

	var proto netsim.Proto
	switch name {
	case MaskDomain:
		proto = netsim.ProtoDefault
	case MaskH2Domain:
		proto = netsim.ProtoFallback
	case WhoamiDomain:
		return s.whoami(query, from)
	default:
		s.Stats.NXDomain.Add(1)
		return s.failure(query, dnswire.RCodeNXDomain)
	}

	switch q.Type {
	case dnswire.TypeA:
		return s.answerA(query, from, proto)
	case dnswire.TypeAAAA:
		return s.answerAAAA(query, from, proto)
	default:
		// Authoritative for the name but no data of this type.
		m := s.respond(query, nil)
		m.Edns = nil
		return m
	}
}

// zoneName returns the canonical owner name records are served under.
// Cached records carry the canonical name rather than echoing the query's
// spelling, so one memoized slice serves every case variant.
func zoneName(proto netsim.Proto) string {
	if proto == netsim.ProtoFallback {
		return MaskH2Domain
	}
	return MaskDomain
}

// answerA serves the ECS-aware A response: record selection and scope come
// from the world's serving assignment for the client subnet. The warm
// path is one epoch-map lookup keyed on the packed subnet — no locks, no
// routing-table walks, no hashing beyond the map's own.
func (s *AuthServer) answerA(query *dnswire.Message, from netip.Addr, proto netsim.Proto) *dnswire.Message {
	subnet, hadECS := clientSubnet(query, from)
	if !subnet.IsValid() {
		m := s.respond(query, nil)
		m.Edns = nil
		return m
	}
	month := s.month
	pack, packed := packSubnet(subnet)
	var fk uint64
	if packed {
		fk, packed = fastKeyOf(pack, month, proto)
	}
	var e *answerEntry
	if packed {
		e, _ = s.cache.fast.Get(fk)
	}
	if e == nil {
		e = s.classAnswerA(subnet, month, proto)
		if packed {
			e = s.cache.fast.Put(fk, e)
		}
	}
	m := s.respond(query, e.records)
	if hadECS {
		// Never claim a scope wider than what was asked about... the
		// RFC permits it, and the skip optimization depends on it, so
		// the server reports the true validity prefix even when it is
		// shorter than the /24 source.
		ecsEcho(m, uint8(subnet.Bits()), e.scope, subnet.Addr())
	} else {
		m.Edns = nil
	}
	return m
}

// classAnswerA resolves subnet to its answer-class entry, materializing
// and memoizing the record set on a class miss.
func (s *AuthServer) classAnswerA(subnet netip.Prefix, month bgp.Month, proto netsim.Proto) *answerEntry {
	ac := s.world.AnswerClass(subnet, month, proto)
	rk := recordKey{ac.Key, ac.Known, ac.Serving, month, proto, dnswire.TypeA}
	if e, ok := s.cache.class.Get(rk); ok {
		return e
	}
	addrs := s.world.IngressAnswerFor(ac, month, proto)
	var records []dnswire.Record
	if len(addrs) > 0 {
		name := zoneName(proto)
		records = make([]dnswire.Record, 0, len(addrs))
		for _, a := range addrs {
			records = append(records, dnswire.Record{
				Name: name, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 60, A: a,
			})
		}
	}
	scope := ac.Scope
	if !ac.Known {
		scope = 24
	}
	return s.cache.class.Put(rk, &answerEntry{records: records, scope: scope})
}

// answerAAAA serves AAAA queries. Per the paper (§3), the server reports
// an ECS scope of zero for IPv6 — the answer is keyed on the resolver,
// not the client subnet, so ECS enumeration cannot work for AAAA.
func (s *AuthServer) answerAAAA(query *dnswire.Message, from netip.Addr, proto netsim.Proto) *dnswire.Message {
	key := iputil.HashAddr(from)
	rk := recordKey{key, true, 0, s.month, proto, dnswire.TypeAAAA}
	e, ok := s.cache.class.Get(rk)
	if !ok {
		addrs := s.world.IngressAnswerV6(key, rk.month, proto)
		var records []dnswire.Record
		if len(addrs) > 0 {
			name := zoneName(proto)
			records = make([]dnswire.Record, 0, len(addrs))
			for _, a := range addrs {
				records = append(records, dnswire.Record{
					Name: name, Type: dnswire.TypeAAAA, Class: dnswire.ClassIN, TTL: 60, AAAA: a,
				})
			}
		}
		e = s.cache.class.Put(rk, &answerEntry{records: records})
	}
	m := s.respond(query, e.records)
	if query.Edns != nil && query.Edns.ClientSubnet != nil {
		cs := query.Edns.ClientSubnet
		// Scope zero: the answer is valid for the entire address space.
		ecsEcho(m, cs.SourcePrefixLen, 0, cs.Addr)
	} else {
		m.Edns = nil
	}
	return m
}

// whoami answers with the requester's address as an A/AAAA record, like
// whoami.akamai.net — used to identify which resolver queries on behalf
// of a RIPE Atlas probe.
func (s *AuthServer) whoami(query *dnswire.Message, from netip.Addr) *dnswire.Message {
	q := query.Questions[0]
	var answers []dnswire.Record
	from = iputil.Canonical(from)
	switch {
	case q.Type == dnswire.TypeA && from.Is4():
		answers = append(answers, dnswire.Record{
			Name: q.Name, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 0, A: from,
		})
	case q.Type == dnswire.TypeAAAA && from.Is6():
		answers = append(answers, dnswire.Record{
			Name: q.Name, Type: dnswire.TypeAAAA, Class: dnswire.ClassIN, TTL: 0, AAAA: from,
		})
	}
	m := s.respond(query, answers)
	m.Edns = nil
	return m
}

// respond builds a NOERROR authoritative response in a pooled message.
// The returned message's Edns field still holds pool scratch: every
// caller must either fill it (ecsEcho) or set it to nil before the
// response leaves the server.
func (s *AuthServer) respond(query *dnswire.Message, answers []dnswire.Record) *dnswire.Message {
	s.Stats.Answered.Add(1)
	m := dnswire.AcquireMessage()
	m.Header = dnswire.Header{
		ID:               query.Header.ID,
		Response:         true,
		Authoritative:    true,
		RecursionDesired: query.Header.RecursionDesired,
		RCode:            dnswire.RCodeNoError,
	}
	m.Questions = query.Questions
	m.Answers = answers
	return m
}

// ecsEcho writes the response-side ECS option into m's pooled EDNS
// scratch, allocating only on a message's first use.
func ecsEcho(m *dnswire.Message, source, scope uint8, addr netip.Addr) {
	e := m.Edns
	if e == nil {
		e = new(dnswire.EDNS)
	}
	cs := e.ClientSubnet
	if cs == nil {
		cs = new(dnswire.ClientSubnet)
	}
	*e = dnswire.EDNS{UDPSize: 1232, ClientSubnet: cs}
	*cs = dnswire.ClientSubnet{SourcePrefixLen: source, ScopePrefixLen: scope, Addr: addr}
	m.Edns = e
}

// failure builds an authoritative error response.
func (s *AuthServer) failure(query *dnswire.Message, rc dnswire.RCode) *dnswire.Message {
	m := dnswire.AcquireMessage()
	m.Header = dnswire.Header{
		ID:            query.Header.ID,
		Response:      true,
		Authoritative: true,
		RCode:         rc,
	}
	m.Questions = query.Questions
	m.Edns = nil
	return m
}

// clientSubnet extracts the effective client subnet for answer selection:
// the ECS option when present (IPv4 only), otherwise the /24 around the
// transport source address. The bool reports whether ECS was present.
func clientSubnet(query *dnswire.Message, from netip.Addr) (netip.Prefix, bool) {
	if query.Edns != nil && query.Edns.ClientSubnet != nil {
		cs := query.Edns.ClientSubnet
		addr := iputil.Canonical(cs.Addr)
		if addr.Is4() {
			return cs.Prefix(), true
		}
		return netip.Prefix{}, true // v6 ECS carries no per-subnet signal here
	}
	from = iputil.Canonical(from)
	if from.Is4() {
		return iputil.Slash24(from), false
	}
	return netip.Prefix{}, false
}
