// Package dnsserver implements the authoritative DNS infrastructure the
// measurement study queries: the Route 53-style ECS-aware name server for
// the iCloud Private Relay domains, and a whoami service in the style of
// whoami.akamai.net that reveals the requesting resolver's address.
//
// Two transports are provided: a real UDP server speaking dnswire's wire
// format on a socket, and an in-memory transport for large-scale
// simulation where socket round-trips would dominate runtime. Both paths
// share the same Handler, so behaviour is identical.
package dnsserver

import (
	"net/netip"
	"sync/atomic"

	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/dnswire"
	"github.com/relay-networks/privaterelay/internal/iputil"
	"github.com/relay-networks/privaterelay/internal/netsim"
)

// The service's domain names (§2 of the paper).
const (
	MaskDomain   = "mask.icloud.com."    // QUIC ingress
	MaskH2Domain = "mask-h2.icloud.com." // TCP-fallback ingress
	WhoamiDomain = "whoami.akamai.example."
)

// Handler answers a single DNS query arriving from the given source.
// A nil response means "drop" (the client sees a timeout).
type Handler interface {
	Handle(query *dnswire.Message, from netip.Addr) *dnswire.Message
}

// Stats counts server activity; all fields are updated atomically.
type Stats struct {
	Queries     atomic.Int64
	Answered    atomic.Int64
	RateLimited atomic.Int64
	NXDomain    atomic.Int64
}

// AuthServer is the authoritative name server for the Private Relay zone.
type AuthServer struct {
	world *netsim.World
	// month pins which scan month's fleet the server answers from.
	month bgp.Month
	// limiter is optional; nil disables rate limiting.
	limiter *RateLimiter
	// Stats exposes counters for scan instrumentation.
	Stats Stats
}

// NewAuthServer builds the authoritative server backed by a world,
// answering with the fleet of the given month. limiter may be nil.
func NewAuthServer(w *netsim.World, month bgp.Month, limiter *RateLimiter) *AuthServer {
	return &AuthServer{world: w, month: month, limiter: limiter}
}

// SetMonth repoints the server at another scan month's fleet (the
// longitudinal scans reuse one server).
func (s *AuthServer) SetMonth(m bgp.Month) { s.month = m }

// Handle implements Handler.
func (s *AuthServer) Handle(query *dnswire.Message, from netip.Addr) *dnswire.Message {
	s.Stats.Queries.Add(1)
	if s.limiter != nil && !s.limiter.Allow(from.String()) {
		s.Stats.RateLimited.Add(1)
		return nil // dropped: client times out
	}
	if len(query.Questions) != 1 {
		return s.failure(query, dnswire.RCodeFormErr)
	}
	q := query.Questions[0]
	name := dnswire.CanonicalName(q.Name)

	var proto netsim.Proto
	switch name {
	case MaskDomain:
		proto = netsim.ProtoDefault
	case MaskH2Domain:
		proto = netsim.ProtoFallback
	case WhoamiDomain:
		return s.whoami(query, from)
	default:
		s.Stats.NXDomain.Add(1)
		return s.failure(query, dnswire.RCodeNXDomain)
	}

	switch q.Type {
	case dnswire.TypeA:
		return s.answerA(query, from, proto)
	case dnswire.TypeAAAA:
		return s.answerAAAA(query, from, proto)
	default:
		// Authoritative for the name but no data of this type.
		return s.respond(query, nil, nil)
	}
}

// answerA serves the ECS-aware A response: record selection and scope come
// from the world's serving assignment for the client subnet.
func (s *AuthServer) answerA(query *dnswire.Message, from netip.Addr, proto netsim.Proto) *dnswire.Message {
	subnet, hadECS := clientSubnet(query, from)
	var answers []dnswire.Record
	var edns *dnswire.EDNS

	if subnet.IsValid() {
		addrs := s.world.IngressAnswer(subnet, s.month, proto)
		name := query.Questions[0].Name
		for _, a := range addrs {
			answers = append(answers, dnswire.Record{
				Name: name, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 60, A: a,
			})
		}
		if hadECS {
			scope, ok := s.world.AnswerScope(subnet)
			if !ok {
				scope = 24
			}
			// Never claim a scope wider than what was asked about... the
			// RFC permits it, and the skip optimization depends on it, so
			// the server reports the true validity prefix even when it is
			// shorter than the /24 source.
			edns = &dnswire.EDNS{
				UDPSize: 1232,
				ClientSubnet: &dnswire.ClientSubnet{
					SourcePrefixLen: uint8(subnet.Bits()),
					ScopePrefixLen:  scope,
					Addr:            subnet.Addr(),
				},
			}
		}
	}
	return s.respond(query, answers, edns)
}

// answerAAAA serves AAAA queries. Per the paper (§3), the server reports
// an ECS scope of zero for IPv6 — the answer is keyed on the resolver,
// not the client subnet, so ECS enumeration cannot work for AAAA.
func (s *AuthServer) answerAAAA(query *dnswire.Message, from netip.Addr, proto netsim.Proto) *dnswire.Message {
	key := iputil.HashAddr(from)
	addrs := s.world.IngressAnswerV6(key, s.month, proto)
	name := query.Questions[0].Name
	var answers []dnswire.Record
	for _, a := range addrs {
		answers = append(answers, dnswire.Record{
			Name: name, Type: dnswire.TypeAAAA, Class: dnswire.ClassIN, TTL: 60, AAAA: a,
		})
	}
	var edns *dnswire.EDNS
	if query.Edns != nil && query.Edns.ClientSubnet != nil {
		cs := query.Edns.ClientSubnet
		edns = &dnswire.EDNS{
			UDPSize: 1232,
			ClientSubnet: &dnswire.ClientSubnet{
				SourcePrefixLen: cs.SourcePrefixLen,
				ScopePrefixLen:  0, // valid for the entire address space
				Addr:            cs.Addr,
			},
		}
	}
	return s.respond(query, answers, edns)
}

// whoami answers with the requester's address as an A/AAAA record, like
// whoami.akamai.net — used to identify which resolver queries on behalf
// of a RIPE Atlas probe.
func (s *AuthServer) whoami(query *dnswire.Message, from netip.Addr) *dnswire.Message {
	q := query.Questions[0]
	var answers []dnswire.Record
	from = iputil.Canonical(from)
	switch {
	case q.Type == dnswire.TypeA && from.Is4():
		answers = append(answers, dnswire.Record{
			Name: q.Name, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 0, A: from,
		})
	case q.Type == dnswire.TypeAAAA && from.Is6():
		answers = append(answers, dnswire.Record{
			Name: q.Name, Type: dnswire.TypeAAAA, Class: dnswire.ClassIN, TTL: 0, AAAA: from,
		})
	}
	return s.respond(query, answers, nil)
}

// respond builds a NOERROR authoritative response.
func (s *AuthServer) respond(query *dnswire.Message, answers []dnswire.Record, edns *dnswire.EDNS) *dnswire.Message {
	s.Stats.Answered.Add(1)
	return &dnswire.Message{
		Header: dnswire.Header{
			ID:               query.Header.ID,
			Response:         true,
			Authoritative:    true,
			RecursionDesired: query.Header.RecursionDesired,
			RCode:            dnswire.RCodeNoError,
		},
		Questions: query.Questions,
		Answers:   answers,
		Edns:      edns,
	}
}

// failure builds an authoritative error response.
func (s *AuthServer) failure(query *dnswire.Message, rc dnswire.RCode) *dnswire.Message {
	return &dnswire.Message{
		Header: dnswire.Header{
			ID:            query.Header.ID,
			Response:      true,
			Authoritative: true,
			RCode:         rc,
		},
		Questions: query.Questions,
	}
}

// clientSubnet extracts the effective client subnet for answer selection:
// the ECS option when present (IPv4 only), otherwise the /24 around the
// transport source address. The bool reports whether ECS was present.
func clientSubnet(query *dnswire.Message, from netip.Addr) (netip.Prefix, bool) {
	if query.Edns != nil && query.Edns.ClientSubnet != nil {
		cs := query.Edns.ClientSubnet
		addr := iputil.Canonical(cs.Addr)
		if addr.Is4() {
			return cs.Prefix(), true
		}
		return netip.Prefix{}, true // v6 ECS carries no per-subnet signal here
	}
	from = iputil.Canonical(from)
	if from.Is4() {
		return iputil.Slash24(from), false
	}
	return netip.Prefix{}, false
}
