package dnsserver

import (
	"context"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/relay-networks/privaterelay/internal/dnswire"
	"github.com/relay-networks/privaterelay/internal/iputil"
	"github.com/relay-networks/privaterelay/internal/netsim"
	"github.com/relay-networks/privaterelay/internal/vclock"
)

func testSetup(t testing.TB) (*netsim.World, *AuthServer) {
	t.Helper()
	w := netsim.NewWorld(netsim.Params{Seed: 3, Scale: 0.0005})
	return w, NewAuthServer(w, netsim.MonthApr, nil)
}

func clientSubnetOf(w *netsim.World, i int) netip.Prefix {
	return iputil.NthSubnet(w.ClientASes[i].Prefixes[0], 24, 0)
}

func ecsQuery(id uint16, domain string, subnet netip.Prefix) *dnswire.Message {
	return dnswire.NewQuery(id, domain, dnswire.TypeA).WithECS(subnet)
}

func TestAuthServerECSAnswer(t *testing.T) {
	w, srv := testSetup(t)
	subnet := clientSubnetOf(w, 0)
	resp := srv.Handle(ecsQuery(1, MaskDomain, subnet), netip.MustParseAddr("198.51.100.1"))
	if resp == nil {
		t.Fatal("no response")
	}
	if resp.Header.RCode != dnswire.RCodeNoError || !resp.Header.Authoritative {
		t.Fatalf("header: %+v", resp.Header)
	}
	if len(resp.Answers) == 0 || len(resp.Answers) > 8 {
		t.Fatalf("answers = %d", len(resp.Answers))
	}
	want := w.IngressAnswer(subnet, netsim.MonthApr, netsim.ProtoDefault)
	if len(want) != len(resp.Answers) {
		t.Fatalf("answer size %d, world says %d", len(resp.Answers), len(want))
	}
	for i, r := range resp.Answers {
		if r.A != want[i] {
			t.Fatalf("answer %d = %v, want %v", i, r.A, want[i])
		}
	}
	if resp.Edns == nil || resp.Edns.ClientSubnet == nil {
		t.Fatal("response missing ECS echo")
	}
	if resp.Edns.ClientSubnet.SourcePrefixLen != 24 {
		t.Fatalf("source len = %d", resp.Edns.ClientSubnet.SourcePrefixLen)
	}
}

func TestAuthServerScopeShorterForSingleOperatorAS(t *testing.T) {
	w, srv := testSetup(t)
	for i, c := range w.ClientASes {
		if c.Group == netsim.GroupBoth {
			continue
		}
		subnet := clientSubnetOf(w, i)
		resp := srv.Handle(ecsQuery(2, MaskDomain, subnet), netip.MustParseAddr("198.51.100.1"))
		scope := resp.Edns.ClientSubnet.ScopePrefixLen
		if int(scope) != c.Prefixes[0].Bits() {
			t.Fatalf("scope = %d, want route length %d", scope, c.Prefixes[0].Bits())
		}
		return
	}
	t.Skip("no single-operator AS at this scale")
}

func TestAuthServerFallbackDomain(t *testing.T) {
	w, srv := testSetup(t)
	subnet := clientSubnetOf(w, 0)
	resp := srv.Handle(ecsQuery(3, MaskH2Domain, subnet), netip.MustParseAddr("198.51.100.1"))
	want := w.IngressAnswer(subnet, netsim.MonthApr, netsim.ProtoFallback)
	if len(resp.Answers) != len(want) {
		t.Fatalf("fallback answers = %d, want %d", len(resp.Answers), len(want))
	}
	for i := range want {
		if resp.Answers[i].A != want[i] {
			t.Fatal("fallback answers differ from world")
		}
	}
}

func TestAuthServerNXDomain(t *testing.T) {
	_, srv := testSetup(t)
	resp := srv.Handle(dnswire.NewQuery(4, "other.example.com", dnswire.TypeA), netip.MustParseAddr("198.51.100.1"))
	if resp.Header.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("rcode = %v", resp.Header.RCode)
	}
	if srv.Stats.NXDomain.Load() != 1 {
		t.Fatal("NXDomain counter not bumped")
	}
}

func TestAuthServerNoDataForOtherTypes(t *testing.T) {
	_, srv := testSetup(t)
	resp := srv.Handle(dnswire.NewQuery(5, MaskDomain, dnswire.TypeTXT), netip.MustParseAddr("198.51.100.1"))
	if resp.Header.RCode != dnswire.RCodeNoError || len(resp.Answers) != 0 {
		t.Fatalf("want NOERROR/no-data, got %v/%d", resp.Header.RCode, len(resp.Answers))
	}
}

func TestAuthServerFormErr(t *testing.T) {
	_, srv := testSetup(t)
	resp := srv.Handle(&dnswire.Message{Header: dnswire.Header{ID: 6}}, netip.MustParseAddr("198.51.100.1"))
	if resp.Header.RCode != dnswire.RCodeFormErr {
		t.Fatalf("rcode = %v", resp.Header.RCode)
	}
}

func TestAuthServerAAAAScopeZero(t *testing.T) {
	_, srv := testSetup(t)
	q := dnswire.NewQuery(7, MaskDomain, dnswire.TypeAAAA).WithECS(netip.MustParsePrefix("2001:db8::/48"))
	resp := srv.Handle(q, netip.MustParseAddr("2001:db8::53"))
	if len(resp.Answers) == 0 {
		t.Fatal("no AAAA answers")
	}
	for _, r := range resp.Answers {
		if !r.AAAA.Is6() {
			t.Fatalf("bad AAAA %v", r.AAAA)
		}
	}
	if resp.Edns == nil || resp.Edns.ClientSubnet == nil || resp.Edns.ClientSubnet.ScopePrefixLen != 0 {
		t.Fatalf("AAAA scope must be 0 (whole address space), got %+v", resp.Edns)
	}
}

func TestAuthServerAAAAKeyedByResolver(t *testing.T) {
	_, srv := testSetup(t)
	q := func(id uint16) *dnswire.Message { return dnswire.NewQuery(id, MaskDomain, dnswire.TypeAAAA) }
	a := srv.Handle(q(8), netip.MustParseAddr("2001:db8::1"))
	b := srv.Handle(q(9), netip.MustParseAddr("2001:db8::1"))
	if len(a.Answers) != len(b.Answers) || a.Answers[0].AAAA != b.Answers[0].AAAA {
		t.Fatal("same resolver should get stable answers")
	}
	// Different resolvers usually see different records; check that at
	// least one of a handful differs.
	differs := false
	for i := 0; i < 8 && !differs; i++ {
		other := srv.Handle(q(10), netip.AddrFrom16([16]byte{0x20, 0x01, 0xd, 0xb8, byte(i), 1}))
		if other.Answers[0].AAAA != a.Answers[0].AAAA {
			differs = true
		}
	}
	if !differs {
		t.Fatal("all resolvers see identical AAAA sets")
	}
}

func TestAuthServerMonthSwitch(t *testing.T) {
	w, srv := testSetup(t)
	subnet := clientSubnetOf(w, 0)
	srv.SetMonth(netsim.MonthJan)
	jan := srv.Handle(ecsQuery(11, MaskDomain, subnet), netip.MustParseAddr("198.51.100.1"))
	srv.SetMonth(netsim.MonthApr)
	apr := srv.Handle(ecsQuery(12, MaskDomain, subnet), netip.MustParseAddr("198.51.100.1"))
	sameAll := len(jan.Answers) == len(apr.Answers)
	if sameAll {
		for i := range jan.Answers {
			if jan.Answers[i].A != apr.Answers[i].A {
				sameAll = false
				break
			}
		}
	}
	if sameAll {
		t.Fatal("answers identical across months; fleet evolution invisible")
	}
}

func TestWhoami(t *testing.T) {
	_, srv := testSetup(t)
	from := netip.MustParseAddr("9.9.9.9")
	resp := srv.Handle(dnswire.NewQuery(13, WhoamiDomain, dnswire.TypeA), from)
	if len(resp.Answers) != 1 || resp.Answers[0].A != from {
		t.Fatalf("whoami = %+v", resp.Answers)
	}
	from6 := netip.MustParseAddr("2620:fe::fe")
	resp6 := srv.Handle(dnswire.NewQuery(14, WhoamiDomain, dnswire.TypeAAAA), from6)
	if len(resp6.Answers) != 1 || resp6.Answers[0].AAAA != from6 {
		t.Fatalf("whoami v6 = %+v", resp6.Answers)
	}
	// Family mismatch → no data.
	if got := srv.Handle(dnswire.NewQuery(15, WhoamiDomain, dnswire.TypeAAAA), from); len(got.Answers) != 0 {
		t.Fatal("whoami AAAA from v4 source should be empty")
	}
}

func TestRateLimiting(t *testing.T) {
	w := netsim.NewWorld(netsim.Params{Seed: 3, Scale: 0.0005})
	clock := vclock.NewVirtualClock()
	rl := NewRateLimiter(10, 2, clock)
	srv := NewAuthServer(w, netsim.MonthApr, rl)
	subnet := clientSubnetOf(w, 0)
	from := netip.MustParseAddr("198.51.100.1")

	if srv.Handle(ecsQuery(1, MaskDomain, subnet), from) == nil {
		t.Fatal("first query dropped")
	}
	if srv.Handle(ecsQuery(2, MaskDomain, subnet), from) == nil {
		t.Fatal("second query dropped (burst=2)")
	}
	if srv.Handle(ecsQuery(3, MaskDomain, subnet), from) != nil {
		t.Fatal("third query served beyond burst")
	}
	if srv.Stats.RateLimited.Load() != 1 {
		t.Fatalf("rate-limited counter = %d", srv.Stats.RateLimited.Load())
	}
	// Advance time: tokens refill at 10/s.
	if err := clock.Sleep(context.Background(), 200*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if srv.Handle(ecsQuery(4, MaskDomain, subnet), from) == nil {
		t.Fatal("query after refill dropped")
	}
	// A different source has its own bucket.
	if srv.Handle(ecsQuery(5, MaskDomain, subnet), netip.MustParseAddr("198.51.100.2")) == nil {
		t.Fatal("other source rate limited")
	}
}

// TestRateLimiterVirtualClock drives the limiter purely on a
// VirtualClock: the refill schedule is a function of ticked time only,
// so chaos tests can starve and recover a source without wall delays.
func TestRateLimiterVirtualClock(t *testing.T) {
	ctx := context.Background()
	clock := vclock.NewVirtualClock()
	rl := NewRateLimiter(5, 3, clock) // 5 tokens/s, burst 3
	key := netip.MustParseAddr("203.0.113.7")

	for i := 0; i < 3; i++ {
		if !rl.Allow(key) {
			t.Fatalf("burst query %d refused", i)
		}
	}
	if rl.Allow(key) {
		t.Fatal("query beyond burst allowed")
	}
	// 200ms of virtual time buys exactly one token at 5/s.
	if err := clock.Sleep(ctx, 200*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !rl.Allow(key) {
		t.Fatal("refilled token refused")
	}
	if rl.Allow(key) {
		t.Fatal("second query after a one-token refill allowed")
	}
	// A long virtual sleep caps the bucket at burst, not rate*elapsed.
	if err := clock.Sleep(ctx, time.Hour); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !rl.Allow(key) {
			t.Fatalf("post-cap query %d refused", i)
		}
	}
	if rl.Allow(key) {
		t.Fatal("bucket exceeded burst after long sleep")
	}
}

func TestMemTransport(t *testing.T) {
	w, srv := testSetup(t)
	mt := &MemTransport{Handler: srv, Source: netip.MustParseAddr("198.51.100.1")}
	resp, err := mt.Exchange(context.Background(), ecsQuery(1, MaskDomain, clientSubnetOf(w, 0)))
	if err != nil || len(resp.Answers) == 0 {
		t.Fatalf("Exchange: %v / %d answers", err, len(resp.Answers))
	}
	// Context cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := mt.Exchange(ctx, ecsQuery(2, MaskDomain, clientSubnetOf(w, 0))); err == nil {
		t.Fatal("cancelled context accepted")
	}
}

func TestMemTransportLoss(t *testing.T) {
	w, srv := testSetup(t)
	mt := &MemTransport{Handler: srv, Source: netip.MustParseAddr("198.51.100.1"), LossEvery: 3}
	losses := 0
	for i := 0; i < 9; i++ {
		if _, err := mt.Exchange(context.Background(), ecsQuery(uint16(i), MaskDomain, clientSubnetOf(w, 0))); err != nil {
			losses++
		}
	}
	if losses != 3 {
		t.Fatalf("losses = %d, want 3", losses)
	}
}

// TestMemTransportLossConcurrent drives the transport from many
// goroutines: the atomic loss counter must drop exactly every n-th query
// in aggregate, with no serialization and (under -race) no data races.
func TestMemTransportLossConcurrent(t *testing.T) {
	w, srv := testSetup(t)
	const workers, perWorker, lossEvery = 8, 60, 3
	mt := &MemTransport{Handler: srv, Source: netip.MustParseAddr("198.51.100.1"), LossEvery: lossEvery}
	var losses atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				q := ecsQuery(uint16(g*perWorker+i), MaskDomain, clientSubnetOf(w, 0))
				if _, err := mt.Exchange(context.Background(), q); err != nil {
					losses.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if want := int64(workers * perWorker / lossEvery); losses.Load() != want {
		t.Fatalf("losses = %d, want %d", losses.Load(), want)
	}
}

func TestUDPServerEndToEnd(t *testing.T) {
	w, srv := testSetup(t)
	us, err := ListenUDP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer us.Close()

	cl := &UDPClient{ServerAddr: us.Addr().String(), Timeout: 2 * time.Second, Retries: 1}
	subnet := clientSubnetOf(w, 0)
	resp, err := cl.Exchange(context.Background(), ecsQuery(77, MaskDomain, subnet))
	if err != nil {
		t.Fatalf("UDP exchange: %v", err)
	}
	if resp.Header.ID != 77 || len(resp.Answers) == 0 {
		t.Fatalf("UDP response: id=%d answers=%d", resp.Header.ID, len(resp.Answers))
	}
	want := w.IngressAnswer(subnet, netsim.MonthApr, netsim.ProtoDefault)
	if resp.Answers[0].A != want[0] {
		t.Fatal("UDP answer differs from in-memory answer")
	}
	// NXDOMAIN over the wire.
	resp, err = cl.Exchange(context.Background(), dnswire.NewQuery(78, "nope.example.", dnswire.TypeA))
	if err != nil || resp.Header.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("NXDOMAIN over UDP: %v %v", err, resp)
	}
}

func TestUDPClientTimeout(t *testing.T) {
	// Rate limiter with zero rate drops everything → client must time out.
	w := netsim.NewWorld(netsim.Params{Seed: 3, Scale: 0.0005})
	rl := NewRateLimiter(0, 0, nil)
	srv := NewAuthServer(w, netsim.MonthApr, rl)
	us, err := ListenUDP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer us.Close()
	cl := &UDPClient{ServerAddr: us.Addr().String(), Timeout: 100 * time.Millisecond, Retries: 0}
	_, err = cl.Exchange(context.Background(), ecsQuery(1, MaskDomain, clientSubnetOf(w, 0)))
	if err == nil {
		t.Fatal("expected timeout")
	}
}

func BenchmarkAuthServerHandle(b *testing.B) {
	w := netsim.NewWorld(netsim.Params{Seed: 3, Scale: 0.0005})
	srv := NewAuthServer(w, netsim.MonthApr, nil)
	subnet := clientSubnetOf(w, 0)
	from := netip.MustParseAddr("198.51.100.1")
	q := ecsQuery(1, MaskDomain, subnet)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp := srv.Handle(q, from)
		if resp == nil {
			b.Fatal("dropped")
		}
		dnswire.ReleaseMessage(resp)
	}
}

// BenchmarkExchangeMemTransport measures the scanner's view of one
// in-memory query/response exchange, the per-subnet unit of work the
// 12M-subnet scan multiplies. With the record cache warm this is the
// steady state, and allocs/op is the headline number.
func BenchmarkExchangeMemTransport(b *testing.B) {
	w := netsim.NewWorld(netsim.Params{Seed: 3, Scale: 0.0005})
	srv := NewAuthServer(w, netsim.MonthApr, nil)
	tr := &MemTransport{Handler: srv, Source: netip.MustParseAddr("198.51.100.53")}
	ctx := context.Background()
	q := ecsQuery(1, MaskDomain, clientSubnetOf(w, 0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := tr.Exchange(ctx, q)
		if err != nil {
			b.Fatal(err)
		}
		dnswire.ReleaseMessage(resp)
	}
}

// BenchmarkExchangeUDP measures the full wire round trip over a loopback
// socket: pooled receive buffers and the worker pool on the server side,
// the reused socket on the client side. Syscalls dominate ns/op; the
// interesting column is again allocs/op.
func BenchmarkExchangeUDP(b *testing.B) {
	w := netsim.NewWorld(netsim.Params{Seed: 3, Scale: 0.0005})
	srv := NewAuthServer(w, netsim.MonthApr, nil)
	us, err := ListenUDP("127.0.0.1:0", srv)
	if err != nil {
		b.Fatal(err)
	}
	defer us.Close()
	client := &UDPClient{ServerAddr: us.Addr().String(), Timeout: 5 * time.Second}
	ctx := context.Background()
	q := ecsQuery(1, MaskDomain, clientSubnetOf(w, 0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Exchange(ctx, q)
		if err != nil {
			b.Fatal(err)
		}
		dnswire.ReleaseMessage(resp)
	}
}

func TestUDPServerConcurrentClients(t *testing.T) {
	w, srv := testSetup(t)
	us, err := ListenUDP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer us.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl := &UDPClient{ServerAddr: us.Addr().String(), Timeout: 3 * time.Second, Retries: 2}
			for i := 0; i < 20; i++ {
				subnet := clientSubnetOf(w, (g+i)%len(w.ClientASes))
				resp, err := cl.Exchange(context.Background(), ecsQuery(uint16(g*100+i), MaskDomain, subnet))
				if err != nil {
					errs <- err
					return
				}
				if len(resp.Answers) == 0 {
					errs <- ErrTimeout
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent UDP exchange: %v", err)
	}
}
