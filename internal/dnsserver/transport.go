package dnsserver

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/relay-networks/privaterelay/internal/dnswire"
	"github.com/relay-networks/privaterelay/internal/iputil"
)

// Exchanger performs one DNS query/response exchange. Implementations:
// MemTransport (in-process) and UDPClient (wire format over a socket).
type Exchanger interface {
	Exchange(ctx context.Context, query *dnswire.Message) (*dnswire.Message, error)
}

// ErrTimeout is returned when the server drops a query (rate limiting or
// simulated loss) and the client gives up.
var ErrTimeout = errors.New("dnsserver: query timed out")

// MemTransport calls a Handler directly, impersonating a given source
// address. It optionally injects loss for robustness testing.
type MemTransport struct {
	Handler Handler
	// Source is the simulated transport source address.
	Source netip.Addr
	// LossEvery drops every n-th query when > 0 (deterministic loss).
	LossEvery int

	// n counts queries atomically so concurrent scan workers never
	// serialize on the transport itself.
	n atomic.Int64
}

// Exchange implements Exchanger.
func (m *MemTransport) Exchange(ctx context.Context, query *dnswire.Message) (*dnswire.Message, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if m.LossEvery > 0 {
		if m.n.Add(1)%int64(m.LossEvery) == 0 {
			return nil, ErrTimeout
		}
	}
	resp := m.Handler.Handle(query, m.Source)
	if resp == nil {
		return nil, ErrTimeout
	}
	return resp, nil
}

// UDPServer serves a Handler over a UDP socket using the DNS wire format.
// Packets are read into pooled buffers and dispatched to a small worker
// pool (instead of a goroutine per packet); each worker reuses one decode
// message, one encoder and one wire buffer across packets. The handler
// must not retain the query message past its return — workers reuse it.
type UDPServer struct {
	handler Handler
	conn    net.PacketConn
	wg      sync.WaitGroup
	closed  chan struct{}
	work    chan udpPacket
}

// udpPacket is one received datagram handed from the read loop to a
// worker; buf returns to pktPool once the worker is done with it.
type udpPacket struct {
	buf   *[]byte
	n     int
	raddr net.Addr
}

// pktPool recycles receive buffers; dnswire never retains references
// into the input buffer, so a buffer is free again right after decode.
var pktPool = sync.Pool{New: func() any {
	b := make([]byte, 4096)
	return &b
}}

// ListenUDP starts a UDP server on addr (e.g. "127.0.0.1:0") and begins
// serving. Close must be called to release the socket.
func ListenUDP(addr string, handler Handler) (*UDPServer, error) {
	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: listen: %w", err)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	s := &UDPServer{
		handler: handler,
		conn:    conn,
		closed:  make(chan struct{}),
		work:    make(chan udpPacket, 4*workers),
	}
	s.wg.Add(1 + workers)
	go s.serve()
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Addr returns the server's bound address.
func (s *UDPServer) Addr() net.Addr { return s.conn.LocalAddr() }

// Close stops the server and waits for the read loop and workers to exit.
func (s *UDPServer) Close() error {
	close(s.closed)
	err := s.conn.Close()
	s.wg.Wait()
	return err
}

func (s *UDPServer) serve() {
	defer s.wg.Done()
	defer close(s.work) // workers drain what's queued, then exit
	for {
		bp := pktPool.Get().(*[]byte)
		n, raddr, err := s.conn.ReadFrom(*bp)
		if err != nil {
			pktPool.Put(bp)
			select {
			case <-s.closed:
				return
			default:
			}
			continue // transient read error: keep serving
		}
		s.work <- udpPacket{buf: bp, n: n, raddr: raddr}
	}
}

// udpWorker is one worker's reusable scratch: decode target, truncation
// shell, encoder state and wire buffer.
type udpWorker struct {
	query dnswire.Message
	trunc dnswire.Message
	enc   dnswire.Encoder
	wire  []byte
}

func (s *UDPServer) worker() {
	defer s.wg.Done()
	var w udpWorker
	for pkt := range s.work {
		s.handlePacket(&w, pkt)
		pktPool.Put(pkt.buf)
	}
}

func (s *UDPServer) handlePacket(w *udpWorker, pkt udpPacket) {
	if err := dnswire.DecodeInto((*pkt.buf)[:pkt.n], &w.query); err != nil {
		return // malformed: drop, as real servers do for garbage
	}
	from := netip.Addr{}
	if ua, ok := pkt.raddr.(*net.UDPAddr); ok {
		from = ua.AddrPort().Addr()
	}
	resp := s.handler.Handle(&w.query, from)
	if resp == nil {
		return
	}
	// Honor the requester's advertised UDP buffer: oversize responses are
	// truncated with TC set, prompting the client's TCP retry (RFC 2181
	// §9 semantics — the answer sections are dropped entirely).
	bufSize := 512
	if w.query.Edns != nil && w.query.Edns.UDPSize > 512 {
		bufSize = int(w.query.Edns.UDPSize)
	}
	wire, err := w.enc.Encode(resp, w.wire[:0])
	if err == nil && len(wire) > bufSize {
		w.trunc = dnswire.Message{
			Header:    resp.Header,
			Questions: resp.Questions,
			Edns:      resp.Edns,
		}
		w.trunc.Header.Truncated = true
		wire, err = w.enc.Encode(&w.trunc, w.wire[:0])
	}
	// The wire bytes are an independent copy: the response is consumed.
	dnswire.ReleaseMessage(resp)
	if err != nil {
		return
	}
	w.wire = wire[:0]
	_, _ = s.conn.WriteTo(wire, pkt.raddr)
}

// UDPClient queries a UDP DNS server with retry and timeout. Retries
// back off exponentially with deterministic jitter, and every attempt
// carries a fresh transaction ID so a late datagram answering an earlier
// attempt can never satisfy a newer one — it is discarded as stale
// instead of being mistaken for the current answer.
type UDPClient struct {
	// ServerAddr is the "host:port" of the server.
	ServerAddr string
	// Timeout bounds each attempt (default 2s).
	Timeout time.Duration
	// Retries is the number of additional attempts (default 1).
	Retries int
	// Backoff is the base delay before the first retry, doubling per
	// attempt up to 8×Backoff with jitter in [1/2, 1) of the delay.
	// Zero defaults to 100ms; negative disables backoff entirely.
	Backoff time.Duration
}

// retryDelay computes the jittered exponential backoff before retry
// attempt (0-based), deterministic per (transaction ID, attempt).
func retryDelay(base time.Duration, attempt int, id uint16) time.Duration {
	d := base
	for i := 0; i < attempt && d < 8*base; i++ {
		d *= 2
	}
	if d > 8*base {
		d = 8 * base
	}
	h := iputil.Mix(uint64(id)+1, uint64(attempt)^0xD15C0)
	frac := float64(h>>11) / float64(1<<53)
	return d/2 + time.Duration(frac*float64(d/2))
}

// Exchange implements Exchanger over UDP. The socket is dialed once and
// reused across every retry attempt — only the read/write deadline is
// reset per attempt. Retrying under a fresh transaction ID only needs the
// wire ID bytes re-stamped (the DNS header puts the ID at offset 0), so
// the query is encoded exactly once regardless of the attempt count. The
// returned response is pooled: callers pass ownership onward or release
// it via dnswire.ReleaseMessage when done.
func (c *UDPClient) Exchange(ctx context.Context, query *dnswire.Message) (*dnswire.Message, error) {
	timeout := c.Timeout
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	backoff := c.Backoff
	if backoff == 0 {
		backoff = 100 * time.Millisecond
	}
	attempts := c.Retries + 1
	if attempts < 1 {
		attempts = 1
	}
	wire, err := query.Encode(nil)
	if err != nil {
		return nil, err
	}
	d := net.Dialer{Timeout: timeout}
	conn, err := d.DialContext(ctx, "udp", c.ServerAddr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	bp := pktPool.Get().(*[]byte)
	defer pktPool.Put(bp)
	rbuf := *bp
	var lastErr error = ErrTimeout
	for a := 0; a < attempts; a++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		id := query.Header.ID
		if a > 0 {
			if backoff > 0 {
				t := time.NewTimer(retryDelay(backoff, a-1, query.Header.ID))
				select {
				case <-t.C:
				case <-ctx.Done():
					t.Stop()
					return nil, ctx.Err()
				}
			}
			// Re-stamp the wire ID so each attempt is its own transaction;
			// nothing else in the packet changes, so no re-encode.
			id = uint16(iputil.Mix(uint64(query.Header.ID)+1, uint64(a)))
			binary.BigEndian.PutUint16(wire[:2], id)
		}
		resp, err := c.exchangeOnce(ctx, conn, rbuf, wire, id, timeout)
		if err == nil {
			// Restore the caller's transaction ID: which attempt won is a
			// transport detail.
			resp.Header.ID = query.Header.ID
			return resp, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

func (c *UDPClient) exchangeOnce(ctx context.Context, conn net.Conn, rbuf, wire []byte, id uint16, timeout time.Duration) (*dnswire.Message, error) {
	deadline := time.Now().Add(timeout)
	if ctxDeadline, ok := ctx.Deadline(); ok && ctxDeadline.Before(deadline) {
		deadline = ctxDeadline
	}
	_ = conn.SetDeadline(deadline)
	if _, err := conn.Write(wire); err != nil {
		return nil, err
	}
	for {
		n, err := conn.Read(rbuf)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				return nil, err
			}
			return nil, ErrTimeout
		}
		resp := dnswire.AcquireMessage()
		if err := dnswire.DecodeInto(rbuf[:n], resp); err != nil {
			dnswire.ReleaseMessage(resp)
			continue // garbage on the socket: wait for a real response
		}
		if resp.Header.ID != id {
			dnswire.ReleaseMessage(resp)
			continue // stale response from a previous attempt
		}
		return resp, nil
	}
}
