package trace

import (
	"net/netip"
	"testing"

	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/egress"
	"github.com/relay-networks/privaterelay/internal/netsim"
)

func setup(t testing.TB) (*netsim.World, map[netip.Addr]bgp.ASN, []egress.Attributed) {
	t.Helper()
	w := netsim.NewWorld(netsim.Params{Seed: 14, Scale: 0.0005})
	ingress := w.FleetUnion(netsim.MonthApr, netsim.ProtoDefault, netsim.FamilyV4, 0)
	list := egress.Generate(w, 14)
	return w, ingress, egress.Attribute(list, w.Table)
}

func TestSharedOperatorsIsAkamaiPR(t *testing.T) {
	_, ingress, attributed := setup(t)
	shared := SharedOperators(ingress, attributed)
	if len(shared) != 1 || shared[0] != netsim.ASAkamaiPR {
		t.Fatalf("shared operators = %v, want exactly AkamaiPR", shared)
	}
}

func TestLastHopCorrelationFindsSharedRouters(t *testing.T) {
	w, ingress, attributed := setup(t)
	vantage := w.ClientASes[0].Prefixes[0].Addr().Next()

	var ingressAddrs []netip.Addr
	for a, as := range ingress {
		if as == netsim.ASAkamaiPR {
			ingressAddrs = append(ingressAddrs, a)
		}
	}
	var egressAddrs []netip.Addr
	for _, a := range attributed {
		if a.AS == netsim.ASAkamaiPR && a.Prefix.Addr().Is4() {
			egressAddrs = append(egressAddrs, a.Prefix.Addr().Next())
			if len(egressAddrs) >= 500 {
				break
			}
		}
	}
	pairs := LastHopCorrelation(w, vantage, ingressAddrs, egressAddrs, 10)
	if len(pairs) == 0 {
		t.Fatal("no shared last-hop pairs found; §6 correlation unreproducible")
	}
	for _, p := range pairs {
		ri, _ := w.LastHopBeforeDest(vantage, p.Ingress)
		re, _ := w.LastHopBeforeDest(vantage, p.Egress)
		if ri != re || ri != p.Router {
			t.Fatalf("pair %+v does not actually share a last hop (%v vs %v)", p, ri, re)
		}
	}
}

func TestLastHopCorrelationAcrossOperatorsEmpty(t *testing.T) {
	w, ingress, attributed := setup(t)
	vantage := w.ClientASes[0].Prefixes[0].Addr().Next()
	// Apple ingress vs Cloudflare egress must never share a last hop:
	// the router pools are disjoint per operator.
	var ingressAddrs []netip.Addr
	for a, as := range ingress {
		if as == netsim.ASApple {
			ingressAddrs = append(ingressAddrs, a)
		}
	}
	var egressAddrs []netip.Addr
	for _, a := range attributed {
		if a.AS == netsim.ASCloudflare && a.Prefix.Addr().Is4() {
			egressAddrs = append(egressAddrs, a.Prefix.Addr())
			if len(egressAddrs) >= 200 {
				break
			}
		}
	}
	if pairs := LastHopCorrelation(w, vantage, ingressAddrs, egressAddrs, 0); len(pairs) != 0 {
		t.Fatalf("cross-operator last-hop sharing: %v", pairs)
	}
}

func TestPrefixUtilizationAudit(t *testing.T) {
	w, ingress, attributed := setup(t)
	u := AuditPrefixUtilization(w, netsim.ASAkamaiPR, []map[netip.Addr]bgp.ASN{ingress}, attributed)
	if u.AnnouncedV4 != 478 || u.AnnouncedV6 != 1335 {
		t.Fatalf("announced = %d/%d, want 478/1335", u.AnnouncedV4, u.AnnouncedV6)
	}
	if u.EgressPrefixes != 301+1172 {
		t.Fatalf("egress prefixes = %d, want 1473", u.EgressPrefixes)
	}
	// The IPv4 default+fallback fleets cover most of the 100 ingress
	// prefixes; IPv6 ingress prefixes are invisible to this v4 dataset.
	if u.IngressPrefixes == 0 || u.IngressPrefixes > 100 {
		t.Fatalf("ingress prefixes = %d, want ∈ (0, 100]", u.IngressPrefixes)
	}
	// Used share approaches the paper's 92.2 % once both families of
	// ingress datasets are merged; with v4-only ingress it still clears
	// 85 %.
	if u.UsedShare() < 80 {
		t.Fatalf("used share = %.1f%%", u.UsedShare())
	}
	if u.String() == "" {
		t.Fatal("empty audit string")
	}
}

func TestPrefixUtilizationWithV6Ingress(t *testing.T) {
	w, ingress, attributed := setup(t)
	// Merge a v6 ingress dataset (from the Atlas AAAA view): take the
	// ground-truth fleet as the best case.
	v6 := map[netip.Addr]bgp.ASN{}
	for _, a := range w.IngressFleet(netsim.ASAkamaiPR, netsim.MonthApr, netsim.ProtoDefault, netsim.FamilyV6, 0) {
		v6[a] = netsim.ASAkamaiPR
	}
	fallback := w.FleetUnion(netsim.MonthApr, netsim.ProtoFallback, netsim.FamilyV4, 0)
	u := AuditPrefixUtilization(w, netsim.ASAkamaiPR,
		[]map[netip.Addr]bgp.ASN{ingress, fallback, v6}, attributed)
	// §6: 92.2 % of announced prefixes used.
	if u.UsedShare() < 88 || u.UsedShare() > 95 {
		t.Fatalf("used share = %.1f%%, want ≈92.2%%", u.UsedShare())
	}
}

func TestFirstSeen(t *testing.T) {
	w, _, _ := setup(t)
	m, ok := FirstSeen(w, netsim.ASAkamaiPR)
	if !ok || m != (bgp.Month{Year: 2021, M: 6}) {
		t.Fatalf("FirstSeen = %v,%v want 2021-06", m, ok)
	}
}
