// Package trace implements the §6 correlation analysis: identifying
// operators that host both ingress and egress relays, verifying via
// traceroute that ingress and egress addresses can sit behind the same
// last-hop router, auditing AkamaiPR's prefix utilization (92.2 % of its
// announced prefixes carry relay infrastructure), and dating the AS's
// first BGP appearance to the service launch.
package trace

import (
	"fmt"
	"net/netip"
	"sort"

	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/egress"
	"github.com/relay-networks/privaterelay/internal/netsim"
)

// SharedOperators returns the ASes that originate at least one ingress
// address and at least one egress subnet — the structural precondition
// for the traffic-correlation concern.
func SharedOperators(ingress map[netip.Addr]bgp.ASN, attributed []egress.Attributed) []bgp.ASN {
	ingressASes := map[bgp.ASN]bool{}
	for _, as := range ingress {
		ingressASes[as] = true
	}
	shared := map[bgp.ASN]bool{}
	for _, a := range attributed {
		if ingressASes[a.AS] {
			shared[a.AS] = true
		}
	}
	out := make([]bgp.ASN, 0, len(shared))
	for as := range shared {
		out = append(out, as)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LastHopPair is an ingress/egress address pair sharing a last hop.
type LastHopPair struct {
	Ingress netip.Addr
	Egress  netip.Addr
	Router  netsim.RouterID
}

// LastHopCorrelation traceroutes from a vantage to ingress and egress
// addresses of one AS and reports pairs that share the last hop before
// the destination — the paper's validation of the correlation risk.
func LastHopCorrelation(w *netsim.World, vantage netip.Addr, ingressAddrs, egressAddrs []netip.Addr, limit int) []LastHopPair {
	ingressBy := map[netsim.RouterID][]netip.Addr{}
	for _, a := range ingressAddrs {
		if r, ok := w.LastHopBeforeDest(vantage, a); ok {
			ingressBy[r] = append(ingressBy[r], a)
		}
	}
	var pairs []LastHopPair
	for _, e := range egressAddrs {
		r, ok := w.LastHopBeforeDest(vantage, e)
		if !ok {
			continue
		}
		for _, i := range ingressBy[r] {
			pairs = append(pairs, LastHopPair{Ingress: i, Egress: e, Router: r})
			if limit > 0 && len(pairs) >= limit {
				return pairs
			}
		}
	}
	return pairs
}

// PrefixUtilization is the §6 audit of one AS's announced prefixes.
type PrefixUtilization struct {
	AS              bgp.ASN
	AnnouncedV4     int
	AnnouncedV6     int
	IngressPrefixes int // prefixes containing ≥1 ingress relay (v4+v6)
	EgressPrefixes  int // prefixes containing ≥1 egress subnet (v4+v6)
	UnusedPrefixes  int
}

// Announced returns the total announced prefix count.
func (u PrefixUtilization) Announced() int { return u.AnnouncedV4 + u.AnnouncedV6 }

// UsedShare returns the share of announced prefixes carrying relay
// infrastructure, in percent.
func (u PrefixUtilization) UsedShare() float64 {
	if u.Announced() == 0 {
		return 0
	}
	return float64(u.IngressPrefixes+u.EgressPrefixes) / float64(u.Announced()) * 100
}

// String renders the audit row.
func (u PrefixUtilization) String() string {
	return fmt.Sprintf("%s: %d v4 + %d v6 announced; ingress in %d, egress in %d, unused %d (%.1f%% used)",
		netsim.ASName(u.AS), u.AnnouncedV4, u.AnnouncedV6, u.IngressPrefixes, u.EgressPrefixes,
		u.UnusedPrefixes, u.UsedShare())
}

// AuditPrefixUtilization measures which of an AS's announced prefixes
// contain ingress relays (from the datasets) or egress subnets (from the
// attributed list). Ingress and egress never share a prefix in the
// deployment, so the three buckets partition the announcements.
func AuditPrefixUtilization(w *netsim.World, as bgp.ASN, ingress []map[netip.Addr]bgp.ASN, attributed []egress.Attributed) PrefixUtilization {
	u := PrefixUtilization{AS: as}
	ingressPfx := map[netip.Prefix]bool{}
	for _, ds := range ingress {
		for addr, origin := range ds {
			if origin != as {
				continue
			}
			if route, _, ok := w.Table.Route(addr); ok {
				ingressPfx[route] = true
			}
		}
	}
	egressPfx := map[netip.Prefix]bool{}
	for _, a := range attributed {
		if a.AS == as && a.BGPPrefix.IsValid() {
			egressPfx[a.BGPPrefix] = true
		}
	}
	for _, p := range w.Table.PrefixesOf(as) {
		if p.Addr().Is4() {
			u.AnnouncedV4++
		} else {
			u.AnnouncedV6++
		}
		switch {
		case ingressPfx[p]:
			u.IngressPrefixes++
		case egressPfx[p]:
			u.EgressPrefixes++
		default:
			u.UnusedPrefixes++
		}
	}
	return u
}

// FirstSeen reports when an AS first appeared in the monthly BGP archive.
func FirstSeen(w *netsim.World, as bgp.ASN) (bgp.Month, bool) {
	return w.History.FirstSeen(as)
}
