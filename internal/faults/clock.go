package faults

import "github.com/relay-networks/privaterelay/internal/vclock"

// The clock abstraction lives in the leaf package internal/vclock so
// that packages faults itself depends on (dnsserver, masque) can accept
// an injectable clock without an import cycle. The fault plane's
// callers keep using the faults.Clock names; the aliases below make
// them the same types.

// Clock abstracts time for the fault plane and every resilient
// orchestrator built on it. See vclock.Clock.
type Clock = vclock.Clock

// WallClock is the real time.Now/time.Sleep clock.
type WallClock = vclock.WallClock

// VirtualClock advances only when slept on; see vclock.VirtualClock.
type VirtualClock = vclock.VirtualClock

// NewVirtualClock starts a virtual clock at an arbitrary fixed epoch.
func NewVirtualClock() *VirtualClock {
	return vclock.NewVirtualClock()
}
