package faults

import (
	"context"
	"errors"
	"net/netip"
	"testing"
	"time"

	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/dnsserver"
	"github.com/relay-networks/privaterelay/internal/dnswire"
)

// okHandler answers every query with one A record.
type okHandler struct{}

func (okHandler) Handle(q *dnswire.Message, _ netip.Addr) *dnswire.Message {
	return &dnswire.Message{
		Header:    dnswire.Header{ID: q.Header.ID, Response: true},
		Questions: q.Questions,
		Answers: []dnswire.Record{{
			Name: q.Questions[0].Name, Type: dnswire.TypeA, Class: dnswire.ClassIN,
			TTL: 60, A: netip.MustParseAddr("192.0.2.1"),
		}},
	}
}

func memInner() dnsserver.Exchanger {
	return &dnsserver.MemTransport{Handler: okHandler{}, Source: netip.MustParseAddr("198.51.100.1")}
}

func ecsQuery(id uint16, subnet string) *dnswire.Message {
	return dnswire.NewQuery(id, "mask.icloud.com.", dnswire.TypeA).
		WithECS(netip.MustParsePrefix(subnet))
}

// fate classifies one exchange outcome for comparison across runs.
func fate(resp *dnswire.Message, err error, wantID uint16) string {
	switch {
	case errors.Is(err, dnsserver.ErrTimeout):
		return "timeout"
	case err != nil:
		return "err"
	case resp.Header.ID != wantID:
		return "stale"
	case resp.Header.Truncated:
		return "truncate"
	default:
		return resp.Header.RCode.String()
	}
}

func TestInjectorDeterministicPerAttempt(t *testing.T) {
	profile := &Profile{Seed: 42, Timeout: 0.2, ServFail: 0.1, Refused: 0.05, Truncate: 0.05, Stale: 0.05}
	run := func() []string {
		inj := NewInjector(memInner(), profile, NewVirtualClock(), nil)
		var fates []string
		for sub := 0; sub < 64; sub++ {
			subnet := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, 0, byte(sub), 0}), 24)
			for attempt := uint16(0); attempt < 4; attempt++ {
				q := dnswire.NewQuery(uint16(sub)*8+attempt, "mask.icloud.com.", dnswire.TypeA).WithECS(subnet)
				resp, err := inj.Exchange(context.Background(), q)
				fates = append(fates, fate(resp, err, q.Header.ID))
			}
		}
		return fates
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("attempt %d fate differs across identical runs: %q vs %q", i, a[i], b[i])
		}
	}
	// The schedule must actually exercise several kinds.
	kinds := map[string]int{}
	for _, f := range a {
		kinds[f]++
	}
	for _, want := range []string{"timeout", "SERVFAIL", "NOERROR"} {
		if kinds[want] == 0 {
			t.Fatalf("profile injected no %s in %d attempts (%v)", want, len(a), kinds)
		}
	}
}

func TestInjectorStatsReconcile(t *testing.T) {
	profile := &Profile{Seed: 9, Timeout: 0.2, ServFail: 0.15, Refused: 0.1, Truncate: 0.1, Stale: 0.1}
	inj := NewInjector(memInner(), profile, NewVirtualClock(), nil)
	const n = 4096
	observed := map[string]int64{}
	for i := 0; i < n; i++ {
		q := ecsQuery(uint16(i), "203.0.113.0/24")
		q.Edns.ClientSubnet.Addr = netip.AddrFrom4([4]byte{byte(i >> 8), byte(i), 1, 0})
		resp, err := inj.Exchange(context.Background(), q)
		observed[fate(resp, err, q.Header.ID)]++
	}
	checks := []struct {
		fate string
		got  int64
	}{
		{"timeout", inj.Stats.Timeouts.Load()},
		{"SERVFAIL", inj.Stats.ServFails.Load()},
		{"REFUSED", inj.Stats.Refused.Load()},
		{"truncate", inj.Stats.Truncated.Load()},
		{"stale", inj.Stats.Stale.Load()},
		{"NOERROR", inj.Stats.Passed.Load()},
	}
	for _, c := range checks {
		if observed[c.fate] != c.got {
			t.Errorf("%s: observed %d, injector counted %d", c.fate, observed[c.fate], c.got)
		}
	}
	if total := inj.Stats.Total() + inj.Stats.Passed.Load(); total != n {
		t.Errorf("faults+passed = %d, want %d", total, n)
	}
}

func TestBurstWindowOnVirtualClock(t *testing.T) {
	clock := NewVirtualClock()
	profile := &Profile{Seed: 3, Bursts: []Burst{{Kind: KindServFail, Start: time.Second, Len: 2 * time.Second}}}
	inj := NewInjector(memInner(), profile, clock, nil)
	ctx := context.Background()

	q := ecsQuery(1, "203.0.113.0/24")
	if resp, err := inj.Exchange(ctx, q); err != nil || resp.Header.RCode != dnswire.RCodeNoError {
		t.Fatalf("before burst: resp=%v err=%v", resp, err)
	}
	clock.Sleep(ctx, 1500*time.Millisecond) // inside the window
	if resp, err := inj.Exchange(ctx, q); err != nil || resp.Header.RCode != dnswire.RCodeServFail {
		t.Fatalf("inside burst: resp=%v err=%v", resp, err)
	}
	clock.Sleep(ctx, 2*time.Second) // past the window
	if resp, err := inj.Exchange(ctx, q); err != nil || resp.Header.RCode != dnswire.RCodeNoError {
		t.Fatalf("after burst: resp=%v err=%v", resp, err)
	}
	if inj.Stats.ServFails.Load() != 1 {
		t.Fatalf("ServFails = %d, want 1", inj.Stats.ServFails.Load())
	}
}

func TestBlackoutByClientAS(t *testing.T) {
	clock := NewVirtualClock()
	origin := func(a netip.Addr) (bgp.ASN, bool) {
		if a.As4()[0] == 10 {
			return 65010, true
		}
		return 65099, true
	}
	profile := &Profile{Blackouts: []Blackout{{AS: 65010, Kind: KindTimeout, Until: time.Minute}}}
	inj := NewInjector(memInner(), profile, clock, origin)
	ctx := context.Background()

	dark := ecsQuery(1, "10.1.2.0/24")
	lit := ecsQuery(2, "203.0.113.0/24")
	if _, err := inj.Exchange(ctx, dark); !errors.Is(err, dnsserver.ErrTimeout) {
		t.Fatalf("blacked-out AS query: err=%v, want timeout", err)
	}
	if _, err := inj.Exchange(ctx, lit); err != nil {
		t.Fatalf("unaffected AS query: %v", err)
	}
	clock.Sleep(ctx, 2*time.Minute)
	if _, err := inj.Exchange(ctx, dark); err != nil {
		t.Fatalf("after blackout expiry: %v", err)
	}
}

func TestLatencyInjectionAdvancesVirtualClock(t *testing.T) {
	clock := NewVirtualClock()
	profile := &Profile{Seed: 5, LatencyRate: 0.999, Latency: 10 * time.Millisecond}
	inj := NewInjector(memInner(), profile, clock, nil)
	for i := 0; i < 20; i++ {
		q := ecsQuery(uint16(i), "203.0.113.0/24")
		if _, err := inj.Exchange(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	if inj.Stats.Delayed.Load() == 0 {
		t.Fatal("no latency injected at rate 0.999")
	}
	if got := clock.Elapsed(); got != time.Duration(inj.Stats.Delayed.Load())*10*time.Millisecond {
		t.Fatalf("virtual clock advanced %v for %d delays", got, inj.Stats.Delayed.Load())
	}
}

func TestParseProfileRoundTrip(t *testing.T) {
	spec := "seed=7,timeout=0.1,servfail=0.05,latency=0.2:5ms,burst=refused:10s+30s,blackout=65010:timeout:1m"
	p, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.Timeout != 0.1 || p.ServFail != 0.05 {
		t.Fatalf("rates wrong: %+v", p)
	}
	if p.LatencyRate != 0.2 || p.Latency != 5*time.Millisecond {
		t.Fatalf("latency wrong: %+v", p)
	}
	if len(p.Bursts) != 1 || p.Bursts[0] != (Burst{Kind: KindRefused, Start: 10 * time.Second, Len: 30 * time.Second}) {
		t.Fatalf("burst wrong: %+v", p.Bursts)
	}
	if len(p.Blackouts) != 1 || p.Blackouts[0] != (Blackout{AS: 65010, Kind: KindTimeout, Until: time.Minute}) {
		t.Fatalf("blackout wrong: %+v", p.Blackouts)
	}
	// String renders a spec Parse accepts again.
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", p.String(), err)
	}
	if p2.String() != p.String() {
		t.Fatalf("round trip: %q vs %q", p2.String(), p.String())
	}
}

func TestParsePresetsAndErrors(t *testing.T) {
	if p, err := Parse("off"); err != nil || p != nil {
		t.Fatalf("off: %v %v", p, err)
	}
	if p, err := Parse(""); err != nil || p != nil {
		t.Fatalf("empty: %v %v", p, err)
	}
	p, err := Parse("harsh,seed=99")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 99 || p.Timeout != 0.10 || len(p.Bursts) != 1 {
		t.Fatalf("preset extension: %+v", p)
	}
	if Presets["harsh"].Seed != 1 {
		t.Fatal("extending a preset mutated the shared copy")
	}
	for _, bad := range []string{"nope=1", "timeout=1.5", "burst=zap:1s+1s", "latency=0.5", "blackout=1:2"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}
