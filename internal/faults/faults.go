// Package faults is the deterministic fault-injection plane: a
// composable dnsserver.Exchanger wrapper that subjects any DNS client —
// the ECS scanner, resolvers, Atlas campaigns — to scripted timeouts,
// SERVFAIL, REFUSED rate-limit responses, truncation, stale-ID
// responses and latency, plus clock-windowed burst outages and per-AS
// blackouts.
//
// Steady-state fault decisions are a pure function of (profile seed,
// query key, transaction ID): the k-th attempt for a given subnet meets
// the same fate in every run at every worker count, so chaos runs are
// replayable and the orchestration layers can be tested for bit-exact
// convergence. Bursts and blackouts are windows on the injector's Clock;
// with a VirtualClock they expire as retry backoff "sleeps" accumulate,
// so even outage recovery needs no wall time in tests.
package faults

import (
	"context"
	"net/netip"
	"sync/atomic"
	"time"

	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/dnsserver"
	"github.com/relay-networks/privaterelay/internal/dnswire"
	"github.com/relay-networks/privaterelay/internal/iputil"
)

// Stats counts injected faults, atomically. The resilience layers'
// observed-fault counters must reconcile exactly against these — every
// injected fault is seen, classified and survived exactly once.
type Stats struct {
	Timeouts  atomic.Int64
	ServFails atomic.Int64
	Refused   atomic.Int64
	Truncated atomic.Int64
	Stale     atomic.Int64
	Delayed   atomic.Int64 // latency injections (not faults: the query succeeds)
	Passed    atomic.Int64 // queries forwarded unharmed
}

// Total sums the injected faults (latency excluded: delayed queries
// still succeed).
func (s *Stats) Total() int64 {
	return s.Timeouts.Load() + s.ServFails.Load() + s.Refused.Load() +
		s.Truncated.Load() + s.Stale.Load()
}

// Of returns the count injected for one kind.
func (s *Stats) Of(k Kind) int64 {
	switch k {
	case KindTimeout:
		return s.Timeouts.Load()
	case KindServFail:
		return s.ServFails.Load()
	case KindRefused:
		return s.Refused.Load()
	case KindTruncate:
		return s.Truncated.Load()
	case KindStale:
		return s.Stale.Load()
	}
	return 0
}

// Injector wraps an Exchanger with a fault Profile.
type Injector struct {
	inner   dnsserver.Exchanger
	profile Profile
	clock   Clock
	epoch   time.Time
	// origin attributes an ECS client subnet to its AS for blackouts;
	// nil disables blackout matching.
	origin func(netip.Addr) (bgp.ASN, bool)

	// Stats exposes the injected-fault counters.
	Stats Stats
}

// NewInjector builds the injector. A nil profile passes everything
// through; a nil clock uses the wall clock; origin may be nil when the
// profile has no blackouts.
func NewInjector(inner dnsserver.Exchanger, profile *Profile, clock Clock, origin func(netip.Addr) (bgp.ASN, bool)) *Injector {
	if clock == nil {
		clock = WallClock{}
	}
	inj := &Injector{inner: inner, clock: clock, epoch: clock.Now(), origin: origin}
	if profile != nil {
		inj.profile = *profile
	}
	return inj
}

// Exchange implements dnsserver.Exchanger.
func (inj *Injector) Exchange(ctx context.Context, query *dnswire.Message) (*dnswire.Message, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	kind, fault, delay := inj.decide(query)
	if fault {
		return inj.inject(kind, query)
	}
	if delay {
		inj.Stats.Delayed.Add(1)
		if err := inj.clock.Sleep(ctx, inj.profile.Latency); err != nil {
			return nil, err
		}
	}
	inj.Stats.Passed.Add(1)
	return inj.inner.Exchange(ctx, query)
}

// decide picks the query's fate. Precedence: blackout, burst, then the
// steady per-attempt rates.
func (inj *Injector) decide(query *dnswire.Message) (kind Kind, fault, delay bool) {
	p := &inj.profile
	var since time.Duration
	if len(p.Bursts) > 0 || len(p.Blackouts) > 0 {
		since = inj.clock.Now().Sub(inj.epoch)
	}
	if len(p.Blackouts) > 0 && inj.origin != nil {
		if sub, ok := querySubnet(query); ok {
			if as, ok := inj.origin(sub.Addr()); ok {
				for _, b := range p.Blackouts {
					if b.AS == as && since < b.Until {
						return b.Kind, true, false
					}
				}
			}
		}
	}
	for _, b := range p.Bursts {
		if since >= b.Start && since < b.Start+b.Len {
			return b.Kind, true, false
		}
	}

	// Steady rates: one uniform draw keyed on (seed, query key, ID).
	// The transaction ID varies per attempt (resilient clients
	// regenerate it), so retries re-roll while staying replayable.
	h := iputil.Mix(p.Seed, iputil.Mix(queryKey(query), uint64(query.Header.ID)))
	u := float64(h>>11) / float64(1<<53)
	for _, step := range []struct {
		rate float64
		kind Kind
	}{
		{p.Timeout, KindTimeout},
		{p.ServFail, KindServFail},
		{p.Refused, KindRefused},
		{p.Truncate, KindTruncate},
		{p.Stale, KindStale},
	} {
		if u < step.rate {
			return step.kind, true, false
		}
		u -= step.rate
	}
	return 0, false, p.LatencyRate > 0 && u < p.LatencyRate
}

// inject synthesizes the fault. Failure responses echo the query's
// question section and ID (except stale, whose whole point is a wrong
// ID), exactly like a real server or a late datagram would.
func (inj *Injector) inject(kind Kind, query *dnswire.Message) (*dnswire.Message, error) {
	switch kind {
	case KindTimeout:
		inj.Stats.Timeouts.Add(1)
		return nil, dnsserver.ErrTimeout
	case KindServFail:
		inj.Stats.ServFails.Add(1)
		return response(query, dnswire.RCodeServFail, false), nil
	case KindRefused:
		inj.Stats.Refused.Add(1)
		return response(query, dnswire.RCodeRefused, false), nil
	case KindTruncate:
		inj.Stats.Truncated.Add(1)
		return response(query, dnswire.RCodeNoError, true), nil
	default: // KindStale
		inj.Stats.Stale.Add(1)
		resp := response(query, dnswire.RCodeNoError, false)
		resp.Header.ID ^= 0x5A5A // a duplicate answering some other transaction
		return resp, nil
	}
}

func response(query *dnswire.Message, rcode dnswire.RCode, truncated bool) *dnswire.Message {
	return &dnswire.Message{
		Header: dnswire.Header{
			ID:        query.Header.ID,
			Response:  true,
			OpCode:    query.Header.OpCode,
			Truncated: truncated,
			RCode:     rcode,
		},
		Questions: append([]dnswire.Question(nil), query.Questions...),
	}
}

// queryKey derives the stable identity of a query independent of its
// per-attempt transaction ID: the ECS client subnet when present (the
// scanner's case), else the question name.
func queryKey(query *dnswire.Message) uint64 {
	if sub, ok := querySubnet(query); ok {
		return iputil.HashPrefix(sub)
	}
	if len(query.Questions) > 0 {
		return iputil.HashString(query.Questions[0].Name)
	}
	return 0
}

func querySubnet(query *dnswire.Message) (netip.Prefix, bool) {
	if query.Edns == nil || query.Edns.ClientSubnet == nil {
		return netip.Prefix{}, false
	}
	return query.Edns.ClientSubnet.Prefix(), true
}
