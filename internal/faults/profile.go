package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/relay-networks/privaterelay/internal/bgp"
)

// Kind enumerates the injectable fault classes — the failure modes a
// 40-hour scan against a rate-limited authoritative meets on the live
// Internet (§3): lost queries, server failures, explicit rate-limit
// refusals, UDP truncation, and responses from earlier attempts arriving
// late under a stale transaction ID.
type Kind int

// Fault kinds.
const (
	KindTimeout Kind = iota
	KindServFail
	KindRefused
	KindTruncate
	KindStale
)

// String names the kind as used in profile specs.
func (k Kind) String() string {
	switch k {
	case KindTimeout:
		return "timeout"
	case KindServFail:
		return "servfail"
	case KindRefused:
		return "refused"
	case KindTruncate:
		return "truncate"
	case KindStale:
		return "stale"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind parses a kind name as rendered by Kind.String.
func ParseKind(s string) (Kind, error) {
	return parseKind(s)
}

func parseKind(s string) (Kind, error) {
	for _, k := range []Kind{KindTimeout, KindServFail, KindRefused, KindTruncate, KindStale} {
		if s == k.String() {
			return k, nil
		}
	}
	return 0, fmt.Errorf("faults: unknown fault kind %q", s)
}

// Burst is a scheduled outage window: every query arriving while the
// clock is inside [Start, Start+Len) after the injector's epoch fails
// with Kind — the shape of a sustained SERVFAIL or rate-limit episode.
type Burst struct {
	Kind  Kind
	Start time.Duration
	Len   time.Duration
}

// Blackout fails every query whose ECS client subnet originates in AS
// until the clock passes Until after the injector's epoch — a per-AS
// routing incident or a resolver-side block.
type Blackout struct {
	AS    bgp.ASN
	Kind  Kind
	Until time.Duration
}

// Profile is a scriptable fault schedule. Steady-state rates are
// per-attempt probabilities decided by a deterministic PRNG keyed on the
// query itself (ECS subnet + transaction ID), so a given attempt's fate
// is identical across runs and worker counts; bursts and blackouts are
// clock-windowed and model correlated outages.
type Profile struct {
	// Seed drives every PRNG decision.
	Seed uint64
	// Per-attempt fault probabilities in [0, 1).
	Timeout  float64
	ServFail float64
	Refused  float64
	Truncate float64
	Stale    float64
	// LatencyRate is the share of passed-through queries delayed by
	// Latency on the injector's clock.
	LatencyRate float64
	Latency     time.Duration
	// Bursts and Blackouts are the correlated-outage schedule.
	Bursts    []Burst
	Blackouts []Blackout
}

// Zero reports whether the profile injects nothing.
func (p *Profile) Zero() bool {
	return p == nil || (p.Timeout == 0 && p.ServFail == 0 && p.Refused == 0 &&
		p.Truncate == 0 && p.Stale == 0 && p.LatencyRate == 0 &&
		len(p.Bursts) == 0 && len(p.Blackouts) == 0)
}

// String renders the profile in the spec syntax Parse accepts.
func (p *Profile) String() string {
	if p.Zero() {
		return "off"
	}
	var parts []string
	add := func(k string, v float64) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", k, v))
		}
	}
	if p.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	}
	add("timeout", p.Timeout)
	add("servfail", p.ServFail)
	add("refused", p.Refused)
	add("truncate", p.Truncate)
	add("stale", p.Stale)
	if p.LatencyRate > 0 {
		parts = append(parts, fmt.Sprintf("latency=%g:%s", p.LatencyRate, p.Latency))
	}
	for _, b := range p.Bursts {
		parts = append(parts, fmt.Sprintf("burst=%s:%s+%s", b.Kind, b.Start, b.Len))
	}
	for _, b := range p.Blackouts {
		parts = append(parts, fmt.Sprintf("blackout=%d:%s:%s", uint32(b.AS), b.Kind, b.Until))
	}
	return strings.Join(parts, ",")
}

// Presets name the profiles the chaos sweep and the CLIs use without a
// hand-written spec.
var Presets = map[string]*Profile{
	"off":  nil,
	"none": nil,
	// mild: background flakiness any long-running scan sees.
	"mild": {
		Seed:    1,
		Timeout: 0.05, ServFail: 0.02, Stale: 0.01,
	},
	// harsh: the acceptance profile — 10 % timeouts plus a burst-SERVFAIL
	// outage and steady refusals, truncation and stale responses.
	"harsh": {
		Seed:    1,
		Timeout: 0.10, ServFail: 0.04, Refused: 0.03, Truncate: 0.02, Stale: 0.02,
		Bursts: []Burst{{Kind: KindServFail, Start: 2 * time.Second, Len: 8 * time.Second}},
	},
}

// Parse reads a profile spec: a preset name ("off", "mild", "harsh") or
// a comma-separated list of directives —
//
//	seed=N  timeout=R  servfail=R  refused=R  truncate=R  stale=R
//	latency=R:DUR  burst=KIND:START+LEN  blackout=ASN:KIND:UNTIL
//
// where R is a probability, DUR/START/LEN/UNTIL are Go durations and
// KIND is a fault kind name. A preset name may be extended with extra
// directives, e.g. "harsh,seed=7".
func Parse(spec string) (*Profile, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	p := &Profile{}
	for i, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		if i == 0 {
			if preset, ok := Presets[field]; ok {
				if preset == nil {
					return nil, nil
				}
				cp := *preset
				cp.Bursts = append([]Burst(nil), preset.Bursts...)
				cp.Blackouts = append([]Blackout(nil), preset.Blackouts...)
				p = &cp
				continue
			}
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("faults: directive %q: want key=value", field)
		}
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseUint(val, 10, 64)
		case "timeout":
			p.Timeout, err = parseRate(val)
		case "servfail":
			p.ServFail, err = parseRate(val)
		case "refused":
			p.Refused, err = parseRate(val)
		case "truncate":
			p.Truncate, err = parseRate(val)
		case "stale":
			p.Stale, err = parseRate(val)
		case "latency":
			rate, dur, found := strings.Cut(val, ":")
			if !found {
				return nil, fmt.Errorf("faults: latency=%q: want RATE:DURATION", val)
			}
			if p.LatencyRate, err = parseRate(rate); err == nil {
				p.Latency, err = time.ParseDuration(dur)
			}
		case "burst":
			var b Burst
			if b, err = parseBurst(val); err == nil {
				p.Bursts = append(p.Bursts, b)
			}
		case "blackout":
			var b Blackout
			if b, err = parseBlackout(val); err == nil {
				p.Blackouts = append(p.Blackouts, b)
			}
		default:
			return nil, fmt.Errorf("faults: unknown directive %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("faults: directive %q: %w", field, err)
		}
	}
	return p, nil
}

func parseRate(s string) (float64, error) {
	r, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if r < 0 || r >= 1 {
		return 0, fmt.Errorf("rate %g outside [0, 1)", r)
	}
	return r, nil
}

func parseBurst(val string) (Burst, error) {
	kind, window, ok := strings.Cut(val, ":")
	if !ok {
		return Burst{}, fmt.Errorf("want KIND:START+LEN, got %q", val)
	}
	k, err := parseKind(kind)
	if err != nil {
		return Burst{}, err
	}
	start, length, ok := strings.Cut(window, "+")
	if !ok {
		return Burst{}, fmt.Errorf("want KIND:START+LEN, got %q", val)
	}
	s, err := time.ParseDuration(start)
	if err != nil {
		return Burst{}, err
	}
	l, err := time.ParseDuration(length)
	if err != nil {
		return Burst{}, err
	}
	return Burst{Kind: k, Start: s, Len: l}, nil
}

func parseBlackout(val string) (Blackout, error) {
	parts := strings.SplitN(val, ":", 3)
	if len(parts) != 3 {
		return Blackout{}, fmt.Errorf("want ASN:KIND:UNTIL, got %q", val)
	}
	asn, err := strconv.ParseUint(parts[0], 10, 32)
	if err != nil {
		return Blackout{}, err
	}
	k, err := parseKind(parts[1])
	if err != nil {
		return Blackout{}, err
	}
	until, err := time.ParseDuration(parts[2])
	if err != nil {
		return Blackout{}, err
	}
	return Blackout{AS: bgp.ASN(asn), Kind: k, Until: until}, nil
}
