// Package atomicio writes files atomically and durably: content goes to
// a temp file in the target's directory, is fsynced, renamed over the
// target, and the directory entry is fsynced too. A crash — including a
// kill -9 between any two syscalls — leaves either the old file or the
// new file, never a torn mix, and a completed write survives power loss.
//
// This is the persistence primitive under every relayd artifact (scan
// checkpoints, dataset generations, diff files): crash-safety of the
// service reduces to "every write goes through atomicio and every read
// validates a footer".
package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
)

// WriteFile atomically replaces path with the bytes produced by write.
// The temp file lives in path's directory so the final rename never
// crosses filesystems.
func WriteFile(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".atomic-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	// fsync the data before the rename publishes it: rename-then-crash
	// must never expose a file whose blocks are still in flight.
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so the rename's new entry is durable.
// Filesystems that cannot sync directories (some network mounts) return
// an error from Sync; that is best-effort territory — the rename itself
// already gave atomicity — so only open failures are reported.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !isSyncUnsupported(err) {
		return err
	}
	return nil
}

// isSyncUnsupported reports whether a directory Sync failed only
// because the filesystem does not support syncing directories.
func isSyncUnsupported(err error) bool {
	return errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP)
}
