package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "first")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "second")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second" {
		t.Fatalf("content = %q, want %q", got, "second")
	}
}

func TestWriteFileFailedWriteLeavesTargetIntact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "keep me")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteFile(path, func(w io.Writer) error {
		io.WriteString(w, "torn half-write")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "keep me" {
		t.Fatalf("failed write clobbered target: %q", got)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want just the target", len(entries))
	}
}
