// Package experiments wires the substrates into the paper's evaluation:
// one entry point per table, figure and section-level result, all sharing
// a single lazily-built environment. The report binary, the benchmark
// harness and the examples all run through these functions, so every
// published number has exactly one implementation.
package experiments

import (
	"context"
	"fmt"
	"io"
	"net/netip"
	"path/filepath"
	"slices"
	"strings"
	"sync"
	"time"

	"github.com/relay-networks/privaterelay/internal/analysis"
	"github.com/relay-networks/privaterelay/internal/atlas"
	"github.com/relay-networks/privaterelay/internal/atomicio"
	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/core"
	"github.com/relay-networks/privaterelay/internal/dnsserver"
	"github.com/relay-networks/privaterelay/internal/dnswire"
	"github.com/relay-networks/privaterelay/internal/egress"
	"github.com/relay-networks/privaterelay/internal/faults"
	"github.com/relay-networks/privaterelay/internal/netsim"
	"github.com/relay-networks/privaterelay/internal/quicsim"
	"github.com/relay-networks/privaterelay/internal/relay"
	"github.com/relay-networks/privaterelay/internal/resolver"
	"github.com/relay-networks/privaterelay/internal/scan"
	"github.com/relay-networks/privaterelay/internal/trace"
)

// Env is a shared experiment environment: the world, the egress list and
// memoized scan datasets.
type Env struct {
	Seed  uint64
	Scale float64
	// ScanConcurrency is the worker count for ECS scans run through the
	// environment (0 falls back to core.Scan's default). Scan results are
	// concurrency-independent, so raising it only changes wall-clock time.
	ScanConcurrency int
	// PipelineWorkers is the worker count for the attribution, table and
	// Atlas-campaign pipelines (0 falls back to each pipeline's default).
	// Like scans, those pipelines are worker-count-independent.
	PipelineWorkers int
	// PacerBatch is the number of send-slots a scan worker claims from
	// the pacer per CAS (0 falls back to core.Scan's default tranche).
	// Grant batching changes contention, never the dataset.
	PacerBatch int
	// FaultProfile, when non-nil, routes every DNS exchange the
	// environment builds — ECS scans, the relay device's resolver and the
	// Atlas probe transports — through a faults.Injector with this
	// profile. Scans then run with retries and multiple passes, so the
	// published numbers stay identical to a fault-free run (the chaos
	// tests pin this equivalence).
	FaultProfile *faults.Profile
	// ConnectRetries shapes tunnel-establishment retries for the
	// through-relay scans. The zero value uses the library defaults
	// (3 attempts, 50ms base backoff).
	ConnectRetries relay.ConnectRetry

	World      *netsim.World
	List       *egress.List
	Attributed []egress.Attributed
	Dep        *relay.Deployment

	mu    sync.Mutex
	scans map[string]*core.Dataset
}

// NewEnv builds the environment. Scale follows netsim.Params semantics.
func NewEnv(seed uint64, scale float64) *Env {
	w := netsim.NewWorld(netsim.Params{Seed: seed, Scale: scale})
	list := egress.Generate(w, seed)
	return &Env{
		Seed:            seed,
		Scale:           scale,
		ScanConcurrency: 8,
		PipelineWorkers: 8,
		World:           w,
		List:            list,
		Attributed:      egress.AttributeN(list, w.Table, 8),
		Dep:             relay.NewDeployment(w, list),
		scans:           make(map[string]*core.Dataset),
	}
}

// ScanMonth runs (or returns the memoized) ECS scan for a month/domain.
func (e *Env) ScanMonth(ctx context.Context, month bgp.Month, domain string) (*core.Dataset, error) {
	key := month.String() + "|" + domain
	e.mu.Lock()
	if ds, ok := e.scans[key]; ok {
		e.mu.Unlock()
		return ds, nil
	}
	e.mu.Unlock()
	srv := dnsserver.NewAuthServer(e.World, month, nil)
	cfg := core.ScanConfig{
		Exchanger:    &dnsserver.MemTransport{Handler: srv, Source: netip.MustParseAddr("198.51.100.53")},
		Domain:       domain,
		Universe:     e.World.RoutedV4Prefixes(),
		Attribution:  e.World.Table,
		RespectScope: true,
		Concurrency:  e.ScanConcurrency,
		PacerBatch:   e.PacerBatch,
		Retries:      1,
	}
	if e.FaultProfile != nil {
		cfg.Exchanger = faults.NewInjector(cfg.Exchanger, e.FaultProfile, nil, e.World.Table.Origin)
		cfg.Retries = 4
		cfg.MaxPasses = 8
	}
	ds, err := core.Scan(ctx, cfg)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.scans[key] = ds
	e.mu.Unlock()
	return ds, nil
}

// Table1 runs the four monthly dual-plane scans (T1).
func (e *Env) Table1(ctx context.Context) ([]analysis.Table1Row, error) {
	def := map[bgp.Month]*core.Dataset{}
	fb := map[bgp.Month]*core.Dataset{}
	for _, m := range netsim.ScanMonths {
		ds, err := e.ScanMonth(ctx, m, dnsserver.MaskDomain)
		if err != nil {
			return nil, err
		}
		def[m] = ds
		if m != netsim.MonthJan { // the paper's January fallback scan is absent
			if fb[m], err = e.ScanMonth(ctx, m, dnsserver.MaskH2Domain); err != nil {
				return nil, err
			}
		}
	}
	return analysis.Table1(netsim.ScanMonths, def, fb), nil
}

// Table2 joins the April scan with AS populations (T2).
func (e *Env) Table2(ctx context.Context) ([]analysis.Table2Row, float64, error) {
	ds, err := e.ScanMonth(ctx, netsim.MonthApr, dnsserver.MaskDomain)
	if err != nil {
		return nil, 0, err
	}
	return analysis.Table2(ds, e.World.Pop), analysis.AppleShareInBoth(ds), nil
}

// Table3 aggregates the attributed egress list (T3).
func (e *Env) Table3() []analysis.Table3Row { return analysis.Table3N(e.Attributed, e.PipelineWorkers) }

// Table4 counts covered cities (T4).
func (e *Env) Table4() []analysis.Table4Row { return analysis.Table4N(e.Attributed, e.PipelineWorkers) }

// Figure2 returns the per-operator IPv4 geolocation panels (F2). Both
// Akamai ASes merge into one panel, as in the paper.
func (e *Env) Figure2() map[string]analysis.GeoBounds {
	return e.geoPanels(netsim.FamilyV4)
}

// Figure5 returns panels for both families (F5).
func (e *Env) Figure5() map[string]analysis.GeoBounds {
	out := e.geoPanels(netsim.FamilyV4)
	for k, v := range e.geoPanels(netsim.FamilyV6) {
		out[k+"-v6"] = v
	}
	return out
}

func (e *Env) geoPanels(fam netsim.Family) map[string]analysis.GeoBounds {
	akamai := analysis.GeoScatter(e.Attributed, netsim.ASAkamaiPR, fam)
	akamai = append(akamai, analysis.GeoScatter(e.Attributed, netsim.ASAkamaiEdge, fam)...)
	return map[string]analysis.GeoBounds{
		"Akamai":     analysis.Bounds(akamai),
		"Cloudflare": analysis.Bounds(analysis.GeoScatter(e.Attributed, netsim.ASCloudflare, fam)),
		"Fastly":     analysis.Bounds(analysis.GeoScatter(e.Attributed, netsim.ASFastly, fam)),
	}
}

// Figure4 returns the location CDFs per operator (F4).
func (e *Env) Figure4(kind analysis.LocationKind, fam netsim.Family) map[string][]analysis.CDFPoint {
	out := map[string][]analysis.CDFPoint{}
	for _, as := range relay.EgressOperators {
		out[netsim.ASName(as)] = analysis.LocationCDF(e.Attributed, as, fam, kind)
	}
	return out
}

// RelayScanResult bundles the through-relay scan outputs (F3 + S6).
type RelayScanResult struct {
	Open  []scan.Observation
	Fixed []scan.Observation
	// OpenChanges / FixedChanges are the Figure 3 series.
	OpenChanges  []scan.OperatorChange
	FixedChanges []scan.OperatorChange
	// Rotation summarizes the 30 s cadence scan for the dominant egress
	// operator (§4.3); RotationAll covers every round regardless of
	// operator, and RotationObs holds the filtered observations.
	Rotation         scan.RotationStats
	RotationAll      scan.RotationStats
	RotationOperator bgp.ASN
	RotationObs      []scan.Observation
}

// RelayScan runs the Figure 3 operator scan (5-minute cadence over a
// virtual day, open and fixed DNS) plus the 30-second rotation scan.
func (e *Env) RelayScan(ctx context.Context, dayRounds, rotationRounds int) (*RelayScanResult, error) {
	// The paper measures from a German vantage (TUM) whose dominant
	// egress operator pool spans multiple multi-address subnets (§4.3:
	// six addresses from four subnets). Pick a DE client whose sticky
	// operator is AkamaiPR; fall back to any DE client, then to any.
	client := e.World.ClientASes[len(e.World.ClientASes)/2].Prefixes[0].Addr().Next()
	foundDE := false
	for _, c := range e.World.ClientASes {
		cand := c.Prefixes[0].Addr().Next()
		if e.Dep.ClientCountry(cand) != "DE" {
			continue
		}
		if !foundDE {
			client = cand
			foundDE = true
		}
		if e.Dep.SelectOperator(cand, 0) == netsim.ASAkamaiPR {
			client = cand
			break
		}
	}
	svc, err := relay.StartService(e.Dep, relay.ServiceConfig{Client: client, Month: netsim.MonthApr, Seed: e.Seed})
	if err != nil {
		return nil, err
	}
	defer svc.Close()
	svc.Issuer.DailyLimit = 1 << 20

	auth := dnsserver.NewAuthServer(e.World, netsim.MonthApr, nil)
	var upstream dnsserver.Exchanger = &dnsserver.MemTransport{Handler: auth, Source: netip.MustParseAddr("9.9.9.9")}
	if e.FaultProfile != nil {
		upstream = faults.NewInjector(upstream, e.FaultProfile, nil, e.World.Table.Origin)
	}
	res := resolver.New(netip.MustParseAddr("9.9.9.9"), upstream)
	dev := &relay.Device{Client: client, Resolver: res, Service: svc, Account: "scan", Day: "2022-05-11"}

	ws, err := scan.StartWebServer()
	if err != nil {
		return nil, err
	}
	defer ws.Close()
	es, err := scan.StartEchoServer()
	if err != nil {
		return nil, err
	}
	defer es.Close()

	result := &RelayScanResult{}
	result.Open, err = scan.Run(ctx, scan.Config{Device: dev, Web: ws, Echo: es, Rounds: dayRounds, Interval: 5 * time.Minute, Connect: e.ConnectRetries})
	if err != nil {
		return nil, err
	}

	forced := e.World.IngressFleet(netsim.ASAkamaiPR, netsim.MonthApr, netsim.ProtoDefault, netsim.FamilyV4, 0)[0]
	res.AddLocalZone(dnsserver.MaskDomain, []dnswire.Record{{
		Name: dnsserver.MaskDomain, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 60, A: forced,
	}})
	result.Fixed, err = scan.Run(ctx, scan.Config{Device: dev, Web: ws, Echo: es, Rounds: dayRounds, Interval: 5 * time.Minute, Connect: e.ConnectRetries})
	if err != nil {
		return nil, err
	}
	res.ClearLocalZone(dnsserver.MaskDomain)

	rot, err := scan.Run(ctx, scan.Config{Device: dev, Web: ws, Echo: es, Rounds: rotationRounds, Interval: 30 * time.Second, Connect: e.ConnectRetries})
	if err != nil {
		return nil, err
	}
	db := e.Dep.GeoDB()
	lookup := func(a netip.Addr) (netip.Prefix, bool) {
		p, _, ok := db.Network(a)
		return p, ok
	}
	// Headline rotation numbers describe the dominant operator's pool,
	// matching the paper's single-location 48 h observation.
	var haveDominant bool
	result.RotationOperator, result.RotationObs, haveDominant = scan.DominantOperator(rot)
	if !haveDominant && len(rot) > 0 {
		return nil, fmt.Errorf("experiments: rotation scan had no successful rounds")
	}
	result.Rotation = scan.Rotation(result.RotationObs, lookup)
	result.RotationAll = scan.Rotation(rot, lookup)
	result.OpenChanges = scan.OperatorChanges(result.Open)
	result.FixedChanges = scan.OperatorChanges(result.Fixed)
	return result, nil
}

// QUICResult captures the §3 probing matrix (S5).
type QUICResult struct {
	VersionNegotiation quicsim.ProbeResult
	StandardHandshake  quicsim.ProbeResult
	RelayHandshake     quicsim.ProbeResult
}

// QUICProbes runs the three probe types against an ingress endpoint.
func (e *Env) QUICProbes() (*QUICResult, error) {
	ep := &quicsim.IngressEndpoint{}
	vn, err := quicsim.VersionProbe(ep)
	if err != nil {
		return nil, err
	}
	std, err := quicsim.StandardHandshakeProbe(ep)
	if err != nil {
		return nil, err
	}
	rel, err := quicsim.RelayHandshakeProbe(ep)
	if err != nil {
		return nil, err
	}
	return &QUICResult{VersionNegotiation: vn, StandardHandshake: std, RelayHandshake: rel}, nil
}

// AtlasResult bundles the RIPE Atlas campaigns (S2, S3, S4).
type AtlasResult struct {
	Probes          int
	PublicResolvers int // per mille
	V4Found         int
	V4ExtraVsECS    int // addresses Atlas saw that ECS did not
	V4MissingVsECS  int
	V6Found         int
	V6DirectAdded   int
	Blocking        *atlas.BlockingReport
	// Completeness accounts the A-validation campaign's outcome buckets
	// (answered / timed out / errored probes).
	Completeness atlas.Completeness
}

// Atlas runs validation (A), enumeration (AAAA) and the blocking study.
func (e *Env) Atlas(ctx context.Context, probes, clusters int) (*AtlasResult, error) {
	ecs, err := e.ScanMonth(ctx, netsim.MonthApr, dnsserver.MaskDomain)
	if err != nil {
		return nil, err
	}
	popCfg := atlas.Config{
		Seed: e.Seed, N: probes, SubnetClusters: clusters, Phase: 1,
	}
	if e.FaultProfile != nil {
		popCfg.WrapTransport = func(ex dnsserver.Exchanger) dnsserver.Exchanger {
			return faults.NewInjector(ex, e.FaultProfile, nil, e.World.Table.Origin)
		}
	}
	pop := atlas.NewPopulation(e.World, netsim.MonthApr, popCfg)
	out := &AtlasResult{Probes: len(pop.Probes), PublicResolvers: atlas.IdentifyResolvers(pop)}

	aRes, err := atlas.Campaign{Domain: dnsserver.MaskDomain, Type: dnswire.TypeA, Workers: e.PipelineWorkers}.Run(ctx, pop)
	if err != nil {
		return nil, err
	}
	out.Completeness = atlas.Summarize(aRes)
	for _, a := range atlas.DistinctAddrs(aRes) {
		if a == resolver.HijackAddr {
			continue
		}
		out.V4Found++
		if _, ok := ecs.Addresses[a]; !ok {
			out.V4ExtraVsECS++
		}
	}
	out.V4MissingVsECS = len(ecs.Addresses) - (out.V4Found - out.V4ExtraVsECS)

	v6Res, err := atlas.Campaign{Domain: dnsserver.MaskDomain, Type: dnswire.TypeAAAA, Workers: e.PipelineWorkers}.Run(ctx, pop)
	if err != nil {
		return nil, err
	}
	direct, err := atlas.Campaign{Domain: dnsserver.MaskDomain, Type: dnswire.TypeAAAA, Workers: e.PipelineWorkers}.RunDirect(ctx, pop)
	if err != nil {
		return nil, err
	}
	viaResolver := len(atlas.DistinctAddrs(v6Res))
	out.V6Found = len(atlas.DistinctAddrs(append(v6Res, direct...)))
	out.V6DirectAdded = out.V6Found - viaResolver

	out.Blocking, err = atlas.BlockingStudyWorkers(ctx, pop, e.PipelineWorkers)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CorrelationResult is the §6 audit (S7).
type CorrelationResult struct {
	SharedOperators []bgp.ASN
	LastHopPairs    []trace.LastHopPair
	Utilization     trace.PrefixUtilization
	FirstSeen       bgp.Month
}

// Correlation runs the shared-operator, last-hop and prefix audits.
func (e *Env) Correlation(ctx context.Context) (*CorrelationResult, error) {
	def, err := e.ScanMonth(ctx, netsim.MonthApr, dnsserver.MaskDomain)
	if err != nil {
		return nil, err
	}
	fb, err := e.ScanMonth(ctx, netsim.MonthApr, dnsserver.MaskH2Domain)
	if err != nil {
		return nil, err
	}
	v6 := map[netip.Addr]bgp.ASN{}
	for _, as := range []bgp.ASN{netsim.ASApple, netsim.ASAkamaiPR} {
		for _, a := range e.World.IngressFleet(as, netsim.MonthApr, netsim.ProtoDefault, netsim.FamilyV6, 0) {
			v6[a] = as
		}
	}
	res := &CorrelationResult{
		SharedOperators: trace.SharedOperators(def.Addresses, e.Attributed),
		Utilization: trace.AuditPrefixUtilization(e.World, netsim.ASAkamaiPR,
			[]map[netip.Addr]bgp.ASN{def.Addresses, fb.Addresses, v6}, e.Attributed),
	}
	res.FirstSeen, _ = trace.FirstSeen(e.World, netsim.ASAkamaiPR)

	vantage := e.World.ClientASes[0].Prefixes[0].Addr().Next()
	ingressAk := def.AddressesOf(netsim.ASAkamaiPR)
	var egressAk []netip.Addr
	for _, a := range e.Attributed {
		if a.AS == netsim.ASAkamaiPR && a.Prefix.Addr().Is4() {
			egressAk = append(egressAk, a.Prefix.Addr().Next())
			if len(egressAk) >= 400 {
				break
			}
		}
	}
	res.LastHopPairs = trace.LastHopCorrelation(e.World, vantage, ingressAk, egressAk, 16)
	return res, nil
}

// ExportFigures writes every figure's raw series as CSV files into dir:
// fig2-*.csv and fig5-*-v6.csv geo scatters, fig3-*.csv operator
// timelines, fig4-*-cities-*.csv CDFs. The relay scan reruns with the
// given round counts.
func (e *Env) ExportFigures(ctx context.Context, dir string, dayRounds int) ([]string, error) {
	var written []string
	save := func(name string, fn func(io.Writer) error) error {
		path := filepath.Join(dir, name)
		if err := atomicio.WriteFile(path, fn); err != nil {
			return err
		}
		written = append(written, path)
		return nil
	}

	// Figures 2 and 5: geo scatters per panel and family.
	for _, fam := range []netsim.Family{netsim.FamilyV4, netsim.FamilyV6} {
		suffix := ""
		prefix := "fig2"
		if fam == netsim.FamilyV6 {
			suffix = "-v6"
			prefix = "fig5"
		}
		akamai := analysis.GeoScatter(e.Attributed, netsim.ASAkamaiPR, fam)
		akamai = append(akamai, analysis.GeoScatter(e.Attributed, netsim.ASAkamaiEdge, fam)...)
		panels := map[string][]analysis.GeoPoint{
			"akamai":     akamai,
			"cloudflare": analysis.GeoScatter(e.Attributed, netsim.ASCloudflare, fam),
			"fastly":     analysis.GeoScatter(e.Attributed, netsim.ASFastly, fam),
		}
		for name, pts := range panels {
			pts := pts
			if err := save(fmt.Sprintf("%s-%s%s.csv", prefix, name, suffix), func(w io.Writer) error {
				return analysis.WriteGeoScatterCSV(w, pts)
			}); err != nil {
				return written, err
			}
		}
	}

	// Figure 4: city and country CDFs per operator and family.
	for _, fam := range []netsim.Family{netsim.FamilyV4, netsim.FamilyV6} {
		for _, kind := range []analysis.LocationKind{analysis.ByCity, analysis.ByCountry} {
			kindName := "cities"
			if kind == analysis.ByCountry {
				kindName = "countries"
			}
			for _, as := range relay.EgressOperators {
				cdf := analysis.LocationCDF(e.Attributed, as, fam, kind)
				name := fmt.Sprintf("fig4-%s-%s-%s.csv", netsim.ASName(as), kindName, strings.ToLower(fam.String()))
				if err := save(name, func(w io.Writer) error {
					return analysis.WriteCDFCSV(w, cdf)
				}); err != nil {
					return written, err
				}
			}
		}
	}

	// Figure 3: operator timelines.
	rs, err := e.RelayScan(ctx, dayRounds, 0)
	if err != nil {
		return written, err
	}
	if err := save("fig3-open.csv", func(w io.Writer) error {
		return analysis.WriteOperatorTimelineCSV(w, rs.Open)
	}); err != nil {
		return written, err
	}
	if err := save("fig3-fixed.csv", func(w io.Writer) error {
		return analysis.WriteOperatorTimelineCSV(w, rs.Fixed)
	}); err != nil {
		return written, err
	}
	return written, nil
}

// QoEResult summarizes the latency extension (the paper's future-work
// question iii): relayed vs direct round-trip times across many
// client/target pairs.
type QoEResult struct {
	Samples          int
	MedianOverhead   float64 // relay RTT / direct RTT at the median
	P90Overhead      float64
	RelayFasterShare float64 // share of pairs where the relay wins
}

// QoE samples client/target pairs and compares direct with relayed RTTs
// using the deployment's latency model.
func (e *Env) QoE(samples int) *QoEResult {
	n := len(e.World.ClientASes)
	var ratios []float64
	faster := 0
	for i := 0; i < samples; i++ {
		client := e.World.ClientASes[i%n].Prefixes[0].Addr().Next()
		target := e.World.ClientASes[(i*7+3)%n].Prefixes[0].Addr().Next()
		ingList := e.Dep.IngressFor(client, netsim.MonthApr, netsim.ProtoDefault)
		pool := e.Dep.EgressPool(client, netsim.ASAkamaiPR)
		if len(ingList) == 0 || len(pool) == 0 {
			continue
		}
		p := e.Dep.QoEPath(client, ingList[0], pool[i%len(pool)], target)
		ratios = append(ratios, p.OverheadRatio())
		if p.Relay() < p.Direct {
			faster++
		}
	}
	slices.Sort(ratios)
	res := &QoEResult{Samples: len(ratios)}
	if len(ratios) > 0 {
		res.MedianOverhead = ratios[len(ratios)/2]
		res.P90Overhead = ratios[len(ratios)*9/10]
		res.RelayFasterShare = float64(faster) / float64(len(ratios))
	}
	return res
}

// GeoDBAdoption measures how much a geolocation database agrees with the
// egress list's represented locations — the paper found MaxMind adopted
// Apple's mapping for most subnets. Returns the country-level agreement
// share over the sampled entries.
func (e *Env) GeoDBAdoption(sample int) float64 {
	db := e.List.GeoDB()
	if sample <= 0 || sample > len(e.List.Entries) {
		sample = len(e.List.Entries)
	}
	agree := 0
	for i := 0; i < sample; i++ {
		entry := e.List.Entries[i*len(e.List.Entries)/sample]
		if loc, ok := db.LookupPrefix(entry.Prefix); ok && loc.CountryCode == entry.CC {
			agree++
		}
	}
	return float64(agree) / float64(sample)
}

// ODoHCheck verifies the Appendix B behaviour (S9): the in-relay DNS path
// uses Cloudflare's resolver and attaches the egress address as ECS.
func (e *Env) ODoHCheck() (resolverName string, ecsPrefix netip.Prefix) {
	dev := &relay.Device{}
	pr := dev.ODoHResolver()
	sample := netip.MustParseAddr("172.224.224.9")
	return pr.Name, relay.ODoHQueryECS(sample)
}

// FullReport renders every experiment into one text report.
func (e *Env) FullReport(ctx context.Context) (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "iCloud Private Relay reproduction — seed=%d scale=%g\n", e.Seed, e.Scale)
	fmt.Fprintf(&sb, "world: %d client ASes, %d routed /24s, %d BGP announcements\n\n",
		len(e.World.ClientASes), e.World.ClientSlash24Count(), e.World.Table.Len())

	t1, err := e.Table1(ctx)
	if err != nil {
		return "", err
	}
	sb.WriteString("== Table 1: ingress relays per AS ==\n")
	sb.WriteString(analysis.RenderTable1(t1))

	t2, share, err := e.Table2(ctx)
	if err != nil {
		return "", err
	}
	sb.WriteString("\n== Table 2: client ASes per ingress operator (April) ==\n")
	sb.WriteString(analysis.RenderTable2(t2, share))

	sb.WriteString("\n== Table 3: egress subnets per operating AS ==\n")
	sb.WriteString(analysis.RenderTable3(e.Table3()))

	sb.WriteString("\n== Table 4: covered cities per operator ==\n")
	sb.WriteString(analysis.RenderTable4(e.Table4()))

	sb.WriteString("\n== Figure 2: egress subnet geolocation (IPv4) ==\n")
	for name, b := range e.Figure2() {
		sb.WriteString(analysis.RenderGeoBounds(name, b))
	}

	sb.WriteString("\n== Figure 4: location CDFs ==\n")
	for _, fam := range []netsim.Family{netsim.FamilyV4, netsim.FamilyV6} {
		for name, cdf := range e.Figure4(analysis.ByCity, fam) {
			sb.WriteString(analysis.RenderCDF(fmt.Sprintf("%s cities %s", name, fam), cdf))
		}
	}

	shares, small := analysis.CountrySharesN(e.Attributed, 50, e.PipelineWorkers)
	fmt.Fprintf(&sb, "\n== §4.2 geographic bias ==\ntop: %s %.1f%%, second: %s %.1f%%; %d countries under 50 subnets\n",
		shares[0].CC, shares[0].Share, shares[1].CC, shares[1].Share, small)

	rs, err := e.RelayScan(ctx, 96, 200)
	if err != nil {
		return "", err
	}
	sb.WriteString("\n== Figure 3: egress operator changes ==\n")
	sb.WriteString(analysis.RenderFigure3([]analysis.Figure3Series{
		{Label: "Open Scan", Rounds: len(rs.Open), Changes: rs.OpenChanges},
		{Label: "Fixed DNS Scan", Rounds: len(rs.Fixed), Changes: rs.FixedChanges},
	}))
	fmt.Fprintf(&sb, "\n== §4.3 rotation ==\ndominant operator %s: %d addrs / %d subnets, change rate %.0f%%, %d parallel-diff rounds\nall operators: %d addrs / %d subnets\n",
		netsim.ASName(rs.RotationOperator),
		rs.Rotation.DistinctAddrs, rs.Rotation.DistinctSubnets, rs.Rotation.ChangeRate*100, rs.Rotation.ParallelDiffer,
		rs.RotationAll.DistinctAddrs, rs.RotationAll.DistinctSubnets)

	qp, err := e.QUICProbes()
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&sb, "\n== §3 QUIC probing ==\nVN responded=%v versions=%#x; standard handshake responded=%v; relay handshake ok=%v\n",
		qp.VersionNegotiation.Responded, qp.VersionNegotiation.Versions,
		qp.StandardHandshake.Responded, qp.RelayHandshake.HandshakeOK)

	at, err := e.Atlas(ctx, 4000, 1500)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&sb, "\n== §4.1 RIPE Atlas ==\nprobes=%d public-resolver share=%d‰\nA: found %d (extra %d, missing %d vs ECS)\nAAAA: found %d (direct added %d)\n%s\n",
		at.Probes, at.PublicResolvers, at.V4Found, at.V4ExtraVsECS, at.V4MissingVsECS,
		at.V6Found, at.V6DirectAdded, at.Blocking)

	corr, err := e.Correlation(ctx)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&sb, "\n== §6 correlation ==\nshared operators: %v\nshared last-hop pairs: %d (e.g. %v)\n%s\nAkamaiPR first seen: %s\n",
		corr.SharedOperators, len(corr.LastHopPairs), firstOrNone(corr.LastHopPairs), corr.Utilization, corr.FirstSeen)

	name, ecs := e.ODoHCheck()
	fmt.Fprintf(&sb, "\n== App. B ODoH ==\nresolver=%s egress-ECS=%s\n", name, ecs)

	qoe := e.QoE(400)
	fmt.Fprintf(&sb, "\n== Extension: QoE (future work iii) ==\n%d samples: median relay overhead ×%.2f, p90 ×%.2f, relay faster in %.0f%% of pairs\n",
		qoe.Samples, qoe.MedianOverhead, qoe.P90Overhead, qoe.RelayFasterShare*100)
	fmt.Fprintf(&sb, "geo-DB adoption of the egress mapping: %.1f%%\n", e.GeoDBAdoption(5000)*100)
	return sb.String(), nil
}

func firstOrNone(pairs []trace.LastHopPair) string {
	if len(pairs) == 0 {
		return "none"
	}
	p := pairs[0]
	return fmt.Sprintf("ingress %v + egress %v behind %s", p.Ingress, p.Egress, p.Router)
}
