package experiments

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/relay-networks/privaterelay/internal/analysis"
	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/netsim"
)

var (
	envOnce sync.Once
	envVal  *Env
)

func testEnv(t testing.TB) *Env {
	t.Helper()
	envOnce.Do(func() { envVal = NewEnv(42, 0.0008) })
	return envVal
}

func TestTable1EndToEnd(t *testing.T) {
	e := testEnv(t)
	rows, err := e.Table1(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	apr := rows[3]
	if apr.DefaultApple+apr.DefaultAkamai != 1586 {
		t.Fatalf("April default total = %d, want 1586", apr.DefaultApple+apr.DefaultAkamai)
	}
	if rows[0].FallbackPresent {
		t.Fatal("January fallback should be absent")
	}
}

func TestScanMonthMemoization(t *testing.T) {
	e := testEnv(t)
	ctx := context.Background()
	a, err := e.ScanMonth(ctx, netsim.MonthApr, "mask.icloud.com.")
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.ScanMonth(ctx, netsim.MonthApr, "mask.icloud.com.")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("scan not memoized")
	}
}

func TestTable2Table3Table4(t *testing.T) {
	e := testEnv(t)
	rows2, share, err := e.Table2(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows2) != 3 || share < 70 || share > 82 {
		t.Fatalf("table2: %v share=%.1f", rows2, share)
	}
	if len(e.Table3()) != 4 || len(e.Table4()) != 4 {
		t.Fatal("table3/4 row counts")
	}
}

func TestFigures(t *testing.T) {
	e := testEnv(t)
	f2 := e.Figure2()
	if len(f2) != 3 {
		t.Fatalf("figure2 panels = %d", len(f2))
	}
	if f2["Akamai"].Points != 9890+1602 {
		t.Fatalf("Akamai v4 panel points = %d", f2["Akamai"].Points)
	}
	f5 := e.Figure5()
	if len(f5) != 6 {
		t.Fatalf("figure5 panels = %d", len(f5))
	}
	f4 := e.Figure4(analysis.ByCity, netsim.FamilyV6)
	if len(f4) != 4 {
		t.Fatalf("figure4 curves = %d", len(f4))
	}
}

func TestRelayScanExperiment(t *testing.T) {
	e := testEnv(t)
	rs, err := e.RelayScan(context.Background(), 64, 120)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Open) != 64 || len(rs.Fixed) != 64 {
		t.Fatalf("scan lengths: %d/%d", len(rs.Open), len(rs.Fixed))
	}
	if rs.Rotation.ChangeRate <= 0.5 {
		t.Fatalf("rotation change rate %.2f", rs.Rotation.ChangeRate)
	}
	if rs.Rotation.DistinctAddrs == 0 || rs.Rotation.DistinctSubnets == 0 {
		t.Fatal("rotation saw nothing")
	}
}

func TestQUICProbesExperiment(t *testing.T) {
	e := testEnv(t)
	qp, err := e.QUICProbes()
	if err != nil {
		t.Fatal(err)
	}
	if !qp.VersionNegotiation.Responded || len(qp.VersionNegotiation.Versions) != 4 {
		t.Fatalf("VN: %+v", qp.VersionNegotiation)
	}
	if qp.StandardHandshake.Responded {
		t.Fatal("standard handshake should time out")
	}
	if !qp.RelayHandshake.HandshakeOK {
		t.Fatal("relay handshake should succeed")
	}
}

func TestAtlasExperiment(t *testing.T) {
	e := testEnv(t)
	at, err := e.Atlas(context.Background(), 3000, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if at.V4Found == 0 || at.V4Found >= 1586 {
		t.Fatalf("v4 found = %d", at.V4Found)
	}
	if at.V4ExtraVsECS == 0 || at.V4ExtraVsECS > 6 {
		t.Fatalf("extra vs ECS = %d, want ≈1", at.V4ExtraVsECS)
	}
	if at.V6Found < 1450 {
		t.Fatalf("v6 found = %d", at.V6Found)
	}
	if at.Blocking.BlockedShare() < 3 || at.Blocking.BlockedShare() > 8 {
		t.Fatalf("blocked share = %.1f", at.Blocking.BlockedShare())
	}
}

func TestCorrelationExperiment(t *testing.T) {
	e := testEnv(t)
	corr, err := e.Correlation(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(corr.SharedOperators) != 1 || corr.SharedOperators[0] != netsim.ASAkamaiPR {
		t.Fatalf("shared = %v", corr.SharedOperators)
	}
	if len(corr.LastHopPairs) == 0 {
		t.Fatal("no last-hop pairs")
	}
	if corr.Utilization.UsedShare() < 88 || corr.Utilization.UsedShare() > 95 {
		t.Fatalf("utilization = %.1f%%", corr.Utilization.UsedShare())
	}
	if corr.FirstSeen != (bgp.Month{Year: 2021, M: 6}) {
		t.Fatalf("first seen = %v", corr.FirstSeen)
	}
}

func TestODoHCheck(t *testing.T) {
	e := testEnv(t)
	name, ecs := e.ODoHCheck()
	if name != "Cloudflare1111" || ecs.Bits() != 24 {
		t.Fatalf("ODoH: %s %v", name, ecs)
	}
}

func TestFullReportRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("full report is slow")
	}
	e := testEnv(t)
	report, err := e.FullReport(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Table 1", "Table 2", "Table 3", "Table 4",
		"Figure 2", "Figure 3", "Figure 4",
		"QUIC probing", "RIPE Atlas", "correlation", "ODoH",
		"1237", "142826", "2021-06",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestQoEExtension(t *testing.T) {
	e := testEnv(t)
	res := e.QoE(200)
	if res.Samples < 100 {
		t.Fatalf("samples = %d", res.Samples)
	}
	if res.MedianOverhead <= 0 {
		t.Fatalf("median overhead = %v", res.MedianOverhead)
	}
	if res.MedianOverhead > 6 {
		t.Fatalf("median overhead ×%.1f — relay detour should stay bounded", res.MedianOverhead)
	}
	if res.P90Overhead < res.MedianOverhead {
		t.Fatal("p90 below median")
	}
}

func TestGeoDBAdoption(t *testing.T) {
	e := testEnv(t)
	// The geo DB is derived from the egress list, reproducing the paper's
	// finding that commercial databases adopted Apple's mapping.
	if got := e.GeoDBAdoption(5000); got < 0.999 {
		t.Fatalf("adoption = %.3f, want ≈1.0", got)
	}
}

func TestExportFigures(t *testing.T) {
	e := testEnv(t)
	dir := t.TempDir()
	files, err := e.ExportFigures(context.Background(), dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	// 6 geo panels + 16 CDFs (4 AS × 2 kinds × 2 fams) + 2 timelines.
	if len(files) != 6+16+2 {
		t.Fatalf("exported %d files", len(files))
	}
	// Spot-check one scatter and one CDF.
	checkLines := func(name string, header string, minRows int) {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if lines[0] != header {
			t.Fatalf("%s header = %q", name, lines[0])
		}
		if len(lines)-1 < minRows {
			t.Fatalf("%s has %d rows, want ≥%d", name, len(lines)-1, minRows)
		}
	}
	checkLines("fig2-cloudflare.csv", "lat,lon,cc", 18218)
	checkLines("fig4-AkamaiPR-cities-ipv6.csv", "rank,cum_share", 14000)
	checkLines("fig3-open.csv", "round,seconds,operator", 10)
}
