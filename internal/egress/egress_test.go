package egress

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"

	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/iputil"
	"github.com/relay-networks/privaterelay/internal/netsim"
)

// sharedWorld and sharedList are built once: generation covers ~240k
// entries and every test in this file reads from the same list.
var (
	sharedWorld *netsim.World
	sharedList  *List
)

func testList(t testing.TB) (*netsim.World, *List) {
	t.Helper()
	if sharedList == nil {
		sharedWorld = netsim.NewWorld(netsim.Params{Seed: 9, Scale: 0.0005})
		sharedList = Generate(sharedWorld, 17)
	}
	return sharedWorld, sharedList
}

// splitByASFam indexes entries per (AS, family) via BGP attribution.
func splitByASFam(t testing.TB, w *netsim.World, l *List) map[bgp.ASN]map[netsim.Family][]Attributed {
	t.Helper()
	out := map[bgp.ASN]map[netsim.Family][]Attributed{}
	for _, a := range Attribute(l, w.Table) {
		if a.AS == 0 {
			t.Fatalf("unattributed entry %v", a.Prefix)
		}
		fam := netsim.FamilyV4
		if a.Prefix.Addr().Is6() {
			fam = netsim.FamilyV6
		}
		if out[a.AS] == nil {
			out[a.AS] = map[netsim.Family][]Attributed{}
		}
		out[a.AS][fam] = append(out[a.AS][fam], a)
	}
	return out
}

func TestGenerateTable3SubnetCounts(t *testing.T) {
	w, l := testList(t)
	byAS := splitByASFam(t, w, l)
	cases := []struct {
		as      bgp.ASN
		v4, v6  int
		v4Addrs uint64
		v4BGP   int
		v6BGP   int
	}{
		{netsim.ASAkamaiPR, 9890, 142826, 57589, 301, 1172},
		{netsim.ASAkamaiEdge, 1602, 23495, 5100, 1, 1},
		{netsim.ASCloudflare, 18218, 26988, 18218, 112, 2},
		{netsim.ASFastly, 8530, 8530, 17060, 81, 81},
	}
	for _, c := range cases {
		name := netsim.ASName(c.as)
		if got := len(byAS[c.as][netsim.FamilyV4]); got != c.v4 {
			t.Errorf("%s v4 subnets = %d, want %d", name, got, c.v4)
		}
		if got := len(byAS[c.as][netsim.FamilyV6]); got != c.v6 {
			t.Errorf("%s v6 subnets = %d, want %d", name, got, c.v6)
		}
		var addrs uint64
		bgpPfx := map[netip.Prefix]bool{}
		for _, a := range byAS[c.as][netsim.FamilyV4] {
			addrs += iputil.AddrCount(a.Prefix)
			bgpPfx[a.BGPPrefix] = true
		}
		if addrs != c.v4Addrs {
			t.Errorf("%s v4 addresses = %d, want %d", name, addrs, c.v4Addrs)
		}
		if len(bgpPfx) != c.v4BGP {
			t.Errorf("%s v4 BGP prefixes = %d, want %d", name, len(bgpPfx), c.v4BGP)
		}
		bgpPfx6 := map[netip.Prefix]bool{}
		for _, a := range byAS[c.as][netsim.FamilyV6] {
			if a.Prefix.Bits() != 64 {
				t.Fatalf("%s v6 subnet %v is not a /64", name, a.Prefix)
			}
			bgpPfx6[a.BGPPrefix] = true
		}
		if len(bgpPfx6) != c.v6BGP {
			t.Errorf("%s v6 BGP prefixes = %d, want %d", name, len(bgpPfx6), c.v6BGP)
		}
	}
}

func TestGenerateCountryCoverage(t *testing.T) {
	w, l := testList(t)
	byAS := splitByASFam(t, w, l)
	ccsOf := func(as bgp.ASN, fam netsim.Family) map[string]bool {
		set := map[string]bool{}
		for _, a := range byAS[as][fam] {
			set[a.CC] = true
		}
		return set
	}
	// Table 3 IPv6 CC counts.
	if got := len(ccsOf(netsim.ASAkamaiPR, netsim.FamilyV6)); got != 236 {
		t.Errorf("AkamaiPR v6 CCs = %d, want 236", got)
	}
	if got := len(ccsOf(netsim.ASAkamaiEdge, netsim.FamilyV6)); got != 24 {
		t.Errorf("AkamaiEdge v6 CCs = %d, want 24", got)
	}
	if got := len(ccsOf(netsim.ASCloudflare, netsim.FamilyV6)); got != 248 {
		t.Errorf("Cloudflare v6 CCs = %d, want 248", got)
	}
	if got := len(ccsOf(netsim.ASFastly, netsim.FamilyV6)); got != 236 {
		t.Errorf("Fastly v6 CCs = %d, want 236", got)
	}
	// §4.2: AkamaiEdge's 18 IPv4 countries.
	if got := len(ccsOf(netsim.ASAkamaiEdge, netsim.FamilyV4)); got != 18 {
		t.Errorf("AkamaiEdge v4 CCs = %d, want 18", got)
	}
	// Cloudflare-only countries: exactly 11.
	cf := ccsOf(netsim.ASCloudflare, netsim.FamilyV6)
	ak := ccsOf(netsim.ASAkamaiPR, netsim.FamilyV6)
	fast := ccsOf(netsim.ASFastly, netsim.FamilyV6)
	only := 0
	for cc := range cf {
		if !ak[cc] && !fast[cc] {
			only++
		}
	}
	if only != 11 {
		t.Errorf("Cloudflare-only CCs = %d, want 11", only)
	}
	// AkamaiPR covers everything AkamaiEdge covers, plus 212 more.
	edge := ccsOf(netsim.ASAkamaiEdge, netsim.FamilyV6)
	for cc := range edge {
		if !ak[cc] {
			t.Errorf("AkamaiEdge country %s not covered by AkamaiPR", cc)
		}
	}
	if extra := len(ak) - len(edge); extra != 212 {
		t.Errorf("AkamaiPR extra CCs over AkamaiEdge = %d, want 212", extra)
	}
	// KN (Saint Kitts and Nevis) is represented despite having no PoP.
	if !ak["KN"] {
		t.Error("KN missing from AkamaiPR coverage")
	}
}

func TestGenerateTable4CityCounts(t *testing.T) {
	w, l := testList(t)
	byAS := splitByASFam(t, w, l)
	citySet := func(as bgp.ASN, fam netsim.Family) map[string]bool {
		set := map[string]bool{}
		for _, a := range byAS[as][fam] {
			if a.City != "" {
				set[a.CC+"/"+a.City] = true
			}
		}
		return set
	}
	cases := []struct {
		as            bgp.ASN
		total, v4, v6 int
	}{
		{netsim.ASAkamaiPR, 14088, 853, 14085},
		{netsim.ASAkamaiEdge, 7507, 455, 7507},
		{netsim.ASCloudflare, 5228, 1134, 5228},
		{netsim.ASFastly, 848, 848, 848},
	}
	for _, c := range cases {
		name := netsim.ASName(c.as)
		v4 := citySet(c.as, netsim.FamilyV4)
		v6 := citySet(c.as, netsim.FamilyV6)
		union := map[string]bool{}
		for k := range v4 {
			union[k] = true
		}
		for k := range v6 {
			union[k] = true
		}
		if len(v4) != c.v4 {
			t.Errorf("%s v4 cities = %d, want %d", name, len(v4), c.v4)
		}
		if len(v6) != c.v6 {
			t.Errorf("%s v6 cities = %d, want %d", name, len(v6), c.v6)
		}
		if len(union) != c.total {
			t.Errorf("%s total cities = %d, want %d", name, len(union), c.total)
		}
	}
}

func TestGenerateGeoBias(t *testing.T) {
	_, l := testList(t)
	perCC := map[string]int{}
	for _, e := range l.Entries {
		perCC[e.CC]++
	}
	total := len(l.Entries)
	usShare := float64(perCC["US"]) / float64(total) * 100
	if usShare < 50 || usShare > 66 {
		t.Errorf("US share = %.1f%%, want ≈58%%", usShare)
	}
	deShare := float64(perCC["DE"]) / float64(total) * 100
	if deShare < 2.5 || deShare > 5 {
		t.Errorf("DE share = %.1f%%, want ≈3.6%%", deShare)
	}
	// DE is the second-largest country.
	for cc, n := range perCC {
		if cc != "US" && cc != "DE" && n > perCC["DE"] {
			t.Errorf("%s (%d subnets) exceeds DE (%d)", cc, n, perCC["DE"])
		}
	}
	// A long tail of countries below 50 subnets (paper: 123).
	small := 0
	for _, n := range perCC {
		if n < 50 {
			small++
		}
	}
	if small < 90 || small > 160 {
		t.Errorf("countries under 50 subnets = %d, want ≈123", small)
	}
}

func TestGenerateBlankCities(t *testing.T) {
	_, l := testList(t)
	blanks := 0
	for _, e := range l.Entries {
		if e.City == "" {
			blanks++
			if e.Region != "" {
				t.Fatal("blank-city entry has a region")
			}
		}
	}
	share := float64(blanks) / float64(len(l.Entries)) * 100
	if share < 0.8 || share > 2.5 {
		t.Errorf("blank-city share = %.2f%%, want ≈1.6%%", share)
	}
}

func TestGenerateSubnetsDisjoint(t *testing.T) {
	_, l := testList(t)
	// Group by /16 (v4) and /40 (v6) buckets to keep the pairwise check
	// tractable, then verify no overlap within buckets.
	buckets := map[netip.Prefix][]netip.Prefix{}
	for _, e := range l.Entries {
		var key netip.Prefix
		if e.Prefix.Addr().Is4() {
			key = iputil.ParentAt(e.Prefix.Addr(), 16)
		} else {
			key = iputil.ParentAt(e.Prefix.Addr(), 40)
		}
		buckets[key] = append(buckets[key], e.Prefix)
	}
	for key, ps := range buckets {
		seen := map[netip.Prefix]bool{}
		for _, p := range ps {
			if seen[p] {
				t.Fatalf("duplicate subnet %v in bucket %v", p, key)
			}
			seen[p] = true
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	w, l := testList(t)
	again := Generate(w, 17)
	if len(again.Entries) != len(l.Entries) {
		t.Fatal("entry counts differ across runs")
	}
	for i := range l.Entries {
		if l.Entries[i] != again.Entries[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	_, l := testList(t)
	sub := &List{Entries: l.Entries[:500]}
	var buf bytes.Buffer
	if err := sub.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 500 {
		t.Fatalf("parsed %d entries", len(got.Entries))
	}
	for i := range got.Entries {
		if got.Entries[i] != sub.Entries[i] {
			t.Fatalf("entry %d: %+v != %+v", i, got.Entries[i], sub.Entries[i])
		}
	}
}

func TestParseCSVErrors(t *testing.T) {
	cases := []string{
		"not-a-prefix,US,r,c\n",
		"10.0.0.0/24,XX,r,c\n",
		"10.0.0.0/24,US,r\n",
	}
	for i, in := range cases {
		if _, err := ParseCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Comments and blank lines are fine.
	got, err := ParseCSV(strings.NewReader("# comment\n\n10.0.0.0/24,US,US-region-00,US-city-000\n"))
	if err != nil || len(got.Entries) != 1 {
		t.Fatalf("comment handling: %v %d", err, len(got.Entries))
	}
}

func TestEntryLocation(t *testing.T) {
	e := Entry{Prefix: netip.MustParsePrefix("1.2.3.0/30"), CC: "DE", Region: "DE-region-00", City: "DE-city-002"}
	loc := e.Location()
	if loc.City != "DE-city-002" || loc.CountryCode != "DE" {
		t.Fatalf("Location = %+v", loc)
	}
	blank := Entry{CC: "DE"}
	bl := blank.Location()
	if bl.Lat == 0 && bl.Lon == 0 {
		t.Fatal("blank-city location should use country centroid")
	}
}

func TestGeoDBAdoptsAppleMapping(t *testing.T) {
	_, l := testList(t)
	db := (&List{Entries: l.Entries[:2000]}).GeoDB()
	e := l.Entries[100]
	addr := e.Prefix.Addr()
	loc, ok := db.Lookup(addr)
	if !ok {
		t.Fatalf("no geo entry for %v", addr)
	}
	if loc.CountryCode != e.CC || loc.City != e.City {
		t.Fatalf("geo db = %+v, list says %s/%s", loc, e.CC, e.City)
	}
}

func TestAttributeUnroutedEntry(t *testing.T) {
	w, _ := testList(t)
	l := &List{Entries: []Entry{{Prefix: netip.MustParsePrefix("203.0.113.0/28"), CC: "US"}}}
	attr := Attribute(l, w.Table)
	if attr[0].AS != 0 || attr[0].BGPPrefix.IsValid() {
		t.Fatalf("unrouted entry attributed: %+v", attr[0])
	}
}

func BenchmarkGenerate(b *testing.B) {
	w := netsim.NewWorld(netsim.Params{Seed: 9, Scale: 0.0005})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Generate(w, 17)
	}
}

// TestAttributeEquivalentAcrossWorkers proves the fanned-out join is
// bit-identical to the sequential per-entry trie walk at any worker count.
func TestAttributeEquivalentAcrossWorkers(t *testing.T) {
	w, full := testList(t)
	// A slice of the real list plus hand-placed unrouted entries, so both
	// the found and not-found paths are compared.
	l := &List{Entries: append([]Entry{
		{Prefix: netip.MustParsePrefix("203.0.113.0/28"), CC: "US"},
		{Prefix: netip.MustParsePrefix("2001:db8::/64"), CC: "DE"},
	}, full.Entries[:20000]...)}

	// Reference: the pre-sharding algorithm, entry by entry against the
	// locked trie.
	want := make([]Attributed, len(l.Entries))
	for i, e := range l.Entries {
		want[i] = Attributed{Entry: e}
		if route, as, ok := w.Table.CoveringPrefix(e.Prefix); ok {
			want[i].AS = as
			want[i].BGPPrefix = route
		}
	}

	for _, workers := range []int{1, 8, 64} {
		got := AttributeN(l, w.Table, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		// RouteID is new metadata the reference join doesn't produce:
		// check its contract (0 iff unrouted, bijective with BGPPrefix)
		// and compare everything else verbatim.
		idOf := map[netip.Prefix]int32{}
		pfxOf := map[int32]netip.Prefix{}
		for i := range got {
			g := got[i]
			if (g.RouteID == 0) != (g.AS == 0) {
				t.Fatalf("workers=%d: entry %d RouteID=%d with AS=%v", workers, i, g.RouteID, g.AS)
			}
			if g.RouteID != 0 {
				if prev, seen := idOf[g.BGPPrefix]; seen && prev != g.RouteID {
					t.Fatalf("workers=%d: prefix %v has RouteIDs %d and %d", workers, g.BGPPrefix, prev, g.RouteID)
				}
				if prev, seen := pfxOf[g.RouteID]; seen && prev != g.BGPPrefix {
					t.Fatalf("workers=%d: RouteID %d names prefixes %v and %v", workers, g.RouteID, prev, g.BGPPrefix)
				}
				idOf[g.BGPPrefix] = g.RouteID
				pfxOf[g.RouteID] = g.BGPPrefix
			}
			g.RouteID = 0
			if g != want[i] {
				t.Fatalf("workers=%d: entry %d = %+v, want %+v", workers, i, g, want[i])
			}
		}
	}
}
