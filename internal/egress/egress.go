// Package egress models Apple's published egress relay list
// (mask-api.icloud.com/egress-ip-ranges.csv): a CSV of subnets, each
// mapped to a represented country, region and city. The package parses
// the real file format and generates a synthetic list calibrated to the
// paper's measurements:
//
//   - Table 3: per-AS subnet counts, BGP prefix counts, address counts
//     and covered countries for IPv4 and IPv6;
//   - Table 4: covered-city counts per AS (combined, IPv4, IPv6);
//   - §4.2: 58 % of subnets represent the US, DE is second at 3.6 %,
//     123 countries hold fewer than 50 subnets, 11 countries are covered
//     only by Cloudflare, AkamaiPR covers AkamaiEdge's countries plus
//     212 more, and 1.6 % of subnets carry no city.
package egress

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"
	"sync"

	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/geo"
	"github.com/relay-networks/privaterelay/internal/netsim"
)

// Entry is one row of the egress list.
type Entry struct {
	Prefix netip.Prefix
	CC     string
	Region string // empty when City is empty
	City   string // empty for the ~1.6 % of region-less subnets
}

// Location returns the entry's representative coordinates: the city
// location when a city is present, the country centroid otherwise.
func (e Entry) Location() geo.Location {
	if e.City != "" {
		if idx, ok := cityIndex(e.City); ok {
			return geo.CityLocation(e.CC, idx)
		}
	}
	lat, lon := geo.Centroid(e.CC)
	return geo.Location{CountryCode: e.CC, Lat: lat, Lon: lon}
}

// cityIndex recovers the index from a synthetic city name "CC-city-NNN".
func cityIndex(city string) (int, bool) {
	i := strings.LastIndexByte(city, '-')
	if i < 0 {
		return 0, false
	}
	n, err := strconv.Atoi(city[i+1:])
	if err != nil {
		return 0, false
	}
	return n, true
}

// List is a parsed or generated egress list.
type List struct {
	Entries []Entry
}

// WriteCSV emits the list in Apple's four-column format:
// prefix,country,region,city (region and city may be empty).
func (l *List) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range l.Entries {
		if _, err := fmt.Fprintf(bw, "%s,%s,%s,%s\n", e.Prefix, e.CC, e.Region, e.City); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// parseCSVBytesPerLine is the preallocation heuristic: the average line
// in Apple's format ("17.0.0.0/24,US,California,Los Angeles\n") runs
// 35–55 bytes, so sizing Entries at hint/40 lands within a small factor
// of the real row count and avoids the append-regrow copies of a 240k-row
// parse.
const parseCSVBytesPerLine = 40

// ParseCSV reads a list in the four-column format. Malformed lines are
// reported with their line number.
func ParseCSV(r io.Reader) (*List, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024), 1024*1024)
	var out List
	if hint := readerSizeHint(r); hint > 0 {
		out.Entries = make([]Entry, 0, hint/parseCSVBytesPerLine+1)
	}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		pfxField, rest, ok := strings.Cut(text, ",")
		var ccField, regionField, cityField string
		if ok {
			ccField, rest, ok = strings.Cut(rest, ",")
		}
		if ok {
			regionField, cityField, ok = strings.Cut(rest, ",")
		}
		if !ok || strings.IndexByte(cityField, ',') >= 0 {
			return nil, fmt.Errorf("egress: line %d: want 4 fields, got %d", line, strings.Count(text, ",")+1)
		}
		pfx, err := netip.ParsePrefix(pfxField)
		if err != nil {
			return nil, fmt.Errorf("egress: line %d: %w", line, err)
		}
		cc := strings.TrimSpace(ccField)
		if !geo.IsCountryCode(cc) {
			return nil, fmt.Errorf("egress: line %d: unknown country %q", line, cc)
		}
		out.Entries = append(out.Entries, Entry{
			Prefix: pfx,
			CC:     cc,
			Region: strings.TrimSpace(regionField),
			City:   strings.TrimSpace(cityField),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return &out, nil
}

// readerSizeHint reports how many bytes remain in r when the reader
// exposes that cheaply (bytes.Reader/Buffer, strings.Reader, *os.File),
// and 0 otherwise.
func readerSizeHint(r io.Reader) int64 {
	switch v := r.(type) {
	case interface{ Len() int }:
		return int64(v.Len())
	case io.Seeker:
		cur, err := v.Seek(0, io.SeekCurrent)
		if err != nil {
			return 0
		}
		end, err := v.Seek(0, io.SeekEnd)
		if err != nil {
			return 0
		}
		if _, err := v.Seek(cur, io.SeekStart); err != nil {
			return 0
		}
		return end - cur
	}
	return 0
}

// Attributed is an entry joined with BGP origin data. RouteID is a dense
// 1-based identifier of the covering BGP announcement within the routing
// snapshot the join used (0 when unrouted, or when the value was built
// by hand rather than by Attribute): within one attribution run, two
// entries share a RouteID exactly when they share a BGPPrefix, which
// lets aggregations count distinct prefixes with a bitset.
type Attributed struct {
	Entry
	AS        bgp.ASN
	RouteID   int32
	BGPPrefix netip.Prefix
}

// DefaultAttributeWorkers is the worker count AttributeN uses when the
// caller passes 0.
const DefaultAttributeWorkers = 8

// Attribute joins every entry against the routing table, mirroring the
// paper's AS and BGP-prefix attribution of the published list. Entries in
// unrouted space are attributed to AS 0 with an invalid BGP prefix.
func Attribute(l *List, table *bgp.Table) []Attributed {
	return AttributeN(l, table, 0)
}

// AttributeN is Attribute fanned out to `workers` goroutines. The table
// is flattened once into a lock-free interval index, entries are split
// into index-ranged chunks, and each worker writes its chunk's results
// straight into the shared preallocated slice — no merge, no locks, and
// output identical to the sequential join at any worker count.
func AttributeN(l *List, table *bgp.Table, workers int) []Attributed {
	return AttributeInto(nil, l, table, workers)
}

// AttributeInto is AttributeN writing into dst, reusing its capacity
// when it fits so repeated joins (monthly snapshots, benchmarks) don't
// churn a fresh multi-megabyte result slice each run. Every element is
// fully overwritten. Returns the filled slice, which may share memory
// with dst.
func AttributeInto(dst []Attributed, l *List, table *bgp.Table, workers int) []Attributed {
	n := len(l.Entries)
	if cap(dst) >= n {
		dst = dst[:n]
	} else {
		dst = make([]Attributed, n)
	}
	if n == 0 {
		return dst
	}
	if workers <= 0 {
		workers = DefaultAttributeWorkers
	}
	if workers > n {
		workers = n
	}
	idx := table.Index()
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			// Consecutive entries are ~93% address-ascending, so a
			// per-worker cursor turns most lookups into a couple of
			// neighboring key compares instead of a binary search.
			cur := idx.Cursor()
			for i := lo; i < hi; i++ {
				e := l.Entries[i]
				route, as, id, ok := cur.CoveringRoute(e.Prefix)
				a := Attributed{Entry: e, AS: as, BGPPrefix: route}
				if ok {
					a.RouteID = id + 1
				}
				dst[i] = a
			}
		}(lo, hi)
	}
	wg.Wait()
	return dst
}

// GeoDB builds a MaxMind-style geolocation database from the list,
// reproducing the paper's observation that commercial geo databases
// adopted Apple's egress mapping verbatim.
func (l *List) GeoDB() *geo.DB {
	db := geo.NewDB()
	for _, e := range l.Entries {
		loc := e.Location()
		loc.Region, loc.City = e.Region, e.City
		db.Insert(e.Prefix, loc)
	}
	return db
}

// ---- Calibration tables ----

// v4SizeMix describes the IPv4 subnet-size composition per AS, chosen so
// subnet and address counts land exactly on Table 3:
//
//	AkamaiPR:   4508×/29 + 5381×/30 + 1×/32 = 9890 subnets, 57 589 addrs
//	AkamaiEdge:  948×/30 +  654×/31         = 1602 subnets,  5 100 addrs
//	Cloudflare: 18218×/32                   = 18218 subnets, 18 218 addrs
//	Fastly:      8530×/31                   = 8530 subnets, 17 060 addrs
var v4SizeMix = map[bgp.ASN][]struct{ Bits, Count int }{
	netsim.ASAkamaiPR:   {{29, 4508}, {30, 5381}, {32, 1}},
	netsim.ASAkamaiEdge: {{30, 948}, {31, 654}},
	netsim.ASCloudflare: {{32, 18218}},
	netsim.ASFastly:     {{31, 8530}},
}

// v6Counts is the number of /64 entries per AS (Table 3; every listed
// IPv6 subnet has a 64-bit mask).
var v6Counts = map[bgp.ASN]int{
	netsim.ASAkamaiPR:   142826,
	netsim.ASAkamaiEdge: 23495,
	netsim.ASCloudflare: 26988,
	netsim.ASFastly:     8530,
}

// ccCounts is the number of covered countries per AS and family.
// IPv6 counts come from Table 3; AkamaiEdge's 18 IPv4 countries from
// §4.2. Unstated IPv4 counts reuse the IPv6 coverage.
var ccCounts = map[bgp.ASN][2]int{ // [v4, v6]
	netsim.ASAkamaiPR:   {236, 236},
	netsim.ASAkamaiEdge: {18, 24},
	netsim.ASCloudflare: {248, 248},
	netsim.ASFastly:     {236, 236},
}

// cityBudgets is Table 4: covered cities per AS for IPv4 and IPv6.
var cityBudgets = map[bgp.ASN][2]int{ // [v4, v6]
	netsim.ASAkamaiPR:   {853, 14085},
	netsim.ASAkamaiEdge: {455, 7507},
	netsim.ASCloudflare: {1134, 5228},
	netsim.ASFastly:     {848, 848},
}

// akamaiPRV4OnlyCities is the number of cities AkamaiPR covers with IPv4
// subnets only: Table 4 has 14 088 combined vs 14 085 IPv6 cities.
const akamaiPRV4OnlyCities = 3

// blankCityPerMille is the share of subnets without a city (§4.2: 1.6 %).
const blankCityPerMille = 16

// egressASes lists the operators in generation order.
var egressASes = []bgp.ASN{netsim.ASAkamaiPR, netsim.ASAkamaiEdge, netsim.ASCloudflare, netsim.ASFastly}
