package egress

import (
	"fmt"
	"net/netip"
	"sort"

	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/geo"
	"github.com/relay-networks/privaterelay/internal/iputil"
	"github.com/relay-networks/privaterelay/internal/netsim"
)

// Generate produces the full-scale synthetic egress list (≈240 k entries)
// for a world. The result is deterministic in (world seed, seed).
func Generate(w *netsim.World, seed uint64) *List {
	g := &generator{world: w, seed: seed}
	g.buildCCSets()
	var out List
	for _, as := range egressASes {
		v4 := g.generateFamily(as, netsim.FamilyV4)
		var v6 []Entry
		if as == netsim.ASFastly {
			// Fastly's IPv6 footprint mirrors IPv4 1:1 (equal subnet and
			// city counts in Tables 3–4), so entries are mirrored rather
			// than independently drawn.
			v6 = g.mirrorFastlyV6(v4)
		} else {
			v6 = g.generateFamily(as, netsim.FamilyV6)
		}
		out.Entries = append(out.Entries, v4...)
		out.Entries = append(out.Entries, v6...)
	}
	return &out
}

type generator struct {
	world *netsim.World
	seed  uint64
	// ccSet[as][fam] is the ordered country list the AS covers.
	ccSet map[bgp.ASN][2][]string
	// cities[as][fam][cc] is the number of covered cities.
	cities map[bgp.ASN][2]map[string]int
}

// buildCCSets derives per-AS country coverage honoring the set algebra in
// §4.2: Cloudflare misses exactly one country; Akamai misses 13;
// Fastly misses 12 of Akamai's 13 plus one more; hence 11 countries are
// Cloudflare-only. AkamaiEdge's countries are a subset of AkamaiPR's.
func (g *generator) buildCCSets() {
	all := append([]string(nil), geo.AllCountryCodes...)
	// Deterministic "obscurity" order: the first entries are the codes
	// that drop out of coverage first.
	sort.Slice(all, func(i, j int) bool {
		hi := iputil.Mix(iputil.HashString(all[i]), g.seed^0xCC)
		hj := iputil.Mix(iputil.HashString(all[j]), g.seed^0xCC)
		if hi != hj {
			return hi < hj
		}
		return all[i] < all[j]
	})
	// Keep the anchor countries out of every missing set.
	anchored := func(cc string) bool { return cc == "US" || cc == "DE" || cc == "KN" }
	var candidates []string
	for _, cc := range all {
		if !anchored(cc) {
			candidates = append(candidates, cc)
		}
	}
	miss := candidates[:14] // c0..c13
	missCF := map[string]bool{miss[0]: true}
	missAK := map[string]bool{}
	for _, cc := range miss[:13] {
		missAK[cc] = true
	}
	missFast := map[string]bool{miss[13]: true}
	for _, cc := range miss[:12] {
		missFast[cc] = true
	}

	covered := func(missing map[string]bool) []string {
		var out []string
		for _, cc := range geo.AllCountryCodes {
			if !missing[cc] {
				out = append(out, cc)
			}
		}
		return out
	}
	akSet := covered(missAK)     // 236
	cfSet := covered(missCF)     // 248
	fastSet := covered(missFast) // 236

	// AkamaiEdge coverage is a small subset of AkamaiPR's heaviest
	// countries; small countries like KN stay AkamaiPR-represented only.
	edge6 := g.topWeighted(akSet, ccCounts[netsim.ASAkamaiEdge][1])
	edge4 := edge6[:ccCounts[netsim.ASAkamaiEdge][0]]

	g.ccSet = map[bgp.ASN][2][]string{
		netsim.ASAkamaiPR:   {akSet, akSet},
		netsim.ASAkamaiEdge: {edge4, edge6},
		netsim.ASCloudflare: {cfSet, cfSet},
		netsim.ASFastly:     {fastSet, fastSet},
	}

	// City budgets per country, proportional to expected subnet mass,
	// with v4 coverage forced to nest inside v6 coverage (except the
	// three AkamaiPR v4-only cities handled at assignment time).
	g.cities = make(map[bgp.ASN][2]map[string]int)
	for _, as := range egressASes {
		v6 := g.splitCityBudget(g.ccSet[as][1], cityBudgets[as][1])
		v4Budget := cityBudgets[as][0]
		if as == netsim.ASAkamaiPR {
			v4Budget -= akamaiPRV4OnlyCities // the 3 extras live outside v6's range
		}
		v4 := g.splitCityBudget(g.ccSet[as][0], v4Budget)
		for cc, n := range v4 {
			if max6, ok := v6[cc]; ok && n > max6 {
				v4[cc] = max6 // nest v4 city indices inside v6's
			}
		}
		g.rebalance(v4, v4Budget, v6)
		g.cities[as] = [2]map[string]int{v4, v6}
	}
}

// topWeighted returns the n heaviest countries of set.
func (g *generator) topWeighted(set []string, n int) []string {
	out := append([]string(nil), set...)
	sort.Slice(out, func(i, j int) bool {
		wi, wj := g.ccWeight(out[i]), g.ccWeight(out[j])
		if wi != wj {
			return wi > wj
		}
		return out[i] < out[j]
	})
	if n > len(out) {
		n = len(out)
	}
	top := append([]string(nil), out[:n]...)
	sort.Strings(top)
	return top
}

// ccWeight returns the relative subnet mass of a country: US 58 %, DE
// 3.6 %, the rest a squared-Zipf tail thin enough that >100 countries
// end below 50 subnets at full scale (§4.2).
func (g *generator) ccWeight(cc string) float64 {
	switch cc {
	case "US":
		return 0.58
	case "DE":
		return 0.036
	}
	// Squared-Zipf tail normalized so the non-US/DE mass sums to ≈0.384
	// (Σ 1/(r+10)² over the ~247 remaining countries ≈ 0.0961).
	rank := 1 + iputil.Mix(iputil.HashString("rank:"+cc), g.seed)%240
	return 0.384 / 0.0961 / float64((rank+10)*(rank+10))
}

// subnetTotal returns how many entries (as, fam) will contain.
func (g *generator) subnetTotal(as bgp.ASN, fam netsim.Family) int {
	if fam == netsim.FamilyV6 {
		return v6Counts[as]
	}
	n := 0
	for _, m := range v4SizeMix[as] {
		n += m.Count
	}
	return n
}

// splitCityBudget distributes budget cities across ccs proportional to
// country weight, each country getting at least one, the total exact.
func (g *generator) splitCityBudget(ccs []string, budget int) map[string]int {
	out := make(map[string]int, len(ccs))
	if budget < len(ccs) {
		budget = len(ccs) // every covered country has at least one city
	}
	var totalW float64
	for _, cc := range ccs {
		totalW += g.ccWeight(cc)
	}
	assigned := 0
	for _, cc := range ccs {
		n := int(float64(budget) * g.ccWeight(cc) / totalW)
		if n < 1 {
			n = 1
		}
		out[cc] = n
		assigned += n
	}
	// Fix rounding on the heaviest country (it has subnets to spare).
	heaviest := g.topWeighted(ccs, 1)[0]
	out[heaviest] += budget - assigned
	if out[heaviest] < 1 {
		out[heaviest] = 1
	}
	return out
}

// rebalance restores the exact v4 budget after nesting capped some
// countries, by growing countries that still have v6 headroom.
func (g *generator) rebalance(v4 map[string]int, budget int, v6 map[string]int) {
	total := 0
	for _, n := range v4 {
		total += n
	}
	if total >= budget {
		return
	}
	// Grow deterministically: iterate countries in sorted order.
	var ccs []string
	for cc := range v4 {
		ccs = append(ccs, cc)
	}
	sort.Strings(ccs)
	for total < budget {
		grew := false
		for _, cc := range ccs {
			if total >= budget {
				break
			}
			if max6, ok := v6[cc]; ok && v4[cc] < max6 {
				v4[cc]++
				total++
				grew = true
			}
		}
		if !grew {
			break // no headroom anywhere; accept the shortfall
		}
	}
}

// generateFamily emits all entries for one (AS, family).
func (g *generator) generateFamily(as bgp.ASN, fam netsim.Family) []Entry {
	prefixes := g.world.EgressPrefixes(as, fam)
	if len(prefixes) == 0 {
		return nil
	}
	carver := newCarver(prefixes)

	// Build the flat list of subnet sizes.
	var sizes []int
	if fam == netsim.FamilyV4 {
		for _, m := range v4SizeMix[as] {
			for i := 0; i < m.Count; i++ {
				sizes = append(sizes, m.Bits)
			}
		}
	} else {
		n := v6Counts[as]
		sizes = make([]int, n)
		for i := range sizes {
			sizes[i] = 64
		}
	}

	ccs := g.ccSet[as][fam]
	cities := g.cities[as][fam]
	ccOf := g.assignCountries(as, fam, len(sizes), ccs)

	// Per-country running index used for city coverage.
	perCC := make(map[string]int, len(ccs))
	entries := make([]Entry, 0, len(sizes))
	for i, bits := range sizes {
		cc := ccOf[i]
		j := perCC[cc]
		perCC[cc]++
		cityIdx, blank := g.cityFor(as, fam, cc, j, cities[cc], uint64(i))
		pfx := carver.next(bits)
		e := Entry{Prefix: pfx, CC: cc}
		if !blank {
			e.City = geo.CityName(cc, cityIdx)
			e.Region = geo.RegionName(cc, cityIdx)
		}
		entries = append(entries, e)
	}
	return entries
}

// assignCountries maps each of n subnets to a country: one guaranteed
// subnet per covered country, the rest weighted.
func (g *generator) assignCountries(as bgp.ASN, fam netsim.Family, n int, ccs []string) []string {
	out := make([]string, n)
	// Cumulative weights for sampling.
	cum := make([]float64, len(ccs))
	var total float64
	for i, cc := range ccs {
		total += g.ccWeight(cc)
		cum[i] = total
	}
	for i := 0; i < n; i++ {
		if i < len(ccs) {
			out[i] = ccs[i] // coverage guarantee
			continue
		}
		h := iputil.Mix(g.seed^uint64(as)<<1^uint64(fam), uint64(i))
		x := float64(h%1_000_000) / 1_000_000 * total
		k := sort.SearchFloat64s(cum, x)
		if k >= len(ccs) {
			k = len(ccs) - 1
		}
		out[i] = ccs[k]
	}
	return out
}

// cityFor picks the city index for the j-th subnet of a country, plus
// whether the subnet goes city-less. The first nCities subnets cover each
// city once; later subnets pick a covered city by hash, and only those may
// be blanked (so coverage counts stay exact). AkamaiPR's IPv4 US plane
// appends three cities beyond the IPv6 range (Table 4's 14 088 vs 14 085).
func (g *generator) cityFor(as bgp.ASN, fam netsim.Family, cc string, j, nCities int, salt uint64) (int, bool) {
	if nCities < 1 {
		nCities = 1
	}
	extraBase := -1
	if as == netsim.ASAkamaiPR && fam == netsim.FamilyV4 && cc == "US" {
		// Indices beyond the v6 city count are v4-only cities.
		extraBase = g.cities[as][1][cc]
	}
	if j < nCities {
		return j, false
	}
	if extraBase >= 0 && j < nCities+akamaiPRV4OnlyCities {
		return extraBase + (j - nCities), false
	}
	h := iputil.Mix(g.seed^0xC17F^uint64(as), iputil.Mix(iputil.HashString(cc), salt))
	if h%1000 < blankCityPerMille {
		return 0, true
	}
	// Within a country, subnet mass concentrates on a few big cities:
	// a quartic transform of a uniform draw puts ~56 % of picks on the
	// lowest-index decile, giving Figure 4 its steep initial rise.
	x := float64((h>>10)%1_000_000) / 1_000_000
	idx := int(x * x * x * x * float64(nCities))
	if idx >= nCities {
		idx = nCities - 1
	}
	return idx, false
}

// mirrorFastlyV6 maps each Fastly IPv4 entry to a /64 with the same
// location, preserving the 1:1 v4/v6 structure in Tables 3–4.
func (g *generator) mirrorFastlyV6(v4 []Entry) []Entry {
	prefixes := g.world.EgressPrefixes(netsim.ASFastly, netsim.FamilyV6)
	carver := newCarver(prefixes)
	out := make([]Entry, len(v4))
	for i, e := range v4 {
		out[i] = Entry{Prefix: carver.next(64), CC: e.CC, Region: e.Region, City: e.City}
	}
	return out
}

// carver allocates consecutive aligned subnets inside a prefix set,
// spreading allocations round-robin across prefixes.
type carver struct {
	prefixes []netip.Prefix
	cursor   []uint64 // next free subnet index per prefix, in finest units
	i        int
}

func newCarver(prefixes []netip.Prefix) *carver {
	return &carver{prefixes: prefixes, cursor: make([]uint64, len(prefixes))}
}

// next returns the next free subnet of the given length, rotating over
// the prefix list. It panics when capacity is exhausted (a calibration
// bug caught by the generation tests).
func (c *carver) next(bits int) netip.Prefix {
	for tries := 0; tries < len(c.prefixes); tries++ {
		idx := c.i % len(c.prefixes)
		c.i++
		p := c.prefixes[idx]
		if bits < p.Bits() {
			continue
		}
		// The cursor counts in fine units: /32 granularity for IPv4 and
		// /64 granularity for IPv6 (no listed subnet is longer).
		fineBits := 64
		if p.Addr().Is4() {
			fineBits = 32
		}
		if bits > fineBits {
			continue
		}
		unit := uint64(1) << uint(fineBits-bits) // fine units per subnet
		cur := (c.cursor[idx] + unit - 1) / unit
		if cur >= iputil.SubnetCount(p, bits) {
			continue
		}
		c.cursor[idx] = (cur + 1) * unit
		return iputil.NthSubnet(p, bits, cur)
	}
	panic(fmt.Sprintf("egress: carver exhausted for /%d across %d prefixes", bits, len(c.prefixes)))
}
