package atlas

import (
	"context"
	"net/netip"
	"reflect"
	"sync"
	"testing"

	"github.com/relay-networks/privaterelay/internal/core"
	"github.com/relay-networks/privaterelay/internal/dnsserver"
	"github.com/relay-networks/privaterelay/internal/dnswire"
	"github.com/relay-networks/privaterelay/internal/netsim"
	"github.com/relay-networks/privaterelay/internal/resolver"
)

var (
	atlasWorld *netsim.World
	atlasPop   *Population
	atlasOnce  sync.Once
)

func testPopulation(t testing.TB) (*netsim.World, *Population) {
	t.Helper()
	atlasOnce.Do(func() {
		atlasWorld = netsim.NewWorld(netsim.Params{Seed: 11, Scale: 0.0008})
		atlasPop = NewPopulation(atlasWorld, netsim.MonthApr, Config{Seed: 11, N: 4000, SubnetClusters: 1500, Phase: 1})
	})
	return atlasWorld, atlasPop
}

func TestPopulationShape(t *testing.T) {
	_, pop := testPopulation(t)
	if len(pop.Probes) != 4000 {
		t.Fatalf("probes = %d", len(pop.Probes))
	}
	subnets := map[netip.Prefix]bool{}
	timeoutProne := 0
	for _, p := range pop.Probes {
		if !p.Addr.Is4() {
			t.Fatalf("probe %d has no v4 addr", p.ID)
		}
		subnets[netip.PrefixFrom(p.Addr, 24).Masked()] = true
		if p.TimeoutProne {
			timeoutProne++
		}
		if p.Resolver == nil {
			t.Fatalf("probe %d has no resolver", p.ID)
		}
	}
	if len(subnets) > 1500 {
		t.Fatalf("probes spread over %d /24s, want clustering ≤ 1500", len(subnets))
	}
	share := float64(timeoutProne) / float64(len(pop.Probes)) * 100
	if share < 7 || share > 13 {
		t.Fatalf("timeout-prone share = %.1f%%, want ≈10%%", share)
	}
}

func TestPublicResolverShare(t *testing.T) {
	_, pop := testPopulation(t)
	perMille := IdentifyResolvers(pop)
	if perMille < 480 || perMille > 580 {
		t.Fatalf("public resolver share = %d‰, want ≈520‰ (paper: more than half)", perMille)
	}
}

func TestAValidationAgainstECS(t *testing.T) {
	w, pop := testPopulation(t)
	ctx := context.Background()

	// Reference: the full ECS scan (phase 0).
	srv := dnsserver.NewAuthServer(w, netsim.MonthApr, nil)
	ecs, err := core.Scan(ctx, core.ScanConfig{
		Exchanger:    &dnsserver.MemTransport{Handler: srv, Source: netip.MustParseAddr("198.51.100.53")},
		Domain:       dnsserver.MaskDomain,
		Universe:     w.RoutedV4Prefixes(),
		Attribution:  w.Table,
		RespectScope: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	results, err := Campaign{Domain: dnsserver.MaskDomain, Type: dnswire.TypeA}.Run(ctx, pop)
	if err != nil {
		t.Fatal(err)
	}
	found := DistinctAddrs(results)
	// Drop the hijack substitute if present.
	clean := found[:0]
	for _, a := range found {
		if a != resolver.HijackAddr {
			clean = append(clean, a)
		}
	}
	found = clean

	if len(found) >= len(ecs.Addresses) {
		t.Fatalf("Atlas found %d ≥ ECS %d; clustering should limit coverage", len(found), len(ecs.Addresses))
	}
	if len(found) < len(ecs.Addresses)/2 {
		t.Fatalf("Atlas found only %d of %d; too sparse", len(found), len(ecs.Addresses))
	}
	// All but a small handful of Atlas addresses appear in the ECS scan
	// (the paper saw exactly one extra, from fleet churn between scans).
	extra := 0
	for _, a := range found {
		if _, ok := ecs.Addresses[a]; !ok {
			extra++
		}
	}
	if extra == 0 {
		t.Fatal("no churn-induced extra address; phase shift not visible")
	}
	if extra > 6 {
		t.Fatalf("%d extra addresses beyond ECS; want ≈1", extra)
	}
}

func TestAAAAEnumeration(t *testing.T) {
	w, pop := testPopulation(t)
	ctx := context.Background()
	viaResolver, err := Campaign{Domain: dnsserver.MaskDomain, Type: dnswire.TypeAAAA}.Run(ctx, pop)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Campaign{Domain: dnsserver.MaskDomain, Type: dnswire.TypeAAAA}.RunDirect(ctx, pop)
	if err != nil {
		t.Fatal(err)
	}
	setR := DistinctAddrs(viaResolver)
	all := DistinctAddrs(append(viaResolver, direct...))

	fleet := map[netip.Addr]bool{}
	for _, a := range w.IngressFleet(netsim.ASApple, netsim.MonthApr, netsim.ProtoDefault, netsim.FamilyV6, 0) {
		fleet[a] = true
	}
	for _, a := range w.IngressFleet(netsim.ASAkamaiPR, netsim.MonthApr, netsim.ProtoDefault, netsim.FamilyV6, 0) {
		fleet[a] = true
	}
	for _, a := range all {
		if a == resolver.HijackAddr {
			continue
		}
		if !fleet[a] {
			t.Fatalf("AAAA campaign invented address %v", a)
		}
	}
	// Combined coverage approaches the full 1575; direct queries add
	// little beyond the resolver scan (§4.1).
	if len(all) < 1500 {
		t.Fatalf("combined v6 coverage = %d, want ≈1575", len(all))
	}
	added := len(all) - len(setR)
	if added > len(setR)/10 {
		t.Fatalf("direct queries added %d addrs over %d — paper found no significant difference", added, len(setR))
	}
}

func TestBlockingStudyShares(t *testing.T) {
	_, pop := testPopulation(t)
	report, err := BlockingStudy(context.Background(), pop)
	if err != nil {
		t.Fatal(err)
	}
	if report.Probes != len(pop.Probes) {
		t.Fatalf("report covers %d probes", report.Probes)
	}
	if ts := report.TimeoutShare(); ts < 7 || ts > 13 {
		t.Errorf("timeout share = %.1f%%, want ≈10%%", ts)
	}
	if bs := report.BlockedShare(); bs < 3.0 || bs > 8.0 {
		t.Errorf("blocked share = %.1f%%, want ≈5.5%%", bs)
	}
	// NXDOMAIN dominates the failure mix (paper: 72 %).
	fails := report.FailedWithResponse
	if fails == 0 {
		t.Fatal("no failed-with-response probes")
	}
	nxShare := float64(report.ByRCode[dnswire.RCodeNXDomain]) / float64(fails) * 100
	if nxShare < 55 || nxShare > 85 {
		t.Errorf("NXDOMAIN share of failures = %.0f%%, want ≈72%%", nxShare)
	}
	if report.ByRCode[dnswire.RCodeNoError] == 0 {
		t.Error("no NOERROR-without-data blocking observed")
	}
	if report.ByRCode[dnswire.RCodeRefused] == 0 {
		t.Error("no REFUSED blocking observed")
	}
	if report.Hijacked != 0 && report.Hijacked > 3 {
		t.Errorf("hijacked probes = %d, want ≈1", report.Hijacked)
	}
	if report.String() == "" {
		t.Error("empty report string")
	}
}

func TestBlockingStudyCountsHijackAsBlocked(t *testing.T) {
	w := netsim.NewWorld(netsim.Params{Seed: 12, Scale: 0.0005})
	pop := NewPopulation(w, netsim.MonthApr, Config{Seed: 12, N: 50, SubnetClusters: 10, TimeoutPerMille: 1, ISPBlockedPerMille: 1, PublicResolverShare: 1})
	// Force one probe's resolver to hijack.
	pop.Probes[0].Resolver.Block("icloud.com", resolver.PolicyHijack)
	report, err := BlockingStudy(context.Background(), pop)
	if err != nil {
		t.Fatal(err)
	}
	if report.Hijacked == 0 {
		t.Fatal("hijack not observed")
	}
	if report.Blocked < report.Hijacked {
		t.Fatal("hijacks not counted as blocked")
	}
}

func TestCampaignDeterminism(t *testing.T) {
	_, pop := testPopulation(t)
	a, err := Campaign{Domain: dnsserver.MaskDomain, Type: dnswire.TypeA}.Run(context.Background(), pop)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Campaign{Domain: dnsserver.MaskDomain, Type: dnswire.TypeA}.Run(context.Background(), pop)
	if err != nil {
		t.Fatal(err)
	}
	da, db := DistinctAddrs(a), DistinctAddrs(b)
	if len(da) != len(db) {
		t.Fatalf("campaign results differ: %d vs %d addrs", len(da), len(db))
	}
}

func TestPopulationDeterminism(t *testing.T) {
	w := netsim.NewWorld(netsim.Params{Seed: 13, Scale: 0.0005})
	a := NewPopulation(w, netsim.MonthApr, Config{Seed: 13, N: 200, SubnetClusters: 50})
	b := NewPopulation(w, netsim.MonthApr, Config{Seed: 13, N: 200, SubnetClusters: 50})
	for i := range a.Probes {
		if a.Probes[i].Addr != b.Probes[i].Addr || a.Probes[i].ResolverName != b.Probes[i].ResolverName {
			t.Fatalf("probe %d differs", i)
		}
	}
}

// TestCampaignEquivalentAcrossWorkers proves resolver-mediated, direct
// and blocking campaigns produce bit-identical results at any worker
// count. Caches are flushed between runs so each run replays the same
// cold-path resolver work, including the phase-dependent answers.
func TestCampaignEquivalentAcrossWorkers(t *testing.T) {
	_, pop := testPopulation(t)
	ctx := context.Background()

	run := func(workers int) (a, aaaa, direct []MeasurementResult, blocking *BlockingReport) {
		t.Helper()
		pop.FlushCaches()
		var err error
		if a, err = (Campaign{Domain: dnsserver.MaskDomain, Type: dnswire.TypeA, Workers: workers}).Run(ctx, pop); err != nil {
			t.Fatalf("workers=%d A: %v", workers, err)
		}
		if aaaa, err = (Campaign{Domain: dnsserver.MaskDomain, Type: dnswire.TypeAAAA, Workers: workers}).Run(ctx, pop); err != nil {
			t.Fatalf("workers=%d AAAA: %v", workers, err)
		}
		if direct, err = (Campaign{Domain: dnsserver.MaskDomain, Type: dnswire.TypeAAAA, Workers: workers}).RunDirect(ctx, pop); err != nil {
			t.Fatalf("workers=%d direct: %v", workers, err)
		}
		if blocking, err = BlockingStudyWorkers(ctx, pop, workers); err != nil {
			t.Fatalf("workers=%d blocking: %v", workers, err)
		}
		return a, aaaa, direct, blocking
	}

	wantA, wantAAAA, wantDirect, wantBlocking := run(1)
	if DistinctAddrs(wantA) == nil || DistinctAddrs(wantAAAA) == nil {
		t.Fatal("baseline campaign found no addresses; equivalence test would be vacuous")
	}
	for _, workers := range []int{8, 64} {
		gotA, gotAAAA, gotDirect, gotBlocking := run(workers)
		for name, pair := range map[string][2][]MeasurementResult{
			"A":      {wantA, gotA},
			"AAAA":   {wantAAAA, gotAAAA},
			"direct": {wantDirect, gotDirect},
		} {
			want, got := pair[0], pair[1]
			if len(got) != len(want) {
				t.Fatalf("workers=%d %s: %d results, want %d", workers, name, len(got), len(want))
			}
			for i := range got {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("workers=%d %s: probe %d = %+v, want %+v", workers, name, i, got[i], want[i])
				}
			}
		}
		if !reflect.DeepEqual(gotBlocking, wantBlocking) {
			t.Fatalf("workers=%d blocking report = %+v, want %+v", workers, gotBlocking, wantBlocking)
		}
	}
}
