package atlas

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/relay-networks/privaterelay/internal/dnsserver"
	"github.com/relay-networks/privaterelay/internal/dnswire"
	"github.com/relay-networks/privaterelay/internal/faults"
	"github.com/relay-networks/privaterelay/internal/iputil"
	"github.com/relay-networks/privaterelay/internal/netsim"
)

var errBrokenPath = errors.New("synthetic transport fault")

// brokenPath is a hard-failure transport: exchanges whose query key
// hashes into the broken slice error out. The fate is a pure function of
// the query (ECS subnet, or name⊕ID without one), so it is identical at
// any worker count and on every retry — the deterministic analogue of a
// dead resolver site.
type brokenPath struct {
	inner dnsserver.Exchanger
	mod   uint64
	hits  atomic.Int64
}

func (b *brokenPath) Exchange(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	var key uint64
	if q.Edns != nil && q.Edns.ClientSubnet != nil {
		key = iputil.HashPrefix(q.Edns.ClientSubnet.Prefix())
	} else if len(q.Questions) > 0 {
		key = iputil.HashString(q.Questions[0].Name) ^ uint64(q.Header.ID)
	}
	if key%b.mod == 0 {
		b.hits.Add(1)
		return nil, errBrokenPath
	}
	return b.inner.Exchange(ctx, q)
}

var (
	faultyWorld     *netsim.World
	faultyWorldOnce sync.Once
)

// faultyPopulation builds a small population whose probe-facing
// transports all run through wrap (sharing one world across tests).
func faultyPopulation(t testing.TB, wrap func(dnsserver.Exchanger) dnsserver.Exchanger) *Population {
	t.Helper()
	faultyWorldOnce.Do(func() {
		faultyWorld = netsim.NewWorld(netsim.Params{Seed: 11, Scale: 0.0008})
	})
	return NewPopulation(faultyWorld, netsim.MonthApr, Config{
		Seed: 11, N: 800, SubnetClusters: 300, WrapTransport: wrap,
	})
}

// TestCampaignToleratesInjectedFaults runs an A campaign through the
// fault-injection plane: the campaign must complete every probe, with
// injected timeouts surfacing as TimedOut results rather than aborting
// the pool, and the outcome buckets partitioning the population.
func TestCampaignToleratesInjectedFaults(t *testing.T) {
	profile := &faults.Profile{Seed: 7, Timeout: 0.15, ServFail: 0.10}
	var injectors []*faults.Injector
	pop := faultyPopulation(t, func(e dnsserver.Exchanger) dnsserver.Exchanger {
		inj := faults.NewInjector(e, profile, faults.NewVirtualClock(), nil)
		injectors = append(injectors, inj)
		return inj
	})
	results, err := Campaign{Domain: dnsserver.MaskDomain, Type: dnswire.TypeA}.Run(context.Background(), pop)
	if err != nil {
		t.Fatal(err)
	}
	c := Summarize(results)
	if c.Probes != len(pop.Probes) || c.Answered+c.TimedOut+c.Errored != c.Probes {
		t.Fatalf("completeness buckets do not partition the population: %+v", c)
	}
	if c.Errored != 0 {
		t.Fatalf("injected DNS faults must classify as timeouts/RCodes, not hard errors: %+v", c)
	}
	var injected int64
	for _, inj := range injectors {
		injected += inj.Stats.Total()
	}
	if injected == 0 {
		t.Fatal("fault plane injected nothing; the test exercised a clean path")
	}
	// Injected timeouts ride on top of the population's own
	// timeout-prone share, so the bucket must exceed it.
	prone := 0
	for _, p := range pop.Probes {
		if p.TimeoutProne {
			prone++
		}
	}
	if c.TimedOut <= prone {
		t.Fatalf("TimedOut = %d not above the %d timeout-prone probes; injected timeouts vanished", c.TimedOut, prone)
	}
	servfails := 0
	for _, r := range results {
		if r.RCode == dnswire.RCodeServFail {
			servfails++
		}
	}
	if servfails == 0 {
		t.Fatal("no probe surfaced an injected SERVFAIL")
	}
}

// TestCampaignSurvivesHardTransportErrors: hard per-probe failures land
// in MeasurementResult.Err and the rest of the survey completes — and
// the outcome is bit-identical at any worker count.
func TestCampaignSurvivesHardTransportErrors(t *testing.T) {
	run := func(workers int) ([]MeasurementResult, int) {
		pop := faultyPopulation(t, func(e dnsserver.Exchanger) dnsserver.Exchanger {
			return &brokenPath{inner: e, mod: 4}
		})
		results, err := Campaign{Domain: dnsserver.MaskDomain, Type: dnswire.TypeA, Workers: workers}.Run(context.Background(), pop)
		if err != nil {
			t.Fatal(err)
		}
		return results, len(pop.Probes)
	}

	results, n := run(8)
	c := Summarize(results)
	if c.Probes != n || c.Answered+c.TimedOut+c.Errored != n {
		t.Fatalf("completeness buckets do not partition the population: %+v", c)
	}
	if c.Errored == 0 {
		t.Fatal("no probe errored; the broken path was never hit")
	}
	if c.Answered == 0 {
		t.Fatal("every probe errored; the pool fail-fasted instead of surviving")
	}
	if c.Complete() {
		t.Fatalf("Complete() = true with %d errored probes", c.Errored)
	}
	for _, r := range results {
		if r.Err != nil && (len(r.Addrs) > 0 || r.TimedOut) {
			t.Fatalf("probe %d carries both an error and an outcome: %+v", r.ProbeID, r)
		}
	}

	serial, _ := run(1)
	if !reflect.DeepEqual(results, serial) {
		t.Fatal("results differ between 8 workers and serial under hard faults")
	}
}

// TestBlockingStudyClassifiesHardErrors: broken transports are
// brokenness, not blocking — they must not inflate the blocked share.
func TestBlockingStudyClassifiesHardErrors(t *testing.T) {
	pop := faultyPopulation(t, func(e dnsserver.Exchanger) dnsserver.Exchanger {
		return &brokenPath{inner: e, mod: 5}
	})
	report, err := BlockingStudy(context.Background(), pop)
	if err != nil {
		t.Fatal(err)
	}
	if report.Errored == 0 {
		t.Fatal("blocking report saw no errored probes despite the broken path")
	}
	clean := faultyPopulation(t, nil)
	base, err := BlockingStudy(context.Background(), clean)
	if err != nil {
		t.Fatal(err)
	}
	if report.Blocked > base.Blocked {
		t.Fatalf("hard errors inflated blocking: %d blocked with faults vs %d without", report.Blocked, base.Blocked)
	}
}

// TestRunDirectSurvivesHardTransportErrors covers the resolver-less
// path: direct measurements wrap their per-probe transport too.
func TestRunDirectSurvivesHardTransportErrors(t *testing.T) {
	pop := faultyPopulation(t, func(e dnsserver.Exchanger) dnsserver.Exchanger {
		return &brokenPath{inner: e, mod: 6}
	})
	results, err := Campaign{Domain: dnsserver.MaskDomain, Type: dnswire.TypeAAAA}.RunDirect(context.Background(), pop)
	if err != nil {
		t.Fatal(err)
	}
	c := Summarize(results)
	if c.Errored == 0 || c.Answered == 0 {
		t.Fatalf("direct campaign should mix errors and answers, got %+v", c)
	}
	for _, r := range results {
		if r.Err != nil && !errors.Is(r.Err, errBrokenPath) {
			t.Fatalf("probe %d recorded an unexpected error: %v", r.ProbeID, r.Err)
		}
	}
}

// TestCampaignCancellationStopsPool: context cancellation is the one
// error that still stops a campaign, and it is reported as such rather
// than attributed to probes.
func TestCampaignCancellationStopsPool(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var n atomic.Int64
	pop := faultyPopulation(t, func(e dnsserver.Exchanger) dnsserver.Exchanger {
		return exchangerFunc(func(c context.Context, q *dnswire.Message) (*dnswire.Message, error) {
			if n.Add(1) == 10 {
				cancel()
			}
			return e.Exchange(c, q)
		})
	})
	results, err := Campaign{Domain: dnsserver.MaskDomain, Type: dnswire.TypeA}.Run(ctx, pop)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for _, r := range results {
		if errors.Is(r.Err, context.Canceled) {
			t.Fatalf("probe %d charged with the campaign's cancellation", r.ProbeID)
		}
	}
}

type exchangerFunc func(context.Context, *dnswire.Message) (*dnswire.Message, error)

func (f exchangerFunc) Exchange(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	return f(ctx, q)
}
