package atlas

import (
	"context"
	"fmt"

	"github.com/relay-networks/privaterelay/internal/dnsserver"
	"github.com/relay-networks/privaterelay/internal/dnswire"
)

// BlockingReport reproduces the §4.1 blocking analysis: probes are
// classified by how their resolution of the relay domain fails, with a
// control domain separating blocking from plain brokenness.
type BlockingReport struct {
	Probes int
	// TimedOut counts probes whose query timed out. A control-domain
	// measurement shows similar shares, so these are NOT counted as
	// blocking.
	TimedOut int
	// Errored counts probes whose measurement failed hard (broken
	// transport). Like timeouts, these are brokenness, not blocking.
	Errored int
	// FailedWithResponse counts probes that received a DNS response but
	// no usable answer.
	FailedWithResponse int
	// ByRCode breaks FailedWithResponse down per response code.
	ByRCode map[dnswire.RCode]int
	// Hijacked counts probes whose resolver substituted the answer.
	Hijacked int
	// Blocked counts probes classified as intentionally blocked:
	// NXDOMAIN or NOERROR-without-data (the authoritative never answers
	// that way), verified REFUSED, and hijacks.
	Blocked int
}

// BlockedShare returns the blocked share in percent.
func (r *BlockingReport) BlockedShare() float64 {
	if r.Probes == 0 {
		return 0
	}
	return float64(r.Blocked) / float64(r.Probes) * 100
}

// TimeoutShare returns the timeout share in percent.
func (r *BlockingReport) TimeoutShare() float64 {
	if r.Probes == 0 {
		return 0
	}
	return float64(r.TimedOut) / float64(r.Probes) * 100
}

// String renders the report compactly.
func (r *BlockingReport) String() string {
	return fmt.Sprintf("blocking{probes=%d timeout=%.1f%% failed=%d blocked=%d (%.1f%%)}",
		r.Probes, r.TimeoutShare(), r.FailedWithResponse, r.Blocked, r.BlockedShare())
}

// BlockingStudy measures the relay domain and a control domain across the
// population and classifies failures per the paper's methodology.
func BlockingStudy(ctx context.Context, pop *Population) (*BlockingReport, error) {
	return BlockingStudyWorkers(ctx, pop, 0)
}

// BlockingStudyWorkers is BlockingStudy with an explicit campaign worker
// count (0 = DefaultWorkers). The classification is per-probe and the
// campaigns are deterministic, so the report is identical at any count.
func BlockingStudyWorkers(ctx context.Context, pop *Population, workers int) (*BlockingReport, error) {
	relay, err := Campaign{Domain: dnsserver.MaskDomain, Type: dnswire.TypeA, Workers: workers}.Run(ctx, pop)
	if err != nil {
		return nil, err
	}
	control, err := Campaign{Domain: dnsserver.WhoamiDomain, Type: dnswire.TypeA, Workers: workers}.Run(ctx, pop)
	if err != nil {
		return nil, err
	}
	report := &BlockingReport{
		Probes:  len(relay),
		ByRCode: make(map[dnswire.RCode]int),
	}
	for i, r := range relay {
		controlOK := control[i].Err == nil && !control[i].TimedOut &&
			control[i].RCode == dnswire.RCodeNoError && len(control[i].Addrs) > 0
		switch {
		case r.Err != nil:
			report.Errored++
		case r.TimedOut:
			report.TimedOut++
		case r.Hijacked:
			report.Hijacked++
			report.Blocked++
		case r.RCode != dnswire.RCodeNoError || len(r.Addrs) == 0:
			report.FailedWithResponse++
			report.ByRCode[r.RCode]++
			// NXDOMAIN and NOERROR-without-data claim a completed
			// resolution the authoritative never produces → blocking.
			// REFUSED counts once the control domain proves the resolver
			// otherwise works (§4.1's verification step).
			switch {
			case r.RCode == dnswire.RCodeNXDomain || (r.RCode == dnswire.RCodeNoError && len(r.Addrs) == 0):
				report.Blocked++
			case r.RCode == dnswire.RCodeRefused && controlOK:
				report.Blocked++
			}
		}
	}
	return report, nil
}
