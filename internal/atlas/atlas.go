// Package atlas simulates the RIPE Atlas measurement platform as the
// paper uses it (§3, §4.1): a globally distributed probe population with
// the documented biases — concentration in North America and Europe,
// more than half of all probes behind four public resolvers, and many
// probes sharing /24s — running DNS measurement campaigns against the
// relay service domains.
//
// Three campaigns from the paper are supported: A-record validation of
// the ECS scan, AAAA enumeration of the IPv6 ingress fleet (ECS cannot
// enumerate IPv6, §3), and the service-blocking study with its
// control-domain methodology.
package atlas

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"slices"
	"sync"
	"sync/atomic"

	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/dnsserver"
	"github.com/relay-networks/privaterelay/internal/dnswire"
	"github.com/relay-networks/privaterelay/internal/iputil"
	"github.com/relay-networks/privaterelay/internal/netsim"
	"github.com/relay-networks/privaterelay/internal/resolver"
)

// Probe is one Atlas vantage point.
type Probe struct {
	ID int
	// AS is the probe's host network.
	AS bgp.ASN
	// Addr is the probe's IPv4 address; probes cluster into shared /24s.
	Addr netip.Addr
	// CC is the probe's country.
	CC string
	// Resolver is the recursive resolver this probe is configured with.
	Resolver *resolver.Resolver
	// ResolverName identifies the resolver ("GooglePublicDNS", "isp-42").
	ResolverName string
	// TimeoutProne marks probes whose queries time out (§4.1: 10 % of
	// probes time out for any domain — connectivity, not blocking).
	TimeoutProne bool
}

// Population is a generated probe set with its resolver fabric.
type Population struct {
	Probes []Probe
	// Resolvers maps resolver name → instance (shared between probes).
	Resolvers map[string]*resolver.Resolver
	handler   dnsserver.Handler
	wrap      func(dnsserver.Exchanger) dnsserver.Exchanger
}

// wrapTransport applies the population's transport hook (identity when
// none was configured).
func (p *Population) wrapTransport(e dnsserver.Exchanger) dnsserver.Exchanger {
	if p.wrap == nil {
		return e
	}
	return p.wrap(e)
}

// FlushCaches drops every resolver's cached responses, returning the
// population to a cold-cache state. Campaign benchmarks call it between
// iterations so each run pays the full upstream fan-out.
func (p *Population) FlushCaches() {
	for _, r := range p.Resolvers {
		r.FlushCache()
	}
}

// Config tunes population generation.
type Config struct {
	// N is the number of probes (default 11700, matching the paper's
	// 645 = 5.5 % blocked arithmetic).
	N int
	// Seed drives all deterministic choices.
	Seed uint64
	// SubnetClusters is the number of distinct /24s probes share
	// (default 600). Clustering is why Atlas validation discovers fewer
	// ingress addresses than the exhaustive ECS scan.
	SubnetClusters int
	// PublicResolverShare is the per-mille of probes using one of the
	// four public resolvers (default 520 ≈ "more than half").
	PublicResolverShare int
	// ISPBlockedPerMille is the per-mille of ISP resolvers that block
	// the relay domains (default 141, calibrated to ≈5.5 % of probes
	// after accounting for the public-resolver share, the timeout share
	// and the non-blocking SERVFAIL/FORMERR slice).
	ISPBlockedPerMille int
	// TimeoutPerMille is the per-mille of timeout-prone probes
	// (default 100 = the paper's 10 %).
	TimeoutPerMille int
	// Phase shifts the ingress fleet window the upstream answers from,
	// modeling the time offset between the ECS scan and the Atlas run.
	Phase int
	// WrapTransport, when non-nil, wraps every probe-facing transport —
	// the resolvers' upstream exchangers and the direct-measurement
	// path — before first use. It is the hook the fault-injection plane
	// (internal/faults) plugs into: wrap with a faults.Injector to run
	// campaigns against a lossy upstream.
	WrapTransport func(dnsserver.Exchanger) dnsserver.Exchanger
}

func (c Config) withDefaults() Config {
	if c.N <= 0 {
		c.N = 11700
	}
	if c.SubnetClusters <= 0 {
		c.SubnetClusters = 600
	}
	if c.PublicResolverShare <= 0 {
		c.PublicResolverShare = 520
	}
	if c.ISPBlockedPerMille <= 0 {
		c.ISPBlockedPerMille = 141
	}
	if c.TimeoutPerMille <= 0 {
		c.TimeoutPerMille = 100
	}
	return c
}

// blockPolicies is the §4.1 mix among blocking resolvers: 72 % NXDOMAIN,
// 13 % NOERROR/no-data, 5 % REFUSED, the rest SERVFAIL or FORMERR — plus
// exactly one hijacking resolver installed separately.
var blockPolicies = []struct {
	policy resolver.Policy
	weight int
}{
	{resolver.PolicyNXDomain, 72},
	{resolver.PolicyNoData, 13},
	{resolver.PolicyRefused, 5},
	{resolver.PolicyServFail, 6},
	{resolver.PolicyFormErr, 4},
}

// NewPopulation builds the probe set against a world and its
// authoritative server. The upstream handler answers with the fleet of
// the given month at cfg.Phase.
func NewPopulation(w *netsim.World, month bgp.Month, cfg Config) *Population {
	cfg = cfg.withDefaults()
	pop := &Population{
		Resolvers: make(map[string]*resolver.Resolver),
		wrap:      cfg.WrapTransport,
	}
	handler := newPhaseHandler(w, month, cfg.Phase)
	pop.handler = handler

	mkResolver := func(name string, addr netip.Addr) *resolver.Resolver {
		if r, ok := pop.Resolvers[name]; ok {
			return r
		}
		r := resolver.New(addr, pop.wrapTransport(&dnsserver.MemTransport{Handler: handler, Source: addr}))
		pop.Resolvers[name] = r
		return r
	}
	// The four public resolvers.
	for _, pr := range resolver.PublicResolvers {
		mkResolver(pr.Name, pr.V6) // v6 identity keys AAAA answers
	}

	// Probe subnets cluster into a limited pool of client /24s, weighted
	// by AS size (probes sit in well-connected networks), which means
	// mostly the large "both"-group ASes — exactly why Atlas validation
	// sees fewer addresses than the exhaustive ECS scan.
	clients := w.ClientASes
	cum := make([]int, len(clients))
	total := 0
	for i, c := range clients {
		total += c.Slash24s
		cum[i] = total
	}
	pickClient := func(h uint64) netsim.ClientAS {
		x := int(h % uint64(total))
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] <= x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return clients[lo]
	}
	clusterSet := make(map[netip.Prefix]bool, cfg.SubnetClusters)
	clusters := make([]netip.Prefix, 0, cfg.SubnetClusters)
	for k := 0; len(clusters) < cfg.SubnetClusters && k < 20*cfg.SubnetClusters; k++ {
		c := pickClient(iputil.Mix(cfg.Seed^0xA71A5, uint64(k)))
		sub := iputil.NthSubnet(c.Prefixes[0], 24,
			iputil.Mix(cfg.Seed, uint64(k))%iputil.SubnetCount(c.Prefixes[0], 24))
		if !clusterSet[sub] {
			clusterSet[sub] = true
			clusters = append(clusters, sub)
		}
	}

	for id := 0; id < cfg.N; id++ {
		h := iputil.Mix(cfg.Seed^0xBEEF, uint64(id))
		sub := clusters[h%uint64(len(clusters))]
		addr := iputil.AddrAtIndex(sub, 1+(h>>32)%250)
		as, _ := w.Table.Origin(addr)

		var res *resolver.Resolver
		var resName string
		if int(h%1000) < cfg.PublicResolverShare {
			pr := resolver.PublicResolvers[h/1000%uint64(len(resolver.PublicResolvers))]
			resName = pr.Name
			res = pop.Resolvers[resName]
		} else {
			// ISP resolver: one per probe cluster (a resolver site close
			// to the probes sharing the /24).
			resName = fmt.Sprintf("isp-%d-%s", as, sub)
			fresh := pop.Resolvers[resName] == nil
			res = mkResolver(resName, ispResolverAddr(iputil.HashString(resName)))
			if fresh {
				// A deterministic slice of ISP resolvers block the service.
				bh := iputil.Mix(cfg.Seed^0xB10C, iputil.HashString(resName))
				if int(bh%1000) < cfg.ISPBlockedPerMille {
					res.Block("icloud.com", pickPolicy(bh))
				}
			}
		}

		cc := probeCountry(h)
		pop.Probes = append(pop.Probes, Probe{
			ID:           id,
			AS:           as,
			Addr:         addr,
			CC:           cc,
			Resolver:     res,
			ResolverName: resName,
			TimeoutProne: int(iputil.Mix(cfg.Seed^0x71EE, uint64(id))%1000) < cfg.TimeoutPerMille,
		})
	}
	// Exactly one ISP resolver hijacks the domain (§4.1 observed a single
	// nextdns-style interception): pick the used ISP resolver with the
	// smallest name hash.
	var hijackName string
	var best uint64
	for name := range pop.Resolvers {
		if len(name) < 4 || name[:4] != "isp-" {
			continue
		}
		if h := iputil.HashString(name); hijackName == "" || h < best {
			hijackName, best = name, h
		}
	}
	if hijackName != "" {
		pop.Resolvers[hijackName].Block("icloud.com", resolver.PolicyHijack)
	}
	return pop
}

// pickPolicy selects a blocking policy with the §4.1 weights.
func pickPolicy(h uint64) resolver.Policy {
	total := 0
	for _, bp := range blockPolicies {
		total += bp.weight
	}
	x := int(h / 7 % uint64(total))
	for _, bp := range blockPolicies {
		if x < bp.weight {
			return bp.policy
		}
		x -= bp.weight
	}
	return resolver.PolicyNXDomain
}

// probeCountry reflects the Atlas bias toward North America and Europe.
func probeCountry(h uint64) string {
	biased := []string{"US", "US", "US", "DE", "DE", "FR", "GB", "NL", "CA", "SE", "CH", "IT"}
	global := []string{"BR", "JP", "AU", "IN", "ZA", "SG", "AR", "KE", "TH", "MX"}
	if h%100 < 78 {
		return biased[h/100%uint64(len(biased))]
	}
	return global[h/100%uint64(len(global))]
}

// ispResolverAddr derives a stable IPv6 identity for an AS's resolver
// (only its hash matters — it keys AAAA answer selection upstream).
func ispResolverAddr(as uint64) netip.Addr {
	var b [16]byte
	b[0] = 0xfd // ULA
	binary.BigEndian.PutUint64(b[4:], iputil.Mix(as, 0xD15))
	return netip.AddrFrom16(b)
}

// phaseHandler wraps the authoritative server but answers A queries from
// a phase-shifted fleet window, so an Atlas campaign run "minutes" after
// the 40-hour ECS scan can see one address the scan did not (§4.1). The
// per-plane fresh-address lists are fixed for the handler's lifetime, so
// they are computed once here instead of rebuilding two full fleet maps
// on every A query.
type phaseHandler struct {
	inner *dnsserver.AuthServer
	phase int
	// freshDefault/freshFallback hold the phase-shifted window's
	// addresses absent from the unshifted window, sorted.
	freshDefault  []netip.Addr
	freshFallback []netip.Addr
}

func newPhaseHandler(w *netsim.World, month bgp.Month, phase int) *phaseHandler {
	p := &phaseHandler{inner: dnsserver.NewAuthServer(w, month, nil), phase: phase}
	if phase != 0 {
		p.freshDefault = freshAddrs(w, month, netsim.ProtoDefault, phase)
		p.freshFallback = freshAddrs(w, month, netsim.ProtoFallback, phase)
	}
	return p
}

// freshAddrs diffs the phase-shifted fleet window against the unshifted
// one: the addresses a delayed campaign could see that the scan did not.
func freshAddrs(w *netsim.World, month bgp.Month, proto netsim.Proto, phase int) []netip.Addr {
	current := w.FleetUnion(month, proto, netsim.FamilyV4, 0)
	shifted := w.FleetUnion(month, proto, netsim.FamilyV4, phase)
	var fresh []netip.Addr
	for a := range shifted {
		if _, ok := current[a]; !ok {
			fresh = append(fresh, a)
		}
	}
	slices.SortFunc(fresh, func(a, b netip.Addr) int { return a.Compare(b) })
	return fresh
}

// Handle implements dnsserver.Handler. It is safe for concurrent use: the
// fresh lists are read-only and answer slices are cloned before the swap
// below — the inner server hands out answer sections shared with its
// memoized record cache, which must never be written through.
func (p *phaseHandler) Handle(q *dnswire.Message, from netip.Addr) *dnswire.Message {
	resp := p.inner.Handle(q, from)
	if p.phase == 0 || resp == nil || len(resp.Answers) == 0 {
		return resp
	}
	if len(q.Questions) != 1 || q.Questions[0].Type != dnswire.TypeA {
		return resp
	}
	fresh := p.freshDefault
	if dnswire.CanonicalName(q.Questions[0].Name) == dnsserver.MaskH2Domain {
		fresh = p.freshFallback
	}
	if len(fresh) > 0 {
		// Swap the first answer for a fresh address on a sliver of
		// queries, reproducing the single extra address.
		if iputil.HashAddr(from)%97 == 0 {
			resp.Answers = slices.Clone(resp.Answers)
			resp.Answers[0].A = fresh[iputil.HashAddr(from)%uint64(len(fresh))]
		}
	}
	return resp
}

// --- Campaigns ---

// MeasurementResult is one probe's DNS measurement outcome.
type MeasurementResult struct {
	ProbeID  int
	Addrs    []netip.Addr
	RCode    dnswire.RCode
	TimedOut bool
	Hijacked bool
	// Err records a hard per-probe measurement failure (broken transport,
	// malformed exchange) that is neither a timeout nor a DNS-level
	// response. Errored probes keep their slot in the result slice so
	// indexes stay probe-aligned; they carry no answer.
	Err error
}

// Completeness is a campaign's outcome accounting: every probe lands in
// exactly one bucket, so Answered+TimedOut+Errored == Probes.
type Completeness struct {
	// Probes is the number of vantage points measured.
	Probes int
	// Answered counts probes that got a DNS response, whatever its RCode.
	Answered int
	// TimedOut counts probes whose measurement timed out (connectivity,
	// fault injection, or timeout-prone probes).
	TimedOut int
	// Errored counts probes with a hard failure (MeasurementResult.Err).
	Errored int
}

// Complete reports whether every probe produced a classifiable outcome —
// an answer or a timeout — with no hard errors.
func (c Completeness) Complete() bool { return c.Errored == 0 }

// AnsweredShare returns the answered share in percent.
func (c Completeness) AnsweredShare() float64 {
	if c.Probes == 0 {
		return 0
	}
	return float64(c.Answered) / float64(c.Probes) * 100
}

// Summarize buckets a campaign's results into its Completeness.
func Summarize(results []MeasurementResult) Completeness {
	c := Completeness{Probes: len(results)}
	for _, r := range results {
		switch {
		case r.Err != nil:
			c.Errored++
		case r.TimedOut:
			c.TimedOut++
		default:
			c.Answered++
		}
	}
	return c
}

// Campaign runs one DNS measurement across all probes.
type Campaign struct {
	Domain string
	Type   dnswire.Type
	// Workers bounds the number of probes measured concurrently
	// (0 = DefaultWorkers). Results are bit-identical at any worker
	// count: every upstream answer is a pure function of (query, source)
	// and each result lands in its probe's slot by index.
	Workers int
}

// DefaultWorkers is the pool size campaigns use when Workers is 0.
const DefaultWorkers = 8

// campaignBatch is how many consecutive probes a worker claims per
// counter increment, amortizing the shared-counter contention the same
// way the ECS scanner batches /24s.
const campaignBatch = 64

// runPool fans the probe set out to a bounded worker pool. measure fills
// out[i] for probe i. A campaign is a survey: one broken vantage point
// must not cost the other eleven thousand, so per-probe failures land in
// out[i].Err instead of stopping the pool, and the only error returned
// is the context's when the campaign itself is cancelled.
func runPool(ctx context.Context, pop *Population, workers int, measure func(p *Probe, res *MeasurementResult) error) ([]MeasurementResult, error) {
	n := len(pop.Probes)
	out := make([]MeasurementResult, n)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				lo := int(next.Add(campaignBatch)) - campaignBatch
				if lo >= n {
					return
				}
				for i := lo; i < min(lo+campaignBatch, n); i++ {
					if err := measure(&pop.Probes[i], &out[i]); err != nil {
						if ctx.Err() != nil {
							return // cancellation, not a probe fault
						}
						out[i].Err = err
					}
				}
			}
		}()
	}
	wg.Wait()
	return out, ctx.Err()
}

func (c Campaign) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return DefaultWorkers
}

// Run executes the campaign, returning per-probe results.
func (c Campaign) Run(ctx context.Context, pop *Population) ([]MeasurementResult, error) {
	return runPool(ctx, pop, c.workers(), func(p *Probe, res *MeasurementResult) error {
		res.ProbeID = p.ID
		if p.TimeoutProne {
			res.TimedOut = true
			return nil
		}
		var addrs []netip.Addr
		var rcode dnswire.RCode
		var err error
		if c.Type == dnswire.TypeAAAA {
			addrs, rcode, err = p.Resolver.ResolveAAAA(ctx, c.Domain, p.Addr)
		} else {
			addrs, rcode, err = p.Resolver.ResolveA(ctx, c.Domain, p.Addr)
		}
		switch {
		case errors.Is(err, dnsserver.ErrTimeout):
			res.TimedOut = true
		case err != nil:
			return err
		default:
			res.Addrs = addrs
			res.RCode = rcode
			for _, a := range addrs {
				if a == resolver.HijackAddr {
					res.Hijacked = true
				}
			}
		}
		return nil
	})
}

// DistinctAddrs collects the distinct addresses across results.
func DistinctAddrs(results []MeasurementResult) []netip.Addr {
	set := map[netip.Addr]bool{}
	for _, r := range results {
		for _, a := range r.Addrs {
			set[a] = true
		}
	}
	out := make([]netip.Addr, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	slices.SortFunc(out, func(a, b netip.Addr) int { return a.Compare(b) })
	return out
}

// RunDirect queries the authoritative server directly from every probe
// (the paper's second AAAA measurement mode), bypassing resolvers. Each
// probe's own identity keys the answer.
func (c Campaign) RunDirect(ctx context.Context, pop *Population) ([]MeasurementResult, error) {
	return runPool(ctx, pop, c.workers(), func(p *Probe, res *MeasurementResult) error {
		res.ProbeID = p.ID
		if p.TimeoutProne {
			res.TimedOut = true
			return nil
		}
		src := p.Addr
		if c.Type == dnswire.TypeAAAA {
			src = probeV6Identity(uint64(p.ID))
		}
		mt := pop.wrapTransport(&dnsserver.MemTransport{Handler: pop.handler, Source: src})
		q := dnswire.NewQuery(uint16(p.ID), c.Domain, c.Type)
		resp, err := mt.Exchange(ctx, q)
		if errors.Is(err, dnsserver.ErrTimeout) {
			res.TimedOut = true
			return nil
		}
		if err != nil {
			return err
		}
		res.RCode = resp.Header.RCode
		for _, rec := range resp.Answers {
			switch rec.Type {
			case dnswire.TypeA:
				res.Addrs = append(res.Addrs, rec.A)
			case dnswire.TypeAAAA:
				res.Addrs = append(res.Addrs, rec.AAAA)
			default:
				// Only address records feed probe measurements.
			}
		}
		return nil
	})
}

// probeV6Identity derives the probe's IPv6 source identity.
func probeV6Identity(id uint64) netip.Addr {
	var b [16]byte
	b[0] = 0xfd
	b[1] = 0x9e
	binary.BigEndian.PutUint64(b[8:], iputil.Mix(id, 0x9E0B))
	return netip.AddrFrom16(b)
}

// IdentifyResolvers runs the whoami campaign: each probe resolves the
// whoami domain and learns its resolver's outward identity. It returns
// the share (per mille) of probes behind the four big public resolvers.
func IdentifyResolvers(pop *Population) int {
	publics := map[string]bool{}
	for _, pr := range resolver.PublicResolvers {
		publics[pr.Name] = true
	}
	n := 0
	for _, p := range pop.Probes {
		if publics[p.ResolverName] {
			n++
		}
	}
	return n * 1000 / len(pop.Probes)
}
