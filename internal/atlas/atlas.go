// Package atlas simulates the RIPE Atlas measurement platform as the
// paper uses it (§3, §4.1): a globally distributed probe population with
// the documented biases — concentration in North America and Europe,
// more than half of all probes behind four public resolvers, and many
// probes sharing /24s — running DNS measurement campaigns against the
// relay service domains.
//
// Three campaigns from the paper are supported: A-record validation of
// the ECS scan, AAAA enumeration of the IPv6 ingress fleet (ECS cannot
// enumerate IPv6, §3), and the service-blocking study with its
// control-domain methodology.
package atlas

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"sort"

	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/dnsserver"
	"github.com/relay-networks/privaterelay/internal/dnswire"
	"github.com/relay-networks/privaterelay/internal/iputil"
	"github.com/relay-networks/privaterelay/internal/netsim"
	"github.com/relay-networks/privaterelay/internal/resolver"
)

// Probe is one Atlas vantage point.
type Probe struct {
	ID int
	// AS is the probe's host network.
	AS bgp.ASN
	// Addr is the probe's IPv4 address; probes cluster into shared /24s.
	Addr netip.Addr
	// CC is the probe's country.
	CC string
	// Resolver is the recursive resolver this probe is configured with.
	Resolver *resolver.Resolver
	// ResolverName identifies the resolver ("GooglePublicDNS", "isp-42").
	ResolverName string
	// TimeoutProne marks probes whose queries time out (§4.1: 10 % of
	// probes time out for any domain — connectivity, not blocking).
	TimeoutProne bool
}

// Population is a generated probe set with its resolver fabric.
type Population struct {
	Probes []Probe
	// Resolvers maps resolver name → instance (shared between probes).
	Resolvers map[string]*resolver.Resolver
	world     *netsim.World
	handler   dnsserver.Handler
}

// Config tunes population generation.
type Config struct {
	// N is the number of probes (default 11700, matching the paper's
	// 645 = 5.5 % blocked arithmetic).
	N int
	// Seed drives all deterministic choices.
	Seed uint64
	// SubnetClusters is the number of distinct /24s probes share
	// (default 600). Clustering is why Atlas validation discovers fewer
	// ingress addresses than the exhaustive ECS scan.
	SubnetClusters int
	// PublicResolverShare is the per-mille of probes using one of the
	// four public resolvers (default 520 ≈ "more than half").
	PublicResolverShare int
	// ISPBlockedPerMille is the per-mille of ISP resolvers that block
	// the relay domains (default 141, calibrated to ≈5.5 % of probes
	// after accounting for the public-resolver share, the timeout share
	// and the non-blocking SERVFAIL/FORMERR slice).
	ISPBlockedPerMille int
	// TimeoutPerMille is the per-mille of timeout-prone probes
	// (default 100 = the paper's 10 %).
	TimeoutPerMille int
	// Phase shifts the ingress fleet window the upstream answers from,
	// modeling the time offset between the ECS scan and the Atlas run.
	Phase int
}

func (c Config) withDefaults() Config {
	if c.N <= 0 {
		c.N = 11700
	}
	if c.SubnetClusters <= 0 {
		c.SubnetClusters = 600
	}
	if c.PublicResolverShare <= 0 {
		c.PublicResolverShare = 520
	}
	if c.ISPBlockedPerMille <= 0 {
		c.ISPBlockedPerMille = 141
	}
	if c.TimeoutPerMille <= 0 {
		c.TimeoutPerMille = 100
	}
	return c
}

// blockPolicies is the §4.1 mix among blocking resolvers: 72 % NXDOMAIN,
// 13 % NOERROR/no-data, 5 % REFUSED, the rest SERVFAIL or FORMERR — plus
// exactly one hijacking resolver installed separately.
var blockPolicies = []struct {
	policy resolver.Policy
	weight int
}{
	{resolver.PolicyNXDomain, 72},
	{resolver.PolicyNoData, 13},
	{resolver.PolicyRefused, 5},
	{resolver.PolicyServFail, 6},
	{resolver.PolicyFormErr, 4},
}

// NewPopulation builds the probe set against a world and its
// authoritative server. The upstream handler answers with the fleet of
// the given month at cfg.Phase.
func NewPopulation(w *netsim.World, month bgp.Month, cfg Config) *Population {
	cfg = cfg.withDefaults()
	pop := &Population{
		Resolvers: make(map[string]*resolver.Resolver),
		world:     w,
	}
	handler := &phaseHandler{inner: dnsserver.NewAuthServer(w, month, nil), world: w, month: month, phase: cfg.Phase}
	pop.handler = handler

	mkResolver := func(name string, addr netip.Addr) *resolver.Resolver {
		if r, ok := pop.Resolvers[name]; ok {
			return r
		}
		r := resolver.New(addr, &dnsserver.MemTransport{Handler: handler, Source: addr})
		pop.Resolvers[name] = r
		return r
	}
	// The four public resolvers.
	for _, pr := range resolver.PublicResolvers {
		mkResolver(pr.Name, pr.V6) // v6 identity keys AAAA answers
	}

	// Probe subnets cluster into a limited pool of client /24s, weighted
	// by AS size (probes sit in well-connected networks), which means
	// mostly the large "both"-group ASes — exactly why Atlas validation
	// sees fewer addresses than the exhaustive ECS scan.
	clients := w.ClientASes
	cum := make([]int, len(clients))
	total := 0
	for i, c := range clients {
		total += c.Slash24s
		cum[i] = total
	}
	pickClient := func(h uint64) netsim.ClientAS {
		x := int(h % uint64(total))
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] <= x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return clients[lo]
	}
	clusterSet := make(map[netip.Prefix]bool, cfg.SubnetClusters)
	clusters := make([]netip.Prefix, 0, cfg.SubnetClusters)
	for k := 0; len(clusters) < cfg.SubnetClusters && k < 20*cfg.SubnetClusters; k++ {
		c := pickClient(iputil.Mix(cfg.Seed^0xA71A5, uint64(k)))
		sub := iputil.NthSubnet(c.Prefixes[0], 24,
			iputil.Mix(cfg.Seed, uint64(k))%iputil.SubnetCount(c.Prefixes[0], 24))
		if !clusterSet[sub] {
			clusterSet[sub] = true
			clusters = append(clusters, sub)
		}
	}

	for id := 0; id < cfg.N; id++ {
		h := iputil.Mix(cfg.Seed^0xBEEF, uint64(id))
		sub := clusters[h%uint64(len(clusters))]
		addr := iputil.AddrAtIndex(sub, 1+(h>>32)%250)
		as, _ := w.Table.Origin(addr)

		var res *resolver.Resolver
		var resName string
		if int(h%1000) < cfg.PublicResolverShare {
			pr := resolver.PublicResolvers[h/1000%uint64(len(resolver.PublicResolvers))]
			resName = pr.Name
			res = pop.Resolvers[resName]
		} else {
			// ISP resolver: one per probe cluster (a resolver site close
			// to the probes sharing the /24).
			resName = fmt.Sprintf("isp-%d-%s", as, sub)
			fresh := pop.Resolvers[resName] == nil
			res = mkResolver(resName, ispResolverAddr(iputil.HashString(resName)))
			if fresh {
				// A deterministic slice of ISP resolvers block the service.
				bh := iputil.Mix(cfg.Seed^0xB10C, iputil.HashString(resName))
				if int(bh%1000) < cfg.ISPBlockedPerMille {
					res.Block("icloud.com", pickPolicy(bh))
				}
			}
		}

		cc := probeCountry(h)
		pop.Probes = append(pop.Probes, Probe{
			ID:           id,
			AS:           as,
			Addr:         addr,
			CC:           cc,
			Resolver:     res,
			ResolverName: resName,
			TimeoutProne: int(iputil.Mix(cfg.Seed^0x71EE, uint64(id))%1000) < cfg.TimeoutPerMille,
		})
	}
	// Exactly one ISP resolver hijacks the domain (§4.1 observed a single
	// nextdns-style interception): pick the used ISP resolver with the
	// smallest name hash.
	var hijackName string
	var best uint64
	for name := range pop.Resolvers {
		if len(name) < 4 || name[:4] != "isp-" {
			continue
		}
		if h := iputil.HashString(name); hijackName == "" || h < best {
			hijackName, best = name, h
		}
	}
	if hijackName != "" {
		pop.Resolvers[hijackName].Block("icloud.com", resolver.PolicyHijack)
	}
	return pop
}

// pickPolicy selects a blocking policy with the §4.1 weights.
func pickPolicy(h uint64) resolver.Policy {
	total := 0
	for _, bp := range blockPolicies {
		total += bp.weight
	}
	x := int(h / 7 % uint64(total))
	for _, bp := range blockPolicies {
		if x < bp.weight {
			return bp.policy
		}
		x -= bp.weight
	}
	return resolver.PolicyNXDomain
}

// probeCountry reflects the Atlas bias toward North America and Europe.
func probeCountry(h uint64) string {
	biased := []string{"US", "US", "US", "DE", "DE", "FR", "GB", "NL", "CA", "SE", "CH", "IT"}
	global := []string{"BR", "JP", "AU", "IN", "ZA", "SG", "AR", "KE", "TH", "MX"}
	if h%100 < 78 {
		return biased[h/100%uint64(len(biased))]
	}
	return global[h/100%uint64(len(global))]
}

// ispResolverAddr derives a stable IPv6 identity for an AS's resolver
// (only its hash matters — it keys AAAA answer selection upstream).
func ispResolverAddr(as uint64) netip.Addr {
	var b [16]byte
	b[0] = 0xfd // ULA
	binary.BigEndian.PutUint64(b[4:], iputil.Mix(as, 0xD15))
	return netip.AddrFrom16(b)
}

// phaseHandler wraps the authoritative server but answers A queries from
// a phase-shifted fleet window, so an Atlas campaign run "minutes" after
// the 40-hour ECS scan can see one address the scan did not (§4.1).
type phaseHandler struct {
	inner *dnsserver.AuthServer
	world *netsim.World
	month bgp.Month
	phase int
}

// Handle implements dnsserver.Handler.
func (p *phaseHandler) Handle(q *dnswire.Message, from netip.Addr) *dnswire.Message {
	resp := p.inner.Handle(q, from)
	if p.phase == 0 || resp == nil || len(resp.Answers) == 0 {
		return resp
	}
	if len(q.Questions) != 1 || q.Questions[0].Type != dnswire.TypeA {
		return resp
	}
	proto := netsim.ProtoDefault
	if dnswire.CanonicalName(q.Questions[0].Name) == dnsserver.MaskH2Domain {
		proto = netsim.ProtoFallback
	}
	// Re-map each answer onto the phase-shifted fleet: an address that
	// rotated out is replaced by its phase-shifted successor.
	current := p.world.FleetUnion(p.month, proto, netsim.FamilyV4, 0)
	shifted := p.world.FleetUnion(p.month, proto, netsim.FamilyV4, p.phase)
	_ = current
	var fresh []netip.Addr
	for a := range shifted {
		if _, ok := current[a]; !ok {
			fresh = append(fresh, a)
		}
	}
	sort.Slice(fresh, func(i, j int) bool { return fresh[i].Less(fresh[j]) })
	if len(fresh) > 0 {
		// Swap the first answer for a fresh address on a sliver of
		// queries, reproducing the single extra address.
		if iputil.HashAddr(from)%97 == 0 {
			resp.Answers[0].A = fresh[iputil.HashAddr(from)%uint64(len(fresh))]
		}
	}
	return resp
}

// --- Campaigns ---

// MeasurementResult is one probe's DNS measurement outcome.
type MeasurementResult struct {
	ProbeID  int
	Addrs    []netip.Addr
	RCode    dnswire.RCode
	TimedOut bool
	Hijacked bool
}

// Campaign runs one DNS measurement across all probes.
type Campaign struct {
	Domain string
	Type   dnswire.Type
}

// Run executes the campaign, returning per-probe results.
func (c Campaign) Run(ctx context.Context, pop *Population) ([]MeasurementResult, error) {
	out := make([]MeasurementResult, 0, len(pop.Probes))
	for i := range pop.Probes {
		p := &pop.Probes[i]
		res := MeasurementResult{ProbeID: p.ID}
		if p.TimeoutProne {
			res.TimedOut = true
			out = append(out, res)
			continue
		}
		var addrs []netip.Addr
		var rcode dnswire.RCode
		var err error
		if c.Type == dnswire.TypeAAAA {
			addrs, rcode, err = p.Resolver.ResolveAAAA(ctx, c.Domain, p.Addr)
		} else {
			addrs, rcode, err = p.Resolver.ResolveA(ctx, c.Domain, p.Addr)
		}
		switch {
		case errors.Is(err, dnsserver.ErrTimeout):
			res.TimedOut = true
		case err != nil:
			return nil, err
		default:
			res.Addrs = addrs
			res.RCode = rcode
			for _, a := range addrs {
				if a == resolver.HijackAddr {
					res.Hijacked = true
				}
			}
		}
		out = append(out, res)
	}
	return out, ctx.Err()
}

// DistinctAddrs collects the distinct addresses across results.
func DistinctAddrs(results []MeasurementResult) []netip.Addr {
	set := map[netip.Addr]bool{}
	for _, r := range results {
		for _, a := range r.Addrs {
			set[a] = true
		}
	}
	out := make([]netip.Addr, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// RunDirect queries the authoritative server directly from every probe
// (the paper's second AAAA measurement mode), bypassing resolvers. Each
// probe's own identity keys the answer.
func (c Campaign) RunDirect(ctx context.Context, pop *Population) ([]MeasurementResult, error) {
	out := make([]MeasurementResult, 0, len(pop.Probes))
	for i := range pop.Probes {
		p := &pop.Probes[i]
		res := MeasurementResult{ProbeID: p.ID}
		if p.TimeoutProne {
			res.TimedOut = true
			out = append(out, res)
			continue
		}
		src := p.Addr
		if c.Type == dnswire.TypeAAAA {
			src = probeV6Identity(uint64(p.ID))
		}
		mt := &dnsserver.MemTransport{Handler: pop.handler, Source: src}
		q := dnswire.NewQuery(uint16(p.ID), c.Domain, c.Type)
		resp, err := mt.Exchange(ctx, q)
		if errors.Is(err, dnsserver.ErrTimeout) {
			res.TimedOut = true
			out = append(out, res)
			continue
		}
		if err != nil {
			return nil, err
		}
		res.RCode = resp.Header.RCode
		for _, rec := range resp.Answers {
			switch rec.Type {
			case dnswire.TypeA:
				res.Addrs = append(res.Addrs, rec.A)
			case dnswire.TypeAAAA:
				res.Addrs = append(res.Addrs, rec.AAAA)
			}
		}
		out = append(out, res)
	}
	return out, ctx.Err()
}

// probeV6Identity derives the probe's IPv6 source identity.
func probeV6Identity(id uint64) netip.Addr {
	var b [16]byte
	b[0] = 0xfd
	b[1] = 0x9e
	binary.BigEndian.PutUint64(b[8:], iputil.Mix(id, 0x9E0B))
	return netip.AddrFrom16(b)
}

// IdentifyResolvers runs the whoami campaign: each probe resolves the
// whoami domain and learns its resolver's outward identity. It returns
// the share (per mille) of probes behind the four big public resolvers.
func IdentifyResolvers(pop *Population) int {
	publics := map[string]bool{}
	for _, pr := range resolver.PublicResolvers {
		publics[pr.Name] = true
	}
	n := 0
	for _, p := range pop.Probes {
		if publics[p.ResolverName] {
			n++
		}
	}
	return n * 1000 / len(pop.Probes)
}
