// Package integration_test drives whole-system flows over real loopback
// sockets: ECS enumeration through actual UDP (and TCP-fallback) DNS,
// scans against a rate-limited authoritative server, and the relay client
// resolving through a live resolver chain before tunneling over TCP.
package integration_test

import (
	"context"
	"io"
	"net/netip"
	"testing"
	"time"

	"github.com/relay-networks/privaterelay/internal/core"
	"github.com/relay-networks/privaterelay/internal/dnsserver"
	"github.com/relay-networks/privaterelay/internal/egress"
	"github.com/relay-networks/privaterelay/internal/netsim"
	"github.com/relay-networks/privaterelay/internal/relay"
	"github.com/relay-networks/privaterelay/internal/resolver"
	"github.com/relay-networks/privaterelay/internal/scan"
)

// smallWorld keeps socket-bound tests fast (~2.5k routed /24s).
func smallWorld(t testing.TB, seed uint64) *netsim.World {
	t.Helper()
	return netsim.NewWorld(netsim.Params{Seed: seed, Scale: 0.0002})
}

func TestECSScanOverRealUDP(t *testing.T) {
	w := smallWorld(t, 101)
	srv := dnsserver.NewAuthServer(w, netsim.MonthApr, nil)

	us, err := dnsserver.ListenUDP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer us.Close()
	ts, err := dnsserver.ListenTCP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	wire := &dnsserver.TruncatingUDPClient{
		UDP: &dnsserver.UDPClient{ServerAddr: us.Addr().String(), Timeout: 2 * time.Second, Retries: 2},
		TCP: &dnsserver.TCPClient{ServerAddr: ts.Addr().String(), Timeout: 2 * time.Second},
	}
	overUDP, err := core.Scan(context.Background(), core.ScanConfig{
		Exchanger:    wire,
		Domain:       dnsserver.MaskDomain,
		Universe:     w.RoutedV4Prefixes(),
		Attribution:  w.Table,
		RespectScope: true,
		Concurrency:  32,
		Retries:      2,
	})
	if err != nil {
		t.Fatal(err)
	}

	inMem, err := core.Scan(context.Background(), core.ScanConfig{
		Exchanger:    &dnsserver.MemTransport{Handler: srv, Source: netip.MustParseAddr("127.0.0.1")},
		Domain:       dnsserver.MaskDomain,
		Universe:     w.RoutedV4Prefixes(),
		Attribution:  w.Table,
		RespectScope: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	if len(overUDP.Addresses) != len(inMem.Addresses) {
		t.Fatalf("UDP scan found %d addrs, in-memory found %d", len(overUDP.Addresses), len(inMem.Addresses))
	}
	for a, as := range inMem.Addresses {
		if overUDP.Addresses[a] != as {
			t.Fatalf("address %v differs across transports", a)
		}
	}
}

func TestScanAgainstRateLimitedServer(t *testing.T) {
	w := smallWorld(t, 102)
	// Tight limiter: 2000 qps, burst 50 — the scan must pace itself and
	// retry dropped queries to stay complete (the paper's 40-hour scan is
	// the same dance at Internet scale).
	limiter := dnsserver.NewRateLimiter(2000, 50, nil)
	srv := dnsserver.NewAuthServer(w, netsim.MonthApr, limiter)
	mt := &dnsserver.MemTransport{Handler: srv, Source: netip.MustParseAddr("127.0.0.9")}

	ds, err := core.Scan(context.Background(), core.ScanConfig{
		Exchanger:    mt,
		Domain:       dnsserver.MaskDomain,
		Universe:     w.RoutedV4Prefixes(),
		Attribution:  w.Table,
		RespectScope: true,
		Concurrency:  8,
		Retries:      4,
		QPS:          1500, // client politeness below the server limit
	})
	if err != nil {
		t.Fatal(err)
	}
	// The property under test: pacing + retries lose nothing relative to
	// an unthrottled scan of the same world. (Absolute fleet coverage is
	// a world-scale property tested in internal/core at larger scale.)
	unthrottled, err := core.Scan(context.Background(), core.ScanConfig{
		Exchanger:    &dnsserver.MemTransport{Handler: dnsserver.NewAuthServer(w, netsim.MonthApr, nil), Source: netip.MustParseAddr("127.0.0.9")},
		Domain:       dnsserver.MaskDomain,
		Universe:     w.RoutedV4Prefixes(),
		Attribution:  w.Table,
		RespectScope: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Addresses) != len(unthrottled.Addresses) {
		t.Fatalf("rate-limited scan found %d addrs, unthrottled found %d (timeouts=%d)",
			len(ds.Addresses), len(unthrottled.Addresses), ds.Stats.Timeouts)
	}
	for a := range unthrottled.Addresses {
		if _, ok := ds.Addresses[a]; !ok {
			t.Fatalf("rate-limited scan missed %v", a)
		}
	}
}

func TestRelayEndToEndWithLiveDNSChain(t *testing.T) {
	w := smallWorld(t, 103)
	dep := relay.NewDeployment(w, egress.Generate(w, 103))
	client := w.ClientASes[0].Prefixes[0].Addr().Next()

	svc, err := relay.StartService(dep, relay.ServiceConfig{Client: client, Month: netsim.MonthApr, Seed: 103})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// Live resolver chain: device → caching resolver → UDP authoritative.
	srv := dnsserver.NewAuthServer(w, netsim.MonthApr, nil)
	us, err := dnsserver.ListenUDP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer us.Close()
	res := resolver.New(netip.MustParseAddr("127.0.0.1"),
		&dnsserver.UDPClient{ServerAddr: us.Addr().String(), Timeout: 2 * time.Second, Retries: 2})
	dev := &relay.Device{Client: client, Resolver: res, Service: svc, Account: "integ", Day: "2022-05-11"}

	ws, err := scan.StartWebServer()
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	es, err := scan.StartEchoServer()
	if err != nil {
		t.Fatal(err)
	}
	defer es.Close()

	obs, err := scan.Run(context.Background(), scan.Config{
		Device: dev, Web: ws, Echo: es, Rounds: 12, Interval: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ok := 0
	for _, o := range obs {
		if !o.Failed && o.SafariEgress.IsValid() && o.CurlEgress.IsValid() {
			ok++
		}
	}
	if ok != len(obs) {
		t.Fatalf("%d/%d rounds succeeded over the live chain", ok, len(obs))
	}
	// The resolver cache kept the DNS load sublinear in rounds.
	if res.CacheMisses >= res.CacheHits+res.CacheMisses && res.CacheHits == 0 {
		t.Fatalf("no cache hits across %d rounds", len(obs))
	}
}

func TestDeviceBlockedThenUnblockedLive(t *testing.T) {
	w := smallWorld(t, 104)
	dep := relay.NewDeployment(w, egress.Generate(w, 104))
	client := w.ClientASes[1].Prefixes[0].Addr().Next()
	svc, err := relay.StartService(dep, relay.ServiceConfig{Client: client, Month: netsim.MonthApr, Seed: 104})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	srv := dnsserver.NewAuthServer(w, netsim.MonthApr, nil)
	res := resolver.New(netip.MustParseAddr("127.0.0.2"),
		&dnsserver.MemTransport{Handler: srv, Source: netip.MustParseAddr("127.0.0.2")})
	dev := &relay.Device{Client: client, Resolver: res, Service: svc, Account: "integ2", Day: "2022-05-11"}

	// ISP turns on blocking: both planes fail, so the device cannot
	// connect at all — the whitepaper's documented blocking lever.
	res.Block("icloud.com", resolver.PolicyNXDomain)
	if _, err := dev.Connect(context.Background()); err != relay.ErrServiceBlocked {
		t.Fatalf("blocked connect err = %v", err)
	}
	// ISP lifts the block; the device recovers without restart.
	res.Block("icloud.com", resolver.PolicyNone)
	tun, err := dev.Connect(context.Background())
	if err != nil {
		t.Fatalf("post-unblock connect: %v", err)
	}
	defer tun.Close()

	es, err := scan.StartEchoServer()
	if err != nil {
		t.Fatal(err)
	}
	defer es.Close()
	s, egressAddr, err := tun.Open(es.Addr())
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(s, "GET /plain\n")
	body, _ := io.ReadAll(s)
	s.Close()
	if string(body) != egressAddr.String()+"\n" {
		t.Fatalf("echo = %q, egress %v", body, egressAddr)
	}
}
