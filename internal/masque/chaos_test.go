package masque

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/relay-networks/privaterelay/internal/vclock"
)

// Chaos coverage for the serving plane's control surface: drain,
// reload and every typed rejection must be deterministic — the same
// scripted workload produces byte-identical per-account rejection
// histories on every run, even with all accounts hammering the plane
// concurrently under the race detector. Determinism holds because the
// clock is virtual and only advances at phase barriers, and each
// account's reservation counters are touched by exactly one goroutine.

// planeScriptResult is everything a scripted run observes: the ordered
// rejection codes each account saw, plus the plane's aggregate
// rejection histogram.
type planeScriptResult struct {
	histories [][]RejectCode
	rejected  map[RejectCode]int64
}

// runPlaneScript drives one full lifecycle — admission caps, bandwidth
// pacing, data-cap exhaustion, drain, reload, expiry sweep — with one
// goroutine per account and clock advances only between phases.
func runPlaneScript(t *testing.T, accounts int) planeScriptResult {
	t.Helper()
	clock := vclock.NewVirtualClock()
	ctx := context.Background()
	// 1 KiB frames against: 2 sessions, 5 KiB of data, 1 KiB/s sustained
	// with a 2 KiB burst. Every limit binds at a known frame index.
	rs := NewReservations(Limits{
		Duration:     time.Hour,
		DataCap:      5 * 1024,
		BandwidthBps: 1024,
		Burst:        2 * 1024,
		MaxSessions:  2,
	}, clock)
	p := NewPlane(PlaneConfig{Shards: 8, IngressWorkers: 1, EgressWorkers: 1, Reservations: rs})
	defer p.Shutdown()

	payload := make([]byte, 1024)
	histories := make([][]RejectCode, accounts)
	sessions := make([][]*PlaneSession, accounts)

	// phase runs body concurrently for every account and waits for all
	// of them — the barrier after which the main goroutine may touch the
	// shared clock or the drain switch.
	phase := func(body func(i int, acct string)) {
		var wg sync.WaitGroup
		for i := 0; i < accounts; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				body(i, string(rune('a'+i))+"-acct")
			}(i)
		}
		wg.Wait()
	}
	open := func(i int, acct string) *PlaneSession {
		s, code := p.Open(acct)
		histories[i] = append(histories[i], code)
		if s != nil {
			sessions[i] = append(sessions[i], s)
		}
		return s
	}
	relay := func(i int, f *Frame, id uint32) {
		f.Type = FrameData
		f.StreamID = id
		f.SetPayload(payload)
		histories[i] = append(histories[i], p.Relay(f))
	}

	// Phase 1: two sessions admit, the third hits the session cap; the
	// third 1 KiB frame overruns the 2 KiB burst.
	phase(func(i int, acct string) {
		s1 := open(i, acct)
		open(i, acct)
		open(i, acct)
		f := AcquireFrame()
		defer ReleaseFrame(f)
		for k := 0; k < 3; k++ {
			relay(i, f, s1.ID())
		}
	})
	if err := clock.Sleep(ctx, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	// Phase 2: the bucket has refilled, so the data cap is what binds —
	// two frames drain the remaining 2 KiB, the next two are rejected.
	phase(func(i int, acct string) {
		f := AcquireFrame()
		defer ReleaseFrame(f)
		for k := 0; k < 4; k++ {
			relay(i, f, sessions[i][0].ID())
		}
	})

	// Phase 3: drain. New admissions are refused with a typed code;
	// live sessions keep being served (and keep hitting their caps).
	p.Drain()
	phase(func(i int, acct string) {
		open(i, acct)
		f := AcquireFrame()
		defer ReleaseFrame(f)
		relay(i, f, sessions[i][1].ID())
	})

	// Phase 4: resume with a reloaded policy and step past the original
	// reservations' expiry. The first admission sweeps the lapsed
	// reservation (typed, exactly once), the second mints fresh under
	// the new single-session uncapped policy, the third hits its cap.
	p.Resume()
	p.Reload(Limits{Duration: 2 * time.Hour, MaxSessions: 1})
	if err := clock.Sleep(ctx, 2*time.Hour); err != nil {
		t.Fatal(err)
	}
	phase(func(i int, acct string) {
		open(i, acct)
		s3 := open(i, acct)
		open(i, acct)
		f := AcquireFrame()
		defer ReleaseFrame(f)
		relay(i, f, s3.ID())
	})

	// Teardown: every admitted session closes and the table empties.
	phase(func(i int, acct string) {
		for _, s := range sessions[i] {
			p.Close(s)
		}
	})
	st := p.Stats()
	if st.Sessions != 0 {
		t.Fatalf("sessions leaked after close: %d", st.Sessions)
	}
	return planeScriptResult{histories: histories, rejected: st.Rejected}
}

func TestChaosPlaneDrainReloadDeterministic(t *testing.T) {
	const accounts = 8
	first := runPlaneScript(t, accounts)

	// Every account must observe the exact scripted lifecycle.
	want := []RejectCode{
		// phase 1: admissions then burst overrun
		RejectNone, RejectNone, RejectSessionLimit,
		RejectNone, RejectNone, RejectBandwidth,
		// phase 2: data cap drains
		RejectNone, RejectNone, RejectDataCap, RejectDataCap,
		// phase 3: draining admission + still-capped live session
		RejectDraining, RejectDataCap,
		// phase 4: expiry sweep, fresh admission, new session cap, relay
		RejectExpired, RejectNone, RejectSessionLimit, RejectNone,
	}
	for i, h := range first.histories {
		if !reflect.DeepEqual(h, want) {
			t.Fatalf("account %d history = %v, want %v", i, h, want)
		}
	}

	// And an identical re-run must reproduce it bit for bit — histories
	// and the aggregate rejection histogram.
	second := runPlaneScript(t, accounts)
	if !reflect.DeepEqual(first.histories, second.histories) {
		t.Fatalf("rejection histories differ across identical runs:\n%v\n%v",
			first.histories, second.histories)
	}
	if !reflect.DeepEqual(first.rejected, second.rejected) {
		t.Fatalf("rejection histograms differ across identical runs: %v vs %v",
			first.rejected, second.rejected)
	}
}

// TestChaosShardedTableChurn hammers the sharded session table from
// concurrent owners of disjoint key ranges: the per-shard locking must
// keep every range intact (and the race detector quiet) through
// store/load/delete churn.
func TestChaosShardedTableChurn(t *testing.T) {
	const (
		workers = 8
		perW    = 2048
	)
	tbl := NewSharded[uint32, int](16, HashUint32)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint32(w * perW)
			for k := uint32(0); k < perW; k++ {
				tbl.Store(base+k, int(k))
			}
			for k := uint32(0); k < perW; k++ {
				v, ok := tbl.Load(base + k)
				if !ok || v != int(k) {
					t.Errorf("worker %d key %d: got %v %v", w, k, v, ok)
					return
				}
			}
			for k := uint32(0); k < perW; k += 2 {
				tbl.Delete(base + k)
			}
		}(w)
	}
	wg.Wait()
	if got, want := tbl.Len(), workers*perW/2; got != want {
		t.Fatalf("Len after churn = %d, want %d", got, want)
	}
	n := 0
	tbl.Range(func(k uint32, v int) bool {
		if k%2 == 0 {
			t.Fatalf("deleted key %d still present", k)
		}
		n++
		return true
	})
	if n != tbl.Len() {
		t.Fatalf("Range visited %d entries, Len reports %d", n, tbl.Len())
	}
}
