package masque

import (
	"errors"
	"net"
	"net/netip"
	"testing"
	"time"

	"github.com/relay-networks/privaterelay/internal/vclock"
)

// Wire-level reservation coverage: the ingress must answer AUTH with
// RESERVE_OK (announcing the granted limits) or a typed REJECT, and
// the client must surface both faithfully.

// reservationSetup builds a loopback ingress/egress pair with the
// given admission policy and returns the issued token plus addresses.
func reservationSetup(t *testing.T, rs *Reservations) (ing *Ingress, ingAddr, egAddr, tok string, stop func()) {
	t.Helper()
	egLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	eg := &Egress{ID: EgressIDForAddr(egLn.Addr().String()), Rotation: &PerConnectionRotation{
		Pool: []netip.Addr{netip.MustParseAddr("172.224.224.1")}, Seed: 1,
	}}
	go eg.Serve(egLn)

	inLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ti := NewTokenIssuer("test-secret", 10)
	ing = &Ingress{Validator: ti, Reservations: rs}
	go ing.Serve(inLn)

	tok, err = ti.Issue("reserved-tester", "2022-05-11")
	if err != nil {
		t.Fatal(err)
	}
	return ing, inLn.Addr().String(), egLn.Addr().String(), tok, func() {
		ing.Close()
		eg.Close()
	}
}

func reservationClient(ingAddr, egAddr, tok string) *Client {
	return &Client{IngressAddr: ingAddr, EgressAddr: egAddr, Token: tok, Geohash: "u281z"}
}

func TestReservationHandshakeAnnouncesLimits(t *testing.T) {
	limits := Limits{Duration: time.Hour, DataCap: 1 << 20, BandwidthBps: 1 << 20, MaxSessions: 1}
	rs := NewReservations(limits, vclock.NewVirtualClock())
	_, ingAddr, egAddr, tok, stop := reservationSetup(t, rs)
	defer stop()

	cl := reservationClient(ingAddr, egAddr, tok)
	if err := cl.Dial(); err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	info, ok := cl.Reservation()
	if !ok {
		t.Fatal("reservation-enabled ingress answered with legacy AUTH_OK")
	}
	if info.DataCap != limits.DataCap || info.BandwidthBps != limits.BandwidthBps || info.MaxSessions != limits.MaxSessions {
		t.Fatalf("announced limits %+v do not match policy %+v", info, limits)
	}
	if info.ExpiryUnixNano == 0 {
		t.Fatal("duration-limited reservation announced no expiry")
	}
}

func TestReservationSessionLimitOverWire(t *testing.T) {
	rs := NewReservations(Limits{MaxSessions: 1}, vclock.NewVirtualClock())
	ing, ingAddr, egAddr, tok, stop := reservationSetup(t, rs)
	defer stop()

	first := reservationClient(ingAddr, egAddr, tok)
	if err := first.Dial(); err != nil {
		t.Fatal(err)
	}
	defer first.Close()

	// Same account, second concurrent tunnel: typed denial that still
	// satisfies the legacy ErrAuthRejected check.
	second := reservationClient(ingAddr, egAddr, tok)
	err := second.Dial()
	var rej *RejectionError
	if !errors.As(err, &rej) || rej.Code != RejectSessionLimit {
		t.Fatalf("second tunnel err = %v, want RejectionError{RESOURCE_LIMIT_EXCEEDED}", err)
	}
	if !errors.Is(err, ErrAuthRejected) {
		t.Fatal("typed rejection does not unwrap to ErrAuthRejected")
	}
	if n := ing.RejectCounts()[RejectSessionLimit]; n != 1 {
		t.Fatalf("ingress counted %d session-limit rejections, want 1", n)
	}

	// Closing the first tunnel frees the slot for a fresh admission.
	first.Close()
	deadline := time.Now().Add(5 * time.Second) //lint:allow determinism — test-only wait for the ingress to settle the closed tunnel
	for {
		third := reservationClient(ingAddr, egAddr, tok)
		if err := third.Dial(); err == nil {
			third.Close()
			break
		}
		if time.Now().After(deadline) { //lint:allow determinism — test-only deadline
			t.Fatal("session slot never freed after tunnel close")
		}
		time.Sleep(10 * time.Millisecond) //lint:allow determinism — test-only backoff
	}
}

func TestReservationDrainOverWire(t *testing.T) {
	rs := NewReservations(Limits{}, vclock.NewVirtualClock())
	_, ingAddr, egAddr, tok, stop := reservationSetup(t, rs)
	defer stop()

	rs.Drain()
	cl := reservationClient(ingAddr, egAddr, tok)
	err := cl.Dial()
	var rej *RejectionError
	if !errors.As(err, &rej) || rej.Code != RejectDraining {
		t.Fatalf("Dial during drain err = %v, want RejectionError{RELAY_DRAINING}", err)
	}

	rs.Resume()
	cl = reservationClient(ingAddr, egAddr, tok)
	if err := cl.Dial(); err != nil {
		t.Fatalf("Dial after resume: %v", err)
	}
	cl.Close()
}
