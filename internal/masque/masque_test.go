package masque

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &Frame{Type: FrameData, StreamID: 42, Payload: []byte("hello")}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != in.Type || out.StreamID != in.StreamID || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip: %+v", out)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, &Frame{Type: FrameAuthOK})
	out, err := ReadFrame(&buf)
	if err != nil || out.Type != FrameAuthOK || len(out.Payload) != 0 {
		t.Fatalf("%v %+v", err, out)
	}
}

func TestFrameSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Frame{Type: FrameData, Payload: make([]byte, maxFramePayload+1)}); err != ErrFrameTooLarge {
		t.Fatalf("oversize write err = %v", err)
	}
	// Forged oversize header on the read side.
	hdr := []byte{byte(FrameData), 0, 0, 0, 1, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ReadFrame(bytes.NewReader(hdr)); err != ErrFrameTooLarge {
		t.Fatalf("oversize read err = %v", err)
	}
}

func TestFrameTruncatedRead(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, &Frame{Type: FrameData, StreamID: 1, Payload: []byte("abcdef")})
	raw := buf.Bytes()
	for cut := 0; cut < len(raw); cut++ {
		if _, err := ReadFrame(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncated frame at %d accepted", cut)
		}
	}
}

func TestFrameTypeStrings(t *testing.T) {
	if FrameAuth.String() != "AUTH" || FrameConnectOK.String() != "CONNECT_OK" || FrameType(99).String() != "FRAME99" {
		t.Fatal("frame type strings")
	}
}

func TestSealUnseal(t *testing.T) {
	plain := []byte("target.example:443\n9q8yy")
	sealed := Seal("egress@10.0.0.1:443", plain)
	got, err := Unseal("egress@10.0.0.1:443", sealed)
	if err != nil || !bytes.Equal(got, plain) {
		t.Fatalf("unseal: %v %q", err, got)
	}
}

func TestSealWrongIdentityFails(t *testing.T) {
	sealed := Seal("egress@a:1", []byte("secret"))
	if _, err := Unseal("egress@b:1", sealed); !errors.Is(err, ErrBadSeal) {
		t.Fatalf("cross-identity unseal: %v", err)
	}
}

func TestSealTamperDetected(t *testing.T) {
	sealed := Seal("egress@a:1", []byte("secret"))
	sealed[len(sealed)-1] ^= 1
	if _, err := Unseal("egress@a:1", sealed); !errors.Is(err, ErrBadSeal) {
		t.Fatalf("tampered unseal: %v", err)
	}
	if _, err := Unseal("egress@a:1", []byte("short")); !errors.Is(err, ErrBadSeal) {
		t.Fatal("short input accepted")
	}
}

func TestSealHidesPlaintext(t *testing.T) {
	plain := []byte("very-visible-target.example:443")
	sealed := Seal("egress@a:1", plain)
	if bytes.Contains(sealed, []byte("visible-target")) {
		t.Fatal("plaintext leaks through seal")
	}
}

// Property: seal/unseal round-trips arbitrary payloads.
func TestPropertySealRoundTrip(t *testing.T) {
	f := func(id string, data []byte) bool {
		got, err := Unseal(id, Seal(id, data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTokenIssueValidate(t *testing.T) {
	ti := NewTokenIssuer("secret", 3)
	tok, err := ti.Issue("alice", "2022-05-11")
	if err != nil {
		t.Fatal(err)
	}
	if err := ti.Validate(tok); err != nil {
		t.Fatalf("fresh token invalid: %v", err)
	}
	// Wrong issuer secret rejects.
	other := NewTokenIssuer("other", 3)
	if err := other.Validate(tok); err == nil {
		t.Fatal("cross-issuer token accepted")
	}
	// Garbage rejects.
	for _, bad := range []string{"", "x", "a.b", tok + "x"} {
		if err := ti.Validate(bad); err == nil {
			t.Fatalf("garbage token %q accepted", bad)
		}
	}
}

func TestTokenDailyQuota(t *testing.T) {
	ti := NewTokenIssuer("s", 2)
	day := "2022-05-11"
	if _, err := ti.Issue("bob", day); err != nil {
		t.Fatal(err)
	}
	if ti.Remaining("bob", day) != 1 {
		t.Fatalf("remaining = %d", ti.Remaining("bob", day))
	}
	if _, err := ti.Issue("bob", day); err != nil {
		t.Fatal(err)
	}
	if _, err := ti.Issue("bob", day); !errors.Is(err, ErrTokenQuota) {
		t.Fatalf("quota not enforced: %v", err)
	}
	// New day resets; other accounts unaffected.
	if _, err := ti.Issue("bob", "2022-05-12"); err != nil {
		t.Fatal(err)
	}
	if _, err := ti.Issue("carol", day); err != nil {
		t.Fatal(err)
	}
}

func TestRotationPolicies(t *testing.T) {
	pool := []netip.Addr{
		netip.MustParseAddr("172.224.224.1"),
		netip.MustParseAddr("172.224.224.2"),
		netip.MustParseAddr("172.224.225.1"),
		netip.MustParseAddr("104.16.0.1"),
		netip.MustParseAddr("104.16.0.2"),
		netip.MustParseAddr("104.16.1.1"),
	}
	rot := &PerConnectionRotation{Pool: pool, Seed: 11}
	changes, total := 0, 2000
	prev := rot.Next(0)
	seen := map[netip.Addr]bool{prev: true}
	for i := 1; i < total; i++ {
		a := rot.Next(uint64(i))
		seen[a] = true
		if a != prev {
			changes++
		}
		prev = a
	}
	rate := float64(changes) / float64(total-1)
	if rate <= 0.66 {
		t.Fatalf("change rate %.2f ≤ 0.66; paper observed >66%%", rate)
	}
	if len(seen) != len(pool) {
		t.Fatalf("rotation used %d/%d pool members", len(seen), len(pool))
	}
	// Deterministic per n.
	if rot.Next(5) != rot.Next(5) {
		t.Fatal("rotation not deterministic")
	}
	sticky := &StickyRotation{Addr: pool[0]}
	for i := 0; i < 10; i++ {
		if sticky.Next(uint64(i)) != pool[0] {
			t.Fatal("sticky rotation moved")
		}
	}
	empty := &PerConnectionRotation{}
	if empty.Next(0).IsValid() {
		t.Fatal("empty pool should yield invalid addr")
	}
}

func TestSourcePreambleRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	src := netip.MustParseAddr("172.224.224.17")
	if err := WriteSourcePreamble(&buf, src); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSourcePreamble(bufio.NewReader(&buf))
	if err != nil || got != src {
		t.Fatalf("preamble: %v %v", got, err)
	}
	if _, err := ReadSourcePreamble(bufio.NewReader(strings.NewReader("GET / HTTP/1.1\n"))); err == nil {
		t.Fatal("non-preamble accepted")
	}
}

// echoServer is a minimal preamble-aware target: it reads the simulated
// source and echoes "src=<addr> " followed by everything it receives.
func echoServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func(c net.Conn) {
				defer wg.Done()
				defer c.Close()
				br := bufio.NewReader(c)
				src, err := ReadSourcePreamble(br)
				if err != nil {
					return
				}
				fmt.Fprintf(c, "src=%s ", src)
				io.Copy(c, br)
			}(c)
		}
	}()
	return ln.Addr().String(), func() { ln.Close(); wg.Wait() }
}

// relaySetup builds a full client→ingress→egress→target chain on
// loopback and returns the ready client plus the rotation pool.
func relaySetup(t *testing.T, rotation RotationPolicy) (*Client, *Ingress, func()) {
	t.Helper()
	egLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	eg := &Egress{ID: EgressIDForAddr(egLn.Addr().String()), Rotation: rotation}
	go eg.Serve(egLn)

	inLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ti := NewTokenIssuer("test-secret", 10)
	ing := &Ingress{Validator: ti}
	go ing.Serve(inLn)

	tok, err := ti.Issue("tester", "2022-05-11")
	if err != nil {
		t.Fatal(err)
	}
	cl := &Client{
		IngressAddr: inLn.Addr().String(),
		EgressAddr:  egLn.Addr().String(),
		Token:       tok,
		Geohash:     "u281z",
	}
	if err := cl.Dial(); err != nil {
		t.Fatal(err)
	}
	return cl, ing, func() {
		cl.Close()
		ing.Close()
		eg.Close()
	}
}

func TestEndToEndTunnel(t *testing.T) {
	target, stopTarget := echoServer(t)
	defer stopTarget()
	pool := []netip.Addr{netip.MustParseAddr("172.224.224.1"), netip.MustParseAddr("104.16.0.1")}
	cl, ing, stop := relaySetup(t, &PerConnectionRotation{Pool: pool, Seed: 3})
	defer stop()

	s, egAddr, err := cl.Open(target)
	if err != nil {
		t.Fatal(err)
	}
	if !egAddr.IsValid() {
		t.Fatal("no egress address reported")
	}
	if _, err := s.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := s.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	got := string(buf[:n])
	want := "src=" + egAddr.String() + " "
	for !strings.Contains(got, "ping") {
		n, err = s.Read(buf)
		if err != nil {
			t.Fatalf("read: %v (got %q)", err, got)
		}
		got += string(buf[:n])
	}
	if !strings.HasPrefix(got, want) {
		t.Fatalf("target saw %q, want prefix %q", got, want)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Ingress saw the client and the egress — but never the target.
	recs := ing.Records()
	if len(recs) != 1 {
		t.Fatalf("ingress records = %d", len(recs))
	}
	if recs[0].EgressAddr != cl.EgressAddr {
		t.Fatalf("ingress egress addr = %s", recs[0].EgressAddr)
	}
	if strings.Contains(recs[0].String(), target) {
		t.Fatal("ingress record leaks target")
	}
}

func TestEgressRotatesPerConnection(t *testing.T) {
	target, stopTarget := echoServer(t)
	defer stopTarget()
	pool := []netip.Addr{
		netip.MustParseAddr("172.224.224.1"), netip.MustParseAddr("172.224.224.2"),
		netip.MustParseAddr("172.224.225.1"), netip.MustParseAddr("104.16.0.1"),
		netip.MustParseAddr("104.16.0.2"), netip.MustParseAddr("104.16.1.1"),
	}
	cl, _, stop := relaySetup(t, &PerConnectionRotation{Pool: pool, Seed: 9})
	defer stop()

	seen := map[netip.Addr]bool{}
	changes := 0
	var prev netip.Addr
	const attempts = 60
	for i := 0; i < attempts; i++ {
		s, addr, err := cl.Open(target)
		if err != nil {
			t.Fatal(err)
		}
		seen[addr] = true
		if i > 0 && addr != prev {
			changes++
		}
		prev = addr
		s.Close()
	}
	if len(seen) < 4 {
		t.Fatalf("rotation exercised only %d addresses", len(seen))
	}
	if rate := float64(changes) / float64(attempts-1); rate <= 0.5 {
		t.Fatalf("per-connection change rate %.2f too low", rate)
	}
}

func TestParallelStreamsGetIndependentEgress(t *testing.T) {
	target, stopTarget := echoServer(t)
	defer stopTarget()
	pool := []netip.Addr{
		netip.MustParseAddr("172.224.224.1"), netip.MustParseAddr("172.224.224.2"),
		netip.MustParseAddr("104.16.0.1"), netip.MustParseAddr("104.16.0.2"),
	}
	cl, _, stop := relaySetup(t, &PerConnectionRotation{Pool: pool, Seed: 1})
	defer stop()

	// The paper observed different egress addresses for parallel curl and
	// Safari requests: open many parallel streams and require ≥2 addrs.
	addrs := make(chan netip.Addr, 16)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, a, err := cl.Open(target)
			if err != nil {
				t.Error(err)
				return
			}
			defer s.Close()
			addrs <- a
		}()
	}
	wg.Wait()
	close(addrs)
	distinct := map[netip.Addr]bool{}
	for a := range addrs {
		distinct[a] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("parallel streams shared one egress address (%d distinct)", len(distinct))
	}
}

func TestIngressRejectsBadToken(t *testing.T) {
	egLn, _ := net.Listen("tcp", "127.0.0.1:0")
	eg := &Egress{ID: EgressIDForAddr(egLn.Addr().String())}
	go eg.Serve(egLn)
	defer eg.Close()

	inLn, _ := net.Listen("tcp", "127.0.0.1:0")
	ing := &Ingress{Validator: NewTokenIssuer("real-secret", 5)}
	go ing.Serve(inLn)
	defer ing.Close()

	cl := &Client{IngressAddr: inLn.Addr().String(), EgressAddr: egLn.Addr().String(), Token: "forged.token"}
	err := cl.Dial()
	if !errors.Is(err, ErrAuthRejected) {
		t.Fatalf("Dial with forged token: %v", err)
	}
}

func TestIngressAllowedEgressEnforced(t *testing.T) {
	inLn, _ := net.Listen("tcp", "127.0.0.1:0")
	ing := &Ingress{AllowedEgress: map[string]bool{"10.9.9.9:1": true}}
	go ing.Serve(inLn)
	defer ing.Close()

	cl := &Client{IngressAddr: inLn.Addr().String(), EgressAddr: "10.8.8.8:1", Token: "t"}
	if err := cl.Dial(); !errors.Is(err, ErrAuthRejected) {
		t.Fatalf("disallowed egress: %v", err)
	}
}

func TestConnectToUnreachableTarget(t *testing.T) {
	cl, _, stop := relaySetup(t, &StickyRotation{Addr: netip.MustParseAddr("172.224.224.1")})
	defer stop()
	_, _, err := cl.Open("127.0.0.1:1") // nothing listens on port 1
	if !errors.Is(err, ErrConnectFailed) {
		t.Fatalf("unreachable target: %v", err)
	}
}

func TestOpenAfterClose(t *testing.T) {
	cl, _, stop := relaySetup(t, &StickyRotation{Addr: netip.MustParseAddr("172.224.224.1")})
	stop()
	if _, _, err := cl.Open("127.0.0.1:80"); err == nil {
		t.Fatal("Open on closed tunnel succeeded")
	}
}

func TestLargeTransfer(t *testing.T) {
	target, stopTarget := echoServer(t)
	defer stopTarget()
	cl, _, stop := relaySetup(t, &StickyRotation{Addr: netip.MustParseAddr("172.224.224.1")})
	defer stop()

	s, _, err := cl.Open(target)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	payload := bytes.Repeat([]byte("0123456789abcdef"), 8192) // 128 KiB
	go func() {
		s.Write(payload)
	}()
	// Skip the "src=..." prefix, then verify the echoed payload.
	br := bufio.NewReader(s)
	if _, err := br.ReadString(' '); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(br, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("large transfer corrupted")
	}
}
