package masque

import (
	"sync"
	"sync/atomic"
)

// Frame pooling for the relay serving plane. The steady-state frame
// path — tunnel read, reservation debit, egress delivery — runs in
// pooled frames whose payload storage is retained across uses, so
// relaying a frame costs zero allocations once the pools are warm.
//
// Ownership rules mirror dnswire's message pool (relaylint poolcheck
// enforces the same acquire/release discipline for both):
//
//   - A frame returned by AcquireFrame is owned by exactly one
//     goroutine at a time. Handing it to Plane.Submit (or any channel)
//     transfers ownership to the receiver.
//   - ReleaseFrame recycles only frames that came from AcquireFrame;
//     anything else — a stack-built &Frame{...}, a frame from
//     ReadFrame — is a safe no-op.
//   - After ReleaseFrame the frame must not be touched; its payload
//     storage will be rewritten by the next owner.

// maxPooledPayload caps the payload capacity a recycled frame keeps.
// Frames that ballooned toward maxFramePayload drop their storage on
// release so one hostile burst cannot pin megabytes in the pool.
const maxPooledPayload = 64 * 1024

// framePoolAcquires / framePoolMisses feed the pool-hit-rate metric
// relayd exports: a miss is an acquire served by allocating a fresh
// Frame. Plain atomic adds keep the 0 allocs/op frame path intact.
var (
	framePoolAcquires atomic.Int64
	framePoolMisses   atomic.Int64
)

var framePool = sync.Pool{New: func() any {
	framePoolMisses.Add(1)
	return new(Frame)
}}

// FramePoolStats reports lifetime acquire and miss counts for the
// frame pool. The hit rate is (acquires-misses)/acquires.
func FramePoolStats() (acquires, misses int64) {
	return framePoolAcquires.Load(), framePoolMisses.Load()
}

// AcquireFrame returns a pooled frame. Its Type, StreamID and Payload
// are zero; payload storage from a previous life is retained and
// reused by SetPayload / FrameReader.ReadInto.
func AcquireFrame() *Frame {
	framePoolAcquires.Add(1)
	f := framePool.Get().(*Frame)
	f.pooled = true
	return f
}

// ReleaseFrame returns f to the pool if it came from AcquireFrame
// (otherwise it is a no-op, see the ownership rules above).
func ReleaseFrame(f *Frame) {
	if f == nil || !f.pooled {
		return
	}
	f.pooled = false
	buf := f.buf
	if cap(buf) > maxPooledPayload {
		buf = nil
	}
	*f = Frame{buf: buf}
	framePool.Put(f)
}

// grow readies n bytes of payload storage, reusing retained capacity,
// and points Payload at it.
func (f *Frame) grow(n int) []byte {
	if cap(f.buf) < n {
		f.buf = make([]byte, n)
	}
	f.buf = f.buf[:n]
	f.Payload = f.buf
	return f.buf
}

// SetPayload copies p into the frame's retained storage. Use it when
// filling a pooled frame from a caller-owned buffer that will be
// reused after the frame changes hands.
func (f *Frame) SetPayload(p []byte) {
	copy(f.grow(len(p)), p)
}

// copyBufPool recycles the 32 KiB scratch buffers the ingress pipe and
// egress pumps copy tunnel bytes through, so long-lived tunnels do not
// each hold a private buffer allocation.
var copyBufPool = sync.Pool{New: func() any {
	b := make([]byte, 32*1024)
	return &b
}}

func acquireCopyBuf() *[]byte  { return copyBufPool.Get().(*[]byte) }
func releaseCopyBuf(b *[]byte) { copyBufPool.Put(b) }
