package masque

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/netip"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/relay-networks/privaterelay/internal/iputil"
)

// RotationPolicy selects the egress address used for one proxied
// connection. The paper finds the service rotates the egress address per
// connection attempt — a behaviour unique among VPN-like services (§4.3).
type RotationPolicy interface {
	// Next returns the egress address for the n-th connection.
	Next(n uint64) netip.Addr
}

// PerConnectionRotation picks a pseudo-random pool member per connection:
// consecutive picks differ with probability 1−1/len(pool), matching the
// paper's ">66 % of attempts changed" with the observed six addresses.
type PerConnectionRotation struct {
	Pool []netip.Addr
	Seed uint64
}

// Next implements RotationPolicy.
func (p *PerConnectionRotation) Next(n uint64) netip.Addr {
	if len(p.Pool) == 0 {
		return netip.Addr{}
	}
	return p.Pool[iputil.Mix(p.Seed, n)%uint64(len(p.Pool))]
}

// StickyRotation always returns the same address — the traditional
// VPN/proxy behaviour, kept as the ablation baseline.
type StickyRotation struct{ Addr netip.Addr }

// Next implements RotationPolicy.
func (s *StickyRotation) Next(uint64) netip.Addr { return s.Addr }

// SourcePreambleMagic starts the source-address preamble the egress
// writes on outbound connections. In the real Internet the target reads
// the source address from the IP header; inside one process every dial
// comes from loopback, so the preamble stands in for the header field.
const SourcePreambleMagic = "SIMSRC "

// WriteSourcePreamble prepends the simulated source address on c.
func WriteSourcePreamble(c io.Writer, src netip.Addr) error {
	_, err := fmt.Fprintf(c, "%s%s\n", SourcePreambleMagic, src)
	return err
}

// ReadSourcePreamble consumes a source preamble from br, returning the
// simulated source address. Servers that observe requester addresses
// (the scan's web server, the IP-echo service) call this on accept.
func ReadSourcePreamble(br *bufio.Reader) (netip.Addr, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return netip.Addr{}, err
	}
	line = strings.TrimSuffix(line, "\n")
	if !strings.HasPrefix(line, SourcePreambleMagic) {
		return netip.Addr{}, fmt.Errorf("masque: missing source preamble in %q", line)
	}
	return netip.ParseAddr(strings.TrimPrefix(line, SourcePreambleMagic))
}

// Egress is a Private Relay egress server: it unseals CONNECT requests,
// picks an egress address, dials targets and relays stream data. It never
// learns the client address — structurally, no frame carries it here.
type Egress struct {
	// ID is the sealing identity; clients seal CONNECTs to it. Use
	// EgressIDForAddr of the advertised address.
	ID string
	// Rotation picks egress addresses; nil uses a single zero address.
	Rotation RotationPolicy
	// Dialer opens egress→target legs; nil uses net.Dialer.
	Dialer Dialer
	// WritePreamble controls the simulated source-address preamble
	// (default true — targets in this toolkit expect it).
	DisablePreamble bool
	// Workers fixes the tunnel worker-pool size (0 means
	// defaultServeWorkers).
	Workers int

	mu     sync.Mutex
	ln     net.Listener
	nConns atomic.Uint64
	wg     sync.WaitGroup
}

// Serve accepts tunnels on ln until it is closed, handing them to a
// fixed worker pool (see Ingress.Serve).
func (eg *Egress) Serve(ln net.Listener) error {
	eg.mu.Lock()
	eg.ln = ln
	eg.mu.Unlock()
	return servePool(ln, workersPoolSize(eg.Workers), &eg.wg, eg.handle)
}

// Close stops the listener.
func (eg *Egress) Close() error {
	eg.mu.Lock()
	ln := eg.ln
	eg.mu.Unlock()
	if ln == nil {
		return nil
	}
	return ln.Close()
}

// tunnelWriter serializes frames written back into one tunnel: the
// mutex orders concurrent writers (connect handlers, per-stream pumps)
// and the encoder turns each frame into a single conn write.
type tunnelWriter struct {
	mu  sync.Mutex
	enc FrameEncoder
}

func newTunnelWriter(w io.Writer) *tunnelWriter {
	tw := &tunnelWriter{}
	tw.enc.Reset(w)
	return tw
}

func (tw *tunnelWriter) writeFrame(f *Frame) error {
	tw.mu.Lock()
	err := tw.enc.WriteFrame(f)
	tw.mu.Unlock()
	return err
}

func (eg *Egress) handle(tunnel net.Conn) {
	defer tunnel.Close()
	br := bufio.NewReader(tunnel)
	tw := newTunnelWriter(tunnel)

	sessions := newTunnelSessions()
	defer sessions.closeAll()

	fr := NewFrameReader(br)
	f := AcquireFrame()
	defer ReleaseFrame(f)
	for {
		if err := fr.ReadInto(f); err != nil {
			return
		}
		switch f.Type {
		case FrameConnect:
			eg.handleConnect(f, tw, sessions)
		case FrameConnectUDP:
			eg.handleConnectUDP(f, tw, sessions)
		case FrameData:
			if target := sessions.stream(f.StreamID); target != nil {
				if _, err := target.Write(f.Payload); err != nil {
					target.Close()
				}
			}
		case FrameDatagram:
			if a := sessions.assoc(f.StreamID); a != nil {
				src := a.src
				if eg.DisablePreamble {
					src = netip.Addr{}
				}
				sendAssocDatagram(a, src, f.Payload)
			}
		case FrameClose:
			sessions.close(f.StreamID)
		default:
			// Unknown frames are ignored (forward compatibility).
		}
	}
}

func (eg *Egress) handleConnect(f *Frame, tw *tunnelWriter, sessions *tunnelSessions) {
	fail := func(msg string) {
		_ = tw.writeFrame(&Frame{Type: FrameConnectEr, StreamID: f.StreamID, Payload: []byte(msg)})
	}
	plain, err := Unseal(eg.ID, f.Payload)
	if err != nil {
		fail("unseal failed")
		return
	}
	target, geohash, ok := parseConnect(plain)
	if !ok {
		fail("malformed connect")
		return
	}
	_ = geohash // carried for region-preserving placement; see relay pkg

	n := eg.nConns.Add(1) - 1

	var src netip.Addr
	if eg.Rotation != nil {
		src = eg.Rotation.Next(n)
	}

	d := eg.Dialer
	if d == nil {
		d = &net.Dialer{}
	}
	conn, err := d.Dial("tcp", target)
	if err != nil {
		fail("dial failed")
		return
	}
	if !eg.DisablePreamble && src.IsValid() {
		if err := WriteSourcePreamble(conn, src); err != nil {
			conn.Close()
			fail("preamble failed")
			return
		}
	}

	sessions.putStream(f.StreamID, conn)

	if err := tw.writeFrame(&Frame{Type: FrameConnectOK, StreamID: f.StreamID, Payload: []byte(src.String())}); err != nil {
		conn.Close()
		return
	}

	// Pump target → tunnel through a pooled copy buffer. The pump joins
	// the egress WaitGroup so Serve drains it on shutdown; it exits when
	// either leg dies (tunnel teardown closes the target via closeAll,
	// failing the Read).
	eg.wg.Add(1)
	go func(id uint32, c net.Conn) {
		defer eg.wg.Done()
		bp := acquireCopyBuf()
		defer releaseCopyBuf(bp)
		buf := *bp
		for {
			n, err := c.Read(buf)
			if n > 0 {
				if werr := tw.writeFrame(&Frame{Type: FrameData, StreamID: id, Payload: buf[:n]}); werr != nil {
					c.Close()
					return
				}
			}
			if err != nil {
				_ = tw.writeFrame(&Frame{Type: FrameClose, StreamID: id})
				return
			}
		}
	}(f.StreamID, conn)
}

// ConnectPayload encodes the plaintext CONNECT body: target address and
// the client's coarse geohash (empty when the user disabled
// maintain-general-location).
func ConnectPayload(target, geohash string) []byte {
	return []byte(target + "\n" + geohash)
}

func parseConnect(plain []byte) (target, geohash string, ok bool) {
	parts := strings.SplitN(string(plain), "\n", 2)
	if len(parts) != 2 || parts[0] == "" {
		return "", "", false
	}
	return parts[0], parts[1], true
}
