package masque

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"
	"time"
)

// Client is a Private Relay client: one tunnel through an ingress to an
// egress, multiplexing any number of proxied streams (the real service
// combines multiple connections within a single proxy connection, §2).
type Client struct {
	// IngressAddr and EgressAddr are "host:port" endpoints.
	IngressAddr string
	EgressAddr  string
	// Token authenticates at the ingress.
	Token string
	// Geohash is the coarse client location forwarded to the egress when
	// the user keeps region-preserving mode on (may be empty).
	Geohash string
	// Dialer opens the client→ingress leg; nil uses net.Dialer.
	Dialer Dialer

	mu      sync.Mutex
	conn    net.Conn
	nextID  uint32
	demux   *demuxTable
	readErr error
	closed  bool

	// wmu orders tunnel writes; enc turns each frame (or Write batch)
	// into a single conn write, so concurrent streams can never
	// interleave partial frames. When both are needed, mu is taken and
	// released before wmu — never nested the other way.
	//
	//lint:lockorder Client.mu < Client.wmu
	wmu sync.Mutex
	enc FrameEncoder

	reservation    ReservationInfo
	hasReservation bool
}

// Client errors.
var (
	ErrAuthRejected  = errors.New("masque: ingress rejected authentication")
	ErrTunnelClosed  = errors.New("masque: tunnel closed")
	ErrConnectFailed = errors.New("masque: egress could not reach target")
)

// Dial establishes the tunnel: TCP to the ingress, AUTH, then AUTH_OK —
// or, against a reservation-gated ingress, RESERVE_OK carrying the
// granted limits, or a typed REJECT surfaced as *RejectionError.
func (c *Client) Dial() error {
	d := c.Dialer
	if d == nil {
		d = &net.Dialer{}
	}
	conn, err := d.Dial("tcp", c.IngressAddr)
	if err != nil {
		return fmt.Errorf("masque: dial ingress: %w", err)
	}
	if err := WriteFrame(conn, &Frame{
		Type:    FrameAuth,
		Payload: AuthPayload(c.Token, c.EgressAddr),
	}); err != nil {
		conn.Close()
		return err
	}
	br := bufio.NewReader(conn)
	f, err := ReadFrame(br)
	if err != nil {
		conn.Close()
		return fmt.Errorf("masque: waiting for auth reply: %w", err)
	}
	var info ReservationInfo
	var hasInfo bool
	switch f.Type {
	case FrameAuthOK:
	case FrameReserveOK:
		if info, err = ParseReservationInfo(f.Payload); err != nil {
			conn.Close()
			return err
		}
		hasInfo = true
	case FrameReject:
		conn.Close()
		code, msg, perr := ParseReject(f.Payload)
		if perr != nil {
			return fmt.Errorf("%w: unreadable rejection", ErrAuthRejected)
		}
		return &RejectionError{Code: code, Msg: msg}
	default:
		conn.Close()
		return fmt.Errorf("%w: %s", ErrAuthRejected, f.Payload)
	}
	demux := newDemuxTable()
	c.mu.Lock()
	c.conn = conn
	c.nextID = 1
	c.demux = demux
	c.reservation = info
	c.hasReservation = hasInfo
	c.mu.Unlock()
	c.wmu.Lock()
	c.enc.Reset(conn)
	c.wmu.Unlock()
	// The demux loop's lifetime is the tunnel's: run exits when ReadInto
	// fails, which Close forces by closing the conn. Joining it to a
	// WaitGroup would make Close block on the reader observing EOF for
	// no caller-visible benefit.
	go c.run(br, demux) //lint:allow goroleak — terminates when Close tears down the conn and ReadInto fails
	return nil
}

// Reservation returns the limits the ingress granted at Dial time, and
// whether the tunnel is reservation-gated at all.
func (c *Client) Reservation() (ReservationInfo, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reservation, c.hasReservation
}

// Close tears the tunnel down; all streams fail with ErrTunnelClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conn := c.conn
	c.mu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}

// run is the demux loop: it routes incoming frames to their streams
// through the sharded demux table.
func (c *Client) run(br *bufio.Reader, demux *demuxTable) {
	fr := NewFrameReader(br)
	f := AcquireFrame()
	defer ReleaseFrame(f)
	for {
		if err := fr.ReadInto(f); err != nil {
			c.mu.Lock()
			c.readErr = err
			c.mu.Unlock()
			demux.failAll(ErrTunnelClosed)
			return
		}
		e := demux.lookup(f.StreamID)
		switch {
		case e.s != nil:
			s := e.s
			switch f.Type {
			case FrameConnectOK:
				addr, _ := netip.ParseAddr(string(f.Payload))
				s.setupDone(addr, nil)
			case FrameConnectEr:
				s.setupDone(netip.Addr{}, fmt.Errorf("%w: %s", ErrConnectFailed, f.Payload))
			case FrameData:
				s.deliver(f.Payload)
			case FrameClose:
				s.closeRead()
			default:
				// Unknown frame types on a stream are dropped.
			}
		case e.u != nil:
			u := e.u
			switch f.Type {
			case FrameConnectOK:
				addr, _ := netip.ParseAddr(string(f.Payload))
				u.setupDone(addr, nil)
			case FrameConnectEr:
				u.setupDone(netip.Addr{}, fmt.Errorf("%w: %s", ErrConnectFailed, f.Payload))
			case FrameDatagram:
				u.deliver(f.Payload)
			case FrameClose:
				u.closeInbox()
			default:
				// Unknown frame types on a UDP flow are dropped.
			}
		}
	}
}

// writeFrame serializes one frame into the tunnel as a single write.
func (c *Client) writeFrame(f *Frame) error {
	c.mu.Lock()
	conn := c.conn
	closed := c.closed
	c.mu.Unlock()
	if closed || conn == nil {
		return ErrTunnelClosed
	}
	c.wmu.Lock()
	err := c.enc.WriteFrame(f)
	c.wmu.Unlock()
	return err
}

// writeData chunks p into DATA frames for stream id and flushes the
// whole batch in one conn write.
func (c *Client) writeData(id uint32, p []byte) (int, error) {
	c.mu.Lock()
	conn := c.conn
	closed := c.closed
	c.mu.Unlock()
	if closed || conn == nil {
		return 0, ErrTunnelClosed
	}
	const chunk = 16 * 1024
	c.wmu.Lock()
	defer c.wmu.Unlock()
	written := 0
	f := Frame{Type: FrameData, StreamID: id}
	for len(p) > 0 {
		n := len(p)
		if n > chunk {
			n = chunk
		}
		f.Payload = p[:n]
		if err := c.enc.Append(&f); err != nil {
			return written, err
		}
		written += n
		p = p[n:]
	}
	return written, c.enc.Flush()
}

// Open proxies a new connection to target ("host:port") through the
// tunnel and returns the stream plus the egress address the relay chose
// for it.
func (c *Client) Open(target string) (*Stream, netip.Addr, error) {
	c.mu.Lock()
	if c.closed || c.conn == nil {
		c.mu.Unlock()
		return nil, netip.Addr{}, ErrTunnelClosed
	}
	id := c.nextID
	c.nextID++
	s := &Stream{
		client: c,
		id:     id,
		setup:  make(chan struct{}),
		data:   make(chan []byte, 64),
	}
	demux := c.demux
	c.mu.Unlock()
	demux.putStream(id, s)

	sealed := Seal(EgressIDForAddr(c.EgressAddr), ConnectPayload(target, c.Geohash))
	if err := c.writeFrame(&Frame{Type: FrameConnect, StreamID: id, Payload: sealed}); err != nil {
		c.dropStream(id)
		return nil, netip.Addr{}, err
	}
	<-s.setup
	if s.setupErr != nil {
		c.dropStream(id)
		return nil, netip.Addr{}, s.setupErr
	}
	return s, s.egressAddr, nil
}

func (c *Client) dropStream(id uint32) {
	c.mu.Lock()
	demux := c.demux
	c.mu.Unlock()
	if demux != nil {
		demux.drop(id)
	}
}

// Stream is one proxied connection. It implements io.ReadWriteCloser.
type Stream struct {
	client *Client
	id     uint32

	setup      chan struct{}
	setupOnce  sync.Once
	setupErr   error
	egressAddr netip.Addr

	mu      sync.Mutex
	data    chan []byte
	pending []byte
	rclosed bool
	failErr error
}

// EgressAddr returns the egress address the relay selected for this stream.
func (s *Stream) EgressAddr() netip.Addr { return s.egressAddr }

func (s *Stream) setupDone(addr netip.Addr, err error) {
	s.setupOnce.Do(func() {
		s.egressAddr = addr
		s.setupErr = err
		close(s.setup)
	})
}

func (s *Stream) deliver(p []byte) {
	buf := append([]byte(nil), p...)
	for {
		s.mu.Lock()
		if s.rclosed {
			s.mu.Unlock()
			return
		}
		select {
		case s.data <- buf:
			s.mu.Unlock()
			return
		default:
		}
		s.mu.Unlock()
		// Buffer full: apply backpressure to the demux loop without
		// racing against a concurrent close of the channel.
		time.Sleep(time.Millisecond) //lint:allow determinism — scheduling backpressure nap; no dataset-visible time derives from it
	}
}

func (s *Stream) closeRead() {
	s.mu.Lock()
	if !s.rclosed {
		s.rclosed = true
		close(s.data)
	}
	s.mu.Unlock()
}

func (s *Stream) fail(err error) {
	s.setupDone(netip.Addr{}, err)
	s.mu.Lock()
	if !s.rclosed {
		s.rclosed = true
		s.failErr = err
		close(s.data)
	}
	s.mu.Unlock()
}

// Read implements io.Reader.
func (s *Stream) Read(p []byte) (int, error) {
	if len(s.pending) > 0 {
		n := copy(p, s.pending)
		s.pending = s.pending[n:]
		return n, nil
	}
	buf, ok := <-s.data
	if !ok {
		s.mu.Lock()
		err := s.failErr
		s.mu.Unlock()
		if err != nil {
			return 0, err
		}
		return 0, io.EOF
	}
	n := copy(p, buf)
	if n < len(buf) {
		s.pending = buf[n:]
	}
	return n, nil
}

// Write implements io.Writer; large writes are chunked into frames and
// flushed to the tunnel as one batch.
func (s *Stream) Write(p []byte) (int, error) {
	return s.client.writeData(s.id, p)
}

// Close sends a CLOSE for the stream and releases client state.
func (s *Stream) Close() error {
	err := s.client.writeFrame(&Frame{Type: FrameClose, StreamID: s.id})
	s.client.dropStream(s.id)
	s.closeRead()
	if errors.Is(err, ErrTunnelClosed) {
		return nil
	}
	return err
}
