package masque

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"
	"time"
)

// Client is a Private Relay client: one tunnel through an ingress to an
// egress, multiplexing any number of proxied streams (the real service
// combines multiple connections within a single proxy connection, §2).
type Client struct {
	// IngressAddr and EgressAddr are "host:port" endpoints.
	IngressAddr string
	EgressAddr  string
	// Token authenticates at the ingress.
	Token string
	// Geohash is the coarse client location forwarded to the egress when
	// the user keeps region-preserving mode on (may be empty).
	Geohash string
	// Dialer opens the client→ingress leg; nil uses net.Dialer.
	Dialer Dialer

	mu       sync.Mutex
	conn     net.Conn
	nextID   uint32
	streams  map[uint32]*Stream
	udpFlows map[uint32]*UDPFlow
	readErr  error
	closed   bool
}

// Client errors.
var (
	ErrAuthRejected  = errors.New("masque: ingress rejected authentication")
	ErrTunnelClosed  = errors.New("masque: tunnel closed")
	ErrConnectFailed = errors.New("masque: egress could not reach target")
)

// Dial establishes the tunnel: TCP to the ingress, AUTH, AUTH_OK.
func (c *Client) Dial() error {
	d := c.Dialer
	if d == nil {
		d = &net.Dialer{}
	}
	conn, err := d.Dial("tcp", c.IngressAddr)
	if err != nil {
		return fmt.Errorf("masque: dial ingress: %w", err)
	}
	if err := WriteFrame(conn, &Frame{
		Type:    FrameAuth,
		Payload: AuthPayload(c.Token, c.EgressAddr),
	}); err != nil {
		conn.Close()
		return err
	}
	br := bufio.NewReader(conn)
	f, err := ReadFrame(br)
	if err != nil {
		conn.Close()
		return fmt.Errorf("masque: waiting for auth reply: %w", err)
	}
	if f.Type != FrameAuthOK {
		conn.Close()
		return fmt.Errorf("%w: %s", ErrAuthRejected, f.Payload)
	}
	c.mu.Lock()
	c.conn = conn
	c.nextID = 1
	c.streams = make(map[uint32]*Stream)
	c.udpFlows = make(map[uint32]*UDPFlow)
	c.mu.Unlock()
	go c.demux(br)
	return nil
}

// Close tears the tunnel down; all streams fail with ErrTunnelClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conn := c.conn
	c.mu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}

// demux routes incoming frames to their streams.
func (c *Client) demux(br *bufio.Reader) {
	for {
		f, err := ReadFrame(br)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			streams := c.streams
			flows := c.udpFlows
			c.streams = map[uint32]*Stream{}
			c.udpFlows = map[uint32]*UDPFlow{}
			c.mu.Unlock()
			for _, s := range streams {
				s.fail(ErrTunnelClosed)
			}
			for _, u := range flows {
				u.setupDone(netip.Addr{}, ErrTunnelClosed)
				u.closeInbox()
			}
			return
		}
		c.mu.Lock()
		s := c.streams[f.StreamID]
		u := c.udpFlows[f.StreamID]
		c.mu.Unlock()
		switch {
		case s != nil:
			switch f.Type {
			case FrameConnectOK:
				addr, _ := netip.ParseAddr(string(f.Payload))
				s.setupDone(addr, nil)
			case FrameConnectEr:
				s.setupDone(netip.Addr{}, fmt.Errorf("%w: %s", ErrConnectFailed, f.Payload))
			case FrameData:
				s.deliver(f.Payload)
			case FrameClose:
				s.closeRead()
			default:
				// Unknown frame types on a stream are dropped.
			}
		case u != nil:
			switch f.Type {
			case FrameConnectOK:
				addr, _ := netip.ParseAddr(string(f.Payload))
				u.setupDone(addr, nil)
			case FrameConnectEr:
				u.setupDone(netip.Addr{}, fmt.Errorf("%w: %s", ErrConnectFailed, f.Payload))
			case FrameDatagram:
				u.deliver(f.Payload)
			case FrameClose:
				u.closeInbox()
			default:
				// Unknown frame types on a UDP flow are dropped.
			}
		}
	}
}

// writeFrame serializes one frame into the tunnel.
func (c *Client) writeFrame(f *Frame) error {
	c.mu.Lock()
	conn := c.conn
	closed := c.closed
	c.mu.Unlock()
	if closed || conn == nil {
		return ErrTunnelClosed
	}
	return WriteFrame(conn, f)
}

// Open proxies a new connection to target ("host:port") through the
// tunnel and returns the stream plus the egress address the relay chose
// for it.
func (c *Client) Open(target string) (*Stream, netip.Addr, error) {
	c.mu.Lock()
	if c.closed || c.conn == nil {
		c.mu.Unlock()
		return nil, netip.Addr{}, ErrTunnelClosed
	}
	id := c.nextID
	c.nextID++
	s := &Stream{
		client: c,
		id:     id,
		setup:  make(chan struct{}),
		data:   make(chan []byte, 64),
	}
	c.streams[id] = s
	c.mu.Unlock()

	sealed := Seal(EgressIDForAddr(c.EgressAddr), ConnectPayload(target, c.Geohash))
	if err := c.writeFrame(&Frame{Type: FrameConnect, StreamID: id, Payload: sealed}); err != nil {
		c.dropStream(id)
		return nil, netip.Addr{}, err
	}
	<-s.setup
	if s.setupErr != nil {
		c.dropStream(id)
		return nil, netip.Addr{}, s.setupErr
	}
	return s, s.egressAddr, nil
}

func (c *Client) dropStream(id uint32) {
	c.mu.Lock()
	delete(c.streams, id)
	c.mu.Unlock()
}

// Stream is one proxied connection. It implements io.ReadWriteCloser.
type Stream struct {
	client *Client
	id     uint32

	setup      chan struct{}
	setupOnce  sync.Once
	setupErr   error
	egressAddr netip.Addr

	mu      sync.Mutex
	data    chan []byte
	pending []byte
	rclosed bool
	failErr error
}

// EgressAddr returns the egress address the relay selected for this stream.
func (s *Stream) EgressAddr() netip.Addr { return s.egressAddr }

func (s *Stream) setupDone(addr netip.Addr, err error) {
	s.setupOnce.Do(func() {
		s.egressAddr = addr
		s.setupErr = err
		close(s.setup)
	})
}

func (s *Stream) deliver(p []byte) {
	buf := append([]byte(nil), p...)
	for {
		s.mu.Lock()
		if s.rclosed {
			s.mu.Unlock()
			return
		}
		select {
		case s.data <- buf:
			s.mu.Unlock()
			return
		default:
		}
		s.mu.Unlock()
		// Buffer full: apply backpressure to the demux loop without
		// racing against a concurrent close of the channel.
		time.Sleep(time.Millisecond)
	}
}

func (s *Stream) closeRead() {
	s.mu.Lock()
	if !s.rclosed {
		s.rclosed = true
		close(s.data)
	}
	s.mu.Unlock()
}

func (s *Stream) fail(err error) {
	s.setupDone(netip.Addr{}, err)
	s.mu.Lock()
	if !s.rclosed {
		s.rclosed = true
		s.failErr = err
		close(s.data)
	}
	s.mu.Unlock()
}

// Read implements io.Reader.
func (s *Stream) Read(p []byte) (int, error) {
	if len(s.pending) > 0 {
		n := copy(p, s.pending)
		s.pending = s.pending[n:]
		return n, nil
	}
	buf, ok := <-s.data
	if !ok {
		s.mu.Lock()
		err := s.failErr
		s.mu.Unlock()
		if err != nil {
			return 0, err
		}
		return 0, io.EOF
	}
	n := copy(p, buf)
	if n < len(buf) {
		s.pending = buf[n:]
	}
	return n, nil
}

// Write implements io.Writer.
func (s *Stream) Write(p []byte) (int, error) {
	const chunk = 16 * 1024
	written := 0
	for len(p) > 0 {
		n := len(p)
		if n > chunk {
			n = chunk
		}
		if err := s.client.writeFrame(&Frame{Type: FrameData, StreamID: s.id, Payload: p[:n]}); err != nil {
			return written, err
		}
		written += n
		p = p[n:]
	}
	return written, nil
}

// Close sends a CLOSE for the stream and releases client state.
func (s *Stream) Close() error {
	err := s.client.writeFrame(&Frame{Type: FrameClose, StreamID: s.id})
	s.client.dropStream(s.id)
	s.closeRead()
	if errors.Is(err, ErrTunnelClosed) {
		return nil
	}
	return err
}
