package masque

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/relay-networks/privaterelay/internal/vclock"
)

// Dialer abstracts outbound connections so deployments can interpose
// simulated networks; the zero value of net.Dialer satisfies it via Dial.
type Dialer interface {
	Dial(network, address string) (net.Conn, error)
}

// TokenValidator validates client access tokens (implemented by
// TokenIssuer).
type TokenValidator interface {
	Validate(token string) error
}

// ConnRecord is one tunnel observed at the ingress: everything this hop
// can see. Note the absence of any target information — the ingress pipes
// sealed bytes it cannot parse.
type ConnRecord struct {
	ClientAddr string
	EgressAddr string
	Start      time.Time
}

// defaultServeWorkers sizes the accept worker pools when unset. Each
// live tunnel occupies one worker for its lifetime; connections beyond
// the pool wait in the listener backlog.
const defaultServeWorkers = 256

// Ingress is a Private Relay ingress server: it authenticates clients,
// connects them to their chosen egress and then blindly relays bytes.
type Ingress struct {
	// Validator checks AUTH tokens; nil accepts everything (open relay,
	// used only in focused tests).
	Validator TokenValidator
	// Dialer opens the ingress→egress leg; nil uses net.Dialer.
	Dialer Dialer
	// AllowedEgress optionally restricts which egress addresses clients
	// may request; nil allows any.
	AllowedEgress map[string]bool
	// Clock stamps ConnRecord.Start and paces reservation bandwidth;
	// nil uses the wall clock. Injecting a VirtualClock makes the
	// connection log and pacing reproducible in tests.
	Clock vclock.Clock
	// Reservations, when set, gates admission per account: AUTH answers
	// become FrameReserveOK/FrameReject, tunnel bytes are charged
	// against the account's data cap and paced by its bandwidth bucket.
	Reservations *Reservations
	// Workers fixes the tunnel worker-pool size (0 means
	// defaultServeWorkers). The ingress serves at most Workers
	// concurrent tunnels; excess connections queue in the backlog.
	Workers int

	mu      sync.Mutex
	ln      net.Listener
	records []ConnRecord
	wg      sync.WaitGroup
	rejects [rejectCodeCount]atomic.Int64
}

// Serve accepts on ln until ln is closed, handing tunnels to a fixed
// worker pool (goroutine-per-connection does not survive the session
// counts the serving plane targets). It returns the first accept error
// (net.ErrClosed after Close).
func (ing *Ingress) Serve(ln net.Listener) error {
	ing.mu.Lock()
	ing.ln = ln
	ing.mu.Unlock()
	return servePool(ln, workersPoolSize(ing.Workers), &ing.wg, ing.handle)
}

// servePool is the shared accept loop: a fixed pool of workers drains
// an unbuffered connection channel, so the listener backlog — not a
// goroutine explosion — absorbs bursts past the pool size.
func servePool(ln net.Listener, workers int, wg *sync.WaitGroup, handle func(net.Conn)) error {
	conns := make(chan net.Conn)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range conns {
				handle(c)
			}
		}()
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			close(conns)
			wg.Wait()
			return err
		}
		conns <- conn
	}
}

func workersPoolSize(n int) int {
	if n > 0 {
		return n
	}
	return defaultServeWorkers
}

// Close stops the listener; in-flight tunnels finish on their own.
func (ing *Ingress) Close() error {
	ing.mu.Lock()
	ln := ing.ln
	ing.mu.Unlock()
	if ln == nil {
		return nil
	}
	return ln.Close()
}

// Records returns a copy of the connection log.
func (ing *Ingress) Records() []ConnRecord {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return append([]ConnRecord(nil), ing.records...)
}

// RejectCounts returns how many reservation rejections the ingress has
// issued, by code (admissions denied and tunnels cut mid-flight).
func (ing *Ingress) RejectCounts() map[RejectCode]int64 {
	out := make(map[RejectCode]int64)
	for c := 0; c < rejectCodeCount; c++ {
		if n := ing.rejects[c].Load(); n > 0 {
			out[RejectCode(c)] = n
		}
	}
	return out
}

func (ing *Ingress) countReject(code RejectCode) {
	if int(code) < rejectCodeCount {
		ing.rejects[code].Add(1)
	}
}

// handle runs one client tunnel.
func (ing *Ingress) handle(client net.Conn) {
	defer client.Close()
	br := bufio.NewReader(client)

	f, err := ReadFrame(br)
	if err != nil || f.Type != FrameAuth {
		return
	}
	token, egressAddr, ok := parseAuth(f.Payload)
	if !ok {
		_ = WriteFrame(client, &Frame{Type: FrameAuthErr, Payload: []byte("malformed auth")})
		return
	}
	if ing.Validator != nil {
		if err := ing.Validator.Validate(token); err != nil {
			_ = WriteFrame(client, &Frame{Type: FrameAuthErr, Payload: []byte(err.Error())})
			return
		}
	}
	if ing.AllowedEgress != nil && !ing.AllowedEgress[egressAddr] {
		_ = WriteFrame(client, &Frame{Type: FrameAuthErr, Payload: []byte("egress not allowed")})
		return
	}

	// Reservation admission: the validated token names the account; the
	// registry answers with a session grant or a typed rejection.
	var res *Reservation
	if rs := ing.Reservations; rs != nil {
		account, err := TokenAccount(token)
		if err != nil {
			ing.countReject(RejectMalformed)
			_ = WriteFrame(client, &Frame{Type: FrameReject, Payload: AppendReject(nil, RejectMalformed, "unreadable account")})
			return
		}
		r, code := rs.Admit(account)
		if code != RejectNone {
			ing.countReject(code)
			_ = WriteFrame(client, &Frame{Type: FrameReject, Payload: AppendReject(nil, code, "")})
			return
		}
		res = r
		defer rs.EndSession(res)
	}

	d := ing.Dialer
	if d == nil {
		d = &net.Dialer{}
	}
	egress, err := d.Dial("tcp", egressAddr)
	if err != nil {
		_ = WriteFrame(client, &Frame{Type: FrameAuthErr, Payload: []byte("egress unreachable")})
		return
	}
	defer egress.Close()

	ing.mu.Lock()
	ing.records = append(ing.records, ConnRecord{
		ClientAddr: client.RemoteAddr().String(),
		EgressAddr: egressAddr,
		Start:      ing.now(),
	})
	ing.mu.Unlock()

	if res != nil {
		info := res.Info()
		if err := WriteFrame(client, &Frame{Type: FrameReserveOK, Payload: AppendReservationInfo(nil, &info)}); err != nil {
			return
		}
	} else if err := WriteFrame(client, &Frame{Type: FrameAuthOK}); err != nil {
		return
	}

	// From here on the ingress is a dumb pipe: it can count bytes and see
	// timing — and charge them to the reservation — but every CONNECT it
	// forwards is sealed for the egress. The reverse leg runs in one
	// helper goroutine (bounded by the worker pool, not the conn count).
	done := make(chan RejectCode, 1)
	go func() {
		code := ing.pipe(client, egress, res)
		_ = closeWrite(client)
		done <- code
	}()
	code := ing.pipe(egress, br, res)
	_ = closeWrite(egress)
	if code == RejectNone {
		code = <-done
	} else {
		// A reservation violation cuts the whole tunnel, not one leg.
		client.Close()
		egress.Close()
		<-done
	}
	if code != RejectNone {
		ing.countReject(code)
	}
}

// pipe copies src→dst through a pooled buffer, charging each chunk to
// the reservation. Data-cap exhaustion returns RejectDataCap and stops
// the tunnel; bandwidth overruns pace (sleep on the ingress clock until
// the bucket conforms) rather than cut, like any traffic shaper.
func (ing *Ingress) pipe(dst io.Writer, src io.Reader, res *Reservation) RejectCode {
	bp := acquireCopyBuf()
	defer releaseCopyBuf(bp)
	buf := *bp
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if res != nil {
				if code := ing.charge(res, int64(n)); code != RejectNone {
					return code
				}
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return RejectNone
			}
		}
		if err != nil {
			return RejectNone
		}
	}
}

// charge debits n bytes from the reservation: hard data cap first,
// then bandwidth pacing.
func (ing *Ingress) charge(res *Reservation, n int64) RejectCode {
	rs := ing.Reservations
	if res.expiry != 0 && res.expired(rs.NowNS()) {
		return RejectExpired
	}
	if code := res.DebitData(n); code != RejectNone {
		return code
	}
	if res.limits.BandwidthBps > 0 {
		clock := ing.clock()
		for res.AllowBandwidth(n, rs.NowNS()) != RejectNone {
			// Sleep one chunk's transmission time, then re-ask the bucket.
			wait := time.Duration(n * int64(time.Second) / res.limits.BandwidthBps)
			if wait <= 0 {
				wait = time.Millisecond
			}
			if err := clock.Sleep(context.Background(), wait); err != nil {
				return RejectBandwidth
			}
		}
	}
	return RejectNone
}

// closeWrite half-closes a TCP connection when supported.
func closeWrite(c net.Conn) error {
	if tc, ok := c.(*net.TCPConn); ok {
		return tc.CloseWrite()
	}
	return nil
}

// AuthPayload encodes an AUTH frame body.
func AuthPayload(token, egressAddr string) []byte {
	return []byte(token + "\n" + egressAddr)
}

func parseAuth(payload []byte) (token, egressAddr string, ok bool) {
	parts := strings.SplitN(string(payload), "\n", 2)
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return "", "", false
	}
	return parts[0], parts[1], true
}

// String renders a record for logs.
func (r ConnRecord) String() string {
	return fmt.Sprintf("client=%s egress=%s", r.ClientAddr, r.EgressAddr)
}

// clock returns the ingress clock (wall clock when unset).
func (ing *Ingress) clock() vclock.Clock {
	if ing.Clock != nil {
		return ing.Clock
	}
	return vclock.WallClock{}
}

// now returns the ingress clock's current time.
func (ing *Ingress) now() time.Time { return ing.clock().Now() }
