package masque

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"github.com/relay-networks/privaterelay/internal/vclock"
)

// Dialer abstracts outbound connections so deployments can interpose
// simulated networks; the zero value of net.Dialer satisfies it via Dial.
type Dialer interface {
	Dial(network, address string) (net.Conn, error)
}

// TokenValidator validates client access tokens (implemented by
// TokenIssuer).
type TokenValidator interface {
	Validate(token string) error
}

// ConnRecord is one tunnel observed at the ingress: everything this hop
// can see. Note the absence of any target information — the ingress pipes
// sealed bytes it cannot parse.
type ConnRecord struct {
	ClientAddr string
	EgressAddr string
	Start      time.Time
}

// Ingress is a Private Relay ingress server: it authenticates clients,
// connects them to their chosen egress and then blindly relays bytes.
type Ingress struct {
	// Validator checks AUTH tokens; nil accepts everything (open relay,
	// used only in focused tests).
	Validator TokenValidator
	// Dialer opens the ingress→egress leg; nil uses net.Dialer.
	Dialer Dialer
	// AllowedEgress optionally restricts which egress addresses clients
	// may request; nil allows any.
	AllowedEgress map[string]bool
	// Clock stamps ConnRecord.Start; nil uses the wall clock. Injecting
	// a VirtualClock makes the connection log reproducible in tests.
	Clock vclock.Clock

	mu      sync.Mutex
	ln      net.Listener
	records []ConnRecord
	wg      sync.WaitGroup
}

// Serve starts accepting on ln until ln is closed. It returns the
// first accept error (net.ErrClosed after Close).
func (ing *Ingress) Serve(ln net.Listener) error {
	ing.mu.Lock()
	ing.ln = ln
	ing.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			ing.wg.Wait()
			return err
		}
		ing.wg.Add(1)
		go func() {
			defer ing.wg.Done()
			ing.handle(conn)
		}()
	}
}

// Close stops the listener; in-flight tunnels finish on their own.
func (ing *Ingress) Close() error {
	ing.mu.Lock()
	ln := ing.ln
	ing.mu.Unlock()
	if ln == nil {
		return nil
	}
	return ln.Close()
}

// Records returns a copy of the connection log.
func (ing *Ingress) Records() []ConnRecord {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return append([]ConnRecord(nil), ing.records...)
}

// handle runs one client tunnel.
func (ing *Ingress) handle(client net.Conn) {
	defer client.Close()
	br := bufio.NewReader(client)

	f, err := ReadFrame(br)
	if err != nil || f.Type != FrameAuth {
		return
	}
	token, egressAddr, ok := parseAuth(f.Payload)
	if !ok {
		_ = WriteFrame(client, &Frame{Type: FrameAuthErr, Payload: []byte("malformed auth")})
		return
	}
	if ing.Validator != nil {
		if err := ing.Validator.Validate(token); err != nil {
			_ = WriteFrame(client, &Frame{Type: FrameAuthErr, Payload: []byte(err.Error())})
			return
		}
	}
	if ing.AllowedEgress != nil && !ing.AllowedEgress[egressAddr] {
		_ = WriteFrame(client, &Frame{Type: FrameAuthErr, Payload: []byte("egress not allowed")})
		return
	}

	d := ing.Dialer
	if d == nil {
		d = &net.Dialer{}
	}
	egress, err := d.Dial("tcp", egressAddr)
	if err != nil {
		_ = WriteFrame(client, &Frame{Type: FrameAuthErr, Payload: []byte("egress unreachable")})
		return
	}
	defer egress.Close()

	ing.mu.Lock()
	ing.records = append(ing.records, ConnRecord{
		ClientAddr: client.RemoteAddr().String(),
		EgressAddr: egressAddr,
		Start:      ing.now(),
	})
	ing.mu.Unlock()

	if err := WriteFrame(client, &Frame{Type: FrameAuthOK}); err != nil {
		return
	}

	// From here on the ingress is a dumb pipe: it can count bytes and see
	// timing, but every CONNECT it forwards is sealed for the egress.
	done := make(chan struct{}, 2)
	go func() {
		_, _ = io.Copy(egress, br)
		_ = closeWrite(egress)
		done <- struct{}{}
	}()
	go func() {
		_, _ = io.Copy(client, egress)
		_ = closeWrite(client)
		done <- struct{}{}
	}()
	<-done
	<-done
}

// closeWrite half-closes a TCP connection when supported.
func closeWrite(c net.Conn) error {
	if tc, ok := c.(*net.TCPConn); ok {
		return tc.CloseWrite()
	}
	return nil
}

// AuthPayload encodes an AUTH frame body.
func AuthPayload(token, egressAddr string) []byte {
	return []byte(token + "\n" + egressAddr)
}

func parseAuth(payload []byte) (token, egressAddr string, ok bool) {
	parts := strings.SplitN(string(payload), "\n", 2)
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return "", "", false
	}
	return parts[0], parts[1], true
}

// String renders a record for logs.
func (r ConnRecord) String() string {
	return fmt.Sprintf("client=%s egress=%s", r.ClientAddr, r.EgressAddr)
}

// now returns the ingress clock's current time (wall clock when unset).
func (ing *Ingress) now() time.Time {
	if ing.Clock != nil {
		return ing.Clock.Now()
	}
	return vclock.WallClock{}.Now()
}
