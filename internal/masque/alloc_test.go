//go:build !race

// Allocation-regression pins for the relay serving plane. These run
// without the race detector (its instrumentation makes AllocsPerRun
// report noise); `make alloc` gives them their own non-race invocation.
package masque

import (
	"bytes"
	"io"
	"testing"
	"time"

	"github.com/relay-networks/privaterelay/internal/vclock"
)

// TestPlaneRelayZeroAlloc pins the steady-state frame path at zero
// allocations per relayed frame, with the full reservation machinery
// engaged: expiry check, data-cap debit, GCRA bandwidth conformance
// and egress delivery.
func TestPlaneRelayZeroAlloc(t *testing.T) {
	rs := NewReservations(Limits{
		Duration:     time.Hour,
		DataCap:      1 << 40,
		BandwidthBps: 1 << 40,
		MaxSessions:  4,
	}, vclock.NewVirtualClock())
	var delivered int64
	p := NewPlane(PlaneConfig{
		Shards:         8,
		IngressWorkers: 1,
		EgressWorkers:  1,
		Reservations:   rs,
		Deliver: func(s *PlaneSession, f *Frame) {
			delivered += int64(len(f.Payload))
		},
	})
	defer p.Shutdown()

	s, code := p.Open("alloc-acct")
	if code != RejectNone {
		t.Fatalf("Open: %v", code)
	}
	defer p.Close(s)

	f := AcquireFrame()
	defer ReleaseFrame(f)
	f.Type = FrameData
	f.StreamID = s.ID()
	f.SetPayload(bytes.Repeat([]byte{0x5a}, 512))

	// One warm-up relay caches the session on the frame.
	if code := p.Relay(f); code != RejectNone {
		t.Fatalf("warm-up Relay: %v", code)
	}
	bad := RejectNone
	allocs := testing.AllocsPerRun(1000, func() {
		if c := p.Relay(f); c != RejectNone {
			bad = c
		}
	})
	if bad != RejectNone {
		t.Fatalf("Relay rejected mid-measurement: %v", bad)
	}
	if allocs != 0 {
		t.Fatalf("Plane.Relay allocates %.1f allocs/op, want 0", allocs)
	}
	if delivered == 0 {
		t.Fatal("Deliver callback never ran")
	}
}

// TestFrameCodecZeroAlloc pins the reusable encoder and reader — the
// two halves of the tunnel frame path — at zero allocations per frame
// once their buffers are warm.
func TestFrameCodecZeroAlloc(t *testing.T) {
	payload := bytes.Repeat([]byte{0xab}, 1024)
	out := &Frame{Type: FrameData, StreamID: 7, Payload: payload}

	var enc FrameEncoder
	enc.Reset(io.Discard)
	if err := enc.WriteFrame(out); err != nil { // warm the batch buffer
		t.Fatal(err)
	}
	var encErr error
	allocs := testing.AllocsPerRun(1000, func() {
		if err := enc.Append(out); err != nil {
			encErr = err
		}
		if err := enc.Flush(); err != nil {
			encErr = err
		}
	})
	if encErr != nil {
		t.Fatal(encErr)
	}
	if allocs != 0 {
		t.Fatalf("FrameEncoder allocates %.1f allocs/op, want 0", allocs)
	}

	var wire bytes.Buffer
	if err := WriteFrame(&wire, out); err != nil {
		t.Fatal(err)
	}
	data := wire.Bytes()
	rd := bytes.NewReader(data)
	fr := NewFrameReader(rd)
	in := AcquireFrame()
	defer ReleaseFrame(in)
	if err := fr.ReadInto(in); err != nil { // warm the payload storage
		t.Fatal(err)
	}
	var readErr error
	allocs = testing.AllocsPerRun(1000, func() {
		rd.Reset(data)
		if err := fr.ReadInto(in); err != nil {
			readErr = err
		}
	})
	if readErr != nil {
		t.Fatal(readErr)
	}
	if allocs != 0 {
		t.Fatalf("FrameReader.ReadInto allocates %.1f allocs/op, want 0", allocs)
	}
	if !bytes.Equal(in.Payload, payload) {
		t.Fatal("payload corrupted through codec round-trip")
	}
}
