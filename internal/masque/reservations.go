package masque

import (
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"

	"github.com/relay-networks/privaterelay/internal/vclock"
)

// Per-account reservations for the relay serving plane. Apple caps
// Private Relay abuse with per-account token quotas (§2); a relay
// operator additionally needs admission control at serving time:
// how long an account's admission lasts, how many bytes it may move,
// how fast, and how many concurrent sessions it may hold. The shape
// follows Circuit Relay v2's reservation model — a client obtains a
// time-boxed, data-capped reservation and every violation is answered
// with a typed status code rather than a dropped connection.

// Reservation frame types (continuing udp.go's numbering).
const (
	// FrameReserveOK replaces FrameAuthOK when the ingress runs with
	// reservations: payload is an encoded ReservationInfo telling the
	// client its limits.
	FrameReserveOK FrameType = 11
	// FrameReject carries a typed rejection: code(1) + human message.
	FrameReject FrameType = 12
)

// RejectCode enumerates typed reservation rejections. The exhaustive
// lint analyzer guards every switch over it, so adding a code without
// handling it everywhere is a build-time (make lint) failure.
type RejectCode uint8

// Rejection codes.
const (
	RejectNone         RejectCode = 0  // not a rejection (zero value)
	RejectMalformed    RejectCode = 1  // unparseable frame or payload
	RejectNoReservation RejectCode = 2 // no reservation admitted for account
	RejectExpired      RejectCode = 3  // reservation duration elapsed
	RejectSessionLimit RejectCode = 4  // concurrent-session cap reached
	RejectDataCap      RejectCode = 5  // data-cap bytes exhausted
	RejectBandwidth    RejectCode = 6  // bandwidth token bucket empty
	RejectDraining     RejectCode = 7  // relay draining for reload/shutdown
)

// String names the rejection in the RESOURCE_LIMIT_EXCEEDED style of
// Circuit Relay v2 status codes.
func (c RejectCode) String() string {
	switch c {
	case RejectNone:
		return "OK"
	case RejectMalformed:
		return "MALFORMED_REQUEST"
	case RejectNoReservation:
		return "NO_RESERVATION"
	case RejectExpired:
		return "RESERVATION_EXPIRED"
	case RejectSessionLimit:
		return "RESOURCE_LIMIT_EXCEEDED"
	case RejectDataCap:
		return "DATA_CAP_EXCEEDED"
	case RejectBandwidth:
		return "BANDWIDTH_EXCEEDED"
	case RejectDraining:
		return "RELAY_DRAINING"
	default:
		return fmt.Sprintf("REJECT%d", uint8(c))
	}
}

// RejectionError is the client-visible error for a typed FrameReject.
// It unwraps to ErrAuthRejected so existing callers that check for
// authentication failure keep working.
type RejectionError struct {
	Code RejectCode
	Msg  string
}

// Error implements error.
func (e *RejectionError) Error() string {
	if e.Msg == "" {
		return "masque: rejected: " + e.Code.String()
	}
	return "masque: rejected: " + e.Code.String() + ": " + e.Msg
}

// Unwrap lets errors.Is(err, ErrAuthRejected) match typed rejections.
func (e *RejectionError) Unwrap() error { return ErrAuthRejected }

// AppendReject encodes a FrameReject payload — code(1) + message — into
// dst and returns the extended slice.
func AppendReject(dst []byte, code RejectCode, msg string) []byte {
	dst = append(dst, byte(code))
	return append(dst, msg...)
}

// ParseReject decodes a FrameReject payload.
func ParseReject(p []byte) (RejectCode, string, error) {
	if len(p) < 1 {
		return RejectNone, "", errors.New("masque: short REJECT payload")
	}
	return RejectCode(p[0]), string(p[1:]), nil
}

// ReservationInfo is the admission answer carried by FrameReserveOK:
// the limits the relay granted, so the client can self-pace.
type ReservationInfo struct {
	// ExpiryUnixNano is when the reservation lapses (relay clock).
	ExpiryUnixNano int64
	// DataCap is the total tunnel bytes allowed; 0 means unlimited.
	DataCap int64
	// BandwidthBps is the sustained byte rate allowed; 0 = unlimited.
	BandwidthBps int64
	// Burst is the byte burst the bandwidth bucket absorbs.
	Burst int64
	// MaxSessions caps concurrent sessions; 0 means unlimited.
	MaxSessions int32
}

// reservationInfoLen is the fixed ReservationInfo encoding: four int64
// fields plus one int32, big-endian.
const reservationInfoLen = 36

// AppendReservationInfo encodes info into dst and returns the extended
// slice.
func AppendReservationInfo(dst []byte, info *ReservationInfo) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(info.ExpiryUnixNano))
	dst = binary.BigEndian.AppendUint64(dst, uint64(info.DataCap))
	dst = binary.BigEndian.AppendUint64(dst, uint64(info.BandwidthBps))
	dst = binary.BigEndian.AppendUint64(dst, uint64(info.Burst))
	return binary.BigEndian.AppendUint32(dst, uint32(info.MaxSessions))
}

// ParseReservationInfo decodes a FrameReserveOK payload.
func ParseReservationInfo(p []byte) (ReservationInfo, error) {
	if len(p) != reservationInfoLen {
		return ReservationInfo{}, fmt.Errorf("masque: RESERVE_OK payload is %d bytes, want %d", len(p), reservationInfoLen)
	}
	return ReservationInfo{
		ExpiryUnixNano: int64(binary.BigEndian.Uint64(p[0:8])),
		DataCap:        int64(binary.BigEndian.Uint64(p[8:16])),
		BandwidthBps:   int64(binary.BigEndian.Uint64(p[16:24])),
		Burst:          int64(binary.BigEndian.Uint64(p[24:32])),
		MaxSessions:    int32(binary.BigEndian.Uint32(p[32:36])),
	}, nil
}

// Limits is the per-account reservation policy. The zero value of any
// field means "unlimited" for that dimension.
type Limits struct {
	// Duration bounds how long an admission lasts before the account
	// must re-admit (and a fresh data cap is minted).
	Duration time.Duration
	// DataCap is total tunnel bytes per reservation.
	DataCap int64
	// BandwidthBps is the sustained byte rate per reservation.
	BandwidthBps int64
	// Burst is the byte burst the bandwidth bucket absorbs; defaults to
	// one second's worth of BandwidthBps when zero.
	Burst int64
	// MaxSessions caps concurrent sessions per reservation.
	MaxSessions int32
}

func (l Limits) burst() int64 {
	if l.Burst > 0 {
		return l.Burst
	}
	return l.BandwidthBps
}

// Reservation is one account's live admission. All counters are
// atomic: the frame path debits without locks.
type Reservation struct {
	account string
	limits  Limits
	// expiry is the lapse instant in clock nanoseconds; 0 = never.
	expiry int64
	// dataRem counts remaining data-cap bytes; math.MinInt64-safe
	// because debits are bounded by maxFramePayload.
	dataRem atomic.Int64
	// sessions counts concurrent sessions.
	sessions atomic.Int32
	// tat is the GCRA theoretical-arrival-time of the bandwidth bucket,
	// in clock nanoseconds.
	tat atomic.Int64
}

// Account returns the account this reservation admits.
func (r *Reservation) Account() string { return r.account }

// Info snapshots the reservation as the client-facing announcement.
func (r *Reservation) Info() ReservationInfo {
	return ReservationInfo{
		ExpiryUnixNano: r.expiry,
		DataCap:        r.limits.DataCap,
		BandwidthBps:   r.limits.BandwidthBps,
		Burst:          r.limits.burst(),
		MaxSessions:    r.limits.MaxSessions,
	}
}

// expired reports whether the reservation lapsed at clock time nowNS.
func (r *Reservation) expired(nowNS int64) bool {
	return r.expiry != 0 && nowNS >= r.expiry
}

// DebitData charges n tunnel bytes against the data cap. RejectNone
// admits the bytes; RejectDataCap means the cap is exhausted (the
// charge that crossed the line is refunded so counters stay sane).
func (r *Reservation) DebitData(n int64) RejectCode {
	if r.limits.DataCap <= 0 {
		return RejectNone
	}
	if r.dataRem.Add(-n) < 0 {
		r.dataRem.Add(n)
		return RejectDataCap
	}
	return RejectNone
}

// AllowBandwidth asks the bandwidth bucket to admit n bytes at clock
// time nowNS. It is GCRA on a single atomic: the bucket state is one
// theoretical-arrival-time, advanced by CAS, so the frame path never
// takes a lock to pace. A conforming request advances TAT by n's
// transmission time; a request that would push TAT more than the burst
// tolerance ahead of now is rejected with RejectBandwidth (and the
// bucket is left untouched — rejected bytes cost nothing).
func (r *Reservation) AllowBandwidth(n, nowNS int64) RejectCode {
	rate := r.limits.BandwidthBps
	if rate <= 0 || n <= 0 {
		return RejectNone
	}
	inc := transmitNS(n, rate)
	tol := transmitNS(r.limits.burst(), rate)
	for {
		tat := r.tat.Load()
		t := tat
		if nowNS > t {
			t = nowNS
		}
		newTat := t + inc
		if newTat-nowNS > tol {
			return RejectBandwidth
		}
		if r.tat.CompareAndSwap(tat, newTat) {
			return RejectNone
		}
	}
}

// transmitNS returns how many clock nanoseconds transmitting n bytes
// takes at rate bytes/sec, i.e. n·1e9/rate with a 128-bit intermediate:
// the naive product overflows int64 once n exceeds ~9.2 GB, which a
// generous burst configuration reaches easily (and an overflowed, and
// therefore negative, tolerance rejects every frame). Saturates at
// MaxInt64, which the GCRA check reads as "unlimited".
func transmitNS(n, rate int64) int64 {
	hi, lo := bits.Mul64(uint64(n), uint64(time.Second))
	if hi >= uint64(rate) {
		return math.MaxInt64
	}
	q, _ := bits.Div64(hi, lo, uint64(rate))
	if q > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(q)
}

// release ends one session on the reservation.
func (r *Reservation) release() {
	r.sessions.Add(-1)
}

// Reservations is the relay's admission registry: a sharded table of
// live reservations plus the (atomically reloadable) policy and the
// drain switch. One registry is shared by an ingress and its serving
// plane.
type Reservations struct {
	clock    vclock.Clock
	limits   atomic.Pointer[Limits]
	table    *Sharded[string, *Reservation]
	draining atomic.Bool
}

// NewReservations builds a registry applying limits, reading time from
// clock (nil means the wall clock).
func NewReservations(limits Limits, clock vclock.Clock) *Reservations {
	if clock == nil {
		clock = vclock.WallClock{}
	}
	rs := &Reservations{
		clock: clock,
		table: NewSharded[string, *Reservation](0, HashString),
	}
	rs.limits.Store(&limits)
	return rs
}

// Limits returns the current policy.
func (rs *Reservations) Limits() Limits { return *rs.limits.Load() }

// Reload atomically replaces the policy. Existing reservations keep
// the limits they were admitted under; new admissions (including
// re-admissions after expiry) get the new policy.
func (rs *Reservations) Reload(limits Limits) {
	rs.limits.Store(&limits)
}

// Drain stops admitting sessions: every Admit returns RejectDraining
// until Resume. Live sessions are not torn down — drain is the
// graceful half of reload/shutdown.
func (rs *Reservations) Drain() { rs.draining.Store(true) }

// Resume re-opens admission after a Drain.
func (rs *Reservations) Resume() { rs.draining.Store(false) }

// Draining reports whether the registry is draining.
func (rs *Reservations) Draining() bool { return rs.draining.Load() }

// Live reports the number of live reservations (not sessions).
func (rs *Reservations) Live() int { return rs.table.Len() }

// Admit asks for one session under account's reservation, minting the
// reservation on first admission. RejectNone grants the session — the
// caller owns one session slot and must r.release() it (via
// EndSession) when the session ends. Any other code denies it:
// RejectDraining during drain, RejectExpired exactly once when a lapsed
// reservation is swept (the next Admit mints a fresh one), and
// RejectSessionLimit when the concurrent-session cap is reached.
func (rs *Reservations) Admit(account string) (*Reservation, RejectCode) {
	if rs.draining.Load() {
		return nil, RejectDraining
	}
	nowNS := rs.clock.Now().UnixNano()
	r, ok := rs.table.Load(account)
	if ok && r.expired(nowNS) {
		rs.table.Delete(account)
		return nil, RejectExpired
	}
	if !ok {
		r = rs.mint(account, nowNS)
		if have, loaded := rs.table.LoadOrStore(account, r); loaded {
			r = have
			if r.expired(nowNS) {
				rs.table.Delete(account)
				return nil, RejectExpired
			}
		}
	}
	if max := r.limits.MaxSessions; max > 0 {
		if r.sessions.Add(1) > max {
			r.sessions.Add(-1)
			return nil, RejectSessionLimit
		}
	} else {
		r.sessions.Add(1)
	}
	return r, RejectNone
}

// EndSession returns a session slot obtained from Admit.
func (rs *Reservations) EndSession(r *Reservation) {
	if r != nil {
		r.release()
	}
}

func (rs *Reservations) mint(account string, nowNS int64) *Reservation {
	lim := *rs.limits.Load()
	r := &Reservation{account: account, limits: lim}
	if lim.Duration > 0 {
		r.expiry = nowNS + int64(lim.Duration)
	}
	if lim.DataCap > 0 {
		r.dataRem.Store(lim.DataCap)
	}
	return r
}

// NowNS exposes the registry clock in nanoseconds for frame-path
// bandwidth checks.
func (rs *Reservations) NowNS() int64 { return rs.clock.Now().UnixNano() }

// TokenAccount extracts the account an access token was minted for
// without validating its signature — the signature check stays with
// TokenIssuer.Validate; this only names the reservation bucket after
// validation succeeded.
func TokenAccount(token string) (string, error) {
	dot := strings.IndexByte(token, '.')
	if dot < 0 {
		return "", ErrTokenInvalid
	}
	body, err := base64.RawURLEncoding.DecodeString(token[:dot])
	if err != nil {
		return "", ErrTokenInvalid
	}
	account, rest, ok := strings.Cut(string(body), "|")
	if !ok || account == "" || rest == "" {
		return "", ErrTokenInvalid
	}
	return account, nil
}
