package masque

import (
	"bytes"
	"testing"
)

// FuzzReadFrame hardens the tunnel frame parser against hostile peers.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	WriteFrame(&buf, &Frame{Type: FrameAuth, Payload: AuthPayload("tok", "1.2.3.4:5")})
	f.Add(buf.Bytes())
	buf.Reset()
	WriteFrame(&buf, &Frame{Type: FrameData, StreamID: 7, Payload: []byte("data")})
	f.Add(buf.Bytes())
	f.Add([]byte{byte(FrameData), 0, 0, 0, 1, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteFrame(&out, fr); err != nil {
			t.Fatalf("re-encode of parsed frame failed: %v", err)
		}
		fr2, err := ReadFrame(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if fr2.Type != fr.Type || fr2.StreamID != fr.StreamID || !bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatal("frame round trip not stable")
		}
	})
}

// FuzzUnseal ensures hostile sealed payloads never panic and never
// authenticate.
func FuzzUnseal(f *testing.F) {
	f.Add(Seal("egress@a:1", []byte("target:443\ngh")))
	f.Add([]byte("short"))
	f.Add(bytes.Repeat([]byte{0}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		plain, err := Unseal("egress@other:1", data)
		if err == nil {
			// Authentication under the wrong identity must only succeed
			// for payloads genuinely sealed to it (probability ~2^-256).
			t.Fatalf("forged seal accepted: %q", plain)
		}
	})
}

// FuzzParseReject hardens the typed-rejection payload parser: hostile
// input never panics, and anything that parses re-encodes to the same
// bytes.
func FuzzParseReject(f *testing.F) {
	f.Add(AppendReject(nil, RejectSessionLimit, "too many sessions"))
	f.Add(AppendReject(nil, RejectDraining, ""))
	f.Add([]byte{0xFF})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		code, msg, err := ParseReject(data)
		if err != nil {
			return
		}
		// Every code — including ones this build does not define — must
		// have a printable name for logs.
		if code.String() == "" {
			t.Fatalf("code %d has empty name", code)
		}
		if out := AppendReject(nil, code, msg); !bytes.Equal(out, data) {
			t.Fatalf("REJECT round trip not stable: %x -> %x", data, out)
		}
	})
}

// FuzzParseReservationInfo hardens the RESERVE_OK payload parser the
// same way: no panics on hostile input, exact round-trip on valid.
func FuzzParseReservationInfo(f *testing.F) {
	f.Add(AppendReservationInfo(nil, &ReservationInfo{
		ExpiryUnixNano: 1_650_003_600_000_000_000,
		DataCap:        1 << 30,
		BandwidthBps:   1 << 20,
		Burst:          1 << 21,
		MaxSessions:    8,
	}))
	f.Add(AppendReservationInfo(nil, &ReservationInfo{}))
	f.Add(bytes.Repeat([]byte{0xFF}, reservationInfoLen))
	f.Add([]byte("short"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		info, err := ParseReservationInfo(data)
		if err != nil {
			return
		}
		if out := AppendReservationInfo(nil, &info); !bytes.Equal(out, data) {
			t.Fatalf("RESERVE_OK round trip not stable: %x -> %x", data, out)
		}
	})
}

// FuzzParseDatagramPreamble hardens the UDP preamble splitter.
func FuzzParseDatagramPreamble(f *testing.F) {
	f.Add([]byte(SourcePreambleMagic + "1.2.3.4\npayload"))
	f.Add([]byte("raw datagram"))
	f.Add([]byte(SourcePreambleMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, payload, ok := ParseDatagramPreamble(data)
		if !ok && !bytes.Equal(payload, data) {
			t.Fatal("non-preamble input must pass through unchanged")
		}
	})
}
