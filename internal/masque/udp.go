package masque

import (
	"net"
	"net/netip"
	"strings"
	"sync"
	"time"
)

// MASQUE UDP proxying (RFC 9298). At the time of the paper, iCloud
// Private Relay proxied TCP-ish streams only — "currently, proxying UDP
// traffic is not supported by MASQUE, but the MASQUE working group is
// working on a new draft" (§2). This file implements that draft's
// connect-udp semantics as the toolkit's forward-looking extension:
//
//   - FrameConnectUDP (sealed like FrameConnect) asks the egress to bind
//     a UDP association to the target.
//   - FrameDatagram carries one unreliable datagram per frame, preserving
//     message boundaries end to end (the HTTP Datagram analogue).
//
// Egress address rotation applies per association, exactly as for
// streams, so the §4.3 behaviour extends to UDP.

// Additional frame types for UDP proxying.
const (
	FrameConnectUDP FrameType = 9  // client → egress (sealed): UDP target
	FrameDatagram   FrameType = 10 // bidirectional unreliable payload
)

// udpAssoc is the egress-side state of one UDP association.
type udpAssoc struct {
	conn net.PacketConn
	dst  net.Addr
	src  netip.Addr // rotated egress address for this association
}

// handleConnectUDP binds a UDP association for a sealed CONNECT-UDP.
func (eg *Egress) handleConnectUDP(f *Frame, tw *tunnelWriter, sessions *tunnelSessions) {
	fail := func(msg string) {
		_ = tw.writeFrame(&Frame{Type: FrameConnectEr, StreamID: f.StreamID, Payload: []byte(msg)})
	}
	plain, err := Unseal(eg.ID, f.Payload)
	if err != nil {
		fail("unseal failed")
		return
	}
	target, _, ok := parseConnect(plain)
	if !ok {
		fail("malformed connect-udp")
		return
	}

	n := eg.nConns.Add(1) - 1
	var src netip.Addr
	if eg.Rotation != nil {
		src = eg.Rotation.Next(n)
	}

	dst, err := net.ResolveUDPAddr("udp", target)
	if err != nil {
		fail("bad udp target")
		return
	}
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		fail("udp bind failed")
		return
	}

	sessions.putAssoc(f.StreamID, &udpAssoc{conn: conn, dst: dst, src: src})

	if err := tw.writeFrame(&Frame{Type: FrameConnectOK, StreamID: f.StreamID, Payload: []byte(src.String())}); err != nil {
		conn.Close()
		return
	}

	// Pump target → tunnel. The simulated source address rides in each
	// datagram's preamble, mirroring the stream preamble convention. The
	// pump joins the egress WaitGroup so Serve drains it on shutdown; it
	// exits when the association or tunnel dies (closeAll fails the
	// read, at the latest when the 30 s read deadline expires).
	eg.wg.Add(1)
	go func(id uint32, pc net.PacketConn) {
		defer eg.wg.Done()
		buf := make([]byte, 64*1024) // one datagram can exceed the pooled 32 KiB copy buffers
		for {
			_ = pc.SetReadDeadline(time.Now().Add(30 * time.Second)) //lint:allow determinism — kernel socket deadlines need wall time, not the virtual clock
			n, _, err := pc.ReadFrom(buf)
			if err != nil {
				_ = tw.writeFrame(&Frame{Type: FrameClose, StreamID: id})
				return
			}
			if werr := tw.writeFrame(&Frame{Type: FrameDatagram, StreamID: id, Payload: buf[:n]}); werr != nil {
				pc.Close()
				return
			}
		}
	}(f.StreamID, conn)
}

// sendAssocDatagram relays one client datagram to the association target,
// prefixing the simulated source for preamble-aware UDP targets.
func sendAssocDatagram(a *udpAssoc, src netip.Addr, payload []byte) {
	pkt := payload
	if src.IsValid() {
		pkt = append([]byte(SourcePreambleMagic+src.String()+"\n"), payload...)
	}
	_, _ = a.conn.WriteTo(pkt, a.dst)
}

// ParseDatagramPreamble splits a preamble-prefixed UDP payload into the
// simulated source and the application datagram. Targets that do not
// care can ignore the preamble line.
func ParseDatagramPreamble(pkt []byte) (netip.Addr, []byte, bool) {
	s := string(pkt)
	if !strings.HasPrefix(s, SourcePreambleMagic) {
		return netip.Addr{}, pkt, false
	}
	nl := strings.IndexByte(s, '\n')
	if nl < 0 {
		return netip.Addr{}, pkt, false
	}
	addr, err := netip.ParseAddr(strings.TrimPrefix(s[:nl], SourcePreambleMagic))
	if err != nil {
		return netip.Addr{}, pkt, false
	}
	return addr, pkt[nl+1:], true
}

// UDPFlow is the client-side handle of one proxied UDP association.
type UDPFlow struct {
	client *Client
	id     uint32

	setup      chan struct{}
	setupOnce  sync.Once
	setupErr   error
	egressAddr netip.Addr

	mu     sync.Mutex
	inbox  chan []byte
	closed bool
}

// EgressAddr returns the egress address chosen for this association.
func (u *UDPFlow) EgressAddr() netip.Addr { return u.egressAddr }

// Send transmits one datagram to the target.
func (u *UDPFlow) Send(p []byte) error {
	return u.client.writeFrame(&Frame{Type: FrameDatagram, StreamID: u.id, Payload: p})
}

// Recv blocks for the next datagram from the target, honoring timeout
// (zero means block indefinitely until close).
func (u *UDPFlow) Recv(timeout time.Duration) ([]byte, error) {
	if timeout <= 0 {
		p, ok := <-u.inbox
		if !ok {
			return nil, ErrTunnelClosed
		}
		return p, nil
	}
	select {
	case p, ok := <-u.inbox:
		if !ok {
			return nil, ErrTunnelClosed
		}
		return p, nil
	case <-time.After(timeout): //lint:allow determinism — Recv's timeout is a caller-facing wall-time deadline, like the socket deadlines; no dataset-visible time derives from it
		return nil, ErrTimeoutUDP
	}
}

// ErrTimeoutUDP is returned by Recv when no datagram arrives in time.
var ErrTimeoutUDP = errTimeoutUDP{}

type errTimeoutUDP struct{}

func (errTimeoutUDP) Error() string { return "masque: udp recv timeout" }

// Close tears the association down.
func (u *UDPFlow) Close() error {
	err := u.client.writeFrame(&Frame{Type: FrameClose, StreamID: u.id})
	u.client.dropUDPFlow(u.id)
	u.closeInbox()
	return err
}

func (u *UDPFlow) closeInbox() {
	u.mu.Lock()
	if !u.closed {
		u.closed = true
		close(u.inbox)
	}
	u.mu.Unlock()
}

func (u *UDPFlow) deliver(p []byte) {
	buf := append([]byte(nil), p...)
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return
	}
	select {
	case u.inbox <- buf:
	default: // unreliable transport: drop on backpressure, like UDP
	}
	u.mu.Unlock()
}

func (u *UDPFlow) setupDone(addr netip.Addr, err error) {
	u.setupOnce.Do(func() {
		u.egressAddr = addr
		u.setupErr = err
		close(u.setup)
	})
}

// fail tears the flow down on tunnel loss: pending opens observe err,
// pending receives observe the closed inbox.
func (u *UDPFlow) fail(err error) {
	u.setupDone(netip.Addr{}, err)
	u.closeInbox()
}

// OpenUDP establishes a proxied UDP association to target ("host:port").
func (c *Client) OpenUDP(target string) (*UDPFlow, netip.Addr, error) {
	c.mu.Lock()
	if c.closed || c.conn == nil {
		c.mu.Unlock()
		return nil, netip.Addr{}, ErrTunnelClosed
	}
	id := c.nextID
	c.nextID++
	u := &UDPFlow{
		client: c,
		id:     id,
		setup:  make(chan struct{}),
		inbox:  make(chan []byte, 64),
	}
	demux := c.demux
	c.mu.Unlock()
	demux.putFlow(id, u)

	sealed := Seal(EgressIDForAddr(c.EgressAddr), ConnectPayload(target, c.Geohash))
	if err := c.writeFrame(&Frame{Type: FrameConnectUDP, StreamID: id, Payload: sealed}); err != nil {
		c.dropUDPFlow(id)
		return nil, netip.Addr{}, err
	}
	<-u.setup
	if u.setupErr != nil {
		c.dropUDPFlow(id)
		return nil, netip.Addr{}, u.setupErr
	}
	return u, u.egressAddr, nil
}

func (c *Client) dropUDPFlow(id uint32) {
	c.mu.Lock()
	demux := c.demux
	c.mu.Unlock()
	if demux != nil {
		demux.drop(id)
	}
}
