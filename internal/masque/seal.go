package masque

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// The CONNECT payload travels client → egress through the ingress, which
// must not learn the target. The real service achieves this with TLS to a
// raw-public-key-pinned egress. The simulator seals payloads with a
// keystream bound to the egress identity plus an HMAC: the ingress holds
// no egress key, so the structural guarantee ("ingress forwards opaque
// bytes") is faithful even though the toy cipher is not real cryptography.

// ErrBadSeal is returned when unsealing fails authentication.
var ErrBadSeal = errors.New("masque: sealed payload failed authentication")

// sealKey derives the shared client↔egress key for an egress identity.
func sealKey(egressID string) []byte {
	sum := sha256.Sum256([]byte("masque-egress-key:" + egressID))
	return sum[:]
}

// Seal encrypts-and-authenticates plaintext for the named egress.
func Seal(egressID string, plaintext []byte) []byte {
	key := sealKey(egressID)
	out := make([]byte, len(plaintext))
	keystream(key, out, plaintext)
	mac := hmac.New(sha256.New, key)
	mac.Write(out)
	return append(mac.Sum(nil), out...)
}

// Unseal reverses Seal for the given egress identity.
func Unseal(egressID string, sealed []byte) ([]byte, error) {
	if len(sealed) < sha256.Size {
		return nil, ErrBadSeal
	}
	key := sealKey(egressID)
	tag, body := sealed[:sha256.Size], sealed[sha256.Size:]
	mac := hmac.New(sha256.New, key)
	mac.Write(body)
	if !hmac.Equal(tag, mac.Sum(nil)) {
		return nil, ErrBadSeal
	}
	out := make([]byte, len(body))
	keystream(key, out, body)
	return out, nil
}

// keystream XORs src into dst with a SHA-256-based keystream.
func keystream(key []byte, dst, src []byte) {
	var block [sha256.Size]byte
	for i := 0; i < len(src); i += sha256.Size {
		h := sha256.New()
		h.Write(key)
		var ctr [8]byte
		binary.BigEndian.PutUint64(ctr[:], uint64(i/sha256.Size))
		h.Write(ctr[:])
		h.Sum(block[:0])
		for j := 0; j < sha256.Size && i+j < len(src); j++ {
			dst[i+j] = src[i+j] ^ block[j]
		}
	}
}

// EgressIDForAddr names the egress identity used for sealing when the
// client knows the egress by address.
func EgressIDForAddr(hostport string) string {
	return fmt.Sprintf("egress@%s", hostport)
}
