package masque_test

import (
	"fmt"

	"github.com/relay-networks/privaterelay/internal/masque"
)

func ExampleSeal() {
	// CONNECT payloads travel client → egress through an ingress that
	// must not learn the target: only the egress identity can unseal.
	sealed := masque.Seal("egress@203.0.113.9:443", masque.ConnectPayload("example.org:443", "u4pr"))

	if _, err := masque.Unseal("egress@other:443", sealed); err != nil {
		fmt.Println("ingress cannot read it:", err)
	}
	plain, _ := masque.Unseal("egress@203.0.113.9:443", sealed)
	fmt.Printf("egress reads: %q\n", plain)
	// Output:
	// ingress cannot read it: masque: sealed payload failed authentication
	// egress reads: "example.org:443\nu4pr"
}

func ExampleTokenIssuer() {
	issuer := masque.NewTokenIssuer("account-service-secret", 2)
	tok, _ := issuer.Issue("alice", "2022-05-11")
	fmt.Println("valid:", issuer.Validate(tok) == nil)

	issuer.Issue("alice", "2022-05-11")
	_, err := issuer.Issue("alice", "2022-05-11")
	fmt.Println("third token:", err)
	// Output:
	// valid: true
	// third token: masque: daily token quota exhausted
}
