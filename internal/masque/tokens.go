package masque

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/base64"
	"errors"
	"fmt"
	"strings"
	"sync"
)

// Token fraud prevention (§2): Apple limits the number of access tokens
// issued per user and day. TokenIssuer mints HMAC-signed tokens subject to
// that quota; ingress relays validate signatures statelessly.

// Token errors.
var (
	ErrTokenQuota   = errors.New("masque: daily token quota exhausted")
	ErrTokenInvalid = errors.New("masque: invalid token")
)

// TokenIssuer mints and validates access tokens.
type TokenIssuer struct {
	secret []byte
	// DailyLimit caps tokens per (account, day); zero means 100.
	DailyLimit int

	mu     sync.Mutex
	issued map[string]int // "account|day" → count
}

// NewTokenIssuer returns an issuer keyed by secret.
func NewTokenIssuer(secret string, dailyLimit int) *TokenIssuer {
	if dailyLimit <= 0 {
		dailyLimit = 100
	}
	return &TokenIssuer{
		secret:     []byte(secret),
		DailyLimit: dailyLimit,
		issued:     make(map[string]int),
	}
}

// Issue mints a token for account on the given day (e.g. "2022-05-11"),
// enforcing the daily quota.
func (ti *TokenIssuer) Issue(account, day string) (string, error) {
	key := account + "|" + day
	ti.mu.Lock()
	if ti.issued[key] >= ti.DailyLimit {
		ti.mu.Unlock()
		return "", ErrTokenQuota
	}
	ti.issued[key]++
	n := ti.issued[key]
	ti.mu.Unlock()

	body := fmt.Sprintf("%s|%s|%d", account, day, n)
	mac := hmac.New(sha256.New, ti.secret)
	mac.Write([]byte(body))
	sig := base64.RawURLEncoding.EncodeToString(mac.Sum(nil))
	return base64.RawURLEncoding.EncodeToString([]byte(body)) + "." + sig, nil
}

// Validate checks a token's signature. Validation is stateless: ingress
// relays do not call home per connection.
func (ti *TokenIssuer) Validate(token string) error {
	dot := strings.IndexByte(token, '.')
	if dot < 0 {
		return ErrTokenInvalid
	}
	body, err := base64.RawURLEncoding.DecodeString(token[:dot])
	if err != nil {
		return ErrTokenInvalid
	}
	sig, err := base64.RawURLEncoding.DecodeString(token[dot+1:])
	if err != nil {
		return ErrTokenInvalid
	}
	mac := hmac.New(sha256.New, ti.secret)
	mac.Write(body)
	if !hmac.Equal(sig, mac.Sum(nil)) {
		return ErrTokenInvalid
	}
	return nil
}

// Remaining returns how many tokens account may still obtain on day.
func (ti *TokenIssuer) Remaining(account, day string) int {
	ti.mu.Lock()
	defer ti.mu.Unlock()
	return ti.DailyLimit - ti.issued[account+"|"+day]
}
