package masque

import (
	"net"
	"sync"
	"sync/atomic"

	"github.com/relay-networks/privaterelay/internal/iputil"
)

// Sharded session tables. Every stateful hop of the serving plane —
// the plane-wide session registry, the per-account reservation
// registry, the egress per-tunnel stream map and the client demux —
// used to be (or would have been) one mutex-guarded map; at millions
// of sessions that mutex is the scaling wall the scan plane already
// hit and broke (DESIGN.md §12). Sharded spreads keys over a
// power-of-two number of independently locked shards: a session
// touches exactly one shard lock, so concurrent sessions contend only
// when they hash together.

// defaultShards is the shard count when a table is built with n <= 0.
// 256 shards × a 65-byte padded shard header is 16 KiB of fixed
// overhead, amortized instantly against millions of entries.
const defaultShards = 256

// Sharded is a power-of-two sharded, per-shard-locked map. The zero
// value is not usable; build tables with NewSharded. K is hashed with
// the table's hash function (see HashUint32/HashString).
type Sharded[K comparable, V any] struct {
	shards []tableShard[K, V]
	mask   uint64
	hash   func(K) uint64
	n      atomic.Int64
}

// tableShard pads each lock+map pair to its own cache line so
// neighbouring shard locks never false-share. The shard lock is a leaf:
// nothing blocking and no other lock acquisition may happen under it
// (enforced by the lockorder analyzer via the annotation below).
type tableShard[K comparable, V any] struct {
	mu sync.Mutex //lint:shardlock
	m  map[K]V
	_  [40]byte
}

// NewSharded builds a table with n shards (rounded up to a power of
// two; n <= 0 means defaultShards) hashing keys through hash.
func NewSharded[K comparable, V any](n int, hash func(K) uint64) *Sharded[K, V] {
	if n <= 0 {
		n = defaultShards
	}
	size := 1
	for size < n {
		size <<= 1
	}
	return &Sharded[K, V]{
		shards: make([]tableShard[K, V], size),
		mask:   uint64(size - 1),
		hash:   hash,
	}
}

// HashUint32 mixes a 32-bit key (session and stream IDs are assigned
// sequentially — without mixing, consecutive sessions would walk the
// shards in lockstep and batch workloads would convoy on one lock).
func HashUint32(k uint32) uint64 { return iputil.Mix(uint64(k), 0x6d617371) }

// HashString hashes a string key (account names) with FNV-1a.
func HashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func (t *Sharded[K, V]) shard(k K) *tableShard[K, V] {
	return &t.shards[t.hash(k)&t.mask]
}

// Load returns the value stored for k.
func (t *Sharded[K, V]) Load(k K) (V, bool) {
	s := t.shard(k)
	s.mu.Lock()
	v, ok := s.m[k]
	s.mu.Unlock()
	return v, ok
}

// Store sets k to v, replacing any previous value.
func (t *Sharded[K, V]) Store(k K, v V) {
	s := t.shard(k)
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[K]V)
	}
	_, had := s.m[k]
	s.m[k] = v
	s.mu.Unlock()
	if !had {
		t.n.Add(1)
	}
}

// LoadOrStore returns the existing value for k, or stores and returns
// v. loaded reports whether the value was already present.
func (t *Sharded[K, V]) LoadOrStore(k K, v V) (actual V, loaded bool) {
	s := t.shard(k)
	s.mu.Lock()
	if have, ok := s.m[k]; ok {
		s.mu.Unlock()
		return have, true
	}
	if s.m == nil {
		s.m = make(map[K]V)
	}
	s.m[k] = v
	s.mu.Unlock()
	t.n.Add(1)
	return v, false
}

// Delete removes k, returning the removed value.
func (t *Sharded[K, V]) Delete(k K) (V, bool) {
	s := t.shard(k)
	s.mu.Lock()
	v, ok := s.m[k]
	if ok {
		delete(s.m, k)
	}
	s.mu.Unlock()
	if ok {
		t.n.Add(-1)
	}
	return v, ok
}

// Len reports the number of entries across all shards.
func (t *Sharded[K, V]) Len() int { return int(t.n.Load()) }

// Range calls f for every entry until f returns false. Each shard is
// visited under its own lock; iteration order is unspecified, so
// callers must accumulate order-independently (the determinism lint's
// map-range rule applies to them as usual). Because f runs under the
// shard lock it must not block or take locks — collect under Range,
// act after it returns.
//
//lint:callback-holds tableShard.mu
func (t *Sharded[K, V]) Range(f func(K, V) bool) {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for k, v := range s.m {
			if !f(k, v) {
				s.mu.Unlock()
				return
			}
		}
		s.mu.Unlock()
	}
}

// tunnelSession is one proxied connection's egress-side state: a TCP
// target or a UDP association, never both.
type tunnelSession struct {
	target net.Conn
	assoc  *udpAssoc
}

// tunnelSessions is the per-tunnel session table at the egress. It
// folds the two loose (map[uint32]…, *sync.Mutex) pairs the old
// handleConnect/handleConnectUDP signatures threaded around into one
// typed table; tunnels carry few streams, so it uses a small shard
// count rather than the plane-wide default.
type tunnelSessions struct {
	t *Sharded[uint32, tunnelSession]
}

func newTunnelSessions() *tunnelSessions {
	return &tunnelSessions{t: NewSharded[uint32, tunnelSession](8, HashUint32)}
}

func (ts *tunnelSessions) putStream(id uint32, target net.Conn) {
	ts.t.Store(id, tunnelSession{target: target})
}

func (ts *tunnelSessions) putAssoc(id uint32, a *udpAssoc) {
	ts.t.Store(id, tunnelSession{assoc: a})
}

func (ts *tunnelSessions) stream(id uint32) net.Conn {
	s, _ := ts.t.Load(id)
	return s.target
}

func (ts *tunnelSessions) assoc(id uint32) *udpAssoc {
	s, _ := ts.t.Load(id)
	return s.assoc
}

// close tears down the session with the given ID, closing whichever
// leg it holds.
func (ts *tunnelSessions) close(id uint32) {
	s, ok := ts.t.Delete(id)
	if !ok {
		return
	}
	if s.target != nil {
		s.target.Close()
	}
	if s.assoc != nil {
		s.assoc.conn.Close()
	}
}

// closeAll tears down every session (tunnel teardown). Conn Close is
// I/O, so sessions are collected under the shard locks and closed
// outside them.
func (ts *tunnelSessions) closeAll() {
	var all []tunnelSession
	ts.t.Range(func(id uint32, s tunnelSession) bool {
		all = append(all, s)
		return true
	})
	for _, s := range all {
		if s.target != nil {
			s.target.Close()
		}
		if s.assoc != nil {
			s.assoc.conn.Close()
		}
	}
}

// demuxEntry is one client-side stream handle: a TCP stream or a UDP
// flow, never both.
type demuxEntry struct {
	s *Stream
	u *UDPFlow
}

// demuxTable is the client's frame demultiplexer state, replacing the
// two mutex-guarded maps the demux loop used to consult per frame.
type demuxTable struct {
	t *Sharded[uint32, demuxEntry]
}

func newDemuxTable() *demuxTable {
	return &demuxTable{t: NewSharded[uint32, demuxEntry](8, HashUint32)}
}

func (d *demuxTable) putStream(id uint32, s *Stream) { d.t.Store(id, demuxEntry{s: s}) }
func (d *demuxTable) putFlow(id uint32, u *UDPFlow)  { d.t.Store(id, demuxEntry{u: u}) }
func (d *demuxTable) lookup(id uint32) demuxEntry {
	e, _ := d.t.Load(id)
	return e
}
func (d *demuxTable) drop(id uint32) { d.t.Delete(id) }

// failAll fails every open stream and flow with err (tunnel teardown).
// Stream.fail takes the stream lock, which must not nest under the
// shard lock, so entries are collected under Range and failed after.
func (d *demuxTable) failAll(err error) {
	var all []demuxEntry
	d.t.Range(func(id uint32, e demuxEntry) bool {
		all = append(all, e)
		return true
	})
	for _, e := range all {
		if e.s != nil {
			e.s.fail(err)
		}
		if e.u != nil {
			e.u.fail(err)
		}
	}
	// Rebuilding the table is unnecessary: entries fail idempotently and
	// the owning client is already marked closed.
}
