package masque

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// The serving plane. The wire-facing Ingress/Egress pair carries the
// protocol semantics (§2's two hops, sealed CONNECTs, rotation); the
// Plane is the throughput engine underneath: sessions are entries in a
// sharded table, frames ride pooled buffers through fixed worker
// pools, and per-account reservations gate every hop. Like
// MemTransport on the DNS side, the plane collapses the transport so
// a single process can exercise relay behaviour at populations —
// millions of concurrent sessions — that socket pairs cannot reach.
//
// Two relay paths:
//
//   - Relay() is the synchronous ingress→egress hop, used by callers
//     that own their frame and want the answer inline. It is the
//     0 allocs/op path the alloc-regression test pins.
//   - Submit() transfers a pooled frame into the ingress queue; the
//     ingress worker pool charges reservations and forwards to the
//     egress pool, which delivers and releases the frame.

// ErrPlaneClosed is returned when opening sessions on a closed plane.
var ErrPlaneClosed = errors.New("masque: serving plane closed")

// PlaneConfig sizes a serving plane.
type PlaneConfig struct {
	// Shards is the session-table shard count (power of two; 0 means
	// defaultShards).
	Shards int
	// IngressWorkers and EgressWorkers size the fixed worker pools for
	// the async Submit path; 0 means GOMAXPROCS.
	IngressWorkers int
	EgressWorkers  int
	// QueueDepth is the per-hop frame queue capacity; 0 means 1024.
	QueueDepth int
	// Reservations is the admission registry; nil admits everything.
	Reservations *Reservations
	// Deliver, when set, observes every frame leaving the egress hop
	// (the frame is owned by the plane; do not retain it).
	Deliver func(s *PlaneSession, f *Frame)
}

func (c *PlaneConfig) ingressWorkers() int { return workersOr(c.IngressWorkers) }
func (c *PlaneConfig) egressWorkers() int  { return workersOr(c.EgressWorkers) }

func workersOr(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

func (c *PlaneConfig) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 1024
}

// PlaneSession is one tunnel session on the serving plane: an entry in
// the sharded session table plus its reservation handle and traffic
// counters. All fields are atomics — the frame path touches sessions
// locklessly.
type PlaneSession struct {
	id     uint32
	res    *Reservation
	frames atomic.Int64
	bytes  atomic.Int64
}

// ID returns the plane-wide session ID (carried in Frame.StreamID).
func (s *PlaneSession) ID() uint32 { return s.id }

// Frames returns how many frames the session has relayed.
func (s *PlaneSession) Frames() int64 { return s.frames.Load() }

// Bytes returns how many payload bytes the session has relayed.
func (s *PlaneSession) Bytes() int64 { return s.bytes.Load() }

// PlaneStats is a point-in-time snapshot of plane counters.
type PlaneStats struct {
	Sessions      int
	FramesRelayed int64
	BytesRelayed  int64
	// Rejected counts frame- and admission-path rejections by code.
	Rejected map[RejectCode]int64
}

// rejectCodeCount sizes the per-code counter array; codes are dense
// starting at RejectNone.
const rejectCodeCount = int(RejectDraining) + 1

// Plane is the relay serving plane. Build with NewPlane.
type Plane struct {
	cfg      PlaneConfig
	sessions *Sharded[uint32, *PlaneSession]
	nextID   atomic.Uint32

	frames   atomic.Int64
	bytes    atomic.Int64
	rejected [rejectCodeCount]atomic.Int64

	ingressQ  chan *Frame
	egressQ   chan *Frame
	ingressWG sync.WaitGroup
	egressWG  sync.WaitGroup
	closed    atomic.Bool
}

// NewPlane builds a serving plane and starts its worker pools.
func NewPlane(cfg PlaneConfig) *Plane {
	p := &Plane{
		cfg:      cfg,
		sessions: NewSharded[uint32, *PlaneSession](cfg.Shards, HashUint32),
		ingressQ: make(chan *Frame, cfg.queueDepth()),
		egressQ:  make(chan *Frame, cfg.queueDepth()),
	}
	for i := 0; i < cfg.ingressWorkers(); i++ {
		p.ingressWG.Add(1)
		go p.ingressWorker()
	}
	for i := 0; i < cfg.egressWorkers(); i++ {
		p.egressWG.Add(1)
		go p.egressWorker()
	}
	return p
}

// Open admits a session for account. On RejectNone the session is live
// in the table and must be balanced by Close. Any other code is a
// typed admission denial (and counted in the stats).
func (p *Plane) Open(account string) (*PlaneSession, RejectCode) {
	if p.closed.Load() {
		p.countReject(RejectDraining)
		return nil, RejectDraining
	}
	var res *Reservation
	if rs := p.cfg.Reservations; rs != nil {
		r, code := rs.Admit(account)
		if code != RejectNone {
			p.countReject(code)
			return nil, code
		}
		res = r
	}
	s := &PlaneSession{id: p.nextID.Add(1), res: res}
	p.sessions.Store(s.id, s)
	return s, RejectNone
}

// Close ends a session, removing it from the table and returning its
// reservation slot.
func (p *Plane) Close(s *PlaneSession) {
	if s == nil {
		return
	}
	p.sessions.Delete(s.id)
	if s.res != nil && p.cfg.Reservations != nil {
		p.cfg.Reservations.EndSession(s.res)
	}
}

// Session looks up a live session by ID.
func (p *Plane) Session(id uint32) (*PlaneSession, bool) {
	return p.sessions.Load(id)
}

// Relay performs the full ingress→egress hop for f synchronously:
// session lookup (cached on the frame), reservation charges, delivery.
// The caller keeps ownership of f. This is the steady-state frame path
// and performs zero allocations.
func (p *Plane) Relay(f *Frame) RejectCode {
	code := p.ingressHop(f)
	if code != RejectNone {
		p.countReject(code)
		return code
	}
	p.egressHop(f)
	return RejectNone
}

// Submit transfers ownership of a pooled frame to the plane's async
// pipeline; the plane releases it after the egress hop (or on
// rejection). Submit must not be called after Shutdown.
func (p *Plane) Submit(f *Frame) {
	p.ingressQ <- f
}

// ingressHop validates the frame against its session's reservation:
// data cap first (bytes are the scarcer resource), then bandwidth.
func (p *Plane) ingressHop(f *Frame) RejectCode {
	s := f.sess
	if s == nil || s.id != f.StreamID {
		var ok bool
		s, ok = p.sessions.Load(f.StreamID)
		if !ok {
			return RejectNoReservation
		}
		f.sess = s
	}
	r := s.res
	if r == nil {
		return RejectNone
	}
	n := int64(len(f.Payload))
	rs := p.cfg.Reservations
	if r.expiry != 0 && r.expired(rs.NowNS()) {
		return RejectExpired
	}
	if code := r.DebitData(n); code != RejectNone {
		return code
	}
	if r.limits.BandwidthBps > 0 {
		if code := r.AllowBandwidth(n, rs.NowNS()); code != RejectNone {
			return code
		}
	}
	return RejectNone
}

// egressHop delivers the frame and settles counters.
func (p *Plane) egressHop(f *Frame) {
	s := f.sess
	n := int64(len(f.Payload))
	s.frames.Add(1)
	s.bytes.Add(n)
	p.frames.Add(1)
	p.bytes.Add(n)
	if p.cfg.Deliver != nil {
		p.cfg.Deliver(s, f)
	}
}

func (p *Plane) ingressWorker() {
	defer p.ingressWG.Done()
	for f := range p.ingressQ {
		code := p.ingressHop(f)
		if code != RejectNone {
			p.countReject(code)
			ReleaseFrame(f)
			continue
		}
		p.egressQ <- f
	}
}

func (p *Plane) egressWorker() {
	defer p.egressWG.Done()
	for f := range p.egressQ {
		p.egressHop(f)
		ReleaseFrame(f)
	}
}

func (p *Plane) countReject(code RejectCode) {
	if int(code) < rejectCodeCount {
		p.rejected[code].Add(1)
	}
}

// Drain stops admitting sessions (typed RejectDraining) while live
// sessions keep relaying; Resume re-opens admission; Reload swaps the
// reservation policy for future admissions. All three are no-ops
// without a reservation registry.
func (p *Plane) Drain() {
	if rs := p.cfg.Reservations; rs != nil {
		rs.Drain()
	}
}

// Resume re-opens admission after Drain.
func (p *Plane) Resume() {
	if rs := p.cfg.Reservations; rs != nil {
		rs.Resume()
	}
}

// Reload atomically replaces the reservation policy.
func (p *Plane) Reload(limits Limits) {
	if rs := p.cfg.Reservations; rs != nil {
		rs.Reload(limits)
	}
}

// Shutdown stops the worker pools after the queues empty. Callers must
// stop Submitting first; Relay and Open fail closed afterwards.
func (p *Plane) Shutdown() {
	if p.closed.Swap(true) {
		return
	}
	// The egress queue can only be closed once every ingress worker has
	// stopped forwarding into it, so the hops shut down in order.
	close(p.ingressQ)
	p.ingressWG.Wait()
	close(p.egressQ)
	p.egressWG.Wait()
}

// Stats snapshots the plane counters.
func (p *Plane) Stats() PlaneStats {
	st := PlaneStats{
		Sessions:      p.sessions.Len(),
		FramesRelayed: p.frames.Load(),
		BytesRelayed:  p.bytes.Load(),
		Rejected:      make(map[RejectCode]int64),
	}
	for c := 0; c < rejectCodeCount; c++ {
		if n := p.rejected[c].Load(); n > 0 {
			st.Rejected[RejectCode(c)] = n
		}
	}
	return st
}
