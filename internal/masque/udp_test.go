package masque

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"
)

// udpEchoServer answers each datagram with "src=<addr> " + payload,
// reading the simulated source from the datagram preamble.
func udpEchoServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 64*1024)
		for {
			n, from, err := pc.ReadFrom(buf)
			if err != nil {
				return
			}
			src, payload, _ := ParseDatagramPreamble(buf[:n])
			resp := []byte(fmt.Sprintf("src=%s ", src))
			resp = append(resp, payload...)
			_, _ = pc.WriteTo(resp, from)
		}
	}()
	return pc.LocalAddr().String(), func() { pc.Close(); wg.Wait() }
}

func TestUDPProxyEndToEnd(t *testing.T) {
	target, stopTarget := udpEchoServer(t)
	defer stopTarget()
	pool := []netip.Addr{netip.MustParseAddr("172.224.224.1"), netip.MustParseAddr("104.16.0.1")}
	cl, _, stop := relaySetup(t, &PerConnectionRotation{Pool: pool, Seed: 5})
	defer stop()

	flow, egAddr, err := cl.OpenUDP(target)
	if err != nil {
		t.Fatal(err)
	}
	defer flow.Close()
	if !egAddr.IsValid() || flow.EgressAddr() != egAddr {
		t.Fatalf("egress addr: %v / %v", egAddr, flow.EgressAddr())
	}

	if err := flow.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	resp, err := flow.Recv(3 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("src=%s ping", egAddr)
	if string(resp) != want {
		t.Fatalf("echo = %q, want %q", resp, want)
	}
}

func TestUDPProxyPreservesMessageBoundaries(t *testing.T) {
	target, stopTarget := udpEchoServer(t)
	defer stopTarget()
	cl, _, stop := relaySetup(t, &StickyRotation{Addr: netip.MustParseAddr("172.224.224.9")})
	defer stop()

	flow, _, err := cl.OpenUDP(target)
	if err != nil {
		t.Fatal(err)
	}
	defer flow.Close()

	// Three distinct datagrams must arrive as three messages, never
	// coalesced like a byte stream would.
	for i := 0; i < 3; i++ {
		if err := flow.Send([]byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		resp, err := flow.Recv(3 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(resp, []byte("src=")) {
			t.Fatalf("datagram %d missing preamble echo: %q", i, resp)
		}
		seen[string(resp[len(resp)-1:])] = true
	}
	if len(seen) != 3 {
		t.Fatalf("datagrams coalesced: %v", seen)
	}
}

func TestUDPProxyRotatesPerAssociation(t *testing.T) {
	target, stopTarget := udpEchoServer(t)
	defer stopTarget()
	pool := []netip.Addr{
		netip.MustParseAddr("172.224.224.1"), netip.MustParseAddr("172.224.224.2"),
		netip.MustParseAddr("104.16.0.1"), netip.MustParseAddr("104.16.0.2"),
	}
	cl, _, stop := relaySetup(t, &PerConnectionRotation{Pool: pool, Seed: 6})
	defer stop()

	seen := map[netip.Addr]bool{}
	for i := 0; i < 24; i++ {
		flow, addr, err := cl.OpenUDP(target)
		if err != nil {
			t.Fatal(err)
		}
		seen[addr] = true
		flow.Close()
	}
	if len(seen) < 3 {
		t.Fatalf("UDP associations used only %d egress addresses", len(seen))
	}
}

func TestUDPRecvTimeout(t *testing.T) {
	target, stopTarget := udpEchoServer(t)
	defer stopTarget()
	cl, _, stop := relaySetup(t, &StickyRotation{Addr: netip.MustParseAddr("172.224.224.9")})
	defer stop()
	flow, _, err := cl.OpenUDP(target)
	if err != nil {
		t.Fatal(err)
	}
	defer flow.Close()
	if _, err := flow.Recv(50 * time.Millisecond); !errors.Is(err, ErrTimeoutUDP) {
		t.Fatalf("Recv on silent flow: %v", err)
	}
}

func TestUDPOpenBadTarget(t *testing.T) {
	cl, _, stop := relaySetup(t, &StickyRotation{Addr: netip.MustParseAddr("172.224.224.9")})
	defer stop()
	if _, _, err := cl.OpenUDP("not-a-valid:target:spec"); err == nil {
		t.Fatal("bad UDP target accepted")
	}
}

func TestUDPFlowAfterTunnelClose(t *testing.T) {
	target, stopTarget := udpEchoServer(t)
	defer stopTarget()
	cl, _, stop := relaySetup(t, &StickyRotation{Addr: netip.MustParseAddr("172.224.224.9")})
	flow, _, err := cl.OpenUDP(target)
	if err != nil {
		stop()
		t.Fatal(err)
	}
	stop() // tears the tunnel down
	// Recv unblocks with an error once the tunnel dies.
	if _, err := flow.Recv(2 * time.Second); err == nil {
		t.Fatal("Recv succeeded after tunnel close")
	}
	if _, _, err := cl.OpenUDP(target); err == nil {
		t.Fatal("OpenUDP on closed tunnel succeeded")
	}
}

func TestParseDatagramPreamble(t *testing.T) {
	src := netip.MustParseAddr("104.16.0.7")
	pkt := append([]byte(SourcePreambleMagic+src.String()+"\n"), []byte("hello")...)
	got, payload, ok := ParseDatagramPreamble(pkt)
	if !ok || got != src || string(payload) != "hello" {
		t.Fatalf("parse: %v %q %v", got, payload, ok)
	}
	// No preamble → passthrough.
	if _, payload, ok := ParseDatagramPreamble([]byte("raw")); ok || string(payload) != "raw" {
		t.Fatal("raw passthrough broken")
	}
	// Malformed preamble → passthrough.
	if _, _, ok := ParseDatagramPreamble([]byte(SourcePreambleMagic + "zzz\nx")); ok {
		t.Fatal("bad preamble accepted")
	}
}
