// Package masque implements the two-hop proxying protocol at the heart of
// iCloud Private Relay, modeled on the MASQUE CONNECT style (§2 of the
// paper): clients authenticate to an ingress relay, which blindly pipes an
// end-to-end encrypted tunnel to an egress relay; the egress unseals
// CONNECT requests, selects an egress address (rotating per connection
// attempt), and dials the target.
//
// The real service runs over HTTP/3 (QUIC) with an HTTP/2-over-TCP
// fallback. This implementation frames the same message flow over TCP —
// the architectural properties under study (two layers, operator
// separation, what each hop can see, per-connection egress rotation,
// stream multiplexing) all live above the transport.
//
// Visibility invariants enforced structurally:
//
//   - The ingress sees the client address and the egress address, but the
//     CONNECT payload naming the target is sealed with a key the ingress
//     does not hold — it forwards opaque bytes.
//   - The egress sees the target and the ingress address, never the
//     client address: no frame field carries it past the ingress.
package masque

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// FrameType enumerates protocol frames.
type FrameType uint8

// Frame types.
const (
	FrameAuth      FrameType = 1 // client → ingress: token + egress address
	FrameAuthOK    FrameType = 2 // ingress → client
	FrameAuthErr   FrameType = 3 // ingress → client
	FrameConnect   FrameType = 4 // client → egress (sealed): target
	FrameConnectOK FrameType = 5 // egress → client: chosen egress address
	FrameConnectEr FrameType = 6 // egress → client: dial failure
	FrameData      FrameType = 7 // bidirectional stream data
	FrameClose     FrameType = 8 // stream close
)

// String names the frame type.
func (t FrameType) String() string {
	switch t {
	case FrameAuth:
		return "AUTH"
	case FrameAuthOK:
		return "AUTH_OK"
	case FrameAuthErr:
		return "AUTH_ERR"
	case FrameConnect:
		return "CONNECT"
	case FrameConnectOK:
		return "CONNECT_OK"
	case FrameConnectEr:
		return "CONNECT_ERR"
	case FrameData:
		return "DATA"
	case FrameClose:
		return "CLOSE"
	default:
		return fmt.Sprintf("FRAME%d", uint8(t))
	}
}

// Frame is one protocol unit. StreamID multiplexes tunnel streams; frames
// before stream establishment use stream 0.
type Frame struct {
	Type     FrameType
	StreamID uint32
	Payload  []byte
}

// maxFramePayload bounds frame sizes to keep a misbehaving peer from
// forcing unbounded allocations.
const maxFramePayload = 1 << 20

// ErrFrameTooLarge is returned for frames exceeding maxFramePayload.
var ErrFrameTooLarge = errors.New("masque: frame payload too large")

// WriteFrame serializes f to w: type(1) streamID(4) len(4) payload.
func WriteFrame(w io.Writer, f *Frame) error {
	if len(f.Payload) > maxFramePayload {
		return ErrFrameTooLarge
	}
	hdr := make([]byte, 9)
	hdr[0] = byte(f.Type)
	binary.BigEndian.PutUint32(hdr[1:5], f.StreamID)
	binary.BigEndian.PutUint32(hdr[5:9], uint32(len(f.Payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if len(f.Payload) > 0 {
		if _, err := w.Write(f.Payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one frame from r.
func ReadFrame(r io.Reader) (*Frame, error) {
	hdr := make([]byte, 9)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	f := &Frame{
		Type:     FrameType(hdr[0]),
		StreamID: binary.BigEndian.Uint32(hdr[1:5]),
	}
	n := binary.BigEndian.Uint32(hdr[5:9])
	if n > maxFramePayload {
		return nil, ErrFrameTooLarge
	}
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return nil, err
		}
	}
	return f, nil
}
