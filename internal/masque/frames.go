// Package masque implements the two-hop proxying protocol at the heart of
// iCloud Private Relay, modeled on the MASQUE CONNECT style (§2 of the
// paper): clients authenticate to an ingress relay, which blindly pipes an
// end-to-end encrypted tunnel to an egress relay; the egress unseals
// CONNECT requests, selects an egress address (rotating per connection
// attempt), and dials the target.
//
// The real service runs over HTTP/3 (QUIC) with an HTTP/2-over-TCP
// fallback. This implementation frames the same message flow over TCP —
// the architectural properties under study (two layers, operator
// separation, what each hop can see, per-connection egress rotation,
// stream multiplexing) all live above the transport.
//
// Visibility invariants enforced structurally:
//
//   - The ingress sees the client address and the egress address, but the
//     CONNECT payload naming the target is sealed with a key the ingress
//     does not hold — it forwards opaque bytes.
//   - The egress sees the target and the ingress address, never the
//     client address: no frame field carries it past the ingress.
package masque

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// FrameType enumerates protocol frames.
type FrameType uint8

// Frame types. FrameConnectUDP and FrameDatagram live in udp.go;
// FrameReserveOK and FrameReject in reservations.go.
const (
	FrameAuth      FrameType = 1 // client → ingress: token + egress address
	FrameAuthOK    FrameType = 2 // ingress → client
	FrameAuthErr   FrameType = 3 // ingress → client
	FrameConnect   FrameType = 4 // client → egress (sealed): target
	FrameConnectOK FrameType = 5 // egress → client: chosen egress address
	FrameConnectEr FrameType = 6 // egress → client: dial failure
	FrameData      FrameType = 7 // bidirectional stream data
	FrameClose     FrameType = 8 // stream close
)

// String names the frame type.
func (t FrameType) String() string {
	switch t {
	case FrameAuth:
		return "AUTH"
	case FrameAuthOK:
		return "AUTH_OK"
	case FrameAuthErr:
		return "AUTH_ERR"
	case FrameConnect:
		return "CONNECT"
	case FrameConnectOK:
		return "CONNECT_OK"
	case FrameConnectEr:
		return "CONNECT_ERR"
	case FrameData:
		return "DATA"
	case FrameClose:
		return "CLOSE"
	case FrameConnectUDP:
		return "CONNECT_UDP"
	case FrameDatagram:
		return "DATAGRAM"
	case FrameReserveOK:
		return "RESERVE_OK"
	case FrameReject:
		return "REJECT"
	default:
		return fmt.Sprintf("FRAME%d", uint8(t))
	}
}

// Frame is one protocol unit. StreamID multiplexes tunnel streams; frames
// before stream establishment use stream 0. On the in-process serving
// plane StreamID carries the plane-wide session ID instead.
type Frame struct {
	Type     FrameType
	StreamID uint32
	Payload  []byte

	// buf is the retained payload storage of pooled/reused frames;
	// Payload aliases it after grow/SetPayload/ReadInto.
	buf []byte
	// pooled marks frames from AcquireFrame so ReleaseFrame never
	// recycles foreign frames (same provenance trick as dnswire).
	pooled bool
	// sess caches the ingress hop's session lookup while a frame rides
	// the plane's ingress→egress queue.
	sess *PlaneSession
}

// maxFramePayload bounds frame sizes to keep a misbehaving peer from
// forcing unbounded allocations.
const maxFramePayload = 1 << 20

// frameHeaderLen is the fixed frame header: type(1) streamID(4) len(4).
const frameHeaderLen = 9

// ErrFrameTooLarge is returned for frames exceeding maxFramePayload.
var ErrFrameTooLarge = errors.New("masque: frame payload too large")

// WriteFrame serializes f to w: type(1) streamID(4) len(4) payload.
// It allocates per call; tunnel hot paths use a FrameEncoder instead.
func WriteFrame(w io.Writer, f *Frame) error {
	var e FrameEncoder
	e.Reset(w)
	if err := e.Append(f); err != nil {
		return err
	}
	return e.Flush()
}

// ReadFrame reads one freshly allocated frame from r. Tunnel hot paths
// use a FrameReader with a reused frame instead.
func ReadFrame(r io.Reader) (*Frame, error) {
	var fr FrameReader
	fr.Reset(r)
	f := &Frame{}
	if err := fr.ReadInto(f); err != nil {
		return nil, err
	}
	return f, nil
}

// FrameReader decodes frames from a stream with reusable header
// scratch. Paired with a reused (or pooled) Frame, the steady-state
// read path performs no allocations: the frame's payload storage grows
// once and is overwritten per frame.
type FrameReader struct {
	r   io.Reader
	hdr [frameHeaderLen]byte
}

// NewFrameReader returns a reader decoding from r (wrap the connection
// in a bufio.Reader first — the reader issues small header reads).
func NewFrameReader(r io.Reader) *FrameReader {
	fr := &FrameReader{}
	fr.Reset(r)
	return fr
}

// Reset points the reader at a new stream.
func (fr *FrameReader) Reset(r io.Reader) { fr.r = r }

// ReadInto decodes the next frame into f, reusing f's payload storage.
// On error f is left in an undefined state and must not be relayed.
func (fr *FrameReader) ReadInto(f *Frame) error {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		return err
	}
	f.Type = FrameType(fr.hdr[0])
	f.StreamID = binary.BigEndian.Uint32(fr.hdr[1:5])
	n := binary.BigEndian.Uint32(fr.hdr[5:9])
	if n > maxFramePayload {
		return ErrFrameTooLarge
	}
	if n == 0 {
		f.Payload = nil
		return nil
	}
	buf := f.grow(int(n))
	_, err := io.ReadFull(fr.r, buf)
	return err
}

// maxEncoderRetain caps the batch buffer capacity an encoder keeps
// across flushes, mirroring maxPooledPayload for frames.
const maxEncoderRetain = 128 * 1024

// FrameEncoder serializes frames into one reusable buffer so a burst
// of frames — a chunked Stream.Write, an egress pump tick — reaches
// the connection in a single write instead of two writes per frame.
// Append batches; Flush hands the batch to the writer. The encoder is
// not safe for concurrent use; tunnel writers guard it with the
// tunnel's write mutex.
type FrameEncoder struct {
	w   io.Writer
	buf []byte
}

// NewFrameEncoder returns an encoder writing to w.
func NewFrameEncoder(w io.Writer) *FrameEncoder {
	e := &FrameEncoder{}
	e.Reset(w)
	return e
}

// Reset points the encoder at a new writer and drops any pending batch.
func (e *FrameEncoder) Reset(w io.Writer) {
	e.w = w
	e.buf = e.buf[:0]
}

// Append serializes f into the pending batch without writing.
func (e *FrameEncoder) Append(f *Frame) error {
	if len(f.Payload) > maxFramePayload {
		return ErrFrameTooLarge
	}
	e.buf = append(e.buf, byte(f.Type))
	e.buf = binary.BigEndian.AppendUint32(e.buf, f.StreamID)
	e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(len(f.Payload)))
	e.buf = append(e.buf, f.Payload...)
	return nil
}

// Buffered reports the pending batch size in bytes.
func (e *FrameEncoder) Buffered() int { return len(e.buf) }

// Flush writes the pending batch in one call and retains the buffer
// (up to maxEncoderRetain) for the next batch.
func (e *FrameEncoder) Flush() error {
	if len(e.buf) == 0 {
		return nil
	}
	_, err := e.w.Write(e.buf)
	if cap(e.buf) > maxEncoderRetain {
		e.buf = nil
	} else {
		e.buf = e.buf[:0]
	}
	return err
}

// WriteFrame appends f and flushes: the frame reaches the connection
// in one write. Use Append+Flush to batch several frames per write.
func (e *FrameEncoder) WriteFrame(f *Frame) error {
	if err := e.Append(f); err != nil {
		return err
	}
	return e.Flush()
}
