package aspop

import (
	"testing"

	"github.com/relay-networks/privaterelay/internal/bgp"
)

func TestSetAndPopulation(t *testing.T) {
	d := New()
	d.Set(714, 1_000_000)
	if got := d.Population(714); got != 1_000_000 {
		t.Fatalf("Population = %d", got)
	}
	if got := d.Population(999); got != 0 {
		t.Fatalf("unknown AS population = %d, want 0", got)
	}
	d.Set(714, 5)
	if got := d.Population(714); got != 5 {
		t.Fatalf("overwrite failed: %d", got)
	}
}

func TestTotalOfAndLen(t *testing.T) {
	d := New()
	d.Set(1, 10)
	d.Set(2, 20)
	d.Set(3, 30)
	if got := d.TotalOf([]bgp.ASN{1, 3}); got != 40 {
		t.Fatalf("TotalOf = %d", got)
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d", d.Len())
	}
	asns := d.ASNs()
	if len(asns) != 3 || asns[0] != 1 || asns[2] != 3 {
		t.Fatalf("ASNs = %v", asns)
	}
}

func TestAssignZipfExactTotal(t *testing.T) {
	d := New()
	ases := make([]bgp.ASN, 100)
	for i := range ases {
		ases[i] = bgp.ASN(64512 + i)
	}
	const total = 994_000_000
	d.AssignZipf(ases, total, "akamai-only")
	if got := d.TotalOf(ases); got != total {
		t.Fatalf("total = %d, want %d", got, total)
	}
}

func TestAssignZipfHeavyTail(t *testing.T) {
	d := New()
	ases := make([]bgp.ASN, 1000)
	for i := range ases {
		ases[i] = bgp.ASN(100 + i)
	}
	d.AssignZipf(ases, 1_000_000_000, "tail")
	// Top AS should hold far more than a uniform share (1M each).
	var max int64
	for _, as := range ases {
		if p := d.Population(as); p > max {
			max = p
		}
	}
	if max < 10_000_000 {
		t.Fatalf("largest AS holds %d users; expected a heavy tail", max)
	}
}

func TestAssignZipfDeterministic(t *testing.T) {
	mk := func() *Dataset {
		d := New()
		ases := []bgp.ASN{10, 20, 30, 40, 50}
		d.AssignZipf(ases, 12345, "salt")
		return d
	}
	a, b := mk(), mk()
	for _, as := range []bgp.ASN{10, 20, 30, 40, 50} {
		if a.Population(as) != b.Population(as) {
			t.Fatalf("AS%d differs between runs", as)
		}
	}
	// Different salt must rank differently for at least one AS.
	c := New()
	c.AssignZipf([]bgp.ASN{10, 20, 30, 40, 50}, 12345, "other")
	same := true
	for _, as := range []bgp.ASN{10, 20, 30, 40, 50} {
		if a.Population(as) != c.Population(as) {
			same = false
		}
	}
	if same {
		t.Fatal("salt has no effect on ranking")
	}
}

func TestAssignZipfDegenerateInputs(t *testing.T) {
	d := New()
	d.AssignZipf(nil, 100, "x")
	d.AssignZipf([]bgp.ASN{1}, 0, "x")
	if d.Len() != 0 {
		t.Fatal("degenerate inputs should assign nothing")
	}
	d.AssignZipf([]bgp.ASN{7}, 99, "x")
	if d.Population(7) != 99 {
		t.Fatalf("single AS gets full total: %d", d.Population(7))
	}
}
