// Package aspop models the APNIC "visible ASN customer population"
// dataset the paper joins against its April ECS scan (Table 2). The
// dataset maps an origin AS to an estimated number of Internet users.
//
// Populations across ASes are famously heavy-tailed; the synthetic
// assigner distributes a country- or group-level total across member ASes
// with a Zipf-like law so that aggregate joins behave like the real data.
package aspop

import (
	"sort"
	"sync"

	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/iputil"
)

// Dataset maps ASNs to estimated user populations.
type Dataset struct {
	mu  sync.RWMutex
	pop map[bgp.ASN]int64
}

// New returns an empty dataset.
func New() *Dataset {
	return &Dataset{pop: make(map[bgp.ASN]int64)}
}

// Set records the population of as, replacing any previous value.
func (d *Dataset) Set(as bgp.ASN, population int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.pop[as] = population
}

// Population returns the estimated user population of as (0 if unknown).
func (d *Dataset) Population(as bgp.ASN) int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.pop[as]
}

// TotalOf sums the population of the given ASes.
func (d *Dataset) TotalOf(ases []bgp.ASN) int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var sum int64
	for _, as := range ases {
		sum += d.pop[as]
	}
	return sum
}

// Len returns the number of ASes with a recorded population.
func (d *Dataset) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.pop)
}

// ASNs returns all ASes in the dataset, sorted ascending.
func (d *Dataset) ASNs() []bgp.ASN {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]bgp.ASN, 0, len(d.pop))
	for as := range d.pop {
		out = append(out, as)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AssignZipf distributes total users across the given ASes following a
// Zipf-like rank distribution (weight ∝ 1/rank). Ranks are assigned by a
// deterministic shuffle keyed on salt so that re-running with the same
// inputs reproduces identical populations. The per-AS values are rounded
// so they sum exactly to total.
func (d *Dataset) AssignZipf(ases []bgp.ASN, total int64, salt string) {
	n := len(ases)
	if n == 0 || total <= 0 {
		return
	}
	// Deterministic rank order: sort by hash of (salt, ASN).
	ranked := append([]bgp.ASN(nil), ases...)
	sort.Slice(ranked, func(i, j int) bool {
		hi := iputil.Mix(uint64(ranked[i]), iputil.HashString(salt))
		hj := iputil.Mix(uint64(ranked[j]), iputil.HashString(salt))
		if hi != hj {
			return hi < hj
		}
		return ranked[i] < ranked[j]
	})
	// Harmonic normalization.
	var hsum float64
	for r := 1; r <= n; r++ {
		hsum += 1 / float64(r)
	}
	var assigned int64
	d.mu.Lock()
	defer d.mu.Unlock()
	for r, as := range ranked {
		share := int64(float64(total) / hsum / float64(r+1))
		d.pop[as] += share
		assigned += share
	}
	// Give rounding remainder to the top-ranked AS so totals are exact.
	d.pop[ranked[0]] += total - assigned
}
