package relay

import (
	"fmt"
	"net"
	"net/netip"
	"sync"

	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/masque"
	"github.com/relay-networks/privaterelay/internal/netsim"
)

// Directory maps simulated relay addresses to real loopback listeners.
// It plays the role of the routing fabric: a client that resolved a
// simulated ingress address asks the directory where to actually connect.
type Directory struct {
	mu sync.RWMutex
	m  map[netip.Addr]string
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{m: make(map[netip.Addr]string)}
}

// Register maps a simulated address to a listener's "host:port".
func (d *Directory) Register(sim netip.Addr, real string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.m[sim] = real
}

// RegisterAll maps many simulated addresses to one listener.
func (d *Directory) RegisterAll(sims []netip.Addr, real string) {
	for _, a := range sims {
		d.Register(a, real)
	}
}

// Resolve returns the real endpoint for a simulated address.
func (d *Directory) Resolve(sim netip.Addr) (string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	real, ok := d.m[sim]
	return real, ok
}

// Service is a running Private Relay instance on loopback: one ingress
// listener standing in for whichever ingress address the client resolved,
// plus one egress listener per eligible operator, each rotating through
// the client location's address pool.
type Service struct {
	Deployment *Deployment
	Directory  *Directory
	Issuer     *masque.TokenIssuer
	// EgressAddrOf maps operator → the advertised egress endpoint.
	EgressAddrOf map[bgp.ASN]string
	// IngressEndpoint is the real ingress listener address.
	IngressEndpoint string

	ingress *masque.Ingress
	egress  map[bgp.ASN]*masque.Egress
	lns     []net.Listener
}

// ServiceConfig tunes StartService.
type ServiceConfig struct {
	// Client is the simulated client address the service is provisioned
	// for (egress pools are location-dependent).
	Client netip.Addr
	// Month selects the ingress fleet to register in the directory.
	Month bgp.Month
	// Rotation overrides the per-operator rotation policy; nil uses
	// PerConnectionRotation over the location pool (the real behaviour).
	Rotation func(pool []netip.Addr) masque.RotationPolicy
	// Seed feeds rotation determinism.
	Seed uint64
}

// StartService launches the relay on loopback listeners and registers all
// simulated ingress addresses of the month (both planes, v4) in the
// directory. Close must be called to release listeners.
func StartService(dep *Deployment, cfg ServiceConfig) (*Service, error) {
	svc := &Service{
		Deployment:   dep,
		Directory:    NewDirectory(),
		Issuer:       masque.NewTokenIssuer("relay-service-secret", 100),
		EgressAddrOf: make(map[bgp.ASN]string),
		egress:       make(map[bgp.ASN]*masque.Egress),
	}
	rotation := cfg.Rotation
	if rotation == nil {
		rotation = func(pool []netip.Addr) masque.RotationPolicy {
			return &masque.PerConnectionRotation{Pool: pool, Seed: cfg.Seed}
		}
	}

	// One egress listener per operator present at the client location.
	for _, as := range dep.OperatorsAt(cfg.Client) {
		pool := dep.EgressPool(cfg.Client, as)
		if len(pool) == 0 {
			continue
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			svc.Close()
			return nil, fmt.Errorf("relay: egress listener: %w", err)
		}
		eg := &masque.Egress{
			ID:       masque.EgressIDForAddr(ln.Addr().String()),
			Rotation: rotation(pool),
		}
		go eg.Serve(ln)
		svc.lns = append(svc.lns, ln)
		svc.egress[as] = eg
		svc.EgressAddrOf[as] = ln.Addr().String()
	}

	// A single ingress listener stands in for every simulated ingress
	// address; the directory maps them all here.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		svc.Close()
		return nil, fmt.Errorf("relay: ingress listener: %w", err)
	}
	svc.ingress = &masque.Ingress{Validator: svc.Issuer}
	go svc.ingress.Serve(ln)
	svc.lns = append(svc.lns, ln)
	svc.IngressEndpoint = ln.Addr().String()

	for _, proto := range []netsim.Proto{netsim.ProtoDefault, netsim.ProtoFallback} {
		for _, as := range []bgp.ASN{netsim.ASApple, netsim.ASAkamaiPR} {
			fleet := dep.World.IngressFleet(as, cfg.Month, proto, netsim.FamilyV4, 0)
			svc.Directory.RegisterAll(fleet, svc.IngressEndpoint)
		}
	}
	return svc, nil
}

// IngressRecords exposes the ingress connection log (client/egress pairs).
func (s *Service) IngressRecords() []masque.ConnRecord {
	if s.ingress == nil {
		return nil
	}
	return s.ingress.Records()
}

// Close shuts every listener down.
func (s *Service) Close() {
	for _, ln := range s.lns {
		ln.Close()
	}
}
