// Package relay assembles the full iCloud Private Relay deployment from
// the substrates: the world's ingress fleets, the egress list's address
// pools, operator selection at a client location, and a Device type
// modeling the macOS client the paper measured from (§3, §4.3, App. B).
package relay

import (
	"net/netip"
	"sort"

	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/egress"
	"github.com/relay-networks/privaterelay/internal/geo"
	"github.com/relay-networks/privaterelay/internal/iputil"
	"github.com/relay-networks/privaterelay/internal/netsim"
)

// EgressOperators lists the ASes operating egress relays.
var EgressOperators = []bgp.ASN{netsim.ASAkamaiPR, netsim.ASAkamaiEdge, netsim.ASCloudflare, netsim.ASFastly}

// Deployment joins a world with an egress list and answers placement
// questions: which operators serve a location, and with which addresses.
type Deployment struct {
	World *netsim.World
	List  *egress.List

	// byOpCC indexes IPv4 egress entries per (operator, country).
	byOpCC map[opCC][]egress.Entry
	geoDB  *geo.DB
}

type opCC struct {
	as bgp.ASN
	cc string
}

// NewDeployment indexes the egress list against the world.
func NewDeployment(w *netsim.World, list *egress.List) *Deployment {
	d := &Deployment{
		World:  w,
		List:   list,
		byOpCC: make(map[opCC][]egress.Entry),
		geoDB:  list.GeoDB(),
	}
	for _, a := range egress.Attribute(list, w.Table) {
		if a.AS == 0 || !a.Prefix.Addr().Is4() {
			continue
		}
		key := opCC{a.AS, a.CC}
		d.byOpCC[key] = append(d.byOpCC[key], a.Entry)
	}
	for key := range d.byOpCC {
		es := d.byOpCC[key]
		sort.Slice(es, func(i, j int) bool {
			return es[i].Prefix.Addr().Compare(es[j].Prefix.Addr()) < 0
		})
	}
	return d
}

// GeoDB returns the MaxMind-style database derived from the egress list.
func (d *Deployment) GeoDB() *geo.DB { return d.geoDB }

// ClientCountry returns the country the service would assign to a client
// address: deterministic per client AS, biased toward the big markets.
func (d *Deployment) ClientCountry(client netip.Addr) string {
	as, ok := d.World.Table.Origin(client)
	if !ok {
		return "US"
	}
	h := iputil.Mix(uint64(as), 0xC0FFEE)
	// Client population skews to large markets, mirroring the egress bias.
	switch {
	case h%100 < 45:
		return "US"
	case h%100 < 55:
		return "DE"
	default:
		big := []string{"GB", "FR", "NL", "CA", "JP", "AU", "BR", "IN", "IT", "ES"}
		return big[h/100%uint64(len(big))]
	}
}

// ClientGeohash returns the coarse geohash the client forwards to the
// egress in region-preserving mode: precision 4 (~±20 km cell).
func (d *Deployment) ClientGeohash(client netip.Addr) string {
	cc := d.ClientCountry(client)
	lat, lon := geo.Centroid(cc)
	return geo.EncodeGeohash(lat, lon, 4)
}

// OperatorsAt returns the egress operators with enough presence near the
// client to be eligible. AkamaiPR and Cloudflare are near-ubiquitous;
// Fastly's sparse deployment (the paper's vantage never saw it) and
// AkamaiEdge appear only for a minority of locations.
func (d *Deployment) OperatorsAt(client netip.Addr) []bgp.ASN {
	out := []bgp.ASN{netsim.ASAkamaiPR, netsim.ASCloudflare}
	as, ok := d.World.Table.Origin(client)
	if !ok {
		return out
	}
	h := iputil.Mix(uint64(as), 0xFA5711)
	if h%5 == 0 {
		out = append(out, netsim.ASFastly)
	}
	if h%7 == 0 {
		out = append(out, netsim.ASAkamaiEdge)
	}
	return out
}

// SelectOperator picks the egress operator for the seq-th tunnel from a
// client. Selection is sticky with occasional switch windows, producing
// the Figure 3 pattern: long stable runs with a handful of grouped
// operator changes over a scan day.
func (d *Deployment) SelectOperator(client netip.Addr, seq uint64) bgp.ASN {
	ops := d.OperatorsAt(client)
	base := ops[iputil.Mix(iputil.HashAddr(client), 0xBA5E)%uint64(len(ops))]
	if len(ops) == 1 {
		return base
	}
	// Switch window: one 4-tunnel burst out of every 64 tunnels flips to
	// another eligible operator.
	if (seq/4)%16 == 7 {
		alt := ops[(iputil.Mix(iputil.HashAddr(client), seq/64)+1)%uint64(len(ops))]
		if alt != base {
			return alt
		}
		for _, op := range ops {
			if op != base {
				return op
			}
		}
	}
	return base
}

// EgressPool returns the small set of concrete egress addresses the
// operator uses for a client location: the paper observed six addresses
// drawn from four subnets over 48 hours (§4.3). Addresses come from the
// operator's egress subnets representing the client's country.
func (d *Deployment) EgressPool(client netip.Addr, as bgp.ASN) []netip.Addr {
	cc := d.ClientCountry(client)
	entries := d.byOpCC[opCC{as, cc}]
	if len(entries) == 0 {
		entries = d.byOpCC[opCC{as, "US"}] // fallback market
	}
	if len(entries) == 0 {
		return nil
	}
	const (
		subnetCount = 4
		poolSize    = 6
	)
	key := iputil.Mix(iputil.HashAddr(client), uint64(as))
	// Pick at least four distinct subnets; operators whose egress subnets
	// are tiny (Cloudflare lists /32s) contribute more subnets until the
	// combined capacity covers the pool.
	subnets := make([]egress.Entry, 0, subnetCount)
	seen := map[netip.Prefix]bool{}
	capacity := uint64(0)
	for k := 0; (len(subnets) < subnetCount || capacity < poolSize) && k < 16*poolSize; k++ {
		e := entries[iputil.Mix(key, uint64(k))%uint64(len(entries))]
		if !seen[e.Prefix] {
			seen[e.Prefix] = true
			subnets = append(subnets, e)
			capacity += iputil.AddrCount(e.Prefix)
		}
		if len(subnets) >= len(entries) {
			break
		}
	}
	// Draw six addresses round-robin across the subnets.
	pool := make([]netip.Addr, 0, poolSize)
	used := map[netip.Addr]bool{}
	for i := 0; len(pool) < poolSize && i < 8*poolSize; i++ {
		e := subnets[i%len(subnets)]
		n := iputil.AddrCount(e.Prefix)
		addr := iputil.AddrAtIndex(e.Prefix, iputil.Mix(key, 0x100+uint64(i))%n)
		if !used[addr] {
			used[addr] = true
			pool = append(pool, addr)
		}
	}
	return pool
}

// IngressFor resolves the ingress addresses a client would receive for a
// month and plane, exactly as the authoritative server would answer.
func (d *Deployment) IngressFor(client netip.Addr, month bgp.Month, proto netsim.Proto) []netip.Addr {
	client = iputil.Canonical(client)
	if !client.Is4() {
		return nil
	}
	return d.World.IngressAnswer(iputil.Slash24(client), month, proto)
}

// BackupConnectionTarget models the Appendix B observation: shortly after
// connecting, the client opens an additional QUIC connection to another
// address in the same prefix (v4) or AS as the configured ingress —
// assumed to be a control/management channel.
func (d *Deployment) BackupConnectionTarget(ingress netip.Addr) (netip.Addr, bool) {
	route, _, ok := d.World.Table.Route(ingress)
	if !ok {
		return netip.Addr{}, false
	}
	n := iputil.AddrCount(route)
	idx := iputil.Mix(iputil.HashAddr(ingress), 0xBAC) % n
	addr := iputil.AddrAtIndex(route, idx)
	if addr == ingress {
		addr = iputil.AddrAtIndex(route, (idx+1)%n)
	}
	return addr, true
}
