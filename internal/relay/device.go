package relay

import (
	"context"
	"errors"
	"fmt"
	"net/netip"

	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/dnsserver"
	"github.com/relay-networks/privaterelay/internal/dnswire"
	"github.com/relay-networks/privaterelay/internal/iputil"
	"github.com/relay-networks/privaterelay/internal/masque"
	"github.com/relay-networks/privaterelay/internal/netsim"
	"github.com/relay-networks/privaterelay/internal/resolver"
)

// ErrServiceBlocked is returned when the relay domains cannot be resolved
// — the documented way to block the service (§2).
var ErrServiceBlocked = errors.New("relay: service domains not resolvable")

// Device models a macOS/iOS client with iCloud Private Relay enabled:
// it resolves the service domains through its configured resolver,
// connects to the resolved ingress, and tunnels requests to rotating
// egress addresses.
type Device struct {
	// Client is the device's simulated public address.
	Client netip.Addr
	// Resolver is the device's configured DNS resolver. Pointing it at a
	// local unbound with a custom zone forces a chosen ingress (§3).
	Resolver *resolver.Resolver
	// Service is the running relay deployment.
	Service *Service
	// Account and Day feed the token issuer's fraud-prevention quota.
	Account string
	Day     string

	seq uint64
}

// Tunnel is one established relay connection.
type Tunnel struct {
	*masque.Client
	// IngressAddr is the simulated ingress address the device resolved.
	IngressAddr netip.Addr
	// IngressAS attributes the ingress address.
	IngressAS bgp.ASN
	// Operator is the egress operator serving this tunnel.
	Operator bgp.ASN
	// Plane records whether the QUIC service or the TCP fallback is used.
	Plane netsim.Proto
	// BackupTarget is the additional connection target observed in
	// Appendix B: an address in the same prefix as the ingress.
	BackupTarget netip.Addr
}

// Connect establishes a fresh tunnel: DNS resolution (default plane with
// TCP-fallback), directory lookup, operator selection, token issuance and
// the MASQUE handshake.
func (d *Device) Connect(ctx context.Context) (*Tunnel, error) {
	plane := netsim.ProtoDefault
	addrs, err := d.resolveIngress(ctx, dnsserver.MaskDomain)
	if err != nil || len(addrs) == 0 {
		// QUIC plane unusable: fall back to HTTP/2 over TCP (§2).
		plane = netsim.ProtoFallback
		addrs, err = d.resolveIngress(ctx, dnsserver.MaskH2Domain)
		if err != nil {
			return nil, err
		}
		if len(addrs) == 0 {
			return nil, ErrServiceBlocked
		}
	}
	// Devices spread load over the answer set; pick deterministically by
	// connection sequence.
	ingressSim := addrs[iputil.Mix(iputil.HashAddr(d.Client), d.seq)%uint64(len(addrs))]
	real, ok := d.Service.Directory.Resolve(ingressSim)
	if !ok {
		return nil, fmt.Errorf("relay: resolved ingress %v not in directory", ingressSim)
	}

	dep := d.Service.Deployment
	op := dep.SelectOperator(d.Client, d.seq)
	egressReal, ok := d.Service.EgressAddrOf[op]
	if !ok {
		// Operator has no presence here after all; use the first one.
		for as, addr := range d.Service.EgressAddrOf {
			op, egressReal = as, addr
			break
		}
	}
	d.seq++

	token, err := d.Service.Issuer.Issue(d.Account, d.Day)
	if err != nil {
		return nil, fmt.Errorf("relay: token issuance: %w", err)
	}

	mc := &masque.Client{
		IngressAddr: real,
		EgressAddr:  egressReal,
		Token:       token,
		Geohash:     dep.ClientGeohash(d.Client),
	}
	if err := mc.Dial(); err != nil {
		return nil, err
	}

	ingressAS, _ := dep.World.Table.Origin(ingressSim)
	backup, _ := dep.BackupConnectionTarget(ingressSim)
	return &Tunnel{
		Client:       mc,
		IngressAddr:  ingressSim,
		IngressAS:    ingressAS,
		Operator:     op,
		Plane:        plane,
		BackupTarget: backup,
	}, nil
}

// resolveIngress resolves one service domain, distinguishing blocking
// responses from transport errors.
func (d *Device) resolveIngress(ctx context.Context, domain string) ([]netip.Addr, error) {
	addrs, rcode, err := d.Resolver.ResolveA(ctx, domain, d.Client)
	if err != nil {
		if errors.Is(err, dnsserver.ErrTimeout) {
			return nil, ErrServiceBlocked
		}
		return nil, err
	}
	if rcode != dnswire.RCodeNoError {
		return nil, ErrServiceBlocked
	}
	return addrs, nil
}

// ODoHResolver returns the DNS-over-HTTPS resolver the device uses while
// the relay is active — Cloudflare's public resolver, reached through the
// relay itself rather than the locally configured resolver (Appendix B).
func (d *Device) ODoHResolver() resolver.PublicResolver {
	for _, pr := range resolver.PublicResolvers {
		if pr.Name == "Cloudflare1111" {
			return pr
		}
	}
	return resolver.PublicResolvers[0]
}

// ODoHQueryECS returns the ECS prefix the client attaches to relay-side
// DNS queries: the /24 (or /64) around its current egress address, so the
// authoritative side optimizes for the egress, not the client (App. B).
func ODoHQueryECS(egressAddr netip.Addr) netip.Prefix {
	egressAddr = iputil.Canonical(egressAddr)
	if egressAddr.Is4() {
		return iputil.Slash24(egressAddr)
	}
	return iputil.Slash64(egressAddr)
}
