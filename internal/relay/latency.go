package relay

import (
	"net/netip"
	"time"

	"github.com/relay-networks/privaterelay/internal/geo"
	"github.com/relay-networks/privaterelay/internal/iputil"
	"github.com/relay-networks/privaterelay/internal/netsim"
)

// Latency model — the paper's future-work question (iii): "How does the
// service impact the user's QoE? Apple claims the impact is low."
//
// RTTs derive from great-circle propagation (≈1 ms RTT per 100 km of
// fiber) plus fixed per-endpoint access latency. The ingress→egress leg
// rides the operators' optimized backbones (Cloudflare's Argo et al.,
// §2), modeled as a constant speedup factor — the mechanism the paper
// cites as potentially equalizing the two-hop detour.

const (
	// msPerRTT100km approximates light-in-fiber round-trip time.
	msPerRTT100km = 1.0
	// accessLatency is the fixed per-endpoint last-mile cost (RTT share).
	accessLatency = 4 * time.Millisecond
	// backboneFactor scales the inter-relay leg (Argo-style routing).
	backboneFactor = 0.75
)

// locateAddr places an address on the globe: egress addresses come from
// the egress list's geolocation, clients from their assigned country,
// and ingress relays from a deterministic site near the operator's
// footprint. Unknown addresses default to the US centroid.
func (d *Deployment) locateAddr(addr netip.Addr) (lat, lon float64) {
	if loc, ok := d.geoDB.Lookup(addr); ok {
		return loc.Lat, loc.Lon
	}
	if as, ok := d.World.Table.Origin(addr); ok {
		if netsim.IsServiceAS(as) {
			// Relay site: stable pseudo-location per routed prefix,
			// drawn from the big-market city set.
			route, _, _ := d.World.Table.Route(addr)
			markets := []string{"US", "US", "DE", "GB", "FR", "NL", "JP", "SG"}
			cc := markets[iputil.HashPrefix(route)%uint64(len(markets))]
			l := geo.CityLocation(cc, int(iputil.HashPrefix(route)%8))
			return l.Lat, l.Lon
		}
		cc := d.ClientCountry(addr)
		return geo.Centroid(cc)
	}
	return geo.Centroid("US")
}

// RTT estimates the round-trip time between two addresses.
func (d *Deployment) RTT(a, b netip.Addr) time.Duration {
	lat1, lon1 := d.locateAddr(a)
	lat2, lon2 := d.locateAddr(b)
	km := geo.DistanceKm(lat1, lon1, lat2, lon2)
	prop := time.Duration(km / 100 * msPerRTT100km * float64(time.Millisecond))
	return prop + 2*accessLatency
}

// PathRTT describes one request's latency budget.
type PathRTT struct {
	Direct time.Duration // client → target
	// Relay legs.
	ClientToIngress time.Duration
	IngressToEgress time.Duration // backbone-accelerated
	EgressToTarget  time.Duration
}

// Relay returns the total relayed round-trip time.
func (p PathRTT) Relay() time.Duration {
	return p.ClientToIngress + p.IngressToEgress + p.EgressToTarget
}

// OverheadRatio returns relay RTT / direct RTT.
func (p PathRTT) OverheadRatio() float64 {
	if p.Direct == 0 {
		return 0
	}
	return float64(p.Relay()) / float64(p.Direct)
}

// QoEPath computes direct-vs-relay latency for one request: the client
// reaches target either directly or via (ingress, egress). The egress is
// taken from the client's pool for the operator, so it sits near the
// client's represented location — the design property that keeps relay
// overhead low.
func (d *Deployment) QoEPath(client, ingress, egressAddr, target netip.Addr) PathRTT {
	p := PathRTT{
		Direct:          d.RTT(client, target),
		ClientToIngress: d.RTT(client, ingress),
		EgressToTarget:  d.RTT(egressAddr, target),
	}
	inter := d.RTT(ingress, egressAddr)
	p.IngressToEgress = time.Duration(float64(inter) * backboneFactor)
	return p
}
