package relay

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/dnsserver"
	"github.com/relay-networks/privaterelay/internal/dnswire"
	"github.com/relay-networks/privaterelay/internal/egress"
	"github.com/relay-networks/privaterelay/internal/iputil"
	"github.com/relay-networks/privaterelay/internal/masque"
	"github.com/relay-networks/privaterelay/internal/netsim"
	"github.com/relay-networks/privaterelay/internal/resolver"
)

var (
	sharedWorld *netsim.World
	sharedDep   *Deployment
	sharedOnce  sync.Once
)

func testDeployment(t testing.TB) *Deployment {
	t.Helper()
	sharedOnce.Do(func() {
		sharedWorld = netsim.NewWorld(netsim.Params{Seed: 4, Scale: 0.0005})
		sharedDep = NewDeployment(sharedWorld, egress.Generate(sharedWorld, 4))
	})
	return sharedDep
}

func clientAddr(dep *Deployment, i int) netip.Addr {
	return dep.World.ClientASes[i].Prefixes[0].Addr().Next()
}

func TestClientCountryDeterministic(t *testing.T) {
	dep := testDeployment(t)
	c := clientAddr(dep, 0)
	if dep.ClientCountry(c) != dep.ClientCountry(c) {
		t.Fatal("country not deterministic")
	}
	counts := map[string]int{}
	for i := range dep.World.ClientASes {
		counts[dep.ClientCountry(clientAddr(dep, i))]++
	}
	if counts["US"] == 0 {
		t.Fatal("no US clients at all")
	}
}

func TestClientGeohashPrecision(t *testing.T) {
	dep := testDeployment(t)
	gh := dep.ClientGeohash(clientAddr(dep, 0))
	if len(gh) != 4 {
		t.Fatalf("geohash %q, want precision 4", gh)
	}
}

func TestOperatorsAtAlwaysIncludesBigTwo(t *testing.T) {
	dep := testDeployment(t)
	sawFastly := false
	for i := range dep.World.ClientASes {
		ops := dep.OperatorsAt(clientAddr(dep, i))
		has := map[bgp.ASN]bool{}
		for _, op := range ops {
			has[op] = true
		}
		if !has[netsim.ASAkamaiPR] || !has[netsim.ASCloudflare] {
			t.Fatalf("client %d misses a ubiquitous operator: %v", i, ops)
		}
		if has[netsim.ASFastly] {
			sawFastly = true
		}
	}
	if !sawFastly {
		t.Fatal("Fastly never present anywhere — should be sparse, not absent")
	}
}

func TestSelectOperatorStickyWithBursts(t *testing.T) {
	dep := testDeployment(t)
	c := clientAddr(dep, 1)
	changes := 0
	prev := dep.SelectOperator(c, 0)
	ops := map[bgp.ASN]bool{prev: true}
	const n = 288 // a day of 5-minute rounds
	for seq := uint64(1); seq < n; seq++ {
		op := dep.SelectOperator(c, seq)
		ops[op] = true
		if op != prev {
			changes++
		}
		prev = op
	}
	if changes == 0 {
		t.Fatal("no operator changes over a scan day; Figure 3 shows a handful")
	}
	if changes > n/4 {
		t.Fatalf("%d operator changes — selection should be mostly sticky", changes)
	}
	if len(ops) < 2 {
		t.Fatal("only one operator ever selected")
	}
}

func TestEgressPoolShape(t *testing.T) {
	dep := testDeployment(t)
	c := clientAddr(dep, 2)
	for _, as := range []bgp.ASN{netsim.ASAkamaiPR, netsim.ASCloudflare} {
		pool := dep.EgressPool(c, as)
		if len(pool) != 6 {
			t.Fatalf("%v pool size = %d, want 6", as, len(pool))
		}
		subnets := map[netip.Prefix]bool{}
		for _, a := range pool {
			if origin, _ := dep.World.Table.Origin(a); origin != as {
				t.Fatalf("pool member %v not in %v", a, as)
			}
			route, _, _ := dep.World.Table.Route(a)
			subnets[route] = true
		}
		if len(subnets) < 2 {
			t.Fatalf("%v pool drawn from %d BGP prefixes; want spread", as, len(subnets))
		}
		// Deterministic.
		again := dep.EgressPool(c, as)
		for i := range pool {
			if pool[i] != again[i] {
				t.Fatal("pool not deterministic")
			}
		}
	}
}

func TestEgressPoolMatchesClientCountryEntries(t *testing.T) {
	dep := testDeployment(t)
	c := clientAddr(dep, 3)
	cc := dep.ClientCountry(c)
	pool := dep.EgressPool(c, netsim.ASCloudflare)
	db := dep.GeoDB()
	for _, a := range pool {
		loc, ok := db.Lookup(a)
		if !ok {
			t.Fatalf("pool member %v not in egress geo db", a)
		}
		if loc.CountryCode != cc {
			t.Fatalf("pool member %v located in %s, client country %s", a, loc.CountryCode, cc)
		}
	}
}

func TestIngressForMatchesWorld(t *testing.T) {
	dep := testDeployment(t)
	c := clientAddr(dep, 0)
	got := dep.IngressFor(c, netsim.MonthApr, netsim.ProtoDefault)
	want := dep.World.IngressAnswer(iputil.Slash24(c), netsim.MonthApr, netsim.ProtoDefault)
	if len(got) != len(want) {
		t.Fatalf("IngressFor = %d addrs, want %d", len(got), len(want))
	}
}

func TestBackupConnectionTargetSamePrefix(t *testing.T) {
	dep := testDeployment(t)
	ing := dep.World.IngressFleet(netsim.ASAkamaiPR, netsim.MonthApr, netsim.ProtoDefault, netsim.FamilyV4, 0)[0]
	backup, ok := dep.BackupConnectionTarget(ing)
	if !ok {
		t.Fatal("no backup target")
	}
	if backup == ing {
		t.Fatal("backup target equals ingress")
	}
	r1, _, _ := dep.World.Table.Route(ing)
	r2, _, _ := dep.World.Table.Route(backup)
	if r1 != r2 {
		t.Fatalf("backup %v not in ingress prefix %v", backup, r1)
	}
}

func TestDirectory(t *testing.T) {
	dir := NewDirectory()
	a := netip.MustParseAddr("17.0.0.1")
	dir.Register(a, "127.0.0.1:1000")
	if got, ok := dir.Resolve(a); !ok || got != "127.0.0.1:1000" {
		t.Fatalf("Resolve = %q,%v", got, ok)
	}
	if _, ok := dir.Resolve(netip.MustParseAddr("17.0.0.2")); ok {
		t.Fatal("unregistered address resolved")
	}
}

// targetServer is a preamble-aware web server standing in for the scan's
// own web server: it logs requester addresses and answers requests.
func targetServer(t testing.TB) (addr string, requesters func() []netip.Addr, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var seen []netip.Addr
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func(c net.Conn) {
				defer wg.Done()
				defer c.Close()
				br := bufio.NewReader(c)
				src, err := masque.ReadSourcePreamble(br)
				if err != nil {
					return
				}
				mu.Lock()
				seen = append(seen, src)
				mu.Unlock()
				line, err := br.ReadString('\n')
				if err != nil {
					return
				}
				fmt.Fprintf(c, "HTTP/1.1 200 OK\n\nsrc=%s req=%s", src, strings.TrimSpace(line))
			}(c)
		}
	}()
	return ln.Addr().String(),
		func() []netip.Addr {
			mu.Lock()
			defer mu.Unlock()
			return append([]netip.Addr(nil), seen...)
		},
		func() { ln.Close(); wg.Wait() }
}

func startTestService(t testing.TB, dep *Deployment, client netip.Addr) (*Service, *Device) {
	t.Helper()
	svc, err := StartService(dep, ServiceConfig{Client: client, Month: netsim.MonthApr, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)

	auth := dnsserver.NewAuthServer(dep.World, netsim.MonthApr, nil)
	upstream := &dnsserver.MemTransport{Handler: auth, Source: netip.MustParseAddr("9.9.9.9")}
	res := resolver.New(netip.MustParseAddr("9.9.9.9"), upstream)
	return svc, &Device{
		Client:   client,
		Resolver: res,
		Service:  svc,
		Account:  "tester",
		Day:      "2022-05-11",
	}
}

func TestDeviceEndToEnd(t *testing.T) {
	dep := testDeployment(t)
	client := clientAddr(dep, 0)
	_, dev := startTestService(t, dep, client)
	target, requesters, stopTarget := targetServer(t)
	defer stopTarget()

	tun, err := dev.Connect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer tun.Close()

	if tun.Plane != netsim.ProtoDefault {
		t.Fatalf("plane = %v", tun.Plane)
	}
	if tun.IngressAS != netsim.ASApple && tun.IngressAS != netsim.ASAkamaiPR {
		t.Fatalf("ingress AS = %v", tun.IngressAS)
	}
	if !tun.BackupTarget.IsValid() {
		t.Fatal("no backup connection target")
	}

	s, egAddr, err := tun.Open(target)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(s, "GET /probe\n")
	buf := make([]byte, 256)
	n, err := s.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf[:n]), "req=GET /probe") {
		t.Fatalf("response: %q", buf[:n])
	}
	s.Close()

	// The web server observed the rotating egress address, not the client.
	seen := requesters()
	if len(seen) != 1 || seen[0] != egAddr {
		t.Fatalf("target saw %v, tunnel reported %v", seen, egAddr)
	}
	if seen[0] == client {
		t.Fatal("client address leaked to target")
	}
	if op, _ := dep.World.Table.Origin(egAddr); op != tun.Operator {
		t.Fatalf("egress %v attributed to %v, tunnel says %v", egAddr, op, tun.Operator)
	}
}

func TestDeviceEgressRotationAcrossRequests(t *testing.T) {
	dep := testDeployment(t)
	client := clientAddr(dep, 0)
	_, dev := startTestService(t, dep, client)
	target, _, stopTarget := targetServer(t)
	defer stopTarget()

	tun, err := dev.Connect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer tun.Close()

	seen := map[netip.Addr]bool{}
	changes, total := 0, 40
	var prev netip.Addr
	for i := 0; i < total; i++ {
		s, addr, err := tun.Open(target)
		if err != nil {
			t.Fatal(err)
		}
		io.WriteString(s, "GET /\n")
		s.Close()
		seen[addr] = true
		if i > 0 && addr != prev {
			changes++
		}
		prev = addr
	}
	if len(seen) < 3 {
		t.Fatalf("only %d egress addresses over %d requests", len(seen), total)
	}
	if len(seen) > 6 {
		t.Fatalf("%d egress addresses; pool should cap at 6", len(seen))
	}
	if rate := float64(changes) / float64(total-1); rate <= 0.5 {
		t.Fatalf("change rate %.2f too low", rate)
	}
}

func TestDeviceBlockedResolver(t *testing.T) {
	dep := testDeployment(t)
	client := clientAddr(dep, 0)
	_, dev := startTestService(t, dep, client)
	dev.Resolver.Block("icloud.com", resolver.PolicyNXDomain)
	if _, err := dev.Connect(context.Background()); err != ErrServiceBlocked {
		t.Fatalf("blocked connect err = %v", err)
	}
}

func TestDeviceFallbackPlane(t *testing.T) {
	dep := testDeployment(t)
	client := clientAddr(dep, 0)
	_, dev := startTestService(t, dep, client)
	// Block only the QUIC domain: the device must fall back to mask-h2.
	dev.Resolver.Block(dnsserver.MaskDomain, resolver.PolicyNXDomain)
	tun, err := dev.Connect(context.Background())
	if err != nil {
		t.Fatalf("fallback connect: %v", err)
	}
	defer tun.Close()
	if tun.Plane != netsim.ProtoFallback {
		t.Fatalf("plane = %v, want fallback", tun.Plane)
	}
}

func TestDeviceForcedIngress(t *testing.T) {
	dep := testDeployment(t)
	client := clientAddr(dep, 0)
	svc, dev := startTestService(t, dep, client)

	// Force a specific ingress via a local unbound zone (§3 fixed scan).
	forced := dep.World.IngressFleet(netsim.ASAkamaiPR, netsim.MonthApr, netsim.ProtoDefault, netsim.FamilyV4, 0)[7]
	dev.Resolver.AddLocalZone(dnsserver.MaskDomain, []dnswire.Record{{
		Name: dnsserver.MaskDomain, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 60, A: forced,
	}})
	_ = svc

	tun, err := dev.Connect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer tun.Close()
	if tun.IngressAddr != forced {
		t.Fatalf("ingress = %v, want forced %v", tun.IngressAddr, forced)
	}
	if tun.IngressAS != netsim.ASAkamaiPR {
		t.Fatalf("forced ingress AS = %v", tun.IngressAS)
	}
}

func TestDeviceODoH(t *testing.T) {
	dep := testDeployment(t)
	client := clientAddr(dep, 0)
	_, dev := startTestService(t, dep, client)
	pr := dev.ODoHResolver()
	if pr.Name != "Cloudflare1111" {
		t.Fatalf("ODoH resolver = %s", pr.Name)
	}
	ecs := ODoHQueryECS(netip.MustParseAddr("172.224.225.9"))
	if ecs.String() != "172.224.225.0/24" {
		t.Fatalf("ODoH ECS = %v", ecs)
	}
	ecs6 := ODoHQueryECS(netip.MustParseAddr("2a02:26f7:1:2::9"))
	if ecs6.Bits() != 64 {
		t.Fatalf("ODoH v6 ECS = %v", ecs6)
	}
}

func TestDeviceTokenQuotaExhaustion(t *testing.T) {
	dep := testDeployment(t)
	client := clientAddr(dep, 0)
	svc, dev := startTestService(t, dep, client)
	svc.Issuer.DailyLimit = 2
	for i := 0; i < 2; i++ {
		tun, err := dev.Connect(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		tun.Close()
	}
	if _, err := dev.Connect(context.Background()); err == nil {
		t.Fatal("third connect should hit the daily token quota")
	}
}

func TestDistanceBasedRTT(t *testing.T) {
	dep := testDeployment(t)
	client := clientAddr(dep, 0)
	// RTT to self: pure access latency.
	self := dep.RTT(client, client)
	if self <= 0 || self > 20*time.Millisecond {
		t.Fatalf("self RTT = %v", self)
	}
	// Symmetric.
	ing := dep.World.IngressFleet(netsim.ASAkamaiPR, netsim.MonthApr, netsim.ProtoDefault, netsim.FamilyV4, 0)[0]
	if dep.RTT(client, ing) != dep.RTT(ing, client) {
		t.Fatal("RTT not symmetric")
	}
	// Deterministic.
	if dep.RTT(client, ing) != dep.RTT(client, ing) {
		t.Fatal("RTT not deterministic")
	}
}

func TestQoEPathStructure(t *testing.T) {
	dep := testDeployment(t)
	client := clientAddr(dep, 0)
	ingress := dep.IngressFor(client, netsim.MonthApr, netsim.ProtoDefault)[0]
	egressAddr := dep.EgressPool(client, netsim.ASAkamaiPR)[0]
	target := clientAddr(dep, 5) // some remote server

	p := dep.QoEPath(client, ingress, egressAddr, target)
	if p.Direct <= 0 || p.Relay() <= 0 {
		t.Fatalf("degenerate path: %+v", p)
	}
	if p.Relay() < p.Direct {
		// Possible when the backbone shortcut dominates, but the relayed
		// path must still include all three legs.
		if p.ClientToIngress <= 0 || p.IngressToEgress < 0 || p.EgressToTarget <= 0 {
			t.Fatalf("legs: %+v", p)
		}
	}
	if p.OverheadRatio() <= 0 {
		t.Fatalf("overhead ratio = %v", p.OverheadRatio())
	}
}

func TestQoEOverheadModest(t *testing.T) {
	// Across many client/target pairs, the median relay overhead should
	// be bounded (Apple claims low impact; the egress sits near the
	// client's represented location and the middle leg is accelerated).
	dep := testDeployment(t)
	var ratios []float64
	n := len(dep.World.ClientASes)
	for i := 0; i < n; i++ {
		client := clientAddr(dep, i)
		ingList := dep.IngressFor(client, netsim.MonthApr, netsim.ProtoDefault)
		pool := dep.EgressPool(client, netsim.ASAkamaiPR)
		if len(ingList) == 0 || len(pool) == 0 {
			continue
		}
		target := clientAddr(dep, (i+7)%n)
		p := dep.QoEPath(client, ingList[0], pool[0], target)
		ratios = append(ratios, p.OverheadRatio())
	}
	if len(ratios) < 10 {
		t.Fatal("too few samples")
	}
	sort.Float64s(ratios)
	median := ratios[len(ratios)/2]
	if median > 6 {
		t.Fatalf("median relay overhead ×%.1f — model miscalibrated", median)
	}
	if median < 1 {
		t.Logf("relay is faster than direct at the median (×%.2f) — backbone dominates", median)
	}
}
