package relay

import (
	"context"
	"errors"
	"time"

	"github.com/relay-networks/privaterelay/internal/faults"
	"github.com/relay-networks/privaterelay/internal/iputil"
)

// Connector establishes relay tunnels; *Device is the production
// implementation. Scan harnesses wrap it to retry flaky establishment
// or to inject connection failures in tests.
type Connector interface {
	Connect(ctx context.Context) (*Tunnel, error)
}

// ConnectRetry shapes tunnel-establishment retries.
type ConnectRetry struct {
	// Attempts is the total number of tries (default 3).
	Attempts int
	// Backoff is the base delay before a retry, doubling per attempt up
	// to 8×Backoff with jitter in [1/2, 1) of the delay. Zero defaults
	// to 50ms; negative disables backoff sleeps.
	Backoff time.Duration
	// Clock drives the backoff sleeps (nil: wall clock; tests pass a
	// faults.VirtualClock).
	Clock faults.Clock
}

// ConnectWithRetry dials through c, retrying transient establishment
// failures with bounded jittered backoff. ErrServiceBlocked is terminal:
// blocking is a state the operator configured, not a transient fault,
// and retrying it would only hammer the resolver.
func ConnectWithRetry(ctx context.Context, c Connector, r ConnectRetry) (*Tunnel, error) {
	attempts := r.Attempts
	if attempts <= 0 {
		attempts = 3
	}
	backoff := r.Backoff
	if backoff == 0 {
		backoff = 50 * time.Millisecond
	}
	clock := r.Clock
	if clock == nil {
		clock = faults.WallClock{}
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if a > 0 && backoff > 0 {
			d := backoff
			for i := 0; i < a-1 && d < 8*backoff; i++ {
				d *= 2
			}
			if d > 8*backoff {
				d = 8 * backoff
			}
			h := iputil.Mix(0xC0FFEE^uint64(a), uint64(a))
			frac := float64(h>>11) / float64(1<<53)
			if err := clock.Sleep(ctx, d/2+time.Duration(frac*float64(d/2))); err != nil {
				return nil, err
			}
		}
		tun, err := c.Connect(ctx)
		if err == nil {
			return tun, nil
		}
		if errors.Is(err, ErrServiceBlocked) || ctx.Err() != nil {
			return nil, err
		}
		lastErr = err
	}
	return nil, lastErr
}
