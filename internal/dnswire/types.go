// Package dnswire implements the DNS wire format used by the measurement
// toolkit: message header, questions, resource records (A, AAAA, NS, CNAME,
// SOA, TXT, PTR and OPT), domain-name compression, EDNS0, and the EDNS0
// Client Subnet option defined in RFC 7871.
//
// The codec follows the decode/append style popularized by gopacket and
// dnsmessage: parsing never retains references into the input buffer beyond
// the returned structures, and serialization appends to a caller-provided
// slice so buffers can be reused across queries in tight scan loops.
package dnswire

import (
	"errors"
	"fmt"
	"net/netip"
	"strings"
)

// Type is a DNS RR type code.
type Type uint16

// Resource record types used by the toolkit.
const (
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypePTR   Type = 12
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	TypeOPT   Type = 41
	TypeANY   Type = 255
)

// String returns the conventional mnemonic for t.
func (t Type) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypeCNAME:
		return "CNAME"
	case TypeSOA:
		return "SOA"
	case TypePTR:
		return "PTR"
	case TypeTXT:
		return "TXT"
	case TypeAAAA:
		return "AAAA"
	case TypeOPT:
		return "OPT"
	case TypeANY:
		return "ANY"
	}
	return fmt.Sprintf("TYPE%d", uint16(t))
}

// Class is a DNS class code. Only IN is used in practice.
type Class uint16

// DNS classes.
const (
	ClassIN  Class = 1
	ClassANY Class = 255
)

// String returns the mnemonic for c.
func (c Class) String() string {
	switch c {
	case ClassIN:
		return "IN"
	case ClassANY:
		return "ANY"
	}
	return fmt.Sprintf("CLASS%d", uint16(c))
}

// RCode is a DNS response code, including EDNS0-extended values.
type RCode uint16

// Response codes relevant to the blocking study (§4.1 of the paper).
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImp   RCode = 4
	RCodeRefused  RCode = 5
)

// String returns the mnemonic for rc.
func (rc RCode) String() string {
	switch rc {
	case RCodeNoError:
		return "NOERROR"
	case RCodeFormErr:
		return "FORMERR"
	case RCodeServFail:
		return "SERVFAIL"
	case RCodeNXDomain:
		return "NXDOMAIN"
	case RCodeNotImp:
		return "NOTIMP"
	case RCodeRefused:
		return "REFUSED"
	}
	return fmt.Sprintf("RCODE%d", uint16(rc))
}

// OpCode is a DNS operation code.
type OpCode uint8

// OpCodeQuery is the standard query opcode; the toolkit uses no other.
const OpCodeQuery OpCode = 0

// Errors returned by the codec.
var (
	ErrTruncatedMessage = errors.New("dnswire: truncated message")
	ErrNameTooLong      = errors.New("dnswire: name exceeds 255 octets")
	ErrLabelTooLong     = errors.New("dnswire: label exceeds 63 octets")
	ErrPointerLoop      = errors.New("dnswire: compression pointer loop")
	ErrBadRData         = errors.New("dnswire: malformed rdata")
	ErrBadOption        = errors.New("dnswire: malformed EDNS0 option")
)

// Header is the fixed 12-octet DNS message header.
type Header struct {
	ID                 uint16
	Response           bool
	OpCode             OpCode
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	RCode              RCode // low 4 bits; extended bits live in the OPT RR
}

// Question is a single entry of the question section.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// String renders the question in dig-like presentation format.
func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", q.Name, q.Class, q.Type)
}

// Record is a decoded resource record. Exactly one of the typed rdata
// fields is meaningful, selected by Type; unknown types retain raw Data.
type Record struct {
	Name  string
	Type  Type
	Class Class
	TTL   uint32

	A     netip.Addr // TypeA
	AAAA  netip.Addr // TypeAAAA
	NS    string     // TypeNS
	CNAME string     // TypeCNAME
	PTR   string     // TypePTR
	TXT   []string   // TypeTXT
	SOA   *SOAData   // TypeSOA
	Data  []byte     // unknown types: raw rdata
}

// SOAData is the rdata of an SOA record.
type SOAData struct {
	MName   string
	RName   string
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

// Message is a complete DNS message. The OPT pseudo-record, if present in
// the additional section, is surfaced as Edns and excluded from Additionals.
type Message struct {
	Header      Header
	Questions   []Question
	Answers     []Record
	Authorities []Record
	Additionals []Record
	Edns        *EDNS

	// pooled marks messages that came from AcquireMessage, so
	// ReleaseMessage never recycles a message it does not own.
	pooled bool
}

// CanonicalName lowercases a domain name and guarantees a trailing dot,
// the canonical form used for zone lookups and compression maps.
func CanonicalName(name string) string {
	name = strings.ToLower(name)
	if name == "" {
		return "."
	}
	if !strings.HasSuffix(name, ".") {
		name += "."
	}
	return name
}
