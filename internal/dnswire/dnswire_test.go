package dnswire

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

func TestCanonicalName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", "."},
		{".", "."},
		{"Mask.iCloud.COM", "mask.icloud.com."},
		{"mask.icloud.com.", "mask.icloud.com."},
	}
	for _, c := range cases {
		if got := CanonicalName(c.in); got != c.want {
			t.Errorf("CanonicalName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTypeClassRCodeStrings(t *testing.T) {
	if TypeA.String() != "A" || TypeAAAA.String() != "AAAA" || Type(999).String() != "TYPE999" {
		t.Error("Type.String mismatch")
	}
	if ClassIN.String() != "IN" || Class(7).String() != "CLASS7" {
		t.Error("Class.String mismatch")
	}
	if RCodeNXDomain.String() != "NXDOMAIN" || RCodeRefused.String() != "REFUSED" || RCode(77).String() != "RCODE77" {
		t.Error("RCode.String mismatch")
	}
}

func roundTrip(t *testing.T, m *Message) *Message {
	t.Helper()
	wire, err := m.Encode(nil)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return got
}

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(0x1234, "mask.icloud.com", TypeA)
	got := roundTrip(t, q)
	if got.Header.ID != 0x1234 || got.Header.Response || !got.Header.RecursionDesired {
		t.Fatalf("header mismatch: %+v", got.Header)
	}
	if len(got.Questions) != 1 {
		t.Fatalf("questions = %d, want 1", len(got.Questions))
	}
	if got.Questions[0].Name != "mask.icloud.com." || got.Questions[0].Type != TypeA {
		t.Fatalf("question = %v", got.Questions[0])
	}
}

func TestECSQueryRoundTrip(t *testing.T) {
	q := NewQuery(7, "mask.icloud.com", TypeA).WithECS(netip.MustParsePrefix("203.0.113.0/24"))
	got := roundTrip(t, q)
	if got.Edns == nil || got.Edns.ClientSubnet == nil {
		t.Fatal("ECS option lost in round trip")
	}
	cs := got.Edns.ClientSubnet
	if cs.SourcePrefixLen != 24 || cs.ScopePrefixLen != 0 {
		t.Fatalf("ECS lens = %d/%d", cs.SourcePrefixLen, cs.ScopePrefixLen)
	}
	if cs.Prefix().String() != "203.0.113.0/24" {
		t.Fatalf("ECS prefix = %v", cs.Prefix())
	}
}

func TestECSv6RoundTrip(t *testing.T) {
	q := NewQuery(9, "mask.icloud.com", TypeAAAA).WithECS(netip.MustParsePrefix("2001:db8:ab::/48"))
	got := roundTrip(t, q)
	cs := got.Edns.ClientSubnet
	if cs == nil || cs.Prefix().String() != "2001:db8:ab::/48" {
		t.Fatalf("v6 ECS round trip: %v", cs)
	}
}

func TestECSAddressTruncation(t *testing.T) {
	// A /20 source must emit ceil(20/8)=3 address octets with spare bits zeroed.
	cs := NewClientSubnet(netip.MustParsePrefix("203.0.113.0/20"))
	body, err := appendECS(nil, cs)
	if err != nil {
		t.Fatal(err)
	}
	// family(2) + lens(2) + 3 octets
	if len(body) != 7 {
		t.Fatalf("ECS body len = %d, want 7", len(body))
	}
	if body[6] != 0x70 { // 113 = 0x71 → /20 masks low 4 bits of third octet: 0x70
		t.Fatalf("third octet = %#x, want 0x70", body[6])
	}
}

func TestECSScopeZeroMeansGlobal(t *testing.T) {
	cs := &ClientSubnet{SourcePrefixLen: 24, ScopePrefixLen: 0, Addr: netip.MustParseAddr("198.51.100.0")}
	if cs.ScopePrefix().Bits() != 0 {
		t.Fatalf("scope prefix bits = %d, want 0", cs.ScopePrefix().Bits())
	}
	if cs.String() != "198.51.100.0/24/0" {
		t.Fatalf("String = %s", cs.String())
	}
}

func TestResponseWithAllSections(t *testing.T) {
	m := &Message{
		Header: Header{ID: 1, Response: true, Authoritative: true, RCode: RCodeNoError},
		Questions: []Question{
			{Name: "mask.icloud.com.", Type: TypeA, Class: ClassIN},
		},
		Answers: []Record{
			{Name: "mask.icloud.com.", Type: TypeA, Class: ClassIN, TTL: 60, A: netip.MustParseAddr("17.248.1.1")},
			{Name: "mask.icloud.com.", Type: TypeA, Class: ClassIN, TTL: 60, A: netip.MustParseAddr("23.32.5.9")},
		},
		Authorities: []Record{
			{Name: "icloud.com.", Type: TypeNS, Class: ClassIN, TTL: 300, NS: "ns1.aws-route53.example."},
		},
		Additionals: []Record{
			{Name: "ns1.aws-route53.example.", Type: TypeA, Class: ClassIN, TTL: 300, A: netip.MustParseAddr("205.251.1.1")},
		},
		Edns: &EDNS{UDPSize: 4096, ClientSubnet: &ClientSubnet{
			SourcePrefixLen: 24, ScopePrefixLen: 24, Addr: netip.MustParseAddr("203.0.113.0"),
		}},
	}
	got := roundTrip(t, m)
	if len(got.Answers) != 2 || len(got.Authorities) != 1 || len(got.Additionals) != 1 {
		t.Fatalf("section sizes: %d/%d/%d", len(got.Answers), len(got.Authorities), len(got.Additionals))
	}
	if got.Answers[0].A.String() != "17.248.1.1" {
		t.Fatalf("answer A = %v", got.Answers[0].A)
	}
	if got.Authorities[0].NS != "ns1.aws-route53.example." {
		t.Fatalf("authority NS = %q", got.Authorities[0].NS)
	}
	if got.Edns == nil || got.Edns.UDPSize != 4096 || got.Edns.ClientSubnet.ScopePrefixLen != 24 {
		t.Fatalf("EDNS: %+v", got.Edns)
	}
}

func TestAAAARoundTrip(t *testing.T) {
	m := &Message{
		Header:    Header{ID: 2, Response: true},
		Questions: []Question{{Name: "mask.icloud.com.", Type: TypeAAAA, Class: ClassIN}},
		Answers: []Record{
			{Name: "mask.icloud.com.", Type: TypeAAAA, Class: ClassIN, TTL: 60, AAAA: netip.MustParseAddr("2620:149:a44::1")},
		},
	}
	got := roundTrip(t, m)
	if got.Answers[0].AAAA.String() != "2620:149:a44::1" {
		t.Fatalf("AAAA = %v", got.Answers[0].AAAA)
	}
}

func TestTXTSOACNAMEPTRRoundTrip(t *testing.T) {
	m := &Message{
		Header:    Header{ID: 3, Response: true},
		Questions: []Question{{Name: "example.com.", Type: TypeANY, Class: ClassIN}},
		Answers: []Record{
			{Name: "example.com.", Type: TypeTXT, Class: ClassIN, TTL: 60, TXT: []string{"hello", "world"}},
			{Name: "www.example.com.", Type: TypeCNAME, Class: ClassIN, TTL: 60, CNAME: "example.com."},
			{Name: "1.0.0.127.in-addr.arpa.", Type: TypePTR, Class: ClassIN, TTL: 60, PTR: "localhost."},
			{Name: "example.com.", Type: TypeSOA, Class: ClassIN, TTL: 60, SOA: &SOAData{
				MName: "ns1.example.com.", RName: "hostmaster.example.com.",
				Serial: 2022010100, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 86400,
			}},
		},
	}
	got := roundTrip(t, m)
	if len(got.Answers) != 4 {
		t.Fatalf("answers = %d", len(got.Answers))
	}
	if got.Answers[0].TXT[1] != "world" {
		t.Fatalf("TXT = %v", got.Answers[0].TXT)
	}
	if got.Answers[1].CNAME != "example.com." {
		t.Fatalf("CNAME = %q", got.Answers[1].CNAME)
	}
	if got.Answers[2].PTR != "localhost." {
		t.Fatalf("PTR = %q", got.Answers[2].PTR)
	}
	soa := got.Answers[3].SOA
	if soa == nil || soa.Serial != 2022010100 || soa.MName != "ns1.example.com." {
		t.Fatalf("SOA = %+v", soa)
	}
}

func TestUnknownTypePreservesRawData(t *testing.T) {
	m := &Message{
		Header:  Header{ID: 4, Response: true},
		Answers: []Record{{Name: "x.example.", Type: Type(99), Class: ClassIN, TTL: 1, Data: []byte{1, 2, 3}}},
	}
	got := roundTrip(t, m)
	if !bytes.Equal(got.Answers[0].Data, []byte{1, 2, 3}) {
		t.Fatalf("raw data = %v", got.Answers[0].Data)
	}
}

func TestNameCompressionShrinksMessage(t *testing.T) {
	mk := func() *Message {
		m := &Message{Header: Header{ID: 5, Response: true},
			Questions: []Question{{Name: "mask.icloud.com.", Type: TypeA, Class: ClassIN}}}
		for i := 0; i < 8; i++ {
			m.Answers = append(m.Answers, Record{
				Name: "mask.icloud.com.", Type: TypeA, Class: ClassIN, TTL: 60,
				A: netip.AddrFrom4([4]byte{17, 248, 0, byte(i)}),
			})
		}
		return m
	}
	wire, err := mk().Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	// 8 answers, each owner name compressed to a 2-byte pointer instead of
	// 17 bytes: the message must be far below the uncompressed size.
	uncompressed := 12 + 21 + 8*(17+14)
	if len(wire) >= uncompressed-8*10 {
		t.Fatalf("compression ineffective: %d bytes (uncompressed would be %d)", len(wire), uncompressed)
	}
	// And it must still decode correctly.
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != 8 || got.Answers[7].Name != "mask.icloud.com." {
		t.Fatalf("decode after compression: %+v", got.Answers)
	}
}

func TestDecodeCaseInsensitiveNames(t *testing.T) {
	m := NewQuery(6, "MASK.iCloud.Com", TypeA)
	got := roundTrip(t, m)
	if got.Questions[0].Name != "mask.icloud.com." {
		t.Fatalf("name = %q", got.Questions[0].Name)
	}
}

func TestEncodeRejectsBadRecords(t *testing.T) {
	cases := []Record{
		{Name: "x.", Type: TypeA, Class: ClassIN, AAAA: netip.MustParseAddr("::1")},                                   // A without v4 addr
		{Name: "x.", Type: TypeAAAA, Class: ClassIN, A: netip.MustParseAddr("127.0.0.1")},                             // AAAA without v6 addr
		{Name: "x.", Type: TypeSOA, Class: ClassIN},                                                                   // SOA without data
		{Name: "x.", Type: TypeTXT, Class: ClassIN, TXT: []string{strings.Repeat("a", 256)}},                          // oversize TXT string
		{Name: strings.Repeat("a", 64) + ".example.", Type: TypeA, Class: ClassIN, A: netip.MustParseAddr("1.2.3.4")}, // label > 63
	}
	for i, r := range cases {
		m := &Message{Header: Header{ID: 1}, Answers: []Record{r}}
		if _, err := m.Encode(nil); err == nil {
			t.Errorf("case %d: Encode succeeded, want error", i)
		}
	}
}

func TestEncodeRejectsOverlongName(t *testing.T) {
	long := strings.Repeat("abcdefgh.", 32) // 288 chars > 255
	m := NewQuery(1, long, TypeA)
	if _, err := m.Encode(nil); err == nil {
		t.Fatal("Encode of overlong name succeeded")
	}
}

func TestDecodeTruncatedInputs(t *testing.T) {
	q := NewQuery(10, "mask.icloud.com", TypeA).WithECS(netip.MustParsePrefix("198.51.100.0/24"))
	wire, err := q.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(wire); cut++ {
		if _, err := Decode(wire[:cut]); err == nil {
			t.Fatalf("Decode of %d/%d bytes succeeded", cut, len(wire))
		}
	}
}

func TestDecodePointerLoopRejected(t *testing.T) {
	// Hand-craft a message whose question name is a self-pointing pointer.
	msg := []byte{
		0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, // header, 1 question
		0xC0, 12, // pointer to itself
		0, 1, 0, 1,
	}
	if _, err := Decode(msg); err == nil {
		t.Fatal("self-pointer accepted")
	}
}

func TestDecodeForwardPointerRejected(t *testing.T) {
	msg := []byte{
		0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,
		0xC0, 200, // forward pointer beyond current offset
		0, 1, 0, 1,
	}
	if _, err := Decode(msg); err == nil {
		t.Fatal("forward pointer accepted")
	}
}

func TestDecodeBadLabelTypeRejected(t *testing.T) {
	msg := []byte{
		0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,
		0x80, 0, // reserved label type 10
		0, 1, 0, 1,
	}
	if _, err := Decode(msg); err == nil {
		t.Fatal("reserved label type accepted")
	}
}

func TestDecodeBadECSRejected(t *testing.T) {
	cases := [][]byte{
		{0, 1},                       // too short
		{0, 3, 24, 0, 1, 2, 3},       // unknown family
		{0, 1, 24, 0, 1, 2},          // wrong addr length for /24
		{0, 1, 40, 0, 1, 2, 3, 4, 5}, // source > 32 for v4
	}
	for i, body := range cases {
		if _, err := decodeECS(body); err == nil {
			t.Errorf("case %d: bad ECS accepted", i)
		}
	}
}

func TestExtendedRCodeMerging(t *testing.T) {
	m := &Message{
		Header: Header{ID: 11, Response: true, RCode: RCode(0x5)},
		Edns:   &EDNS{UDPSize: 1232, ExtendedRCode: 0x2},
	}
	got := roundTrip(t, m)
	if got.Header.RCode != RCode(0x25) {
		t.Fatalf("merged rcode = %#x, want 0x25", uint16(got.Header.RCode))
	}
}

func TestUnknownEDNSOptionPreserved(t *testing.T) {
	m := &Message{
		Header: Header{ID: 12},
		Edns:   &EDNS{UDPSize: 1232, UnknownOptions: []RawOption{{Code: 10, Data: []byte{9, 9}}}},
	}
	got := roundTrip(t, m)
	if len(got.Edns.UnknownOptions) != 1 || got.Edns.UnknownOptions[0].Code != 10 {
		t.Fatalf("unknown options = %+v", got.Edns.UnknownOptions)
	}
}

func TestRootNameRoundTrip(t *testing.T) {
	m := NewQuery(13, ".", TypeNS)
	got := roundTrip(t, m)
	if got.Questions[0].Name != "." {
		t.Fatalf("root name = %q", got.Questions[0].Name)
	}
}

// Property: any query built from valid inputs round-trips unchanged.
func TestPropertyQueryRoundTrip(t *testing.T) {
	f := func(id uint16, l1, l2 uint8, v4 [4]byte, bits uint8) bool {
		name := label(l1) + "." + label(l2) + ".example.com"
		pfx := netip.PrefixFrom(netip.AddrFrom4(v4), int(bits%25)+8).Masked()
		q := NewQuery(id, name, TypeA).WithECS(pfx)
		wire, err := q.Encode(nil)
		if err != nil {
			return false
		}
		got, err := Decode(wire)
		if err != nil {
			return false
		}
		return got.Header.ID == id &&
			got.Questions[0].Name == CanonicalName(name) &&
			got.Edns.ClientSubnet.Prefix() == pfx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// label derives a short lowercase DNS label from a byte.
func label(b uint8) string {
	const alpha = "abcdefghijklmnopqrstuvwxyz"
	n := int(b%7) + 1
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(alpha[(int(b)+i)%26])
	}
	return sb.String()
}

// Property: Decode never panics on arbitrary input (fuzz-like smoke check).
func TestPropertyDecodeNoPanic(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Decode panicked on %x: %v", data, r)
			}
		}()
		_, _ = Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeECSQuery(b *testing.B) {
	pfx := netip.MustParsePrefix("203.0.113.0/24")
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := NewQuery(uint16(i), "mask.icloud.com", TypeA).WithECS(pfx)
		var err error
		buf, err = q.Encode(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeResponse(b *testing.B) {
	m := &Message{
		Header:    Header{ID: 1, Response: true},
		Questions: []Question{{Name: "mask.icloud.com.", Type: TypeA, Class: ClassIN}},
		Edns:      &EDNS{UDPSize: 1232, ClientSubnet: &ClientSubnet{SourcePrefixLen: 24, ScopePrefixLen: 24, Addr: netip.MustParseAddr("203.0.113.0")}},
	}
	for i := 0; i < 8; i++ {
		m.Answers = append(m.Answers, Record{Name: "mask.icloud.com.", Type: TypeA, Class: ClassIN, TTL: 60, A: netip.AddrFrom4([4]byte{17, 248, 0, byte(i)})})
	}
	wire, err := m.Encode(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncoderReuse is BenchmarkEncodeECSQuery on the steady-state
// path: one reusable message re-stamped per iteration (SetECS + ID) and
// one Encoder whose compression map is cleared, not reallocated. This is
// how scan workers and UDP server workers actually encode.
func BenchmarkEncoderReuse(b *testing.B) {
	pfx := netip.MustParsePrefix("203.0.113.0/24")
	q := NewQuery(0, "mask.icloud.com", TypeA).WithECS(pfx)
	var enc Encoder
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Header.ID = uint16(i)
		q.SetECS(pfx)
		var err error
		buf, err = enc.Encode(q, buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeInto is BenchmarkDecodeResponse without the per-op
// message: the decode target and its section slices are reused, the way
// UDP server workers and pooled client responses decode.
func BenchmarkDecodeInto(b *testing.B) {
	m := &Message{
		Header:    Header{ID: 1, Response: true},
		Questions: []Question{{Name: "mask.icloud.com.", Type: TypeA, Class: ClassIN}},
		Edns:      &EDNS{UDPSize: 1232, ClientSubnet: &ClientSubnet{SourcePrefixLen: 24, ScopePrefixLen: 24, Addr: netip.MustParseAddr("203.0.113.0")}},
	}
	for i := 0; i < 8; i++ {
		m.Answers = append(m.Answers, Record{Name: "mask.icloud.com.", Type: TypeA, Class: ClassIN, TTL: 60, A: netip.AddrFrom4([4]byte{17, 248, 0, byte(i)})})
	}
	wire, err := m.Encode(nil)
	if err != nil {
		b.Fatal(err)
	}
	var out Message
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodeInto(wire, &out); err != nil {
			b.Fatal(err)
		}
	}
}
