package dnswire

import (
	"sync"
	"sync/atomic"
)

// Message pooling for the exchange hot path. The authoritative server
// assembles every response in a pooled Message, and consumers that are
// demonstrably done with a response (the scanner after record(), the
// UDP/TCP servers after encoding) hand it back with ReleaseMessage.
//
// Ownership rules:
//
//   - A message returned by AcquireMessage is owned by exactly one
//     goroutine at a time. Passing it across an Exchanger transfers
//     ownership to the receiver.
//   - ReleaseMessage recycles only messages that came from
//     AcquireMessage; anything else is a no-op. Consumers may therefore
//     release every response they finish with, without tracking where it
//     came from — a test fake's static message or a fault injector's
//     synthesized failure simply falls through to the GC.
//   - Consumers that retain responses indefinitely (the resolver cache,
//     Atlas measurement results) just never release them; retention is
//     always safe because nothing recycles a message behind its back.
//   - After ReleaseMessage the message must not be touched; its section
//     slices are gone and its EDNS scratch will be rewritten by the next
//     owner.

// poolAcquires / poolMisses feed the pool-hit-rate metric relayd
// exports: a miss is an acquire the pool served by allocating a fresh
// Message. Plain atomic adds — they never allocate, so the 0 allocs/op
// contract on the exchange path holds.
var (
	poolAcquires atomic.Int64
	poolMisses   atomic.Int64
)

var msgPool = sync.Pool{New: func() any {
	poolMisses.Add(1)
	return new(Message)
}}

// MessagePoolStats reports lifetime acquire and miss counts for the
// message pool. The hit rate is (acquires-misses)/acquires; misses also
// approximate the pool's allocation pressure.
func MessagePoolStats() (acquires, misses int64) {
	return poolAcquires.Load(), poolMisses.Load()
}

// AcquireMessage returns a pooled Message. Its section slices are nil
// and its Header is zero; Edns may point at scratch EDNS/ClientSubnet
// structs from a previous life — overwrite them (e.g. via SetECS or
// DecodeInto) or set Edns to nil before use.
func AcquireMessage() *Message {
	poolAcquires.Add(1)
	m := msgPool.Get().(*Message)
	m.pooled = true
	return m
}

// ReleaseMessage returns m to the pool if it came from AcquireMessage
// (otherwise it is a no-op, see the ownership rules above). The
// message's EDNS and ClientSubnet structs are kept as scratch so the
// steady state re-serves them without allocating; everything that may
// reference caller data (section slices, TXT/SOA/Data rdata) is dropped.
func ReleaseMessage(m *Message) {
	if m == nil || !m.pooled {
		return
	}
	m.pooled = false
	edns := m.Edns
	if edns != nil {
		cs := edns.ClientSubnet
		*edns = EDNS{ClientSubnet: cs}
		if cs != nil {
			*cs = ClientSubnet{}
		}
	}
	*m = Message{Edns: edns}
	msgPool.Put(m)
}
