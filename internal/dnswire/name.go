package dnswire

import "strings"

// maxNameWire is the RFC 1035 limit on the wire form of a name.
const maxNameWire = 255

// appendName appends the wire encoding of name to buf. When compress is
// non-nil it is used as a name→offset map: suffixes already emitted are
// replaced with compression pointers, and newly emitted suffixes are
// recorded. Offsets are relative to base (the message's start within
// buf); offsets beyond the 14-bit pointer range are never recorded.
func appendName(buf []byte, name string, compress map[string]int, base int) ([]byte, error) {
	name = CanonicalName(name)
	if name == "." {
		return append(buf, 0), nil
	}
	// Wire length check: presentation length + 1 is a close upper bound.
	if len(name)+1 > maxNameWire {
		return nil, ErrNameTooLong
	}
	// Walk labels in place: name is canonical ("a.b.c."), so every label
	// ends at a dot and name[i:] is exactly the suffix starting at label
	// i — usable directly as a compression-map key without allocating.
	for i := 0; i < len(name); {
		suffix := name[i:]
		if compress != nil {
			if off, ok := compress[suffix]; ok {
				return append(buf, byte(0xC0|off>>8), byte(off)), nil
			}
			if off := len(buf) - base; off < 0x3FFF {
				compress[suffix] = off
			}
		}
		j := strings.IndexByte(suffix, '.') // >= 0: canonical names end in '.'
		label := suffix[:j]
		if len(label) == 0 {
			return nil, ErrLabelTooLong // empty interior label is malformed
		}
		if len(label) > 63 {
			return nil, ErrLabelTooLong
		}
		buf = append(buf, byte(len(label)))
		buf = append(buf, label...)
		i += j + 1
	}
	return append(buf, 0), nil
}

// nameCacheSize bounds the per-decode name cache. Real responses repeat
// a handful of names (the question name dominates: every answer owner
// is a pointer to it), so a small linear-scan array beats a map — no
// hashing, no allocation, cache lives on the decoder's stack.
const nameCacheSize = 8

// nameCache memoizes decoded names within one message, keyed by the
// wire offset of the name's first label. Record owners in compressed
// responses are two-byte pointers at distinct offsets all aiming at the
// same target, so keying on the *target* turns every repeat into a
// zero-allocation lookup. The buf array doubles as the label assembly
// scratch, replacing the per-name strings.Builder; maxNameWire bounds
// it. The zero value is ready to use.
type nameCache struct {
	n    int
	off  [nameCacheSize]int32
	name [nameCacheSize]string
	buf  [maxNameWire]byte
}

func (c *nameCache) lookup(off int) (string, bool) {
	for i := 0; i < c.n; i++ {
		if c.off[i] == int32(off) {
			return c.name[i], true
		}
	}
	return "", false
}

func (c *nameCache) store(off int, name string) {
	if c.n < nameCacheSize {
		c.off[c.n] = int32(off)
		c.name[c.n] = name
		c.n++
	}
}

// decodeName decodes a possibly-compressed name starting at off in msg.
// It returns the canonical name and the offset just past the name's
// in-place encoding (pointers do not advance the cursor past their target).
func decodeName(msg []byte, off int) (string, int, error) {
	return decodeNameCached(msg, off, nil)
}

// decodeNameCached is decodeName with a per-message memo: a name that
// is (or starts with a pointer to) an already-decoded name costs no
// allocation; a fresh name costs exactly its one string allocation.
func decodeNameCached(msg []byte, off int, c *nameCache) (string, int, error) {
	key := off
	if c != nil && off+1 < len(msg) && msg[off]&0xC0 == 0xC0 {
		// The whole name is one pointer: resolve through the cache.
		key = int(msg[off]&0x3F)<<8 | int(msg[off+1])
		if name, ok := c.lookup(key); ok {
			return name, off + 2, nil
		}
	}
	var scratch []byte
	if c != nil {
		scratch = c.buf[:0]
	}
	ptrBudget := len(msg) // each pointer must strictly decrease; budget caps loops
	jumped := false
	end := off
	cur := off
	for {
		if cur >= len(msg) {
			return "", 0, ErrTruncatedMessage
		}
		b := msg[cur]
		switch {
		case b == 0:
			if !jumped {
				end = cur + 1
			}
			if len(scratch) == 0 {
				return ".", end, nil
			}
			name := string(scratch)
			if c != nil {
				c.store(key, name)
			}
			return name, end, nil
		case b&0xC0 == 0xC0:
			if cur+1 >= len(msg) {
				return "", 0, ErrTruncatedMessage
			}
			target := int(b&0x3F)<<8 | int(msg[cur+1])
			if !jumped {
				end = cur + 2
			}
			jumped = true
			if target >= cur && ptrBudget == len(msg) {
				// First pointer must point backwards; forward pointers are
				// malformed and a reliable loop indicator.
				return "", 0, ErrPointerLoop
			}
			ptrBudget--
			if ptrBudget <= 0 {
				return "", 0, ErrPointerLoop
			}
			cur = target
		case b&0xC0 != 0:
			return "", 0, ErrBadRData // 0x40/0x80 label types are unsupported
		default:
			if cur+1+int(b) > len(msg) {
				return "", 0, ErrTruncatedMessage
			}
			if len(scratch)+int(b)+1 > maxNameWire {
				return "", 0, ErrNameTooLong
			}
			scratch = append(scratch, toLowerASCII(msg[cur+1:cur+1+int(b)])...)
			scratch = append(scratch, '.')
			if !jumped {
				end = cur + 1 + int(b)
			}
			cur += 1 + int(b)
		}
	}
}

// toLowerASCII lowercases ASCII letters without allocating when the input
// is already lowercase.
func toLowerASCII(b []byte) []byte {
	lower := true
	for _, c := range b {
		if c >= 'A' && c <= 'Z' {
			lower = false
			break
		}
	}
	if lower {
		return b
	}
	out := make([]byte, len(b))
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		out[i] = c
	}
	return out
}
