package dnswire

import "strings"

// maxNameWire is the RFC 1035 limit on the wire form of a name.
const maxNameWire = 255

// appendName appends the wire encoding of name to buf. When compress is
// non-nil it is used as a name→offset map: suffixes already emitted are
// replaced with compression pointers, and newly emitted suffixes are
// recorded. Offsets are relative to base (the message's start within
// buf); offsets beyond the 14-bit pointer range are never recorded.
func appendName(buf []byte, name string, compress map[string]int, base int) ([]byte, error) {
	name = CanonicalName(name)
	if name == "." {
		return append(buf, 0), nil
	}
	// Wire length check: presentation length + 1 is a close upper bound.
	if len(name)+1 > maxNameWire {
		return nil, ErrNameTooLong
	}
	// Walk labels in place: name is canonical ("a.b.c."), so every label
	// ends at a dot and name[i:] is exactly the suffix starting at label
	// i — usable directly as a compression-map key without allocating.
	for i := 0; i < len(name); {
		suffix := name[i:]
		if compress != nil {
			if off, ok := compress[suffix]; ok {
				return append(buf, byte(0xC0|off>>8), byte(off)), nil
			}
			if off := len(buf) - base; off < 0x3FFF {
				compress[suffix] = off
			}
		}
		j := strings.IndexByte(suffix, '.') // >= 0: canonical names end in '.'
		label := suffix[:j]
		if len(label) == 0 {
			return nil, ErrLabelTooLong // empty interior label is malformed
		}
		if len(label) > 63 {
			return nil, ErrLabelTooLong
		}
		buf = append(buf, byte(len(label)))
		buf = append(buf, label...)
		i += j + 1
	}
	return append(buf, 0), nil
}

// decodeName decodes a possibly-compressed name starting at off in msg.
// It returns the canonical name and the offset just past the name's
// in-place encoding (pointers do not advance the cursor past their target).
func decodeName(msg []byte, off int) (string, int, error) {
	var sb strings.Builder
	ptrBudget := len(msg) // each pointer must strictly decrease; budget caps loops
	jumped := false
	end := off
	for {
		if off >= len(msg) {
			return "", 0, ErrTruncatedMessage
		}
		b := msg[off]
		switch {
		case b == 0:
			if !jumped {
				end = off + 1
			}
			if sb.Len() == 0 {
				return ".", end, nil
			}
			return sb.String(), end, nil
		case b&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return "", 0, ErrTruncatedMessage
			}
			target := int(b&0x3F)<<8 | int(msg[off+1])
			if !jumped {
				end = off + 2
			}
			jumped = true
			if target >= off && ptrBudget == len(msg) {
				// First pointer must point backwards; forward pointers are
				// malformed and a reliable loop indicator.
				return "", 0, ErrPointerLoop
			}
			ptrBudget--
			if ptrBudget <= 0 {
				return "", 0, ErrPointerLoop
			}
			off = target
		case b&0xC0 != 0:
			return "", 0, ErrBadRData // 0x40/0x80 label types are unsupported
		default:
			if off+1+int(b) > len(msg) {
				return "", 0, ErrTruncatedMessage
			}
			if sb.Len()+int(b)+1 > maxNameWire {
				return "", 0, ErrNameTooLong
			}
			sb.Write(toLowerASCII(msg[off+1 : off+1+int(b)]))
			sb.WriteByte('.')
			if !jumped {
				end = off + 1 + int(b)
			}
			off += 1 + int(b)
		}
	}
}

// toLowerASCII lowercases ASCII letters without allocating when the input
// is already lowercase.
func toLowerASCII(b []byte) []byte {
	lower := true
	for _, c := range b {
		if c >= 'A' && c <= 'Z' {
			lower = false
			break
		}
	}
	if lower {
		return b
	}
	out := make([]byte, len(b))
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		out[i] = c
	}
	return out
}
