//go:build !race

// Allocation-regression pin for the response decode path. Excluded from
// race builds: the race runtime's allocation instrumentation makes
// testing.AllocsPerRun meaningless, so CI runs this in a separate
// non-race step (see the chaos job).

package dnswire

import (
	"net/netip"
	"testing"
)

// TestDecodeIntoAllocBudget pins the steady-state cost of decoding a
// representative MASQUE-probe response (one question, eight A answers,
// EDNS+ECS) into a reused Message. The per-message name cache resolves
// every compression-pointed answer owner without allocating, so the
// budget is one string for the question name plus the OPT record's
// rdata copy — and this test is what keeps the remaining per-record
// allocations from creeping back in.
func TestDecodeIntoAllocBudget(t *testing.T) {
	const budget = 2
	m := &Message{
		Header:    Header{ID: 1, Response: true},
		Questions: []Question{{Name: "mask.icloud.com.", Type: TypeA, Class: ClassIN}},
		Edns:      &EDNS{UDPSize: 1232, ClientSubnet: &ClientSubnet{SourcePrefixLen: 24, ScopePrefixLen: 24, Addr: netip.MustParseAddr("203.0.113.0")}},
	}
	for i := 0; i < 8; i++ {
		m.Answers = append(m.Answers, Record{Name: "mask.icloud.com.", Type: TypeA, Class: ClassIN, TTL: 60, A: netip.AddrFrom4([4]byte{17, 248, 0, byte(i)})})
	}
	wire, err := m.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	var out Message
	// Warm the record slices and the EDNS scratch.
	for i := 0; i < 4; i++ {
		if err := DecodeInto(wire, &out); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(500, func() {
		if err := DecodeInto(wire, &out); err != nil {
			panic(err)
		}
	})
	if avg > budget {
		t.Fatalf("DecodeInto: %.2f allocs/op, budget %d", avg, budget)
	}
}
