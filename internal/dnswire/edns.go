package dnswire

import (
	"encoding/binary"
	"fmt"
	"net/netip"

	"github.com/relay-networks/privaterelay/internal/iputil"
)

// EDNS option codes.
const (
	OptionClientSubnet uint16 = 8 // RFC 7871
)

// Address families used inside the ECS option (RFC 7871 §6, per the
// IANA Address Family Numbers registry).
const (
	ecsFamilyIPv4 uint16 = 1
	ecsFamilyIPv6 uint16 = 2
)

// EDNS carries the decoded OPT pseudo-record (RFC 6891).
type EDNS struct {
	UDPSize       uint16
	ExtendedRCode uint8 // high 8 bits of the 12-bit rcode
	Version       uint8
	DNSSECOK      bool
	ClientSubnet  *ClientSubnet
	// UnknownOptions preserves options the toolkit does not interpret,
	// as (code, data) pairs in arrival order.
	UnknownOptions []RawOption
}

// RawOption is an uninterpreted EDNS0 option.
type RawOption struct {
	Code uint16
	Data []byte
}

// ClientSubnet is the RFC 7871 EDNS0 Client Subnet option. In queries,
// SourcePrefixLen states how many bits of Addr are meaningful and
// ScopePrefixLen must be zero. In responses, ScopePrefixLen states for how
// large a prefix the answer is valid — the scan uses it to skip redundant
// queries (§7 of the paper).
type ClientSubnet struct {
	SourcePrefixLen uint8
	ScopePrefixLen  uint8
	Addr            netip.Addr
}

// Prefix returns the client subnet as a prefix of SourcePrefixLen bits.
func (cs *ClientSubnet) Prefix() netip.Prefix {
	return netip.PrefixFrom(iputil.Canonical(cs.Addr), int(cs.SourcePrefixLen)).Masked()
}

// ScopePrefix returns the prefix for which the carrying response is valid.
// Per RFC 7871 a scope of zero means "valid for all client subnets".
func (cs *ClientSubnet) ScopePrefix() netip.Prefix {
	return netip.PrefixFrom(iputil.Canonical(cs.Addr), int(cs.ScopePrefixLen)).Masked()
}

// String renders the option in dig-like "subnet/source/scope" form.
func (cs *ClientSubnet) String() string {
	return fmt.Sprintf("%s/%d/%d", iputil.Canonical(cs.Addr), cs.SourcePrefixLen, cs.ScopePrefixLen)
}

// NewClientSubnet builds a query-side ECS option for the given subnet.
func NewClientSubnet(subnet netip.Prefix) *ClientSubnet {
	subnet = iputil.CanonicalPrefix(subnet)
	return &ClientSubnet{
		SourcePrefixLen: uint8(subnet.Bits()),
		Addr:            subnet.Addr(),
	}
}

// appendECS appends the wire form of the option (without the option
// code/length preamble) to buf.
func appendECS(buf []byte, cs *ClientSubnet) ([]byte, error) {
	addr := iputil.Canonical(cs.Addr)
	family := ecsFamilyIPv4
	addrLen := 4
	if addr.Is6() {
		family = ecsFamilyIPv6
		addrLen = 16
	}
	maxBits := addrLen * 8
	if int(cs.SourcePrefixLen) > maxBits || int(cs.ScopePrefixLen) > maxBits {
		return nil, ErrBadOption
	}
	buf = binary.BigEndian.AppendUint16(buf, family)
	buf = append(buf, cs.SourcePrefixLen, cs.ScopePrefixLen)
	// RFC 7871: address is truncated to the minimum octets covering
	// SourcePrefixLen bits, with trailing bits zeroed.
	nOctets := (int(cs.SourcePrefixLen) + 7) / 8
	masked := netip.PrefixFrom(addr, int(cs.SourcePrefixLen)).Masked().Addr()
	if addr.Is4() {
		b := masked.As4()
		buf = append(buf, b[:nOctets]...)
	} else {
		b := masked.As16()
		buf = append(buf, b[:nOctets]...)
	}
	return buf, nil
}

// decodeECS decodes an ECS option body.
func decodeECS(data []byte) (*ClientSubnet, error) {
	cs := new(ClientSubnet)
	if err := decodeECSInto(data, cs); err != nil {
		return nil, err
	}
	return cs, nil
}

// decodeECSInto decodes an ECS option body into cs, overwriting it.
func decodeECSInto(data []byte, cs *ClientSubnet) error {
	if len(data) < 4 {
		return ErrBadOption
	}
	family := binary.BigEndian.Uint16(data[:2])
	source := data[2]
	scope := data[3]
	addrBytes := data[4:]
	nOctets := (int(source) + 7) / 8
	if len(addrBytes) != nOctets {
		return ErrBadOption
	}
	var addr netip.Addr
	switch family {
	case ecsFamilyIPv4:
		if source > 32 || scope > 32 {
			return ErrBadOption
		}
		var b [4]byte
		copy(b[:], addrBytes)
		addr = netip.AddrFrom4(b)
	case ecsFamilyIPv6:
		if source > 128 || scope > 128 {
			return ErrBadOption
		}
		var b [16]byte
		copy(b[:], addrBytes)
		addr = netip.AddrFrom16(b)
	default:
		return ErrBadOption
	}
	*cs = ClientSubnet{SourcePrefixLen: source, ScopePrefixLen: scope, Addr: addr}
	return nil
}

// appendOPT appends the full OPT pseudo-RR for e to buf.
func appendOPT(buf []byte, e *EDNS) ([]byte, error) {
	buf = append(buf, 0) // root name
	buf = binary.BigEndian.AppendUint16(buf, uint16(TypeOPT))
	size := e.UDPSize
	if size == 0 {
		size = 1232 // widely deployed EDNS buffer default
	}
	buf = binary.BigEndian.AppendUint16(buf, size) // class = requestor UDP size
	ttl := uint32(e.ExtendedRCode)<<24 | uint32(e.Version)<<16
	if e.DNSSECOK {
		ttl |= 1 << 15
	}
	buf = binary.BigEndian.AppendUint32(buf, ttl)
	rdlenAt := len(buf)
	buf = append(buf, 0, 0)
	if e.ClientSubnet != nil {
		buf = binary.BigEndian.AppendUint16(buf, OptionClientSubnet)
		lenAt := len(buf)
		buf = append(buf, 0, 0)
		var err error
		buf, err = appendECS(buf, e.ClientSubnet)
		if err != nil {
			return nil, err
		}
		binary.BigEndian.PutUint16(buf[lenAt:], uint16(len(buf)-lenAt-2))
	}
	for _, opt := range e.UnknownOptions {
		buf = binary.BigEndian.AppendUint16(buf, opt.Code)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(opt.Data)))
		buf = append(buf, opt.Data...)
	}
	binary.BigEndian.PutUint16(buf[rdlenAt:], uint16(len(buf)-rdlenAt-2))
	return buf, nil
}

// decodeOPTInto decodes the OPT pseudo-RR whose fixed fields have already
// been read into rec by the record parser, overwriting e and reusing its
// ClientSubnet struct as scratch when present.
func decodeOPTInto(rec *Record, e *EDNS) error {
	cs := e.ClientSubnet // scratch from a previous decode, if any
	*e = EDNS{
		UDPSize:       uint16(rec.Class),
		ExtendedRCode: uint8(rec.TTL >> 24),
		Version:       uint8(rec.TTL >> 16),
		DNSSECOK:      rec.TTL&(1<<15) != 0,
	}
	data := rec.Data
	for len(data) > 0 {
		if len(data) < 4 {
			return ErrBadOption
		}
		code := binary.BigEndian.Uint16(data[:2])
		olen := int(binary.BigEndian.Uint16(data[2:4]))
		if len(data) < 4+olen {
			return ErrBadOption
		}
		body := data[4 : 4+olen]
		if code == OptionClientSubnet {
			if cs == nil {
				cs = new(ClientSubnet)
			}
			if err := decodeECSInto(body, cs); err != nil {
				return err
			}
			e.ClientSubnet = cs
		} else {
			e.UnknownOptions = append(e.UnknownOptions, RawOption{Code: code, Data: append([]byte(nil), body...)})
		}
		data = data[4+olen:]
	}
	return nil
}
