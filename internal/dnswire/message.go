package dnswire

import (
	"encoding/binary"
	"net/netip"

	"github.com/relay-networks/privaterelay/internal/iputil"
)

// Encode serializes the message, appending to buf (which may be nil).
// Names in questions and record owners are compressed; rdata names are
// compressed where RFC 1035 permits (NS, CNAME, PTR, SOA).
func (m *Message) Encode(buf []byte) ([]byte, error) {
	return m.encode(buf, make(map[string]int, 8))
}

// EncodeUncompressed serializes the message without name compression —
// kept for the compression ablation benchmark and interop testing.
func (m *Message) EncodeUncompressed(buf []byte) ([]byte, error) {
	return m.encode(buf, nil)
}

// Encoder owns the scratch state for serializing messages — currently the
// name-compression map — so tight loops encode without a per-message map
// allocation. The zero value is ready to use. An Encoder is not safe for
// concurrent use; give each worker its own.
type Encoder struct {
	compress map[string]int
}

// Encode serializes m with name compression, appending to buf (which may
// be nil), reusing the encoder's compression map across calls.
func (e *Encoder) Encode(m *Message, buf []byte) ([]byte, error) {
	if e.compress == nil {
		e.compress = make(map[string]int, 8)
	} else {
		clear(e.compress)
	}
	return m.encode(buf, e.compress)
}

func (m *Message) encode(buf []byte, compress map[string]int) ([]byte, error) {
	base := len(buf)

	h := m.Header
	buf = binary.BigEndian.AppendUint16(buf, h.ID)
	var flags uint16
	if h.Response {
		flags |= 1 << 15
	}
	flags |= uint16(h.OpCode&0xF) << 11
	if h.Authoritative {
		flags |= 1 << 10
	}
	if h.Truncated {
		flags |= 1 << 9
	}
	if h.RecursionDesired {
		flags |= 1 << 8
	}
	if h.RecursionAvailable {
		flags |= 1 << 7
	}
	flags |= uint16(h.RCode & 0xF)
	buf = binary.BigEndian.AppendUint16(buf, flags)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Questions)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Answers)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Authorities)))
	nAdd := len(m.Additionals)
	if m.Edns != nil {
		nAdd++
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(nAdd))

	var err error
	for _, q := range m.Questions {
		if buf, err = appendName(buf, q.Name, compress, base); err != nil {
			return nil, err
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Type))
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Class))
	}
	for _, sec := range [][]Record{m.Answers, m.Authorities, m.Additionals} {
		for i := range sec {
			if buf, err = appendRecord(buf, &sec[i], compress, base); err != nil {
				return nil, err
			}
		}
	}
	if m.Edns != nil {
		if buf, err = appendOPT(buf, m.Edns); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// appendRecord appends one resource record.
func appendRecord(buf []byte, r *Record, compress map[string]int, base int) ([]byte, error) {
	var err error
	if buf, err = appendName(buf, r.Name, compress, base); err != nil {
		return nil, err
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(r.Type))
	buf = binary.BigEndian.AppendUint16(buf, uint16(r.Class))
	buf = binary.BigEndian.AppendUint32(buf, r.TTL)
	rdlenAt := len(buf)
	buf = append(buf, 0, 0)
	switch r.Type {
	case TypeA:
		if !r.A.Is4() {
			return nil, ErrBadRData
		}
		b := r.A.As4()
		buf = append(buf, b[:]...)
	case TypeAAAA:
		if !r.AAAA.Is6() || r.AAAA.Is4In6() {
			return nil, ErrBadRData
		}
		b := r.AAAA.As16()
		buf = append(buf, b[:]...)
	case TypeNS:
		if buf, err = appendName(buf, r.NS, compress, base); err != nil {
			return nil, err
		}
	case TypeCNAME:
		if buf, err = appendName(buf, r.CNAME, compress, base); err != nil {
			return nil, err
		}
	case TypePTR:
		if buf, err = appendName(buf, r.PTR, compress, base); err != nil {
			return nil, err
		}
	case TypeTXT:
		for _, s := range r.TXT {
			if len(s) > 255 {
				return nil, ErrBadRData
			}
			buf = append(buf, byte(len(s)))
			buf = append(buf, s...)
		}
	case TypeSOA:
		if r.SOA == nil {
			return nil, ErrBadRData
		}
		if buf, err = appendName(buf, r.SOA.MName, compress, base); err != nil {
			return nil, err
		}
		if buf, err = appendName(buf, r.SOA.RName, compress, base); err != nil {
			return nil, err
		}
		buf = binary.BigEndian.AppendUint32(buf, r.SOA.Serial)
		buf = binary.BigEndian.AppendUint32(buf, r.SOA.Refresh)
		buf = binary.BigEndian.AppendUint32(buf, r.SOA.Retry)
		buf = binary.BigEndian.AppendUint32(buf, r.SOA.Expire)
		buf = binary.BigEndian.AppendUint32(buf, r.SOA.Minimum)
	default:
		buf = append(buf, r.Data...)
	}
	binary.BigEndian.PutUint16(buf[rdlenAt:], uint16(len(buf)-rdlenAt-2))
	return buf, nil
}

// Decode parses a complete DNS message.
func Decode(msg []byte) (*Message, error) {
	m := new(Message)
	if err := DecodeInto(msg, m); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodeInto parses a complete DNS message into m, reusing m's question
// and record slices (and its EDNS structs) from a previous decode so
// steady-state decode loops stop allocating per message. On error m's
// contents are undefined. Like Decode, it never retains references into
// msg.
func DecodeInto(msg []byte, m *Message) error {
	if len(msg) < 12 {
		return ErrTruncatedMessage
	}
	edns := m.Edns // scratch from a previous decode, if any
	*m = Message{
		pooled:      m.pooled,
		Questions:   m.Questions[:0],
		Answers:     m.Answers[:0],
		Authorities: m.Authorities[:0],
		Additionals: m.Additionals[:0],
	}
	m.Header.ID = binary.BigEndian.Uint16(msg[0:2])
	flags := binary.BigEndian.Uint16(msg[2:4])
	m.Header.Response = flags&(1<<15) != 0
	m.Header.OpCode = OpCode(flags >> 11 & 0xF)
	m.Header.Authoritative = flags&(1<<10) != 0
	m.Header.Truncated = flags&(1<<9) != 0
	m.Header.RecursionDesired = flags&(1<<8) != 0
	m.Header.RecursionAvailable = flags&(1<<7) != 0
	m.Header.RCode = RCode(flags & 0xF)

	qd := int(binary.BigEndian.Uint16(msg[4:6]))
	an := int(binary.BigEndian.Uint16(msg[6:8]))
	ns := int(binary.BigEndian.Uint16(msg[8:10]))
	ar := int(binary.BigEndian.Uint16(msg[10:12]))

	// One per-message name memo, living on this frame: every repeated
	// (compression-pointed) name after the first decode is a cache hit,
	// and uncached names assemble in the memo's scratch instead of a
	// strings.Builder — the decode loop's remaining allocations are one
	// string per *distinct* name plus the record slices' steady state.
	var names nameCache

	off := 12
	var err error
	for i := 0; i < qd; i++ {
		var q Question
		q.Name, off, err = decodeNameCached(msg, off, &names)
		if err != nil {
			return err
		}
		if off+4 > len(msg) {
			return ErrTruncatedMessage
		}
		q.Type = Type(binary.BigEndian.Uint16(msg[off:]))
		q.Class = Class(binary.BigEndian.Uint16(msg[off+2:]))
		off += 4
		m.Questions = append(m.Questions, q)
	}
	for si := 0; si < 3; si++ {
		var n int
		var dest *[]Record
		switch si {
		case 0:
			n, dest = an, &m.Answers
		case 1:
			n, dest = ns, &m.Authorities
		default:
			n, dest = ar, &m.Additionals
		}
		for i := 0; i < n; i++ {
			var r Record
			r, off, err = decodeRecord(msg, off, &names)
			if err != nil {
				return err
			}
			if si == 2 && r.Type == TypeOPT {
				if edns == nil {
					edns = new(EDNS)
				}
				if err := decodeOPTInto(&r, edns); err != nil {
					return err
				}
				// Merge the extended rcode bits into the header rcode.
				m.Header.RCode |= RCode(edns.ExtendedRCode) << 4
				m.Edns = edns
				continue
			}
			*dest = append(*dest, r)
		}
	}
	return nil
}

// decodeRecord parses one RR starting at off, returning it and the offset
// just past it.
func decodeRecord(msg []byte, off int, names *nameCache) (Record, int, error) {
	var r Record
	var err error
	r.Name, off, err = decodeNameCached(msg, off, names)
	if err != nil {
		return r, 0, err
	}
	if off+10 > len(msg) {
		return r, 0, ErrTruncatedMessage
	}
	r.Type = Type(binary.BigEndian.Uint16(msg[off:]))
	r.Class = Class(binary.BigEndian.Uint16(msg[off+2:]))
	r.TTL = binary.BigEndian.Uint32(msg[off+4:])
	rdlen := int(binary.BigEndian.Uint16(msg[off+8:]))
	off += 10
	if off+rdlen > len(msg) {
		return r, 0, ErrTruncatedMessage
	}
	rdata := msg[off : off+rdlen]
	switch r.Type {
	case TypeA:
		if rdlen != 4 {
			return r, 0, ErrBadRData
		}
		var b [4]byte
		copy(b[:], rdata)
		r.A = netip.AddrFrom4(b)
	case TypeAAAA:
		if rdlen != 16 {
			return r, 0, ErrBadRData
		}
		var b [16]byte
		copy(b[:], rdata)
		r.AAAA = netip.AddrFrom16(b)
	case TypeNS:
		if r.NS, _, err = decodeNameCached(msg, off, names); err != nil {
			return r, 0, err
		}
	case TypeCNAME:
		if r.CNAME, _, err = decodeNameCached(msg, off, names); err != nil {
			return r, 0, err
		}
	case TypePTR:
		if r.PTR, _, err = decodeNameCached(msg, off, names); err != nil {
			return r, 0, err
		}
	case TypeTXT:
		for p := 0; p < rdlen; {
			l := int(rdata[p])
			if p+1+l > rdlen {
				return r, 0, ErrBadRData
			}
			r.TXT = append(r.TXT, string(rdata[p+1:p+1+l]))
			p += 1 + l
		}
	case TypeSOA:
		soa := &SOAData{}
		p := off
		if soa.MName, p, err = decodeNameCached(msg, p, names); err != nil {
			return r, 0, err
		}
		if soa.RName, p, err = decodeNameCached(msg, p, names); err != nil {
			return r, 0, err
		}
		if p+20 > off+rdlen {
			return r, 0, ErrBadRData
		}
		soa.Serial = binary.BigEndian.Uint32(msg[p:])
		soa.Refresh = binary.BigEndian.Uint32(msg[p+4:])
		soa.Retry = binary.BigEndian.Uint32(msg[p+8:])
		soa.Expire = binary.BigEndian.Uint32(msg[p+12:])
		soa.Minimum = binary.BigEndian.Uint32(msg[p+16:])
		r.SOA = soa
	default:
		r.Data = append([]byte(nil), rdata...)
	}
	return r, off + rdlen, nil
}

// NewQuery builds a standard recursive query for (name, type) with a fresh
// random-ish ID derived from the name. Callers that need a specific ID can
// overwrite Header.ID.
func NewQuery(id uint16, name string, qtype Type) *Message {
	return &Message{
		Header: Header{
			ID:               id,
			OpCode:           OpCodeQuery,
			RecursionDesired: true,
		},
		Questions: []Question{{Name: CanonicalName(name), Type: qtype, Class: ClassIN}},
	}
}

// WithECS attaches an EDNS0 Client Subnet option for subnet to the query
// and returns it for chaining.
func (m *Message) WithECS(subnet netip.Prefix) *Message {
	m.SetECS(subnet)
	return m
}

// SetECS sets the EDNS0 Client Subnet option for subnet, rewriting the
// message's existing EDNS/ClientSubnet structs in place when present.
// Scan workers reuse one query message across millions of subnets by
// mutating only the prefix (and Header.ID) per query, so the steady
// state allocates nothing.
func (m *Message) SetECS(subnet netip.Prefix) {
	if m.Edns == nil {
		m.Edns = &EDNS{UDPSize: 1232}
	}
	cs := m.Edns.ClientSubnet
	if cs == nil {
		cs = new(ClientSubnet)
		m.Edns.ClientSubnet = cs
	}
	subnet = iputil.CanonicalPrefix(subnet)
	cs.SourcePrefixLen = uint8(subnet.Bits())
	cs.ScopePrefixLen = 0
	cs.Addr = subnet.Addr()
}
