package dnswire

import (
	"bytes"
	"net/netip"
	"testing"
)

// FuzzDecode hardens the wire parser: arbitrary input must never panic,
// and anything that decodes must re-encode and decode again to an
// equivalent message (idempotent canonical form).
func FuzzDecode(f *testing.F) {
	// Seed corpus: valid query, ECS query, multi-section response,
	// compressed names, and a few malformed shapes.
	q := NewQuery(1, "mask.icloud.com", TypeA)
	wire, _ := q.Encode(nil)
	f.Add(wire)
	ecs, _ := NewQuery(2, "mask-h2.icloud.com", TypeA).WithECS(netip.MustParsePrefix("203.0.113.0/24")).Encode(nil)
	f.Add(ecs)
	resp := &Message{
		Header:    Header{ID: 3, Response: true, Authoritative: true},
		Questions: []Question{{Name: "mask.icloud.com.", Type: TypeA, Class: ClassIN}},
		Answers: []Record{
			{Name: "mask.icloud.com.", Type: TypeA, Class: ClassIN, TTL: 60, A: netip.MustParseAddr("17.0.0.1")},
			{Name: "mask.icloud.com.", Type: TypeAAAA, Class: ClassIN, TTL: 60, AAAA: netip.MustParseAddr("2620:149::1")},
			{Name: "mask.icloud.com.", Type: TypeTXT, Class: ClassIN, TTL: 60, TXT: []string{"x"}},
		},
		Edns: &EDNS{UDPSize: 1232, ClientSubnet: &ClientSubnet{SourcePrefixLen: 24, ScopePrefixLen: 16, Addr: netip.MustParseAddr("203.0.113.0")}},
	}
	rw, _ := resp.Encode(nil)
	f.Add(rw)
	f.Add([]byte{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xC0, 12, 0, 1, 0, 1})
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		re, err := m.Encode(nil)
		if err != nil {
			// Messages with section counts exceeding what Encode can
			// express (e.g. absurd rdata) may refuse; that is fine.
			return
		}
		m2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded message failed: %v", err)
		}
		if len(m2.Questions) != len(m.Questions) || len(m2.Answers) != len(m.Answers) {
			t.Fatalf("canonical form not stable: %d/%d vs %d/%d",
				len(m2.Questions), len(m2.Answers), len(m.Questions), len(m.Answers))
		}
	})
}

// FuzzDecodeName hardens the name decompressor specifically.
func FuzzDecodeName(f *testing.F) {
	f.Add([]byte{4, 'm', 'a', 's', 'k', 0}, 0)
	f.Add([]byte{0xC0, 0}, 0)
	f.Add([]byte{63, 0}, 0)
	f.Fuzz(func(t *testing.T, msg []byte, off int) {
		if off < 0 || off > len(msg) {
			return
		}
		_, _, _ = decodeName(msg, off)
	})
}
