// Package quicsim implements the thin slice of QUIC needed to reproduce
// the paper's §3 probing observations: iCloud Private Relay ingress nodes
// do not answer standard QUIC Initials (QScanner and curl time out), yet
// they do answer Version Negotiation when poked with an unknown version
// (the ZMap QUIC module), advertising QUICv1 alongside drafts 29–27.
//
// The package provides the long-header codec, a Version Negotiation
// responder modeling an ingress node, and the two probe types.
package quicsim

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// QUIC version numbers.
const (
	VersionV1      uint32 = 0x00000001
	VersionDraft29 uint32 = 0xff00001d
	VersionDraft28 uint32 = 0xff00001c
	VersionDraft27 uint32 = 0xff00001b

	// VersionNegotiation is the version field of a VN packet.
	VersionNegotiation uint32 = 0x00000000

	// VersionForceNegotiation is a reserved-looking version (RFC 9000
	// §6.3 greasing pattern) that servers must not speak, forcing a VN
	// response — the ZMap module's trick.
	VersionForceNegotiation uint32 = 0x1a1a1a1a
)

// SupportedVersions is what ingress nodes advertise (§3).
var SupportedVersions = []uint32{VersionV1, VersionDraft29, VersionDraft28, VersionDraft27}

// Errors.
var (
	ErrNotLongHeader = errors.New("quicsim: not a QUIC long-header packet")
	ErrTruncated     = errors.New("quicsim: truncated packet")
	ErrNotVN         = errors.New("quicsim: not a version negotiation packet")
)

// LongHeader is the decoded invariant part of a QUIC long-header packet
// (RFC 8999): first byte, version and connection IDs.
type LongHeader struct {
	FirstByte byte
	Version   uint32
	DCID      []byte
	SCID      []byte
	// Payload is everything after the SCID (type-specific fields).
	Payload []byte
}

// IsInitial reports whether the packet type bits mark an Initial
// (long-header type 0) under version 1 / the drafts.
func (h *LongHeader) IsInitial() bool {
	return h.FirstByte&0x30 == 0x00
}

// AppendLongHeader serializes the invariant header fields.
func AppendLongHeader(buf []byte, h *LongHeader) ([]byte, error) {
	if len(h.DCID) > 255 || len(h.SCID) > 255 {
		return nil, fmt.Errorf("quicsim: connection ID too long")
	}
	buf = append(buf, h.FirstByte|0x80) // long header bit
	buf = binary.BigEndian.AppendUint32(buf, h.Version)
	buf = append(buf, byte(len(h.DCID)))
	buf = append(buf, h.DCID...)
	buf = append(buf, byte(len(h.SCID)))
	buf = append(buf, h.SCID...)
	buf = append(buf, h.Payload...)
	return buf, nil
}

// ParseLongHeader decodes the invariant fields of a long-header packet.
func ParseLongHeader(pkt []byte) (*LongHeader, error) {
	if len(pkt) < 7 {
		return nil, ErrTruncated
	}
	if pkt[0]&0x80 == 0 {
		return nil, ErrNotLongHeader
	}
	h := &LongHeader{FirstByte: pkt[0]}
	h.Version = binary.BigEndian.Uint32(pkt[1:5])
	off := 5
	dcidLen := int(pkt[off])
	off++
	if off+dcidLen > len(pkt) {
		return nil, ErrTruncated
	}
	h.DCID = append([]byte(nil), pkt[off:off+dcidLen]...)
	off += dcidLen
	if off >= len(pkt) {
		return nil, ErrTruncated
	}
	scidLen := int(pkt[off])
	off++
	if off+scidLen > len(pkt) {
		return nil, ErrTruncated
	}
	h.SCID = append([]byte(nil), pkt[off:off+scidLen]...)
	off += scidLen
	h.Payload = append([]byte(nil), pkt[off:]...)
	return h, nil
}

// BuildInitial builds a client Initial datagram for the given version with
// the connection IDs and an opaque payload (token + crypto data stand-in).
// Real Initials are ≥1200 bytes; the builder pads accordingly so endpoint
// anti-amplification checks behave realistically.
func BuildInitial(version uint32, dcid, scid, payload []byte) ([]byte, error) {
	h := &LongHeader{
		FirstByte: 0x40, // fixed bit; type 0 (Initial)
		Version:   version,
		DCID:      dcid,
		SCID:      scid,
		Payload:   payload,
	}
	pkt, err := AppendLongHeader(nil, h)
	if err != nil {
		return nil, err
	}
	if len(pkt) < 1200 {
		pkt = append(pkt, make([]byte, 1200-len(pkt))...)
	}
	return pkt, nil
}

// BuildVersionNegotiation builds the server's VN response to a client
// packet: version zero, client CIDs echoed swapped, then the supported
// version list (RFC 8999 §6).
func BuildVersionNegotiation(clientDCID, clientSCID []byte, versions []uint32) ([]byte, error) {
	var payload []byte
	for _, v := range versions {
		payload = binary.BigEndian.AppendUint32(payload, v)
	}
	h := &LongHeader{
		FirstByte: 0x00, // type bits are unused in VN
		Version:   VersionNegotiation,
		DCID:      clientSCID, // swapped
		SCID:      clientDCID,
		Payload:   payload,
	}
	return AppendLongHeader(nil, h)
}

// ParseVersionNegotiation extracts the advertised versions from a VN
// packet, validating the CID echo against the probe's CIDs.
func ParseVersionNegotiation(pkt, probeDCID, probeSCID []byte) ([]uint32, error) {
	h, err := ParseLongHeader(pkt)
	if err != nil {
		return nil, err
	}
	if h.Version != VersionNegotiation {
		return nil, ErrNotVN
	}
	if !bytes.Equal(h.DCID, probeSCID) || !bytes.Equal(h.SCID, probeDCID) {
		return nil, fmt.Errorf("quicsim: VN connection ID echo mismatch")
	}
	if len(h.Payload)%4 != 0 || len(h.Payload) == 0 {
		return nil, ErrTruncated
	}
	out := make([]uint32, 0, len(h.Payload)/4)
	for i := 0; i+4 <= len(h.Payload); i += 4 {
		out = append(out, binary.BigEndian.Uint32(h.Payload[i:]))
	}
	return out, nil
}

// relayTokenMagic marks Initials produced by the genuine relay client.
// Apple's ingress nodes authenticate with pinned raw public keys; foreign
// handshakes never get past the first flight. The magic models "knows the
// proprietary handshake" without re-implementing the cryptography.
var relayTokenMagic = []byte("apple-relay-token-v1")

// IngressEndpoint models a Private Relay ingress node's UDP behaviour.
type IngressEndpoint struct{}

// HandleDatagram returns the endpoint's response to an incoming datagram,
// or nil when the node stays silent (the common case for scanners):
//
//   - Short-header / garbage: silence.
//   - Long header with an unsupported version: Version Negotiation.
//   - Standards-conforming Initial without the proprietary token: silence
//     (QScanner, curl: "the connection attempt times out").
//   - Proprietary Initial: an acknowledgment datagram (handshake
//     continues at a higher layer in internal/masque).
func (e *IngressEndpoint) HandleDatagram(pkt []byte) []byte {
	h, err := ParseLongHeader(pkt)
	if err != nil {
		return nil
	}
	if !versionSupported(h.Version) {
		vn, err := BuildVersionNegotiation(h.DCID, h.SCID, SupportedVersions)
		if err != nil {
			return nil
		}
		return vn
	}
	if !h.IsInitial() {
		return nil
	}
	if !bytes.Contains(h.Payload, relayTokenMagic) {
		return nil // unauthenticated standard handshake: drop
	}
	// Accept: echo an Initial back with swapped CIDs.
	resp, err := AppendLongHeader(nil, &LongHeader{
		FirstByte: 0x40,
		Version:   h.Version,
		DCID:      h.SCID,
		SCID:      h.DCID,
		Payload:   []byte("relay-hs-ok"),
	})
	if err != nil {
		return nil
	}
	return resp
}

func versionSupported(v uint32) bool {
	for _, s := range SupportedVersions {
		if v == s {
			return true
		}
	}
	return false
}

// ProbeResult summarizes one scanner probe against an ingress node.
type ProbeResult struct {
	// Responded is false when the node stayed silent (timeout).
	Responded bool
	// Versions holds the VN-advertised versions, when any.
	Versions []uint32
	// HandshakeOK is true when a proprietary handshake was accepted.
	HandshakeOK bool
}

// VersionProbe emulates the ZMap QUIC module: an Initial with a version
// the server cannot speak, forcing Version Negotiation.
func VersionProbe(endpoint *IngressEndpoint) (ProbeResult, error) {
	dcid := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	scid := []byte{9, 10, 11, 12}
	pkt, err := BuildInitial(VersionForceNegotiation, dcid, scid, []byte("zmap-probe"))
	if err != nil {
		return ProbeResult{}, err
	}
	resp := endpoint.HandleDatagram(pkt)
	if resp == nil {
		return ProbeResult{}, nil
	}
	versions, err := ParseVersionNegotiation(resp, dcid, scid)
	if err != nil {
		return ProbeResult{}, err
	}
	return ProbeResult{Responded: true, Versions: versions}, nil
}

// StandardHandshakeProbe emulates QScanner/curl: a well-formed QUICv1
// Initial carrying a standard TLS ClientHello (no relay token).
func StandardHandshakeProbe(endpoint *IngressEndpoint) (ProbeResult, error) {
	pkt, err := BuildInitial(VersionV1, []byte{1, 1, 1, 1, 1, 1, 1, 1}, []byte{2, 2, 2, 2}, []byte("tls13-client-hello"))
	if err != nil {
		return ProbeResult{}, err
	}
	resp := endpoint.HandleDatagram(pkt)
	return ProbeResult{Responded: resp != nil}, nil
}

// RelayHandshakeProbe emulates the genuine relay client's first flight.
func RelayHandshakeProbe(endpoint *IngressEndpoint) (ProbeResult, error) {
	pkt, err := BuildInitial(VersionV1, []byte{3, 3, 3, 3, 3, 3, 3, 3}, []byte{4, 4, 4, 4}, relayTokenMagic)
	if err != nil {
		return ProbeResult{}, err
	}
	resp := endpoint.HandleDatagram(pkt)
	if resp == nil {
		return ProbeResult{}, nil
	}
	h, err := ParseLongHeader(resp)
	if err != nil {
		return ProbeResult{}, err
	}
	return ProbeResult{
		Responded:   true,
		HandshakeOK: bytes.Equal(h.Payload, []byte("relay-hs-ok")),
	}, nil
}
