package quicsim

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"
)

func TestLongHeaderRoundTrip(t *testing.T) {
	h := &LongHeader{
		FirstByte: 0x40,
		Version:   VersionV1,
		DCID:      []byte{1, 2, 3, 4, 5, 6, 7, 8},
		SCID:      []byte{9, 10},
		Payload:   []byte("payload"),
	}
	wire, err := AppendLongHeader(nil, h)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseLongHeader(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != VersionV1 || !bytes.Equal(got.DCID, h.DCID) || !bytes.Equal(got.SCID, h.SCID) || !bytes.Equal(got.Payload, h.Payload) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if !got.IsInitial() {
		t.Fatal("type-0 packet not detected as Initial")
	}
}

func TestParseRejectsShortHeader(t *testing.T) {
	pkt := make([]byte, 32)
	pkt[0] = 0x40 // long-header bit clear
	if _, err := ParseLongHeader(pkt); err != ErrNotLongHeader {
		t.Fatalf("err = %v", err)
	}
}

func TestParseRejectsTruncated(t *testing.T) {
	h := &LongHeader{FirstByte: 0x40, Version: VersionV1, DCID: make([]byte, 20), SCID: make([]byte, 8)}
	wire, _ := AppendLongHeader(nil, h)
	for cut := 1; cut < len(wire); cut++ {
		if _, err := ParseLongHeader(wire[:cut]); err == nil {
			// Cuts landing exactly after the SCID with empty payload are
			// legal packets; only cuts inside mandatory fields must fail.
			if cut < 7+len(h.DCID)+1+len(h.SCID) {
				t.Fatalf("truncated at %d accepted", cut)
			}
		}
	}
}

func TestBuildInitialPadsTo1200(t *testing.T) {
	pkt, err := BuildInitial(VersionV1, []byte{1}, []byte{2}, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkt) < 1200 {
		t.Fatalf("initial size %d < 1200", len(pkt))
	}
}

func TestOversizeCIDRejected(t *testing.T) {
	if _, err := AppendLongHeader(nil, &LongHeader{DCID: make([]byte, 256)}); err == nil {
		t.Fatal("256-byte DCID accepted")
	}
}

func TestVersionNegotiationRoundTrip(t *testing.T) {
	dcid := []byte{1, 2, 3, 4}
	scid := []byte{5, 6}
	vn, err := BuildVersionNegotiation(dcid, scid, SupportedVersions)
	if err != nil {
		t.Fatal(err)
	}
	versions, err := ParseVersionNegotiation(vn, dcid, scid)
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 4 || versions[0] != VersionV1 || versions[1] != VersionDraft29 ||
		versions[2] != VersionDraft28 || versions[3] != VersionDraft27 {
		t.Fatalf("versions = %#x", versions)
	}
}

func TestVNEchoValidation(t *testing.T) {
	vn, _ := BuildVersionNegotiation([]byte{1}, []byte{2}, SupportedVersions)
	if _, err := ParseVersionNegotiation(vn, []byte{9}, []byte{2}); err == nil {
		t.Fatal("CID mismatch accepted")
	}
}

func TestVNRejectsNonVN(t *testing.T) {
	pkt, _ := BuildInitial(VersionV1, []byte{1}, []byte{2}, nil)
	if _, err := ParseVersionNegotiation(pkt, []byte{1}, []byte{2}); err != ErrNotVN {
		t.Fatalf("err = %v", err)
	}
}

// The §3 behaviour matrix.

func TestIngressVersionProbeGetsVN(t *testing.T) {
	ep := &IngressEndpoint{}
	res, err := VersionProbe(ep)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Responded {
		t.Fatal("ZMap-style probe got no VN")
	}
	want := map[uint32]bool{VersionV1: true, VersionDraft29: true, VersionDraft28: true, VersionDraft27: true}
	if len(res.Versions) != len(want) {
		t.Fatalf("advertised %d versions", len(res.Versions))
	}
	for _, v := range res.Versions {
		if !want[v] {
			t.Fatalf("unexpected version %#x", v)
		}
	}
}

func TestIngressStandardHandshakeTimesOut(t *testing.T) {
	ep := &IngressEndpoint{}
	res, err := StandardHandshakeProbe(ep)
	if err != nil {
		t.Fatal(err)
	}
	if res.Responded {
		t.Fatal("standard QUIC handshake got a response; paper observed silence")
	}
}

func TestIngressRelayHandshakeAccepted(t *testing.T) {
	ep := &IngressEndpoint{}
	res, err := RelayHandshakeProbe(ep)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Responded || !res.HandshakeOK {
		t.Fatalf("relay handshake rejected: %+v", res)
	}
}

func TestIngressSilentOnGarbage(t *testing.T) {
	ep := &IngressEndpoint{}
	if resp := ep.HandleDatagram([]byte{0x00, 0x01, 0x02}); resp != nil {
		t.Fatal("garbage got a response")
	}
	if resp := ep.HandleDatagram(nil); resp != nil {
		t.Fatal("empty datagram got a response")
	}
	// Short-header packet (e.g. stray 1-RTT) is ignored.
	short := make([]byte, 50)
	short[0] = 0x40
	if resp := ep.HandleDatagram(short); resp != nil {
		t.Fatal("short header got a response")
	}
}

func TestIngressNonInitialLongHeaderIgnored(t *testing.T) {
	// Handshake-type (0x20) long header in a supported version: silence.
	h := &LongHeader{FirstByte: 0x60, Version: VersionV1, DCID: []byte{1}, SCID: []byte{2}}
	wire, _ := AppendLongHeader(nil, h)
	ep := &IngressEndpoint{}
	if resp := ep.HandleDatagram(wire); resp != nil {
		t.Fatal("non-Initial got a response")
	}
}

// Property: parser never panics and always round-trips valid headers.
func TestPropertyLongHeaderRoundTrip(t *testing.T) {
	f := func(fb byte, version uint32, dcid, scid, payload []byte) bool {
		if len(dcid) > 255 || len(scid) > 255 {
			return true
		}
		h := &LongHeader{FirstByte: fb &^ 0x80, Version: version, DCID: dcid, SCID: scid, Payload: payload}
		wire, err := AppendLongHeader(nil, h)
		if err != nil {
			return false
		}
		got, err := ParseLongHeader(wire)
		if err != nil {
			return false
		}
		return got.Version == version && bytes.Equal(got.DCID, dcid) && bytes.Equal(got.SCID, scid) && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyParseNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic on %x: %v", data, r)
			}
		}()
		_, _ = ParseLongHeader(data)
		ep := &IngressEndpoint{}
		_ = ep.HandleDatagram(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUDPEndpointProbes(t *testing.T) {
	ep, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	addr := ep.Addr().String()

	// ZMap-style version probe over the socket.
	dcid := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	scid := []byte{9, 10, 11, 12}
	probe, err := BuildInitial(VersionForceNegotiation, dcid, scid, []byte("zmap"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ProbeUDP(addr, probe, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp == nil {
		t.Fatal("no VN over UDP")
	}
	versions, err := ParseVersionNegotiation(resp, dcid, scid)
	if err != nil || len(versions) != 4 {
		t.Fatalf("VN parse: %v %v", versions, err)
	}

	// Standard handshake over the socket: silence.
	std, err := BuildInitial(VersionV1, dcid, scid, []byte("tls-ch"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = ProbeUDP(addr, std, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if resp != nil {
		t.Fatalf("standard handshake answered over UDP: %x", resp)
	}
}
