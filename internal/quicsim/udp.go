package quicsim

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// UDP transport for the ingress endpoint: the §3 probes can run over a
// real socket, exactly like ZMap and QScanner would on the Internet.

// UDPEndpoint serves an IngressEndpoint on a UDP socket.
type UDPEndpoint struct {
	ep   *IngressEndpoint
	conn net.PacketConn
	wg   sync.WaitGroup
}

// ListenUDP starts serving ingress behaviour on addr.
func ListenUDP(addr string) (*UDPEndpoint, error) {
	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("quicsim: listen: %w", err)
	}
	u := &UDPEndpoint{ep: &IngressEndpoint{}, conn: conn}
	u.wg.Add(1)
	go u.serve()
	return u, nil
}

// Addr returns the bound address.
func (u *UDPEndpoint) Addr() net.Addr { return u.conn.LocalAddr() }

// Close stops the endpoint.
func (u *UDPEndpoint) Close() error {
	err := u.conn.Close()
	u.wg.Wait()
	return err
}

func (u *UDPEndpoint) serve() {
	defer u.wg.Done()
	buf := make([]byte, 2048)
	for {
		n, raddr, err := u.conn.ReadFrom(buf)
		if err != nil {
			return
		}
		if resp := u.ep.HandleDatagram(buf[:n]); resp != nil {
			_, _ = u.conn.WriteTo(resp, raddr)
		}
	}
}

// ProbeUDP sends one probe datagram to a UDP ingress endpoint and waits
// up to timeout for a response; nil response means silence (the QScanner
// outcome for standard handshakes).
func ProbeUDP(addr string, probe []byte, timeout time.Duration) ([]byte, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if _, err := conn.Write(probe); err != nil {
		return nil, err
	}
	_ = conn.SetReadDeadline(time.Now().Add(timeout))
	buf := make([]byte, 2048)
	n, err := conn.Read(buf)
	if err != nil {
		return nil, nil // timeout → silence, not an error
	}
	return append([]byte(nil), buf[:n]...), nil
}
