package colstore

// The binary sidecar codec. A sidecar file is the columnar dataset laid
// out verbatim: a fixed header carrying the row counts, the source-text
// fingerprint and a section-offset table, the eight column sections each
// 8-byte aligned, and a row-count/checksum footer. Loading is
// near-zero-copy: on little-endian hosts the column slices alias the
// file buffer directly (the sections are aligned by construction), so a
// load costs one read plus a checksum sweep — no per-row parsing.
//
// The canonical text format (core.WriteCanonical) stays the interchange
// and golden surface; the sidecar is a cache over it. The header's
// SourceInfo pins which text bytes the sidecar was built from, so a
// consumer can detect staleness without parsing the text. Torn,
// truncated or bit-flipped sidecars are rejected with a typed
// *CorruptError — callers quarantine and rebuild from the text, exactly
// like the checkpoint machinery.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"unsafe"

	"github.com/relay-networks/privaterelay/internal/bgp"
)

const (
	// magic and endMagic frame a sidecar file ("CLS1" / "1END" little-
	// endian). The version rides in the magic: an incompatible layout
	// gets a new magic and old readers reject it as corrupt-by-format.
	magic    uint32 = 0x31534C43 // "CLS1"
	endMagic uint32 = 0x444E4531 // "1END"

	// headerFixed is the byte length of the fixed header before the
	// domain string: magic, hdrLen, three row counts, source fingerprint,
	// domain length, and the eight section offsets.
	headerFixed = 4 + 4 + 3*8 + 8 + 4 + 4 + numSections*8

	// footerLen is totalRows + payload CRC + end magic.
	footerLen = 8 + 4 + 4

	// numSections is the column count of the on-disk layout.
	numSections = 8

)

// SourceInfo fingerprints the canonical text a sidecar was built from:
// its byte length and CRC-32C. A sidecar is valid for exactly one text
// file content; any text rewrite makes it stale.
type SourceInfo struct {
	Size int64
	CRC  uint32
}

// Fingerprint returns the SourceInfo of a canonical text body.
func Fingerprint(text []byte) SourceInfo {
	return SourceInfo{Size: int64(len(text)), CRC: crc32.Checksum(text, crcTable)}
}

// crcTable is the Castagnoli polynomial — hardware-accelerated on the
// platforms the scans run on.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt tags every sidecar-integrity failure, mirroring
// core.ErrCheckpointCorrupt for the text artifacts. Match with
// errors.Is; the concrete *CorruptError carries the detail.
var ErrCorrupt = errors.New("colstore: sidecar corrupt")

// CorruptError reports a sidecar that failed decoding: truncated,
// misframed, or failing its checksum.
type CorruptError struct {
	// Path is the offending file ("" when decoded from memory).
	Path string
	// Reason describes the failure.
	Reason string
}

// Error implements error.
func (e *CorruptError) Error() string {
	msg := "colstore: sidecar corrupt"
	if e.Path != "" {
		msg += " " + e.Path
	}
	return msg + ": " + e.Reason
}

// Is reports target equivalence so errors.Is(err, ErrCorrupt) matches
// any CorruptError.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

func corrupt(format string, args ...any) error {
	return &CorruptError{Reason: fmt.Sprintf(format, args...)}
}

// hostLittle reports whether the host stores integers little-endian —
// the layout the codec writes — so loads can alias the file buffer
// instead of byte-swapping.
var hostLittle = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// pad8 returns n rounded up to the next multiple of 8.
func pad8(n int) int { return (n + 7) &^ 7 }

// allZero reports whether every byte of b is zero. Padding bytes must
// be: it is what makes encoding a bijection (decode∘encode = id and
// encode∘decode = id on accepted files).
func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// sectionSizes returns the byte length of each column section (before
// alignment padding) for a dataset with the given row counts.
func sectionSizes(v4, v6, srv int) [numSections]int {
	return [numSections]int{
		4 * v4, // V4Addr
		4 * v4, // V4ASN
		8 * v6, // V6Hi
		8 * v6, // V6Lo
		4 * v6, // V6ASN
		4 * srv, // SrvClient
		4 * srv, // SrvOp
		8 * srv, // SrvCount
	}
}

// AppendBinary appends the sidecar encoding of d to buf and returns the
// extended slice. src fingerprints the canonical text d was parsed
// from; pass the zero SourceInfo for a sidecar with no text anchor.
// The encoding is a pure function of (d, src): byte-identical across
// runs, hosts and endianness.
func (d *Dataset) AppendBinary(buf []byte, src SourceInfo) []byte {
	v4, v6, srv := len(d.V4Addr), len(d.V6Hi), len(d.SrvClient)
	sizes := sectionSizes(v4, v6, srv)
	hdrLen := pad8(headerFixed + len(d.Domain))
	total := hdrLen
	var offs [numSections]uint64
	for i, sz := range sizes {
		offs[i] = uint64(total)
		total += pad8(sz)
	}
	start := len(buf)
	buf = append(buf, make([]byte, total+footerLen)...)
	out := buf[start:]

	le := binary.LittleEndian
	le.PutUint32(out[0:], magic)
	le.PutUint32(out[4:], uint32(hdrLen))
	le.PutUint64(out[8:], uint64(v4))
	le.PutUint64(out[16:], uint64(v6))
	le.PutUint64(out[24:], uint64(srv))
	le.PutUint64(out[32:], uint64(src.Size))
	le.PutUint32(out[40:], src.CRC)
	le.PutUint32(out[44:], uint32(len(d.Domain)))
	for i, off := range offs {
		le.PutUint64(out[48+8*i:], off)
	}
	copy(out[headerFixed:], d.Domain)

	putU32s := func(off uint64, vals []uint32) {
		b := out[off:]
		for i, v := range vals {
			le.PutUint32(b[4*i:], v)
		}
	}
	putASNs := func(off uint64, vals []bgp.ASN) {
		b := out[off:]
		for i, v := range vals {
			le.PutUint32(b[4*i:], uint32(v))
		}
	}
	putU64s := func(off uint64, vals []uint64) {
		b := out[off:]
		for i, v := range vals {
			le.PutUint64(b[8*i:], v)
		}
	}
	putU32s(offs[0], d.V4Addr)
	putASNs(offs[1], d.V4ASN)
	putU64s(offs[2], d.V6Hi)
	putU64s(offs[3], d.V6Lo)
	putASNs(offs[4], d.V6ASN)
	putASNs(offs[5], d.SrvClient)
	putASNs(offs[6], d.SrvOp)
	{
		b := out[offs[7]:]
		for i, v := range d.SrvCount {
			le.PutUint64(b[8*i:], uint64(v))
		}
	}

	le.PutUint64(out[total:], uint64(v4+v6+srv))
	le.PutUint32(out[total+8:], crc32.Checksum(out[:total], crcTable))
	le.PutUint32(out[total+12:], endMagic)
	return buf
}

// DecodeBinary decodes a sidecar produced by AppendBinary. On
// little-endian hosts the returned dataset's columns alias data — treat
// both as immutable for the dataset's lifetime. Any framing, length or
// checksum violation returns a *CorruptError (errors.Is ErrCorrupt);
// a valid file never partially decodes.
func DecodeBinary(data []byte) (*Dataset, SourceInfo, error) {
	var src SourceInfo
	if len(data) < headerFixed+footerLen {
		return nil, src, corrupt("short file: %d bytes", len(data))
	}
	le := binary.LittleEndian
	if got := le.Uint32(data[0:]); got != magic {
		return nil, src, corrupt("bad magic %#x", got)
	}
	hdrLen := int(le.Uint32(data[4:]))
	v4 := le.Uint64(data[8:])
	v6 := le.Uint64(data[16:])
	srv := le.Uint64(data[24:])
	// Each v4 row occupies 8 payload bytes across its sections, each v6
	// row 20, each serving row 16 — counts beyond those densities are
	// corrupt, and rejecting them here keeps a forged header from
	// driving huge allocations or integer overflow below.
	if limit := uint64(len(data)); v4 > limit/8 || v6 > limit/20 || srv > limit/16 {
		return nil, src, corrupt("implausible row counts %d/%d/%d for a %d-byte file", v4, v6, srv, len(data))
	}
	src.Size = int64(le.Uint64(data[32:]))
	src.CRC = le.Uint32(data[40:])
	domLen := int(le.Uint32(data[44:]))
	if hdrLen != pad8(headerFixed+domLen) || hdrLen > len(data) {
		return nil, src, corrupt("header length %d inconsistent with domain length %d", hdrLen, domLen)
	}

	if !allZero(data[headerFixed+domLen : hdrLen]) {
		return nil, src, corrupt("nonzero header padding")
	}

	sizes := sectionSizes(int(v4), int(v6), int(srv))
	want := hdrLen
	var offs [numSections]int
	for i, sz := range sizes {
		off := le.Uint64(data[48+8*i:])
		if off != uint64(want) {
			return nil, src, corrupt("section %d at offset %d, want %d", i, off, want)
		}
		offs[i] = want
		// Row counts are bounded by the file size, so these int sums
		// cannot overflow; still, bound-check before touching padding.
		if want+pad8(sz)+footerLen > len(data) {
			return nil, src, corrupt("file is %d bytes, truncated inside section %d", len(data), i)
		}
		want += pad8(sz)
		if !allZero(data[offs[i]+sz : want]) {
			return nil, src, corrupt("nonzero padding after section %d", i)
		}
	}
	if len(data) != want+footerLen {
		return nil, src, corrupt("file is %d bytes, layout wants %d (truncated write?)", len(data), want+footerLen)
	}
	rows := le.Uint64(data[want:])
	if rows != v4+v6+srv {
		return nil, src, corrupt("footer declares %d rows, header %d", rows, v4+v6+srv)
	}
	if got := le.Uint32(data[want+12:]); got != endMagic {
		return nil, src, corrupt("bad end magic %#x", got)
	}
	if got, sum := le.Uint32(data[want+8:]), crc32.Checksum(data[:want], crcTable); got != sum {
		return nil, src, corrupt("payload checksum %#x, computed %#x", got, sum)
	}

	d := &Dataset{
		Domain:    string(data[headerFixed : headerFixed+domLen]),
		V4Addr:    u32View(data[offs[0]:], int(v4)),
		V4ASN:     asnView(data[offs[1]:], int(v4)),
		V6Hi:      u64View(data[offs[2]:], int(v6)),
		V6Lo:      u64View(data[offs[3]:], int(v6)),
		V6ASN:     asnView(data[offs[4]:], int(v6)),
		SrvClient: asnView(data[offs[5]:], int(srv)),
		SrvOp:     asnView(data[offs[6]:], int(srv)),
		SrvCount:  i64View(data[offs[7]:], int(srv)),
	}
	return d, src, nil
}

// The *View helpers turn a section of the file buffer into a typed
// column. On little-endian hosts with the expected alignment they alias
// the buffer (zero copy); otherwise they decode into a fresh slice.
// Section offsets are multiples of 8 by construction, so as long as the
// buffer base is 8-aligned (any heap []byte of this size is) the alias
// path always taken on amd64/arm64.

func aligned(b []byte, align uintptr) bool {
	return uintptr(unsafe.Pointer(&b[0]))%align == 0
}

func u32View(b []byte, n int) []uint32 {
	if n == 0 {
		return nil
	}
	if hostLittle && aligned(b, 4) {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out
}

func asnView(b []byte, n int) []bgp.ASN {
	if n == 0 {
		return nil
	}
	if hostLittle && aligned(b, 4) {
		return unsafe.Slice((*bgp.ASN)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]bgp.ASN, n)
	for i := range out {
		out[i] = bgp.ASN(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

func u64View(b []byte, n int) []uint64 {
	if n == 0 {
		return nil
	}
	if hostLittle && aligned(b, 8) {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return out
}

func i64View(b []byte, n int) []int64 {
	if n == 0 {
		return nil
	}
	if hostLittle && aligned(b, 8) {
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}
