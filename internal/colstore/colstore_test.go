package colstore

import (
	"math/rand/v2"
	"net/netip"
	"slices"
	"testing"

	"github.com/relay-networks/privaterelay/internal/bgp"
)

// seededDataset builds a dataset with v4n IPv4 and v6n IPv6 rows (plus
// a few serving triples) from a seeded source, in shuffled insertion
// order, then normalizes. Returned datasets are deterministic per seed.
func seededDataset(t testing.TB, seed uint64, v4n, v6n int) *Dataset {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 0xc01))
	d := &Dataset{Domain: "mask.icloud.com."}
	seen4 := map[uint32]bool{}
	for len(d.V4Addr) < v4n {
		k := rng.Uint32()
		if seen4[k] {
			continue
		}
		seen4[k] = true
		d.V4Addr = append(d.V4Addr, k)
		d.V4ASN = append(d.V4ASN, bgp.ASN(rng.Uint32N(70000)+1))
	}
	type key6 struct{ hi, lo uint64 }
	seen6 := map[key6]bool{}
	for len(d.V6Hi) < v6n {
		k := key6{rng.Uint64(), rng.Uint64()}
		if seen6[k] {
			continue
		}
		seen6[k] = true
		d.V6Hi = append(d.V6Hi, k.hi)
		d.V6Lo = append(d.V6Lo, k.lo)
		d.V6ASN = append(d.V6ASN, bgp.ASN(rng.Uint32N(70000)+1))
	}
	for c := 0; c < 5 && v4n > 0; c++ {
		d.SrvClient = append(d.SrvClient, bgp.ASN(100+c))
		d.SrvOp = append(d.SrvOp, bgp.ASN(rng.Uint32N(3)+6185))
		d.SrvCount = append(d.SrvCount, int64(rng.Uint32N(1000)))
	}
	if err := d.Normalize(); err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	return d
}

// TestColumnOrderMatchesNetipCompare is the ordering contract: the
// family-split columns visit addresses in exactly netip.Addr.Compare
// order, including 4-in-6 addresses landing in the v6 column.
func TestColumnOrderMatchesNetipCompare(t *testing.T) {
	d := seededDataset(t, 7, 300, 200)
	// Mix in a 4-in-6 mapped address: Is4() is false, so it belongs to
	// the v6 column even though it prints like IPv4.
	mapped := netip.AddrFrom16(netip.MustParseAddr("::ffff:10.1.2.3").As16())
	hi, lo := V6Key(mapped)
	d.V6Hi = append(d.V6Hi, hi)
	d.V6Lo = append(d.V6Lo, lo)
	d.V6ASN = append(d.V6ASN, 714)
	if err := d.Normalize(); err != nil {
		t.Fatalf("re-Normalize: %v", err)
	}

	var got []netip.Addr
	d.ForEachAddr(func(a netip.Addr, _ bgp.ASN) bool {
		got = append(got, a)
		return true
	})
	want := slices.Clone(got)
	slices.SortFunc(want, netip.Addr.Compare)
	if !slices.Equal(got, want) {
		t.Fatalf("column order diverges from netip.Addr.Compare order")
	}
	if !slices.Contains(got, mapped) {
		t.Fatalf("4-in-6 address missing from walk")
	}
}

func TestNormalizeRejectsDuplicates(t *testing.T) {
	d := &Dataset{
		V4Addr: []uint32{9, 3, 9},
		V4ASN:  []bgp.ASN{1, 2, 3},
	}
	if err := d.Normalize(); err == nil {
		t.Fatal("duplicate v4 key accepted")
	}
	d = &Dataset{
		SrvClient: []bgp.ASN{5, 5},
		SrvOp:     []bgp.ASN{7, 7},
		SrvCount:  []int64{1, 2},
	}
	if err := d.Normalize(); err == nil {
		t.Fatal("duplicate serving key accepted")
	}
}

func TestLookup(t *testing.T) {
	d := seededDataset(t, 11, 500, 400)
	hits := 0
	d.ForEachAddr(func(a netip.Addr, as bgp.ASN) bool {
		got, ok := d.Lookup(a)
		if !ok || got != as {
			t.Fatalf("Lookup(%v) = %v, %v; want %v, true", a, got, ok, as)
		}
		hits++
		return true
	})
	if hits != d.Addrs() {
		t.Fatalf("visited %d rows, want %d", hits, d.Addrs())
	}
	for _, miss := range []string{"0.0.0.0", "255.255.255.255", "::", "2001:db8::1"} {
		a := netip.MustParseAddr(miss)
		if _, ok := d.Lookup(a); ok {
			// A seeded collision is astronomically unlikely; treat as bug.
			t.Fatalf("Lookup(%v) unexpectedly hit", a)
		}
	}
	if _, ok := d.Lookup(netip.Addr{}); ok {
		t.Fatal("Lookup(zero Addr) hit")
	}
}

// naiveDiff is the reference: map both datasets, walk the union, sort.
func naiveDiff(old, new *Dataset) []Change {
	om := map[netip.Addr]bgp.ASN{}
	nm := map[netip.Addr]bgp.ASN{}
	old.ForEachAddr(func(a netip.Addr, as bgp.ASN) bool { om[a] = as; return true })
	new.ForEachAddr(func(a netip.Addr, as bgp.ASN) bool { nm[a] = as; return true })
	var out []Change
	for a, as := range om {
		nas, ok := nm[a]
		switch {
		case !ok:
			out = append(out, Change{Kind: Vanished, Addr: a, OldAS: as})
		case nas != as:
			out = append(out, Change{Kind: MovedAS, Addr: a, OldAS: as, NewAS: nas})
		}
	}
	for a, as := range nm {
		if _, ok := om[a]; !ok {
			out = append(out, Change{Kind: Appeared, Addr: a, NewAS: as})
		}
	}
	slices.SortFunc(out, func(x, y Change) int { return x.Addr.Compare(y.Addr) })
	return out
}

// mutate derives a changed successor of d: drop some rows, add some,
// move some origins — per seeded coin flips, mirroring month churn.
func mutate(t testing.TB, d *Dataset, seed uint64) *Dataset {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 0xd1ff))
	n := &Dataset{Domain: d.Domain,
		SrvClient: slices.Clone(d.SrvClient),
		SrvOp:     slices.Clone(d.SrvOp),
		SrvCount:  slices.Clone(d.SrvCount)}
	for i := range d.V4Addr {
		switch rng.Uint32N(10) {
		case 0: // drop
		case 1: // move AS
			n.V4Addr = append(n.V4Addr, d.V4Addr[i])
			n.V4ASN = append(n.V4ASN, d.V4ASN[i]+1)
		default:
			n.V4Addr = append(n.V4Addr, d.V4Addr[i])
			n.V4ASN = append(n.V4ASN, d.V4ASN[i])
		}
	}
	for i := range d.V6Hi {
		switch rng.Uint32N(10) {
		case 0:
		case 1:
			n.V6Hi = append(n.V6Hi, d.V6Hi[i])
			n.V6Lo = append(n.V6Lo, d.V6Lo[i])
			n.V6ASN = append(n.V6ASN, d.V6ASN[i]+1)
		default:
			n.V6Hi = append(n.V6Hi, d.V6Hi[i])
			n.V6Lo = append(n.V6Lo, d.V6Lo[i])
			n.V6ASN = append(n.V6ASN, d.V6ASN[i])
		}
	}
	for i := 0; i < 20; i++ {
		n.V4Addr = append(n.V4Addr, rng.Uint32())
		n.V4ASN = append(n.V4ASN, bgp.ASN(rng.Uint32N(70000)+1))
		n.V6Hi = append(n.V6Hi, rng.Uint64())
		n.V6Lo = append(n.V6Lo, rng.Uint64())
		n.V6ASN = append(n.V6ASN, bgp.ASN(rng.Uint32N(70000)+1))
	}
	if err := n.Normalize(); err != nil {
		t.Fatalf("mutate Normalize: %v", err)
	}
	return n
}

// TestDiffMatchesNaive checks the streaming merge against the map-based
// reference across seeded old→new pairs, both families.
func TestDiffMatchesNaive(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		old := seededDataset(t, seed, 400, 300)
		new := mutate(t, old, seed*31)
		var got []Change
		Diff(old, new, func(c Change) bool { got = append(got, c); return true })
		want := naiveDiff(old, new)
		if !slices.Equal(got, want) {
			t.Fatalf("seed %d: streaming diff has %d changes, reference %d (or order/content mismatch)",
				seed, len(got), len(want))
		}
		// Emission order must itself be canonical.
		if !slices.IsSortedFunc(got, func(x, y Change) int { return x.Addr.Compare(y.Addr) }) {
			t.Fatalf("seed %d: changes not emitted in canonical address order", seed)
		}
	}
}

func TestDiffEarlyStop(t *testing.T) {
	old := seededDataset(t, 3, 50, 50)
	new := &Dataset{Domain: old.Domain} // everything vanishes
	calls := 0
	Diff(old, new, func(Change) bool { calls++; return calls < 3 })
	if calls != 3 {
		t.Fatalf("callback ran %d times after early stop, want 3", calls)
	}
}

func TestOperatorCountsMatchesWalk(t *testing.T) {
	d := seededDataset(t, 19, 200, 150)
	want := map[bgp.ASN]int{}
	d.ForEachAddr(func(_ netip.Addr, as bgp.ASN) bool { want[as]++; return true })
	got := d.OperatorCounts()
	if len(got) != len(want) {
		t.Fatalf("OperatorCounts has %d operators, want %d", len(got), len(want))
	}
	for as, n := range want {
		if got[as] != n {
			t.Fatalf("operator %d: count %d, want %d", as, got[as], n)
		}
	}
}
