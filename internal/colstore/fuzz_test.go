package colstore

import (
	"bytes"
	"errors"
	"testing"

	"github.com/relay-networks/privaterelay/internal/bgp"
)

// FuzzDecodeBinary hardens the sidecar codec against arbitrary bytes:
// decoding must never panic, every rejection must be the typed
// *CorruptError, and anything accepted must re-encode losslessly.
func FuzzDecodeBinary(f *testing.F) {
	f.Add((&Dataset{}).AppendBinary(nil, SourceInfo{}))
	small := &Dataset{
		Domain: "mask.icloud.com.",
		V4Addr: []uint32{1, 2, 3}, V4ASN: []bgp.ASN{714, 714, 13335},
		V6Hi: []uint64{1}, V6Lo: []uint64{2}, V6ASN: []bgp.ASN{6185},
		SrvClient: []bgp.ASN{100}, SrvOp: []bgp.ASN{714},
		SrvCount: []int64{42},
	}
	f.Add(small.AppendBinary(nil, SourceInfo{Size: 9, CRC: 0xabc}))
	f.Add(bytes.Repeat([]byte{0x43}, 128))
	f.Add([]byte("CLS1 but not really a sidecar at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		d, src, err := DecodeBinary(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-typed decode error: %v", err)
			}
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("error is not *CorruptError: %v", err)
			}
			return
		}
		// Accepted input: the layout is fully validated, so the decoded
		// dataset must re-encode to the exact input bytes.
		if re := d.AppendBinary(nil, src); !bytes.Equal(re, data) {
			t.Fatalf("accepted %d bytes but re-encode differs (%d bytes)", len(data), len(re))
		}
	})
}
