package colstore

// Streaming dataset diffing. Because both datasets hold their address
// rows in the same total order (IPv4 ascending, then IPv6 ascending —
// netip.Addr.Compare's order), the month-over-month change set is a
// single two-pointer merge per family: no maps to build, no hash
// lookups per row, no post-sort of the output, and the emitted changes
// arrive already in canonical order. This replaces the map-walking
// ComputeDiff on relayd's recompute path, which was the slowest
// recurring cost in the service and grew with history length.

import (
	"net/netip"

	"github.com/relay-networks/privaterelay/internal/bgp"
)

// ChangeKind classifies one address-level change between two datasets.
type ChangeKind uint8

// Change kinds, in the order the canonical diff format renders them.
const (
	// Appeared: the address is in the new dataset only.
	Appeared ChangeKind = iota
	// Vanished: the address is in the old dataset only.
	Vanished
	// MovedAS: the address is in both with a different origin AS.
	MovedAS
)

// String names the kind.
func (k ChangeKind) String() string {
	switch k {
	case Appeared:
		return "appeared"
	case Vanished:
		return "vanished"
	case MovedAS:
		return "moved-as"
	default:
		return "unknown"
	}
}

// Change is one emitted difference. OldAS is set for Vanished and
// MovedAS; NewAS for Appeared and MovedAS.
type Change struct {
	Kind  ChangeKind
	Addr  netip.Addr
	OldAS bgp.ASN
	NewAS bgp.ASN
}

// Diff streams the change set from old to new: one merge over the IPv4
// columns, then one over the IPv6 columns. Within each family, changes
// are emitted in ascending address order; families do not interleave
// (all IPv4 changes precede all IPv6 changes, matching
// netip.Addr.Compare). fn returning false stops the walk early.
//
// The walk is allocation-light: the only per-change work is
// reconstructing the netip.Addr handed to fn.
func Diff(old, new *Dataset, fn func(Change) bool) {
	if !diffV4(old, new, fn) {
		return
	}
	diffV6(old, new, fn)
}

func diffV4(old, new *Dataset, fn func(Change) bool) bool {
	i, j := 0, 0
	for i < len(old.V4Addr) && j < len(new.V4Addr) {
		a, b := old.V4Addr[i], new.V4Addr[j]
		switch {
		case a == b:
			if oldAS, newAS := old.V4ASN[i], new.V4ASN[j]; oldAS != newAS {
				if !fn(Change{Kind: MovedAS, Addr: new.V4AddrAt(j), OldAS: oldAS, NewAS: newAS}) {
					return false
				}
			}
			i++
			j++
		case a < b:
			if !fn(Change{Kind: Vanished, Addr: old.V4AddrAt(i), OldAS: old.V4ASN[i]}) {
				return false
			}
			i++
		default:
			if !fn(Change{Kind: Appeared, Addr: new.V4AddrAt(j), NewAS: new.V4ASN[j]}) {
				return false
			}
			j++
		}
	}
	for ; i < len(old.V4Addr); i++ {
		if !fn(Change{Kind: Vanished, Addr: old.V4AddrAt(i), OldAS: old.V4ASN[i]}) {
			return false
		}
	}
	for ; j < len(new.V4Addr); j++ {
		if !fn(Change{Kind: Appeared, Addr: new.V4AddrAt(j), NewAS: new.V4ASN[j]}) {
			return false
		}
	}
	return true
}

func diffV6(old, new *Dataset, fn func(Change) bool) bool {
	i, j := 0, 0
	for i < len(old.V6Hi) && j < len(new.V6Hi) {
		switch compare128(old.V6Hi[i], old.V6Lo[i], new.V6Hi[j], new.V6Lo[j]) {
		case 0:
			if oldAS, newAS := old.V6ASN[i], new.V6ASN[j]; oldAS != newAS {
				if !fn(Change{Kind: MovedAS, Addr: new.V6AddrAt(j), OldAS: oldAS, NewAS: newAS}) {
					return false
				}
			}
			i++
			j++
		case -1:
			if !fn(Change{Kind: Vanished, Addr: old.V6AddrAt(i), OldAS: old.V6ASN[i]}) {
				return false
			}
			i++
		default:
			if !fn(Change{Kind: Appeared, Addr: new.V6AddrAt(j), NewAS: new.V6ASN[j]}) {
				return false
			}
			j++
		}
	}
	for ; i < len(old.V6Hi); i++ {
		if !fn(Change{Kind: Vanished, Addr: old.V6AddrAt(i), OldAS: old.V6ASN[i]}) {
			return false
		}
	}
	for ; j < len(new.V6Hi); j++ {
		if !fn(Change{Kind: Appeared, Addr: new.V6AddrAt(j), NewAS: new.V6ASN[j]}) {
			return false
		}
	}
	return true
}

// Lookup reports the origin AS of addr, using binary search over the
// family's sorted key column. It is how consumers borrow the columns as
// a read-only address set — the classifier's ingress membership test,
// for example — without rebuilding a map.
func (d *Dataset) Lookup(addr netip.Addr) (bgp.ASN, bool) {
	if addr.Is4() {
		key := V4Key(addr)
		lo, hi := 0, len(d.V4Addr)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if d.V4Addr[mid] < key {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(d.V4Addr) && d.V4Addr[lo] == key {
			return d.V4ASN[lo], true
		}
		return 0, false
	}
	if !addr.IsValid() {
		return 0, false
	}
	khi, klo := V6Key(addr)
	lo, hi := 0, len(d.V6Hi)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if compare128(d.V6Hi[mid], d.V6Lo[mid], khi, klo) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(d.V6Hi) && d.V6Hi[lo] == khi && d.V6Lo[lo] == klo {
		return d.V6ASN[lo], true
	}
	return 0, false
}
