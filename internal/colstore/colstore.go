// Package colstore is the columnar representation of a canonical scan
// dataset: the address set split into per-family sorted key columns —
// 4-byte IPv4 keys and 16-byte IPv6 keys as hi/lo word pairs, mirroring
// bgp.Index's interval layout — each with a parallel origin-AS column,
// plus the per-client serving statistics as sorted (client, operator,
// count) triples. The columns are the scan pipeline's interchange
// currency for everything that is slow about maps: month-over-month
// diffing becomes a streaming two-pointer merge, operator counts become
// a linear sweep, and persistence becomes a block copy (codec.go) —
// no per-row parsing, hashing, or post-sorting anywhere.
//
// The row order is total and canonical: IPv4 rows ascending, then IPv6
// rows ascending, exactly netip.Addr.Compare's order over the same
// addresses. Every producer must uphold it (Normalize exists for bulk
// builders); every consumer may rely on it.
package colstore

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"slices"

	"github.com/relay-networks/privaterelay/internal/bgp"
)

// Dataset is one canonical scan dataset in columnar form. The i-th
// element of each key column pairs with the i-th element of its
// parallel columns; families never share a column. All key columns are
// strictly ascending (no duplicate addresses, no duplicate
// (client, operator) pairs).
type Dataset struct {
	// Domain is the scanned service name ("mask.icloud.com.").
	Domain string

	// V4Addr holds IPv4 addresses as big-endian uint32 keys, strictly
	// ascending; V4ASN[i] is the origin AS of V4Addr[i].
	V4Addr []uint32
	V4ASN  []bgp.ASN

	// V6Hi/V6Lo hold IPv6 addresses as 128-bit keys split into two
	// word columns (numeric big-endian halves), strictly ascending by
	// (hi, lo); V6ASN[i] is the origin AS of row i.
	V6Hi  []uint64
	V6Lo  []uint64
	V6ASN []bgp.ASN

	// SrvClient/SrvOp/SrvCount are the serving statistics — served /24
	// count per (client AS, operator AS) — strictly ascending by
	// (client, operator).
	SrvClient []bgp.ASN
	SrvOp     []bgp.ASN
	SrvCount  []int64
}

// Rows returns the total row count across all three sections.
func (d *Dataset) Rows() int {
	return len(d.V4Addr) + len(d.V6Hi) + len(d.SrvClient)
}

// Addrs returns the number of address rows (both families).
func (d *Dataset) Addrs() int { return len(d.V4Addr) + len(d.V6Hi) }

// V4AddrAt reconstructs the netip.Addr of IPv4 row i.
func (d *Dataset) V4AddrAt(i int) netip.Addr {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], d.V4Addr[i])
	return netip.AddrFrom4(b)
}

// V6AddrAt reconstructs the netip.Addr of IPv6 row i.
func (d *Dataset) V6AddrAt(i int) netip.Addr {
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], d.V6Hi[i])
	binary.BigEndian.PutUint64(b[8:], d.V6Lo[i])
	return netip.AddrFrom16(b)
}

// V4Key flattens an IPv4 address into its column key.
func V4Key(a netip.Addr) uint32 {
	b := a.As4()
	return binary.BigEndian.Uint32(b[:])
}

// V6Key flattens an IPv6 address into its (hi, lo) column key.
func V6Key(a netip.Addr) (hi, lo uint64) {
	b := a.As16()
	return binary.BigEndian.Uint64(b[:8]), binary.BigEndian.Uint64(b[8:])
}

// ForEachAddr visits every address row in canonical order (IPv4
// ascending, then IPv6 ascending — netip.Addr.Compare order) until fn
// returns false.
func (d *Dataset) ForEachAddr(fn func(addr netip.Addr, as bgp.ASN) bool) {
	for i := range d.V4Addr {
		if !fn(d.V4AddrAt(i), d.V4ASN[i]) {
			return
		}
	}
	for i := range d.V6Hi {
		if !fn(d.V6AddrAt(i), d.V6ASN[i]) {
			return
		}
	}
}

// OperatorCounts returns the number of address rows per origin AS — the
// columnar analogue of core's map-walking OperatorCounts, one linear
// sweep over the ASN columns.
func (d *Dataset) OperatorCounts() map[bgp.ASN]int {
	out := make(map[bgp.ASN]int)
	for _, as := range d.V4ASN {
		out[as]++
	}
	for _, as := range d.V6ASN {
		out[as]++
	}
	return out
}

// Normalize sorts every section into canonical order and fails on
// duplicate keys. Builders that appended rows out of order call it once
// at the end; datasets decoded from the binary codec or converted from
// a (necessarily duplicate-free) map arrive normalized already.
func (d *Dataset) Normalize() error {
	if err := sortParallel(len(d.V4Addr), func(i, j int) int {
		if d.V4Addr[i] != d.V4Addr[j] {
			if d.V4Addr[i] < d.V4Addr[j] {
				return -1
			}
			return 1
		}
		return 0
	}, func(i, j int) {
		d.V4Addr[i], d.V4Addr[j] = d.V4Addr[j], d.V4Addr[i]
		d.V4ASN[i], d.V4ASN[j] = d.V4ASN[j], d.V4ASN[i]
	}); err != nil {
		return fmt.Errorf("colstore: v4 column: %w", err)
	}
	if err := sortParallel(len(d.V6Hi), func(i, j int) int {
		return compare128(d.V6Hi[i], d.V6Lo[i], d.V6Hi[j], d.V6Lo[j])
	}, func(i, j int) {
		d.V6Hi[i], d.V6Hi[j] = d.V6Hi[j], d.V6Hi[i]
		d.V6Lo[i], d.V6Lo[j] = d.V6Lo[j], d.V6Lo[i]
		d.V6ASN[i], d.V6ASN[j] = d.V6ASN[j], d.V6ASN[i]
	}); err != nil {
		return fmt.Errorf("colstore: v6 column: %w", err)
	}
	if err := sortParallel(len(d.SrvClient), func(i, j int) int {
		return compare128(uint64(d.SrvClient[i]), uint64(d.SrvOp[i]), uint64(d.SrvClient[j]), uint64(d.SrvOp[j]))
	}, func(i, j int) {
		d.SrvClient[i], d.SrvClient[j] = d.SrvClient[j], d.SrvClient[i]
		d.SrvOp[i], d.SrvOp[j] = d.SrvOp[j], d.SrvOp[i]
		d.SrvCount[i], d.SrvCount[j] = d.SrvCount[j], d.SrvCount[i]
	}); err != nil {
		return fmt.Errorf("colstore: serving column: %w", err)
	}
	return nil
}

// compare128 orders two 128-bit values given as word pairs.
func compare128(ahi, alo, bhi, blo uint64) int {
	switch {
	case ahi != bhi:
		if ahi < bhi {
			return -1
		}
		return 1
	case alo != blo:
		if alo < blo {
			return -1
		}
		return 1
	}
	return 0
}

// sortParallel sorts n rows through swap using cmp, then rejects
// duplicates. Sorting through an index permutation keeps the parallel
// columns aligned without materializing row structs.
func sortParallel(n int, cmp func(i, j int) int, swap func(i, j int)) error {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	slices.SortStableFunc(perm, cmp)
	// Apply the permutation in place via cycle walking.
	applied := make([]bool, n)
	for start := range perm {
		if applied[start] || perm[start] == start {
			continue
		}
		i := start
		for {
			applied[i] = true
			next := perm[i]
			if next == start {
				break
			}
			swap(i, next)
			i = next
		}
	}
	for i := 1; i < n; i++ {
		if cmp(i-1, i) >= 0 {
			return fmt.Errorf("duplicate key at row %d", i)
		}
	}
	return nil
}
