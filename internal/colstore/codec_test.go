package colstore

import (
	"bytes"
	"errors"
	"testing"
)

func encode(t testing.TB, d *Dataset, src SourceInfo) []byte {
	t.Helper()
	return d.AppendBinary(nil, src)
}

func datasetsEqual(a, b *Dataset) bool {
	if a.Domain != b.Domain ||
		len(a.V4Addr) != len(b.V4Addr) || len(a.V6Hi) != len(b.V6Hi) ||
		len(a.SrvClient) != len(b.SrvClient) {
		return false
	}
	enc := a.AppendBinary(nil, SourceInfo{})
	return bytes.Equal(enc, b.AppendBinary(nil, SourceInfo{}))
}

func TestCodecRoundTrip(t *testing.T) {
	src := SourceInfo{Size: 12345, CRC: 0xdeadbeef}
	for _, tc := range []struct {
		name     string
		v4n, v6n int
	}{
		{"mixed", 300, 200},
		{"v4-only", 100, 0},
		{"v6-only", 0, 100},
		{"empty", 0, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := seededDataset(t, 42, tc.v4n, tc.v6n)
			enc := encode(t, d, src)
			got, gotSrc, err := DecodeBinary(enc)
			if err != nil {
				t.Fatalf("DecodeBinary: %v", err)
			}
			if gotSrc != src {
				t.Fatalf("SourceInfo %+v, want %+v", gotSrc, src)
			}
			if !datasetsEqual(d, got) {
				t.Fatal("decoded dataset differs from original")
			}
			// Encoding is a pure function: re-encoding the decoded
			// dataset reproduces the bytes exactly.
			if re := got.AppendBinary(nil, gotSrc); !bytes.Equal(re, enc) {
				t.Fatal("re-encode is not byte-identical")
			}
		})
	}
}

func TestCodecAppendExtends(t *testing.T) {
	d := seededDataset(t, 5, 20, 10)
	prefix := []byte("prefix")
	buf := d.AppendBinary(append([]byte(nil), prefix...), SourceInfo{})
	if !bytes.HasPrefix(buf, prefix) {
		t.Fatal("AppendBinary clobbered existing buffer contents")
	}
	if _, _, err := DecodeBinary(buf[len(prefix):]); err != nil {
		t.Fatalf("decode of appended region: %v", err)
	}
}

func TestFingerprintDetectsChange(t *testing.T) {
	a := Fingerprint([]byte("canonical text v1\n"))
	b := Fingerprint([]byte("canonical text v2\n"))
	if a == b {
		t.Fatal("fingerprints collide on different text")
	}
	if a != Fingerprint([]byte("canonical text v1\n")) {
		t.Fatal("fingerprint not deterministic")
	}
}

// TestCodecCorruptChaosSweep is the torn-write/bit-rot sweep: every
// truncation length and every single-byte flip must yield a typed
// *CorruptError (never a panic, never a silently wrong dataset).
func TestCodecCorruptChaosSweep(t *testing.T) {
	d := seededDataset(t, 9, 40, 30)
	enc := encode(t, d, SourceInfo{Size: 77, CRC: 0x1234})

	t.Run("truncation", func(t *testing.T) {
		for n := 0; n < len(enc); n++ {
			if _, _, err := DecodeBinary(enc[:n]); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("truncated to %d bytes: err = %v, want ErrCorrupt", n, err)
			}
		}
	})
	t.Run("bit-flip", func(t *testing.T) {
		mut := make([]byte, len(enc))
		for i := range enc {
			copy(mut, enc)
			mut[i] ^= 0x5a
			_, _, err := DecodeBinary(mut)
			if err == nil {
				// A flip inside zero padding is CRC-protected too, so
				// every flip must be caught.
				t.Fatalf("flip at byte %d accepted", i)
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("flip at byte %d: err = %v, want ErrCorrupt", i, err)
			}
			var ce *CorruptError
			if !errors.As(err, &ce) || ce.Reason == "" {
				t.Fatalf("flip at byte %d: error is not a descriptive *CorruptError: %v", i, err)
			}
		}
	})
	t.Run("extension", func(t *testing.T) {
		if _, _, err := DecodeBinary(append(append([]byte(nil), enc...), 0)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("trailing garbage accepted: %v", err)
		}
	})
}
