package analysis

import (
	"context"
	"net/netip"
	"slices"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/core"
	"github.com/relay-networks/privaterelay/internal/dnsserver"
	"github.com/relay-networks/privaterelay/internal/egress"
	"github.com/relay-networks/privaterelay/internal/iputil"
	"github.com/relay-networks/privaterelay/internal/netsim"
	"github.com/relay-networks/privaterelay/internal/scan"
)

var (
	aWorld      *netsim.World
	aAttributed []egress.Attributed
	aOnce       sync.Once
)

func fixtures(t testing.TB) (*netsim.World, []egress.Attributed) {
	t.Helper()
	aOnce.Do(func() {
		aWorld = netsim.NewWorld(netsim.Params{Seed: 20, Scale: 0.0012})
		aAttributed = egress.Attribute(egress.Generate(aWorld, 20), aWorld.Table)
	})
	return aWorld, aAttributed
}

func scanDataset(t testing.TB, w *netsim.World, month bgp.Month, domain string) *core.Dataset {
	t.Helper()
	srv := dnsserver.NewAuthServer(w, month, nil)
	ds, err := core.Scan(context.Background(), core.ScanConfig{
		Exchanger:    &dnsserver.MemTransport{Handler: srv, Source: netip.MustParseAddr("198.51.100.53")},
		Domain:       domain,
		Universe:     w.RoutedV4Prefixes(),
		Attribution:  w.Table,
		RespectScope: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestTable1MatchesPaperShape(t *testing.T) {
	w, _ := fixtures(t)
	def := map[bgp.Month]*core.Dataset{}
	fb := map[bgp.Month]*core.Dataset{}
	for _, m := range netsim.ScanMonths {
		def[m] = scanDataset(t, w, m, dnsserver.MaskDomain)
		if m != netsim.MonthJan { // January fallback scan absent
			fb[m] = scanDataset(t, w, m, dnsserver.MaskH2Domain)
		}
	}
	rows := Table1(netsim.ScanMonths, def, fb)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Paper values.
	want := []struct{ da, dk, fa, fk int }{
		{365, 823, 0, 0},
		{355, 845, 356, 0},
		{347, 945, 334, 25},
		{349, 1237, 336, 1062},
	}
	for i, r := range rows {
		if r.DefaultApple != want[i].da || r.DefaultAkamai != want[i].dk {
			t.Errorf("row %d default = %d/%d, want %d/%d", i, r.DefaultApple, r.DefaultAkamai, want[i].da, want[i].dk)
		}
		if i == 0 {
			if r.FallbackPresent {
				t.Error("January fallback should be absent")
			}
			continue
		}
		if !r.FallbackPresent || r.FallbackApple != want[i].fa || r.FallbackAkamai != want[i].fk {
			t.Errorf("row %d fallback = %d/%d, want %d/%d", i, r.FallbackApple, r.FallbackAkamai, want[i].fa, want[i].fk)
		}
	}
	// Akamai share grows monotonically on the default plane (69→78 %).
	prev := -1.0
	for _, r := range rows {
		_, ak := r.SharePct()
		if ak <= prev {
			t.Errorf("Akamai share not growing: %.1f after %.1f", ak, prev)
		}
		prev = ak
	}
	text := RenderTable1(rows)
	if !strings.Contains(text, "1237") || !strings.Contains(text, "78.0%") {
		t.Errorf("rendered table missing key cells:\n%s", text)
	}
}

func TestTable2Shape(t *testing.T) {
	w, _ := fixtures(t)
	ds := scanDataset(t, w, netsim.MonthApr, dnsserver.MaskDomain)
	rows := Table2(ds, w.Pop)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byGroup := map[string]Table2Row{}
	for _, r := range rows {
		byGroup[r.Group] = r
	}
	// Orderings from Table 2.
	if !(byGroup["AkamaiPR"].ASes > byGroup["Apple"].ASes && byGroup["Apple"].ASes > byGroup["Both"].ASes) {
		t.Errorf("AS counts out of order: %+v", rows)
	}
	if !(byGroup["Both"].Subnets > byGroup["AkamaiPR"].Subnets && byGroup["AkamaiPR"].Subnets > byGroup["Apple"].Subnets) {
		t.Errorf("subnet counts out of order: %+v", rows)
	}
	if !(byGroup["Both"].ASPop > byGroup["AkamaiPR"].ASPop && byGroup["AkamaiPR"].ASPop > byGroup["Apple"].ASPop) {
		t.Errorf("populations out of order: %+v", rows)
	}
	share := AppleShareInBoth(ds)
	if share < 70 || share > 82 {
		t.Errorf("Apple share in Both = %.1f%%", share)
	}
	if !strings.Contains(RenderTable2(rows, share), "Both") {
		t.Error("render missing Both row")
	}
}

func TestTable3MatchesPaper(t *testing.T) {
	_, attributed := fixtures(t)
	rows := Table3(attributed)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	want := map[bgp.ASN]Table3Row{
		netsim.ASCloudflare: {V4Subnets: 18218, V4BGP: 112, V4Addrs: 18218, V6Subnets: 26988, V6BGP: 2, V6CCs: 248},
		netsim.ASAkamaiEdge: {V4Subnets: 1602, V4BGP: 1, V4Addrs: 5100, V6Subnets: 23495, V6BGP: 1, V6CCs: 24},
		netsim.ASAkamaiPR:   {V4Subnets: 9890, V4BGP: 301, V4Addrs: 57589, V6Subnets: 142826, V6BGP: 1172, V6CCs: 236},
		netsim.ASFastly:     {V4Subnets: 8530, V4BGP: 81, V4Addrs: 17060, V6Subnets: 8530, V6BGP: 81, V6CCs: 236},
	}
	for _, r := range rows {
		w, ok := want[r.AS]
		if !ok {
			t.Fatalf("unexpected AS %v", r.AS)
		}
		if r.V4Subnets != w.V4Subnets || r.V4BGP != w.V4BGP || r.V4Addrs != w.V4Addrs ||
			r.V6Subnets != w.V6Subnets || r.V6BGP != w.V6BGP || r.V6CCs != w.V6CCs {
			t.Errorf("%s row = %+v, want %+v", netsim.ASName(r.AS), r, w)
		}
	}
	text := RenderTable3(rows)
	if !strings.Contains(text, "142826") || !strings.Contains(text, "57589") {
		t.Errorf("rendered Table 3 missing cells:\n%s", text)
	}
}

func TestTable4MatchesPaper(t *testing.T) {
	_, attributed := fixtures(t)
	rows := Table4(attributed)
	want := map[bgp.ASN][3]int{
		netsim.ASAkamaiPR:   {14088, 853, 14085},
		netsim.ASAkamaiEdge: {7507, 455, 7507},
		netsim.ASCloudflare: {5228, 1134, 5228},
		netsim.ASFastly:     {848, 848, 848},
	}
	for _, r := range rows {
		w := want[r.AS]
		if r.Cities != w[0] || r.CitiesV4 != w[1] || r.CitiesV6 != w[2] {
			t.Errorf("%s cities = %d/%d/%d, want %v", netsim.ASName(r.AS), r.Cities, r.CitiesV4, r.CitiesV6, w)
		}
	}
	if !strings.Contains(RenderTable4(rows), "14088") {
		t.Error("rendered Table 4 missing combined city count")
	}
}

func TestCountryShares(t *testing.T) {
	_, attributed := fixtures(t)
	shares, small := CountryShares(attributed, 50)
	if shares[0].CC != "US" {
		t.Fatalf("top country = %s", shares[0].CC)
	}
	if shares[0].Share < 50 || shares[0].Share > 66 {
		t.Fatalf("US share = %.1f%%", shares[0].Share)
	}
	if shares[1].CC != "DE" {
		t.Fatalf("second country = %s", shares[1].CC)
	}
	if small < 90 || small > 160 {
		t.Fatalf("small countries = %d, want ≈123", small)
	}
}

func TestGeoScatterAndBounds(t *testing.T) {
	_, attributed := fixtures(t)
	pts := GeoScatter(attributed, netsim.ASCloudflare, netsim.FamilyV4)
	if len(pts) != 18218 {
		t.Fatalf("Cloudflare v4 points = %d", len(pts))
	}
	b := Bounds(pts)
	if b.DistinctCountries != 248 {
		t.Fatalf("scatter countries = %d", b.DistinctCountries)
	}
	// Points span the globe.
	if b.MaxLat-b.MinLat < 60 || b.MaxLon-b.MinLon < 180 {
		t.Fatalf("scatter not global: %+v", b)
	}
	if Bounds(nil).Points != 0 {
		t.Fatal("empty bounds")
	}
	if !strings.Contains(RenderGeoBounds("cf", b), "248") {
		t.Fatal("render misses country count")
	}
}

func TestLocationCDFShape(t *testing.T) {
	_, attributed := fixtures(t)
	cdf := LocationCDF(attributed, netsim.ASAkamaiPR, netsim.FamilyV6, ByCity)
	if len(cdf) != 14085 {
		t.Fatalf("CDF over %d cities, want 14085", len(cdf))
	}
	// Monotonic, ends at 1.
	prev := 0.0
	for _, p := range cdf {
		if p.CumShare < prev {
			t.Fatal("CDF not monotonic")
		}
		prev = p.CumShare
	}
	if prev < 0.999 || prev > 1.001 {
		t.Fatalf("CDF ends at %.4f", prev)
	}
	// Concentration: top 10 % of cities hold around half the subnets
	// (the Figure 4 curves rise steeply).
	if g := GiniLike(cdf); g < 0.45 {
		t.Fatalf("top-decile share = %.2f, want concentrated", g)
	}
	ccCDF := LocationCDF(attributed, netsim.ASAkamaiPR, netsim.FamilyV6, ByCountry)
	if len(ccCDF) != 236 {
		t.Fatalf("country CDF over %d CCs", len(ccCDF))
	}
	if !strings.Contains(RenderCDF("x", cdf), "top") {
		t.Fatal("CDF render broken")
	}
	if RenderCDF("empty", nil) == "" {
		t.Fatal("empty CDF render broken")
	}
}

func TestFigure3Rendering(t *testing.T) {
	obs := []scan.Observation{
		{Round: 0, Operator: netsim.ASCloudflare},
		{Round: 1, Operator: netsim.ASCloudflare},
		{Round: 2, At: 10 * time.Minute, Operator: netsim.ASAkamaiPR},
	}
	s := Figure3("Open Scan", obs)
	if s.Rounds != 3 || len(s.Changes) != 1 {
		t.Fatalf("series: %+v", s)
	}
	text := RenderFigure3([]Figure3Series{s})
	if !strings.Contains(text, "Open Scan") || !strings.Contains(text, "Cloudflare → AkamaiPR") {
		t.Fatalf("render:\n%s", text)
	}
}

// equivFixture is a hand-crafted attributed list for the table
// equivalence tests: shuffled ASes (including unattributed AS-0 rows),
// both families, repeated and unique BGP prefixes, several countries,
// and city-less entries — every branch of the sharded builders.
func equivFixture() []egress.Attributed {
	ccs := []string{"US", "DE", "JP", "BR", "FR", "GB"}
	ases := []bgp.ASN{0, 36183, 20940, 13335, 54113}
	out := make([]egress.Attributed, 0, 10000)
	for i := 0; i < 10000; i++ {
		a := egress.Attributed{AS: ases[i%len(ases)]}
		a.CC = ccs[(i/7)%len(ccs)]
		if i%13 != 0 {
			a.Region = a.CC + "-region-00"
			a.City = a.CC + "-city-" + string(rune('0'+i%5)) // 5 cities per CC
		}
		if i%3 == 0 {
			a.Prefix = netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(i >> 8), byte(i), 0, 0}), 24+i%8)
			a.BGPPrefix = netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(i >> 10), 0, 0, 0}), 12)
		} else {
			a.Prefix = netip.PrefixFrom(netip.AddrFrom16([16]byte{0x26, 0, byte(i >> 8), byte(i)}), 64)
			a.BGPPrefix = netip.PrefixFrom(netip.AddrFrom16([16]byte{0x26, 0, byte(i >> 10)}), 32)
		}
		if a.AS == 0 {
			a.BGPPrefix = netip.Prefix{}
		}
		out = append(out, a)
	}
	return out
}

// TestTablesEquivalentAcrossWorkers proves the sharded table builders
// are bit-identical to a straightforward sequential rebuild at any
// worker count.
func TestTablesEquivalentAcrossWorkers(t *testing.T) {
	attributed := equivFixture()

	// Sequential references, written the way the pre-sharding builders
	// worked: plain maps, no memoization, no filters.
	type t3ref struct {
		row                Table3Row
		v4BGP, v6BGP, v6CC map[string]bool
	}
	ref3 := map[bgp.ASN]*t3ref{}
	type t4ref struct{ all, v4, v6 map[string]bool }
	ref4 := map[bgp.ASN]*t4ref{}
	ccCounts := map[string]int{}
	for _, a := range attributed {
		ccCounts[a.CC]++
		if a.AS == 0 {
			continue
		}
		r3 := ref3[a.AS]
		if r3 == nil {
			r3 = &t3ref{row: Table3Row{AS: a.AS}, v4BGP: map[string]bool{}, v6BGP: map[string]bool{}, v6CC: map[string]bool{}}
			ref3[a.AS] = r3
		}
		if a.Prefix.Addr().Is4() {
			r3.row.V4Subnets++
			r3.row.V4Addrs += iputil.AddrCount(a.Prefix)
			r3.v4BGP[a.BGPPrefix.String()] = true
		} else {
			r3.row.V6Subnets++
			r3.v6BGP[a.BGPPrefix.String()] = true
			r3.v6CC[a.CC] = true
		}
		if a.City != "" {
			r4 := ref4[a.AS]
			if r4 == nil {
				r4 = &t4ref{all: map[string]bool{}, v4: map[string]bool{}, v6: map[string]bool{}}
				ref4[a.AS] = r4
			}
			key := a.CC + "/" + a.City
			r4.all[key] = true
			if a.Prefix.Addr().Is4() {
				r4.v4[key] = true
			} else {
				r4.v6[key] = true
			}
		}
	}

	for _, workers := range []int{1, 8, 64} {
		rows3 := Table3N(attributed, workers)
		if len(rows3) != len(ref3) {
			t.Fatalf("workers=%d: Table3 has %d rows, want %d", workers, len(rows3), len(ref3))
		}
		for _, row := range rows3 {
			r := ref3[row.AS]
			want := r.row
			want.V4BGP, want.V6BGP, want.V6CCs = len(r.v4BGP), len(r.v6BGP), len(r.v6CC)
			if row != want {
				t.Fatalf("workers=%d: Table3 %v = %+v, want %+v", workers, row.AS, row, want)
			}
		}

		rows4 := Table4N(attributed, workers)
		if len(rows4) != len(ref4) {
			t.Fatalf("workers=%d: Table4 has %d rows, want %d", workers, len(rows4), len(ref4))
		}
		for _, row := range rows4 {
			r := ref4[row.AS]
			want := Table4Row{AS: row.AS, Cities: len(r.all), CitiesV4: len(r.v4), CitiesV6: len(r.v6)}
			if row != want {
				t.Fatalf("workers=%d: Table4 %v = %+v, want %+v", workers, row.AS, row, want)
			}
		}

		shares, small := CountrySharesN(attributed, 1200, workers)
		if len(shares) != len(ccCounts) {
			t.Fatalf("workers=%d: %d countries, want %d", workers, len(shares), len(ccCounts))
		}
		wantSmall := 0
		for i, s := range shares {
			if s.Subnets != ccCounts[s.CC] {
				t.Fatalf("workers=%d: %s = %d subnets, want %d", workers, s.CC, s.Subnets, ccCounts[s.CC])
			}
			if i > 0 && (shares[i-1].Subnets < s.Subnets || (shares[i-1].Subnets == s.Subnets && shares[i-1].CC > s.CC)) {
				t.Fatalf("workers=%d: shares out of order at %d", workers, i)
			}
		}
		for _, n := range ccCounts {
			if n < 1200 {
				wantSmall++
			}
		}
		if small != wantSmall {
			t.Fatalf("workers=%d: smallCCs = %d, want %d", workers, small, wantSmall)
		}
	}
}

// TestTablesLargeListEquivalence cross-checks the sharded builders on
// the realistic generated list: every worker count must reproduce the
// workers=1 rows exactly.
func TestTablesLargeListEquivalence(t *testing.T) {
	_, attributed := fixtures(t)
	want3 := Table3N(attributed, 1)
	want4 := Table4N(attributed, 1)
	wantShares, wantSmall := CountrySharesN(attributed, 50, 1)
	if len(want3) == 0 || len(want4) == 0 || len(wantShares) == 0 {
		t.Fatal("baseline tables empty; equivalence test would be vacuous")
	}
	for _, workers := range []int{8, 64} {
		if got := Table3N(attributed, workers); !slices.Equal(got, want3) {
			t.Fatalf("workers=%d: Table3 diverges", workers)
		}
		if got := Table4N(attributed, workers); !slices.Equal(got, want4) {
			t.Fatalf("workers=%d: Table4 diverges", workers)
		}
		gotShares, gotSmall := CountrySharesN(attributed, 50, workers)
		if gotSmall != wantSmall || !slices.Equal(gotShares, wantShares) {
			t.Fatalf("workers=%d: country shares diverge", workers)
		}
	}
}
