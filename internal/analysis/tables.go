// Package analysis turns measurement outputs into the paper's tables and
// figures: Table 1 (ingress evolution), Table 2 (client attribution),
// Table 3 (egress subnets), Table 4 (covered cities), Figure 2/5 (egress
// geolocation scatter), Figure 3 (operator changes), Figure 4 (location
// CDFs), plus the §4.1 blocking and §4.3 rotation summaries.
//
// Builders are pure functions over the measurement results; rendering is
// separated so binaries can emit either aligned text or CSV.
package analysis

import (
	"cmp"
	"encoding/binary"
	"fmt"
	"math/bits"
	"net/netip"
	"runtime"
	"slices"
	"strings"
	"sync"

	"github.com/relay-networks/privaterelay/internal/aspop"
	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/colstore"
	"github.com/relay-networks/privaterelay/internal/core"
	"github.com/relay-networks/privaterelay/internal/egress"
	"github.com/relay-networks/privaterelay/internal/netsim"
)

// DefaultWorkers is the shard count the table builders use when the
// caller passes 0.
const DefaultWorkers = 8

// minShardItems floors the work per shard: below this, the goroutine
// hand-off plus the per-shard accumulator merge cost more than the
// parallelism buys, and requesting many shards on a small input (or a
// small machine) makes the build slower than running it sequentially.
const minShardItems = 1 << 13

// forShards splits n items into `workers` contiguous index ranges and
// runs fn(shard, lo, hi) on each concurrently. Shards see disjoint input
// slices and write disjoint accumulators; the caller merges afterwards,
// so results cannot depend on scheduling. The requested worker count is
// a ceiling, not a promise: it is capped by the input size (via
// minShardItems) and the machine (workers0), and every table builder is
// shard-count-independent by construction, so the clamp never changes a
// result — only how it is partitioned.
func forShards(n, workers int, fn func(shard, lo, hi int)) int {
	workers = workers0(workers, n)
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	shards := 0
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			break
		}
		shards++
		wg.Add(1)
		go func(shard, lo, hi int) {
			defer wg.Done()
			fn(shard, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	return shards
}

// Table1Row is one month of Table 1.
type Table1Row struct {
	Month bgp.Month
	// Default plane (mask.icloud.com).
	DefaultApple, DefaultAkamai int
	// Fallback plane (mask-h2.icloud.com); Present is false for January,
	// where the paper ran no fallback scan.
	FallbackPresent               bool
	FallbackApple, FallbackAkamai int
}

// SharePct returns (appleShare, akamaiShare) of the default plane.
func (r Table1Row) SharePct() (float64, float64) {
	total := float64(r.DefaultApple + r.DefaultAkamai)
	if total == 0 {
		return 0, 0
	}
	return float64(r.DefaultApple) / total * 100, float64(r.DefaultAkamai) / total * 100
}

// Table1 builds the ingress-evolution table from per-month datasets.
// fallback may omit months (nil dataset → scan absent).
func Table1(months []bgp.Month, def, fallback map[bgp.Month]*core.Dataset) []Table1Row {
	rows := make([]Table1Row, 0, len(months))
	for _, m := range months {
		row := Table1Row{Month: m}
		if ds := def[m]; ds != nil {
			c := ds.OperatorCounts()
			row.DefaultApple = c[netsim.ASApple]
			row.DefaultAkamai = c[netsim.ASAkamaiPR]
		}
		if ds := fallback[m]; ds != nil {
			row.FallbackPresent = true
			c := ds.OperatorCounts()
			row.FallbackApple = c[netsim.ASApple]
			row.FallbackAkamai = c[netsim.ASAkamaiPR]
		}
		rows = append(rows, row)
	}
	return rows
}

// Table1Columns is Table1 over columnar datasets — what relayd feeds it
// from loaded sidecars, skipping the map rebuild entirely. Row contents
// are identical to Table1 over the equivalent map datasets.
func Table1Columns(months []bgp.Month, def, fallback map[bgp.Month]*colstore.Dataset) []Table1Row {
	rows := make([]Table1Row, 0, len(months))
	for _, m := range months {
		row := Table1Row{Month: m}
		if cs := def[m]; cs != nil {
			c := cs.OperatorCounts()
			row.DefaultApple = c[netsim.ASApple]
			row.DefaultAkamai = c[netsim.ASAkamaiPR]
		}
		if cs := fallback[m]; cs != nil {
			row.FallbackPresent = true
			c := cs.OperatorCounts()
			row.FallbackApple = c[netsim.ASApple]
			row.FallbackAkamai = c[netsim.ASAkamaiPR]
		}
		rows = append(rows, row)
	}
	return rows
}

// Table2Row is one serving-group row of Table 2.
type Table2Row struct {
	Group   string
	ASPop   int64
	ASes    int
	Subnets int64
}

// Table2 joins the April scan's serving statistics with the AS
// population dataset, grouping client ASes by which operators serve them.
func Table2(ds *core.Dataset, pop *aspop.Dataset) []Table2Row {
	rows := map[string]*Table2Row{
		"AkamaiPR": {Group: "AkamaiPR"},
		"Apple":    {Group: "Apple"},
		"Both":     {Group: "Both"},
	}
	for clientAS, st := range ds.Serving {
		ak := st.SubnetsByOperator[netsim.ASAkamaiPR]
		ap := st.SubnetsByOperator[netsim.ASApple]
		var key string
		switch {
		case ak > 0 && ap > 0:
			key = "Both"
		case ak > 0:
			key = "AkamaiPR"
		case ap > 0:
			key = "Apple"
		default:
			continue
		}
		r := rows[key]
		r.ASes++
		r.Subnets += ak + ap
		r.ASPop += pop.Population(clientAS)
	}
	return []Table2Row{*rows["AkamaiPR"], *rows["Apple"], *rows["Both"]}
}

// AppleShareInBoth returns Apple's share (percent) of served subnets
// within "both"-group ASes — the Table 2 footnote.
func AppleShareInBoth(ds *core.Dataset) float64 {
	var apple, total int64
	for _, st := range ds.Serving {
		ak := st.SubnetsByOperator[netsim.ASAkamaiPR]
		ap := st.SubnetsByOperator[netsim.ASApple]
		if ak > 0 && ap > 0 {
			apple += ap
			total += ak + ap
		}
	}
	if total == 0 {
		return 0
	}
	return float64(apple) / float64(total) * 100
}

// Table3Row is one operator row of Table 3.
type Table3Row struct {
	AS bgp.ASN
	// IPv4.
	V4Subnets int
	V4BGP     int
	V4Addrs   uint64
	// IPv6 (all /64s; the paper omits the address count).
	V6Subnets int
	V6BGP     int
	V6CCs     int
}

// pfxKey is a prefix flattened to a pointer-free comparable value: the
// address as a 128-bit integer plus the prefix length. meta is bits+1 so
// the zero pfxKey (the empty filter slot) differs from 0.0.0.0/0, and
// pfxKeyInvalid marks the one obtainable invalid prefix (the zero
// netip.Prefix). Keys are compared by full content, so the direct-mapped
// filters below never produce false positives, and the exact dedup maps
// hash three machine words instead of a struct the GC must also scan.
// Families never share a key space (v4 and v6 sets are separate fields).
type pfxKey struct {
	hi, lo uint64
	meta   uint8
}

const pfxKeyInvalid = 255

func makePfxKey(p netip.Prefix) pfxKey {
	a := p.Addr()
	if !a.IsValid() {
		return pfxKey{meta: pfxKeyInvalid}
	}
	if a.Is4() {
		b := a.As4()
		return pfxKey{lo: uint64(binary.BigEndian.Uint32(b[:])), meta: uint8(p.Bits() + 1)}
	}
	b := a.As16()
	return pfxKey{hi: binary.BigEndian.Uint64(b[:8]), lo: binary.BigEndian.Uint64(b[8:]), meta: uint8(p.Bits() + 1)}
}

// idBits is a lazily grown bitset over dense route IDs. The attribution
// join numbers BGP announcements 0..N-1 (N is a few thousand at full
// scale), so "have I seen this prefix" is one word test — no hashing, no
// pointers for the GC to scan.
type idBits []uint64

// set marks id, growing the word array on the (rare) first visit past
// the current end. The hot in-range case inlines to a load, or, store.
func (s *idBits) set(id int32) {
	w := int(id >> 6)
	if w < len(*s) {
		(*s)[w] |= uint64(1) << (id & 63)
		return
	}
	s.setSlow(w, uint64(1)<<(id&63))
}

func (s *idBits) setSlow(w int, bit uint64) {
	grown := make(idBits, w+1)
	copy(grown, *s)
	grown[w] |= bit
	*s = grown
}

// or merges o into s, growing as needed.
func (s *idBits) or(o idBits) {
	if len(o) > len(*s) {
		grown := make(idBits, len(o))
		copy(grown, *s)
		*s = grown
	}
	for i, w := range o {
		(*s)[i] |= w
	}
}

// count returns the number of set bits.
func (s idBits) count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// ccIndex returns the dense index of an uppercase two-letter country
// code (0..675), or -1 when cc isn't one.
func ccIndex(cc string) int {
	if len(cc) != 2 {
		return -1
	}
	c0, c1 := cc[0]-'A', cc[1]-'A'
	if c0 > 25 || c1 > 25 {
		return -1
	}
	return int(c0)*26 + int(c1)
}

// ccWords holds one bit per two-letter country code.
const ccWords = (26*26 + 63) / 64

// t3acc accumulates one operator's Table 3 row inside one shard. Entries
// stamped with a RouteID dedup their BGP prefix through the bitsets, and
// well-formed country codes dedup through a fixed 676-bit array; rows
// built by hand with no RouteID or an exotic CC fall back to the exact
// maps. Each pair of structures partitions its key space — a prefix or
// CC lands in exactly one of the two — so sizes sum into the row counts.
type t3acc struct {
	row      Table3Row
	v4IDs    idBits
	v6IDs    idBits
	v6CCBits [ccWords]uint64
	v4BGP    map[pfxKey]bool
	v6BGP    map[pfxKey]bool
	v6CCs    map[string]bool
}

func newT3acc(as bgp.ASN) *t3acc {
	return &t3acc{row: Table3Row{AS: as},
		v4BGP: map[pfxKey]bool{}, v6BGP: map[pfxKey]bool{}, v6CCs: map[string]bool{}}
}

// Table3 aggregates the attributed egress list per operator.
func Table3(attributed []egress.Attributed) []Table3Row {
	return Table3N(attributed, 0)
}

// Table3N is Table3 sharded across `workers` goroutines (0 =
// DefaultWorkers). Each shard aggregates its contiguous slice of entries
// into per-AS accumulators; the merge sums the counters and unions the
// distinct sets, so the rows are identical to the sequential build at
// any worker count.
func Table3N(attributed []egress.Attributed, workers int) []Table3Row {
	n := len(attributed)
	sharded := make([]map[bgp.ASN]*t3acc, workers0(workers, n))
	forShards(n, workers, func(shard, lo, hi int) {
		byAS := map[bgp.ASN]*t3acc{}
		var lastAS bgp.ASN
		var ac *t3acc
		for i := lo; i < hi; i++ {
			a := &attributed[i]
			if a.AS == 0 {
				continue
			}
			if ac == nil || a.AS != lastAS {
				lastAS = a.AS
				ac = byAS[a.AS]
				if ac == nil {
					ac = newT3acc(a.AS)
					byAS[a.AS] = ac
				}
			}
			if a.Prefix.Addr().Is4() {
				ac.row.V4Subnets++
				ac.row.V4Addrs += uint64(1) << (32 - a.Prefix.Bits())
				if id := a.RouteID; id > 0 {
					ac.v4IDs.set(id)
				} else {
					ac.v4BGP[makePfxKey(a.BGPPrefix)] = true
				}
			} else {
				ac.row.V6Subnets++
				if id := a.RouteID; id > 0 {
					ac.v6IDs.set(id)
				} else {
					ac.v6BGP[makePfxKey(a.BGPPrefix)] = true
				}
				if cc := ccIndex(a.CC); cc >= 0 {
					ac.v6CCBits[cc>>6] |= uint64(1) << (cc & 63)
				} else {
					ac.v6CCs[a.CC] = true
				}
			}
		}
		sharded[shard] = byAS
	})
	merged := map[bgp.ASN]*t3acc{}
	for _, byAS := range sharded {
		for as, ac := range byAS {
			m := merged[as]
			if m == nil {
				merged[as] = ac
				continue
			}
			m.row.V4Subnets += ac.row.V4Subnets
			m.row.V4Addrs += ac.row.V4Addrs
			m.row.V6Subnets += ac.row.V6Subnets
			m.v4IDs.or(ac.v4IDs)
			m.v6IDs.or(ac.v6IDs)
			for i, w := range ac.v6CCBits {
				m.v6CCBits[i] |= w
			}
			for p := range ac.v4BGP {
				m.v4BGP[p] = true
			}
			for p := range ac.v6BGP {
				m.v6BGP[p] = true
			}
			for cc := range ac.v6CCs {
				m.v6CCs[cc] = true
			}
		}
	}
	out := make([]Table3Row, 0, len(merged))
	for _, ac := range merged {
		ac.row.V4BGP = ac.v4IDs.count() + len(ac.v4BGP)
		ac.row.V6BGP = ac.v6IDs.count() + len(ac.v6BGP)
		ac.row.V6CCs = idBits(ac.v6CCBits[:]).count() + len(ac.v6CCs)
		out = append(out, ac.row)
	}
	slices.SortFunc(out, func(a, b Table3Row) int { return cmp.Compare(a.AS, b.AS) })
	return out
}

// workers0 is forShards's clamp (callers also use it to size shard
// slices): the requested count, bounded by what the machine can run
// (2×GOMAXPROCS — a little headroom over the core count hides stragglers
// without flooding the scheduler) and by the input size (at least
// minShardItems per shard), never below 1.
func workers0(workers, items int) int {
	if workers <= 0 {
		workers = DefaultWorkers
	}
	if cap := 2 * runtime.GOMAXPROCS(0); workers > cap {
		workers = cap
	}
	if cap := items / minShardItems; workers > cap {
		workers = cap
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Table4Row is one operator row of Table 4 (appendix A).
type Table4Row struct {
	AS                         bgp.ASN
	Cities, CitiesV4, CitiesV6 int
}

// t4 city-set masks: bit 0 = seen via IPv4, bit 1 = seen via IPv6.
const (
	t4MaskV4 uint8 = 1 << 0
	t4MaskV6 uint8 = 1 << 1
)

// t4acc accumulates one operator's covered cities inside one shard as a
// single key→family-bitmask map (one map instead of the three sets the
// sequential builder used). keyBuf is reused across entries so the
// "CC/City" key costs an allocation only when a new city is inserted —
// the m[string(buf)] lookup itself does not allocate.
type t4acc struct {
	masks            map[string]uint8
	keyBuf           []byte
	lastCC, lastCity string
	lastMask         uint8
}

// Table4 counts covered cities per operator, overall and per family.
func Table4(attributed []egress.Attributed) []Table4Row {
	return Table4N(attributed, 0)
}

// Table4N is Table4 sharded across `workers` goroutines (0 =
// DefaultWorkers); shard masks are OR-merged per city, so the rows are
// identical to the sequential build at any worker count.
func Table4N(attributed []egress.Attributed, workers int) []Table4Row {
	n := len(attributed)
	sharded := make([]map[bgp.ASN]*t4acc, workers0(workers, n))
	forShards(n, workers, func(shard, lo, hi int) {
		byAS := map[bgp.ASN]*t4acc{}
		var lastAS bgp.ASN
		var ac *t4acc
		for i := lo; i < hi; i++ {
			a := &attributed[i]
			if a.AS == 0 || a.City == "" {
				continue
			}
			if ac == nil || a.AS != lastAS {
				lastAS = a.AS
				ac = byAS[a.AS]
				if ac == nil {
					ac = &t4acc{masks: map[string]uint8{}}
					byAS[a.AS] = ac
				}
			}
			mask := t4MaskV6
			if a.Prefix.Addr().Is4() {
				mask = t4MaskV4
			}
			// Egress lists enumerate each city's subnets in runs, so the
			// common case is "same city, family already recorded".
			if a.CC == ac.lastCC && a.City == ac.lastCity && ac.lastMask&mask != 0 {
				continue
			}
			ac.keyBuf = append(append(append(ac.keyBuf[:0], a.CC...), '/'), a.City...)
			m := ac.masks[string(ac.keyBuf)]
			if m&mask == 0 {
				ac.masks[string(ac.keyBuf)] = m | mask
			}
			ac.lastCC, ac.lastCity, ac.lastMask = a.CC, a.City, m|mask
		}
		sharded[shard] = byAS
	})
	merged := map[bgp.ASN]map[string]uint8{}
	for _, byAS := range sharded {
		for as, ac := range byAS {
			m := merged[as]
			if m == nil {
				merged[as] = ac.masks
				continue
			}
			for key, mask := range ac.masks {
				m[key] |= mask
			}
		}
	}
	out := make([]Table4Row, 0, len(merged))
	for as, masks := range merged {
		row := Table4Row{AS: as, Cities: len(masks)}
		for _, mask := range masks {
			if mask&t4MaskV4 != 0 {
				row.CitiesV4++
			}
			if mask&t4MaskV6 != 0 {
				row.CitiesV6++
			}
		}
		out = append(out, row)
	}
	slices.SortFunc(out, func(a, b Table4Row) int { return cmp.Compare(a.AS, b.AS) })
	return out
}

// CountryShare summarizes the §4.2 geographic bias.
type CountryShare struct {
	CC      string
	Subnets int
	Share   float64 // percent of all subnets
}

// CountryShares returns per-country subnet shares, descending, plus the
// number of countries holding fewer than `smallThreshold` subnets.
func CountryShares(attributed []egress.Attributed, smallThreshold int) (shares []CountryShare, smallCCs int) {
	return CountrySharesN(attributed, smallThreshold, 0)
}

// CountrySharesN is CountryShares sharded across `workers` goroutines
// (0 = DefaultWorkers). Shards count per-country subtotals with
// run-length accumulation (egress lists cluster entries by country, so
// most increments fold into a local counter instead of a map write); the
// merge sums them, and the (count desc, CC asc) sort has no ties to
// break non-deterministically.
func CountrySharesN(attributed []egress.Attributed, smallThreshold, workers int) (shares []CountryShare, smallCCs int) {
	n := len(attributed)
	sharded := make([]map[string]int, workers0(workers, n))
	forShards(n, workers, func(shard, lo, hi int) {
		counts := map[string]int{}
		runCC := ""
		runN := 0
		for i := lo; i < hi; i++ {
			cc := attributed[i].CC
			if cc == runCC {
				runN++
				continue
			}
			if runN > 0 {
				counts[runCC] += runN
			}
			runCC, runN = cc, 1
		}
		if runN > 0 {
			counts[runCC] += runN
		}
		sharded[shard] = counts
	})
	counts := map[string]int{}
	for _, sub := range sharded {
		for cc, c := range sub {
			counts[cc] += c
		}
	}
	for cc, c := range counts {
		shares = append(shares, CountryShare{CC: cc, Subnets: c, Share: float64(c) / float64(n) * 100})
		if c < smallThreshold {
			smallCCs++
		}
	}
	slices.SortFunc(shares, func(a, b CountryShare) int {
		if a.Subnets != b.Subnets {
			return b.Subnets - a.Subnets
		}
		return strings.Compare(a.CC, b.CC)
	})
	return shares, smallCCs
}

// RenderTable1 renders Table 1 in the paper's layout.
func RenderTable1(rows []Table1Row) string {
	var sb strings.Builder
	sb.WriteString("            Default                    Fallback\n")
	sb.WriteString("Month   Apple        Akamai        Apple        Akamai\n")
	for _, r := range rows {
		ap, ak := r.SharePct()
		fmt.Fprintf(&sb, "%s  %4d %5.1f%%  %4d %5.1f%%", r.Month.String()[5:], r.DefaultApple, ap, r.DefaultAkamai, ak)
		if !r.FallbackPresent {
			sb.WriteString("     -      -       -      -\n")
			continue
		}
		ft := float64(r.FallbackApple + r.FallbackAkamai)
		fmt.Fprintf(&sb, "  %4d %5.1f%%  %4d %5.1f%%\n",
			r.FallbackApple, pct(r.FallbackApple, ft), r.FallbackAkamai, pct(r.FallbackAkamai, ft))
	}
	return sb.String()
}

// RenderTable2 renders Table 2.
func RenderTable2(rows []Table2Row, appleShareBoth float64) string {
	var sb strings.Builder
	sb.WriteString("AS         ASPop        ASes    /24 Subnets\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-9s  %11d  %6d  %11d\n", r.Group, r.ASPop, r.ASes, r.Subnets)
	}
	fmt.Fprintf(&sb, "Apple's subnet share within Both: %.0f%%\n", appleShareBoth)
	return sb.String()
}

// RenderTable3 renders Table 3.
func RenderTable3(rows []Table3Row) string {
	var sb strings.Builder
	sb.WriteString("                 IPv4                          IPv6\n")
	sb.WriteString("AS          Subnets  BGP Pfxs  IP Addr.   Subnets  BGP Pfxs  CCs\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-11s %7d  %8d  %8d  %8d  %8d  %3d\n",
			netsim.ASName(r.AS), r.V4Subnets, r.V4BGP, r.V4Addrs, r.V6Subnets, r.V6BGP, r.V6CCs)
	}
	return sb.String()
}

// RenderTable4 renders Table 4.
func RenderTable4(rows []Table4Row) string {
	var sb strings.Builder
	sb.WriteString("AS          Covered Cities   IPv4   IPv6\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-11s %14d  %5d  %5d\n", netsim.ASName(r.AS), r.Cities, r.CitiesV4, r.CitiesV6)
	}
	return sb.String()
}

func pct(n int, total float64) float64 {
	if total == 0 {
		return 0
	}
	return float64(n) / total * 100
}
