// Package analysis turns measurement outputs into the paper's tables and
// figures: Table 1 (ingress evolution), Table 2 (client attribution),
// Table 3 (egress subnets), Table 4 (covered cities), Figure 2/5 (egress
// geolocation scatter), Figure 3 (operator changes), Figure 4 (location
// CDFs), plus the §4.1 blocking and §4.3 rotation summaries.
//
// Builders are pure functions over the measurement results; rendering is
// separated so binaries can emit either aligned text or CSV.
package analysis

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"github.com/relay-networks/privaterelay/internal/aspop"
	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/core"
	"github.com/relay-networks/privaterelay/internal/egress"
	"github.com/relay-networks/privaterelay/internal/iputil"
	"github.com/relay-networks/privaterelay/internal/netsim"
)

// Table1Row is one month of Table 1.
type Table1Row struct {
	Month bgp.Month
	// Default plane (mask.icloud.com).
	DefaultApple, DefaultAkamai int
	// Fallback plane (mask-h2.icloud.com); Present is false for January,
	// where the paper ran no fallback scan.
	FallbackPresent               bool
	FallbackApple, FallbackAkamai int
}

// SharePct returns (appleShare, akamaiShare) of the default plane.
func (r Table1Row) SharePct() (float64, float64) {
	total := float64(r.DefaultApple + r.DefaultAkamai)
	if total == 0 {
		return 0, 0
	}
	return float64(r.DefaultApple) / total * 100, float64(r.DefaultAkamai) / total * 100
}

// Table1 builds the ingress-evolution table from per-month datasets.
// fallback may omit months (nil dataset → scan absent).
func Table1(months []bgp.Month, def, fallback map[bgp.Month]*core.Dataset) []Table1Row {
	rows := make([]Table1Row, 0, len(months))
	for _, m := range months {
		row := Table1Row{Month: m}
		if ds := def[m]; ds != nil {
			c := ds.OperatorCounts()
			row.DefaultApple = c[netsim.ASApple]
			row.DefaultAkamai = c[netsim.ASAkamaiPR]
		}
		if ds := fallback[m]; ds != nil {
			row.FallbackPresent = true
			c := ds.OperatorCounts()
			row.FallbackApple = c[netsim.ASApple]
			row.FallbackAkamai = c[netsim.ASAkamaiPR]
		}
		rows = append(rows, row)
	}
	return rows
}

// Table2Row is one serving-group row of Table 2.
type Table2Row struct {
	Group   string
	ASPop   int64
	ASes    int
	Subnets int64
}

// Table2 joins the April scan's serving statistics with the AS
// population dataset, grouping client ASes by which operators serve them.
func Table2(ds *core.Dataset, pop *aspop.Dataset) []Table2Row {
	rows := map[string]*Table2Row{
		"AkamaiPR": {Group: "AkamaiPR"},
		"Apple":    {Group: "Apple"},
		"Both":     {Group: "Both"},
	}
	for clientAS, st := range ds.Serving {
		ak := st.SubnetsByOperator[netsim.ASAkamaiPR]
		ap := st.SubnetsByOperator[netsim.ASApple]
		var key string
		switch {
		case ak > 0 && ap > 0:
			key = "Both"
		case ak > 0:
			key = "AkamaiPR"
		case ap > 0:
			key = "Apple"
		default:
			continue
		}
		r := rows[key]
		r.ASes++
		r.Subnets += ak + ap
		r.ASPop += pop.Population(clientAS)
	}
	return []Table2Row{*rows["AkamaiPR"], *rows["Apple"], *rows["Both"]}
}

// AppleShareInBoth returns Apple's share (percent) of served subnets
// within "both"-group ASes — the Table 2 footnote.
func AppleShareInBoth(ds *core.Dataset) float64 {
	var apple, total int64
	for _, st := range ds.Serving {
		ak := st.SubnetsByOperator[netsim.ASAkamaiPR]
		ap := st.SubnetsByOperator[netsim.ASApple]
		if ak > 0 && ap > 0 {
			apple += ap
			total += ak + ap
		}
	}
	if total == 0 {
		return 0
	}
	return float64(apple) / float64(total) * 100
}

// Table3Row is one operator row of Table 3.
type Table3Row struct {
	AS bgp.ASN
	// IPv4.
	V4Subnets int
	V4BGP     int
	V4Addrs   uint64
	// IPv6 (all /64s; the paper omits the address count).
	V6Subnets int
	V6BGP     int
	V6CCs     int
}

// Table3 aggregates the attributed egress list per operator.
func Table3(attributed []egress.Attributed) []Table3Row {
	type acc struct {
		row   Table3Row
		v4BGP map[netip.Prefix]bool
		v6BGP map[netip.Prefix]bool
		v6CCs map[string]bool
	}
	byAS := map[bgp.ASN]*acc{}
	for _, a := range attributed {
		if a.AS == 0 {
			continue
		}
		ac := byAS[a.AS]
		if ac == nil {
			ac = &acc{row: Table3Row{AS: a.AS},
				v4BGP: map[netip.Prefix]bool{}, v6BGP: map[netip.Prefix]bool{}, v6CCs: map[string]bool{}}
			byAS[a.AS] = ac
		}
		if a.Prefix.Addr().Is4() {
			ac.row.V4Subnets++
			ac.row.V4Addrs += iputil.AddrCount(a.Prefix)
			ac.v4BGP[a.BGPPrefix] = true
		} else {
			ac.row.V6Subnets++
			ac.v6BGP[a.BGPPrefix] = true
			ac.v6CCs[a.CC] = true
		}
	}
	var out []Table3Row
	for _, ac := range byAS {
		ac.row.V4BGP = len(ac.v4BGP)
		ac.row.V6BGP = len(ac.v6BGP)
		ac.row.V6CCs = len(ac.v6CCs)
		out = append(out, ac.row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].AS < out[j].AS })
	return out
}

// Table4Row is one operator row of Table 4 (appendix A).
type Table4Row struct {
	AS                         bgp.ASN
	Cities, CitiesV4, CitiesV6 int
}

// Table4 counts covered cities per operator, overall and per family.
func Table4(attributed []egress.Attributed) []Table4Row {
	type sets struct{ all, v4, v6 map[string]bool }
	byAS := map[bgp.ASN]*sets{}
	for _, a := range attributed {
		if a.AS == 0 || a.City == "" {
			continue
		}
		s := byAS[a.AS]
		if s == nil {
			s = &sets{all: map[string]bool{}, v4: map[string]bool{}, v6: map[string]bool{}}
			byAS[a.AS] = s
		}
		key := a.CC + "/" + a.City
		s.all[key] = true
		if a.Prefix.Addr().Is4() {
			s.v4[key] = true
		} else {
			s.v6[key] = true
		}
	}
	var out []Table4Row
	for as, s := range byAS {
		out = append(out, Table4Row{AS: as, Cities: len(s.all), CitiesV4: len(s.v4), CitiesV6: len(s.v6)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].AS < out[j].AS })
	return out
}

// CountryShare summarizes the §4.2 geographic bias.
type CountryShare struct {
	CC      string
	Subnets int
	Share   float64 // percent of all subnets
}

// CountryShares returns per-country subnet shares, descending, plus the
// number of countries holding fewer than `smallThreshold` subnets.
func CountryShares(attributed []egress.Attributed, smallThreshold int) (shares []CountryShare, smallCCs int) {
	counts := map[string]int{}
	total := 0
	for _, a := range attributed {
		counts[a.CC]++
		total++
	}
	for cc, n := range counts {
		shares = append(shares, CountryShare{CC: cc, Subnets: n, Share: float64(n) / float64(total) * 100})
		if n < smallThreshold {
			smallCCs++
		}
	}
	sort.Slice(shares, func(i, j int) bool {
		if shares[i].Subnets != shares[j].Subnets {
			return shares[i].Subnets > shares[j].Subnets
		}
		return shares[i].CC < shares[j].CC
	})
	return shares, smallCCs
}

// RenderTable1 renders Table 1 in the paper's layout.
func RenderTable1(rows []Table1Row) string {
	var sb strings.Builder
	sb.WriteString("            Default                    Fallback\n")
	sb.WriteString("Month   Apple        Akamai        Apple        Akamai\n")
	for _, r := range rows {
		ap, ak := r.SharePct()
		fmt.Fprintf(&sb, "%s  %4d %5.1f%%  %4d %5.1f%%", r.Month.String()[5:], r.DefaultApple, ap, r.DefaultAkamai, ak)
		if !r.FallbackPresent {
			sb.WriteString("     -      -       -      -\n")
			continue
		}
		ft := float64(r.FallbackApple + r.FallbackAkamai)
		fmt.Fprintf(&sb, "  %4d %5.1f%%  %4d %5.1f%%\n",
			r.FallbackApple, pct(r.FallbackApple, ft), r.FallbackAkamai, pct(r.FallbackAkamai, ft))
	}
	return sb.String()
}

// RenderTable2 renders Table 2.
func RenderTable2(rows []Table2Row, appleShareBoth float64) string {
	var sb strings.Builder
	sb.WriteString("AS         ASPop        ASes    /24 Subnets\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-9s  %11d  %6d  %11d\n", r.Group, r.ASPop, r.ASes, r.Subnets)
	}
	fmt.Fprintf(&sb, "Apple's subnet share within Both: %.0f%%\n", appleShareBoth)
	return sb.String()
}

// RenderTable3 renders Table 3.
func RenderTable3(rows []Table3Row) string {
	var sb strings.Builder
	sb.WriteString("                 IPv4                          IPv6\n")
	sb.WriteString("AS          Subnets  BGP Pfxs  IP Addr.   Subnets  BGP Pfxs  CCs\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-11s %7d  %8d  %8d  %8d  %8d  %3d\n",
			netsim.ASName(r.AS), r.V4Subnets, r.V4BGP, r.V4Addrs, r.V6Subnets, r.V6BGP, r.V6CCs)
	}
	return sb.String()
}

// RenderTable4 renders Table 4.
func RenderTable4(rows []Table4Row) string {
	var sb strings.Builder
	sb.WriteString("AS          Covered Cities   IPv4   IPv6\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-11s %14d  %5d  %5d\n", netsim.ASName(r.AS), r.Cities, r.CitiesV4, r.CitiesV6)
	}
	return sb.String()
}

func pct(n int, total float64) float64 {
	if total == 0 {
		return 0
	}
	return float64(n) / total * 100
}
