package analysis

import (
	"fmt"
	"slices"
	"strings"
	"time"

	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/egress"
	"github.com/relay-networks/privaterelay/internal/netsim"
	"github.com/relay-networks/privaterelay/internal/scan"
)

// GeoPoint is one egress subnet's representative location (Figures 2, 5).
type GeoPoint struct {
	Lat, Lon float64
	CC       string
}

// GeoScatter returns the geolocation series of egress subnets for one
// operator and family — the data behind the Figure 2 and Figure 5 maps.
// The Akamai panels of the paper combine both Akamai ASes; callers merge
// series as needed.
func GeoScatter(attributed []egress.Attributed, as bgp.ASN, fam netsim.Family) []GeoPoint {
	var out []GeoPoint
	for _, a := range attributed {
		if a.AS != as {
			continue
		}
		isV4 := a.Prefix.Addr().Is4()
		if (fam == netsim.FamilyV4) != isV4 {
			continue
		}
		loc := a.Location()
		out = append(out, GeoPoint{Lat: loc.Lat, Lon: loc.Lon, CC: a.CC})
	}
	return out
}

// GeoBounds summarizes a scatter series for text output.
type GeoBounds struct {
	Points            int
	MinLat, MaxLat    float64
	MinLon, MaxLon    float64
	DistinctCountries int
}

// Bounds computes a scatter summary.
func Bounds(points []GeoPoint) GeoBounds {
	if len(points) == 0 {
		return GeoBounds{}
	}
	b := GeoBounds{
		Points: len(points),
		MinLat: points[0].Lat, MaxLat: points[0].Lat,
		MinLon: points[0].Lon, MaxLon: points[0].Lon,
	}
	ccs := map[string]bool{}
	for _, p := range points {
		if p.Lat < b.MinLat {
			b.MinLat = p.Lat
		}
		if p.Lat > b.MaxLat {
			b.MaxLat = p.Lat
		}
		if p.Lon < b.MinLon {
			b.MinLon = p.Lon
		}
		if p.Lon > b.MaxLon {
			b.MaxLon = p.Lon
		}
		ccs[p.CC] = true
	}
	b.DistinctCountries = len(ccs)
	return b
}

// CDFPoint is one point of a Figure 4 curve: after the `Rank` largest
// locations, `CumShare` of the operator's subnets are covered.
type CDFPoint struct {
	Rank     int
	CumShare float64 // 0..1
}

// LocationKind selects the Figure 4 grouping.
type LocationKind int

// Figure 4 groups subnets by city or by country.
const (
	ByCity LocationKind = iota
	ByCountry
)

// LocationCDF computes the Figure 4 CDF: subnet counts per location for
// one operator/family, locations ordered by descending subnet count, and
// the cumulative share at each rank.
func LocationCDF(attributed []egress.Attributed, as bgp.ASN, fam netsim.Family, kind LocationKind) []CDFPoint {
	counts := map[string]int{}
	total := 0
	for _, a := range attributed {
		if a.AS != as {
			continue
		}
		isV4 := a.Prefix.Addr().Is4()
		if (fam == netsim.FamilyV4) != isV4 {
			continue
		}
		var key string
		if kind == ByCity {
			if a.City == "" {
				continue
			}
			key = a.CC + "/" + a.City
		} else {
			key = a.CC
		}
		counts[key]++
		total++
	}
	vals := make([]int, 0, len(counts))
	for _, n := range counts {
		vals = append(vals, n)
	}
	slices.SortFunc(vals, func(a, b int) int { return b - a })
	out := make([]CDFPoint, len(vals))
	cum := 0
	for i, n := range vals {
		cum += n
		out[i] = CDFPoint{Rank: i + 1, CumShare: float64(cum) / float64(total)}
	}
	return out
}

// GiniLike returns a concentration measure for a CDF: the share covered
// by the top 10 % of locations. Heavier concentration → higher value.
func GiniLike(cdf []CDFPoint) float64 {
	if len(cdf) == 0 {
		return 0
	}
	idx := len(cdf) / 10
	if idx >= len(cdf) {
		idx = len(cdf) - 1
	}
	return cdf[idx].CumShare
}

// Figure3Series is the rendered operator-change timeline of one scan.
type Figure3Series struct {
	Label   string
	Rounds  int
	Changes []scan.OperatorChange
}

// Figure3 builds the change timeline from scan observations.
func Figure3(label string, obs []scan.Observation) Figure3Series {
	return Figure3Series{Label: label, Rounds: len(obs), Changes: scan.OperatorChanges(obs)}
}

// RenderFigure3 renders change timelines as a text timeline.
func RenderFigure3(series []Figure3Series) string {
	var sb strings.Builder
	for _, s := range series {
		fmt.Fprintf(&sb, "%s (%d rounds): %d operator changes\n", s.Label, s.Rounds, len(s.Changes))
		for _, ch := range s.Changes {
			fmt.Fprintf(&sb, "  t=%8s  %s → %s\n", formatDur(ch.At), netsim.ASName(ch.From), netsim.ASName(ch.To))
		}
	}
	return sb.String()
}

// RenderCDF renders a Figure 4 curve at a few sample ranks.
func RenderCDF(label string, cdf []CDFPoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %d locations", label, len(cdf))
	if len(cdf) == 0 {
		sb.WriteString("\n")
		return sb.String()
	}
	for _, frac := range []float64{0.01, 0.1, 0.25, 0.5, 1.0} {
		idx := int(frac*float64(len(cdf))) - 1
		if idx < 0 {
			idx = 0
		}
		fmt.Fprintf(&sb, "  top%3.0f%%→%4.1f%%", frac*100, cdf[idx].CumShare*100)
	}
	sb.WriteString("\n")
	return sb.String()
}

// RenderGeoBounds renders a Figure 2/5 panel summary.
func RenderGeoBounds(label string, b GeoBounds) string {
	return fmt.Sprintf("%s: %d subnets across %d countries, lat [%.1f, %.1f], lon [%.1f, %.1f]\n",
		label, b.Points, b.DistinctCountries, b.MinLat, b.MaxLat, b.MinLon, b.MaxLon)
}

func formatDur(d time.Duration) string {
	return d.Truncate(time.Second).String()
}
