package analysis

import (
	"bufio"
	"fmt"
	"io"

	"github.com/relay-networks/privaterelay/internal/netsim"
	"github.com/relay-networks/privaterelay/internal/scan"
)

// CSV exporters: each figure's raw series in a plottable form, so the
// paper's plots can be regenerated with any charting tool.

// WriteGeoScatterCSV emits "lat,lon,cc" rows — one per egress subnet —
// for a Figure 2/5 panel.
func WriteGeoScatterCSV(w io.Writer, points []GeoPoint) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "lat,lon,cc"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(bw, "%.4f,%.4f,%s\n", p.Lat, p.Lon, p.CC); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteCDFCSV emits "rank,cum_share" rows for a Figure 4 curve.
func WriteCDFCSV(w io.Writer, cdf []CDFPoint) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "rank,cum_share"); err != nil {
		return err
	}
	for _, p := range cdf {
		if _, err := fmt.Fprintf(bw, "%d,%.6f\n", p.Rank, p.CumShare); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteOperatorTimelineCSV emits "round,seconds,operator" rows for one
// Figure 3 series (every round, not only the change events, so the
// timeline can be drawn as the paper does).
func WriteOperatorTimelineCSV(w io.Writer, obs []scan.Observation) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "round,seconds,operator"); err != nil {
		return err
	}
	for _, o := range obs {
		if o.Failed {
			continue
		}
		if _, err := fmt.Fprintf(bw, "%d,%.0f,%s\n", o.Round, o.At.Seconds(), netsim.ASName(o.Operator)); err != nil {
			return err
		}
	}
	return bw.Flush()
}
