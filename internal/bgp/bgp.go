// Package bgp models the parts of interdomain routing the measurement
// study needs: a global routing table with longest-prefix-match origin-AS
// attribution, prefix enumeration per AS, and a monthly visibility history
// used to date the first appearance of an AS (the paper dates AS36183,
// the Akamai private-relay AS, to June 2021).
package bgp

import (
	"fmt"
	"net/netip"
	"slices"
	"sync"

	"github.com/relay-networks/privaterelay/internal/iputil"
)

// ASN is an autonomous system number.
type ASN uint32

// String renders the ASN in the conventional "AS714" form.
func (a ASN) String() string { return fmt.Sprintf("AS%d", uint32(a)) }

// Announcement is one routed prefix with its origin AS.
type Announcement struct {
	Prefix netip.Prefix
	Origin ASN
}

// Table is a BGP routing table supporting concurrent lookups after build.
type Table struct {
	mu     sync.RWMutex
	trie   iputil.Trie[ASN]
	byAS   map[ASN][]netip.Prefix
	counts struct{ v4, v6 int }
	idx    *Index // memoized flattened snapshot; nil until Index() is called
}

// NewTable returns an empty routing table.
func NewTable() *Table {
	return &Table{byAS: make(map[ASN][]netip.Prefix)}
}

// Announce inserts a prefix announcement. Re-announcing the same prefix
// with a different origin replaces the previous origin (no MOAS modeling).
func (t *Table) Announce(p netip.Prefix, origin ASN) {
	p = iputil.CanonicalPrefix(p)
	if !p.IsValid() {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.idx = nil
	if prev, ok := t.trie.Get(p); ok {
		// Replace: remove from the previous AS's list.
		lst := t.byAS[prev]
		for i, q := range lst {
			if q == p {
				t.byAS[prev] = append(lst[:i], lst[i+1:]...)
				break
			}
		}
		t.trie.Insert(p, origin)
		t.byAS[origin] = append(t.byAS[origin], p)
		return
	}
	t.trie.Insert(p, origin)
	t.byAS[origin] = append(t.byAS[origin], p)
	if p.Addr().Is4() {
		t.counts.v4++
	} else {
		t.counts.v6++
	}
}

// Origin returns the origin AS of the most-specific prefix covering addr.
func (t *Table) Origin(addr netip.Addr) (ASN, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, as, ok := t.trie.Lookup(addr)
	return as, ok
}

// Route returns the matched prefix and origin for addr.
func (t *Table) Route(addr netip.Addr) (netip.Prefix, ASN, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.trie.Lookup(addr)
}

// Reader is an immutable snapshot of a Table supporting lock-free
// concurrent lookups. Scanners that resolve origins on their hot path
// take one snapshot up front instead of paying the table's read lock on
// every probe. A nil Reader answers every lookup with "not found".
type Reader struct {
	trie *iputil.Trie[ASN]
}

// Snapshot returns an immutable copy of the table's current routes.
func (t *Table) Snapshot() *Reader {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return &Reader{trie: t.trie.Clone()}
}

// Origin returns the origin AS of the most-specific prefix covering addr.
func (r *Reader) Origin(addr netip.Addr) (ASN, bool) {
	if r == nil {
		return 0, false
	}
	_, as, ok := r.trie.Lookup(addr)
	return as, ok
}

// Route returns the matched prefix and origin for addr.
func (r *Reader) Route(addr netip.Addr) (netip.Prefix, ASN, bool) {
	if r == nil {
		return netip.Prefix{}, 0, false
	}
	return r.trie.Lookup(addr)
}

// CoveringPrefix returns the announced BGP prefix containing p, mirroring
// Table.CoveringPrefix on the lock-free snapshot.
func (r *Reader) CoveringPrefix(p netip.Prefix) (netip.Prefix, ASN, bool) {
	return r.Route(iputil.CanonicalPrefix(p).Addr())
}

// IsRouted reports whether addr falls inside any announced prefix. The ECS
// scanner uses this to skip unrouted space (an ethics measure in §7).
func (t *Table) IsRouted(addr netip.Addr) bool {
	_, ok := t.Origin(addr)
	return ok
}

// PrefixesOf returns the prefixes originated by as, sorted.
func (t *Table) PrefixesOf(as ASN) []netip.Prefix {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := append([]netip.Prefix(nil), t.byAS[as]...)
	sortPrefixes(out)
	return out
}

// PrefixCounts returns the number of announced IPv4 and IPv6 prefixes.
func (t *Table) PrefixCounts() (v4, v6 int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.counts.v4, t.counts.v6
}

// Len returns the total number of announcements.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.trie.Len()
}

// Walk visits all announcements, stopping early if fn returns false.
func (t *Table) Walk(fn func(Announcement) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.trie.Walk(func(p netip.Prefix, as ASN) bool {
		return fn(Announcement{Prefix: p, Origin: as})
	})
}

// CoveringPrefix returns the announced BGP prefix containing p (the prefix
// matched by p's network address) — used to aggregate egress subnets into
// routed BGP prefixes as in Table 3.
func (t *Table) CoveringPrefix(p netip.Prefix) (netip.Prefix, ASN, bool) {
	return t.Route(iputil.CanonicalPrefix(p).Addr())
}

func sortPrefixes(ps []netip.Prefix) {
	slices.SortFunc(ps, func(a, b netip.Prefix) int {
		if c := a.Addr().Compare(b.Addr()); c != 0 {
			return c
		}
		return a.Bits() - b.Bits()
	})
}

// Month is a calendar month used by the visibility history.
type Month struct {
	Year int
	M    int // 1..12
}

// String renders the month as YYYY-MM.
func (m Month) String() string { return fmt.Sprintf("%04d-%02d", m.Year, m.M) }

// Before reports whether m is strictly earlier than o.
func (m Month) Before(o Month) bool {
	if m.Year != o.Year {
		return m.Year < o.Year
	}
	return m.M < o.M
}

// Next returns the following calendar month.
func (m Month) Next() Month {
	if m.M == 12 {
		return Month{m.Year + 1, 1}
	}
	return Month{m.Year, m.M + 1}
}

// History records which ASes were visible in the global table per month,
// mirroring the paper's monthly BGP archive examination (2016–2022).
type History struct {
	mu      sync.RWMutex
	visible map[Month]map[ASN]bool
	months  []Month
}

// NewHistory returns an empty history.
func NewHistory() *History {
	return &History{visible: make(map[Month]map[ASN]bool)}
}

// Record marks as visible in month m.
func (h *History) Record(m Month, as ASN) {
	h.mu.Lock()
	defer h.mu.Unlock()
	set, ok := h.visible[m]
	if !ok {
		set = make(map[ASN]bool)
		h.visible[m] = set
		h.months = append(h.months, m)
		slices.SortFunc(h.months, func(a, b Month) int {
			switch {
			case a.Before(b):
				return -1
			case b.Before(a):
				return 1
			}
			return 0
		})
	}
	set[as] = true
}

// Visible reports whether as was visible in month m.
func (h *History) Visible(m Month, as ASN) bool {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.visible[m][as]
}

// FirstSeen returns the earliest month in which as was visible.
func (h *History) FirstSeen(as ASN) (Month, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	for _, m := range h.months {
		if h.visible[m][as] {
			return m, true
		}
	}
	return Month{}, false
}

// Months returns the recorded months in chronological order.
func (h *History) Months() []Month {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return append([]Month(nil), h.months...)
}
