package bgp

import (
	"encoding/binary"
	"net/netip"
	"slices"

	"github.com/relay-networks/privaterelay/internal/iputil"
)

// ipKey is an address as a raw 128-bit integer (IPv4 occupies the low 32
// bits of lo), so interval comparisons are two machine-word compares
// instead of netip.Addr method calls.
type ipKey struct{ hi, lo uint64 }

// compare orders keys numerically.
func (k ipKey) compare(o ipKey) int {
	switch {
	case k.hi != o.hi:
		if k.hi < o.hi {
			return -1
		}
		return 1
	case k.lo != o.lo:
		if k.lo < o.lo {
			return -1
		}
		return 1
	}
	return 0
}

// next returns the key one address higher. Callers must not pass the
// all-ones key.
func (k ipKey) next() ipKey {
	k.lo++
	if k.lo == 0 {
		k.hi++
	}
	return k
}

// addrKey flattens a canonical address into its integer key.
func addrKey(a netip.Addr) ipKey {
	if a.Is4() {
		b := a.As4()
		return ipKey{0, uint64(binary.BigEndian.Uint32(b[:]))}
	}
	b := a.As16()
	return ipKey{binary.BigEndian.Uint64(b[:8]), binary.BigEndian.Uint64(b[8:])}
}

// prefixEnd returns the key of the last address inside p for a family
// with famBits address bits.
func prefixEnd(p netip.Prefix, famBits int) ipKey {
	k := addrKey(p.Addr())
	host := uint(famBits - p.Bits())
	switch {
	case host == 0:
	case host >= 128:
		k = ipKey{^uint64(0), ^uint64(0)}
	case host >= 64:
		k.lo = ^uint64(0)
		if host > 64 {
			k.hi |= 1<<(host-64) - 1
		}
	default:
		k.lo |= 1<<host - 1
	}
	return k
}

// routeVal is the routing decision from its boundary key (inclusive) up
// to the next boundary: the most-specific announcement covering the
// span, or a gap between announcements (ok = false). annID is the
// announcement's dense identifier within this index (see Cursor.
// CoveringRoute); several intervals share an annID when a covering
// prefix is split around more-specific ones.
type routeVal struct {
	prefix netip.Prefix
	origin ASN
	annID  int32
	ok     bool
}

// Index is a routing table flattened for the attribution hot loop: the
// trie's announcements are swept into disjoint boundary intervals, sorted
// by start key, one array per family. A lookup is a binary search over
// plain integers — no pointer chasing, no lock — which is what the egress
// attribution join wants when it resolves hundreds of thousands of
// prefixes against a table that never changes mid-run. The boundary keys
// live in their own densely packed array (four 16-byte keys per cache
// line) so the search never drags the fat payload entries through the
// cache; the matching payloads sit at the same position in vals. Lookup
// results are identical to the trie's longest-prefix match. A nil Index
// answers every lookup with "not found".
type Index struct {
	v4Keys, v6Keys []ipKey
	v4Vals, v6Vals []routeVal
}

// Index flattens the snapshot's routes into interval form.
func (r *Reader) Index() *Index {
	if r == nil || r.trie == nil {
		return &Index{}
	}
	return buildIndex(r.trie)
}

// Index returns a flattened snapshot of the table's current routes. The
// snapshot is memoized — analysis pipelines call Index once per run on a
// table that stopped changing at build time — and invalidated by the
// next Announce.
func (t *Table) Index() *Index {
	t.mu.RLock()
	ix := t.idx
	t.mu.RUnlock()
	if ix != nil {
		return ix
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.idx == nil {
		t.idx = buildIndex(&t.trie)
	}
	return t.idx
}

func buildIndex(tr *iputil.Trie[ASN]) *Index {
	var v4, v6 []Announcement
	tr.Walk(func(p netip.Prefix, as ASN) bool {
		if p.Addr().Is4() {
			v4 = append(v4, Announcement{Prefix: p, Origin: as})
		} else {
			v6 = append(v6, Announcement{Prefix: p, Origin: as})
		}
		return true
	})
	ix := &Index{}
	ix.v4Keys, ix.v4Vals = sweep(v4, 32, 0)
	ix.v6Keys, ix.v6Vals = sweep(v6, 128, int32(len(v4)))
	return ix
}

// sweep turns nested/disjoint announcements into boundary intervals. The
// prefixes are sorted by (start, length): at equal start the shorter
// prefix comes first, so a more-specific emitted at the same key replaces
// it — exactly the trie's most-specific-wins semantics. A stack of open
// prefixes restores the enclosing announcement when a nested one ends.
// Announcement IDs are baseID plus the position in the sorted order, so
// equal tables always number their routes identically.
func sweep(anns []Announcement, famBits int, baseID int32) ([]ipKey, []routeVal) {
	slices.SortFunc(anns, func(a, b Announcement) int {
		if c := addrKey(a.Prefix.Addr()).compare(addrKey(b.Prefix.Addr())); c != 0 {
			return c
		}
		return a.Prefix.Bits() - b.Prefix.Bits()
	})
	maxKey := prefixEnd(netip.PrefixFrom(netip.IPv6Unspecified(), 0), 128)
	if famBits == 32 {
		maxKey = ipKey{0, 1<<32 - 1}
	}
	type open struct {
		ann Announcement
		end ipKey
		id  int32
	}
	keys := make([]ipKey, 0, 2*len(anns)+1)
	vals := make([]routeVal, 0, 2*len(anns)+1)
	emit := func(k ipKey, a Announcement, id int32, ok bool) {
		v := routeVal{ok: ok}
		if ok {
			v.prefix, v.origin, v.annID = a.Prefix, a.Origin, id
		}
		if n := len(keys); n > 0 && keys[n-1] == k {
			vals[n-1] = v
			return
		}
		keys = append(keys, k)
		vals = append(vals, v)
	}
	// closeTop pops the innermost open prefix and emits what the space
	// just past its end resolves to. An end at the family's last address
	// has no successor key; the interval simply runs out.
	var stack []open
	closeTop := func() {
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if top.end == maxKey {
			return
		}
		if len(stack) > 0 {
			outer := stack[len(stack)-1]
			emit(top.end.next(), outer.ann, outer.id, true)
		} else {
			emit(top.end.next(), Announcement{}, 0, false)
		}
	}
	for i, a := range anns {
		id := baseID + int32(i)
		s := addrKey(a.Prefix.Addr())
		for len(stack) > 0 && stack[len(stack)-1].end.compare(s) < 0 {
			closeTop()
		}
		emit(s, a, id, true)
		stack = append(stack, open{ann: a, end: prefixEnd(a.Prefix, famBits), id: id})
	}
	for len(stack) > 0 {
		closeTop()
	}
	return keys, vals
}

// Route returns the matched prefix and origin for addr, identical to the
// trie's longest-prefix match.
func (ix *Index) Route(addr netip.Addr) (netip.Prefix, ASN, bool) {
	if ix == nil {
		return netip.Prefix{}, 0, false
	}
	addr = iputil.Canonical(addr)
	if !addr.IsValid() {
		return netip.Prefix{}, 0, false
	}
	return ix.route(addr)
}

// route is the lookup core; addr must already be canonical and valid.
func (ix *Index) route(addr netip.Addr) (netip.Prefix, ASN, bool) {
	keys, vals := ix.v6Keys, ix.v6Vals
	if addr.Is4() {
		keys, vals = ix.v4Keys, ix.v4Vals
	}
	k := addrKey(addr)
	// Rightmost boundary with key <= k.
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		e := keys[mid]
		if e.hi < k.hi || (e.hi == k.hi && e.lo <= k.lo) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return netip.Prefix{}, 0, false
	}
	v := &vals[lo-1]
	if !v.ok {
		return netip.Prefix{}, 0, false
	}
	return v.prefix, v.origin, true
}

// Origin returns the origin AS of the most-specific prefix covering addr.
func (ix *Index) Origin(addr netip.Addr) (ASN, bool) {
	_, as, ok := ix.Route(addr)
	return as, ok
}

// lookupLE returns the rightmost position in keys whose key is <= k, or
// -1 when every key is greater. hint seeds the search: when successive
// queries are nearby (the egress list is ~93% address-ascending), a
// short exponential gallop from the previous answer replaces the full
// binary search. Any hint produces the same answer.
func lookupLE(keys []ipKey, k ipKey, hint int) int {
	n := len(keys)
	if n == 0 {
		return -1
	}
	if hint < 0 {
		hint = 0
	} else if hint >= n {
		hint = n - 1
	}
	le := func(i int) bool {
		e := keys[i]
		return e.hi < k.hi || (e.hi == k.hi && e.lo <= k.lo)
	}
	var lo, hi int
	if le(hint) {
		lo, hi = hint, n
		for step := 1; lo+step < n; step <<= 1 {
			if !le(lo + step) {
				hi = lo + step
				break
			}
			lo += step
		}
	} else {
		lo, hi = -1, hint
		for step := 1; hi-step >= 0; step <<= 1 {
			if le(hi - step) {
				lo = hi - step
				break
			}
			hi -= step
		}
	}
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if le(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Cursor is a stateful lookup handle over an Index for callers whose
// successive queries are mostly address-sorted, like the attribution
// join walking the egress list. It remembers the last boundary position
// per family and gallops from there instead of binary-searching from
// scratch. Results are identical to the Index's stateless lookups at any
// query order; only the probe count changes. A Cursor is not safe for
// concurrent use — give each worker its own.
type Cursor struct {
	ix         *Index
	pos4, pos6 int
}

// Cursor returns a fresh lookup cursor over the index.
func (ix *Index) Cursor() Cursor { return Cursor{ix: ix} }

// CoveringPrefix returns the announced BGP prefix containing p,
// identical to Index.CoveringPrefix. The masked network key is computed
// with two word operations instead of netip's canonical re-masking.
func (c *Cursor) CoveringPrefix(p netip.Prefix) (netip.Prefix, ASN, bool) {
	v := c.lookup(p)
	if v == nil || !v.ok {
		return netip.Prefix{}, 0, false
	}
	return v.prefix, v.origin, true
}

// CoveringRoute is CoveringPrefix plus the matched announcement's dense
// ID. Routes are numbered 0..N-1 within the index snapshot — stable
// across rebuilds of an unchanged table — and every lookup landing in the
// same announcement returns the same ID, so downstream aggregations can
// count distinct BGP prefixes with a bitset instead of hashing prefixes.
func (c *Cursor) CoveringRoute(p netip.Prefix) (pfx netip.Prefix, origin ASN, id int32, ok bool) {
	v := c.lookup(p)
	if v == nil || !v.ok {
		return netip.Prefix{}, 0, 0, false
	}
	return v.prefix, v.origin, v.annID, true
}

// lookup finds the interval covering p's masked network address, or nil
// when p is outside the key space entirely.
func (c *Cursor) lookup(p netip.Prefix) *routeVal {
	if c.ix == nil {
		return nil
	}
	addr := p.Addr()
	if addr.Is4In6() {
		addr = addr.Unmap()
	}
	if !addr.IsValid() {
		return nil
	}
	k := addrKey(addr)
	if addr.Is4() {
		if p.Bits() > 32 {
			// A 4-in-6 prefix whose length exceeds the unmapped
			// family's: canonicalization makes it invalid.
			return nil
		}
		if host := uint(32 - p.Bits()); host > 0 {
			k.lo &^= 1<<host - 1
		}
		pos := lookupLE(c.ix.v4Keys, k, c.pos4)
		if pos < 0 {
			c.pos4 = 0
			return nil
		}
		c.pos4 = pos
		return &c.ix.v4Vals[pos]
	}
	switch host := uint(128 - p.Bits()); {
	case host >= 128:
		k = ipKey{}
	case host >= 64:
		k.lo = 0
		k.hi &^= 1<<(host-64) - 1
	case host > 0:
		k.lo &^= 1<<host - 1
	}
	pos := lookupLE(c.ix.v6Keys, k, c.pos6)
	if pos < 0 {
		c.pos6 = 0
		return nil
	}
	c.pos6 = pos
	return &c.ix.v6Vals[pos]
}

// CoveringPrefix returns the announced BGP prefix containing p, mirroring
// Table.CoveringPrefix. The canonicalized network address is passed to
// the lookup core directly, skipping Route's redundant re-canonicalize.
func (ix *Index) CoveringPrefix(p netip.Prefix) (netip.Prefix, ASN, bool) {
	if ix == nil {
		return netip.Prefix{}, 0, false
	}
	addr := iputil.CanonicalPrefix(p).Addr()
	if !addr.IsValid() {
		return netip.Prefix{}, 0, false
	}
	return ix.route(addr)
}

// Len returns the number of interval boundaries (both families).
func (ix *Index) Len() int {
	if ix == nil {
		return 0
	}
	return len(ix.v4Keys) + len(ix.v6Keys)
}
