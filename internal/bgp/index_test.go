package bgp

import (
	"math/rand"
	"net/netip"
	"testing"
)

// indexFixture builds a table exercising the interval sweep's edge cases:
// nested prefixes (including equal-start nesting), adjacent prefixes,
// gaps, a default route, and prefixes ending at the family's last address.
func indexFixture() *Table {
	tbl := NewTable()
	for _, a := range []struct {
		pfx string
		as  ASN
	}{
		{"0.0.0.0/0", 1},            // v4 default route: every gap resolves to it
		{"10.0.0.0/8", 10},          // covering
		{"10.0.0.0/16", 11},         // equal-start nested
		{"10.0.0.0/24", 12},         // equal-start nested, deeper
		{"10.5.0.0/16", 13},         // interior nested
		{"10.255.255.0/24", 14},     // nested at the covering prefix's end
		{"11.0.0.0/8", 15},          // adjacent to 10/8
		{"23.32.0.0/11", 36183},     // isolated after a gap
		{"255.255.255.0/24", 99},    // ends at the v4 all-ones address
		{"255.255.255.255/32", 100}, // host route at the very top
		{"2600::/12", 20},           // v6 covering
		{"2600:9000::/28", 21},      // v6 nested
		{"2600:9000::/44", 22},      // v6 equal-start nested
		{"2620:149:a44::/48", 714},  // v6 isolated
		{"ff00::/8", 30},            // near the v6 top
	} {
		tbl.Announce(netip.MustParsePrefix(a.pfx), a.as)
	}
	return tbl
}

func TestIndexMatchesTrie(t *testing.T) {
	tbl := indexFixture()
	idx := tbl.Index()

	probe := func(addr netip.Addr) {
		t.Helper()
		wantP, wantAS, wantOK := tbl.Route(addr)
		gotP, gotAS, gotOK := idx.Route(addr)
		if gotP != wantP || gotAS != wantAS || gotOK != wantOK {
			t.Fatalf("Route(%v): index = %v,%v,%v; trie = %v,%v,%v",
				addr, gotP, gotAS, gotOK, wantP, wantAS, wantOK)
		}
	}

	// Boundary addresses: first and last address of every announcement,
	// plus the addresses just outside.
	tbl.Walk(func(a Announcement) bool {
		first := a.Prefix.Addr()
		probe(first)
		if prev := first.Prev(); prev.IsValid() {
			probe(prev)
		}
		last := lastAddr(a.Prefix)
		probe(last)
		if next := last.Next(); next.IsValid() {
			probe(next)
		}
		return true
	})

	// Deterministic random sweep over both families.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		var b4 [4]byte
		rng.Read(b4[:])
		probe(netip.AddrFrom4(b4))
		var b16 [16]byte
		rng.Read(b16[:])
		// Bias half the v6 probes into announced space so hits are tested
		// as often as the (dominant) misses.
		if i%2 == 0 {
			b16[0], b16[1] = 0x26, byte(rng.Intn(2))*0x20
		}
		probe(netip.AddrFrom16(b16))
	}
}

// lastAddr returns the last address inside p.
func lastAddr(p netip.Prefix) netip.Addr {
	if p.Addr().Is4() {
		b := p.Addr().As4()
		host := 32 - p.Bits()
		for i := 3; i >= 0 && host > 0; i-- {
			n := min(host, 8)
			b[i] |= byte(1<<n - 1)
			host -= n
		}
		return netip.AddrFrom4(b)
	}
	b := p.Addr().As16()
	host := 128 - p.Bits()
	for i := 15; i >= 0 && host > 0; i-- {
		n := min(host, 8)
		b[i] |= byte(1<<n - 1)
		host -= n
	}
	return netip.AddrFrom16(b)
}

func TestIndexEmptyAndNil(t *testing.T) {
	var nilIdx *Index
	if _, _, ok := nilIdx.Route(netip.MustParseAddr("10.0.0.1")); ok {
		t.Fatal("nil index found a route")
	}
	idx := NewTable().Index()
	if _, _, ok := idx.Route(netip.MustParseAddr("10.0.0.1")); ok {
		t.Fatal("empty index found a route")
	}
	if idx.Len() != 0 {
		t.Fatalf("empty index Len = %d", idx.Len())
	}
	var nilReader *Reader
	if _, _, ok := nilReader.Index().Route(netip.MustParseAddr("10.0.0.1")); ok {
		t.Fatal("nil reader index found a route")
	}
}

// TestCursorMatchesIndex drives a Cursor with random-order queries — the
// worst case for its locality hint — and checks every answer against the
// stateless lookup.
func TestCursorMatchesIndex(t *testing.T) {
	tbl := indexFixture()
	idx := tbl.Index()
	cur := idx.Cursor()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20000; i++ {
		var p netip.Prefix
		if i%2 == 0 {
			var b [4]byte
			rng.Read(b[:])
			p = netip.PrefixFrom(netip.AddrFrom4(b), rng.Intn(33))
		} else {
			var b [16]byte
			rng.Read(b[:])
			if i%4 == 1 {
				b[0], b[1] = 0x26, byte(rng.Intn(2))*0x20
			}
			p = netip.PrefixFrom(netip.AddrFrom16(b), rng.Intn(129))
		}
		wantP, wantAS, wantOK := idx.CoveringPrefix(p)
		if gotP, gotAS, gotOK := cur.CoveringPrefix(p); gotP != wantP || gotAS != wantAS || gotOK != wantOK {
			t.Fatalf("Cursor.CoveringPrefix(%v) = %v,%v,%v; Index = %v,%v,%v", p, gotP, gotAS, gotOK, wantP, wantAS, wantOK)
		}
	}
	// 4-in-6 mapped and invalid prefixes take the canonicalization path.
	for _, pfx := range []netip.Prefix{
		netip.MustParsePrefix("::ffff:10.0.0.0/104"), // canonicalizes to an invalid v4 prefix
		netip.MustParsePrefix("::ffff:10.0.0.0/24"),  // canonicalizes to 10.0.0.0/24
		netip.MustParsePrefix("::ffff:10.0.0.0/60"),  // bits > 32 after unmap: invalid
		{},
	} {
		wantP, wantAS, wantOK := idx.CoveringPrefix(pfx)
		if gotP, gotAS, gotOK := cur.CoveringPrefix(pfx); gotP != wantP || gotAS != wantAS || gotOK != wantOK {
			t.Fatalf("Cursor.CoveringPrefix(%v) = %v,%v,%v; Index = %v,%v,%v", pfx, gotP, gotAS, gotOK, wantP, wantAS, wantOK)
		}
	}
}

func TestReaderCoveringPrefixMatchesTable(t *testing.T) {
	tbl := indexFixture()
	r := tbl.Snapshot()
	idx := r.Index()
	for _, pfx := range []string{"10.0.5.0/24", "23.32.1.0/24", "9.9.9.0/24", "2600:9000::/64", "4000::/64"} {
		p := netip.MustParsePrefix(pfx)
		wantP, wantAS, wantOK := tbl.CoveringPrefix(p)
		if gotP, gotAS, gotOK := r.CoveringPrefix(p); gotP != wantP || gotAS != wantAS || gotOK != wantOK {
			t.Fatalf("Reader.CoveringPrefix(%v) = %v,%v,%v; table = %v,%v,%v", p, gotP, gotAS, gotOK, wantP, wantAS, wantOK)
		}
		if gotP, gotAS, gotOK := idx.CoveringPrefix(p); gotP != wantP || gotAS != wantAS || gotOK != wantOK {
			t.Fatalf("Index.CoveringPrefix(%v) = %v,%v,%v; table = %v,%v,%v", p, gotP, gotAS, gotOK, wantP, wantAS, wantOK)
		}
	}
}
