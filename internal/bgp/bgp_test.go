package bgp

import (
	"net/netip"
	"sync"
	"testing"
)

func TestASNString(t *testing.T) {
	if ASN(714).String() != "AS714" {
		t.Fatalf("ASN.String = %s", ASN(714).String())
	}
}

func TestAnnounceAndOrigin(t *testing.T) {
	tbl := NewTable()
	tbl.Announce(netip.MustParsePrefix("17.0.0.0/8"), 714)
	tbl.Announce(netip.MustParsePrefix("23.32.0.0/11"), 36183)

	as, ok := tbl.Origin(netip.MustParseAddr("17.248.1.1"))
	if !ok || as != 714 {
		t.Fatalf("Origin = %v,%v want AS714", as, ok)
	}
	if _, ok := tbl.Origin(netip.MustParseAddr("9.9.9.9")); ok {
		t.Fatal("unrouted address attributed")
	}
}

func TestLongestMatchWins(t *testing.T) {
	tbl := NewTable()
	tbl.Announce(netip.MustParsePrefix("23.0.0.0/8"), 20940)
	tbl.Announce(netip.MustParsePrefix("23.32.0.0/11"), 36183)
	as, _ := tbl.Origin(netip.MustParseAddr("23.32.5.5"))
	if as != 36183 {
		t.Fatalf("more-specific lost: %v", as)
	}
	as, _ = tbl.Origin(netip.MustParseAddr("23.200.0.1"))
	if as != 20940 {
		t.Fatalf("covering prefix lost: %v", as)
	}
}

func TestReannounceMovesPrefix(t *testing.T) {
	tbl := NewTable()
	p := netip.MustParsePrefix("198.51.100.0/24")
	tbl.Announce(p, 100)
	tbl.Announce(p, 200)
	if as, _ := tbl.Origin(netip.MustParseAddr("198.51.100.1")); as != 200 {
		t.Fatalf("origin after re-announce = %v", as)
	}
	if got := tbl.PrefixesOf(100); len(got) != 0 {
		t.Fatalf("old AS still lists prefix: %v", got)
	}
	if got := tbl.PrefixesOf(200); len(got) != 1 || got[0] != p {
		t.Fatalf("new AS list: %v", got)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tbl.Len())
	}
}

func TestInvalidPrefixIgnored(t *testing.T) {
	tbl := NewTable()
	tbl.Announce(netip.Prefix{}, 1)
	if tbl.Len() != 0 {
		t.Fatal("invalid prefix was stored")
	}
}

func TestPrefixCountsAndWalk(t *testing.T) {
	tbl := NewTable()
	tbl.Announce(netip.MustParsePrefix("10.0.0.0/8"), 1)
	tbl.Announce(netip.MustParsePrefix("2001:db8::/32"), 1)
	tbl.Announce(netip.MustParsePrefix("192.0.2.0/24"), 2)
	v4, v6 := tbl.PrefixCounts()
	if v4 != 2 || v6 != 1 {
		t.Fatalf("counts = %d/%d", v4, v6)
	}
	n := 0
	tbl.Walk(func(a Announcement) bool { n++; return true })
	if n != 3 {
		t.Fatalf("Walk visited %d", n)
	}
}

func TestIsRoutedForScanner(t *testing.T) {
	tbl := NewTable()
	tbl.Announce(netip.MustParsePrefix("203.0.113.0/24"), 64500)
	if !tbl.IsRouted(netip.MustParseAddr("203.0.113.200")) {
		t.Fatal("routed address reported unrouted")
	}
	if tbl.IsRouted(netip.MustParseAddr("203.0.114.1")) {
		t.Fatal("unrouted address reported routed")
	}
}

func TestCoveringPrefix(t *testing.T) {
	tbl := NewTable()
	bgpPfx := netip.MustParsePrefix("172.224.0.0/12")
	tbl.Announce(bgpPfx, 36183)
	got, as, ok := tbl.CoveringPrefix(netip.MustParsePrefix("172.224.5.0/24"))
	if !ok || got != bgpPfx || as != 36183 {
		t.Fatalf("CoveringPrefix = %v,%v,%v", got, as, ok)
	}
}

func TestConcurrentLookups(t *testing.T) {
	tbl := NewTable()
	for i := 0; i < 64; i++ {
		tbl.Announce(netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(i), 0, 0, 0}), 8), ASN(i))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				addr := netip.AddrFrom4([4]byte{byte(i % 64), 1, 2, 3})
				if as, ok := tbl.Origin(addr); !ok || as != ASN(i%64) {
					t.Errorf("goroutine %d: Origin(%v) = %v,%v", g, addr, as, ok)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestReaderSnapshot checks the lock-free read view: lookups agree with
// the table, later announcements stay invisible to an existing snapshot,
// and a nil Reader reports "not found" instead of panicking.
func TestReaderSnapshot(t *testing.T) {
	tbl := NewTable()
	tbl.Announce(netip.MustParsePrefix("17.0.0.0/8"), 714)
	r := tbl.Snapshot()

	if as, ok := r.Origin(netip.MustParseAddr("17.248.1.1")); !ok || as != 714 {
		t.Fatalf("Reader.Origin = %v,%v want AS714", as, ok)
	}
	if p, as, ok := r.Route(netip.MustParseAddr("17.248.1.1")); !ok || as != 714 || p != netip.MustParsePrefix("17.0.0.0/8") {
		t.Fatalf("Reader.Route = %v,%v,%v", p, as, ok)
	}

	tbl.Announce(netip.MustParsePrefix("23.32.0.0/11"), 36183)
	if _, ok := r.Origin(netip.MustParseAddr("23.32.0.1")); ok {
		t.Fatal("snapshot sees announcement made after Snapshot()")
	}
	if as, ok := tbl.Origin(netip.MustParseAddr("23.32.0.1")); !ok || as != 36183 {
		t.Fatalf("table lost new announcement: %v,%v", as, ok)
	}

	var nilReader *Reader
	if _, ok := nilReader.Origin(netip.MustParseAddr("17.0.0.1")); ok {
		t.Fatal("nil Reader found a route")
	}
	if _, _, ok := nilReader.Route(netip.MustParseAddr("17.0.0.1")); ok {
		t.Fatal("nil Reader found a route")
	}
}

func TestMonthOrdering(t *testing.T) {
	a := Month{2021, 6}
	b := Month{2021, 7}
	c := Month{2022, 1}
	if !a.Before(b) || !b.Before(c) || c.Before(a) {
		t.Fatal("Month.Before broken")
	}
	if a.Next() != b {
		t.Fatalf("Next = %v", a.Next())
	}
	if (Month{2021, 12}).Next() != (Month{2022, 1}) {
		t.Fatal("December rollover broken")
	}
	if a.String() != "2021-06" {
		t.Fatalf("String = %s", a.String())
	}
}

func TestHistoryFirstSeen(t *testing.T) {
	h := NewHistory()
	// AS36183 appears in June 2021 — the paper's dating of the PR AS.
	for m := (Month{2016, 1}); m.Before(Month{2022, 7}); m = m.Next() {
		h.Record(m, 714) // Apple always visible
		if !m.Before(Month{2021, 6}) {
			h.Record(m, 36183)
		}
	}
	first, ok := h.FirstSeen(36183)
	if !ok || first != (Month{2021, 6}) {
		t.Fatalf("FirstSeen(36183) = %v,%v want 2021-06", first, ok)
	}
	first, _ = h.FirstSeen(714)
	if first != (Month{2016, 1}) {
		t.Fatalf("FirstSeen(714) = %v", first)
	}
	if _, ok := h.FirstSeen(99999); ok {
		t.Fatal("unknown AS has FirstSeen")
	}
	if !h.Visible(Month{2021, 6}, 36183) || h.Visible(Month{2021, 5}, 36183) {
		t.Fatal("Visible boundary wrong")
	}
	months := h.Months()
	if len(months) == 0 || months[0] != (Month{2016, 1}) {
		t.Fatalf("Months[0] = %v", months)
	}
}
