// Package vclock is the leaf time abstraction shared by every layer
// that must be drivable in virtual time: the fault plane, the scan
// orchestrator, the authoritative rate limiter and the MASQUE ingress.
// It sits below internal/faults (which re-exports these types as
// faults.Clock et al. for its callers) precisely so packages that
// faults itself depends on — dnsserver, masque — can accept an
// injectable clock without an import cycle.
//
// Production code runs on the wall clock; tests run on a virtual clock
// so backoff sleeps, circuit-breaker cooldowns, rate-limit refills and
// injected latency cost no wall time and chaos runs stay fast and
// deterministic.
package vclock

import (
	"context"
	"sync/atomic"
	"time"
)

// Clock abstracts time for the fault plane and every resilient
// orchestrator built on it.
type Clock interface {
	// Now returns the clock's current time.
	Now() time.Time
	// Sleep pauses for d or until ctx is done, returning ctx.Err() in
	// the latter case.
	Sleep(ctx context.Context, d time.Duration) error
}

// WallClock is the real time.Now/time.Sleep clock.
type WallClock struct{}

// Now implements Clock.
func (WallClock) Now() time.Time { return time.Now() } //lint:allow determinism — WallClock is the one sanctioned wall-time source

// Sleep implements Clock; it is context-aware.
func (WallClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// VirtualClock advances only when slept on: Sleep(d) atomically adds d
// to the clock and returns immediately. Concurrent sleepers interleave
// arbitrarily — the clock models elapsed effort, not a schedule — which
// is exactly enough for backoff and cooldown logic to make progress
// without wall delays.
type VirtualClock struct {
	base time.Time
	ns   atomic.Int64
}

// NewVirtualClock starts a virtual clock at an arbitrary fixed epoch.
func NewVirtualClock() *VirtualClock {
	return &VirtualClock{base: time.Unix(1_650_000_000, 0)} // fixed epoch: runs are reproducible
}

// Now implements Clock.
func (c *VirtualClock) Now() time.Time {
	return c.base.Add(time.Duration(c.ns.Load()))
}

// Sleep implements Clock: it advances the clock by d without blocking.
func (c *VirtualClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d > 0 {
		c.ns.Add(int64(d))
	}
	return nil
}

// Elapsed reports how much virtual time has been slept away.
func (c *VirtualClock) Elapsed() time.Duration {
	return time.Duration(c.ns.Load())
}
