// Package epochmap provides an epoch-published immutable map for
// read-mostly memoization on hot concurrent paths.
//
// Readers load the current epoch — a plain Go map that is never written
// again once published — through an atomic.Pointer and look keys up with
// zero locks and zero allocations, exactly like the copy-on-write scope
// trie in internal/core. Writers serialize on a small mutex and batch
// new entries into a private dirty map; when enough entries accumulate
// (or a key proves hot, see Put) the writer builds the successor epoch
// as a fresh map holding old ∪ dirty and publishes it with a single
// pointer store. Concurrent readers therefore always observe either the
// old or the new epoch in full, never a torn map.
//
// The map is append-only between resets: entries are deterministic
// memoizations, so the first value stored for a key is canonical and
// every later Put of the same key returns it (first-writer-wins, like
// the sharded caches this package replaces). When the map outgrows its
// cap the next publication drops the old epoch wholesale — eviction
// costs a rebuild, never a wrong answer.
package epochmap

import (
	"sync"
	"sync/atomic"
)

// DefaultMaxEntries bounds a map when MaxEntries is left zero. It
// mirrors the total capacity of the 64-shard × 8192-entry RWMutex
// caches this package replaced.
const DefaultMaxEntries = 1 << 19

// publishFloor is the minimum dirty-batch size that triggers a
// publication; below it, publication happens only via promotion.
const publishFloor = 64

// Map is an epoch-published memoization map. The zero value is ready to
// use. A Map must not be copied after first use.
type Map[K comparable, V any] struct {
	// snap is the current published epoch. The pointed-to map is
	// immutable: it is fully built before the pointer store and never
	// written afterwards.
	snap atomic.Pointer[map[K]V]

	mu    sync.Mutex
	dirty map[K]V // pending entries, not yet visible to readers

	// MaxEntries caps published+pending entries (0 = DefaultMaxEntries).
	// Set it before concurrent use, if at all.
	MaxEntries int
}

// Get returns the value published for k. It takes no locks and performs
// no allocations: one atomic pointer load and one map lookup.
func (m *Map[K, V]) Get(k K) (V, bool) {
	if s := m.snap.Load(); s != nil {
		v, ok := (*s)[k]
		return v, ok
	}
	var zero V
	return zero, false
}

// Put stores v for k and returns the canonical value: the first writer
// wins, so every caller shares one value per key. New entries land in
// the writer-private dirty batch first and become visible to Get at the
// next publication. Two situations publish immediately: the dirty batch
// reaching its size threshold, and a repeat Put of a still-unpublished
// key — the repeat proves readers keep missing that key, so waiting for
// the batch to fill would make them rebuild it indefinitely.
func (m *Map[K, V]) Put(k K, v V) V {
	m.mu.Lock()
	defer m.mu.Unlock()

	snap := m.snap.Load()
	var published int
	if snap != nil {
		if have, ok := (*snap)[k]; ok {
			return have
		}
		published = len(*snap)
	}
	if have, ok := m.dirty[k]; ok {
		// A reader missed this key after another writer stored it:
		// promote the batch to a published epoch so the misses stop.
		m.publishLocked(snap)
		return have
	}
	if m.dirty == nil {
		m.dirty = make(map[K]V, publishFloor)
	}
	m.dirty[k] = v

	max := m.MaxEntries
	if max <= 0 {
		max = DefaultMaxEntries
	}
	switch {
	case published+len(m.dirty) > max:
		// Over cap: the next epoch is the dirty batch alone and the old
		// epoch is dropped wholesale (entries are deterministic — the
		// rebuild is the only cost).
		m.publishLocked(nil)
	case len(m.dirty) >= m.threshold(published):
		m.publishLocked(snap)
	}
	return v
}

// threshold is the dirty-batch size that triggers publication: doubling
// against the published epoch, floored so tiny maps still batch a
// useful amount of work per epoch. Doubling keeps the total entries
// copied across all publications at ~2× the final size; keys that miss
// while waiting in a large dirty batch publish early via promotion.
func (m *Map[K, V]) threshold(published int) int {
	if published > publishFloor {
		return published
	}
	return publishFloor
}

// publishLocked builds and publishes base ∪ dirty. Callers hold mu.
func (m *Map[K, V]) publishLocked(base *map[K]V) {
	var n int
	if base != nil {
		n = len(*base)
	}
	next := make(map[K]V, n+len(m.dirty))
	if base != nil {
		for k, v := range *base {
			next[k] = v
		}
	}
	for k, v := range m.dirty {
		next[k] = v
	}
	m.snap.Store(&next)
	m.dirty = nil
}

// Len reports published plus pending entries (writer-accurate; readers
// of a concurrent Map should treat it as advisory).
func (m *Map[K, V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := len(m.dirty)
	if s := m.snap.Load(); s != nil {
		n += len(*s)
	}
	return n
}
