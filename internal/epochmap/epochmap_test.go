package epochmap

import (
	"sync"
	"testing"
)

// TestFirstWriterWins pins the memoization contract: the first value
// stored for a key is canonical and later Puts return it unchanged.
func TestFirstWriterWins(t *testing.T) {
	var m Map[int, string]
	if got := m.Put(1, "a"); got != "a" {
		t.Fatalf("first Put returned %q, want a", got)
	}
	if got := m.Put(1, "b"); got != "a" {
		t.Fatalf("second Put returned %q, want canonical a", got)
	}
	// Force publication, then try to overwrite the published entry.
	for i := 0; i < publishFloor; i++ {
		m.Put(100+i, "x")
	}
	if _, ok := m.Get(1); !ok {
		t.Fatal("entry 1 not published after batch fill")
	}
	if got := m.Put(1, "c"); got != "a" {
		t.Fatalf("post-publish Put returned %q, want canonical a", got)
	}
}

// TestPromotionPublishesRepeatedMiss verifies that a repeat Put of a
// still-unpublished key promotes the dirty batch immediately, so a key
// readers keep missing becomes visible without waiting for the batch to
// fill.
func TestPromotionPublishesRepeatedMiss(t *testing.T) {
	var m Map[int, int]
	m.Put(7, 70)
	if _, ok := m.Get(7); ok {
		t.Fatal("entry visible before publication")
	}
	if got := m.Put(7, 71); got != 70 {
		t.Fatalf("repeat Put returned %d, want 70", got)
	}
	if v, ok := m.Get(7); !ok || v != 70 {
		t.Fatalf("Get after promotion = %d,%v; want 70,true", v, ok)
	}
}

// TestCapResetDropsOldEpoch verifies the wholesale reset: once the map
// exceeds MaxEntries the old epoch is dropped and only the fresh batch
// survives.
func TestCapResetDropsOldEpoch(t *testing.T) {
	m := Map[int, int]{MaxEntries: 2 * publishFloor}
	for i := 0; i < 3*publishFloor; i++ {
		m.Put(i, i)
	}
	if n := m.Len(); n > 2*publishFloor {
		t.Fatalf("Len = %d after reset, want <= %d", n, 2*publishFloor)
	}
	// Early keys were dropped by the reset; re-putting them must work.
	if got := m.Put(0, 42); got != 42 {
		t.Fatalf("re-Put after reset returned %d, want 42", got)
	}
}

// TestEpochNeverTorn is the ISSUE-required torn-map test: concurrent
// readers racing a stream of publications must observe every published
// epoch as internally consistent — each key either absent or carrying
// its canonical value, with values from the same generation. Runs under
// -race to catch any unsynchronized map access.
func TestEpochNeverTorn(t *testing.T) {
	var m Map[int, int]
	const (
		keys    = 4096
		readers = 8
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := (i * 31) % keys
				if v, ok := m.Get(k); ok && v != k*3 {
					t.Errorf("reader %d: Get(%d) = %d, want %d (torn or corrupted epoch)", r, k, v, k*3)
					return
				}
			}
		}(r)
	}
	// Two writers race over the same key range; first-writer-wins keeps
	// values canonical regardless of interleaving.
	var ww sync.WaitGroup
	for w := 0; w < 2; w++ {
		ww.Add(1)
		go func() {
			defer ww.Done()
			for k := 0; k < keys; k++ {
				if got := m.Put(k, k*3); got != k*3 {
					t.Errorf("Put(%d) returned %d, want %d", k, got, k*3)
				}
			}
		}()
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	for k := 0; k < keys; k++ {
		if v, ok := m.Get(k); !ok || v != k*3 {
			t.Fatalf("final Get(%d) = %d,%v; want %d,true", k, v, ok, k*3)
		}
	}
}
