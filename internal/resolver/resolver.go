// Package resolver implements the recursive-resolver layer between
// clients (or RIPE Atlas probes) and the authoritative servers: caching,
// ECS forwarding, configurable blocking policies covering every failure
// mode the paper's blocking study observed (§4.1), and unbound-style
// local-zone overrides used to force the relay client onto a chosen
// ingress address (§3, "fixed DNS scan").
package resolver

import (
	"context"
	"net/netip"
	"strings"
	"sync"
	"time"

	"github.com/relay-networks/privaterelay/internal/dnsserver"
	"github.com/relay-networks/privaterelay/internal/dnswire"
	"github.com/relay-networks/privaterelay/internal/iputil"
)

// Policy describes how a resolver treats queries for a blocked domain.
type Policy int

// Blocking behaviours observed across Atlas probes (§4.1): 72 % NXDOMAIN,
// 13 % NOERROR with no data, 5 % REFUSED, the rest SERVFAIL or FORMERR,
// plus outright timeouts and one DNS hijack.
const (
	PolicyNone     Policy = iota // resolve normally
	PolicyNXDomain               // answer NXDOMAIN
	PolicyNoData                 // answer NOERROR with an empty answer section
	PolicyRefused                // answer REFUSED
	PolicyServFail               // answer SERVFAIL
	PolicyFormErr                // answer FORMERR
	PolicyTimeout                // drop the query
	PolicyHijack                 // answer with a substitute address
)

// String names the policy after its response code.
func (p Policy) String() string {
	switch p {
	case PolicyNone:
		return "none"
	case PolicyNXDomain:
		return "NXDOMAIN"
	case PolicyNoData:
		return "NOERROR"
	case PolicyRefused:
		return "REFUSED"
	case PolicyServFail:
		return "SERVFAIL"
	case PolicyFormErr:
		return "FORMERR"
	case PolicyTimeout:
		return "timeout"
	default:
		return "hijack"
	}
}

// HijackAddr is the substitute address returned under PolicyHijack,
// mimicking the nextdns.io interception the paper stumbled on.
var HijackAddr = netip.MustParseAddr("198.18.0.99")

// cacheEntry is one cached response.
type cacheEntry struct {
	msg    *dnswire.Message
	expiry time.Time
}

// inflight is one in-progress upstream exchange. The leader fills msg/err
// before closing done; waiters block on done and read the shared result.
type inflight struct {
	done chan struct{}
	msg  *dnswire.Message
	err  error
}

// Resolver is a caching forwarder with policy and override hooks.
// It is safe for concurrent use.
type Resolver struct {
	// Addr is the resolver's own address — what whoami-style services see.
	Addr netip.Addr
	// Upstream answers cache misses.
	Upstream dnsserver.Exchanger
	// ForwardECS controls whether the client's /24 is attached upstream.
	// Public resolvers do this; many ISP resolvers do not.
	ForwardECS bool
	// BlockedSuffixes maps canonical domain suffixes to policies.
	// The longest matching suffix wins.
	BlockedSuffixes map[string]Policy
	// Clock is injectable for cache-expiry tests; nil means time.Now.
	Clock func() time.Time

	mu      sync.Mutex
	cache   map[string]cacheEntry
	local   map[string][]dnswire.Record
	flights map[string]*inflight

	// Stats.
	CacheHits   int64
	CacheMisses int64
}

// New returns a resolver forwarding to upstream, identified by addr.
func New(addr netip.Addr, upstream dnsserver.Exchanger) *Resolver {
	return &Resolver{
		Addr:            addr,
		Upstream:        upstream,
		ForwardECS:      true,
		BlockedSuffixes: map[string]Policy{},
		cache:           make(map[string]cacheEntry),
		local:           make(map[string][]dnswire.Record),
	}
}

// AddLocalZone installs an unbound-style local-data override: queries for
// name (canonicalized) of the records' types are answered directly from
// these records, bypassing upstream — the mechanism behind the paper's
// forced-ingress experiments.
func (r *Resolver) AddLocalZone(name string, records []dnswire.Record) {
	name = dnswire.CanonicalName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.local[name] = append(r.local[name], records...)
}

// ClearLocalZone removes overrides for name.
func (r *Resolver) ClearLocalZone(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.local, dnswire.CanonicalName(name))
}

// Block installs a blocking policy for a domain suffix (e.g.
// "icloud.com." blocks mask.icloud.com and mask-h2.icloud.com).
func (r *Resolver) Block(suffix string, p Policy) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.BlockedSuffixes[dnswire.CanonicalName(suffix)] = p
}

// policyFor returns the effective policy for a canonical name.
func (r *Resolver) policyFor(name string) Policy {
	r.mu.Lock()
	defer r.mu.Unlock()
	best := PolicyNone
	bestLen := -1
	for suffix, p := range r.BlockedSuffixes {
		if (name == suffix || strings.HasSuffix(name, "."+suffix) || suffix == ".") && len(suffix) > bestLen {
			best = p
			bestLen = len(suffix)
		}
	}
	return best
}

// Lookup resolves one question on behalf of clientAddr. It returns
// dnsserver.ErrTimeout under PolicyTimeout or upstream loss.
func (r *Resolver) Lookup(ctx context.Context, name string, qtype dnswire.Type, clientAddr netip.Addr) (*dnswire.Message, error) {
	name = dnswire.CanonicalName(name)

	// Local zone overrides take absolute precedence (unbound local-data).
	r.mu.Lock()
	localRecs := r.local[name]
	r.mu.Unlock()
	if len(localRecs) > 0 {
		var matched []dnswire.Record
		for _, rec := range localRecs {
			if rec.Type == qtype {
				matched = append(matched, rec)
			}
		}
		return r.synthesize(name, qtype, dnswire.RCodeNoError, matched), nil
	}

	switch r.policyFor(name) {
	case PolicyNXDomain:
		return r.synthesize(name, qtype, dnswire.RCodeNXDomain, nil), nil
	case PolicyNoData:
		return r.synthesize(name, qtype, dnswire.RCodeNoError, nil), nil
	case PolicyRefused:
		return r.synthesize(name, qtype, dnswire.RCodeRefused, nil), nil
	case PolicyServFail:
		return r.synthesize(name, qtype, dnswire.RCodeServFail, nil), nil
	case PolicyFormErr:
		return r.synthesize(name, qtype, dnswire.RCodeFormErr, nil), nil
	case PolicyTimeout:
		return nil, dnsserver.ErrTimeout
	case PolicyHijack:
		rec := dnswire.Record{Name: name, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 60, A: HijackAddr}
		if qtype != dnswire.TypeA {
			return r.synthesize(name, qtype, dnswire.RCodeNoError, nil), nil
		}
		return r.synthesize(name, qtype, dnswire.RCodeNoError, []dnswire.Record{rec}), nil
	default:
		// PolicyNone: resolve normally below.
	}

	key := cacheKey(name, qtype, clientAddr, r.ForwardECS)
	msg, fl, leader := r.beginFlight(key)
	if msg != nil {
		return msg, nil
	}
	if !leader {
		<-fl.done
		if fl.err != nil {
			return nil, fl.err
		}
		return fl.msg, nil
	}

	q := dnswire.NewQuery(queryID(key), name, qtype)
	if r.ForwardECS {
		ca := iputil.Canonical(clientAddr)
		if ca.Is4() {
			q.WithECS(iputil.Slash24(ca))
		}
	}
	resp, err := r.Upstream.Exchange(ctx, q)
	if err != nil {
		r.endFlight(key, fl, nil, err)
		return nil, err
	}
	r.cachePut(key, resp)
	r.endFlight(key, fl, resp, nil)
	return resp, nil
}

// beginFlight answers from cache, joins an in-progress upstream exchange
// for the same key (per-key singleflight: concurrent probes behind one
// public resolver must not stampede the upstream), or claims leadership
// of a new exchange. Exactly one of three outcomes: msg != nil is a cache
// hit; leader true means the caller must exchange and call endFlight;
// leader false with msg nil means the caller waits on fl.done. Waiters
// count as cache hits — they are served from the answer the leader
// caches — so serial and concurrent runs report identical hit/miss totals.
func (r *Resolver) beginFlight(key string) (*dnswire.Message, *inflight, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.cache[key]; ok {
		if !r.now().After(e.expiry) {
			r.CacheHits++
			return e.msg, nil, false
		}
		delete(r.cache, key)
	}
	if fl, ok := r.flights[key]; ok {
		r.CacheHits++
		return nil, fl, false
	}
	if r.flights == nil {
		r.flights = make(map[string]*inflight)
	}
	fl := &inflight{done: make(chan struct{})}
	r.flights[key] = fl
	r.CacheMisses++
	return nil, fl, true
}

// endFlight publishes the leader's result and releases waiters.
func (r *Resolver) endFlight(key string, fl *inflight, msg *dnswire.Message, err error) {
	fl.msg, fl.err = msg, err
	r.mu.Lock()
	delete(r.flights, key)
	r.mu.Unlock()
	close(fl.done)
}

// FlushCache drops every cached response (in-flight exchanges are left
// alone). Campaign benchmarks use it to re-measure cold-cache runs.
func (r *Resolver) FlushCache() {
	r.mu.Lock()
	defer r.mu.Unlock()
	clear(r.cache)
}

// ResolveA returns just the A addresses for name (empty on NOERROR/no-data).
func (r *Resolver) ResolveA(ctx context.Context, name string, clientAddr netip.Addr) ([]netip.Addr, dnswire.RCode, error) {
	resp, err := r.Lookup(ctx, name, dnswire.TypeA, clientAddr)
	if err != nil {
		return nil, 0, err
	}
	var out []netip.Addr
	for _, rec := range resp.Answers {
		if rec.Type == dnswire.TypeA {
			out = append(out, rec.A)
		}
	}
	return out, resp.Header.RCode, nil
}

// ResolveAAAA returns the AAAA addresses for name.
func (r *Resolver) ResolveAAAA(ctx context.Context, name string, clientAddr netip.Addr) ([]netip.Addr, dnswire.RCode, error) {
	resp, err := r.Lookup(ctx, name, dnswire.TypeAAAA, clientAddr)
	if err != nil {
		return nil, 0, err
	}
	var out []netip.Addr
	for _, rec := range resp.Answers {
		if rec.Type == dnswire.TypeAAAA {
			out = append(out, rec.AAAA)
		}
	}
	return out, resp.Header.RCode, nil
}

func (r *Resolver) now() time.Time {
	if r.Clock != nil {
		return r.Clock()
	}
	return time.Now()
}

func (r *Resolver) cachePut(key string, msg *dnswire.Message) {
	ttl := uint32(60)
	for _, rec := range msg.Answers {
		if rec.TTL < ttl {
			ttl = rec.TTL
		}
	}
	if len(msg.Answers) == 0 {
		ttl = 30 // negative-ish caching
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cache[key] = cacheEntry{msg: msg, expiry: r.now().Add(time.Duration(ttl) * time.Second)}
}

// synthesize builds a locally generated response.
func (r *Resolver) synthesize(name string, qtype dnswire.Type, rc dnswire.RCode, answers []dnswire.Record) *dnswire.Message {
	return &dnswire.Message{
		Header: dnswire.Header{
			Response:           true,
			RecursionDesired:   true,
			RecursionAvailable: true,
			RCode:              rc,
		},
		Questions: []dnswire.Question{{Name: name, Type: qtype, Class: dnswire.ClassIN}},
		Answers:   answers,
	}
}

// cacheKey scopes cached answers per client /24 when ECS forwarding is on
// (RFC 7871 requires ECS-aware caches to do this).
func cacheKey(name string, qtype dnswire.Type, clientAddr netip.Addr, ecs bool) string {
	if !ecs {
		return name + "|" + qtype.String()
	}
	ca := iputil.Canonical(clientAddr)
	scope := ""
	if ca.Is4() {
		scope = iputil.Slash24(ca).String()
	} else if ca.IsValid() {
		scope = iputil.Slash64(ca).String()
	}
	return name + "|" + qtype.String() + "|" + scope
}

// queryID derives a deterministic query ID from the cache key.
func queryID(key string) uint16 {
	return uint16(iputil.HashString(key))
}

// PublicResolver describes one of the big anycast open resolvers that
// serve the majority of RIPE Atlas probes (§4.1).
type PublicResolver struct {
	Name string
	V4   netip.Addr
	V6   netip.Addr
}

// PublicResolvers is the catalog the paper identifies via
// whoami.akamai.net: Google, Cloudflare, Quad9 and OpenDNS together
// serve more than half of all probes.
var PublicResolvers = []PublicResolver{
	{Name: "GooglePublicDNS", V4: netip.MustParseAddr("8.8.8.8"), V6: netip.MustParseAddr("2001:4860:4860::8888")},
	{Name: "Cloudflare1111", V4: netip.MustParseAddr("1.1.1.1"), V6: netip.MustParseAddr("2606:4700:4700::1111")},
	{Name: "Quad9", V4: netip.MustParseAddr("9.9.9.9"), V6: netip.MustParseAddr("2620:fe::fe")},
	{Name: "OpenDNS", V4: netip.MustParseAddr("208.67.222.222"), V6: netip.MustParseAddr("2620:119:35::35")},
}
