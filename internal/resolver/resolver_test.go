package resolver

import (
	"context"
	"errors"
	"net/netip"
	"sync"
	"testing"
	"time"

	"github.com/relay-networks/privaterelay/internal/dnsserver"
	"github.com/relay-networks/privaterelay/internal/dnswire"
	"github.com/relay-networks/privaterelay/internal/iputil"
	"github.com/relay-networks/privaterelay/internal/netsim"
)

func testResolver(t testing.TB) (*netsim.World, *Resolver, netip.Addr) {
	t.Helper()
	w := netsim.NewWorld(netsim.Params{Seed: 5, Scale: 0.0005})
	srv := dnsserver.NewAuthServer(w, netsim.MonthApr, nil)
	upstream := &dnsserver.MemTransport{Handler: srv, Source: netip.MustParseAddr("8.8.8.8")}
	r := New(netip.MustParseAddr("8.8.8.8"), upstream)
	client := iputil.NthSubnet(w.ClientASes[0].Prefixes[0], 24, 0).Addr().Next()
	return w, r, client
}

func TestResolveAForwardsECS(t *testing.T) {
	w, r, client := testResolver(t)
	addrs, rc, err := r.ResolveA(context.Background(), dnsserver.MaskDomain, client)
	if err != nil || rc != dnswire.RCodeNoError {
		t.Fatalf("ResolveA: %v rc=%v", err, rc)
	}
	want := w.IngressAnswer(iputil.Slash24(client), netsim.MonthApr, netsim.ProtoDefault)
	if len(addrs) != len(want) {
		t.Fatalf("addrs = %d, want %d", len(addrs), len(want))
	}
	for i := range want {
		if addrs[i] != want[i] {
			t.Fatal("resolved addresses should reflect client ECS subnet")
		}
	}
}

func TestResolveWithoutECSUsesResolverAddr(t *testing.T) {
	_, r, client := testResolver(t)
	r.ForwardECS = false
	addrs, rc, err := r.ResolveA(context.Background(), dnsserver.MaskDomain, client)
	if err != nil || rc != dnswire.RCodeNoError {
		t.Fatalf("ResolveA: %v rc=%v", err, rc)
	}
	// Resolver's own source (8.8.8.8) isn't in a client AS → the
	// authoritative falls back to answering for the resolver's /24,
	// which is unrouted → empty but NOERROR.
	_ = addrs
}

func TestResolveAAAA(t *testing.T) {
	_, r, client := testResolver(t)
	addrs, rc, err := r.ResolveAAAA(context.Background(), dnsserver.MaskDomain, client)
	if err != nil || rc != dnswire.RCodeNoError {
		t.Fatalf("ResolveAAAA: %v rc=%v", err, rc)
	}
	if len(addrs) == 0 {
		t.Fatal("no AAAA records")
	}
	for _, a := range addrs {
		if !a.Is6() {
			t.Fatalf("non-v6 AAAA %v", a)
		}
	}
}

func TestCaching(t *testing.T) {
	_, r, client := testResolver(t)
	ctx := context.Background()
	if _, _, err := r.ResolveA(ctx, dnsserver.MaskDomain, client); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.ResolveA(ctx, dnsserver.MaskDomain, client); err != nil {
		t.Fatal(err)
	}
	if r.CacheHits != 1 || r.CacheMisses != 1 {
		t.Fatalf("cache hits/misses = %d/%d, want 1/1", r.CacheHits, r.CacheMisses)
	}
	// A client in a different /24 must not share the ECS-scoped entry.
	other := client
	for i := 0; i < 256; i++ {
		other = other.Next()
	}
	if _, _, err := r.ResolveA(ctx, dnsserver.MaskDomain, other); err != nil {
		t.Fatal(err)
	}
	if r.CacheMisses != 2 {
		t.Fatalf("expected per-/24 cache scoping, misses = %d", r.CacheMisses)
	}
}

func TestCacheExpiry(t *testing.T) {
	_, r, client := testResolver(t)
	now := time.Unix(1000, 0)
	r.Clock = func() time.Time { return now }
	ctx := context.Background()
	r.ResolveA(ctx, dnsserver.MaskDomain, client)
	now = now.Add(2 * time.Minute) // TTL is 60s
	r.ResolveA(ctx, dnsserver.MaskDomain, client)
	if r.CacheMisses != 2 {
		t.Fatalf("expired entry served from cache (misses=%d)", r.CacheMisses)
	}
}

func TestBlockingPolicies(t *testing.T) {
	cases := []struct {
		policy Policy
		rcode  dnswire.RCode
	}{
		{PolicyNXDomain, dnswire.RCodeNXDomain},
		{PolicyNoData, dnswire.RCodeNoError},
		{PolicyRefused, dnswire.RCodeRefused},
		{PolicyServFail, dnswire.RCodeServFail},
		{PolicyFormErr, dnswire.RCodeFormErr},
	}
	for _, c := range cases {
		_, r, client := testResolver(t)
		r.Block("icloud.com", c.policy)
		addrs, rc, err := r.ResolveA(context.Background(), dnsserver.MaskDomain, client)
		if err != nil {
			t.Fatalf("%v: %v", c.policy, err)
		}
		if rc != c.rcode {
			t.Fatalf("%v: rcode = %v, want %v", c.policy, rc, c.rcode)
		}
		if len(addrs) != 0 {
			t.Fatalf("%v: got answers %v", c.policy, addrs)
		}
	}
}

func TestBlockingTimeout(t *testing.T) {
	_, r, client := testResolver(t)
	r.Block("icloud.com", PolicyTimeout)
	_, _, err := r.ResolveA(context.Background(), dnsserver.MaskDomain, client)
	if !errors.Is(err, dnsserver.ErrTimeout) {
		t.Fatalf("err = %v, want timeout", err)
	}
}

func TestBlockingHijack(t *testing.T) {
	_, r, client := testResolver(t)
	r.Block("icloud.com", PolicyHijack)
	addrs, rc, err := r.ResolveA(context.Background(), dnsserver.MaskDomain, client)
	if err != nil || rc != dnswire.RCodeNoError {
		t.Fatalf("hijack: %v rc=%v", err, rc)
	}
	if len(addrs) != 1 || addrs[0] != HijackAddr {
		t.Fatalf("hijack answer = %v", addrs)
	}
}

func TestBlockingSuffixMatch(t *testing.T) {
	_, r, client := testResolver(t)
	r.Block("icloud.com", PolicyNXDomain)
	// mask.icloud.com is blocked; other domains resolve.
	_, rc, _ := r.ResolveA(context.Background(), "mask.icloud.com", client)
	if rc != dnswire.RCodeNXDomain {
		t.Fatalf("suffix match failed: %v", rc)
	}
	_, rc, err := r.ResolveA(context.Background(), dnsserver.WhoamiDomain, client)
	if err != nil || rc != dnswire.RCodeNoError {
		t.Fatalf("unrelated domain affected: %v %v", rc, err)
	}
	// Longest suffix wins.
	r.Block("mask.icloud.com", PolicyRefused)
	_, rc, _ = r.ResolveA(context.Background(), "mask.icloud.com", client)
	if rc != dnswire.RCodeRefused {
		t.Fatalf("longest-suffix precedence failed: %v", rc)
	}
	// "icloud.com" itself is also blocked (exact match of the suffix).
	_, rc, _ = r.ResolveA(context.Background(), "icloud.com", client)
	if rc != dnswire.RCodeNXDomain {
		t.Fatalf("exact suffix match failed: %v", rc)
	}
}

func TestLocalZoneOverride(t *testing.T) {
	_, r, client := testResolver(t)
	forced := netip.MustParseAddr("172.224.100.1")
	r.AddLocalZone(dnsserver.MaskDomain, []dnswire.Record{{
		Name: dnsserver.MaskDomain, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 60, A: forced,
	}})
	addrs, rc, err := r.ResolveA(context.Background(), dnsserver.MaskDomain, client)
	if err != nil || rc != dnswire.RCodeNoError {
		t.Fatalf("local zone: %v %v", err, rc)
	}
	if len(addrs) != 1 || addrs[0] != forced {
		t.Fatalf("local zone answer = %v, want %v", addrs, forced)
	}
	// AAAA has no local data → empty NOERROR (not upstream).
	v6, rc, err := r.ResolveAAAA(context.Background(), dnsserver.MaskDomain, client)
	if err != nil || rc != dnswire.RCodeNoError || len(v6) != 0 {
		t.Fatalf("local zone AAAA: %v %v %v", v6, rc, err)
	}
	// Override beats blocking.
	r.Block("icloud.com", PolicyNXDomain)
	addrs, _, _ = r.ResolveA(context.Background(), dnsserver.MaskDomain, client)
	if len(addrs) != 1 {
		t.Fatal("local zone should take precedence over blocking")
	}
	// Clearing restores upstream resolution.
	r.ClearLocalZone(dnsserver.MaskDomain)
	r.Block("icloud.com", PolicyNone)
	addrs, _, err = r.ResolveA(context.Background(), dnsserver.MaskDomain, client)
	if err != nil || len(addrs) == 0 || addrs[0] == forced {
		t.Fatalf("after clear: %v %v", addrs, err)
	}
}

func TestPublicResolverCatalog(t *testing.T) {
	if len(PublicResolvers) != 4 {
		t.Fatalf("catalog size = %d", len(PublicResolvers))
	}
	names := map[string]bool{}
	for _, pr := range PublicResolvers {
		names[pr.Name] = true
		if !pr.V4.Is4() || !pr.V6.Is6() {
			t.Fatalf("bad addresses for %s", pr.Name)
		}
	}
	for _, want := range []string{"GooglePublicDNS", "Cloudflare1111", "Quad9", "OpenDNS"} {
		if !names[want] {
			t.Fatalf("missing %s", want)
		}
	}
}

func TestPolicyStrings(t *testing.T) {
	if PolicyNXDomain.String() != "NXDOMAIN" || PolicyTimeout.String() != "timeout" ||
		PolicyHijack.String() != "hijack" || PolicyNone.String() != "none" {
		t.Fatal("policy strings wrong")
	}
}

func TestConcurrentLookups(t *testing.T) {
	_, r, client := testResolver(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				// Mix of cacheable repeats and distinct subnets.
				addr := client
				for k := 0; k < (g+i)%4; k++ {
					for j := 0; j < 256; j++ {
						addr = addr.Next()
					}
				}
				if _, _, err := r.ResolveA(context.Background(), dnsserver.MaskDomain, addr); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if r.CacheHits == 0 {
		t.Fatal("no cache hits under concurrency")
	}
}
