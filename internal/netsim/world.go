package netsim

import (
	"fmt"
	"math"
	"net/netip"
	"sync"

	"github.com/relay-networks/privaterelay/internal/aspop"
	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/epochmap"
	"github.com/relay-networks/privaterelay/internal/iputil"
)

// ClientAS is one client autonomous system in the generated world.
type ClientAS struct {
	ASN      bgp.ASN
	Group    ServeGroup
	Prefixes []netip.Prefix
	// Slash24s caches the number of /24s across Prefixes.
	Slash24s int
}

// World is the generated Internet model. It is immutable after NewWorld
// and safe for concurrent use.
type World struct {
	Params Params

	// Table is the global BGP routing table.
	Table *bgp.Table
	// History is the monthly AS visibility archive (2016-01 .. 2022-06).
	History *bgp.History
	// Pop is the APNIC-style AS population dataset.
	Pop *aspop.Dataset

	// ClientASes lists all generated client networks.
	ClientASes []ClientAS

	// Per-operator service prefixes by role.
	ingressPfx map[serviceKey][]netip.Prefix
	egressPfx  map[serviceKey][]netip.Prefix
	unusedPfx  map[serviceKey][]netip.Prefix

	// Ingress relay address pools (superset of any month's fleet).
	pools map[poolKey][]netip.Addr

	clientIdx map[bgp.ASN]int
	seed      uint64

	// fleetCache memoizes IngressFleet results. Fleets are deterministic
	// per key and requested once per DNS query on the scan hot path, so
	// rebuilding the slice each time dominated server-side allocation.
	fleetCache sync.Map

	// answers memoizes IngressAnswer/IngressAnswerV6 record sets. Answers
	// are deterministic per (answer key, month, proto, family), so the
	// steady-state serving path returns one shared read-only slice per
	// equivalence class instead of re-running pickAnswers per query.
	// Epoch-published: readers never lock.
	answers epochmap.Map[answerCacheKey, []netip.Addr]

	// plans memoizes per-prefix answer plans (serving assignment, answer
	// key, ECS scope) so the steady-state serving path never walks the
	// routing trie. Keyed by the packed exact prefix spelling.
	plans epochmap.Map[uint64, answerPlan]
}

type serviceKey struct {
	as  bgp.ASN
	fam Family
}

type poolKey struct {
	as    bgp.ASN
	proto Proto
	fam   Family
}

// Client ASN number ranges: purely synthetic, chosen outside real
// allocations for clarity in output.
const (
	asnBaseAkamaiOnly = 1_000_000
	asnBaseAppleOnly  = 2_000_000
	asnBaseBoth       = 3_000_000
)

// NewWorld generates a world from params. Generation cost is dominated by
// the client universe: roughly O(Scale · 72k) prefix allocations.
func NewWorld(params Params) *World {
	p := params.withDefaults()
	w := &World{
		Params:     p,
		Table:      bgp.NewTable(),
		History:    bgp.NewHistory(),
		Pop:        aspop.New(),
		ingressPfx: make(map[serviceKey][]netip.Prefix),
		egressPfx:  make(map[serviceKey][]netip.Prefix),
		unusedPfx:  make(map[serviceKey][]netip.Prefix),
		pools:      make(map[poolKey][]netip.Addr),
		clientIdx:  make(map[bgp.ASN]int),
		seed:       p.Seed,
	}
	w.buildServicePrefixes()
	w.buildClientUniverse()
	w.buildPools()
	w.buildHistory()
	return w
}

// scaledCount applies Scale with round-half-up and a floor of 1.
func (w *World) scaledCount(paperCount int) int {
	n := int(math.Round(float64(paperCount) * w.Params.Scale))
	if n < 1 {
		n = 1
	}
	return n
}

// buildClientUniverse allocates client ASes, their prefixes, announcements
// and populations.
func (w *World) buildClientUniverse() {
	alloc := newAllocator(reservedV4())
	type groupSpec struct {
		group   ServeGroup
		asnBase uint32
		count   int
		pop     int64
		expBase int // per-AS /24 count is 2^(expBase + jitter), jitter ∈ {0,1,2}
	}
	specs := []groupSpec{
		{GroupAkamaiOnly, asnBaseAkamaiOnly, w.scaledCount(paperAkamaiOnlyASes), int64(float64(paperAkamaiOnlyPop) * w.Params.Scale), 4},
		{GroupAppleOnly, asnBaseAppleOnly, w.scaledCount(paperAppleOnlyASes), int64(float64(paperAppleOnlyPop) * w.Params.Scale), 2},
		{GroupBoth, asnBaseBoth, w.scaledCount(paperBothASes), int64(float64(paperBothPop) * w.Params.Scale), 8},
	}
	for _, spec := range specs {
		ases := make([]bgp.ASN, 0, spec.count)
		for i := 0; i < spec.count; i++ {
			asn := bgp.ASN(spec.asnBase + uint32(i))
			jitter := int(iputil.Mix(w.seed, uint64(asn)) % 3)
			exp := spec.expBase + jitter // /24 count = 2^exp

			// Like real networks, a share of ASes announce their space as
			// several discontiguous prefixes: ~25 % split in two, ~8 % in
			// four (power-of-two pieces keep per-prefix sizes aligned).
			splits := 1
			sh := iputil.Mix(w.seed^0x59117, uint64(asn)) % 100
			switch {
			case exp >= 4 && sh < 8:
				splits = 4
			case exp >= 2 && sh < 25:
				splits = 2
			}
			perExp := exp
			for s := splits; s > 1; s /= 2 {
				perExp--
			}

			prefixes := make([]netip.Prefix, 0, splits)
			for s := 0; s < splits; s++ {
				pfx := alloc.alloc(24 - perExp)
				w.Table.Announce(pfx, asn)
				prefixes = append(prefixes, pfx)
			}
			w.clientIdx[asn] = len(w.ClientASes)
			w.ClientASes = append(w.ClientASes, ClientAS{
				ASN:      asn,
				Group:    spec.group,
				Prefixes: prefixes,
				Slash24s: 1 << exp,
			})
			ases = append(ases, asn)
		}
		w.Pop.AssignZipf(ases, spec.pop, fmt.Sprintf("pop:%d:%d", w.seed, spec.group))
	}
}

// Service block layout. AkamaiPR's prefix counts reproduce §6 of the
// paper: 478 IPv4 + 1335 IPv6 announced prefixes; 301 (v4) + 1172 (v6)
// host egress subnets, 100 (v4) + 101 (v6) host ingress relays, and the
// rest are unused, giving 1673/1813 = 92.3 % prefix utilization.
const (
	akamaiPRv4Total   = 478
	akamaiPRv4Egress  = 301
	akamaiPRv4Ingress = 100

	akamaiPRv6Total   = 1335
	akamaiPRv6Egress  = 1172
	akamaiPRv6Ingress = 101

	appleV4IngressPrefixes = 23 // + AkamaiPR's 100 = 123 routed v4 ingress prefixes
	appleV6IngressPrefixes = 16

	cloudflareV4Prefixes = 112
	fastlyV4Prefixes     = 81
	fastlyV6Prefixes     = 81
)

func (w *World) buildServicePrefixes() {
	announce := func(as bgp.ASN, ps []netip.Prefix) {
		for _, p := range ps {
			w.Table.Announce(p, as)
		}
	}

	// AkamaiPR IPv4: 256 /20s from 172.224.0.0/12, 222 /20s from 23.32.0.0/11.
	akPR4 := carve(netip.MustParsePrefix("172.224.0.0/12"), 20, 256)
	akPR4 = append(akPR4, carve(netip.MustParsePrefix("23.32.0.0/11"), 20, akamaiPRv4Total-256)...)
	w.egressPfx[serviceKey{ASAkamaiPR, FamilyV4}] = akPR4[:akamaiPRv4Egress]
	w.ingressPfx[serviceKey{ASAkamaiPR, FamilyV4}] = akPR4[akamaiPRv4Egress : akamaiPRv4Egress+akamaiPRv4Ingress]
	w.unusedPfx[serviceKey{ASAkamaiPR, FamilyV4}] = akPR4[akamaiPRv4Egress+akamaiPRv4Ingress:]
	announce(ASAkamaiPR, akPR4)

	// AkamaiPR IPv6: 1335 /48s from 2a02:26f7::/32.
	akPR6 := carve(netip.MustParsePrefix("2a02:26f7::/32"), 48, akamaiPRv6Total)
	w.egressPfx[serviceKey{ASAkamaiPR, FamilyV6}] = akPR6[:akamaiPRv6Egress]
	w.ingressPfx[serviceKey{ASAkamaiPR, FamilyV6}] = akPR6[akamaiPRv6Egress : akamaiPRv6Egress+akamaiPRv6Ingress]
	w.unusedPfx[serviceKey{ASAkamaiPR, FamilyV6}] = akPR6[akamaiPRv6Egress+akamaiPRv6Ingress:]
	announce(ASAkamaiPR, akPR6)

	// Apple ingress: 23 /16s from 17.0.0.0/8, 16 /40s from 2620:149::/32.
	apple4 := carve(netip.MustParsePrefix("17.0.0.0/8"), 16, appleV4IngressPrefixes)
	w.ingressPfx[serviceKey{ASApple, FamilyV4}] = apple4
	announce(ASApple, apple4)
	apple6 := carve(netip.MustParsePrefix("2620:149::/32"), 40, appleV6IngressPrefixes)
	w.ingressPfx[serviceKey{ASApple, FamilyV6}] = apple6
	announce(ASApple, apple6)

	// AkamaiEdge egress: a single BGP prefix per family (Table 3).
	edge4 := []netip.Prefix{netip.MustParsePrefix("2.16.0.0/13")}
	edge6 := []netip.Prefix{netip.MustParsePrefix("2600:1400::/28")}
	w.egressPfx[serviceKey{ASAkamaiEdge, FamilyV4}] = edge4
	w.egressPfx[serviceKey{ASAkamaiEdge, FamilyV6}] = edge6
	announce(ASAkamaiEdge, edge4)
	announce(ASAkamaiEdge, edge6)

	// Cloudflare egress: 112 v4 prefixes, 2 v6 prefixes (Table 3).
	cf4 := carve(netip.MustParsePrefix("104.16.0.0/12"), 20, cloudflareV4Prefixes)
	cf6 := []netip.Prefix{
		netip.MustParsePrefix("2606:4700::/32"),
		netip.MustParsePrefix("2a06:98c0::/29"),
	}
	w.egressPfx[serviceKey{ASCloudflare, FamilyV4}] = cf4
	w.egressPfx[serviceKey{ASCloudflare, FamilyV6}] = cf6
	announce(ASCloudflare, cf4)
	announce(ASCloudflare, cf6)

	// Fastly egress: 81 v4 prefixes, 81 v6 prefixes (Table 3).
	fast4 := carve(netip.MustParsePrefix("151.101.0.0/16"), 22, 64)
	fast4 = append(fast4, carve(netip.MustParsePrefix("199.232.0.0/16"), 22, fastlyV4Prefixes-64)...)
	fast6 := carve(netip.MustParsePrefix("2a04:4e40::/32"), 40, fastlyV6Prefixes)
	w.egressPfx[serviceKey{ASFastly, FamilyV4}] = fast4
	w.egressPfx[serviceKey{ASFastly, FamilyV6}] = fast6
	announce(ASFastly, fast4)
	announce(ASFastly, fast6)
}

// carve returns the first n subnets of the given length inside block.
func carve(block netip.Prefix, bits, n int) []netip.Prefix {
	if uint64(n) > iputil.SubnetCount(block, bits) {
		panic(fmt.Sprintf("netsim: cannot carve %d /%d from %v", n, bits, block))
	}
	out := make([]netip.Prefix, n)
	for i := 0; i < n; i++ {
		out[i] = iputil.NthSubnet(block, bits, uint64(i))
	}
	return out
}

// buildHistory records service-AS visibility from 2016-01 through 2022-06.
// AkamaiPR first appears 2021-06, coinciding with the PR announcement.
func (w *World) buildHistory() {
	start := bgp.Month{Year: 2016, M: 1}
	end := bgp.Month{Year: 2022, M: 7}
	prFirst := bgp.Month{Year: 2021, M: 6}
	for m := start; m.Before(end); m = m.Next() {
		for _, as := range []bgp.ASN{ASApple, ASAkamaiEdge, ASCloudflare, ASFastly} {
			w.History.Record(m, as)
		}
		if !m.Before(prFirst) {
			w.History.Record(m, ASAkamaiPR)
		}
	}
}

// IngressPrefixes returns the routed prefixes hosting ingress relays for
// the operator and family.
func (w *World) IngressPrefixes(as bgp.ASN, fam Family) []netip.Prefix {
	return w.ingressPfx[serviceKey{as, fam}]
}

// EgressPrefixes returns the routed prefixes hosting egress subnets for
// the operator and family.
func (w *World) EgressPrefixes(as bgp.ASN, fam Family) []netip.Prefix {
	return w.egressPfx[serviceKey{as, fam}]
}

// UnusedPrefixes returns announced prefixes of the operator that host
// neither ingress nor egress relays (the 7.8 % in the §6 audit).
func (w *World) UnusedPrefixes(as bgp.ASN, fam Family) []netip.Prefix {
	return w.unusedPfx[serviceKey{as, fam}]
}

// RoutedV4Prefixes returns every announced IPv4 prefix — the scan universe
// for the ECS enumeration (§7: unrouted space is skipped).
func (w *World) RoutedV4Prefixes() []netip.Prefix {
	var out []netip.Prefix
	w.Table.Walk(func(a bgp.Announcement) bool {
		if a.Prefix.Addr().Is4() {
			out = append(out, a.Prefix)
		}
		return true
	})
	return out
}

// ClientSlash24Count returns the total number of routed client /24s.
func (w *World) ClientSlash24Count() int {
	n := 0
	for _, c := range w.ClientASes {
		n += c.Slash24s
	}
	return n
}

// ClientOf returns the client AS record owning addr, if any.
func (w *World) ClientOf(addr netip.Addr) (ClientAS, bool) {
	as, ok := w.Table.Origin(addr)
	if !ok {
		return ClientAS{}, false
	}
	idx, ok := w.clientIndex(as)
	if !ok {
		return ClientAS{}, false
	}
	return w.ClientASes[idx], true
}

// clientIndex maps a client ASN back to its slice index.
func (w *World) clientIndex(as bgp.ASN) (int, bool) {
	i, ok := w.clientIdx[as]
	return i, ok
}

// IsServiceAS reports whether as is one of the five operator ASes.
func IsServiceAS(as bgp.ASN) bool {
	switch as {
	case ASApple, ASAkamaiPR, ASAkamaiEdge, ASCloudflare, ASFastly:
		return true
	}
	return false
}
