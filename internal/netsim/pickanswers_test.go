package netsim

import (
	"net/netip"
	"testing"

	"github.com/relay-networks/privaterelay/internal/bgp"
)

// TestPickAnswersSmallFleetComplete pins a property the answer cache
// relies on: for fleets no larger than maxAnswerRecords, pickAnswers
// returns every distinct member — the answer is the whole fleet, in a
// key-dependent order. If the dedup bailout ever started dropping
// members, cached and uncached answers would still agree (the cache
// stores whatever pickAnswers returns) but the simulated CDN would
// under-advertise its ingress fleet.
func TestPickAnswersSmallFleetComplete(t *testing.T) {
	months := []bgp.Month{{Year: 2022, M: 1}, {Year: 2022, M: 3}, {Year: 2022, M: 4}}
	protos := []Proto{ProtoDefault, ProtoFallback}
	for n := 1; n <= maxAnswerRecords; n++ {
		fleet := make([]netip.Addr, n)
		for i := range fleet {
			fleet[i] = netip.AddrFrom4([4]byte{143, 92, byte(n), byte(i)})
		}
		for key := uint64(0); key < 500; key++ {
			for _, month := range months {
				for _, proto := range protos {
					out := pickAnswers(fleet, key*0x9E3779B97F4A7C15, month, proto)
					if len(out) != n {
						t.Fatalf("n=%d key=%d month=%v proto=%v: got %d answers, want all %d",
							n, key, month, proto, len(out), n)
					}
					seen := make(map[netip.Addr]bool, n)
					for _, a := range out {
						if seen[a] {
							t.Fatalf("n=%d key=%d: duplicate answer %v", n, key, a)
						}
						seen[a] = true
					}
				}
			}
		}
	}
}

// TestPickAnswersTerminatesUnderDedupPressure feeds a fleet that is all
// duplicates of one address: every draw collides, so only the k-bailout
// can end the loop. The test passing at all is the assertion — without
// the bailout it would spin forever.
func TestPickAnswersTerminatesUnderDedupPressure(t *testing.T) {
	same := netip.AddrFrom4([4]byte{143, 92, 0, 1})
	fleet := make([]netip.Addr, maxAnswerRecords)
	for i := range fleet {
		fleet[i] = same
	}
	out := pickAnswers(fleet, 42, bgp.Month{Year: 2022, M: 4}, ProtoDefault)
	if len(out) != 1 || out[0] != same {
		t.Fatalf("got %v, want exactly [%v]", out, same)
	}
}
